#ifndef OMNIFAIR_TESTS_TESTING_FAIRNESS_H_
#define OMNIFAIR_TESTS_TESTING_FAIRNESS_H_

#include <string>
#include <vector>

#include "data/dataset.h"
#include "util/random.h"

namespace omnifair {
namespace testing_fairness {

/// A small two-group dataset with a tunable bias: group "a" has positive
/// rate `rate_a`, group "b" has `rate_b`; one informative numeric feature
/// (mean shifted by the label) plus one noise feature.
inline Dataset MakeBiasedDataset(size_t n, double rate_a, double rate_b,
                                 uint64_t seed, double feature_shift = 2.0) {
  Rng rng(seed);
  Dataset d("biased_toy");
  Column g = Column::Categorical("grp", {"a", "b"});
  Column f1 = Column::Numeric("score");
  Column f2 = Column::Numeric("noise");
  std::vector<int> labels;
  for (size_t i = 0; i < n; ++i) {
    const int group = rng.NextBernoulli(0.5) ? 0 : 1;
    const double rate = group == 0 ? rate_a : rate_b;
    const int y = rng.NextBernoulli(rate) ? 1 : 0;
    g.AppendCode(group);
    f1.AppendNumeric(rng.NextGaussian(y * feature_shift, 1.0));
    f2.AppendNumeric(rng.NextGaussian(0.0, 1.0));
    labels.push_back(y);
  }
  d.AddColumn(std::move(g));
  d.AddColumn(std::move(f1));
  d.AddColumn(std::move(f2));
  d.SetLabels(std::move(labels));
  return d;
}

/// Fixed-size predictions alternating 1/0 by index parity.
inline std::vector<int> AlternatingPredictions(size_t n) {
  std::vector<int> preds(n);
  for (size_t i = 0; i < n; ++i) preds[i] = static_cast<int>(i % 2);
  return preds;
}

}  // namespace testing_fairness
}  // namespace omnifair

#endif  // OMNIFAIR_TESTS_TESTING_FAIRNESS_H_
