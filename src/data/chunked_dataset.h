#ifndef OMNIFAIR_DATA_CHUNKED_DATASET_H_
#define OMNIFAIR_DATA_CHUNKED_DATASET_H_

#include <cstdint>
#include <string>
#include <vector>

#include "data/encoder.h"
#include "linalg/matrix.h"
#include "util/status.h"

namespace omnifair {

// ---------------------------------------------------------------------------
// On-disk chunked dataset ("OFCD", DESIGN.md §16).
//
// The out-of-core currency of the streaming pipeline: encoded float32
// feature blocks spilled to disk so a 10M-row ingest never holds raw CSV
// text and encoded features in RAM at the same time. Layout (little-endian):
//
//   [header: magic 'OFCD' u32 | version u32 | flags u32 | reserved u32]
//   [block 0 payload][block 1 payload]...
//   [footer][trailer: footer_offset u64 | footer_crc32 u32 | magic u32]
//
// Blocks are stored PACKED, not dense: a one-hot group of k feature columns
// holds at most a single 1.0, so spilling all k floats writes 4k bytes per
// row where 2 (the u16 category code) carry the information. The footer's
// ChunkedLayout records how the dense float32 matrix maps onto the packed
// streams, and each block payload is
//
//   rows u64 | labels u8[rows] | groups i32[rows]
//   | floats f32[rows * floats_per_row] | codes u16[rows * codes_per_row]
//
// with the float/code streams row-major in layout-segment order. On the
// paper's adult schema this is 43 bytes/row instead of 167 — ingest spills
// (and every λ-tune epoch re-reads) a quarter of the bytes, and
// MaterializeBlock re-densifies into the float32 matrix bit-identically.
//
// Each payload carries its own CRC32 in the footer's block index, so a block
// is verified exactly when it is materialized — opening a file only
// validates the footer. The footer stores the schema (label/group names,
// the layout, the serialized FeatureEncoder) plus the block index
// {offset, rows, payload_bytes, crc32}.
//
// Writes go through the shared WriteFd loop (io.enospc / io.short_write
// fault sites apply) into a temp file that is fsynced and atomically renamed
// on Finalize — a crash mid-ingest never leaves a half-written file at the
// final path. Reads mmap one block at a time (page-aligned window, unmapped
// after copy), bounding resident memory to one decoded block regardless of
// file size.
// ---------------------------------------------------------------------------

/// How one run of adjacent dense feature columns is stored on disk.
enum class SegmentKind : uint8_t {
  /// `width` float32 values per row, stored verbatim.
  kNumericF32 = 0,
  /// One u16 category code per row, expanding to `width` one-hot columns.
  /// Code == width is the "unseen category" sentinel: all columns zero.
  kOneHotU16 = 1,
  /// One u16 category code per row, expanding to a single raw-code column.
  kCodeU16 = 2,
};

/// One run of the on-disk column layout.
struct ChunkedSegment {
  SegmentKind kind = SegmentKind::kNumericF32;
  uint32_t width = 0;  ///< dense feature columns the segment expands to
};

/// Ordered description of how a block's dense float32 feature matrix is
/// packed into the on-disk float/code streams.
struct ChunkedLayout {
  std::vector<ChunkedSegment> segments;

  /// Identity layout: every feature column stored as raw float32.
  static ChunkedLayout DenseF32(uint32_t num_features);

  /// Layout mirroring a fitted encoder's column plans: numeric columns pack
  /// into float32 runs, categorical columns into u16 codes (one-hot or raw
  /// per `one_hot_categorical`). Fails when a categorical column has too
  /// many categories for a u16 code (>= 65535).
  static Result<ChunkedLayout> FromPlans(
      const std::vector<FeatureEncoder::ColumnPlan>& plans,
      bool one_hot_categorical);

  /// Dense feature columns the layout expands to (sum of segment widths).
  size_t DenseWidth() const;
  /// float32 values stored per row.
  size_t FloatsPerRow() const;
  /// u16 codes stored per row.
  size_t CodesPerRow() const;
};

/// One materialized block: float32 features + labels + sensitive-group codes.
struct DatasetBlock {
  Matrix features;          ///< float32 storage, rows x num_features
  std::vector<int> labels;  ///< binary 0/1, length rows
  std::vector<int> groups;  ///< codes into ChunkedDatasetMeta::group_names
};

/// One block already in the packed on-disk representation. Producers that
/// know the layout (the streaming ingest) fill this directly and skip the
/// dense matrix entirely — no multi-MB zero-init, no one-hot scatter, and
/// a quarter of the serialized bytes.
struct CompactBlock {
  uint64_t rows = 0;
  std::vector<uint8_t> labels;   ///< binary 0/1, length rows
  std::vector<int32_t> groups;   ///< codes into group_names, length rows
  std::vector<float> floats;     ///< rows * FloatsPerRow(), row-major
  std::vector<uint16_t> codes;   ///< rows * CodesPerRow(), row-major
};

/// Location + integrity record of one block inside the file.
struct BlockIndexEntry {
  uint64_t offset = 0;
  uint64_t rows = 0;
  uint64_t payload_bytes = 0;
  uint32_t crc32 = 0;
};

/// Schema + index parsed from the footer.
struct ChunkedDatasetMeta {
  uint64_t total_rows = 0;
  uint32_t num_features = 0;  ///< dense width (== layout.DenseWidth())
  ChunkedLayout layout;       ///< how blocks are packed on disk
  std::string label_name;
  std::string group_column;
  std::vector<std::string> group_names;  ///< dictionary for DatasetBlock::groups
  std::string encoder_text;              ///< FeatureEncoder::SerializeTo payload
  std::vector<BlockIndexEntry> blocks;
};

/// Streaming writer. Create -> AppendBlock xN -> Finalize. The file is
/// written to `<path>.tmp` and only renamed to `path` by a successful
/// Finalize; destroying an unfinalized writer unlinks the temp file.
/// Move-only (owns the fd).
class ChunkedDatasetWriter {
 public:
  /// Writer for blocks packed per `layout`.
  static Result<ChunkedDatasetWriter> Create(const std::string& path,
                                             ChunkedLayout layout);
  /// Convenience: every feature column stored as raw float32.
  static Result<ChunkedDatasetWriter> Create(const std::string& path,
                                             uint32_t num_features);
  ChunkedDatasetWriter(ChunkedDatasetWriter&& other) noexcept;
  ChunkedDatasetWriter& operator=(ChunkedDatasetWriter&& other) noexcept;
  ChunkedDatasetWriter(const ChunkedDatasetWriter&) = delete;
  ChunkedDatasetWriter& operator=(const ChunkedDatasetWriter&) = delete;
  ~ChunkedDatasetWriter();

  /// Appends one dense block (features must be float32 with num_features
  /// columns, labels/groups the same length as features.rows()), packing it
  /// per the layout first. One-hot segments must actually be one-hot (a
  /// single 1.0 or all zeros per row) and code segments must hold exact
  /// u16-range integers; anything else is kInvalidArgument. Counts the
  /// spilled bytes on the `ingest.spill_bytes` counter.
  Status AppendBlock(const DatasetBlock& block);

  /// Appends one block already in the packed representation (sizes must
  /// match rows and the layout's per-row stream widths).
  Status AppendBlock(const CompactBlock& block);

  /// Writes footer + trailer, fsyncs, and atomically renames the temp file
  /// to the final path. The writer is closed afterwards.
  Status Finalize(const std::string& label_name, const std::string& group_column,
                  const std::vector<std::string>& group_names,
                  const std::string& encoder_text);

  uint64_t total_rows() const { return total_rows_; }
  size_t num_blocks() const { return blocks_.size(); }

 private:
  ChunkedDatasetWriter(std::string path, std::string temp_path, int fd,
                       ChunkedLayout layout);
  Status AppendPayload(const std::vector<uint8_t>& payload, uint64_t rows);
  void Abandon();

  std::string path_;
  std::string temp_path_;
  int fd_ = -1;
  ChunkedLayout layout_;
  uint32_t num_features_ = 0;
  uint64_t offset_ = 0;
  uint64_t total_rows_ = 0;
  std::vector<BlockIndexEntry> blocks_;
};

/// Random-access reader. Open validates the trailer + footer CRC only;
/// MaterializeBlock maps, CRC-checks and decodes one block. Move-only.
class ChunkedDataset {
 public:
  static Result<ChunkedDataset> Open(const std::string& path);
  ChunkedDataset(ChunkedDataset&& other) noexcept;
  ChunkedDataset& operator=(ChunkedDataset&& other) noexcept;
  ChunkedDataset(const ChunkedDataset&) = delete;
  ChunkedDataset& operator=(const ChunkedDataset&) = delete;
  ~ChunkedDataset();

  const ChunkedDatasetMeta& meta() const { return meta_; }
  size_t num_blocks() const { return meta_.blocks.size(); }
  uint64_t total_rows() const { return meta_.total_rows; }

  /// Maps block `index`, verifies its CRC32 and re-densifies the packed
  /// streams into the float32 feature matrix. The mapping is released before
  /// returning, so peak extra memory is one block's payload.
  Result<DatasetBlock> MaterializeBlock(size_t index) const;

  /// Deserializes the FeatureEncoder stored in the footer.
  Result<FeatureEncoder> LoadEncoder() const;

 private:
  ChunkedDataset(std::string path, int fd, ChunkedDatasetMeta meta);

  std::string path_;
  int fd_ = -1;
  ChunkedDatasetMeta meta_;
};

}  // namespace omnifair

#endif  // OMNIFAIR_DATA_CHUNKED_DATASET_H_
