#include "data/datasets.h"

#include "util/logging.h"

namespace omnifair {

// Matches the UCI Bank Marketing task (subscribe to a term deposit). The
// sensitive attribute follows the fairness-literature convention of a
// binarized age group: "working age" 25-60 is the privileged majority;
// students and retirees ("young_or_senior") subscribe at a visibly higher
// rate, producing a moderate baseline disparity (the paper's Table 5 Bank
// column shows near-zero accuracy drops — the constraint is cheap here).
synthetic::Schema MakeBankSchema() {
  synthetic::Schema schema;
  schema.dataset_name = "bank";
  schema.sensitive_attribute = "age_group";
  schema.label_name = "subscribed";
  schema.default_num_rows = 30488;
  schema.groups = {
      {"working_age", 0.82, 0.10},
      {"young_or_senior", 0.18, 0.24},
  };

  schema.numeric_features.push_back({.name = "age",
                                     .base_mean = 40.0,
                                     .label_shift = 1.5,
                                     .noise_sd = 9.0,
                                     .group_shift = {2.0, -9.0},
                                     .min_value = 18.0,
                                     .max_value = 95.0,
                                     .round_to_int = true});
  schema.numeric_features.push_back({.name = "balance",
                                     .base_mean = 1100.0,
                                     .label_shift = 650.0,
                                     .noise_sd = 2400.0,
                                     .group_shift = {50.0, -220.0},
                                     .min_value = -8000.0,
                                     .max_value = 100000.0,
                                     .round_to_int = true});
  schema.numeric_features.push_back({.name = "duration",
                                     .base_mean = 210.0,
                                     .label_shift = 330.0,
                                     .noise_sd = 180.0,
                                     .min_value = 0.0,
                                     .max_value = 4000.0,
                                     .round_to_int = true});
  schema.numeric_features.push_back({.name = "campaign",
                                     .base_mean = 2.9,
                                     .label_shift = -0.8,
                                     .noise_sd = 2.4,
                                     .min_value = 1.0,
                                     .max_value = 50.0,
                                     .round_to_int = true});
  schema.numeric_features.push_back({.name = "pdays",
                                     .base_mean = 35.0,
                                     .label_shift = 45.0,
                                     .noise_sd = 85.0,
                                     .min_value = -1.0,
                                     .max_value = 871.0,
                                     .round_to_int = true});
  schema.numeric_features.push_back({.name = "previous",
                                     .base_mean = 0.35,
                                     .label_shift = 0.9,
                                     .noise_sd = 1.3,
                                     .min_value = 0.0,
                                     .max_value = 35.0,
                                     .round_to_int = true});
  schema.numeric_features.push_back({.name = "day",
                                     .base_mean = 15.5,
                                     .label_shift = 0.0,
                                     .noise_sd = 8.0,
                                     .min_value = 1.0,
                                     .max_value = 31.0,
                                     .round_to_int = true});

  schema.categorical_features.push_back(
      {.name = "job",
       .categories = {"admin", "blue-collar", "technician", "management",
                      "services", "student", "retired", "other"},
       .weights_y0 = {0.12, 0.24, 0.17, 0.20, 0.10, 0.01, 0.04, 0.12},
       .weights_y1 = {0.12, 0.14, 0.16, 0.25, 0.07, 0.05, 0.10, 0.11}});
  schema.categorical_features.push_back(
      {.name = "marital",
       .categories = {"married", "single", "divorced"},
       .weights_y0 = {0.61, 0.27, 0.12},
       .weights_y1 = {0.52, 0.37, 0.11}});
  schema.categorical_features.push_back(
      {.name = "education",
       .categories = {"primary", "secondary", "tertiary", "unknown"},
       .weights_y0 = {0.16, 0.52, 0.28, 0.04},
       .weights_y1 = {0.10, 0.45, 0.41, 0.04}});
  schema.categorical_features.push_back(
      {.name = "default",
       .categories = {"no", "yes"},
       .weights_y0 = {0.98, 0.02},
       .weights_y1 = {0.995, 0.005}});
  schema.categorical_features.push_back(
      {.name = "housing",
       .categories = {"yes", "no"},
       .weights_y0 = {0.58, 0.42},
       .weights_y1 = {0.37, 0.63}});
  schema.categorical_features.push_back(
      {.name = "loan",
       .categories = {"no", "yes"},
       .weights_y0 = {0.83, 0.17},
       .weights_y1 = {0.91, 0.09}});
  schema.categorical_features.push_back(
      {.name = "contact",
       .categories = {"cellular", "telephone", "unknown"},
       .weights_y0 = {0.63, 0.07, 0.30},
       .weights_y1 = {0.82, 0.07, 0.11}});
  schema.categorical_features.push_back(
      {.name = "month",
       .categories = {"spring", "summer", "autumn", "winter"},
       .weights_y0 = {0.30, 0.38, 0.18, 0.14},
       .weights_y1 = {0.28, 0.30, 0.24, 0.18}});
  schema.categorical_features.push_back(
      {.name = "poutcome",
       .categories = {"unknown", "failure", "other", "success"},
       .weights_y0 = {0.78, 0.13, 0.05, 0.04},
       .weights_y1 = {0.52, 0.14, 0.07, 0.27}});

  return schema;
}

Dataset MakeBankDataset(const SyntheticOptions& options) {
  return synthetic::Generate(MakeBankSchema(), options);
}

Dataset MakeDatasetByName(const std::string& name, const SyntheticOptions& options) {
  return synthetic::Generate(MakeSchemaByName(name), options);
}

synthetic::Schema MakeSchemaByName(const std::string& name) {
  if (name == "adult") return MakeAdultSchema();
  if (name == "compas") return MakeCompasSchema();
  if (name == "lsac") return MakeLsacSchema();
  if (name == "bank") return MakeBankSchema();
  OF_CHECK(false) << "unknown dataset name: " << name;
  return synthetic::Schema();
}

}  // namespace omnifair
