// Constraint customization (§4.3 + Example 4): two user-defined fairness
// metrics, written without touching any OmniFair internals.
//
//   1. AverageErrorCostMetric — the paper's AEC metric: errors carry
//      asymmetric costs (a false negative costs 4x a false positive, the
//      bank-marketing reading: a missed subscriber costs more than a
//      wasted call), and the *average cost per group* must be similar.
//   2. A fully custom LambdaMetric — "recall among the young": the
//      fraction of true positives recovered, declared inline as
//      coefficients on the identity function (Definition 3).

#include <cmath>
#include <cstdio>

#include "core/omnifair.h"
#include "data/datasets.h"
#include "data/split.h"
#include "ml/trainer_registry.h"

int main() {
  using namespace omnifair;

  SyntheticOptions options;
  options.num_rows = 6000;
  const Dataset dataset = MakeBankDataset(options);
  const TrainValTestSplit split = SplitDefault(dataset, 33);
  const GroupingFunction groups =
      GroupByAttributeValues("age_group", {"working_age", "young_or_senior"});

  auto trainer = MakeTrainer("lr");
  OmniFair omnifair;

  // --- Customized metric 1: average error cost -----------------------------
  FairnessSpec aec_spec;
  aec_spec.grouping = groups;
  aec_spec.metric = std::make_shared<AverageErrorCostMetric>(/*cost_fp=*/1.0,
                                                             /*cost_fn=*/4.0);
  aec_spec.epsilon = 0.05;

  auto aec_model = omnifair.Train(split.train, split.val, trainer.get(), {aec_spec});
  if (aec_model.ok()) {
    auto audit = Audit(*aec_model->model, aec_model->encoder, split.test, {aec_spec});
    std::printf("[AEC] satisfied=%s test accuracy=%.1f%% AEC disparity=%.3f\n",
                aec_model->satisfied ? "yes" : "no", 100.0 * audit->accuracy,
                audit->max_disparity);
  }

  // --- Customized metric 2: recall parity, declared inline -----------------
  // recall = (1/|{y=1}|) * sum_{y_i=1} 1(h(x_i)=y_i): coefficients 1/|pos|
  // on positives, 0 elsewhere — exactly the Figure 1 code box, in C++.
  auto recall_metric = std::make_shared<LambdaMetric>(
      "recall",
      [](const Dataset& d, const std::vector<size_t>& group,
         const std::vector<int>*) {
        MetricCoefficients coef;
        size_t positives = 0;
        for (size_t i : group) positives += (d.Label(i) == 1);
        coef.c.assign(group.size(), 0.0);
        if (positives == 0) return coef;
        for (size_t k = 0; k < group.size(); ++k) {
          if (d.Label(group[k]) == 1) {
            coef.c[k] = 1.0 / static_cast<double>(positives);
          }
        }
        return coef;
      },
      /*depends_on_predictions=*/false);

  FairnessSpec recall_spec;
  recall_spec.grouping = groups;
  recall_spec.metric = recall_metric;
  recall_spec.epsilon = 0.05;

  auto recall_model =
      omnifair.Train(split.train, split.val, trainer.get(), {recall_spec});
  if (recall_model.ok()) {
    auto audit =
        Audit(*recall_model->model, recall_model->encoder, split.test, {recall_spec});
    std::printf("[recall] satisfied=%s test accuracy=%.1f%% recall disparity=%.3f\n",
                recall_model->satisfied ? "yes" : "no", 100.0 * audit->accuracy,
                audit->max_disparity);
  }

  std::printf(
      "\nBoth metrics were declared by the user; the tuning algorithms\n"
      "(Algorithm 1/2) were reused unchanged — the point of Definition 3.\n");
  return 0;
}
