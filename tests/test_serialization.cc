#include "ml/serialization.h"

#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "core/omnifair.h"
#include "data/datasets.h"
#include "data/split.h"
#include "ml/trainer_registry.h"
#include "tests/testing_data.h"

namespace omnifair {
namespace {

using testing_data::Blobs;
using testing_data::MakeBlobs;

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

/// Round-trip property for every serializable model family: a deserialized
/// model reproduces the original's probabilities exactly.
class ModelRoundTripTest : public ::testing::TestWithParam<std::string> {};

TEST_P(ModelRoundTripTest, PredictionsSurviveRoundTrip) {
  const Blobs blobs = MakeBlobs(300, 1.0, 7);
  auto trainer = MakeTrainer(GetParam());
  const auto model = trainer->Fit(blobs.X, blobs.y, blobs.unit_weights);

  std::stringstream buffer;
  ASSERT_TRUE(SerializeModel(*model, buffer).ok());
  auto loaded = DeserializeModel(buffer);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ((*loaded)->Name(), model->Name());

  const std::vector<double> original = model->PredictProba(blobs.X);
  const std::vector<double> restored = (*loaded)->PredictProba(blobs.X);
  ASSERT_EQ(original.size(), restored.size());
  for (size_t i = 0; i < original.size(); ++i) {
    EXPECT_NEAR(original[i], restored[i], 1e-12) << GetParam() << " row " << i;
  }
}

// The "_hist" variants train with histogram split search; the fitted trees
// serialize through the same text format (thresholds are real doubles), so
// the round-trip property must hold for them unchanged.
INSTANTIATE_TEST_SUITE_P(AllFamilies, ModelRoundTripTest,
                         ::testing::Values("lr", "dt", "rf", "xgb", "nn", "nb",
                                           "dt_hist", "rf_hist", "xgb_hist"));

TEST(SerializationTest, FileRoundTrip) {
  const Blobs blobs = MakeBlobs(100, 1.5, 8);
  auto trainer = MakeTrainer("lr");
  const auto model = trainer->Fit(blobs.X, blobs.y, blobs.unit_weights);
  const std::string path = TempPath("model.txt");
  ASSERT_TRUE(SaveModel(*model, path).ok());
  auto loaded = LoadModel(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ((*loaded)->Predict(blobs.X), model->Predict(blobs.X));
}

TEST(SerializationTest, RejectsGarbage) {
  std::stringstream buffer("definitely not a model");
  EXPECT_FALSE(DeserializeModel(buffer).ok());
}

TEST(SerializationTest, RejectsTruncatedPayload) {
  const Blobs blobs = MakeBlobs(50, 1.0, 9);
  auto trainer = MakeTrainer("xgb");
  const auto model = trainer->Fit(blobs.X, blobs.y, blobs.unit_weights);
  std::stringstream buffer;
  ASSERT_TRUE(SerializeModel(*model, buffer).ok());
  const std::string full = buffer.str();
  std::stringstream truncated(full.substr(0, full.size() / 2));
  EXPECT_FALSE(DeserializeModel(truncated).ok());
}

TEST(SerializationTest, MissingFileFails) {
  EXPECT_FALSE(LoadModel("/nonexistent/model.txt").ok());
}

TEST(SerializationTest, FairModelRoundTripWithEncoder) {
  SyntheticOptions options;
  options.num_rows = 2000;
  const Dataset dataset = MakeCompasDataset(options);
  const TrainValTestSplit split = SplitDefault(dataset, 5);
  const FairnessSpec spec = MakeSpec(
      GroupByAttributeValues("race", {"African-American", "Caucasian"}), "sp", 0.05);
  auto trainer = MakeTrainer("lr");
  OmniFair omnifair;
  auto fair = omnifair.Train(split.train, split.val, trainer.get(), {spec});
  ASSERT_TRUE(fair.ok());

  const std::string path = TempPath("fair_model.txt");
  ASSERT_TRUE(SaveFairModel(*fair, path).ok());
  auto loaded = LoadFairModel(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();

  EXPECT_EQ(loaded->lambdas, fair->lambdas);
  EXPECT_EQ(loaded->satisfied, fair->satisfied);
  EXPECT_NEAR(loaded->val_accuracy, fair->val_accuracy, 1e-12);
  // The loaded bundle can predict on raw (un-encoded) data directly.
  EXPECT_EQ(loaded->Predict(split.test), fair->Predict(split.test));
  // And audits identically.
  auto original_audit = Audit(*fair->model, fair->encoder, split.test, {spec});
  auto loaded_audit = Audit(*loaded->model, loaded->encoder, split.test, {spec});
  ASSERT_TRUE(original_audit.ok());
  ASSERT_TRUE(loaded_audit.ok());
  EXPECT_NEAR(original_audit->max_disparity, loaded_audit->max_disparity, 1e-12);
}

TEST(SerializationTest, FairModelWithoutModelRejected) {
  FairModel empty;
  EXPECT_FALSE(SaveFairModel(empty, TempPath("never.txt")).ok());
}

}  // namespace
}  // namespace omnifair
