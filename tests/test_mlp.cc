#include "ml/mlp.h"

#include <cmath>

#include <gtest/gtest.h>

#include "tests/testing_data.h"
#include "util/fault_injector.h"

namespace omnifair {
namespace {

using testing_data::Blobs;
using testing_data::MakeBlobs;
using testing_data::MakeXor;
using testing_data::TrainAccuracy;

TEST(MlpTest, LearnsXor) {
  const Blobs xor_data = MakeXor(600, 1);
  MlpOptions options;
  options.max_epochs = 400;
  MlpTrainer trainer(options);
  const auto model = trainer.Fit(xor_data.X, xor_data.y, xor_data.unit_weights);
  EXPECT_GE(TrainAccuracy(*model, xor_data), 0.90);
}

TEST(MlpTest, LearnsSeparableData) {
  const Blobs blobs = MakeBlobs(500, 2.0, 2);
  MlpTrainer trainer;
  const auto model = trainer.Fit(blobs.X, blobs.y, blobs.unit_weights);
  EXPECT_GE(TrainAccuracy(*model, blobs), 0.96);
}

TEST(MlpTest, DeterministicGivenSeed) {
  const Blobs blobs = MakeBlobs(300, 1.0, 3);
  MlpTrainer a;
  MlpTrainer b;
  EXPECT_EQ(a.Fit(blobs.X, blobs.y, blobs.unit_weights)->Predict(blobs.X),
            b.Fit(blobs.X, blobs.y, blobs.unit_weights)->Predict(blobs.X));
}

TEST(MlpTest, ProbabilitiesInRange) {
  const Blobs blobs = MakeBlobs(200, 0.5, 4);
  MlpTrainer trainer;
  const auto model = trainer.Fit(blobs.X, blobs.y, blobs.unit_weights);
  for (double p : model->PredictProba(blobs.X)) {
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
  }
}

TEST(MlpTest, SupportsWarmStart) {
  MlpTrainer trainer;
  EXPECT_TRUE(trainer.SupportsWarmStart());
  EXPECT_EQ(trainer.Name(), "mlp");
}

TEST(MlpTest, WarmStartContinuesFromPreviousFit) {
  const Blobs xor_data = MakeXor(400, 5);
  MlpOptions options;
  options.max_epochs = 60;  // too few to converge from scratch
  MlpTrainer trainer(options);
  trainer.SetWarmStart(true);
  double previous = 0.0;
  double current = 0.0;
  for (int round = 0; round < 5; ++round) {
    previous = current;
    const auto model = trainer.Fit(xor_data.X, xor_data.y, xor_data.unit_weights);
    current = TrainAccuracy(*model, xor_data);
  }
  // Accumulated epochs across warm-started fits keep improving the fit
  // beyond what a single 60-epoch run reaches.
  MlpTrainer cold(options);
  const auto cold_model = cold.Fit(xor_data.X, xor_data.y, xor_data.unit_weights);
  EXPECT_GE(current, TrainAccuracy(*cold_model, xor_data));
}

TEST(MlpSgdTest, BatchSizeZeroIsBitIdenticalToFullBatch) {
  const Blobs blobs = MakeBlobs(300, 1.5, 7);
  MlpOptions zero_batch;
  zero_batch.batch_size = 0;
  MlpTrainer a;
  MlpTrainer b(zero_batch);
  const auto ma = a.Fit(blobs.X, blobs.y, blobs.unit_weights);
  const auto mb = b.Fit(blobs.X, blobs.y, blobs.unit_weights);
  const auto& na = static_cast<const MlpModel&>(*ma);
  const auto& nb = static_cast<const MlpModel&>(*mb);
  ASSERT_EQ(na.w2().size(), nb.w2().size());
  for (size_t i = 0; i < na.w2().size(); ++i) {
    EXPECT_EQ(na.w2()[i], nb.w2()[i]);
  }
  EXPECT_EQ(na.b2(), nb.b2());
  for (size_t r = 0; r < na.W1().rows(); ++r) {
    for (size_t c = 0; c < na.W1().cols(); ++c) {
      EXPECT_EQ(na.W1()(r, c), nb.W1()(r, c));
    }
  }
}

TEST(MlpSgdTest, MiniBatchLearnsSeparableData) {
  const Blobs blobs = MakeBlobs(500, 2.0, 8);
  MlpOptions options;
  options.batch_size = 64;
  options.epochs = 40;
  MlpTrainer trainer(options);
  const auto model = trainer.Fit(blobs.X, blobs.y, blobs.unit_weights);
  EXPECT_GE(TrainAccuracy(*model, blobs), 0.93);
}

TEST(MlpSgdTest, MiniBatchDeterministic) {
  const Blobs blobs = MakeBlobs(300, 1.0, 9);
  MlpOptions options;
  options.batch_size = 32;
  options.epochs = 10;
  options.lr_schedule = LrSchedule::kInvSqrt;
  MlpTrainer a(options);
  MlpTrainer b(options);
  const auto ma = a.Fit(blobs.X, blobs.y, blobs.unit_weights);
  const auto mb = b.Fit(blobs.X, blobs.y, blobs.unit_weights);
  const auto& na = static_cast<const MlpModel&>(*ma);
  const auto& nb = static_cast<const MlpModel&>(*mb);
  ASSERT_EQ(na.w2().size(), nb.w2().size());
  for (size_t i = 0; i < na.w2().size(); ++i) {
    EXPECT_EQ(na.w2()[i], nb.w2()[i]);
  }
  EXPECT_EQ(na.b2(), nb.b2());
}

TEST(MlpSgdTest, MiniBatchBacksOffOnInjectedDivergence) {
  FaultInjector::Reset();
  const Blobs blobs = MakeBlobs(300, 2.0, 10);
  MlpOptions options;
  options.batch_size = 32;
  options.epochs = 30;
  MlpTrainer trainer(options);
  FaultInjector::Arm(fault_sites::kMlpEpoch);
  const auto model = trainer.Fit(blobs.X, blobs.y, blobs.unit_weights);
  FaultInjector::Reset();
  EXPECT_GE(TrainAccuracy(*model, blobs), 0.90);

  FaultInjector::Arm(fault_sites::kMlpEpoch, 1, /*repeat=*/true);
  MlpTrainer doomed(options);
  const auto checkpoint = doomed.Fit(blobs.X, blobs.y, blobs.unit_weights);
  FaultInjector::Reset();
  const auto& nm = static_cast<const MlpModel&>(*checkpoint);
  for (double v : nm.w2()) EXPECT_TRUE(std::isfinite(v));
  EXPECT_TRUE(std::isfinite(nm.b2()));
}

TEST(MlpTest, UpweightingShiftsPositiveRate) {
  const Blobs blobs = MakeBlobs(400, 0.5, 6);
  MlpTrainer trainer;
  const auto base = trainer.Fit(blobs.X, blobs.y, blobs.unit_weights);
  std::vector<double> boosted(blobs.y.size());
  for (size_t i = 0; i < blobs.y.size(); ++i) {
    boosted[i] = blobs.y[i] == 1 ? 6.0 : 1.0;
  }
  const auto heavy = trainer.Fit(blobs.X, blobs.y, boosted);
  double base_rate = 0.0;
  double heavy_rate = 0.0;
  for (int p : base->Predict(blobs.X)) base_rate += p;
  for (int p : heavy->Predict(blobs.X)) heavy_rate += p;
  EXPECT_GT(heavy_rate, base_rate);
}

}  // namespace
}  // namespace omnifair
