#ifndef OMNIFAIR_LINALG_SIMD_H_
#define OMNIFAIR_LINALG_SIMD_H_

#include <cstddef>

namespace omnifair {
namespace simd {

/// Vector kernel backends. kScalar is the portable unrolled fallback and is
/// always available; kAvx2/kNeon are compiled in when CMake detects the
/// target architecture (OMNIFAIR_ENABLE_SIMD) and selected at runtime when
/// the CPU actually supports them.
enum class Backend {
  kScalar = 0,
  kAvx2 = 1,
  kNeon = 2,
};

/// Dispatch table for the dense numeric kernels behind vector_ops.h, Matrix
/// products, and the batched LR/MLP/GBDT predict paths. All accumulators are
/// double regardless of backend; the *_f32 variants read float32 feature
/// data (widened per lane) against double coefficients, so only the input
/// width changes, never the arithmetic precision.
///
/// Precision contract: backends may reassociate reductions and contract
/// multiply-add (FMA), so results agree with the scalar path to O(n * eps),
/// not bitwise. sigmoid/softmax use a polynomial exp on vector backends,
/// accurate to a few ulp. Callers that need bit-stable results across
/// OMNIFAIR_SIMD settings must not route through these kernels.
struct Kernels {
  /// Unordered-reduction dot product of a[0..n) and b[0..n).
  double (*dot)(const double* a, const double* b, size_t n);
  /// a[i] += s * b[i].
  void (*axpy)(double s, const double* b, double* a, size_t n);
  /// v[i] *= s.
  void (*scale)(double s, double* v, size_t n);
  /// Unordered-reduction sum of v[0..n).
  double (*sum)(const double* v, size_t n);
  /// Fused LR scoring kernel: sigmoid(bias + dot(a, b)).
  double (*dot_sigmoid)(const double* a, const double* b, size_t n,
                        double bias);
  /// v[i] = sigmoid(v[i]) for a whole batch of margins.
  void (*sigmoid_inplace)(double* v, size_t n);
  /// Row-wise softmax over a row-major rows x cols block (max-shifted).
  void (*softmax_rows)(double* m, size_t rows, size_t cols);
  /// Mixed-precision variants: float32 data, double coefficients/accumulators.
  double (*dot_f32)(const float* a, const double* b, size_t n);
  void (*axpy_f32)(double s, const float* b, double* a, size_t n);
  double (*dot_sigmoid_f32)(const float* a, const double* b, size_t n,
                            double bias);
};

/// Human-readable backend name ("scalar", "avx2", "neon").
const char* BackendName(Backend backend);

/// True when the backend is both compiled in and supported by this CPU.
bool BackendAvailable(Backend backend);

/// Kernel table for an available backend (OF_CHECKs availability).
const Kernels& KernelsFor(Backend backend);

/// The portable fallback table; always available. Parity tests and the
/// in-process speedup benches compare Active() against this.
const Kernels& ScalarKernels();

/// The backend in use. First call resolves it: the OMNIFAIR_SIMD environment
/// variable ("off"/"0"/"scalar" force the fallback, "avx2"/"neon" force a
/// specific backend when available, "on"/"auto"/unset pick the best), then
/// compile-time + CPU detection. Publishes the choice on the `simd.path`
/// telemetry gauge (0 = scalar, 1 = avx2, 2 = neon).
Backend ActiveBackend();

/// Kernel table of ActiveBackend(). Hot loops should hoist the reference.
const Kernels& Active();

/// Runtime override (tests and the OMNIFAIR_SIMD escape hatch re-applied
/// programmatically). OF_CHECKs that the backend is available; updates the
/// `simd.path` gauge. Not intended to race with in-flight kernel calls.
void SetActiveBackend(Backend backend);

// Convenience wrappers over the active table.
inline double Dot(const double* a, const double* b, size_t n) {
  return Active().dot(a, b, n);
}
inline void Axpy(double s, const double* b, double* a, size_t n) {
  Active().axpy(s, b, a, n);
}
inline double DotF32(const float* a, const double* b, size_t n) {
  return Active().dot_f32(a, b, n);
}
inline void SigmoidInPlace(double* v, size_t n) {
  Active().sigmoid_inplace(v, n);
}

}  // namespace simd
}  // namespace omnifair

#endif  // OMNIFAIR_LINALG_SIMD_H_
