#ifndef OMNIFAIR_UTIL_RANDOM_H_
#define OMNIFAIR_UTIL_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace omnifair {

/// Deterministic pseudo-random number generator (xoshiro256**).
///
/// Every stochastic component in the library (data generators, train/val/test
/// splits, model initialization, bootstrap sampling) draws from an Rng seeded
/// explicitly, so all experiments are reproducible bit-for-bit. We implement
/// the generator ourselves rather than relying on std::mt19937 distributions,
/// whose output is not specified identically across standard libraries.
class Rng {
 public:
  explicit Rng(uint64_t seed);

  /// Next raw 64-bit output.
  uint64_t NextUint64();

  /// Uniform in [0, 1).
  double NextDouble();

  /// Uniform integer in [0, bound) using rejection-free Lemire reduction.
  uint64_t NextBounded(uint64_t bound);

  /// Uniform in [lo, hi).
  double NextUniform(double lo, double hi);

  /// Standard normal via Box-Muller (cached second value).
  double NextGaussian();

  /// Gaussian with the given mean and standard deviation.
  double NextGaussian(double mean, double stddev);

  /// Bernoulli draw with success probability p.
  bool NextBernoulli(double p);

  /// Draws an index in [0, weights.size()) with probability proportional to
  /// weights[i]. Weights must be non-negative and not all zero.
  size_t NextCategorical(const std::vector<double>& weights);

  /// Fisher-Yates shuffle of indices [0, n).
  std::vector<size_t> Permutation(size_t n);

  /// Forks an independent stream (for per-component sub-generators).
  Rng Fork();

 private:
  uint64_t state_[4];
  double cached_gaussian_ = 0.0;
  bool has_cached_gaussian_ = false;
};

}  // namespace omnifair

#endif  // OMNIFAIR_UTIL_RANDOM_H_
