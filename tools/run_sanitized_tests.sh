#!/usr/bin/env bash
# Builds the test suite with AddressSanitizer + UndefinedBehaviorSanitizer and
# runs it. Uses a dedicated build tree (build-sanitized/) so the regular
# build/ stays untouched.
#
# Usage: tools/run_sanitized_tests.sh [extra ctest args...]
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${repo_root}/build-sanitized"

cmake -B "${build_dir}" -S "${repo_root}" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DOMNIFAIR_SANITIZE="address;undefined" \
  -DOMNIFAIR_BUILD_BENCHMARKS=OFF \
  -DOMNIFAIR_BUILD_EXAMPLES=OFF
cmake --build "${build_dir}" -j "$(nproc)"

# halt_on_error makes UBSan findings fail the run instead of just logging.
export UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1"
export ASAN_OPTIONS="detect_leaks=1"
ctest --test-dir "${build_dir}" --output-on-failure -j "$(nproc)" "$@"
