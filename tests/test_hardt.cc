#include "baselines/hardt.h"

#include <cmath>

#include <gtest/gtest.h>

#include "core/omnifair.h"
#include "data/datasets.h"
#include "data/split.h"
#include "ml/trainer_registry.h"

namespace omnifair {
namespace {

struct Fixture {
  Dataset data;
  TrainValTestSplit split;
  FairnessSpec spec;

  explicit Fixture(const std::string& metric = "sp", double epsilon = 0.05) {
    SyntheticOptions options;
    options.num_rows = 3000;
    options.seed = 8;
    data = MakeCompasDataset(options);
    split = SplitDefault(data, 31);
    spec = MakeSpec(
        GroupByAttributeValues("race", {"African-American", "Caucasian"}),
        metric, epsilon);
  }
};

TEST(HardtTest, SatisfiesSpViaThresholds) {
  Fixture fx;
  HardtPostProcessing hardt;
  auto trainer = MakeTrainer("lr");
  auto result = hardt.Train(fx.split.train, fx.split.val, trainer.get(), fx.spec);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(result->satisfied);
  EXPECT_LE(std::fabs(result->val_fairness_parts[0]), fx.spec.epsilon + 1e-9);
  // Only one base fit: post-processing is cheap.
  EXPECT_EQ(result->models_trained, 1);
  EXPECT_GT(result->val_accuracy, 0.65);
}

TEST(HardtTest, SupportsPredictionParameterizedMetrics) {
  Fixture fx("fdr", 0.05);
  HardtPostProcessing hardt;
  EXPECT_TRUE(hardt.SupportsMetric(*fx.spec.metric));
  auto trainer = MakeTrainer("lr");
  auto result = hardt.Train(fx.split.train, fx.split.val, trainer.get(), fx.spec);
  ASSERT_TRUE(result.ok()) << result.status();
  if (result->satisfied) {
    EXPECT_LE(std::fabs(result->val_fairness_parts[0]), 0.05 + 1e-9);
  }
}

TEST(HardtTest, ModelAgnosticAcrossTrainers) {
  Fixture fx;
  HardtPostProcessing hardt;
  for (const char* name : {"dt", "nb"}) {
    auto trainer = MakeTrainer(name);
    auto result = hardt.Train(fx.split.train, fx.split.val, trainer.get(), fx.spec);
    ASSERT_TRUE(result.ok()) << name << ": " << result.status();
    EXPECT_NE(result->model, nullptr);
  }
}

TEST(HardtTest, AuditsOnTestSet) {
  Fixture fx;
  HardtPostProcessing hardt;
  auto trainer = MakeTrainer("lr");
  auto result = hardt.Train(fx.split.train, fx.split.val, trainer.get(), fx.spec);
  ASSERT_TRUE(result.ok());
  auto audit = Audit(*result->model, result->encoder, fx.split.test, {fx.spec});
  ASSERT_TRUE(audit.ok());
  EXPECT_GT(audit->accuracy, 0.65);
  // Generalization is not guaranteed, but the disparity should be in the
  // vicinity of epsilon rather than the unconstrained ~0.2.
  EXPECT_LT(audit->max_disparity, 0.15);
}

TEST(HardtTest, AvailableFromFactory) {
  auto baseline = MakeBaseline("hardt");
  ASSERT_NE(baseline, nullptr);
  EXPECT_EQ(baseline->Name(), "hardt");
}

TEST(GroupThresholdClassifierTest, RoutesByOneHotColumn) {
  // A fake base classifier with constant score 0.6 everywhere.
  class ConstantModel : public Classifier {
   public:
    std::vector<double> PredictProba(const Matrix& X) const override {
      return std::vector<double>(X.rows(), 0.6);
    }
    std::string Name() const override { return "constant"; }
  };
  // Feature 0 = group1 indicator, feature 1 = group2 indicator.
  Matrix X = {{1.0, 0.0}, {0.0, 1.0}, {0.0, 0.0}};
  GroupThresholdClassifier wrapped(std::make_shared<ConstantModel>(),
                                   /*group1_feature=*/0, /*group2_feature=*/1,
                                   /*threshold1=*/0.9, /*threshold2=*/0.3);
  const std::vector<int> preds = wrapped.Predict(X);
  EXPECT_EQ(preds[0], 0);  // 0.6 < 0.9 for group 1
  EXPECT_EQ(preds[1], 1);  // 0.6 >= 0.3 for group 2
  EXPECT_EQ(preds[2], 1);  // default threshold 0.5
  EXPECT_DOUBLE_EQ(wrapped.threshold1(), 0.9);
  EXPECT_DOUBLE_EQ(wrapped.threshold2(), 0.3);
}

}  // namespace
}  // namespace omnifair
