#include "core/groups.h"

#include <gtest/gtest.h>

namespace omnifair {
namespace {

Dataset TwoAttributeDataset() {
  Dataset d;
  Column race = Column::Categorical("race", {"black", "white", "hispanic"});
  Column sex = Column::Categorical("sex", {"m", "f"});
  Column age = Column::Numeric("age");
  const int race_codes[] = {0, 0, 1, 1, 2, 2};
  const int sex_codes[] = {0, 1, 0, 1, 0, 1};
  for (int i = 0; i < 6; ++i) {
    race.AppendCode(race_codes[i]);
    sex.AppendCode(sex_codes[i]);
    age.AppendNumeric(20.0 + i);
  }
  d.AddColumn(std::move(race));
  d.AddColumn(std::move(sex));
  d.AddColumn(std::move(age));
  d.SetLabels({0, 1, 0, 1, 0, 1});
  return d;
}

TEST(GroupsTest, GroupByAttribute) {
  const Dataset d = TwoAttributeDataset();
  const GroupMap groups = GroupByAttribute("race")(d);
  ASSERT_EQ(groups.size(), 3u);
  EXPECT_EQ(groups.at("black"), (std::vector<size_t>{0, 1}));
  EXPECT_EQ(groups.at("white"), (std::vector<size_t>{2, 3}));
  EXPECT_EQ(groups.at("hispanic"), (std::vector<size_t>{4, 5}));
}

TEST(GroupsTest, GroupByAttributeValuesFilters) {
  const Dataset d = TwoAttributeDataset();
  const GroupMap groups = GroupByAttributeValues("race", {"black", "white"})(d);
  ASSERT_EQ(groups.size(), 2u);
  EXPECT_EQ(groups.count("hispanic"), 0u);
  EXPECT_EQ(groups.at("black").size(), 2u);
}

TEST(GroupsTest, GroupByIntersection) {
  const Dataset d = TwoAttributeDataset();
  const GroupMap groups = GroupByIntersection({"race", "sex"})(d);
  EXPECT_EQ(groups.size(), 6u);  // all combos non-empty here
  EXPECT_EQ(groups.at("black|m"), (std::vector<size_t>{0}));
  EXPECT_EQ(groups.at("hispanic|f"), (std::vector<size_t>{5}));
}

TEST(GroupsTest, GroupByPredicatesMayOverlap) {
  const Dataset d = TwoAttributeDataset();
  const GroupMap groups = GroupByPredicates(
      {{"young", [](const Dataset& ds, size_t i) {
          return ds.ColumnByName("age").NumericValue(i) < 23.0;
        }},
       {"male", [](const Dataset& ds, size_t i) {
          return ds.ColumnByName("sex").CategoryOf(i) == "m";
        }}})(d);
  ASSERT_EQ(groups.size(), 2u);
  EXPECT_EQ(groups.at("young"), (std::vector<size_t>{0, 1, 2}));
  EXPECT_EQ(groups.at("male"), (std::vector<size_t>{0, 2, 4}));
  // Row 0 and 2 belong to both groups (overlap allowed).
}

TEST(GroupsTest, IsValidGrouping) {
  GroupMap ok = {{"a", {0, 1}}, {"b", {2}}};
  EXPECT_TRUE(IsValidGrouping(ok));
  GroupMap one = {{"a", {0, 1}}};
  EXPECT_FALSE(IsValidGrouping(one));
  GroupMap with_empty = {{"a", {0}}, {"b", {}}};
  EXPECT_FALSE(IsValidGrouping(with_empty));
  GroupMap two_plus_empty = {{"a", {0}}, {"b", {}}, {"c", {1}}};
  EXPECT_TRUE(IsValidGrouping(two_plus_empty));
}

TEST(GroupsTest, DeclaredValuesKeptEvenWhenEmpty) {
  const Dataset d = TwoAttributeDataset();
  const GroupMap groups = GroupByAttributeValues("sex", {"m", "f"})(d);
  EXPECT_EQ(groups.at("m").size(), 3u);
  EXPECT_EQ(groups.at("f").size(), 3u);
}

}  // namespace
}  // namespace omnifair
