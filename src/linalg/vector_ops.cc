#include "linalg/vector_ops.h"

#include <cmath>

#include "linalg/simd.h"
#include "util/logging.h"

namespace omnifair {

// The reductions and elementwise ops route through the simd dispatch layer
// (simd.h): AVX2/NEON when compiled in and supported, the portable unrolled
// fallback otherwise. Callers treat Dot/Sum as unordered reductions — the
// backend may reassociate and contract to FMA, so results agree across
// backends to O(n * eps), not bitwise.

double Dot(const std::vector<double>& a, const std::vector<double>& b) {
  OF_CHECK_EQ(a.size(), b.size());
  return simd::Active().dot(a.data(), b.data(), a.size());
}

double Norm2(const std::vector<double>& v) { return std::sqrt(Dot(v, v)); }

void Axpy(double scale, const std::vector<double>& b, std::vector<double>* a) {
  OF_CHECK_EQ(a->size(), b.size());
  simd::Active().axpy(scale, b.data(), a->data(), b.size());
}

void Scale(double scale, std::vector<double>* v) {
  simd::Active().scale(scale, v->data(), v->size());
}

double Sum(const std::vector<double>& v) {
  return simd::Active().sum(v.data(), v.size());
}

double Mean(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  return Sum(v) / static_cast<double>(v.size());
}

double StdDev(const std::vector<double>& v) {
  if (v.size() < 2) return 0.0;
  const double mean = Mean(v);
  double acc = 0.0;
  for (double x : v) acc += (x - mean) * (x - mean);
  return std::sqrt(acc / static_cast<double>(v.size()));
}

double Sigmoid(double z) {
  if (z >= 0.0) {
    const double e = std::exp(-z);
    return 1.0 / (1.0 + e);
  }
  const double e = std::exp(z);
  return e / (1.0 + e);
}

void SigmoidInPlace(double* v, size_t n) { simd::Active().sigmoid_inplace(v, n); }

void SigmoidInPlace(std::vector<double>* v) {
  SigmoidInPlace(v->data(), v->size());
}

void SoftmaxRows(double* m, size_t rows, size_t cols) {
  simd::Active().softmax_rows(m, rows, cols);
}

double Log1pExp(double z) {
  if (z > 35.0) return z;
  if (z < -35.0) return std::exp(z);
  return std::log1p(std::exp(z));
}

}  // namespace omnifair
