#include "data/split.h"

#include <set>

#include <gtest/gtest.h>

#include "data/datasets.h"

namespace omnifair {
namespace {

Dataset SmallCompas() {
  SyntheticOptions options;
  options.num_rows = 1000;
  options.seed = 5;
  return MakeCompasDataset(options);
}

TEST(SplitTest, DefaultFractions) {
  const Dataset d = SmallCompas();
  const TrainValTestSplit split = SplitDefault(d, 1);
  EXPECT_EQ(split.train.NumRows(), 600u);
  EXPECT_EQ(split.val.NumRows(), 200u);
  EXPECT_EQ(split.test.NumRows(), 200u);
}

TEST(SplitTest, PartitionIsDisjointAndComplete) {
  const Dataset d = SmallCompas();
  const TrainValTestSplit split = SplitDataset(d, 0.5, 0.25, 3);
  std::set<size_t> seen;
  for (size_t i : split.train_indices) seen.insert(i);
  for (size_t i : split.val_indices) seen.insert(i);
  for (size_t i : split.test_indices) seen.insert(i);
  EXPECT_EQ(seen.size(), d.NumRows());
  EXPECT_EQ(split.train_indices.size() + split.val_indices.size() +
                split.test_indices.size(),
            d.NumRows());
}

TEST(SplitTest, DeterministicGivenSeed) {
  const Dataset d = SmallCompas();
  const TrainValTestSplit a = SplitDefault(d, 42);
  const TrainValTestSplit b = SplitDefault(d, 42);
  EXPECT_EQ(a.train_indices, b.train_indices);
  EXPECT_EQ(a.test_indices, b.test_indices);
}

TEST(SplitTest, DifferentSeedsShuffleDifferently) {
  const Dataset d = SmallCompas();
  const TrainValTestSplit a = SplitDefault(d, 1);
  const TrainValTestSplit b = SplitDefault(d, 2);
  EXPECT_NE(a.train_indices, b.train_indices);
}

TEST(SplitTest, RowsCarryLabels) {
  const Dataset d = SmallCompas();
  const TrainValTestSplit split = SplitDefault(d, 9);
  for (size_t k = 0; k < split.val_indices.size(); ++k) {
    EXPECT_EQ(split.val.Label(k), d.Label(split.val_indices[k]));
  }
}

TEST(SplitTest, ZeroValFraction) {
  const Dataset d = SmallCompas();
  const TrainValTestSplit split = SplitDataset(d, 0.8, 0.0, 1);
  EXPECT_EQ(split.val.NumRows(), 0u);
  EXPECT_EQ(split.train.NumRows(), 800u);
  EXPECT_EQ(split.test.NumRows(), 200u);
}

}  // namespace
}  // namespace omnifair
