#include "core/run_profile.h"

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/omnifair.h"
#include "data/datasets.h"
#include "data/split.h"
#include "ml/trainer_registry.h"
#include "tests/testing_json.h"
#include "util/json_writer.h"

namespace omnifair {
namespace {

using ::omnifair::testing::JsonIsValid;

// ---------------------------------------------------------------------------
// RunProfiler / RunStageTimer
// ---------------------------------------------------------------------------

TEST(RunProfilerTest, RecordAccumulatesPerStage) {
  RunProfiler profiler;
  profiler.Record(RunStage::kTrainerFit, 1000, 800);
  profiler.Record(RunStage::kTrainerFit, 2000, 1200);
  profiler.Record(RunStage::kPredict, 500, -1);  // no CPU clock
  EXPECT_EQ(profiler.Calls(RunStage::kTrainerFit), 2);
  EXPECT_DOUBLE_EQ(profiler.WallUs(RunStage::kTrainerFit), 3.0);
  EXPECT_DOUBLE_EQ(profiler.CpuUs(RunStage::kTrainerFit), 2.0);
  EXPECT_EQ(profiler.Calls(RunStage::kPredict), 1);
  EXPECT_DOUBLE_EQ(profiler.CpuUs(RunStage::kPredict), 0.0);
  EXPECT_EQ(profiler.Calls(RunStage::kSetup), 0);
}

TEST(RunProfilerTest, TimerRecordsElapsedWall) {
  RunProfiler profiler;
  {
    RunStageTimer timer(&profiler, RunStage::kWeightCompute);
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(profiler.Calls(RunStage::kWeightCompute), 1);
  EXPECT_GE(profiler.WallUs(RunStage::kWeightCompute), 4000.0);
}

TEST(RunProfilerTest, NullProfilerIsInert) {
  // Must not crash or record anywhere; the disabled path makes no clock calls.
  RunStageTimer timer(nullptr, RunStage::kTrainerFit);
}

TEST(RunProfilerTest, ConcurrentRecordsDoNotLoseCalls) {
  RunProfiler profiler;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&profiler] {
      for (int i = 0; i < kPerThread; ++i) {
        profiler.Record(RunStage::kConstraintEval, 10, 10);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(profiler.Calls(RunStage::kConstraintEval),
            static_cast<long long>(kThreads) * kPerThread);
  EXPECT_DOUBLE_EQ(profiler.WallUs(RunStage::kConstraintEval),
                   kThreads * kPerThread * 10 / 1000.0);
}

TEST(RunStageNameTest, CoversEveryStage) {
  EXPECT_STREQ(RunStageName(RunStage::kSetup), "setup");
  EXPECT_STREQ(RunStageName(RunStage::kTrainerFit), "trainer_fit");
  EXPECT_STREQ(RunStageName(RunStage::kWeightCompute), "weight_compute");
  EXPECT_STREQ(RunStageName(RunStage::kPredict), "predict");
  EXPECT_STREQ(RunStageName(RunStage::kConstraintEval), "constraint_eval");
  EXPECT_STREQ(RunStageName(RunStage::kCheckpoint), "checkpoint");
}

// ---------------------------------------------------------------------------
// BuildRunProfile
// ---------------------------------------------------------------------------

TEST(BuildRunProfileTest, StagesSumToTotalWithOtherRemainder) {
  RunProfiler profiler;
  profiler.Record(RunStage::kTrainerFit, 600000, 500000);  // 600us
  profiler.Record(RunStage::kPredict, 100000, 90000);      // 100us
  const MetricsSnapshot empty;
  const RunProfile profile = BuildRunProfile(
      profiler, empty, empty, "lambda_tuner", 1,
      /*total_wall_us=*/1000.0, /*total_cpu_us=*/800.0);
  ASSERT_EQ(static_cast<int>(profile.stages.size()), kNumRunStages + 1);
  EXPECT_EQ(profile.stages.back().name, "other");
  double sum = 0.0;
  for (const RunProfile::Stage& stage : profile.stages) sum += stage.wall_us;
  EXPECT_NEAR(sum, profile.total_wall_us, 1e-6);
  EXPECT_NEAR(profile.stages.back().wall_us, 300.0, 1e-6);
  EXPECT_FALSE(profile.empty());
}

TEST(BuildRunProfileTest, OtherClampedWhenParallelStagesExceedWall) {
  RunProfiler profiler;
  // Two threads' worth of fit time on a 1ms run: sums past elapsed wall.
  profiler.Record(RunStage::kTrainerFit, 900000, 0);
  profiler.Record(RunStage::kTrainerFit, 900000, 0);
  const MetricsSnapshot empty;
  const RunProfile profile =
      BuildRunProfile(profiler, empty, empty, "grid_search", 2, 1000.0, 0.0);
  EXPECT_DOUBLE_EQ(profile.stages.back().wall_us, 0.0);
}

TEST(BuildRunProfileTest, CounterDeltasAreAttributed) {
  RunProfiler profiler;
  MetricsSnapshot before;
  before.counters = {{"trainer.fits", 10}, {"weights.cache_hits", 4}};
  MetricsSnapshot after;
  after.counters = {{"trainer.fits", 25},
                    {"weights.cache_hits", 13},
                    {"weights.cache_misses", 3}};
  const RunProfile profile =
      BuildRunProfile(profiler, before, after, "hill_climb", 1, 100.0, 0.0);
  EXPECT_EQ(profile.trainer_fits, 15);
  EXPECT_EQ(profile.weight_cache_hits, 9);
  EXPECT_EQ(profile.weight_cache_misses, 3);
  EXPECT_NEAR(profile.WeightCacheHitRate(), 9.0 / 12.0, 1e-12);
}

TEST(RunProfileTest, TextAndJsonRendering) {
  RunProfiler profiler;
  profiler.Record(RunStage::kTrainerFit, 500000, 400000);
  MetricsSnapshot before;
  MetricsSnapshot after;
  after.counters = {{"trainer.fits", 7}, {"weights.cache_hits", 5},
                    {"weights.cache_misses", 2}};
  const RunProfile profile =
      BuildRunProfile(profiler, before, after, "lambda_tuner", 1, 600.0, 450.0);

  const std::string text = profile.ToText();
  EXPECT_NE(text.find("lambda_tuner"), std::string::npos);
  EXPECT_NE(text.find("trainer_fit"), std::string::npos);
  EXPECT_NE(text.find("fits: 7"), std::string::npos);
  EXPECT_NE(text.find("weight cache"), std::string::npos);

  const std::string json = profile.ToJson();
  EXPECT_TRUE(JsonIsValid(json)) << json;
  EXPECT_NE(json.find("\"algorithm\":\"lambda_tuner\""), std::string::npos);
  EXPECT_NE(json.find("\"stages\""), std::string::npos);
  EXPECT_NE(json.find("\"trainer_fits\":7"), std::string::npos);

  const RunProfile blank;
  EXPECT_TRUE(blank.empty());
  EXPECT_NE(blank.ToText().find("empty"), std::string::npos);
}

// ---------------------------------------------------------------------------
// End-to-end: FairModel::run_profile out of OmniFair::Train
// ---------------------------------------------------------------------------

struct ProfileFixture {
  Dataset data;
  TrainValTestSplit split;
  FairnessSpec spec;

  ProfileFixture() {
    SyntheticOptions options;
    options.num_rows = 2000;
    options.seed = 5;
    data = MakeCompasDataset(options);
    split = SplitDefault(data, 11);
    spec = MakeSpec(
        GroupByAttributeValues("race", {"African-American", "Caucasian"}),
        "sp", 0.03);
  }
};

TEST(RunProfileIntegrationTest, TrainPopulatesProfileAndStagesSumToWall) {
  ProfileFixture fx;
  auto trainer = MakeTrainer("lr");
  OmniFair omnifair;
  auto fair =
      omnifair.Train(fx.split.train, fx.split.val, trainer.get(), {fx.spec});
  ASSERT_TRUE(fair.ok()) << fair.status();

  const RunProfile& profile = fair->run_profile;
  ASSERT_FALSE(profile.empty());
  EXPECT_EQ(profile.algorithm, fair->tune_report.algorithm);
  EXPECT_GT(profile.total_wall_us, 0.0);
  EXPECT_EQ(profile.trainer_fits, fair->models_trained);

  // The explain acceptance contract: on a serial run the stage rows (with
  // the "other" remainder) account for the full wall clock within 10%.
  double stage_sum_us = 0.0;
  long long fit_calls = 0;
  for (const RunProfile::Stage& stage : profile.stages) {
    EXPECT_GE(stage.wall_us, 0.0) << stage.name;
    stage_sum_us += stage.wall_us;
    if (stage.name == "trainer_fit") fit_calls = stage.calls;
  }
  EXPECT_NEAR(stage_sum_us, profile.total_wall_us,
              0.10 * profile.total_wall_us);
  EXPECT_EQ(fit_calls, static_cast<long long>(fair->models_trained));
}

TEST(RunProfileIntegrationTest, EmptyWhenTelemetryOff) {
  ProfileFixture fx;
  auto trainer = MakeTrainer("lr");
  OmniFairOptions options;
  options.telemetry.level = TelemetryLevel::kOff;
  OmniFair omnifair(options);
  auto fair =
      omnifair.Train(fx.split.train, fx.split.val, trainer.get(), {fx.spec});
  ASSERT_TRUE(fair.ok()) << fair.status();
  EXPECT_TRUE(fair->run_profile.empty());
  EXPECT_GT(fair->models_trained, 0);  // the search itself still ran
}

}  // namespace
}  // namespace omnifair
