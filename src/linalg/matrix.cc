#include "linalg/matrix.h"

#include <algorithm>

#include "linalg/simd.h"
#include "util/logging.h"

namespace omnifair {

size_t Matrix::CheckedSize(size_t rows, size_t cols) {
  size_t total = 0;
  OF_CHECK(!__builtin_mul_overflow(rows, cols, &total))
      << "matrix shape " << rows << " x " << cols
      << " overflows size_t element count";
  return total;
}

void Matrix::DieWrongStorage(const char* op) const {
  OF_CHECK(false) << "Matrix::" << op << " requires "
                  << (storage_ == Storage::kFloat32 ? "double" : "float32")
                  << " storage; this matrix is "
                  << (storage_ == Storage::kFloat32 ? "float32" : "double")
                  << " (see ToFloat64/ToFloat32)";
  __builtin_unreachable();
}

Matrix Matrix::Float32(size_t rows, size_t cols) {
  Matrix m;
  m.rows_ = rows;
  m.cols_ = cols;
  m.storage_ = Storage::kFloat32;
  m.fdata_.assign(CheckedSize(rows, cols), 0.0f);
  return m;
}

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows)
    : rows_(rows.size()), cols_(0) {
  for (const auto& row : rows) {
    if (cols_ == 0) cols_ = row.size();
    OF_CHECK_EQ(row.size(), cols_) << "ragged initializer rows";
    data_.insert(data_.end(), row.begin(), row.end());
  }
}

std::vector<double> Matrix::RowVector(size_t r) const {
  OF_CHECK_LT(r, rows_);
  if (storage_ == Storage::kFloat32) {
    const float* row = RowF(r);
    return std::vector<double>(row, row + cols_);
  }
  return std::vector<double>(Row(r), Row(r) + cols_);
}

std::vector<double> Matrix::ColVector(size_t c) const {
  OF_CHECK_LT(c, cols_);
  std::vector<double> col(rows_);
  for (size_t r = 0; r < rows_; ++r) col[r] = (*this)(r, c);
  return col;
}

Matrix Matrix::SelectRows(const std::vector<size_t>& indices) const {
  if (storage_ == Storage::kFloat32) {
    Matrix out = Float32(indices.size(), cols_);
    for (size_t i = 0; i < indices.size(); ++i) {
      OF_CHECK_LT(indices[i], rows_);
      const float* src = RowF(indices[i]);
      std::copy(src, src + cols_, out.RowF(i));
    }
    return out;
  }
  Matrix out(indices.size(), cols_);
  for (size_t i = 0; i < indices.size(); ++i) {
    OF_CHECK_LT(indices[i], rows_);
    const double* src = Row(indices[i]);
    std::copy(src, src + cols_, out.Row(i));
  }
  return out;
}

void Matrix::AppendRow(const std::vector<double>& row) {
  if (rows_ == 0 && cols_ == 0) cols_ = row.size();
  OF_CHECK_EQ(row.size(), cols_) << "row width mismatch";
  // Growing by one row must also stay inside size_t.
  CheckedSize(rows_ + 1, cols_);
  if (storage_ == Storage::kFloat32) {
    fdata_.reserve(fdata_.size() + cols_);
    for (double v : row) fdata_.push_back(static_cast<float>(v));
  } else {
    data_.insert(data_.end(), row.begin(), row.end());
  }
  ++rows_;
}

std::vector<double> Matrix::MatVec(const std::vector<double>& x) const {
  std::vector<double> y;
  MatVecInto(x, &y);
  return y;
}

std::vector<double> Matrix::TransposeMatVec(const std::vector<double>& x) const {
  std::vector<double> y;
  TransposeMatVecInto(x, &y);
  return y;
}

void Matrix::MatVecInto(const std::vector<double>& x,
                        std::vector<double>* y) const {
  OF_CHECK_EQ(x.size(), cols_);
  y->resize(rows_);
  MatVecInto(x.data(), y->data());
}

void Matrix::MatVecInto(const double* x, double* y) const {
  const simd::Kernels& k = simd::Active();
  if (storage_ == Storage::kFloat32) {
    const float* m = fdata_.data();
    for (size_t r = 0; r < rows_; ++r) y[r] = k.dot_f32(m + r * cols_, x, cols_);
    return;
  }
  const double* m = data_.data();
  for (size_t r = 0; r < rows_; ++r) y[r] = k.dot(m + r * cols_, x, cols_);
}

void Matrix::MatVecInto(const float* x, double* y) const {
  if (storage_ != Storage::kFloat64) DieWrongStorage("MatVecInto(float)");
  const simd::Kernels& k = simd::Active();
  const double* m = data_.data();
  for (size_t r = 0; r < rows_; ++r) y[r] = k.dot_f32(x, m + r * cols_, cols_);
}

void Matrix::TransposeMatVecInto(const std::vector<double>& x,
                                 std::vector<double>* y) const {
  OF_CHECK_EQ(x.size(), rows_);
  y->assign(cols_, 0.0);
  TransposeMatVecInto(x.data(), y->data());
}

void Matrix::TransposeMatVecInto(const double* x, double* y) const {
  std::fill(y, y + cols_, 0.0);
  const simd::Kernels& k = simd::Active();
  if (storage_ == Storage::kFloat32) {
    const float* m = fdata_.data();
    for (size_t r = 0; r < rows_; ++r) k.axpy_f32(x[r], m + r * cols_, y, cols_);
    return;
  }
  const double* m = data_.data();
  for (size_t r = 0; r < rows_; ++r) k.axpy(x[r], m + r * cols_, y, cols_);
}

Matrix Matrix::ToFloat32() const {
  if (storage_ == Storage::kFloat32) return *this;
  Matrix out = Float32(rows_, cols_);
  for (size_t i = 0; i < data_.size(); ++i) {
    out.fdata_[i] = static_cast<float>(data_[i]);
  }
  return out;
}

Matrix Matrix::ToFloat64() const {
  if (storage_ == Storage::kFloat64) return *this;
  Matrix out(rows_, cols_);
  for (size_t i = 0; i < fdata_.size(); ++i) {
    out.data_[i] = static_cast<double>(fdata_[i]);
  }
  return out;
}

const void* Matrix::RawData() const {
  if (storage_ == Storage::kFloat32) {
    return static_cast<const void*>(fdata_.data());
  }
  return static_cast<const void*>(data_.data());
}

size_t Matrix::RawBytes() const {
  if (storage_ == Storage::kFloat32) return fdata_.size() * sizeof(float);
  return data_.size() * sizeof(double);
}

}  // namespace omnifair
