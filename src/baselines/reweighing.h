#ifndef OMNIFAIR_BASELINES_REWEIGHING_H_
#define OMNIFAIR_BASELINES_REWEIGHING_H_

#include <vector>

#include "baselines/baseline.h"
#include "core/groups.h"

namespace omnifair {

/// Kamiran & Calders [28] reweighing (preprocessing). Each training example
/// gets weight w(g, y) = P(g) * P(y) / P(g, y), which removes the
/// statistical dependence between group membership and the label in the
/// weighted empirical distribution. Model-agnostic; supports statistical
/// parity only (no access to h(x) at preprocessing time).
///
/// The original method has no accuracy-fairness knob; following common
/// benchmarking practice (FairPrep [41]) we add a strength parameter
/// eta (w_eta = 1 + eta * (w - 1), eta in a small grid including
/// overcorrection > 1) and pick the most accurate validating setting.
class KamiranReweighing : public FairnessBaseline {
 public:
  std::string Name() const override { return "kamiran"; }
  bool SupportsMetric(const FairnessMetric& metric) const override;
  Result<BaselineResult> Train(const Dataset& train, const Dataset& val,
                               Trainer* trainer, const FairnessSpec& spec) override;

  /// The closed-form Kamiran weights for the given grouping of `train`.
  /// Rows outside every group get weight 1.
  static std::vector<double> ComputeWeights(const Dataset& train,
                                            const GroupMap& groups);
};

}  // namespace omnifair

#endif  // OMNIFAIR_BASELINES_REWEIGHING_H_
