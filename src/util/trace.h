#ifndef OMNIFAIR_UTIL_TRACE_H_
#define OMNIFAIR_UTIL_TRACE_H_

#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "util/status.h"
#include "util/telemetry.h"

namespace omnifair {

/// One completed span: a Chrome trace "X" (complete) event. `name` must be a
/// string literal (events store the pointer, not a copy — spans are emitted
/// from hot paths and must not allocate).
struct TraceEvent {
  const char* name = nullptr;
  uint64_t start_ns = 0;  ///< steady-clock time since process trace epoch
  uint64_t duration_ns = 0;
  uint32_t thread_id = 0;  ///< dense id assigned per recording thread
  uint16_t depth = 0;      ///< nesting depth at the time the span opened (1-based)
};

/// Process-global collector of trace spans. Each recording thread owns a
/// buffer (registered on first use and kept alive after thread exit) guarded
/// by its own — virtually always uncontended — mutex, so recording never
/// touches global state. Export/Clear walk all buffers under the registry
/// mutex. Spans are only recorded at TelemetryLevel::kFullTrace.
class TraceCollector {
 public:
  static TraceCollector& Global();

  /// Appends a completed event to the calling thread's buffer. Buffers cap at
  /// kMaxEventsPerThread; events beyond that are counted as dropped.
  void Record(const TraceEvent& event);

  /// Total buffered events across all threads.
  size_t EventCount() const;
  /// Events dropped because a thread buffer hit its cap.
  size_t DroppedCount() const;

  /// All buffered events (every thread), ordered by start time.
  std::vector<TraceEvent> Events() const;

  /// Serializes the buffered events as a Chrome trace document — load it via
  /// chrome://tracing or https://ui.perfetto.dev. Timestamps are microseconds
  /// since the trace epoch.
  std::string ToChromeJson() const;
  Status WriteChromeJson(const std::string& path) const;

  /// Drops all buffered events (buffers stay registered).
  void Clear();

  static constexpr size_t kMaxEventsPerThread = 1 << 20;

 private:
  struct ThreadBuffer {
    std::mutex mu;
    std::vector<TraceEvent> events;
    uint32_t thread_id = 0;
    size_t dropped = 0;
  };

  TraceCollector() = default;
  ThreadBuffer* LocalBuffer();

  mutable std::mutex mu_;  // guards buffers_ (the list, not the events)
  std::vector<std::shared_ptr<ThreadBuffer>> buffers_;
  uint32_t next_thread_id_ = 0;
};

/// Nanoseconds since the process trace epoch (first use of the clock).
uint64_t TraceNowNs();

/// RAII span. Construction snapshots the clock and bumps the thread's
/// nesting depth; destruction records the complete event. When the effective
/// telemetry level is below kFullTrace the span is inert: one thread-local
/// read, no clock calls, no allocation.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name);
  ~TraceSpan();

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  bool active() const { return active_; }

 private:
  const char* name_;
  uint64_t start_ns_ = 0;
  uint16_t depth_ = 0;
  bool active_;
};

}  // namespace omnifair

/// Opens a scoped trace span: `OF_TRACE_SPAN("lambda_step");`. The name must
/// be a string literal. No-op below TelemetryLevel::kFullTrace.
#define OF_TRACE_SPAN(name) \
  ::omnifair::TraceSpan OF_TELEMETRY_CONCAT(of_trace_span_, __LINE__)(name)

#endif  // OMNIFAIR_UTIL_TRACE_H_
