#include "core/spec.h"

#include <gtest/gtest.h>

#include "tests/testing_fairness.h"

namespace omnifair {
namespace {

using testing_fairness::MakeBiasedDataset;

TEST(SpecTest, MakeSpecByKindAndName) {
  const FairnessSpec by_kind =
      MakeSpec(GroupByAttribute("grp"), MetricKind::kStatisticalParity, 0.05);
  EXPECT_EQ(by_kind.metric->Name(), "sp");
  EXPECT_DOUBLE_EQ(by_kind.epsilon, 0.05);

  const FairnessSpec by_name = MakeSpec(GroupByAttribute("grp"), "fnr", 0.1);
  EXPECT_EQ(by_name.metric->Name(), "fnr");
}

TEST(SpecTest, TwoGroupsInduceOneConstraint) {
  const Dataset d = MakeBiasedDataset(100, 0.6, 0.3, 1);
  const FairnessSpec spec = MakeSpec(GroupByAttribute("grp"), "sp", 0.03);
  const auto constraints = InduceConstraints(spec, d);
  ASSERT_TRUE(constraints.ok());
  ASSERT_EQ(constraints->size(), 1u);
  EXPECT_EQ((*constraints)[0].group1, "a");
  EXPECT_EQ((*constraints)[0].group2, "b");
  EXPECT_DOUBLE_EQ((*constraints)[0].epsilon, 0.03);
}

TEST(SpecTest, MGroupsInduceChoose2Constraints) {
  // Build a dataset with a 4-category column.
  Dataset d;
  Column g = Column::Categorical("g", {"a", "b", "c", "d"});
  Column x = Column::Numeric("x");
  for (int i = 0; i < 40; ++i) {
    g.AppendCode(i % 4);
    x.AppendNumeric(i);
  }
  d.AddColumn(std::move(g));
  d.AddColumn(std::move(x));
  d.SetLabels(std::vector<int>(40, 0));

  const FairnessSpec spec = MakeSpec(GroupByAttribute("g"), "mr", 0.05);
  const auto constraints = InduceConstraints(spec, d);
  ASSERT_TRUE(constraints.ok());
  EXPECT_EQ(constraints->size(), 6u);  // C(4,2)
}

TEST(SpecTest, SingleGroupFails) {
  Dataset d;
  Column g = Column::Categorical("g", {"only"});
  Column x = Column::Numeric("x");
  for (int i = 0; i < 10; ++i) {
    g.AppendCode(0);
    x.AppendNumeric(i);
  }
  d.AddColumn(std::move(g));
  d.AddColumn(std::move(x));
  d.SetLabels(std::vector<int>(10, 1));

  const FairnessSpec spec = MakeSpec(GroupByAttribute("g"), "sp", 0.05);
  const auto constraints = InduceConstraints(spec, d);
  EXPECT_FALSE(constraints.ok());
  EXPECT_EQ(constraints.status().code(), StatusCode::kInvalidArgument);
}

TEST(SpecTest, MissingGroupingFails) {
  FairnessSpec spec;
  spec.metric = MakeMetricByName("sp");
  const Dataset d = MakeBiasedDataset(10, 0.5, 0.5, 2);
  EXPECT_FALSE(InduceConstraints(spec, d).ok());
}

TEST(SpecTest, MissingMetricFails) {
  FairnessSpec spec;
  spec.grouping = GroupByAttribute("grp");
  spec.epsilon = 0.1;
  const Dataset d = MakeBiasedDataset(10, 0.5, 0.5, 3);
  EXPECT_FALSE(InduceConstraints(spec, d).ok());
}

TEST(SpecTest, NegativeEpsilonFails) {
  const Dataset d = MakeBiasedDataset(10, 0.5, 0.5, 4);
  const FairnessSpec spec = MakeSpec(GroupByAttribute("grp"), "sp", -0.1);
  EXPECT_FALSE(InduceConstraints(spec, d).ok());
}

TEST(SpecTest, MultipleSpecsConcatenate) {
  const Dataset d = MakeBiasedDataset(100, 0.6, 0.3, 5);
  const std::vector<FairnessSpec> specs = {
      MakeSpec(GroupByAttribute("grp"), "sp", 0.03),
      MakeSpec(GroupByAttribute("grp"), "fnr", 0.05),
  };
  const auto constraints = InduceConstraints(specs, d);
  ASSERT_TRUE(constraints.ok());
  ASSERT_EQ(constraints->size(), 2u);
  EXPECT_EQ((*constraints)[0].metric->Name(), "sp");
  EXPECT_EQ((*constraints)[1].metric->Name(), "fnr");
}

TEST(SpecTest, EqualizedOddsIsFprPlusFnr) {
  const std::vector<FairnessSpec> specs =
      EqualizedOddsSpecs(GroupByAttribute("grp"), 0.04);
  ASSERT_EQ(specs.size(), 2u);
  EXPECT_EQ(specs[0].metric->Name(), "fpr");
  EXPECT_EQ(specs[1].metric->Name(), "fnr");
  EXPECT_DOUBLE_EQ(specs[0].epsilon, 0.04);
  EXPECT_DOUBLE_EQ(specs[1].epsilon, 0.04);
  const Dataset d = MakeBiasedDataset(100, 0.6, 0.3, 7);
  EXPECT_TRUE(InduceConstraints(specs, d).ok());
}

TEST(SpecTest, PredictiveParityIsForPlusFdr) {
  const std::vector<FairnessSpec> specs =
      PredictiveParitySpecs(GroupByAttribute("grp"), 0.05);
  ASSERT_EQ(specs.size(), 2u);
  EXPECT_EQ(specs[0].metric->Name(), "for");
  EXPECT_EQ(specs[1].metric->Name(), "fdr");
  EXPECT_TRUE(specs[0].metric->DependsOnPredictions());
  EXPECT_TRUE(specs[1].metric->DependsOnPredictions());
}

TEST(SpecTest, EmptySpecListFails) {
  const Dataset d = MakeBiasedDataset(10, 0.5, 0.5, 6);
  EXPECT_FALSE(InduceConstraints(std::vector<FairnessSpec>{}, d).ok());
}

}  // namespace
}  // namespace omnifair
