// Ablation: what does the monotonicity-guided search of Algorithm 1 buy
// over generic hyperparameter search? We fix the workload (COMPAS, SP,
// LR) and compare three tuners under an equal correctness target:
//   - omnifair  : exponential bounding + binary search (Algorithm 1)
//   - grid      : uniform grid over lambda (the Celis-style loop)
//   - random    : uniform random lambda draws, same budget as the grid
// Metrics: trainer fits consumed, feasibility, validation accuracy of the
// returned model. Expected: Algorithm 1 reaches the same quality with a
// small, epsilon-independent number of fits.

#include <cmath>

#include "bench/bench_common.h"

#include "core/grid_search.h"
#include "core/problem.h"
#include "util/random.h"

namespace omnifair {
namespace bench {
namespace {

struct AblationRow {
  bool satisfied = false;
  double accuracy = 0.0;
  int fits = 0;
};

AblationRow RunOmniFair(BenchReporter& reporter, const TrainValTestSplit& split,
                        const FairnessSpec& spec) {
  auto trainer = MakeTrainer("lr");
  OmniFair omnifair;
  auto fair = omnifair.Train(split.train, split.val, trainer.get(), {spec});
  AblationRow row;
  if (!fair.ok()) return row;
  row.satisfied = fair->satisfied;
  row.accuracy = fair->val_accuracy;
  row.fits = fair->models_trained;
  // Algorithm 1 trajectories are small (a dozen points); keep them all so
  // the JSON shows how the fit count stays flat while epsilon tightens.
  if (!fair->tune_report.empty()) {
    char label[48];
    std::snprintf(label, sizeof(label), "omnifair eps=%.2f", spec.epsilon);
    reporter.AddTrajectory(label, fair->tune_report);
  }
  return row;
}

AblationRow RunGrid(const TrainValTestSplit& split, const FairnessSpec& spec,
                    int points) {
  auto trainer = MakeTrainer("lr");
  auto problem = FairnessProblem::Create(split.train, split.val, {spec},
                                         trainer.get());
  AblationRow row;
  if (!problem.ok()) return row;
  GridSearchOptions options;
  options.points_per_dim = points;
  const GridSearchTuner grid(options);
  MultiTuneResult result = grid.Run(**problem);
  row.satisfied = result.satisfied;
  row.accuracy = result.val_accuracy;
  row.fits = result.models_trained;
  return row;
}

AblationRow RunRandom(const TrainValTestSplit& split, const FairnessSpec& spec,
                      int budget, uint64_t seed) {
  auto trainer = MakeTrainer("lr");
  auto problem = FairnessProblem::Create(split.train, split.val, {spec},
                                         trainer.get());
  AblationRow row;
  if (!problem.ok()) return row;
  Rng rng(seed);
  double best_accuracy = -1.0;
  for (int i = 0; i < budget; ++i) {
    const double lambda = rng.NextUniform(-1.0, 1.0);
    auto model = (*problem)->FitWithLambdas({lambda}, nullptr);
    const std::vector<int> preds = (*problem)->PredictVal(*model);
    const double fp = (*problem)->val_evaluator().FairnessPart(0, preds);
    const double accuracy = (*problem)->ValAccuracy(preds);
    if (std::fabs(fp) <= spec.epsilon && accuracy > best_accuracy) {
      best_accuracy = accuracy;
      row.satisfied = true;
      row.accuracy = accuracy;
    }
  }
  row.fits = (*problem)->models_trained();
  return row;
}

void RunSubsampleAblation(BenchReporter& reporter) {
  PrintHeader("Ablation: subsampled bounding fits (paper future work, §8)");
  std::printf("%-12s %6s %10s %8s %8s\n", "subsample", "sat", "val acc", "time",
              "fits");
  SyntheticOptions data_options;
  data_options.num_rows = 3 * DefaultRows("adult");
  data_options.seed = 2700;
  const Dataset data = MakeAdultDataset(data_options);
  const TrainValTestSplit split = SplitDefault(data, 2800);
  const FairnessSpec spec = MakeSpec(MainGroups("adult"), "sp", 0.03);
  for (double fraction : {1.0, 0.5, 0.25, 0.1}) {
    auto trainer = MakeTrainer("lr");
    OmniFairOptions options;
    options.hill_climb.tune.bounding_subsample = fraction;
    OmniFair omnifair(options);
    Stopwatch stopwatch;
    auto fair = omnifair.Train(split.train, split.val, trainer.get(), {spec});
    const double seconds = stopwatch.ElapsedSeconds();
    if (!fair.ok()) continue;
    std::printf("%-12.2f %6s %9.1f%% %7.2fs %8d\n", fraction,
                fair->satisfied ? "yes" : "no", 100.0 * fair->val_accuracy,
                seconds, fair->models_trained);
    reporter.AddRow("subsample")
        .Value("fraction", fraction)
        .Value("satisfied", fair->satisfied ? 1.0 : 0.0)
        .Value("val_accuracy", fair->val_accuracy)
        .Value("seconds", seconds)
        .Value("models_trained", fair->models_trained);
  }
}

void Run(BenchReporter& reporter) {
  PrintHeader("Ablation: Algorithm 1 vs grid vs random lambda search");
  reporter.Config("dataset", "compas");
  reporter.Config("metric", "sp");
  std::printf("%-8s | %-22s | %-22s | %-22s\n", "eps", "omnifair (alg.1)",
              "grid (33 pts)", "random (33 draws)");
  std::printf("%-8s | %6s %8s %5s | %6s %8s %5s | %6s %8s %5s\n", "", "sat",
              "val acc", "fits", "sat", "val acc", "fits", "sat", "val acc",
              "fits");

  const Dataset data = MakeBenchDataset("compas", 2500);
  const TrainValTestSplit split = SplitDefault(data, 2600);
  for (double epsilon : {0.10, 0.05, 0.03, 0.02, 0.01}) {
    const FairnessSpec spec = MakeSpec(MainGroups("compas"), "sp", epsilon);
    const AblationRow a = RunOmniFair(reporter, split, spec);
    const AblationRow g = RunGrid(split, spec, 33);
    const AblationRow r = RunRandom(split, spec, 33, 99);
    const struct {
      const char* tuner;
      const AblationRow& row;
    } rows[] = {{"omnifair", a}, {"grid", g}, {"random", r}};
    for (const auto& entry : rows) {
      reporter.AddRow("search_ablation")
          .Label("tuner", entry.tuner)
          .Value("epsilon", epsilon)
          .Value("satisfied", entry.row.satisfied ? 1.0 : 0.0)
          .Value("val_accuracy", entry.row.accuracy)
          .Value("fits", entry.row.fits);
    }
    auto cell = [](const AblationRow& row) {
      static char buf[64];
      std::snprintf(buf, sizeof(buf), "%6s %7.1f%% %5d", row.satisfied ? "yes" : "no",
                    100.0 * row.accuracy, row.fits);
      return std::string(buf);
    };
    std::printf("%-8.2f | %s | %s | %s\n", epsilon, cell(a).c_str(),
                cell(g).c_str(), cell(r).c_str());
  }
}

}  // namespace
}  // namespace bench
}  // namespace omnifair

int main() {
  omnifair::InitTelemetryFromEnv();
  omnifair::bench::BenchReporter reporter(
      "ablation_search", "Ablation: Algorithm 1 vs grid vs random lambda search");
  omnifair::bench::Run(reporter);
  omnifair::bench::RunSubsampleAblation(reporter);
  return omnifair::bench::FinishBench(reporter);
}
