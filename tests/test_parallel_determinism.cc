// Bit-identity contracts of the parallel tuner paths (DESIGN.md §10): for
// any thread count, the parallel grid search, random forest, λ-tuner probes
// and cached weight computation must reproduce the serial results exactly —
// same doubles, same TuneReport trajectory, same chosen model.

#include <atomic>
#include <cmath>
#include <memory>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "core/grid_search.h"
#include "core/lambda_tuner.h"
#include "core/omnifair.h"
#include "core/problem.h"
#include "core/weights.h"
#include "ml/logistic_regression.h"
#include "ml/random_forest.h"
#include "tests/testing_fairness.h"

namespace omnifair {
namespace {

using testing_fairness::AlternatingPredictions;
using testing_fairness::MakeBiasedDataset;

std::vector<FairnessSpec> TwoConstraintSpecs(double epsilon) {
  return {MakeSpec(GroupByAttribute("grp"), "sp", epsilon),
          MakeSpec(GroupByAttribute("grp"), "fnr", epsilon)};
}

struct GridRun {
  MultiTuneResult result;
  std::vector<GridPoint> points;
  TuneReport report;
};

GridRun RunGrid(const Dataset& train, const Dataset& val,
                const std::vector<FairnessSpec>& specs, int num_threads,
                int points_per_dim = 7) {
  LogisticRegressionTrainer trainer;
  auto problem = FairnessProblem::Create(train, val, specs, &trainer);
  EXPECT_TRUE(problem.ok()) << problem.status();
  GridSearchOptions options;
  options.points_per_dim = points_per_dim;
  options.max_lambda = 0.4;
  options.num_threads = num_threads;
  const GridSearchTuner tuner(options);
  GridRun run;
  run.report.algorithm = "grid_search";
  (*problem)->StartTuneReport(&run.report);
  run.result = tuner.RunCollecting(**problem, &run.points);
  (*problem)->StartTuneReport(nullptr);
  return run;
}

void ExpectSameResult(const MultiTuneResult& serial, const MultiTuneResult& parallel) {
  EXPECT_EQ(serial.satisfied, parallel.satisfied);
  ASSERT_EQ(serial.lambdas.size(), parallel.lambdas.size());
  for (size_t j = 0; j < serial.lambdas.size(); ++j) {
    EXPECT_EQ(serial.lambdas[j], parallel.lambdas[j]) << "lambda " << j;
  }
  EXPECT_EQ(serial.val_accuracy, parallel.val_accuracy);
  ASSERT_EQ(serial.val_fairness_parts.size(), parallel.val_fairness_parts.size());
  for (size_t j = 0; j < serial.val_fairness_parts.size(); ++j) {
    EXPECT_EQ(serial.val_fairness_parts[j], parallel.val_fairness_parts[j]);
  }
  EXPECT_EQ(serial.models_trained, parallel.models_trained);
}

TEST(ParallelDeterminism, GridSearchBitIdenticalToSerialAcrossSeeds) {
  for (uint64_t seed : {11u, 12u, 13u}) {
    const Dataset data = MakeBiasedDataset(1200, 0.7, 0.3, seed);
    const GridRun serial = RunGrid(data, data, TwoConstraintSpecs(0.05), 1);
    const GridRun parallel = RunGrid(data, data, TwoConstraintSpecs(0.05), 4);

    ExpectSameResult(serial.result, parallel.result);

    // Every evaluated grid point matches, in the same order.
    ASSERT_EQ(serial.points.size(), parallel.points.size()) << "seed " << seed;
    for (size_t p = 0; p < serial.points.size(); ++p) {
      EXPECT_EQ(serial.points[p].lambdas, parallel.points[p].lambdas);
      EXPECT_EQ(serial.points[p].val_accuracy, parallel.points[p].val_accuracy);
      EXPECT_EQ(serial.points[p].val_fairness_parts,
                parallel.points[p].val_fairness_parts);
      EXPECT_EQ(serial.points[p].satisfied, parallel.points[p].satisfied);
    }

    // The TuneReport trajectory is merged in grid-index order and keeps the
    // models_trained invariant (seconds are wall-clock and may differ).
    ASSERT_EQ(serial.report.points.size(), parallel.report.points.size());
    for (size_t p = 0; p < serial.report.points.size(); ++p) {
      const TunePoint& s = serial.report.points[p];
      const TunePoint& q = parallel.report.points[p];
      EXPECT_EQ(s.lambdas, q.lambdas) << "point " << p;
      EXPECT_EQ(s.stage, q.stage);
      EXPECT_EQ(s.fit_ok, q.fit_ok);
      EXPECT_EQ(s.evaluated, q.evaluated);
      EXPECT_EQ(s.val_accuracy, q.val_accuracy);
      EXPECT_EQ(s.val_fairness_parts, q.val_fairness_parts);
      EXPECT_EQ(q.models_trained, static_cast<int>(p) + 1);
    }
  }
}

TEST(ParallelDeterminism, RandomForestFitAndPredictMatchSerial) {
  const Dataset data = MakeBiasedDataset(800, 0.7, 0.3, 21);
  LogisticRegressionTrainer encoder_helper;  // encoder via a FairnessProblem
  auto problem = FairnessProblem::Create(
      data, data, {MakeSpec(GroupByAttribute("grp"), "sp", 0.05)}, &encoder_helper);
  ASSERT_TRUE(problem.ok());
  const Matrix& X = (*problem)->train_features();
  const std::vector<int>& y = (*problem)->train().labels();

  RandomForestOptions serial_options;
  serial_options.num_trees = 12;
  serial_options.seed = 5;
  serial_options.num_threads = 1;
  RandomForestOptions parallel_options = serial_options;
  parallel_options.num_threads = 4;

  RandomForestTrainer serial_trainer(serial_options);
  RandomForestTrainer parallel_trainer(parallel_options);
  const auto serial_model = serial_trainer.Fit(X, y);
  const auto parallel_model = parallel_trainer.Fit(X, y);

  const std::vector<double> serial_proba = serial_model->PredictProba(X);
  const std::vector<double> parallel_proba = parallel_model->PredictProba(X);
  ASSERT_EQ(serial_proba.size(), parallel_proba.size());
  for (size_t i = 0; i < serial_proba.size(); ++i) {
    ASSERT_EQ(serial_proba[i], parallel_proba[i]) << "row " << i;
  }
}

TEST(ParallelDeterminism, BudgetExpiryMidGridReturnsBestEffort) {
  const Dataset data = MakeBiasedDataset(900, 0.7, 0.3, 31);
  LogisticRegressionTrainer trainer;
  auto problem =
      FairnessProblem::Create(data, data, TwoConstraintSpecs(0.05), &trainer);
  ASSERT_TRUE(problem.ok());
  TrainBudget budget({/*deadline_seconds=*/0.0, /*max_models=*/3});
  (*problem)->set_budget(&budget);

  GridSearchOptions options;
  options.points_per_dim = 7;  // 49 points, far beyond the budget
  options.num_threads = 4;
  const GridSearchTuner tuner(options);
  MultiTuneResult result = tuner.Run(**problem);
  (*problem)->set_budget(nullptr);

  EXPECT_EQ(result.status.code(), StatusCode::kDeadlineExceeded);
  ASSERT_NE(result.model, nullptr);  // best-effort model always returned
  // In-flight fits may overshoot the cap by at most the worker count.
  EXPECT_LE(result.models_trained, 3 + 4 + 1);
}

/// Clonable trainer that fails deterministically after a shared number of
/// fits, for exercising the firewall + cancellation path of the parallel
/// grid. Clones share the countdown, as parallel grid workers share a
/// training budget.
class FailAfterTrainer : public Trainer {
 public:
  FailAfterTrainer(std::shared_ptr<std::atomic<int>> remaining)
      : remaining_(std::move(remaining)) {}

  std::unique_ptr<Classifier> Fit(const Matrix& X, const std::vector<int>& y,
                                  const std::vector<double>& weights) override {
    if (remaining_->fetch_sub(1) <= 0) throw std::runtime_error("synthetic failure");
    return inner_.Fit(X, y, weights);
  }
  std::string Name() const override { return "fail_after"; }
  std::unique_ptr<Trainer> Clone() const override {
    return std::make_unique<FailAfterTrainer>(remaining_);
  }

 private:
  std::shared_ptr<std::atomic<int>> remaining_;
  LogisticRegressionTrainer inner_;
};

TEST(ParallelDeterminism, FirewalledFailureCancelsGridAndKeepsBestSoFar) {
  const Dataset data = MakeBiasedDataset(900, 0.7, 0.3, 41);
  auto remaining = std::make_shared<std::atomic<int>>(6);
  FailAfterTrainer trainer(remaining);
  auto problem =
      FairnessProblem::Create(data, data, TwoConstraintSpecs(0.05), &trainer);
  ASSERT_TRUE(problem.ok());

  GridSearchOptions options;
  options.points_per_dim = 7;
  options.num_threads = 4;
  const GridSearchTuner tuner(options);
  TuneReport report;
  (*problem)->StartTuneReport(&report);
  MultiTuneResult result = tuner.RunCollecting(**problem, nullptr);
  (*problem)->StartTuneReport(nullptr);

  // The failure is surfaced, a best-effort model is still returned, and the
  // cancellation kept the fit count far below the full 49-point grid.
  EXPECT_EQ(result.status.code(), StatusCode::kInternal);
  ASSERT_NE(result.model, nullptr);
  EXPECT_LT(result.models_trained, 20);
  // Every charged fit has its TunePoint, failed ones included.
  EXPECT_EQ(static_cast<int>(report.points.size()), result.models_trained);
  bool saw_failure = false;
  for (const TunePoint& point : report.points) saw_failure |= !point.fit_ok;
  EXPECT_TRUE(saw_failure);
}

TEST(ParallelDeterminism, LambdaTunerFdrProbesMatchSerial) {
  const Dataset data = MakeBiasedDataset(2000, 0.7, 0.3, 51);
  std::vector<size_t> train_idx, val_idx;
  for (size_t i = 0; i < 1400; ++i) train_idx.push_back(i);
  for (size_t i = 1400; i < 2000; ++i) val_idx.push_back(i);
  const Dataset train = data.SelectRows(train_idx);
  const Dataset val = data.SelectRows(val_idx);
  const std::vector<FairnessSpec> specs = {
      MakeSpec(GroupByAttribute("grp"), "fdr", 0.04)};

  auto run = [&](int num_threads) {
    LogisticRegressionTrainer trainer;
    auto problem = FairnessProblem::Create(train, val, specs, &trainer);
    EXPECT_TRUE(problem.ok());
    TuneOptions options;
    options.num_threads = num_threads;
    const LambdaTuner tuner(options);
    return tuner.TuneSingle(**problem);
  };
  const TuneResult serial = run(1);
  const TuneResult parallel = run(2);

  // Same chosen λ, same model quality; the parallel walk may pay for the
  // other direction's already-started fit on the resolving step only.
  EXPECT_EQ(serial.lambda, parallel.lambda);
  EXPECT_EQ(serial.satisfied, parallel.satisfied);
  EXPECT_EQ(serial.val_accuracy, parallel.val_accuracy);
  ASSERT_EQ(serial.val_fairness_parts.size(), parallel.val_fairness_parts.size());
  for (size_t j = 0; j < serial.val_fairness_parts.size(); ++j) {
    EXPECT_EQ(serial.val_fairness_parts[j], parallel.val_fairness_parts[j]);
  }
  EXPECT_GE(parallel.models_trained, serial.models_trained);
  EXPECT_LE(parallel.models_trained, serial.models_trained + 2);
}

TEST(ParallelDeterminism, WeightComputerCacheMatchesFreshComputer) {
  const Dataset train = MakeBiasedDataset(600, 0.7, 0.3, 61);
  auto specs = InduceConstraints(
      {MakeSpec(GroupByAttribute("grp"), "sp", 0.05),
       MakeSpec(GroupByAttribute("grp"), "fdr", 0.05)},
      train);
  ASSERT_TRUE(specs.ok());

  const std::vector<int> preds_a = AlternatingPredictions(train.NumRows());
  std::vector<int> preds_b = preds_a;
  for (size_t i = 0; i < preds_b.size(); i += 3) preds_b[i] = 1 - preds_b[i];

  WeightComputer cached(*specs, train);
  const std::vector<std::vector<double>> lambda_points = {
      {0.0, 0.0}, {0.1, 0.0}, {0.1, -0.2}, {-0.3, 0.05}, {0.1, -0.2}};
  for (const std::vector<double>& lambdas : lambda_points) {
    const std::vector<int>* prediction_sequence[] = {&preds_a, &preds_b, &preds_a};
    for (const std::vector<int>* preds : prediction_sequence) {
      // A fresh computer has a cold cache, so this cross-checks every warm
      // result (including after prediction-snapshot invalidation) against
      // the from-scratch computation.
      WeightComputer fresh(*specs, train);
      const std::vector<double> warm = cached.Compute(lambdas, preds);
      const std::vector<double> cold = fresh.Compute(lambdas, preds);
      ASSERT_EQ(warm.size(), cold.size());
      for (size_t i = 0; i < warm.size(); ++i) {
        ASSERT_EQ(warm[i], cold[i]) << "row " << i;
      }
    }
  }
}

TEST(ParallelDeterminism, EvaluatorParallelPartsMatchSerial) {
  const Dataset data = MakeBiasedDataset(700, 0.7, 0.3, 71);
  auto specs = InduceConstraints(
      {MakeSpec(GroupByAttribute("grp"), "sp", 0.05),
       MakeSpec(GroupByAttribute("grp"), "fnr", 0.05),
       MakeSpec(GroupByAttribute("grp"), "fdr", 0.05)},
      data);
  ASSERT_TRUE(specs.ok());
  const ConstraintEvaluator evaluator(*specs, data);
  const std::vector<int> preds = AlternatingPredictions(data.NumRows());

  const std::vector<double> serial = evaluator.FairnessParts(preds);
  const std::vector<double> parallel = evaluator.FairnessParts(preds, 4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (size_t j = 0; j < serial.size(); ++j) {
    EXPECT_EQ(serial[j], parallel[j]) << "constraint " << j;
  }
  EXPECT_EQ(evaluator.MaxViolation(preds), evaluator.MaxViolationFromParts(serial));
  EXPECT_EQ(evaluator.MostViolated(preds), evaluator.MostViolatedFromParts(serial));
  EXPECT_EQ(evaluator.Satisfied(preds), evaluator.SatisfiedFromParts(serial));
}

TEST(ParallelDeterminism, OmniFairTrainEndToEndMatchesSerial) {
  const Dataset data = MakeBiasedDataset(1500, 0.7, 0.3, 81);
  std::vector<size_t> train_idx, val_idx;
  for (size_t i = 0; i < 1000; ++i) train_idx.push_back(i);
  for (size_t i = 1000; i < 1500; ++i) val_idx.push_back(i);
  const Dataset train = data.SelectRows(train_idx);
  const Dataset val = data.SelectRows(val_idx);

  auto run = [&](int num_threads) {
    LogisticRegressionTrainer trainer;
    OmniFairOptions options;
    options.num_threads = num_threads;
    OmniFair omnifair(options);
    return omnifair.Train(train, val, &trainer, TwoConstraintSpecs(0.05));
  };
  const auto serial = run(1);
  const auto parallel = run(4);
  ASSERT_TRUE(serial.ok()) << serial.status();
  ASSERT_TRUE(parallel.ok()) << parallel.status();

  EXPECT_EQ(serial->satisfied, parallel->satisfied);
  ASSERT_EQ(serial->lambdas.size(), parallel->lambdas.size());
  for (size_t j = 0; j < serial->lambdas.size(); ++j) {
    EXPECT_EQ(serial->lambdas[j], parallel->lambdas[j]) << "lambda " << j;
  }
  EXPECT_EQ(serial->val_accuracy, parallel->val_accuracy);
  EXPECT_EQ(serial->val_fairness_parts, parallel->val_fairness_parts);
}

}  // namespace
}  // namespace omnifair
