#include "util/stopwatch.h"

// Stopwatch is header-only; this translation unit exists so the build
// exercises the header's self-containedness.
