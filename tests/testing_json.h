#ifndef OMNIFAIR_TESTS_TESTING_JSON_H_
#define OMNIFAIR_TESTS_TESTING_JSON_H_

#include <cctype>
#include <string>

namespace omnifair {
namespace testing {

/// Minimal recursive-descent JSON validity checker, so every exporter's
/// output round-trips through an independent parser (not the writer's own
/// logic). Shared by the telemetry/metrics-export/run-profile tests.
class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : text_(text) {}

  bool Valid() {
    SkipWs();
    if (!Value()) return false;
    SkipWs();
    return pos_ == text_.size();
  }

 private:
  bool Value() {
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{': return Object();
      case '[': return Array();
      case '"': return String();
      case 't': return Literal("true");
      case 'f': return Literal("false");
      case 'n': return Literal("null");
      default: return Number();
    }
  }

  bool Object() {
    ++pos_;  // '{'
    SkipWs();
    if (Peek() == '}') { ++pos_; return true; }
    while (true) {
      SkipWs();
      if (!String()) return false;
      SkipWs();
      if (Peek() != ':') return false;
      ++pos_;
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (Peek() == ',') { ++pos_; continue; }
      if (Peek() == '}') { ++pos_; return true; }
      return false;
    }
  }

  bool Array() {
    ++pos_;  // '['
    SkipWs();
    if (Peek() == ']') { ++pos_; return true; }
    while (true) {
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (Peek() == ',') { ++pos_; continue; }
      if (Peek() == ']') { ++pos_; return true; }
      return false;
    }
  }

  bool String() {
    if (Peek() != '"') return false;
    ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') { ++pos_; return true; }
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return false;
        const char esc = text_[pos_];
        if (esc == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++pos_;
            if (pos_ >= text_.size() || !std::isxdigit(text_[pos_])) return false;
          }
        } else if (std::string("\"\\/bfnrt").find(esc) == std::string::npos) {
          return false;
        }
      }
      ++pos_;
    }
    return false;
  }

  bool Number() {
    const size_t start = pos_;
    if (Peek() == '-') ++pos_;
    while (std::isdigit(Peek())) ++pos_;
    if (Peek() == '.') { ++pos_; while (std::isdigit(Peek())) ++pos_; }
    if (Peek() == 'e' || Peek() == 'E') {
      ++pos_;
      if (Peek() == '+' || Peek() == '-') ++pos_;
      while (std::isdigit(Peek())) ++pos_;
    }
    return pos_ > start && std::isdigit(text_[pos_ - 1]);
  }

  bool Literal(const std::string& word) {
    if (text_.compare(pos_, word.size(), word) != 0) return false;
    pos_ += word.size();
    return true;
  }

  char Peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
  void SkipWs() {
    while (pos_ < text_.size() && std::isspace(text_[pos_])) ++pos_;
  }

  const std::string& text_;
  size_t pos_ = 0;
};

inline bool JsonIsValid(const std::string& text) {
  return JsonChecker(text).Valid();
}

}  // namespace testing
}  // namespace omnifair

#endif  // OMNIFAIR_TESTS_TESTING_JSON_H_
