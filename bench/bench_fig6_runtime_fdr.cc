// Reproduces Figure 6: wall-clock training time under an FDR (predictive
// parity) constraint with LR, on Adult, COMPAS and LSAC. Only Celis
// supports FDR among the baselines; the paper reports OmniFair 9x - 150x
// faster thanks to the incremental linear search + binary refinement
// instead of a dense multiplier grid with one retraining per point.

#include "bench/bench_common.h"

namespace omnifair {
namespace bench {
namespace {

void Run(BenchReporter& reporter) {
  const int seeds = EnvSeeds(2);
  reporter.Config("seeds", seeds);
  reporter.Config("metric", "fdr");
  reporter.Config("epsilon", 0.03);
  PrintHeader("Figure 6: running time under FDR constraint (LR)");
  std::printf("%-10s %12s %12s %10s %14s %14s\n", "dataset", "omnifair", "celis",
              "speedup", "omnifair fits", "celis fits");

  for (const std::string& dataset : {"adult", "compas", "lsac"}) {
    Aggregate omnifair_agg;
    Aggregate celis_agg;
    for (int s = 0; s < seeds; ++s) {
      const Dataset data = MakeBenchDataset(dataset, 1700 + s);
      const TrainValTestSplit split = SplitDefault(data, 1800 + s);
      const FairnessSpec spec = MakeSpec(MainGroups(dataset), "fdr", 0.03);
      const MethodResult omnifair = RunMethod("omnifair", split, "lr", spec, s);
      const MethodResult celis = RunMethod("celis", split, "lr", spec, s);
      if (omnifair.supported) omnifair_agg.Add(omnifair);
      if (celis.supported) celis_agg.Add(celis);
    }
    std::printf("%-10s %11.2fs %11.2fs %9.1fx %14.0f %14.0f\n", dataset.c_str(),
                omnifair_agg.MeanSeconds(), celis_agg.MeanSeconds(),
                omnifair_agg.MeanSeconds() > 0
                    ? celis_agg.MeanSeconds() / omnifair_agg.MeanSeconds()
                    : 0.0,
                omnifair_agg.MeanModels(), celis_agg.MeanModels());
    reporter.AddAggregate("runtime", omnifair_agg)
        .Label("dataset", dataset)
        .Label("method", "omnifair");
    reporter.AddAggregate("runtime", celis_agg)
        .Label("dataset", dataset)
        .Label("method", "celis");
  }
}

}  // namespace
}  // namespace bench
}  // namespace omnifair

int main() {
  omnifair::InitTelemetryFromEnv();
  omnifair::bench::BenchReporter reporter(
      "fig6_runtime_fdr", "Figure 6: running time under FDR constraint (LR)");
  omnifair::bench::Run(reporter);
  return omnifair::bench::FinishBench(reporter);
}
