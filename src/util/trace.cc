#include "util/trace.h"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "util/json_writer.h"
#include "util/status.h"

namespace omnifair {
namespace {

thread_local uint16_t tls_span_depth = 0;

}  // namespace

uint64_t TraceNowNs() {
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                   std::chrono::steady_clock::now() - epoch)
                                   .count());
}

TraceCollector& TraceCollector::Global() {
  static TraceCollector* collector = new TraceCollector();  // never destroyed
  return *collector;
}

TraceCollector::ThreadBuffer* TraceCollector::LocalBuffer() {
  // The shared_ptr keeps the buffer alive in buffers_ after the thread exits,
  // so spans recorded by short-lived worker threads survive until export.
  thread_local std::shared_ptr<ThreadBuffer> local = [this] {
    auto buffer = std::make_shared<ThreadBuffer>();
    std::lock_guard<std::mutex> lock(mu_);
    buffer->thread_id = next_thread_id_++;
    buffers_.push_back(buffer);
    return buffer;
  }();
  return local.get();
}

void TraceCollector::Record(const TraceEvent& event) {
  ThreadBuffer* buffer = LocalBuffer();
  std::lock_guard<std::mutex> lock(buffer->mu);
  if (buffer->events.size() >= kMaxEventsPerThread) {
    ++buffer->dropped;
    return;
  }
  TraceEvent stamped = event;
  stamped.thread_id = buffer->thread_id;
  buffer->events.push_back(stamped);
}

size_t TraceCollector::EventCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t total = 0;
  for (const auto& buffer : buffers_) {
    std::lock_guard<std::mutex> buffer_lock(buffer->mu);
    total += buffer->events.size();
  }
  return total;
}

size_t TraceCollector::DroppedCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t total = 0;
  for (const auto& buffer : buffers_) {
    std::lock_guard<std::mutex> buffer_lock(buffer->mu);
    total += buffer->dropped;
  }
  return total;
}

std::vector<TraceEvent> TraceCollector::Events() const {
  std::vector<TraceEvent> events;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& buffer : buffers_) {
      std::lock_guard<std::mutex> buffer_lock(buffer->mu);
      events.insert(events.end(), buffer->events.begin(), buffer->events.end());
    }
  }
  std::sort(events.begin(), events.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              return a.start_ns < b.start_ns;
            });
  return events;
}

std::string TraceCollector::ToChromeJson() const {
  const std::vector<TraceEvent> events = Events();
  std::ostringstream os;
  JsonWriter writer(os);
  writer.BeginObject();
  writer.KV("displayTimeUnit", "ms");
  writer.Key("traceEvents");
  writer.BeginArray();
  for (const TraceEvent& event : events) {
    writer.BeginObject();
    writer.KV("name", event.name != nullptr ? event.name : "?");
    writer.KV("ph", "X");
    writer.KV("ts", static_cast<double>(event.start_ns) / 1e3);
    writer.KV("dur", static_cast<double>(event.duration_ns) / 1e3);
    writer.KV("pid", 1);
    writer.KV("tid", static_cast<long long>(event.thread_id));
    writer.Key("args");
    writer.BeginObject();
    writer.KV("depth", static_cast<long long>(event.depth));
    writer.EndObject();
    writer.EndObject();
  }
  writer.EndArray();
  writer.EndObject();
  return os.str();
}

Status TraceCollector::WriteChromeJson(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return IoError(path, "open");
  out << ToChromeJson();
  out.flush();
  if (!out) return IoError(path, "write");
  return Status::Ok();
}

void TraceCollector::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& buffer : buffers_) {
    std::lock_guard<std::mutex> buffer_lock(buffer->mu);
    buffer->events.clear();
    buffer->dropped = 0;
  }
}

TraceSpan::TraceSpan(const char* name)
    : name_(name),
      active_(EffectiveTelemetryLevel() >= TelemetryLevel::kFullTrace) {
  if (!active_) return;
  depth_ = ++tls_span_depth;
  start_ns_ = TraceNowNs();
}

TraceSpan::~TraceSpan() {
  if (!active_) return;
  const uint64_t end_ns = TraceNowNs();
  --tls_span_depth;
  TraceEvent event;
  event.name = name_;
  event.start_ns = start_ns_;
  event.duration_ns = end_ns - start_ns_;
  event.depth = depth_;
  TraceCollector::Global().Record(event);
}

}  // namespace omnifair
