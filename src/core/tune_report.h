#ifndef OMNIFAIR_CORE_TUNE_REPORT_H_
#define OMNIFAIR_CORE_TUNE_REPORT_H_

#include <string>
#include <vector>

namespace omnifair {

class JsonWriter;

/// One point visited by a tuning search: exactly one trainer invocation.
/// Together the points of a TuneReport are the data behind the paper's
/// Figure 2 satisfactory-region curve — every (Lambda, accuracy, fairness)
/// sample the search paid a model fit for.
struct TunePoint {
  /// Full Lambda vector the trainer was fitted at.
  std::vector<double> lambdas;
  /// Which search stage issued the fit: "initial", "exponential", "linear",
  /// "binary", "fallback", "grid", or "" when a caller fit outside a stage.
  std::string stage;
  /// False when the fit failed behind the exception firewall (the point
  /// still counts: it consumed a trainer invocation).
  bool fit_ok = true;
  /// Cumulative trainer invocations within this report after this fit, so
  /// points[i].models_trained == i + 1 by construction.
  int models_trained = 0;
  /// Wall-clock seconds since the tune started when the fit was issued.
  double seconds = 0.0;
  /// Whether the tuner evaluated this model on the validation split (the
  /// fields below are only meaningful when true).
  bool evaluated = false;
  double val_accuracy = 0.0;
  /// Signed FP_j per induced constraint on validation.
  std::vector<double> val_fairness_parts;
};

/// Trajectory of a whole tuning search, attached to FairModel by
/// OmniFair::Train (and fillable by callers driving GridSearchTuner or the
/// LambdaTuner directly via FairnessProblem::StartTuneReport). Recording
/// costs one extra validation evaluation per fit and is on at
/// TelemetryLevel::kCounters and above; at kOff the report stays empty.
struct TuneReport {
  /// "lambda_tuner", "hill_climb", or "grid_search".
  std::string algorithm;
  /// epsilon_j per induced constraint (so satisfaction is derivable from
  /// the points without re-creating the problem).
  std::vector<double> epsilons;
  std::vector<TunePoint> points;
  /// Trainer invocations the search reported; equals points.size() whenever
  /// recording covered the whole search.
  int models_trained = 0;
  double wall_seconds = 0.0;

  bool empty() const { return points.empty(); }

  /// Serializes as {"algorithm": ..., "epsilons": [...], "points": [...]}.
  void WriteJson(JsonWriter& writer) const;
  std::string ToJson() const;
};

}  // namespace omnifair

#endif  // OMNIFAIR_CORE_TUNE_REPORT_H_
