#ifndef OMNIFAIR_BASELINES_AGARWAL_H_
#define OMNIFAIR_BASELINES_AGARWAL_H_

#include "baselines/baseline.h"

namespace omnifair {

/// Agarwal et al. [3] reductions approach ("ExpGrad", in-processing but
/// model-agnostic — the closest competitor to OmniFair in Table 1).
///
/// Fair classification is cast as a two-player zero-sum game between a
/// learner (best response: cost-sensitive fit with the current Lagrangian
/// example weights) and a multiplier player running exponentiated gradient
/// over the constraint violations. The saddle point is approximated by
/// iterating T rounds and returning the *randomized* classifier that
/// averages all iterates' probabilities. This reproduces the paper's
/// observations: covers the whole accuracy-fairness trade-off, model-
/// agnostic, but ~10x slower than OmniFair (T retrainings without
/// monotonicity guidance) and less accurate at small epsilon (averaging).
class AgarwalReductions : public FairnessBaseline {
 public:
  struct Options {
    int iterations = 50;
    /// Bound B on the multiplier L1 norm.
    double multiplier_bound = 2.0;
    /// Exponentiated-gradient learning rate.
    double learning_rate = 2.0;
  };

  explicit AgarwalReductions(Options options);
  AgarwalReductions() : AgarwalReductions(Options()) {}

  std::string Name() const override { return "agarwal"; }
  bool SupportsMetric(const FairnessMetric& metric) const override;
  Result<BaselineResult> Train(const Dataset& train, const Dataset& val,
                               Trainer* trainer, const FairnessSpec& spec) override;

 private:
  Options options_;
};

}  // namespace omnifair

#endif  // OMNIFAIR_BASELINES_AGARWAL_H_
