#include "data/profile.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <map>
#include <sstream>

#include "linalg/vector_ops.h"
#include "util/logging.h"

namespace omnifair {
namespace {

ColumnProfile ProfileNumeric(const Column& column, const std::vector<int>& labels) {
  ColumnProfile profile;
  profile.name = column.name();
  profile.type = ColumnType::kNumeric;
  const std::vector<double>& values = column.numeric_values();
  if (values.empty()) return profile;
  profile.min = *std::min_element(values.begin(), values.end());
  profile.max = *std::max_element(values.begin(), values.end());
  profile.mean = Mean(values);
  profile.stddev = StdDev(values);

  // Pearson correlation with the binary label.
  const double label_mean =
      static_cast<double>(std::count(labels.begin(), labels.end(), 1)) /
      static_cast<double>(labels.size());
  double covariance = 0.0;
  double label_variance = 0.0;
  for (size_t i = 0; i < values.size(); ++i) {
    const double label_diff = static_cast<double>(labels[i]) - label_mean;
    covariance += (values[i] - profile.mean) * label_diff;
    label_variance += label_diff * label_diff;
  }
  const double denom = profile.stddev * std::sqrt(label_variance) *
                       std::sqrt(static_cast<double>(values.size()));
  profile.label_correlation = denom > 1e-12 ? covariance / denom : 0.0;
  return profile;
}

ColumnProfile ProfileCategorical(const Column& column) {
  ColumnProfile profile;
  profile.name = column.name();
  profile.type = ColumnType::kCategorical;
  profile.num_categories = column.categories().size();
  std::vector<size_t> counts(column.categories().size(), 0);
  for (size_t i = 0; i < column.size(); ++i) ++counts[column.Code(i)];
  size_t best = 0;
  for (size_t c = 1; c < counts.size(); ++c) {
    if (counts[c] > counts[best]) best = c;
  }
  if (!counts.empty() && column.size() > 0) {
    profile.most_common = column.categories()[best];
    profile.most_common_fraction =
        static_cast<double>(counts[best]) / static_cast<double>(column.size());
  }
  return profile;
}

}  // namespace

DatasetProfile ProfileDataset(const Dataset& dataset,
                              const std::string& sensitive_attribute) {
  DatasetProfile profile;
  profile.name = dataset.name();
  profile.rows = dataset.NumRows();
  profile.positive_rate = dataset.PositiveRate();

  for (const Column& column : dataset.columns()) {
    profile.columns.push_back(column.type() == ColumnType::kNumeric
                                  ? ProfileNumeric(column, dataset.labels())
                                  : ProfileCategorical(column));
  }

  if (!sensitive_attribute.empty() && dataset.HasColumn(sensitive_attribute) &&
      dataset.ColumnByName(sensitive_attribute).type() == ColumnType::kCategorical) {
    const Column& sensitive = dataset.ColumnByName(sensitive_attribute);
    std::map<std::string, GroupProfile> groups;
    for (size_t i = 0; i < dataset.NumRows(); ++i) {
      GroupProfile& group = groups[sensitive.CategoryOf(i)];
      group.group = sensitive.CategoryOf(i);
      ++group.size;
      group.positive_rate += dataset.Label(i);
    }
    double min_rate = std::numeric_limits<double>::infinity();
    double max_rate = -std::numeric_limits<double>::infinity();
    for (auto& [name, group] : groups) {
      group.fraction = static_cast<double>(group.size) /
                       static_cast<double>(dataset.NumRows());
      group.positive_rate /= static_cast<double>(group.size);
      min_rate = std::min(min_rate, group.positive_rate);
      max_rate = std::max(max_rate, group.positive_rate);
      profile.groups.push_back(group);
    }
    profile.base_rate_gap = profile.groups.empty() ? 0.0 : max_rate - min_rate;
  }
  return profile;
}

std::string DatasetProfile::ToString() const {
  std::ostringstream os;
  char line[200];
  std::snprintf(line, sizeof(line), "dataset %s: %zu rows, P(y=1) = %.3f\n",
                name.c_str(), rows, positive_rate);
  os << line;
  std::snprintf(line, sizeof(line), "%-24s %-12s %10s %10s %10s %10s\n", "column",
                "type", "mean/top", "std/frac", "min/#cat", "corr(y)");
  os << line;
  for (const ColumnProfile& column : columns) {
    if (column.type == ColumnType::kNumeric) {
      std::snprintf(line, sizeof(line), "%-24s %-12s %10.2f %10.2f %10.2f %10.3f\n",
                    column.name.c_str(), "numeric", column.mean, column.stddev,
                    column.min, column.label_correlation);
    } else {
      std::snprintf(line, sizeof(line), "%-24s %-12s %10s %10.2f %10zu %10s\n",
                    column.name.c_str(), "categorical",
                    column.most_common.substr(0, 10).c_str(),
                    column.most_common_fraction, column.num_categories, "-");
    }
    os << line;
  }
  if (!groups.empty()) {
    std::snprintf(line, sizeof(line),
                  "group base rates (gap = %.3f — the data-level bias):\n",
                  base_rate_gap);
    os << line;
    for (const GroupProfile& group : groups) {
      std::snprintf(line, sizeof(line), "  %-24s %8zu (%5.1f%%)  P(y=1|g) = %.3f\n",
                    group.group.c_str(), group.size, 100.0 * group.fraction,
                    group.positive_rate);
      os << line;
    }
  }
  return os.str();
}

}  // namespace omnifair
