#include "core/weights.h"

#include <algorithm>
#include <cmath>

#include "linalg/simd.h"
#include "util/logging.h"
#include "util/telemetry.h"
#include "util/trace.h"

namespace omnifair {

WeightComputer::WeightComputer(std::vector<ConstraintSpec> constraints,
                               const Dataset& train)
    : evaluator_(std::move(constraints), train) {}

bool WeightComputer::DependsOnPredictions() const {
  for (size_t j = 0; j < evaluator_.NumConstraints(); ++j) {
    if (evaluator_.constraint(j).metric->DependsOnPredictions()) return true;
  }
  return false;
}

std::shared_ptr<const WeightComputer::CoefficientCache> WeightComputer::GetCache(
    const std::vector<double>& lambdas,
    const std::vector<int>* predictions) const {
  const Dataset& train = evaluator_.dataset();
  std::lock_guard<std::mutex> lock(cache_mu_);
  std::shared_ptr<const CoefficientCache> current = cache_;
  // Decide which entries this call needs and whether the snapshot covers
  // them. Entries for constraints with λ = 0 are never needed (the uncached
  // loop skipped them too, which is what lets all-zero Λ run without
  // predictions).
  bool valid = current != nullptr;
  for (size_t j = 0; valid && j < lambdas.size(); ++j) {
    if (lambdas[j] == 0.0 || evaluator_.HasEmptyGroup(j)) continue;
    const CacheEntry& entry = current->entries[j];
    if (!entry.built) valid = false;
    if (entry.depends_on_predictions &&
        (!current->has_predictions || predictions == nullptr ||
         current->predictions != *predictions)) {
      valid = false;
    }
  }
  if (valid) {
    OF_COUNTER_INC("weights.cache_hits");
    return current;
  }
  OF_COUNTER_INC("weights.cache_misses");

  auto rebuilt = std::make_shared<CoefficientCache>();
  if (current != nullptr) {
    rebuilt->entries = current->entries;
  } else {
    rebuilt->entries.resize(lambdas.size());
  }
  // The cache holds one predictions snapshot; if it changes, every
  // prediction-dependent entry is stale — including ones this call does not
  // need — so drop them all rather than re-keying stale terms.
  const bool predictions_changed =
      current == nullptr || !current->has_predictions ||
      predictions == nullptr || current->predictions != *predictions;
  if (predictions_changed) {
    for (size_t j = 0; j < rebuilt->entries.size(); ++j) {
      if (evaluator_.constraint(j).metric->DependsOnPredictions()) {
        rebuilt->entries[j].built = false;
      }
    }
  }
  if (predictions != nullptr) {
    rebuilt->has_predictions = true;
    rebuilt->predictions = *predictions;
  }
  for (size_t j = 0; j < lambdas.size(); ++j) {
    if (lambdas[j] == 0.0 || evaluator_.HasEmptyGroup(j)) continue;
    CacheEntry& entry = rebuilt->entries[j];
    const ConstraintSpec& constraint = evaluator_.constraint(j);
    entry.depends_on_predictions = constraint.metric->DependsOnPredictions();
    if (entry.built) continue;  // still fresh (stale ones were dropped above)
    const std::vector<size_t>& group1 = evaluator_.Group1(j);
    const std::vector<size_t>& group2 = evaluator_.Group2(j);
    const MetricCoefficients coef1 =
        constraint.metric->Coefficients(train, group1, predictions);
    const MetricCoefficients coef2 =
        constraint.metric->Coefficients(train, group2, predictions);
    entry.terms.clear();
    entry.terms.reserve(group1.size() + group2.size());
    // Group1 terms first (+c), then group2 (−c), in member order — the same
    // accumulation order as the direct loop. (n·λ)·(−c) ≡ −((n·λ)·c) exactly
    // in IEEE arithmetic, so folding the sign into the cached coefficient
    // keeps the weights bit-identical.
    for (size_t k = 0; k < group1.size(); ++k) {
      entry.terms.emplace_back(group1[k], coef1.c[k]);
    }
    for (size_t k = 0; k < group2.size(); ++k) {
      entry.terms.emplace_back(group2[k], -coef2.c[k]);
    }
    // Dense fast path: only worthwhile when the terms cover most rows, and
    // only valid when no row repeats (overlapping group1/group2 members must
    // keep their two sequential updates).
    entry.dense.clear();
    const size_t rows = train.NumRows();
    if (2 * entry.terms.size() >= rows) {
      entry.dense.assign(rows, 0.0);
      std::vector<unsigned char> seen(rows, 0);
      bool unique = true;
      for (const auto& [row, c] : entry.terms) {
        if (seen[row]) {
          unique = false;
          break;
        }
        seen[row] = 1;
        entry.dense[row] = c;
      }
      if (!unique) entry.dense.clear();
    }
    entry.built = true;
  }
  cache_ = rebuilt;
  return rebuilt;
}

std::vector<double> WeightComputer::Compute(const std::vector<double>& lambdas,
                                            const std::vector<int>* predictions) const {
  OF_CHECK_EQ(lambdas.size(), evaluator_.NumConstraints());
  OF_COUNTER_INC("weights.computations");
  OF_TRACE_SPAN("compute_weights");
  OF_SCOPED_LATENCY_US("weights.compute_us");
  const Dataset& train = evaluator_.dataset();
  const double n = static_cast<double>(train.NumRows());
  std::vector<double> weights(train.NumRows(), 1.0);

  bool all_zero = true;
  for (double lambda : lambdas) all_zero &= (lambda == 0.0);
  if (all_zero) return weights;  // w_i(0) = 1 regardless of predictions

  for (size_t j = 0; j < lambdas.size(); ++j) {
    if (lambdas[j] == 0.0 || evaluator_.HasEmptyGroup(j)) continue;
    const ConstraintSpec& constraint = evaluator_.constraint(j);
    if (constraint.metric->DependsOnPredictions()) {
      OF_CHECK(predictions != nullptr)
          << "metric " << constraint.metric->Name()
          << " needs predictions to derive weights (linear-search path)";
    }
  }

  const std::shared_ptr<const CoefficientCache> cache =
      GetCache(lambdas, predictions);
  const simd::Kernels& kernels = simd::Active();
  for (size_t j = 0; j < lambdas.size(); ++j) {
    const double lambda = lambdas[j];
    if (lambda == 0.0 || evaluator_.HasEmptyGroup(j)) continue;
    // w_i += N * lambda * c_i^{g1}  for i in g1,
    // w_i -= N * lambda * c_i^{g2}  for i in g2 (overlap adds both).
    const double factor = n * lambda;
    const CacheEntry& entry = cache->entries[j];
    if (!entry.dense.empty()) {
      // One vectorized axpy over all rows; each row still receives exactly
      // one update per constraint (see CacheEntry::dense for the contract).
      kernels.axpy(factor, entry.dense.data(), weights.data(), weights.size());
    } else {
      for (const auto& [row, c] : entry.terms) {
        weights[row] += factor * c;
      }
    }
  }

  for (double& w : weights) w = std::max(w, 0.0);
  return weights;
}

std::vector<double> WeightComputer::Compute(double lambda,
                                            const std::vector<int>* predictions) const {
  return Compute(std::vector<double>{lambda}, predictions);
}

}  // namespace omnifair
