// Chaos suite for the durability layer (DESIGN.md §12): snapshot codec and
// container guarantees, fault-injected IO (short writes, ENOSPC, bit flips),
// and crash/resume bit-identity across all three tuners.

#include "core/checkpoint.h"

#include <cmath>
#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

#include "core/grid_search.h"
#include "core/lambda_tuner.h"
#include "core/omnifair.h"
#include "ml/logistic_regression.h"
#include "ml/serialization.h"
#include "tests/testing_fairness.h"
#include "util/fault_injector.h"
#include "util/snapshot_io.h"
#include "util/telemetry.h"
#include "util/train_budget.h"

namespace omnifair {
namespace {

using testing_fairness::MakeBiasedDataset;

std::string TempPath(const std::string& name) {
  const std::string path = ::testing::TempDir() + "/" + name;
  std::remove(path.c_str());
  return path;
}

long long CounterValue(const std::string& name) {
  return MetricsRegistry::Global().GetCounter(name)->Value();
}

class CheckpointTest : public ::testing::Test {
 protected:
  void SetUp() override { FaultInjector::Reset(); }
  void TearDown() override { FaultInjector::Reset(); }
};

// ---------------------------------------------------------------------------
// Byte codec
// ---------------------------------------------------------------------------

TEST_F(CheckpointTest, Crc32MatchesKnownVector) {
  // The classic IEEE 802.3 check value for "123456789".
  const uint8_t data[] = {'1', '2', '3', '4', '5', '6', '7', '8', '9'};
  EXPECT_EQ(Crc32(data, sizeof(data)), 0xCBF43926u);
  // Incremental use over two chunks matches the one-shot value.
  const uint32_t partial = Crc32(data, 4);
  EXPECT_EQ(Crc32(data + 4, 5, partial), 0xCBF43926u);
}

TEST_F(CheckpointTest, CodecRoundTripsEveryType) {
  BinaryWriter writer;
  writer.U8(0xAB);
  writer.U32(0xDEADBEEFu);
  writer.U64(0x0123456789ABCDEFull);
  writer.I32(-42);
  writer.I64(-1234567890123ll);
  writer.F64(0.1);    // not exactly representable; must round-trip bit-exact
  writer.F64(-0.0);   // signed zero survives (raw bits, not text)
  writer.String("omnifair");
  writer.String("");
  writer.F64Vector({1.5, -2.25, 3.0e-17});
  writer.Bytes({0x00, 0xFF, 0x7F});

  BinaryReader reader(writer.buffer());
  uint8_t u8 = 0;
  uint32_t u32 = 0;
  uint64_t u64 = 0;
  int32_t i32 = 0;
  int64_t i64 = 0;
  double f1 = 0.0, f2 = 1.0;
  std::string s1, s2;
  std::vector<double> doubles;
  std::vector<uint8_t> bytes;
  ASSERT_TRUE(reader.U8(&u8));
  ASSERT_TRUE(reader.U32(&u32));
  ASSERT_TRUE(reader.U64(&u64));
  ASSERT_TRUE(reader.I32(&i32));
  ASSERT_TRUE(reader.I64(&i64));
  ASSERT_TRUE(reader.F64(&f1));
  ASSERT_TRUE(reader.F64(&f2));
  ASSERT_TRUE(reader.String(&s1));
  ASSERT_TRUE(reader.String(&s2));
  ASSERT_TRUE(reader.F64Vector(&doubles));
  ASSERT_TRUE(reader.Bytes(&bytes));
  EXPECT_TRUE(reader.exhausted());
  EXPECT_TRUE(reader.status().ok());

  EXPECT_EQ(u8, 0xAB);
  EXPECT_EQ(u32, 0xDEADBEEFu);
  EXPECT_EQ(u64, 0x0123456789ABCDEFull);
  EXPECT_EQ(i32, -42);
  EXPECT_EQ(i64, -1234567890123ll);
  EXPECT_EQ(f1, 0.1);
  EXPECT_EQ(f2, 0.0);
  EXPECT_TRUE(std::signbit(f2));
  EXPECT_EQ(s1, "omnifair");
  EXPECT_EQ(s2, "");
  EXPECT_EQ(doubles, (std::vector<double>{1.5, -2.25, 3.0e-17}));
  EXPECT_EQ(bytes, (std::vector<uint8_t>{0x00, 0xFF, 0x7F}));
}

TEST_F(CheckpointTest, ReaderFailsTypedAtEveryTruncationPoint) {
  BinaryWriter writer;
  writer.U32(7);
  writer.String("abc");
  writer.F64Vector({1.0, 2.0});
  writer.Bytes({9, 8, 7});
  const std::vector<uint8_t>& full = writer.buffer();

  for (size_t cut = 0; cut < full.size(); ++cut) {
    BinaryReader reader(full.data(), cut);
    uint32_t u32 = 0;
    std::string s;
    std::vector<double> v;
    std::vector<uint8_t> b;
    // Some prefix of the reads must fail; none may crash or read past `cut`.
    const bool all_ok = reader.U32(&u32) && reader.String(&s) &&
                        reader.F64Vector(&v) && reader.Bytes(&b);
    EXPECT_FALSE(all_ok) << "cut at " << cut;
    EXPECT_EQ(reader.status().code(), StatusCode::kDataLoss) << "cut at " << cut;
    // Fail-fast: once broken, every further read refuses.
    uint8_t u8 = 0;
    EXPECT_FALSE(reader.U8(&u8));
  }
}

TEST_F(CheckpointTest, ReaderRejectsImplausibleLengthPrefix) {
  BinaryWriter writer;
  writer.U64(1ull << 60);  // claims ~10^18 doubles in a 8-byte buffer
  BinaryReader reader(writer.buffer());
  std::vector<double> v;
  EXPECT_FALSE(reader.F64Vector(&v));
  EXPECT_EQ(reader.status().code(), StatusCode::kDataLoss);
}

// ---------------------------------------------------------------------------
// Snapshot container
// ---------------------------------------------------------------------------

Snapshot MakeTestSnapshot() {
  Snapshot snapshot;
  snapshot.version = 3;
  snapshot.flags = 0x11;
  BinaryWriter a;
  a.String("hello");
  snapshot.sections.push_back({"meta", a.TakeBuffer()});
  BinaryWriter b;
  b.F64Vector({0.25, -1.5});
  snapshot.sections.push_back({"fits", b.TakeBuffer()});
  return snapshot;
}

TEST_F(CheckpointTest, SnapshotFileRoundTrips) {
  const std::string path = TempPath("snap_roundtrip.bin");
  ASSERT_TRUE(WriteSnapshotFile(path, MakeTestSnapshot()).ok());

  Result<Snapshot> loaded = ReadSnapshotFile(path, /*max_version=*/3);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->version, 3u);
  EXPECT_EQ(loaded->flags, 0x11u);
  ASSERT_EQ(loaded->sections.size(), 2u);
  EXPECT_EQ(loaded->sections[0].name, "meta");
  EXPECT_EQ(loaded->sections[1].name, "fits");
  ASSERT_NE(loaded->Find("fits"), nullptr);
  BinaryReader reader(loaded->Find("fits")->payload);
  std::vector<double> values;
  ASSERT_TRUE(reader.F64Vector(&values));
  EXPECT_EQ(values, (std::vector<double>{0.25, -1.5}));
  // No stale temp file left behind.
  std::ifstream tmp(path + ".tmp");
  EXPECT_FALSE(tmp.good());
}

TEST_F(CheckpointTest, SnapshotRejectsForeignFutureAndTruncated) {
  const std::string foreign = TempPath("snap_foreign.bin");
  {
    std::ofstream out(foreign, std::ios::binary);
    out << "definitely not a snapshot, but comfortably longer than a header";
  }
  Result<Snapshot> r1 = ReadSnapshotFile(foreign, 1);
  ASSERT_FALSE(r1.ok());
  EXPECT_EQ(r1.status().code(), StatusCode::kInvalidArgument);

  const std::string future = TempPath("snap_future.bin");
  ASSERT_TRUE(WriteSnapshotFile(future, MakeTestSnapshot()).ok());
  Result<Snapshot> r2 = ReadSnapshotFile(future, /*max_version=*/2);
  ASSERT_FALSE(r2.ok());
  EXPECT_EQ(r2.status().code(), StatusCode::kInvalidArgument);

  Result<Snapshot> r3 = ReadSnapshotFile(TempPath("snap_missing.bin"), 3);
  ASSERT_FALSE(r3.ok());
  EXPECT_EQ(r3.status().code(), StatusCode::kInvalidArgument);  // ENOENT

  // Every possible truncation of a valid file is typed, never UB.
  std::ifstream in(future, std::ios::binary);
  std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
  in.close();
  const std::string cut_path = TempPath("snap_cut.bin");
  for (size_t cut = 0; cut < bytes.size(); cut += 3) {
    {
      std::ofstream out(cut_path, std::ios::binary | std::ios::trunc);
      out.write(bytes.data(), static_cast<std::streamsize>(cut));
    }
    Result<Snapshot> r = ReadSnapshotFile(cut_path, 3);
    ASSERT_FALSE(r.ok()) << "cut at " << cut;
  }
}

TEST_F(CheckpointTest, SnapshotDetectsEveryBitFlip) {
  const std::string path = TempPath("snap_flip.bin");
  ASSERT_TRUE(WriteSnapshotFile(path, MakeTestSnapshot()).ok());
  std::ifstream in(path, std::ios::binary);
  std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
  in.close();

  for (size_t i = 0; i < bytes.size(); i += 5) {
    std::vector<char> damaged = bytes;
    damaged[i] = static_cast<char>(damaged[i] ^ 0x20);
    {
      std::ofstream out(path, std::ios::binary | std::ios::trunc);
      out.write(damaged.data(), static_cast<std::streamsize>(damaged.size()));
    }
    Result<Snapshot> r = ReadSnapshotFile(path, 3);
    EXPECT_FALSE(r.ok()) << "flip at byte " << i;
  }
}

TEST_F(CheckpointTest, CorruptReadFaultSiteTripsCrc) {
  const std::string path = TempPath("snap_fault_flip.bin");
  ASSERT_TRUE(WriteSnapshotFile(path, MakeTestSnapshot()).ok());
  FaultInjector::Arm(fault_sites::kIoCorruptRead);
  Result<Snapshot> r = ReadSnapshotFile(path, 3);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kDataLoss);
  // Disarmed after firing: the same file reads clean.
  EXPECT_TRUE(ReadSnapshotFile(path, 3).ok());
}

TEST_F(CheckpointTest, ShortWriteIsRetriedToSuccess) {
  const std::string path = TempPath("snap_short_write.bin");
  FaultInjector::Arm(fault_sites::kIoShortWrite);
  ASSERT_TRUE(WriteSnapshotFile(path, MakeTestSnapshot()).ok());
  EXPECT_GE(FaultInjector::CallCount(fault_sites::kIoShortWrite), 1);
  EXPECT_TRUE(ReadSnapshotFile(path, 3).ok());
}

TEST_F(CheckpointTest, EnospcIsTypedAndNotRetriedForever) {
  const std::string path = TempPath("snap_enospc.bin");
  FaultInjector::Arm(fault_sites::kIoEnospc, 1, /*repeat=*/true);
  const Status status = WriteSnapshotFile(path, MakeTestSnapshot());
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kDataLoss);  // ENOSPC errno class
  // A permanent error must not spin through the whole retry budget.
  EXPECT_EQ(FaultInjector::CallCount(fault_sites::kIoEnospc), 1);
  std::ifstream in(path);
  EXPECT_FALSE(in.good());  // nothing durable claimed
}

TEST_F(CheckpointTest, RetryIoGivesUpAfterBoundedAttempts) {
  RetryOptions retry;
  retry.max_attempts = 3;
  retry.initial_backoff_ms = 0.0;
  int calls = 0;
  const Status status = RetryIo(retry, [&]() {
    ++calls;
    return Status::Unavailable("still flaky");
  });
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(status.code(), StatusCode::kUnavailable);

  calls = 0;
  EXPECT_TRUE(RetryIo(retry, [&]() {
                ++calls;
                return calls < 3 ? Status::Unavailable("flaky") : Status::Ok();
              }).ok());
  EXPECT_EQ(calls, 3);
}

// ---------------------------------------------------------------------------
// Crash/resume bit-identity
// ---------------------------------------------------------------------------

std::unique_ptr<FairnessProblem> MakeProblem(const Dataset& train,
                                             const Dataset& val,
                                             const std::string& metric,
                                             double epsilon, Trainer* trainer) {
  auto problem = FairnessProblem::Create(
      train, val, {MakeSpec(GroupByAttribute("grp"), metric, epsilon)}, trainer);
  EXPECT_TRUE(problem.ok()) << problem.status();
  return std::move(*problem);
}

std::vector<uint8_t> ModelBytes(const Classifier& model) {
  Result<std::vector<uint8_t>> bytes = SerializeModelBinary(model);
  EXPECT_TRUE(bytes.ok()) << bytes.status();
  return bytes.ok() ? *bytes : std::vector<uint8_t>();
}

/// Everything but wall-clock seconds must match between an uninterrupted run
/// and a crash+resume run (no two processes share a clock).
void ExpectReportsIdentical(const TuneReport& expected, const TuneReport& actual) {
  ASSERT_EQ(expected.points.size(), actual.points.size());
  EXPECT_EQ(expected.epsilons, actual.epsilons);
  for (size_t i = 0; i < expected.points.size(); ++i) {
    const TunePoint& e = expected.points[i];
    const TunePoint& a = actual.points[i];
    EXPECT_EQ(e.lambdas, a.lambdas) << "point " << i;
    EXPECT_EQ(e.stage, a.stage) << "point " << i;
    EXPECT_EQ(e.fit_ok, a.fit_ok) << "point " << i;
    EXPECT_EQ(e.models_trained, a.models_trained) << "point " << i;
    EXPECT_EQ(e.evaluated, a.evaluated) << "point " << i;
    EXPECT_EQ(e.val_accuracy, a.val_accuracy) << "point " << i;
    EXPECT_EQ(e.val_fairness_parts, a.val_fairness_parts) << "point " << i;
  }
}

TEST_F(CheckpointTest, LambdaTunerResumesBitIdentical) {
  const Dataset data = MakeBiasedDataset(1200, 0.7, 0.25, 11);

  // Uninterrupted baseline.
  TuneReport baseline_report;
  TuneResult baseline;
  {
    LogisticRegressionTrainer trainer;
    auto problem = MakeProblem(data, data, "sp", 0.03, &trainer);
    problem->StartTuneReport(&baseline_report);
    baseline = LambdaTuner().TuneSingle(*problem);
  }
  ASSERT_NE(baseline.model, nullptr);
  ASSERT_TRUE(baseline.status.ok()) << baseline.status;
  const std::vector<uint8_t> baseline_bytes = ModelBytes(*baseline.model);

  // Same search, killed by a simulated crash after the 3rd checkpoint write.
  const std::string path = TempPath("lambda_resume.ckpt");
  TuneOptions options;
  options.checkpoint.path = path;
  size_t fits_before_crash = 0;
  {
    LogisticRegressionTrainer trainer;
    auto problem = MakeProblem(data, data, "sp", 0.03, &trainer);
    FaultInjector::Arm(fault_sites::kCheckpointCrashAfterWrite, 3);
    TuneResult crashed = LambdaTuner(options).TuneSingle(*problem);
    FaultInjector::Reset();
    EXPECT_EQ(crashed.status.code(), StatusCode::kUnavailable);
    ASSERT_NE(crashed.model, nullptr);  // best-effort model survives the cut
    fits_before_crash = static_cast<size_t>(problem->models_trained());
    EXPECT_LT(fits_before_crash,
              static_cast<size_t>(baseline.models_trained));
  }

  // Resume: replay the log, finish live, land on the identical result.
  const long long resumes_before = CounterValue("checkpoint.resumes");
  const long long replays_before = CounterValue("checkpoint.replayed_fits");
  options.checkpoint.resume_from = path;
  TuneReport resumed_report;
  TuneResult resumed;
  {
    LogisticRegressionTrainer trainer;
    auto problem = MakeProblem(data, data, "sp", 0.03, &trainer);
    problem->StartTuneReport(&resumed_report);
    resumed = LambdaTuner(options).TuneSingle(*problem);
  }
  ASSERT_TRUE(resumed.status.ok()) << resumed.status;
  ASSERT_NE(resumed.model, nullptr);
  EXPECT_EQ(ModelBytes(*resumed.model), baseline_bytes);
  EXPECT_EQ(resumed.lambda, baseline.lambda);
  EXPECT_EQ(resumed.satisfied, baseline.satisfied);
  EXPECT_EQ(resumed.val_accuracy, baseline.val_accuracy);
  EXPECT_EQ(resumed.val_fairness_parts, baseline.val_fairness_parts);
  EXPECT_EQ(resumed.models_trained, baseline.models_trained);
  ExpectReportsIdentical(baseline_report, resumed_report);
  // The resumed run continues the original run's tune clock: this serial
  // search's concatenated trajectory stays monotone in seconds.
  for (size_t i = 1; i < resumed_report.points.size(); ++i) {
    EXPECT_GE(resumed_report.points[i].seconds,
              resumed_report.points[i - 1].seconds);
  }
  EXPECT_EQ(CounterValue("checkpoint.resumes"), resumes_before + 1);
  // The crashed run may have one fit in flight past the last write (charged
  // but unrecorded), so the replay count is bounded by fits_before_crash.
  const long long replayed = CounterValue("checkpoint.replayed_fits") - replays_before;
  EXPECT_GE(replayed, 1);
  EXPECT_LE(replayed, static_cast<long long>(fits_before_crash));
}

TEST_F(CheckpointTest, ParallelLinearSearchResumesBitIdentical) {
  // FDR is prediction-parameterized: the linear-search stage runs its two
  // direction probes concurrently, recording at pair barriers.
  const Dataset data = MakeBiasedDataset(1200, 0.7, 0.3, 12);

  TuneReport baseline_report;
  TuneResult baseline;
  TuneOptions base_options;
  base_options.num_threads = 2;
  {
    LogisticRegressionTrainer trainer;
    auto problem = MakeProblem(data, data, "fdr", 0.02, &trainer);
    problem->StartTuneReport(&baseline_report);
    baseline = LambdaTuner(base_options).TuneSingle(*problem);
  }
  ASSERT_NE(baseline.model, nullptr);
  const std::vector<uint8_t> baseline_bytes = ModelBytes(*baseline.model);

  const std::string path = TempPath("lambda_parallel_resume.ckpt");
  TuneOptions options = base_options;
  options.checkpoint.path = path;
  {
    LogisticRegressionTrainer trainer;
    auto problem = MakeProblem(data, data, "fdr", 0.02, &trainer);
    FaultInjector::Arm(fault_sites::kCheckpointCrashAfterWrite, 2);
    TuneResult crashed = LambdaTuner(options).TuneSingle(*problem);
    FaultInjector::Reset();
    EXPECT_EQ(crashed.status.code(), StatusCode::kUnavailable);
  }

  options.checkpoint.resume_from = path;
  TuneReport resumed_report;
  TuneResult resumed;
  {
    LogisticRegressionTrainer trainer;
    auto problem = MakeProblem(data, data, "fdr", 0.02, &trainer);
    problem->StartTuneReport(&resumed_report);
    resumed = LambdaTuner(options).TuneSingle(*problem);
  }
  ASSERT_TRUE(resumed.status.ok()) << resumed.status;
  ASSERT_NE(resumed.model, nullptr);
  EXPECT_EQ(ModelBytes(*resumed.model), baseline_bytes);
  EXPECT_EQ(resumed.lambda, baseline.lambda);
  EXPECT_EQ(resumed.val_accuracy, baseline.val_accuracy);
  ExpectReportsIdentical(baseline_report, resumed_report);
}

TEST_F(CheckpointTest, HillClimbResumesBitIdenticalThroughOmniFair) {
  const Dataset train = MakeBiasedDataset(1100, 0.75, 0.25, 13);
  const Dataset val = MakeBiasedDataset(500, 0.75, 0.25, 131);
  // Two specs -> multiple induced constraints -> HillClimber.
  const std::vector<FairnessSpec> specs = {
      MakeSpec(GroupByAttribute("grp"), "sp", 0.04),
      MakeSpec(GroupByAttribute("grp"), "fpr", 0.06)};

  Result<FairModel> baseline = [&] {
    LogisticRegressionTrainer trainer;
    return OmniFair().Train(train, val, &trainer, specs);
  }();
  ASSERT_TRUE(baseline.ok()) << baseline.status();
  const std::vector<uint8_t> baseline_bytes = ModelBytes(*baseline->model);

  const std::string path = TempPath("hill_climb_resume.ckpt");
  OmniFairOptions options;
  options.checkpoint.path = path;
  {
    LogisticRegressionTrainer trainer;
    FaultInjector::Arm(fault_sites::kCheckpointCrashAfterWrite, 4);
    Result<FairModel> crashed = OmniFair(options).Train(train, val, &trainer, specs);
    FaultInjector::Reset();
    ASSERT_TRUE(crashed.ok()) << crashed.status();
    EXPECT_EQ(crashed->outcome.code(), StatusCode::kUnavailable);
  }

  options.checkpoint.resume_from = path;
  Result<FairModel> resumed = [&] {
    LogisticRegressionTrainer trainer;
    return OmniFair(options).Train(train, val, &trainer, specs);
  }();
  ASSERT_TRUE(resumed.ok()) << resumed.status();
  EXPECT_TRUE(resumed->outcome.ok()) << resumed->outcome;
  EXPECT_EQ(ModelBytes(*resumed->model), baseline_bytes);
  EXPECT_EQ(resumed->lambdas, baseline->lambdas);
  EXPECT_EQ(resumed->satisfied, baseline->satisfied);
  EXPECT_EQ(resumed->val_accuracy, baseline->val_accuracy);
  EXPECT_EQ(resumed->val_fairness_parts, baseline->val_fairness_parts);
  EXPECT_EQ(resumed->models_trained, baseline->models_trained);
  ExpectReportsIdentical(baseline->tune_report, resumed->tune_report);
}

TEST_F(CheckpointTest, GridSearchResumesBitIdenticalSerialAndParallel) {
  const Dataset data = MakeBiasedDataset(900, 0.7, 0.3, 14);
  const std::vector<FairnessSpec> specs = {
      MakeSpec(GroupByAttribute("grp"), "sp", 0.05),
      MakeSpec(GroupByAttribute("grp"), "fpr", 0.08)};
  auto make_problem = [&](Trainer* trainer) {
    auto problem = FairnessProblem::Create(data, data, specs, trainer);
    EXPECT_TRUE(problem.ok()) << problem.status();
    return std::move(*problem);
  };

  GridSearchOptions base_options;
  base_options.max_lambda = 0.6;
  base_options.points_per_dim = 4;  // 16 points + the base fit

  TuneReport baseline_report;
  MultiTuneResult baseline;
  {
    LogisticRegressionTrainer trainer;
    auto problem = make_problem(&trainer);
    problem->StartTuneReport(&baseline_report);
    baseline = GridSearchTuner(base_options).Run(*problem);
  }
  ASSERT_NE(baseline.model, nullptr);
  const std::vector<uint8_t> baseline_bytes = ModelBytes(*baseline.model);

  for (const int resume_threads : {1, 4}) {
    SCOPED_TRACE("resume_threads=" + std::to_string(resume_threads));
    const std::string path = TempPath(
        "grid_resume_" + std::to_string(resume_threads) + ".ckpt");
    GridSearchOptions options = base_options;
    options.num_threads = 4;
    options.checkpoint.path = path;
    {
      LogisticRegressionTrainer trainer;
      auto problem = make_problem(&trainer);
      FaultInjector::Arm(fault_sites::kCheckpointCrashAfterWrite, 1);
      MultiTuneResult crashed = GridSearchTuner(options).Run(*problem);
      FaultInjector::Reset();
      EXPECT_EQ(crashed.status.code(), StatusCode::kUnavailable);
      ASSERT_NE(crashed.model, nullptr);
    }

    // Resuming with a different thread count must not change the result.
    options.num_threads = resume_threads;
    options.checkpoint.resume_from = path;
    TuneReport resumed_report;
    MultiTuneResult resumed;
    {
      LogisticRegressionTrainer trainer;
      auto problem = make_problem(&trainer);
      problem->StartTuneReport(&resumed_report);
      resumed = GridSearchTuner(options).Run(*problem);
    }
    ASSERT_TRUE(resumed.status.ok()) << resumed.status;
    ASSERT_NE(resumed.model, nullptr);
    EXPECT_EQ(ModelBytes(*resumed.model), baseline_bytes);
    EXPECT_EQ(resumed.lambdas, baseline.lambdas);
    EXPECT_EQ(resumed.satisfied, baseline.satisfied);
    EXPECT_EQ(resumed.val_accuracy, baseline.val_accuracy);
    EXPECT_EQ(resumed.val_fairness_parts, baseline.val_fairness_parts);
    EXPECT_EQ(resumed.models_trained, baseline.models_trained);
    ExpectReportsIdentical(baseline_report, resumed_report);
  }
}

// ---------------------------------------------------------------------------
// Resume validation and degraded modes
// ---------------------------------------------------------------------------

TEST_F(CheckpointTest, ResumeWithWrongTunerIsRejected) {
  const Dataset data = MakeBiasedDataset(600, 0.7, 0.3, 15);
  const std::string path = TempPath("wrong_tuner.ckpt");
  {
    LogisticRegressionTrainer trainer;
    auto problem = MakeProblem(data, data, "sp", 0.05, &trainer);
    TuneOptions options;
    options.checkpoint.path = path;
    ASSERT_TRUE(LambdaTuner(options).TuneSingle(*problem).status.ok());
  }
  LogisticRegressionTrainer trainer;
  auto problem = MakeProblem(data, data, "sp", 0.05, &trainer);
  GridSearchOptions grid_options;
  grid_options.checkpoint.resume_from = path;
  MultiTuneResult result = GridSearchTuner(grid_options).Run(*problem);
  EXPECT_EQ(result.status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(result.status.message().find("lambda_tuner"), std::string::npos)
      << result.status;
}

TEST_F(CheckpointTest, ResumeWithChangedOptionsDivergesTyped) {
  const Dataset data = MakeBiasedDataset(700, 0.7, 0.3, 16);
  const std::vector<FairnessSpec> specs = {
      MakeSpec(GroupByAttribute("grp"), "sp", 0.05),
      MakeSpec(GroupByAttribute("grp"), "fpr", 0.08)};
  const std::string path = TempPath("diverged_options.ckpt");
  GridSearchOptions options;
  options.max_lambda = 0.6;
  options.points_per_dim = 4;
  options.checkpoint.path = path;
  {
    LogisticRegressionTrainer trainer;
    auto problem = FairnessProblem::Create(data, data, specs, &trainer);
    ASSERT_TRUE(problem.ok());
    ASSERT_TRUE(GridSearchTuner(options).Run(**problem).status.ok());
  }
  // A different grid means different lambdas at replay index 1.
  options.max_lambda = 0.9;
  options.checkpoint.resume_from = path;
  LogisticRegressionTrainer trainer;
  auto problem = FairnessProblem::Create(data, data, specs, &trainer);
  ASSERT_TRUE(problem.ok());
  MultiTuneResult result = GridSearchTuner(options).Run(**problem);
  EXPECT_EQ(result.status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(result.status.message().find("diverged"), std::string::npos)
      << result.status;
}

TEST_F(CheckpointTest, CorruptCheckpointResumeIsTypedDataLoss) {
  const Dataset data = MakeBiasedDataset(600, 0.7, 0.3, 17);
  const std::string path = TempPath("corrupt_resume.ckpt");
  {
    LogisticRegressionTrainer trainer;
    auto problem = MakeProblem(data, data, "sp", 0.05, &trainer);
    TuneOptions options;
    options.checkpoint.path = path;
    ASSERT_TRUE(LambdaTuner(options).TuneSingle(*problem).status.ok());
  }
  // Flip one byte somewhere in the middle of the file.
  std::ifstream in(path, std::ios::binary);
  std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
  in.close();
  ASSERT_GT(bytes.size(), 40u);
  bytes[bytes.size() / 2] = static_cast<char>(bytes[bytes.size() / 2] ^ 0x08);
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }

  const long long corrupt_before = CounterValue("checkpoint.corrupt_detected");
  LogisticRegressionTrainer trainer;
  auto problem = MakeProblem(data, data, "sp", 0.05, &trainer);
  TuneOptions options;
  options.checkpoint.resume_from = path;
  TuneResult result = LambdaTuner(options).TuneSingle(*problem);
  EXPECT_EQ(result.status.code(), StatusCode::kDataLoss) << result.status;
  EXPECT_EQ(result.model, nullptr);
  EXPECT_EQ(CounterValue("checkpoint.corrupt_detected"), corrupt_before + 1);
}

TEST_F(CheckpointTest, FullDiskDegradesButRunCompletes) {
  const Dataset data = MakeBiasedDataset(800, 0.7, 0.3, 18);
  LogisticRegressionTrainer trainer;
  auto problem = MakeProblem(data, data, "sp", 0.04, &trainer);
  TuneOptions options;
  options.checkpoint.path = TempPath("enospc_run.ckpt");

  const long long failures_before = CounterValue("checkpoint.write_failures");
  FaultInjector::Arm(fault_sites::kIoEnospc, 1, /*repeat=*/true);
  TuneResult result = LambdaTuner(options).TuneSingle(*problem);
  FaultInjector::Reset();

  // The run itself finishes: losing resumability must not lose the model.
  EXPECT_TRUE(result.status.ok()) << result.status;
  ASSERT_NE(result.model, nullptr);
  EXPECT_GT(CounterValue("checkpoint.write_failures"), failures_before);
}

TEST_F(CheckpointTest, CheckpointingKeepsWarmStartRejected) {
  const Dataset data = MakeBiasedDataset(400, 0.7, 0.3, 19);
  LogisticRegressionTrainer trainer;
  OmniFairOptions options;
  options.warm_start = true;
  options.checkpoint.path = TempPath("warm_start.ckpt");
  Result<FairModel> fair = OmniFair(options).Train(
      data, data, &trainer, {MakeSpec(GroupByAttribute("grp"), "sp", 0.05)});
  ASSERT_FALSE(fair.ok());
  EXPECT_EQ(fair.status().code(), StatusCode::kInvalidArgument);
}

// ---------------------------------------------------------------------------
// Budget interaction
// ---------------------------------------------------------------------------

TEST_F(CheckpointTest, RestoreConsumedContinuesDeadline) {
  TrainBudgetOptions options;
  options.deadline_seconds = 100.0;
  TrainBudget budget(options);
  EXPECT_FALSE(budget.Expired());
  budget.RestoreConsumed(99.5);
  EXPECT_FALSE(budget.Expired());
  FaultInjector::AdvanceClock(1.0);  // virtual clock: no sleeping
  EXPECT_TRUE(budget.Expired());
  EXPECT_EQ(budget.ToStatus().code(), StatusCode::kDeadlineExceeded);
}

TEST_F(CheckpointTest, ResumedRunHonorsRemainingModelCap) {
  const Dataset data = MakeBiasedDataset(900, 0.75, 0.25, 20);
  const FairnessSpec spec = MakeSpec(GroupByAttribute("grp"), "sp", 0.01);

  // Baseline: the cap cuts the search short; best-effort model returned.
  OmniFairOptions base_options;
  base_options.budget.max_models = 6;
  Result<FairModel> baseline = [&] {
    LogisticRegressionTrainer trainer;
    return OmniFair(base_options).Train(data, data, &trainer, {spec});
  }();
  ASSERT_TRUE(baseline.ok()) << baseline.status();
  EXPECT_EQ(baseline->outcome.code(), StatusCode::kDeadlineExceeded);

  // Crash partway through the same budgeted run, then resume. Replayed fits
  // charge the fresh process's budget, so the cap binds at the same total.
  const std::string path = TempPath("budget_resume.ckpt");
  OmniFairOptions options = base_options;
  options.checkpoint.path = path;
  {
    LogisticRegressionTrainer trainer;
    FaultInjector::Arm(fault_sites::kCheckpointCrashAfterWrite, 2);
    Result<FairModel> crashed =
        OmniFair(options).Train(data, data, &trainer, {spec});
    FaultInjector::Reset();
    ASSERT_TRUE(crashed.ok()) << crashed.status();
    EXPECT_EQ(crashed->outcome.code(), StatusCode::kUnavailable);
    EXPECT_LT(crashed->models_trained, baseline->models_trained);
  }
  options.checkpoint.resume_from = path;
  Result<FairModel> resumed = [&] {
    LogisticRegressionTrainer trainer;
    return OmniFair(options).Train(data, data, &trainer, {spec});
  }();
  ASSERT_TRUE(resumed.ok()) << resumed.status();
  EXPECT_EQ(resumed->outcome.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(resumed->models_trained, baseline->models_trained);
  EXPECT_EQ(ModelBytes(*resumed->model), ModelBytes(*baseline->model));
  EXPECT_EQ(resumed->lambdas, baseline->lambdas);
}

}  // namespace
}  // namespace omnifair
