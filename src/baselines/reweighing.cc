#include "baselines/reweighing.h"

#include <cmath>
#include <iterator>

#include "core/problem.h"
#include "util/logging.h"
#include "util/stopwatch.h"

namespace omnifair {

bool KamiranReweighing::SupportsMetric(const FairnessMetric& metric) const {
  return metric.Name() == "sp";
}

std::vector<double> KamiranReweighing::ComputeWeights(const Dataset& train,
                                                      const GroupMap& groups) {
  const size_t n = train.NumRows();
  const double total = static_cast<double>(n);
  size_t positives = 0;
  for (int y : train.labels()) positives += (y == 1);
  const double p_y1 = static_cast<double>(positives) / total;
  const double p_y0 = 1.0 - p_y1;

  std::vector<double> weights(n, 1.0);
  for (const auto& [name, members] : groups) {
    if (members.empty()) continue;
    const double p_g = static_cast<double>(members.size()) / total;
    size_t group_positives = 0;
    for (size_t i : members) group_positives += (train.Label(i) == 1);
    const double p_g_y1 = static_cast<double>(group_positives) / total;
    const double p_g_y0 = p_g - p_g_y1;
    const double w_pos = p_g_y1 > 0.0 ? p_g * p_y1 / p_g_y1 : 1.0;
    const double w_neg = p_g_y0 > 0.0 ? p_g * p_y0 / p_g_y0 : 1.0;
    for (size_t i : members) {
      weights[i] = train.Label(i) == 1 ? w_pos : w_neg;
    }
  }
  return weights;
}

Result<BaselineResult> KamiranReweighing::Train(const Dataset& train,
                                                const Dataset& val, Trainer* trainer,
                                                const FairnessSpec& spec) {
  if (!SupportsMetric(*spec.metric)) {
    return Status::Unsupported("Kamiran reweighing only supports statistical parity");
  }
  Stopwatch stopwatch;
  Result<std::unique_ptr<FairnessProblem>> problem =
      FairnessProblem::Create(train, val, {spec}, trainer);
  if (!problem.ok()) return problem.status();

  const GroupMap groups = spec.grouping((*problem)->train());
  const std::vector<double> kamiran = ComputeWeights((*problem)->train(), groups);

  BaselineResult result;
  result.encoder = (*problem)->encoder();
  double best_accuracy = -1.0;
  std::vector<double> weights(kamiran.size());

  auto try_eta = [&](double eta) {
    for (size_t i = 0; i < kamiran.size(); ++i) {
      weights[i] = std::max(1.0 + eta * (kamiran[i] - 1.0), 0.0);
    }
    std::unique_ptr<Classifier> model = (*problem)->FitWithWeights(weights);
    const std::vector<int> val_preds = (*problem)->PredictVal(*model);
    // The bisection signal is the first pairwise disparity; satisfaction is
    // checked against every induced constraint.
    const double fp = (*problem)->val_evaluator().FairnessPart(0, val_preds);
    const bool satisfied = (*problem)->val_evaluator().MaxViolation(val_preds) <= 1e-12;
    const double accuracy = (*problem)->ValAccuracy(val_preds);
    if ((satisfied && accuracy > best_accuracy) || result.model == nullptr) {
      if (satisfied) best_accuracy = accuracy;
      result.model = std::move(model);
      result.satisfied = satisfied;
      result.val_accuracy = accuracy;
      result.val_fairness_parts = (*problem)->val_evaluator().FairnessParts(val_preds);
    }
    return fp;
  };

  // Coarse scan from no correction (eta=0) to strong overcorrection, then
  // bisect on the first sign change of the validation disparity. This is
  // the FairPrep-style strength tuning described in the header.
  const double coarse[] = {0.0, 0.5, 1.0, 1.5, 2.0, 2.5, 3.0, 4.0};
  double previous_eta = 0.0;
  double previous_fp = 0.0;
  double bracket_lo = -1.0;
  double bracket_hi = -1.0;
  for (size_t s = 0; s < std::size(coarse); ++s) {
    const double fp = try_eta(coarse[s]);
    if (std::fabs(fp) <= spec.epsilon) break;  // best candidate recorded
    if (s > 0 && (fp > 0.0) != (previous_fp > 0.0)) {
      bracket_lo = previous_eta;
      bracket_hi = coarse[s];
      break;
    }
    previous_eta = coarse[s];
    previous_fp = fp;
  }
  if (!result.satisfied && bracket_lo >= 0.0) {
    for (int iter = 0; iter < 10 && !result.satisfied; ++iter) {
      const double mid = 0.5 * (bracket_lo + bracket_hi);
      const double fp = try_eta(mid);
      if (std::fabs(fp) <= spec.epsilon) break;
      if ((fp > 0.0) == (previous_fp > 0.0)) {
        bracket_lo = mid;
      } else {
        bracket_hi = mid;
      }
    }
  }

  result.models_trained = (*problem)->models_trained();
  result.train_seconds = stopwatch.ElapsedSeconds();
  return result;
}

}  // namespace omnifair
