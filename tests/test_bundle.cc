// Chaos + parity suite for versioned binary model bundles (DESIGN.md §15):
// bit-identical flat predict across every model family / storage mode /
// thread count, wire-format inspection, and fault-injected corruption
// (truncation, bit flips, the io.corrupt_read site) always failing with
// typed statuses.

#include "ml/bundle.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "data/encoder.h"
#include "ml/decision_tree.h"
#include "ml/gbdt.h"
#include "ml/logistic_regression.h"
#include "ml/mlp.h"
#include "ml/naive_bayes.h"
#include "ml/random_forest.h"
#include "ml/trainer_registry.h"
#include "tests/testing_fairness.h"
#include "util/fault_injector.h"
#include "util/snapshot_io.h"

namespace omnifair {
namespace {

using testing_fairness::MakeBiasedDataset;

std::string TempPath(const std::string& name) {
  const std::string path = ::testing::TempDir() + "/" + name;
  std::remove(path.c_str());
  return path;
}

std::vector<uint8_t> ReadFile(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  EXPECT_TRUE(file.good());
  return std::vector<uint8_t>(std::istreambuf_iterator<char>(file),
                              std::istreambuf_iterator<char>());
}

void WriteFile(const std::string& path, const std::vector<uint8_t>& bytes) {
  std::ofstream file(path, std::ios::binary | std::ios::trunc);
  file.write(reinterpret_cast<const char*>(bytes.data()),
             static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(file.good());
}

/// Shared fixture: a small encoded dataset plus a fitted encoder.
class BundleTest : public ::testing::Test {
 protected:
  void SetUp() override {
    FaultInjector::Reset();
    dataset_ = MakeBiasedDataset(400, 0.7, 0.3, /*seed=*/11);
    encoder_.Fit(dataset_);
    X_ = encoder_.Transform(dataset_);
    y_ = dataset_.labels();
    weights_.assign(y_.size(), 1.0);
  }
  void TearDown() override { FaultInjector::Reset(); }

  /// Pack `model`, reopen it, and return the loaded bundle.
  std::shared_ptr<const ModelBundle> RoundTrip(const Classifier& model,
                                               const std::string& name) {
    const std::string path = TempPath(name);
    BundleMeta meta;
    meta.lambdas = {0.25, -0.5};
    meta.satisfied = true;
    meta.val_accuracy = 0.75;
    meta.metric = "sp";
    meta.sensitive_attribute = "grp";
    meta.epsilon = 0.05;
    Status written = WriteBundle(model, encoder_, meta, path);
    EXPECT_TRUE(written.ok()) << written.ToString();
    auto bundle = ModelBundle::Open(path);
    EXPECT_TRUE(bundle.ok()) << bundle.status().ToString();
    return bundle.ok() ? *bundle : nullptr;
  }

  /// PredictProba of `model` and the bundle's flat model must agree bit for
  /// bit on double and float32 feature storage, at 1 and 4 predict threads.
  void ExpectBitIdentical(const Classifier& model, const ModelBundle& bundle) {
    const Matrix Xf = X_.ToFloat32();
    const std::vector<double> want64 = model.PredictProba(X_);
    const std::vector<double> want32 = model.PredictProba(Xf);
    for (int threads : {1, 4}) {
      std::unique_ptr<Classifier> flat = bundle.MakeModel(threads);
      ASSERT_NE(flat, nullptr);
      EXPECT_EQ(flat->Name(), model.Name());
      const std::vector<double> got64 = flat->PredictProba(X_);
      const std::vector<double> got32 = flat->PredictProba(Xf);
      ASSERT_EQ(got64.size(), want64.size());
      for (size_t i = 0; i < want64.size(); ++i) {
        EXPECT_EQ(got64[i], want64[i])
            << model.Name() << " f64 row " << i << " threads " << threads;
        EXPECT_EQ(got32[i], want32[i])
            << model.Name() << " f32 row " << i << " threads " << threads;
      }
    }
  }

  Dataset dataset_;
  FeatureEncoder encoder_;
  Matrix X_;
  std::vector<int> y_;
  std::vector<double> weights_;
};

// ---------------------------------------------------------------------------
// Flat predict parity, per family
// ---------------------------------------------------------------------------

TEST_F(BundleTest, LogisticRegressionRoundTripIsBitIdentical) {
  auto model = MakeTrainer("lr", 3)->Fit(X_, y_, weights_);
  ASSERT_NE(model, nullptr);
  auto bundle = RoundTrip(*model, "lr.ofb");
  ASSERT_NE(bundle, nullptr);
  ExpectBitIdentical(*model, *bundle);
}

TEST_F(BundleTest, NaiveBayesRoundTripIsBitIdentical) {
  auto model = MakeTrainer("nb", 3)->Fit(X_, y_, weights_);
  ASSERT_NE(model, nullptr);
  auto bundle = RoundTrip(*model, "nb.ofb");
  ASSERT_NE(bundle, nullptr);
  ExpectBitIdentical(*model, *bundle);
}

TEST_F(BundleTest, MlpRoundTripIsBitIdentical) {
  MlpOptions options;
  options.hidden_units = 9;
  options.max_epochs = 30;
  auto model = MlpTrainer(options).Fit(X_, y_, weights_);
  ASSERT_NE(model, nullptr);
  auto bundle = RoundTrip(*model, "mlp.ofb");
  ASSERT_NE(bundle, nullptr);
  ExpectBitIdentical(*model, *bundle);
}

TEST_F(BundleTest, DecisionTreeParityAcrossDepthsAndSplitMethods) {
  for (SplitMethod method : {SplitMethod::kExact, SplitMethod::kHistogram}) {
    for (int depth : {1, 3, 8}) {
      DecisionTreeOptions options;
      options.max_depth = depth;
      options.split_method = method;
      auto model = DecisionTreeTrainer(options).Fit(X_, y_, weights_);
      ASSERT_NE(model, nullptr);
      auto bundle = RoundTrip(*model, "dt.ofb");
      ASSERT_NE(bundle, nullptr) << "depth " << depth;
      ExpectBitIdentical(*model, *bundle);
    }
  }
}

TEST_F(BundleTest, SingleNodeTreeRoundTrips) {
  // Constant labels: the root never splits, giving a one-node tree.
  std::vector<int> ones(y_.size(), 1);
  auto model = DecisionTreeTrainer().Fit(X_, ones, weights_);
  ASSERT_NE(model, nullptr);
  ASSERT_EQ(dynamic_cast<DecisionTreeModel*>(model.get())->NumNodes(), 1u);
  auto bundle = RoundTrip(*model, "dt_leaf.ofb");
  ASSERT_NE(bundle, nullptr);
  ExpectBitIdentical(*model, *bundle);
}

TEST_F(BundleTest, RandomForestParityAcrossSplitMethods) {
  for (SplitMethod method : {SplitMethod::kExact, SplitMethod::kHistogram}) {
    RandomForestOptions options;
    options.num_trees = 12;
    options.max_depth = 5;
    options.split_method = method;
    auto model = RandomForestTrainer(options).Fit(X_, y_, weights_);
    ASSERT_NE(model, nullptr);
    auto bundle = RoundTrip(*model, "rf.ofb");
    ASSERT_NE(bundle, nullptr);
    ExpectBitIdentical(*model, *bundle);
  }
}

TEST_F(BundleTest, GbdtParityAcrossSplitMethods) {
  for (SplitMethod method : {SplitMethod::kExact, SplitMethod::kHistogram}) {
    GbdtOptions options;
    options.num_rounds = 10;
    options.max_depth = 3;
    options.split_method = method;
    auto model = GbdtTrainer(options).Fit(X_, y_, weights_);
    ASSERT_NE(model, nullptr);
    auto bundle = RoundTrip(*model, "gbdt.ofb");
    ASSERT_NE(bundle, nullptr);
    ExpectBitIdentical(*model, *bundle);
  }
}

TEST_F(BundleTest, AccumulateProbaMatchesPointerModels) {
  // Serving shards via AccumulateProba too (RF members); flat DT/GBDT must
  // match the pointer models' accumulate path bit for bit, including the
  // GBDT per-block sigmoid boundaries (offset slice starts mid-block).
  GbdtOptions options;
  options.num_rounds = 8;
  auto gbdt = GbdtTrainer(options).Fit(X_, y_, weights_);
  ASSERT_NE(gbdt, nullptr);
  auto bundle = RoundTrip(*gbdt, "gbdt_acc.ofb");
  ASSERT_NE(bundle, nullptr);
  auto flat = bundle->MakeModel();
  std::vector<double> want(X_.rows(), 0.125);
  std::vector<double> got(X_.rows(), 0.125);
  gbdt->AccumulateProba(X_, 3, X_.rows() - 5, want);
  flat->AccumulateProba(X_, 3, X_.rows() - 5, got);
  for (size_t i = 0; i < want.size(); ++i) EXPECT_EQ(got[i], want[i]) << i;
}

// ---------------------------------------------------------------------------
// Wire format, metadata, and mmap behavior
// ---------------------------------------------------------------------------

TEST_F(BundleTest, MetaAndEncoderRoundTrip) {
  auto model = MakeTrainer("lr", 3)->Fit(X_, y_, weights_);
  auto bundle = RoundTrip(*model, "meta.ofb");
  ASSERT_NE(bundle, nullptr);
  EXPECT_EQ(bundle->meta().family, "logistic_regression");
  EXPECT_EQ(bundle->meta().lambdas, (std::vector<double>{0.25, -0.5}));
  EXPECT_TRUE(bundle->meta().satisfied);
  EXPECT_DOUBLE_EQ(bundle->meta().val_accuracy, 0.75);
  EXPECT_EQ(bundle->meta().metric, "sp");
  EXPECT_EQ(bundle->meta().sensitive_attribute, "grp");
  EXPECT_DOUBLE_EQ(bundle->meta().epsilon, 0.05);
  EXPECT_EQ(bundle->meta().num_features, encoder_.NumFeatures());
  // The packed encoder produces the same matrix as the original.
  const Matrix X2 = bundle->encoder().Transform(dataset_);
  ASSERT_EQ(X2.rows(), X_.rows());
  ASSERT_EQ(X2.cols(), X_.cols());
  for (size_t i = 0; i < X_.rows(); ++i) {
    for (size_t c = 0; c < X_.cols(); ++c) EXPECT_EQ(X2(i, c), X_(i, c));
  }
}

TEST_F(BundleTest, InspectReportsSectionsAndCrc) {
  auto model = MakeTrainer("rf", 3)->Fit(X_, y_, weights_);
  const std::string path = TempPath("inspect.ofb");
  ASSERT_TRUE(WriteBundle(*model, encoder_, BundleMeta{}, path).ok());
  auto inspection = InspectBundle(path);
  ASSERT_TRUE(inspection.ok()) << inspection.status().ToString();
  EXPECT_EQ(inspection->version, kBundleVersion);
  EXPECT_TRUE(inspection->crc_ok);
  EXPECT_EQ(inspection->crc_stored, inspection->crc_computed);
  std::vector<std::string> names;
  for (const BundleSectionInfo& s : inspection->sections) {
    names.push_back(s.name);
    EXPECT_EQ(s.offset % kBundleAlign, 0u) << s.name;
  }
  EXPECT_EQ(names,
            (std::vector<std::string>{"meta", "encoder", "trees.meta",
                                      "trees.offsets", "trees.feature",
                                      "trees.threshold", "trees.left_child",
                                      "trees.leaf_value"}));
  const std::string text = inspection->ToString();
  EXPECT_NE(text.find("trees.leaf_value"), std::string::npos);
  EXPECT_NE(text.find("(ok)"), std::string::npos);
}

TEST_F(BundleTest, MmapAndOwnedBufferAgree) {
  auto model = MakeTrainer("xgb", 3)->Fit(X_, y_, weights_);
  const std::string path = TempPath("mmap.ofb");
  ASSERT_TRUE(WriteBundle(*model, encoder_, BundleMeta{}, path).ok());
  auto mapped = ModelBundle::Open(path);
  ASSERT_TRUE(mapped.ok());
  ModelBundle::OpenOptions no_mmap;
  no_mmap.allow_mmap = false;
  auto owned = ModelBundle::Open(path, no_mmap);
  ASSERT_TRUE(owned.ok());
  EXPECT_TRUE((*mapped)->mapped());
  EXPECT_FALSE((*owned)->mapped());
  const std::vector<double> a = (*mapped)->MakeModel()->PredictProba(X_);
  const std::vector<double> b = (*owned)->MakeModel()->PredictProba(X_);
  for (size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
}

TEST_F(BundleTest, ModelsKeepTheBundleAlive) {
  auto model = MakeTrainer("lr", 3)->Fit(X_, y_, weights_);
  auto bundle = RoundTrip(*model, "alive.ofb");
  ASSERT_NE(bundle, nullptr);
  std::unique_ptr<Classifier> flat = bundle->MakeModel();
  const std::vector<double> before = flat->PredictProba(X_);
  bundle.reset();  // flat model holds the last reference to the mapping
  const std::vector<double> after = flat->PredictProba(X_);
  for (size_t i = 0; i < before.size(); ++i) EXPECT_EQ(after[i], before[i]);
}

TEST_F(BundleTest, WriteGoesThroughTheDurablePublishPath) {
  // WriteBundle shares the snapshot layer's temp+fsync+rename publish, so
  // its fault sites apply: a failed write leaves nothing at the final path.
  auto model = MakeTrainer("lr", 3)->Fit(X_, y_, weights_);
  const std::string path = TempPath("durable.ofb");
  FaultInjector::Arm(fault_sites::kIoEnospc, /*fire_at=*/1, /*repeat=*/true);
  const Status failed = WriteBundle(*model, encoder_, BundleMeta{}, path);
  FaultInjector::Reset();
  ASSERT_FALSE(failed.ok());
  EXPECT_FALSE(ModelBundle::Open(path).ok());
  ASSERT_TRUE(WriteBundle(*model, encoder_, BundleMeta{}, path).ok());
  EXPECT_TRUE(ModelBundle::Open(path).ok());
}

TEST_F(BundleTest, PackRejectsUnsupportedModels) {
  class OpaqueModel : public Classifier {
   public:
    std::vector<double> PredictProba(const Matrix& X) const override {
      return std::vector<double>(X.rows(), 0.5);
    }
    std::string Name() const override { return "opaque"; }
  };
  OpaqueModel opaque;
  const Status status =
      WriteBundle(opaque, encoder_, BundleMeta{}, TempPath("opaque.ofb"));
  EXPECT_EQ(status.code(), StatusCode::kUnsupported);
}

// ---------------------------------------------------------------------------
// Corruption: every malformed bundle fails with a typed status, never UB
// ---------------------------------------------------------------------------

class BundleCorruptionTest : public BundleTest {
 protected:
  void SetUp() override {
    BundleTest::SetUp();
    auto model = MakeTrainer("xgb", 3)->Fit(X_, y_, weights_);
    path_ = TempPath("corrupt.ofb");
    ASSERT_TRUE(WriteBundle(*model, encoder_, BundleMeta{}, path_).ok());
    image_ = ReadFile(path_);
    ASSERT_GT(image_.size(), 64u);
  }

  void ExpectTypedFailure(const std::string& variant_path,
                          const std::string& context) {
    auto bundle = ModelBundle::Open(variant_path);
    ASSERT_FALSE(bundle.ok()) << context;
    const StatusCode code = bundle.status().code();
    EXPECT_TRUE(code == StatusCode::kDataLoss ||
                code == StatusCode::kInvalidArgument)
        << context << ": " << bundle.status().ToString();
  }

  std::string path_;
  std::vector<uint8_t> image_;
};

TEST_F(BundleCorruptionTest, TruncationAtEveryStrideFailsTyped) {
  const std::string variant = TempPath("truncated.ofb");
  for (size_t cut = 0; cut < image_.size(); cut += 211) {
    WriteFile(variant,
              std::vector<uint8_t>(image_.begin(), image_.begin() + cut));
    ExpectTypedFailure(variant, "cut at " + std::to_string(cut));
  }
}

TEST_F(BundleCorruptionTest, BitFlipAtEveryStrideFailsTyped) {
  const std::string variant = TempPath("flipped.ofb");
  for (size_t at = 0; at < image_.size(); at += 97) {
    std::vector<uint8_t> flipped = image_;
    flipped[at] ^= 0x10;
    WriteFile(variant, flipped);
    // A flip in zero padding between payloads still trips the whole-image
    // CRC, so every offset must fail.
    ExpectTypedFailure(variant, "flip at " + std::to_string(at));
  }
}

TEST_F(BundleCorruptionTest, CorruptReadFaultSiteTripsCrcGuard) {
  FaultInjector::Arm(fault_sites::kIoCorruptRead);
  auto bundle = ModelBundle::Open(path_);
  ASSERT_FALSE(bundle.ok());
  EXPECT_EQ(bundle.status().code(), StatusCode::kDataLoss);
  EXPECT_NE(bundle.status().message().find("near byte"), std::string::npos);
  FaultInjector::Reset();
  // Same file loads cleanly once the site is disarmed.
  EXPECT_TRUE(ModelBundle::Open(path_).ok());
}

TEST_F(BundleCorruptionTest, ForeignAndEmptyFilesFailTyped) {
  const std::string garbage = TempPath("garbage.ofb");
  WriteFile(garbage, std::vector<uint8_t>(4096, 0x5a));
  auto foreign = ModelBundle::Open(garbage);
  ASSERT_FALSE(foreign.ok());
  EXPECT_EQ(foreign.status().code(), StatusCode::kInvalidArgument);

  const std::string empty = TempPath("empty.ofb");
  WriteFile(empty, {});
  auto nothing = ModelBundle::Open(empty);
  ASSERT_FALSE(nothing.ok());
  EXPECT_EQ(nothing.status().code(), StatusCode::kDataLoss);

  auto missing = ModelBundle::Open(TempPath("missing.ofb"));
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kInvalidArgument);  // ENOENT
}

TEST_F(BundleCorruptionTest, HugeTreeOffsetTableFailsTypedNotOob) {
  // Adversarial (CRC-valid) image: rewrite the last trees.offsets entry to
  // 2^62. The section sizes stay unchanged, so the only defenses are the
  // overflow-proof element-count check and the int32 total-node bound — a
  // regression here is a 2^62-iteration OOB walk, not a clean failure.
  auto inspection = InspectBundle(path_);
  ASSERT_TRUE(inspection.ok()) << inspection.status().ToString();
  const BundleSectionInfo* offsets = nullptr;
  for (const BundleSectionInfo& section : inspection->sections) {
    if (section.name == "trees.offsets") offsets = &section;
  }
  ASSERT_NE(offsets, nullptr);
  ASSERT_GE(offsets->size, 16u);  // at least [0, end]
  std::vector<uint8_t> evil = image_;
  const uint64_t huge = uint64_t{1} << 62;
  std::memcpy(evil.data() + offsets->offset + offsets->size - 8, &huge, 8);
  const uint32_t crc = Crc32(evil.data(), evil.size() - 4);
  std::memcpy(evil.data() + evil.size() - 4, &crc, 4);
  const std::string variant = TempPath("huge_offsets.ofb");
  WriteFile(variant, evil);
  ExpectTypedFailure(variant, "2^62 tree offset");
}

TEST_F(BundleCorruptionTest, VersionFromTheFutureIsRejected) {
  std::vector<uint8_t> future = image_;
  future[4] = 99;  // version field (little-endian u32 at offset 4)
  // Keep the CRC valid so the version check itself is what fires.
  const uint32_t crc = Crc32(future.data(), future.size() - 4);
  std::memcpy(future.data() + future.size() - 4, &crc, 4);
  const std::string variant = TempPath("future.ofb");
  WriteFile(variant, future);
  auto bundle = ModelBundle::Open(variant);
  ASSERT_FALSE(bundle.ok());
  EXPECT_EQ(bundle.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(bundle.status().message().find("version"), std::string::npos);
}

}  // namespace
}  // namespace omnifair
