#ifndef OMNIFAIR_ML_DECISION_TREE_H_
#define OMNIFAIR_ML_DECISION_TREE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "ml/binning.h"
#include "ml/classifier.h"
#include "util/random.h"

namespace omnifair {

/// Hyperparameters for the weighted CART classifier.
struct DecisionTreeOptions {
  int max_depth = 8;
  /// Do not split nodes whose total example weight is below this.
  double min_weight_split = 4.0;
  /// Minimum total example weight on each side of a split.
  double min_weight_leaf = 2.0;
  /// Number of features considered per node; 0 means all (plain CART),
  /// otherwise a random subset (used by RandomForestTrainer).
  size_t max_features = 0;
  uint64_t seed = 7;
  /// Split search strategy (DESIGN.md §11). kExact is the seed behavior and
  /// stays bit-identical to it; kHistogram pre-quantizes X once and scans
  /// bin histograms per node.
  SplitMethod split_method = SplitMethod::kExact;
  /// Bins per feature in histogram mode (clamped to [2, 255]).
  int max_bins = 255;
  /// Worker threads for histogram builds (binning + per-feature node
  /// histograms); 1 keeps the exact serial path. Results are bit-identical
  /// for any value.
  int num_threads = 1;
};

/// A fitted CART tree stored as a flat node array.
class DecisionTreeModel : public Classifier {
 public:
  struct Node {
    bool is_leaf = true;
    int feature = -1;
    double threshold = 0.0;
    int left = -1;
    int right = -1;
    /// Weighted P(y=1) among training examples reaching this leaf.
    double probability = 0.5;
  };

  explicit DecisionTreeModel(std::vector<Node> nodes);

  std::vector<double> PredictProba(const Matrix& X) const override;
  /// Per-row traversal straight into the output buffer — no temporary.
  void AccumulateProba(const Matrix& X, size_t row_begin, size_t row_end,
                       std::vector<double>& proba) const override;
  std::string Name() const override { return "decision_tree"; }

  size_t NumNodes() const { return nodes_.size(); }
  const std::vector<Node>& nodes() const { return nodes_; }
  /// Depth of the deepest leaf (root = 0).
  int Depth() const;

 private:
  double PredictRow(const double* row) const;
  /// Float32 feature rows: thresholds stay double, each element widens once.
  double PredictRow(const float* row) const;

  std::vector<Node> nodes_;
};

/// Weighted CART on the weighted Gini impurity, with exact (per-node sort)
/// or histogram (pre-quantized bins) split search. Trees optimize accuracy
/// without an explicit loss function, which is exactly why the paper needs a
/// model-agnostic mechanism — the only fairness hook available here is the
/// example weights.
class DecisionTreeTrainer : public Trainer {
 public:
  explicit DecisionTreeTrainer(DecisionTreeOptions options = {});

  std::unique_ptr<Classifier> Fit(const Matrix& X, const std::vector<int>& y,
                                  const std::vector<double>& weights) override;
  using Trainer::Fit;

  std::string Name() const override { return "decision_tree"; }
  /// The clone shares this trainer's BinningCache, so parallel tuners that
  /// fit every grid point on its own clone still bin X exactly once.
  std::unique_ptr<Trainer> Clone() const override;

  /// Hands the trainer a pre-built binning for the upcoming Fit (used by
  /// RandomForestTrainer so all trees of a forest share one BinnedMatrix).
  /// Ignored in exact mode or when it does not match the fitted X.
  void SetBinnedMatrix(std::shared_ptr<const BinnedMatrix> binned) {
    preset_binned_ = std::move(binned);
  }

 private:
  DecisionTreeOptions options_;
  std::shared_ptr<BinningCache> bin_cache_;
  std::shared_ptr<const BinnedMatrix> preset_binned_;
};

}  // namespace omnifair

#endif  // OMNIFAIR_ML_DECISION_TREE_H_
