#include "core/stream_tune.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/logging.h"
#include "util/random.h"
#include "util/telemetry.h"

namespace omnifair {
namespace {

bool IsValidationBlock(size_t index, const StreamTuneOptions& options) {
  const size_t period = std::max<size_t>(options.val_block_period, 2);
  return index % period == period - 1;
}

double Sigmoid(double z) { return 1.0 / (1.0 + std::exp(-z)); }

/// log(1 + e^z) without overflow for large |z|.
double Log1pExp(double z) {
  if (z > 30.0) return z;
  return std::log1p(std::exp(z));
}

/// Per-group label counts over the train blocks.
struct GroupCounts {
  uint64_t total = 0;
  uint64_t y0 = 0;
  uint64_t y1 = 0;
};

/// Metric coefficient c(g, y) from the group's train-split label counts —
/// the same formulas FairnessMetric::Coefficients uses, including the
/// empty-group / undefined-rate conventions (contribute 0).
std::array<double, 2> MetricCoefficientOf(MetricKind metric,
                                          const GroupCounts& g) {
  std::array<double, 2> c = {0.0, 0.0};
  switch (metric) {
    case MetricKind::kStatisticalParity:
      if (g.total > 0) {
        c[0] = -1.0 / static_cast<double>(g.total);
        c[1] = 1.0 / static_cast<double>(g.total);
      }
      break;
    case MetricKind::kMisclassificationRate:
      if (g.total > 0) {
        c[0] = 1.0 / static_cast<double>(g.total);
        c[1] = c[0];
      }
      break;
    case MetricKind::kFalsePositiveRate:
      if (g.y0 > 0) c[0] = -1.0 / static_cast<double>(g.y0);
      break;
    case MetricKind::kFalseNegativeRate:
      if (g.y1 > 0) c[1] = -1.0 / static_cast<double>(g.y1);
      break;
    default:
      OF_CHECK(false) << "prediction-parameterized metric in streaming tuner";
  }
  return c;
}

/// Per-group confusion counts streamed over the validation blocks.
struct ValCounts {
  uint64_t total = 0;
  uint64_t y0 = 0;
  uint64_t y1 = 0;
  uint64_t correct = 0;     // h == y
  uint64_t pred1 = 0;       // h == 1
  uint64_t tn = 0;          // h == 0, y == 0
  uint64_t tp = 0;          // h == 1, y == 1
};

/// f(h, g) per metric from validation confusion counts, matching the
/// Definition 3 identity the in-memory Evaluate() computes (FPR/FNR return
/// the true named rate; undefined rates contribute 0).
double MetricValueOf(MetricKind metric, const ValCounts& g) {
  switch (metric) {
    case MetricKind::kStatisticalParity:
      return g.total > 0 ? static_cast<double>(g.pred1) / g.total : 0.0;
    case MetricKind::kMisclassificationRate:
      return g.total > 0 ? static_cast<double>(g.correct) / g.total : 0.0;
    case MetricKind::kFalsePositiveRate:
      return g.y0 > 0 ? 1.0 - static_cast<double>(g.tn) / g.y0 : 0.0;
    case MetricKind::kFalseNegativeRate:
      return g.y1 > 0 ? 1.0 - static_cast<double>(g.tp) / g.y1 : 0.0;
    default:
      OF_CHECK(false) << "prediction-parameterized metric in streaming tuner";
  }
  return 0.0;
}

struct EvalResult {
  double accuracy = 0.0;
  double fairness_gap = 0.0;  // f(g1) - f(g2)
};

/// One fitted + scored candidate.
struct Candidate {
  std::vector<double> theta;
  double lambda = 0.0;
  EvalResult eval;
  bool satisfied = false;
};

/// Keeps the highest-validation-accuracy satisfying candidate (the
/// BestCandidate rule of the in-memory tuner).
struct BestCandidate {
  Candidate candidate;
  bool has = false;

  void Consider(const Candidate& c) {
    if (!c.satisfied) return;
    if (!has || c.eval.accuracy > candidate.eval.accuracy) {
      candidate = c;
      has = true;
    }
  }
};

class StreamTuner {
 public:
  StreamTuner(const ChunkedDataset& data, const StreamTuneOptions& options,
              StreamCoefficientTable table)
      : data_(data), options_(options), table_(std::move(table)) {
    num_features_ = data.meta().num_features;
    for (size_t b = 0; b < data.num_blocks(); ++b) {
      if (IsValidationBlock(b, options_)) {
        val_blocks_.push_back(b);
      } else {
        train_blocks_.push_back(b);
      }
    }
  }

  Result<StreamTuneResult> Run() {
    if (train_blocks_.empty() || val_blocks_.empty()) {
      return Status::InvalidArgument(
          "streaming tune needs at least one train and one validation block "
          "(got " +
          std::to_string(data_.num_blocks()) + " blocks)");
    }

    Result<Candidate> base = FitAndScore(0.0);
    if (!base.ok()) return base.status();
    ++models_trained_;
    BestCandidate best;
    best.Consider(*base);
    const double fp0 = base->eval.fairness_gap;
    if (std::abs(fp0) <= options_.epsilon) {
      return Finish(*base, /*satisfied=*/true);
    }

    // Lemma 2 orientation: a positive gap shrinks as lambda decreases.
    const double direction = fp0 > 0 ? -1.0 : 1.0;
    auto resolved = [&](double fp) {
      return std::abs(fp) <= options_.epsilon || (fp0 > 0 ? fp < 0 : fp > 0);
    };

    // Exponential search for a bracketing magnitude.
    double magnitude_lo = 0.0;
    double magnitude_hi = -1.0;
    double magnitude = options_.initial_step;
    Candidate last;
    for (int d = 0; d <= options_.max_doublings; ++d) {
      Result<Candidate> fit = FitAndScore(direction * magnitude);
      if (!fit.ok()) return fit.status();
      ++models_trained_;
      best.Consider(*fit);
      last = *fit;
      if (resolved(fit->eval.fairness_gap)) {
        magnitude_hi = magnitude;
        break;
      }
      magnitude_lo = magnitude;
      magnitude *= 2.0;
    }
    if (magnitude_hi < 0.0) {
      // No crossing within the search range: best-effort, unsatisfied
      // (mirrors the in-memory tuner's infeasible handling).
      return Finish(best.has ? best.candidate : last, best.has);
    }

    // Binary search pins the crossing to tau.
    while (magnitude_hi - magnitude_lo >= options_.tau) {
      const double mid = 0.5 * (magnitude_lo + magnitude_hi);
      Result<Candidate> fit = FitAndScore(direction * mid);
      if (!fit.ok()) return fit.status();
      ++models_trained_;
      best.Consider(*fit);
      last = *fit;
      if (resolved(fit->eval.fairness_gap)) {
        magnitude_hi = mid;
      } else {
        magnitude_lo = mid;
      }
    }
    if (best.has) return Finish(best.candidate, true);
    return Finish(last, last.satisfied);
  }

 private:
  Result<StreamTuneResult> Finish(const Candidate& c, bool satisfied) {
    StreamTuneResult result;
    result.theta = c.theta;
    result.lambda = c.lambda;
    result.satisfied = satisfied && c.satisfied;
    result.val_accuracy = c.eval.accuracy;
    result.val_fairness_gap = c.eval.fairness_gap;
    result.models_trained = models_trained_;
    return result;
  }

  double WeightOf(int group, int label, double lambda) const {
    const double s =
        group >= 0 && static_cast<size_t>(group) < table_.s.size()
            ? table_.s[static_cast<size_t>(group)][label == 1 ? 1 : 0]
            : 0.0;
    const double w = 1.0 + static_cast<double>(table_.n_train) * lambda * s;
    return w > 0.0 ? w : 0.0;  // Eq. 12 clip
  }

  Result<Candidate> FitAndScore(double lambda) {
    Result<std::vector<double>> theta = FitSgd(lambda);
    if (!theta.ok()) return theta.status();
    Result<EvalResult> eval = Evaluate(*theta);
    if (!eval.ok()) return eval.status();
    Candidate c;
    c.theta = std::move(*theta);
    c.lambda = lambda;
    c.eval = *eval;
    c.satisfied = std::abs(c.eval.fairness_gap) <= options_.epsilon;
    return c;
  }

  /// Weighted mini-batch SGD over the train blocks: blocks are visited in a
  /// seeded shuffled order per epoch, batches are contiguous rows within a
  /// block, and accumulation is serial — bit-identical at any thread count.
  Result<std::vector<double>> FitSgd(double lambda) {
    const size_t d = num_features_;
    std::vector<double> theta(d + 1, 0.0);
    std::vector<double> grad(d + 1, 0.0);
    const size_t batch =
        std::max<size_t>(1, std::min<size_t>(options_.batch_size,
                                             std::numeric_limits<size_t>::max()));
    uint64_t n_train = table_.n_train;
    if (n_train == 0) return theta;

    double lr = options_.learning_rate;
    int retries = 0;
    Rng shuffle_rng(options_.shuffle_seed);
    std::vector<double> checkpoint = theta;
    double prev_loss = std::numeric_limits<double>::infinity();
    uint64_t t = 0;  // global batch counter for kInvSqrt

    for (int epoch = 0; epoch < options_.epochs; ++epoch) {
      const std::vector<size_t> order =
          shuffle_rng.Permutation(train_blocks_.size());
      double epoch_loss = 0.0;
      for (size_t oi = 0; oi < order.size(); ++oi) {
        const size_t block_index = train_blocks_[order[oi]];
        Result<DatasetBlock> block = data_.MaterializeBlock(block_index);
        if (!block.ok()) return block.status();
        const size_t rows = block->labels.size();
        for (size_t begin = 0; begin < rows; begin += batch) {
          const size_t end = std::min(rows, begin + batch);
          std::fill(grad.begin(), grad.end(), 0.0);
          double batch_loss = 0.0;
          for (size_t i = begin; i < end; ++i) {
            const float* row = block->features.RowF(i);
            double z = theta[d];
            for (size_t c = 0; c < d; ++c) z += theta[c] * row[c];
            const int y = block->labels[i];
            const double w = WeightOf(block->groups[i], y, lambda);
            if (w == 0.0) continue;
            const double target = static_cast<double>(y);
            batch_loss += w * (Log1pExp(z) - target * z);
            const double residual = w * (Sigmoid(z) - target);
            if (residual != 0.0) {
              for (size_t c = 0; c < d; ++c) grad[c] += residual * row[c];
              grad[d] += residual;
            }
          }
          const double inv_rows = 1.0 / static_cast<double>(end - begin);
          ++t;
          const double step = options_.lr_schedule == LrSchedule::kInvSqrt
                                  ? lr / std::sqrt(static_cast<double>(t))
                                  : lr;
          for (size_t c = 0; c < d; ++c) {
            theta[c] -= step * (grad[c] * inv_rows + options_.l2 * theta[c]);
          }
          theta[d] -= step * grad[d] * inv_rows;
          epoch_loss += batch_loss;
          OF_COUNTER_INC("sgd.batches");
        }
      }
      OF_COUNTER_INC("sgd.epochs");
      double reg = 0.0;
      for (size_t c = 0; c < d; ++c) reg += theta[c] * theta[c];
      epoch_loss = epoch_loss / static_cast<double>(n_train) +
                   0.5 * options_.l2 * reg;
      if (!std::isfinite(epoch_loss)) {
        if (++retries > options_.max_divergence_retries) {
          return Status::Internal("streaming SGD diverged at lambda " +
                                  std::to_string(lambda));
        }
        theta = checkpoint;
        lr *= 0.5;
        prev_loss = std::numeric_limits<double>::infinity();
        --epoch;  // retry the epoch at the smaller step
        continue;
      }
      checkpoint = theta;
      prev_loss = epoch_loss;
    }
    (void)prev_loss;
    return theta;
  }

  /// Streams the validation blocks, accumulating per-group confusion counts.
  Result<EvalResult> Evaluate(const std::vector<double>& theta) const {
    const size_t d = num_features_;
    const size_t num_groups = data_.meta().group_names.size();
    std::vector<ValCounts> counts(num_groups);
    uint64_t total = 0;
    uint64_t correct = 0;
    for (size_t block_index : val_blocks_) {
      Result<DatasetBlock> block = data_.MaterializeBlock(block_index);
      if (!block.ok()) return block.status();
      const size_t rows = block->labels.size();
      for (size_t i = 0; i < rows; ++i) {
        const float* row = block->features.RowF(i);
        double z = theta[d];
        for (size_t c = 0; c < d; ++c) z += theta[c] * row[c];
        const int pred = z >= 0.0 ? 1 : 0;
        const int y = block->labels[i];
        ++total;
        correct += (pred == y);
        const int g = block->groups[i];
        if (g < 0 || static_cast<size_t>(g) >= num_groups) continue;
        ValCounts& vc = counts[static_cast<size_t>(g)];
        ++vc.total;
        if (y == 0) ++vc.y0; else ++vc.y1;
        vc.correct += (pred == y);
        vc.pred1 += (pred == 1);
        vc.tn += (pred == 0 && y == 0);
        vc.tp += (pred == 1 && y == 1);
      }
    }
    EvalResult out;
    out.accuracy = total > 0 ? static_cast<double>(correct) / total : 0.0;
    out.fairness_gap = MetricValueOf(options_.metric, counts[options_.group1]) -
                       MetricValueOf(options_.metric, counts[options_.group2]);
    return out;
  }

  const ChunkedDataset& data_;
  StreamTuneOptions options_;
  StreamCoefficientTable table_;
  size_t num_features_ = 0;
  std::vector<size_t> train_blocks_;
  std::vector<size_t> val_blocks_;
  int models_trained_ = 0;
};

}  // namespace

Result<StreamCoefficientTable> BuildStreamCoefficientTable(
    const ChunkedDataset& data, const StreamTuneOptions& options) {
  const size_t num_groups = data.meta().group_names.size();
  if (options.group1 >= num_groups || options.group2 >= num_groups ||
      options.group1 == options.group2) {
    return Status::InvalidArgument("invalid group pair for streaming tune");
  }
  if (options.metric == MetricKind::kFalseOmissionRate ||
      options.metric == MetricKind::kFalseDiscoveryRate) {
    return Status::Unsupported(
        "streaming tune supports prediction-independent metrics only "
        "(SP/MR/FPR/FNR)");
  }
  std::vector<GroupCounts> counts(num_groups);
  uint64_t n_train = 0;
  for (size_t b = 0; b < data.num_blocks(); ++b) {
    if (IsValidationBlock(b, options)) continue;
    Result<DatasetBlock> block = data.MaterializeBlock(b);
    if (!block.ok()) return block.status();
    const size_t rows = block->labels.size();
    n_train += rows;
    for (size_t i = 0; i < rows; ++i) {
      const int g = block->groups[i];
      if (g < 0 || static_cast<size_t>(g) >= num_groups) continue;
      GroupCounts& gc = counts[static_cast<size_t>(g)];
      ++gc.total;
      if (block->labels[i] == 0) ++gc.y0; else ++gc.y1;
    }
  }
  StreamCoefficientTable table;
  table.n_train = n_train;
  table.s.assign(num_groups, {0.0, 0.0});
  const std::array<double, 2> c1 =
      MetricCoefficientOf(options.metric, counts[options.group1]);
  const std::array<double, 2> c2 =
      MetricCoefficientOf(options.metric, counts[options.group2]);
  table.s[options.group1] = {c1[0], c1[1]};
  table.s[options.group2] = {-c2[0], -c2[1]};
  return table;
}

Result<StreamTuneResult> StreamTuneLambda(const ChunkedDataset& data,
                                          const StreamTuneOptions& options) {
  Result<StreamCoefficientTable> table =
      BuildStreamCoefficientTable(data, options);
  if (!table.ok()) return table.status();
  StreamTuner tuner(data, options, std::move(*table));
  return tuner.Run();
}

}  // namespace omnifair
