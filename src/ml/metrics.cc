#include "ml/metrics.h"

#include <algorithm>
#include <numeric>

#include "util/logging.h"

namespace omnifair {

double ConfusionCounts::Accuracy() const {
  const size_t total = Total();
  if (total == 0) return 0.0;
  return static_cast<double>(tp + tn) / static_cast<double>(total);
}

double ConfusionCounts::FalsePositiveRate() const {
  const size_t denom = fp + tn;
  if (denom == 0) return 0.0;
  return static_cast<double>(fp) / static_cast<double>(denom);
}

double ConfusionCounts::FalseNegativeRate() const {
  const size_t denom = fn + tp;
  if (denom == 0) return 0.0;
  return static_cast<double>(fn) / static_cast<double>(denom);
}

double ConfusionCounts::FalseOmissionRate() const {
  const size_t denom = fn + tn;
  if (denom == 0) return 0.0;
  return static_cast<double>(fn) / static_cast<double>(denom);
}

double ConfusionCounts::FalseDiscoveryRate() const {
  const size_t denom = fp + tp;
  if (denom == 0) return 0.0;
  return static_cast<double>(fp) / static_cast<double>(denom);
}

double ConfusionCounts::PositivePredictionRate() const {
  const size_t total = Total();
  if (total == 0) return 0.0;
  return static_cast<double>(tp + fp) / static_cast<double>(total);
}

ConfusionCounts CountConfusion(const std::vector<int>& labels,
                               const std::vector<int>& predictions) {
  OF_CHECK_EQ(labels.size(), predictions.size());
  ConfusionCounts counts;
  for (size_t i = 0; i < labels.size(); ++i) {
    if (predictions[i] == 1) {
      labels[i] == 1 ? ++counts.tp : ++counts.fp;
    } else {
      labels[i] == 1 ? ++counts.fn : ++counts.tn;
    }
  }
  return counts;
}

ConfusionCounts CountConfusion(const std::vector<int>& labels,
                               const std::vector<int>& predictions,
                               const std::vector<size_t>& subset) {
  OF_CHECK_EQ(labels.size(), predictions.size());
  ConfusionCounts counts;
  for (size_t i : subset) {
    OF_CHECK_LT(i, labels.size());
    if (predictions[i] == 1) {
      labels[i] == 1 ? ++counts.tp : ++counts.fp;
    } else {
      labels[i] == 1 ? ++counts.fn : ++counts.tn;
    }
  }
  return counts;
}

double Accuracy(const std::vector<int>& labels, const std::vector<int>& predictions) {
  OF_CHECK_EQ(labels.size(), predictions.size());
  if (labels.empty()) return 0.0;
  size_t correct = 0;
  for (size_t i = 0; i < labels.size(); ++i) correct += (labels[i] == predictions[i]);
  return static_cast<double>(correct) / static_cast<double>(labels.size());
}

double WeightedAccuracy(const std::vector<int>& labels,
                        const std::vector<int>& predictions,
                        const std::vector<double>& weights) {
  OF_CHECK_EQ(labels.size(), predictions.size());
  OF_CHECK_EQ(labels.size(), weights.size());
  if (labels.empty()) return 0.0;
  double acc = 0.0;
  for (size_t i = 0; i < labels.size(); ++i) {
    if (labels[i] == predictions[i]) acc += weights[i];
  }
  return acc / static_cast<double>(labels.size());
}

double RocAuc(const std::vector<int>& labels, const std::vector<double>& scores) {
  OF_CHECK_EQ(labels.size(), scores.size());
  const size_t n = labels.size();
  size_t positives = 0;
  for (int y : labels) positives += (y == 1);
  const size_t negatives = n - positives;
  if (positives == 0 || negatives == 0) return 0.5;

  // Rank-based (Mann-Whitney U) with average ranks for ties.
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&scores](size_t a, size_t b) { return scores[a] < scores[b]; });

  double rank_sum_positive = 0.0;
  size_t i = 0;
  while (i < n) {
    size_t j = i;
    while (j + 1 < n && scores[order[j + 1]] == scores[order[i]]) ++j;
    // Average rank of the tie block [i, j], 1-based ranks.
    const double avg_rank = (static_cast<double>(i + 1) + static_cast<double>(j + 1)) / 2.0;
    for (size_t k = i; k <= j; ++k) {
      if (labels[order[k]] == 1) rank_sum_positive += avg_rank;
    }
    i = j + 1;
  }
  const double pos = static_cast<double>(positives);
  const double neg = static_cast<double>(negatives);
  return (rank_sum_positive - pos * (pos + 1.0) / 2.0) / (pos * neg);
}

}  // namespace omnifair
