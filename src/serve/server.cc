#include "serve/server.h"

#include <algorithm>
#include <map>
#include <thread>
#include <utility>

#include "util/logging.h"
#include "util/telemetry.h"
#include "util/thread_pool.h"

namespace omnifair {

BundleServer::BundleServer(std::shared_ptr<const ModelBundle> bundle,
                           const ServerOptions& options)
    : bundle_(std::move(bundle)), options_(options) {
  OF_CHECK(bundle_ != nullptr);
  model_ = bundle_->MakeModel(std::max(1, options_.num_threads));
}

BundleServer::~BundleServer() {
  // Pool tasks submitted by Submit() capture `this`; block until every
  // admitted request has decremented in_flight_ (its last touch of the
  // server) so no task outlives the members it uses.
  while (in_flight_.load(std::memory_order_acquire) != 0) {
    std::this_thread::yield();
  }
}

Result<PredictResponse> BundleServer::Handle(
    const PredictRequest& request) const {
  const size_t n = request.features.rows();
  if (request.features.cols() != bundle_->meta().num_features) {
    return Status::InvalidArgument(
        "request has " + std::to_string(request.features.cols()) +
        " feature columns but the bundle expects " +
        std::to_string(bundle_->meta().num_features));
  }
  if (!request.group_ids.empty() && request.group_ids.size() != n) {
    return Status::InvalidArgument(
        "group_ids has " + std::to_string(request.group_ids.size()) +
        " entries for a batch of " + std::to_string(n) + " rows");
  }
  OF_SCOPED_LATENCY_US("serve.request_us");
  OF_COUNTER_INC("serve.requests");
  OF_COUNTER_ADD("serve.rows", static_cast<int64_t>(n));
  OF_HISTOGRAM_RECORD("serve.batch_rows", static_cast<double>(n));
  if (options_.testing_handle_hook) options_.testing_handle_hook();

  PredictResponse response;
  response.scores = model_->PredictProba(request.features);
  response.labels.resize(n);
  for (size_t i = 0; i < n; ++i) {
    response.labels[i] = response.scores[i] >= request.threshold ? 1 : 0;
  }

  if (!request.group_ids.empty()) {
    // Aggregate per group id (ordered map: stats come out sorted by id).
    struct Accum {
      long long rows = 0;
      long long positives = 0;
      double score_sum = 0.0;
    };
    std::map<int, Accum> by_group;
    for (size_t i = 0; i < n; ++i) {
      const int g = request.group_ids[i];
      if (g < 0) continue;  // unknown group: scored but not aggregated
      Accum& accum = by_group[g];
      ++accum.rows;
      accum.positives += response.labels[i];
      accum.score_sum += response.scores[i];
    }
    double min_rate = 1.0;
    double max_rate = 0.0;
    for (const auto& [group_id, accum] : by_group) {
      GroupStats stats;
      stats.group_id = group_id;
      stats.rows = accum.rows;
      stats.positive_rate =
          static_cast<double>(accum.positives) / static_cast<double>(accum.rows);
      stats.mean_score = accum.score_sum / static_cast<double>(accum.rows);
      min_rate = std::min(min_rate, stats.positive_rate);
      max_rate = std::max(max_rate, stats.positive_rate);
      response.groups.push_back(stats);
    }
    if (response.groups.size() >= 2) response.max_gap = max_rate - min_rate;
  }
  return response;
}

Result<std::future<Result<PredictResponse>>> BundleServer::Submit(
    PredictRequest request) {
  // Optimistic admit: reserve a slot, shed if that overshot the bound.
  const int admitted = in_flight_.fetch_add(1, std::memory_order_acq_rel) + 1;
  if (admitted > options_.max_in_flight) {
    in_flight_.fetch_sub(1, std::memory_order_acq_rel);
    OF_COUNTER_INC("serve.rejected");
    return Status::Unavailable(
        "server overloaded: " + std::to_string(options_.max_in_flight) +
        " requests already in flight");
  }
  OF_GAUGE_SET("serve.queue_depth", static_cast<double>(admitted));
  return ThreadPool::Global().Submit(
      [this, request = std::move(request)]() -> Result<PredictResponse> {
        Result<PredictResponse> response = Handle(request);
        // The decrement is the task's final access to `this` (the destructor
        // drains on it); the gauge update below only touches the global
        // telemetry registry.
        const int depth =
            in_flight_.fetch_sub(1, std::memory_order_acq_rel) - 1;
        OF_GAUGE_SET("serve.queue_depth", static_cast<double>(depth));
        return response;
      });
}

Result<PredictRequest> MakeRequest(const ModelBundle& bundle,
                                   const Dataset& dataset,
                                   const std::string& group_column,
                                   double threshold) {
  PredictRequest request;
  request.threshold = threshold;
  request.features = bundle.encoder().Transform(dataset);
  if (!group_column.empty()) {
    const Column* column = dataset.FindColumn(group_column);
    if (column == nullptr) {
      return Status::InvalidArgument("group column '" + group_column +
                                     "' not found in dataset");
    }
    if (column->type() != ColumnType::kCategorical) {
      return Status::InvalidArgument("group column '" + group_column +
                                     "' must be categorical");
    }
    request.group_ids = column->codes();
  }
  return request;
}

}  // namespace omnifair
