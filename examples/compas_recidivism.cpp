// COMPAS recidivism case study: the Example 1 scenario of the paper.
//
// The ProPublica debate was about which fairness notion COMPAS should
// satisfy: statistical parity (ProPublica's reading), predictive parity
// (Northpointe's response), or equalized odds (the US Court analysis).
// This example audits an unconstrained model against all three families,
// then retrains under each constraint in turn — same trainer, same data,
// only the declarative specification changes.

#include <cmath>
#include <cstdio>

#include "core/omnifair.h"
#include "data/datasets.h"
#include "data/split.h"
#include "ml/trainer_registry.h"

namespace {

using namespace omnifair;

void AuditAll(const char* title, const Classifier& model,
              const FeatureEncoder& encoder, const Dataset& test,
              const GroupingFunction& groups) {
  std::printf("\n%s\n", title);
  for (const char* metric : {"sp", "fpr", "fnr", "for", "fdr"}) {
    const FairnessSpec spec = MakeSpec(groups, metric, 0.03);
    auto audit = Audit(model, encoder, test, {spec});
    if (!audit.ok()) continue;
    std::printf("  %-4s disparity: %.3f %s\n", metric, audit->max_disparity,
                audit->max_disparity <= 0.03 ? "(within 0.03)" : "");
  }
}

}  // namespace

int main() {
  SyntheticOptions options;
  options.num_rows = 6000;
  const Dataset dataset = MakeCompasDataset(options);
  const TrainValTestSplit split = SplitDefault(dataset, 7);
  const GroupingFunction groups =
      GroupByAttributeValues("race", {"African-American", "Caucasian"});

  auto trainer = MakeTrainer("lr");
  OmniFair omnifair;

  // 1. Unconstrained model: biased along several axes at once.
  {
    const FairnessSpec loose = MakeSpec(groups, "sp", 10.0);
    auto fair = omnifair.Train(split.train, split.val, trainer.get(), {loose});
    std::printf("unconstrained test accuracy: %.1f%%\n",
                100.0 * Audit(*fair->model, fair->encoder, split.test, {loose})
                            ->accuracy);
    AuditAll("unconstrained model:", *fair->model, fair->encoder, split.test,
             groups);
  }

  // 2. Retrain under each notion of fairness from the COMPAS debate.
  struct Scenario {
    const char* name;
    std::vector<const char*> metrics;
  };
  const Scenario scenarios[] = {
      {"statistical parity (ProPublica)", {"sp"}},
      {"equalized odds (US Court): FPR + FNR", {"fpr", "fnr"}},
      {"predictive parity (Northpointe): FOR + FDR", {"for", "fdr"}},
  };
  for (const Scenario& scenario : scenarios) {
    std::vector<FairnessSpec> specs;
    for (const char* metric : scenario.metrics) {
      specs.push_back(MakeSpec(groups, metric, 0.03));
    }
    auto fair = omnifair.Train(split.train, split.val, trainer.get(), specs);
    if (!fair.ok()) {
      std::printf("\n%s: failed (%s)\n", scenario.name,
                  fair.status().ToString().c_str());
      continue;
    }
    auto audit = Audit(*fair->model, fair->encoder, split.test, specs);
    std::printf("\n>> retrained for %s\n", scenario.name);
    std::printf("   satisfied on validation: %s | test accuracy: %.1f%%\n",
                fair->satisfied ? "yes" : "no", 100.0 * audit->accuracy);
    for (size_t j = 0; j < audit->constraint_labels.size(); ++j) {
      std::printf("   %-36s disparity: %.3f\n",
                  audit->constraint_labels[j].c_str(),
                  std::fabs(audit->fairness_parts[j]));
    }
  }

  std::printf(
      "\nNote: satisfying all three notions at once with eps = 0 is\n"
      "impossible for any model when base rates differ (Kleinberg et al.),\n"
      "which is why each scenario is trained separately.\n");
  return 0;
}
