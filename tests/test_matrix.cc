#include "linalg/matrix.h"

#include <limits>
#include <utility>

#include <gtest/gtest.h>

namespace omnifair {
namespace {

TEST(MatrixTest, DefaultEmpty) {
  Matrix m;
  EXPECT_EQ(m.rows(), 0u);
  EXPECT_EQ(m.cols(), 0u);
  EXPECT_TRUE(m.empty());
}

TEST(MatrixTest, FillConstructor) {
  Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  for (size_t r = 0; r < 2; ++r) {
    for (size_t c = 0; c < 3; ++c) EXPECT_DOUBLE_EQ(m(r, c), 1.5);
  }
}

TEST(MatrixTest, InitializerList) {
  Matrix m = {{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 2u);
  EXPECT_DOUBLE_EQ(m(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(m(1, 0), 3.0);
}

TEST(MatrixTest, ElementWrite) {
  Matrix m(2, 2);
  m(1, 1) = 7.0;
  EXPECT_DOUBLE_EQ(m(1, 1), 7.0);
  EXPECT_DOUBLE_EQ(m(0, 0), 0.0);
}

TEST(MatrixTest, RowPointerIsContiguous) {
  Matrix m = {{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}};
  const double* row = m.Row(1);
  EXPECT_DOUBLE_EQ(row[0], 4.0);
  EXPECT_DOUBLE_EQ(row[2], 6.0);
}

TEST(MatrixTest, RowAndColVector) {
  Matrix m = {{1.0, 2.0}, {3.0, 4.0}, {5.0, 6.0}};
  EXPECT_EQ(m.RowVector(1), (std::vector<double>{3.0, 4.0}));
  EXPECT_EQ(m.ColVector(0), (std::vector<double>{1.0, 3.0, 5.0}));
}

TEST(MatrixTest, SelectRows) {
  Matrix m = {{1.0, 2.0}, {3.0, 4.0}, {5.0, 6.0}};
  Matrix s = m.SelectRows({2, 0});
  EXPECT_EQ(s.rows(), 2u);
  EXPECT_DOUBLE_EQ(s(0, 0), 5.0);
  EXPECT_DOUBLE_EQ(s(1, 1), 2.0);
}

TEST(MatrixTest, SelectRowsWithRepeats) {
  Matrix m = {{1.0}, {2.0}};
  Matrix s = m.SelectRows({1, 1, 1});
  EXPECT_EQ(s.rows(), 3u);
  EXPECT_DOUBLE_EQ(s(2, 0), 2.0);
}

TEST(MatrixTest, AppendRowToEmpty) {
  Matrix m;
  m.AppendRow({1.0, 2.0, 3.0});
  m.AppendRow({4.0, 5.0, 6.0});
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_DOUBLE_EQ(m(1, 2), 6.0);
}

TEST(MatrixTest, MatVec) {
  Matrix m = {{1.0, 2.0}, {3.0, 4.0}};
  const std::vector<double> y = m.MatVec({1.0, 1.0});
  ASSERT_EQ(y.size(), 2u);
  EXPECT_DOUBLE_EQ(y[0], 3.0);
  EXPECT_DOUBLE_EQ(y[1], 7.0);
}

TEST(MatrixTest, TransposeMatVec) {
  Matrix m = {{1.0, 2.0}, {3.0, 4.0}};
  const std::vector<double> y = m.TransposeMatVec({1.0, 1.0});
  ASSERT_EQ(y.size(), 2u);
  EXPECT_DOUBLE_EQ(y[0], 4.0);
  EXPECT_DOUBLE_EQ(y[1], 6.0);
}

TEST(MatrixTest, MatVecIntoMatchesMatVec) {
  Matrix m = {{1.0, -2.0, 0.5}, {3.0, 4.0, -1.0}};
  const std::vector<double> x = {2.0, 0.1, -0.4};
  const std::vector<double> expected = m.MatVec(x);
  std::vector<double> y;
  m.MatVecInto(x, &y);
  EXPECT_EQ(y, expected);
  std::vector<double> raw(m.rows(), -99.0);
  m.MatVecInto(x.data(), raw.data());
  EXPECT_EQ(raw, expected);
}

TEST(MatrixTest, TransposeMatVecIntoMatchesTransposeMatVec) {
  Matrix m = {{1.0, -2.0, 0.5}, {3.0, 4.0, -1.0}};
  const std::vector<double> x = {0.7, -1.3};
  const std::vector<double> expected = m.TransposeMatVec(x);
  std::vector<double> y;
  m.TransposeMatVecInto(x, &y);
  ASSERT_EQ(y.size(), expected.size());
  for (size_t i = 0; i < y.size(); ++i) EXPECT_NEAR(y[i], expected[i], 1e-12);
  std::vector<double> raw(m.cols(), 5.0);
  m.TransposeMatVecInto(x.data(), raw.data());
  for (size_t i = 0; i < raw.size(); ++i) EXPECT_NEAR(raw[i], expected[i], 1e-12);
}

TEST(MatrixFloat32Test, FactoryAndElementAccess) {
  Matrix m = Matrix::Float32(2, 3);
  EXPECT_TRUE(m.is_float32());
  EXPECT_EQ(m.storage(), Matrix::Storage::kFloat32);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  m.Set(1, 2, 6.5);  // exactly representable in float
  // Reads go through the const operator(), which widens either storage;
  // the mutable double& overload is double-only by design.
  const Matrix& cm = m;
  EXPECT_DOUBLE_EQ(cm(1, 2), 6.5);
  EXPECT_DOUBLE_EQ(cm(0, 0), 0.0);
  EXPECT_FLOAT_EQ(m.RowF(1)[2], 6.5f);
}

TEST(MatrixFloat32Test, SetNarrowsOncePerElement) {
  Matrix m = Matrix::Float32(1, 1);
  const double value = 0.1;  // not representable in float
  m.Set(0, 0, value);
  EXPECT_DOUBLE_EQ(std::as_const(m)(0, 0),
                   static_cast<double>(static_cast<float>(value)));
}

TEST(MatrixFloat32Test, RowAndColVectorWiden) {
  Matrix m = Matrix::Float32(2, 2);
  m.Set(0, 0, 1.0);
  m.Set(0, 1, 2.0);
  m.Set(1, 0, 3.0);
  m.Set(1, 1, 4.0);
  EXPECT_EQ(m.RowVector(1), (std::vector<double>{3.0, 4.0}));
  EXPECT_EQ(m.ColVector(0), (std::vector<double>{1.0, 3.0}));
}

TEST(MatrixFloat32Test, SelectRowsAndAppendRowPreserveStorage) {
  Matrix m = Matrix::Float32(2, 2);
  m.Set(0, 0, 1.0);
  m.Set(1, 0, 2.0);
  Matrix s = m.SelectRows({1, 0});
  EXPECT_TRUE(s.is_float32());
  EXPECT_DOUBLE_EQ(std::as_const(s)(0, 0), 2.0);
  s.AppendRow({7.0, 8.0});
  EXPECT_EQ(s.rows(), 3u);
  EXPECT_DOUBLE_EQ(std::as_const(s)(2, 1), 8.0);
}

TEST(MatrixFloat32Test, ConversionsRoundTrip) {
  Matrix m = {{1.25, -2.5}, {3.0, 0.0}};  // float-exact values
  Matrix f = m.ToFloat32();
  EXPECT_TRUE(f.is_float32());
  Matrix back = f.ToFloat64();
  EXPECT_FALSE(back.is_float32());
  for (size_t r = 0; r < 2; ++r) {
    for (size_t c = 0; c < 2; ++c) EXPECT_DOUBLE_EQ(back(r, c), m(r, c));
  }
}

TEST(MatrixFloat32Test, RawBytesReflectStorageWidth) {
  Matrix d(4, 3);
  EXPECT_EQ(d.RawBytes(), 4u * 3u * sizeof(double));
  Matrix f = Matrix::Float32(4, 3);
  EXPECT_EQ(f.RawBytes(), 4u * 3u * sizeof(float));
  EXPECT_NE(f.RawData(), nullptr);
}

TEST(MatrixFloat32Test, MatVecMatchesDoubleWithinFloatTolerance) {
  Matrix d = {{1.0, -2.0, 0.5}, {3.0, 4.0, -1.0}, {0.25, 0.75, 2.0}};
  Matrix f = d.ToFloat32();
  const std::vector<double> x = {0.7, -1.3, 0.2};
  const std::vector<double> expected = d.MatVec(x);
  std::vector<double> y;
  f.MatVecInto(x, &y);
  ASSERT_EQ(y.size(), expected.size());
  // These elements are float-exact, so the products agree exactly.
  for (size_t i = 0; i < y.size(); ++i) EXPECT_NEAR(y[i], expected[i], 1e-12);
  std::vector<double> t0, t1;
  d.TransposeMatVecInto({1.0, 0.5, -0.25}, &t0);
  f.TransposeMatVecInto({1.0, 0.5, -0.25}, &t1);
  for (size_t i = 0; i < t0.size(); ++i) EXPECT_NEAR(t1[i], t0[i], 1e-12);
}

TEST(MatrixDeathTest, WrongStorageAccessorDies) {
  Matrix f = Matrix::Float32(1, 1);
  EXPECT_DEATH({ f.Row(0); }, "Row");
  EXPECT_DEATH({ f.data(); }, "data");
  Matrix d(1, 1);
  EXPECT_DEATH({ d.RowF(0); }, "RowF");
}

TEST(MatrixDeathTest, ShapeOverflowDiesInsteadOfWrapping) {
  const size_t huge = (std::numeric_limits<size_t>::max() / 2) + 2;
  EXPECT_DEATH({ Matrix m(huge, 2); }, "overflows");
}

TEST(MatrixTest, MatVecTransposeConsistency) {
  // x^T (A y) == (A^T x)^T y for random-ish fixed values.
  Matrix a = {{1.0, -2.0, 0.5}, {3.0, 4.0, -1.0}};
  const std::vector<double> x = {0.7, -1.3};
  const std::vector<double> y = {2.0, 0.1, -0.4};
  const std::vector<double> ay = a.MatVec(y);
  const std::vector<double> atx = a.TransposeMatVec(x);
  double lhs = 0.0;
  for (size_t i = 0; i < x.size(); ++i) lhs += x[i] * ay[i];
  double rhs = 0.0;
  for (size_t i = 0; i < y.size(); ++i) rhs += atx[i] * y[i];
  EXPECT_NEAR(lhs, rhs, 1e-12);
}

}  // namespace
}  // namespace omnifair
