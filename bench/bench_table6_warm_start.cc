// Reproduces Table 6: the warm-start optimization for LR. Algorithm 1
// retrains across nearby lambda values; initializing each fit from the
// previous solution cuts total gradient-descent work. The paper reports
// 1.2x - 3.4x wall-clock speedups across the four datasets.

#include "bench/bench_common.h"

#include "ml/logistic_regression.h"

namespace omnifair {
namespace bench {
namespace {

void Run(BenchReporter& reporter) {
  const int seeds = EnvSeeds(3);
  reporter.Config("seeds", seeds);
  reporter.Config("metric", "sp");
  reporter.Config("epsilon", 0.03);
  PrintHeader("Table 6: warm-start speedup under LR (SP epsilon = 0.03)");
  std::printf("%-10s %16s %16s %10s %14s\n", "dataset", "no warm start(s)",
              "warm start(s)", "speedup", "iter speedup");

  for (const std::string& dataset : {"compas", "adult", "lsac", "bank"}) {
    double cold_seconds = 0.0;
    double warm_seconds = 0.0;
    long long cold_iterations = 0;
    long long warm_iterations = 0;
    for (int s = 0; s < seeds; ++s) {
      const Dataset data = MakeBenchDataset(dataset, 300 + s);
      const TrainValTestSplit split = SplitDefault(data, 400 + s);
      const FairnessSpec spec = MakeSpec(MainGroups(dataset), "sp", 0.03);

      for (const bool warm : {false, true}) {
        LogisticRegressionTrainer trainer;
        OmniFairOptions options;
        options.warm_start = warm;
        OmniFair omnifair(options);
        Stopwatch stopwatch;
        auto fair = omnifair.Train(split.train, split.val, &trainer, {spec});
        const double elapsed = stopwatch.ElapsedSeconds();
        if (!fair.ok()) continue;
        // One representative trajectory per dataset: the warm-start run of
        // the first seed (shows lambda progression alongside iteration cost).
        if (warm && s == 0 && !fair->tune_report.empty()) {
          reporter.AddTrajectory(dataset + " warm", fair->tune_report);
        }
        if (warm) {
          warm_seconds += elapsed;
          warm_iterations += trainer.total_iterations();
        } else {
          cold_seconds += elapsed;
          cold_iterations += trainer.total_iterations();
        }
      }
    }
    std::printf("%-10s %16.2f %16.2f %9.1fx %13.1fx\n", dataset.c_str(),
                cold_seconds / seeds, warm_seconds / seeds,
                warm_seconds > 0 ? cold_seconds / warm_seconds : 0.0,
                warm_iterations > 0
                    ? static_cast<double>(cold_iterations) /
                          static_cast<double>(warm_iterations)
                    : 0.0);
    reporter.AddRow("warm_start")
        .Label("dataset", dataset)
        .Value("cold_seconds", cold_seconds / seeds)
        .Value("warm_seconds", warm_seconds / seeds)
        .Value("speedup",
               warm_seconds > 0 ? cold_seconds / warm_seconds : 0.0)
        .Value("cold_iterations", static_cast<double>(cold_iterations))
        .Value("warm_iterations", static_cast<double>(warm_iterations));
  }
}

}  // namespace
}  // namespace bench
}  // namespace omnifair

int main() {
  omnifair::InitTelemetryFromEnv();
  omnifair::bench::BenchReporter reporter(
      "table6_warm_start",
      "Table 6: warm-start speedup under LR (SP epsilon = 0.03)");
  omnifair::bench::Run(reporter);
  return omnifair::bench::FinishBench(reporter);
}
