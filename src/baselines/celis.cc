#include "baselines/celis.h"

#include <algorithm>
#include <cmath>

#include "core/grid_search.h"
#include "core/problem.h"
#include "util/stopwatch.h"

namespace omnifair {

CelisMeta::CelisMeta(Options options) : options_(options) {}

bool CelisMeta::SupportsMetric(const FairnessMetric& metric) const {
  const std::string name = metric.Name();
  return name == "sp" || name == "mr" || name == "fpr" || name == "fnr" ||
         name == "fdr" || name == "for";
}

bool CelisMeta::SupportsTrainer(const Trainer& trainer) const {
  return trainer.Name() == "logistic_regression";
}

Result<BaselineResult> CelisMeta::Train(const Dataset& train, const Dataset& val,
                                        Trainer* trainer, const FairnessSpec& spec) {
  if (!SupportsMetric(*spec.metric)) {
    return Status::Unsupported("Celis does not support metric " + spec.metric->Name());
  }
  if (trainer == nullptr || !SupportsTrainer(*trainer)) {
    return Status::Unsupported("Celis meta-algorithm is tied to LR");
  }
  Stopwatch stopwatch;
  Result<std::unique_ptr<FairnessProblem>> problem =
      FairnessProblem::Create(train, val, {spec}, trainer);
  if (!problem.ok()) return problem.status();

  GridSearchOptions grid_options;
  grid_options.max_lambda = options_.max_multiplier;
  grid_options.points_per_dim = options_.grid_points;
  const size_t k = (*problem)->NumConstraints();
  if (k > 1) {
    // Multi-group adaptation (paper Figure 9): the total retraining budget
    // stays fixed, so the per-dimension resolution collapses — which is
    // exactly why the method fails to reduce SP_max across three groups.
    grid_options.points_per_dim = std::max(
        3, static_cast<int>(std::pow(static_cast<double>(options_.grid_points),
                                     1.0 / static_cast<double>(k))));
  }
  const GridSearchTuner grid(grid_options);
  MultiTuneResult tuned = grid.Run(**problem);

  BaselineResult result;
  result.model = std::move(tuned.model);
  result.encoder = (*problem)->encoder();
  result.satisfied = tuned.satisfied;
  result.val_accuracy = tuned.val_accuracy;
  result.val_fairness_parts = std::move(tuned.val_fairness_parts);
  result.models_trained = tuned.models_trained;
  result.train_seconds = stopwatch.ElapsedSeconds();
  return result;
}

}  // namespace omnifair
