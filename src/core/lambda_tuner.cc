#include "core/lambda_tuner.h"

#include <cmath>
#include <utility>

#include "core/run_profile.h"
#include "ml/serialization.h"
#include "util/logging.h"
#include "util/telemetry.h"
#include "util/thread_pool.h"
#include "util/trace.h"

namespace omnifair {
namespace {

/// Bookkeeping for the best satisfying model seen during a tune.
struct BestCandidate {
  std::unique_ptr<Classifier> model;
  double lambda = 0.0;
  double val_accuracy = -1.0;
  std::vector<double> val_fairness_parts;

  void Consider(std::unique_ptr<Classifier> candidate, double candidate_lambda,
                double accuracy, std::vector<double> fairness_parts) {
    if (model == nullptr || accuracy > val_accuracy) {
      model = std::move(candidate);
      lambda = candidate_lambda;
      val_accuracy = accuracy;
      val_fairness_parts = std::move(fairness_parts);
    }
  }
};

}  // namespace

LambdaTuner::LambdaTuner(TuneOptions options) : options_(options) {}

TuneResult LambdaTuner::TuneSingle(FairnessProblem& problem) const {
  OF_CHECK_EQ(problem.NumConstraints(), 1u)
      << "TuneSingle expects a single-constraint problem; use HillClimber";
  Result<std::unique_ptr<CheckpointManager>> checkpoint =
      AttachCheckpoint(problem, options_.checkpoint, "lambda_tuner");
  if (!checkpoint.ok()) {
    TuneResult result;
    result.status = checkpoint.status();
    return result;
  }
  std::vector<double> lambdas = {0.0};
  TuneResult result =
      TuneCoordinate(problem, 0, &lambdas, /*initial_model=*/nullptr);
  FinishCheckpoint(problem, checkpoint->get());
  return result;
}

TuneResult LambdaTuner::TuneCoordinate(FairnessProblem& problem, size_t j,
                                       std::vector<double>* lambdas,
                                       const Classifier* initial_model) const {
  OF_CHECK(lambdas != nullptr);
  OF_CHECK_EQ(lambdas->size(), problem.NumConstraints());
  OF_CHECK_LT(j, lambdas->size());
  OF_TRACE_SPAN("tune_coordinate");
  OF_COUNTER_INC("tuner.coordinate_tunes");
  const double epsilon = problem.Epsilon(j);
  const int models_before = problem.models_trained();
  const bool prediction_dependent = problem.DependsOnPredictions();

  // Trajectory annotation: stamps the most recent TunePoint with validation
  // metrics. One extra FairnessParts sweep per fit, paid only when recording.
  auto annotate = [&](const std::vector<int>& preds) {
    if (!problem.RecordingTuneReport()) return;
    problem.AnnotateLastTunePoint(problem.ValAccuracy(preds),
                                  problem.val_evaluator().FairnessParts(preds));
  };

  // Search-interruption state: `aborted` when the trainer failed behind the
  // exception firewall, `expired` when the TrainBudget ran out or a
  // (simulated) crash fired after a checkpoint write. Either way the tune
  // stops early and returns the best model reached so far, with
  // `search_status` carrying the cause.
  Status search_status;
  bool aborted = false;
  bool expired = false;
  auto fit_failed = [&](const std::unique_ptr<Classifier>& model) {
    if (model != nullptr) return false;
    aborted = true;
    search_status = problem.last_fit_status();
    return true;
  };
  auto budget_expired = [&]() {
    if (expired) return true;
    if (!problem.Interrupted()) return false;
    expired = true;
    search_status = problem.InterruptStatus();
    return true;
  };

  // Stage 1 (Algorithm 1 lines 1-3): model at the current Lambda. When
  // called from TuneSingle this is the unconstrained lambda=0 model.
  std::unique_ptr<Classifier> theta0;
  const Classifier* theta0_ptr = initial_model;
  if (theta0_ptr == nullptr) {
    problem.SetTuneStage("initial");
    theta0 = problem.FitWithLambdas(*lambdas, /*weight_model=*/nullptr);
    if (fit_failed(theta0)) {
      TuneResult result;
      result.status = search_status;
      result.lambda = (*lambdas)[j];
      result.models_trained = problem.models_trained() - models_before;
      return result;
    }
    theta0_ptr = theta0.get();
  }
  std::vector<int> val_preds = problem.PredictVal(*theta0_ptr);
  if (theta0 != nullptr) annotate(val_preds);
  const double fp0 = problem.val_evaluator().FairnessPart(j, val_preds);

  auto finish = [&](BestCandidate best, bool satisfied) {
    TuneResult result;
    result.status = search_status;
    result.satisfied = satisfied;
    result.model = std::move(best.model);
    result.lambda = best.lambda;
    result.val_accuracy = best.val_accuracy;
    result.val_fairness_parts = std::move(best.val_fairness_parts);
    result.models_trained = problem.models_trained() - models_before;
    (*lambdas)[j] = result.lambda;
    return result;
  };

  if (std::fabs(fp0) <= epsilon) {
    // Already satisfied at the current lambda: by Lemma 2 this has maximum
    // accuracy among satisfying settings along this coordinate.
    BestCandidate best;
    std::unique_ptr<Classifier> model = std::move(theta0);
    if (model == nullptr) {
      // Caller owns initial_model; refit so the result owns its model.
      problem.SetTuneStage("initial");
      model = problem.FitWithLambdas(*lambdas, theta0_ptr);
      if (fit_failed(model)) return finish(std::move(best), /*satisfied=*/false);
      val_preds = problem.PredictVal(*model);
      annotate(val_preds);
    }
    best.Consider(std::move(model), (*lambdas)[j], problem.ValAccuracy(val_preds),
                  problem.val_evaluator().FairnessParts(val_preds));
    return finish(std::move(best), /*satisfied=*/true);
  }

  // Stage 2 (lines 4-5): the violation has a sign; "resolved" means FP
  // entered the feasible band or crossed to the other side of it (possible
  // with discrete model jumps). This crossing-based predicate is equivalent
  // to the paper's sign-normalized FP >= -epsilon test under monotonicity,
  // and stays correct when the linear-search approximation for
  // prediction-parameterized metrics reverses the effective direction.
  auto resolved = [&](double fp) {
    if (std::fabs(fp) <= epsilon) return true;
    return fp0 > 0.0 ? fp < 0.0 : fp > 0.0;
  };
  // Lemma 2: FP increases with lambda, so a violated FP < -epsilon calls
  // for larger lambda and vice versa.
  const double lemma_direction = fp0 > 0.0 ? -1.0 : 1.0;
  const double base = (*lambdas)[j];

  BestCandidate best;
  auto evaluate_and_consider = [&](std::unique_ptr<Classifier> model,
                                   double lambda_value, double* fp_out) {
    std::vector<int> preds = problem.PredictVal(*model);
    annotate(preds);
    const double fp = problem.val_evaluator().FairnessPart(j, preds);
    *fp_out = fp;
    if (std::fabs(fp) <= epsilon) {
      best.Consider(std::move(model), lambda_value, problem.ValAccuracy(preds),
                    problem.val_evaluator().FairnessParts(preds));
      return std::unique_ptr<Classifier>();  // consumed
    }
    return model;  // not a candidate; hand back for reuse
  };

  double direction = lemma_direction;
  double magnitude_lo = 0.0;  // violating side of the bracket
  double magnitude_hi = 0.0;  // resolved side of the bracket
  bool bounded = false;
  // theta_l: model at the violating lower bound; its train-split predictions
  // approximate the weights for FOR/FDR (paper Algorithm 1 line 16).
  std::unique_ptr<Classifier> theta_l;
  const Classifier* weight_model = theta0_ptr;

  // Bounding-stage fits may run on a training subsample (future-work
  // scalability extension); subsampled models only steer the bracket and
  // are never returned as candidates.
  const bool subsampled_bounding = options_.bounding_subsample < 1.0;
  auto bounding_fit = [&](const std::vector<double>& lambdas_value,
                          const Classifier* weight_model_value) {
    return problem.FitWithLambdasSubsampled(lambdas_value, weight_model_value,
                                            options_.bounding_subsample,
                                            options_.subsample_seed);
  };

  std::vector<double> trial = *lambdas;
  if (!prediction_dependent) {
    // Stage 2.1 (lines 21-27): exponential search. Weights are exact given
    // lambda, so Lemma 2's direction is reliable.
    problem.SetTuneStage("exponential");
    double magnitude = options_.initial_step;
    for (int doubling = 0; doubling < options_.max_doublings; ++doubling) {
      if (budget_expired()) break;
      OF_TRACE_SPAN("lambda_step");
      OF_COUNTER_INC("tuner.lambda_steps");
      trial[j] = base + direction * magnitude;
      std::unique_ptr<Classifier> theta_u = bounding_fit(trial, nullptr);
      if (fit_failed(theta_u)) break;
      double fp = 0.0;
      if (subsampled_bounding) {
        const std::vector<int> preds = problem.PredictVal(*theta_u);
        annotate(preds);
        fp = problem.val_evaluator().FairnessPart(j, preds);
      } else {
        theta_u = evaluate_and_consider(std::move(theta_u), trial[j], &fp);
      }
      if (resolved(fp)) {
        magnitude_hi = magnitude;
        bounded = true;
        break;
      }
      magnitude_lo = magnitude;
      magnitude = 2.0 * magnitude;
    }
  } else {
    // Stage 2.2 (lines 29-37): linear search with incremental weight
    // re-estimation from the previous model. Because the frozen-coefficient
    // approximation can reverse the metric's response direction (the
    // denominator |h=c| reacts to lambda too), we walk BOTH directions in
    // lock-step and keep whichever side resolves first.
    struct Side {
      double sign;
      double magnitude = 0.0;
      std::unique_ptr<Classifier> theta_l;  // last violating model
      const Classifier* weight_model;
    };
    Side sides[2] = {{lemma_direction, 0.0, nullptr, theta0_ptr},
                     {-lemma_direction, 0.0, nullptr, theta0_ptr}};
    // Concurrent probes need per-worker trainer clones and full-split fits
    // (the subsample cache is single-threaded); otherwise stay serial.
    std::unique_ptr<Trainer> probe_clones[2];
    if (options_.num_threads > 1 && !subsampled_bounding) {
      probe_clones[0] = problem.trainer()->Clone();
      probe_clones[1] = problem.trainer()->Clone();
    }
    const bool parallel_probes =
        probe_clones[0] != nullptr && probe_clones[1] != nullptr;
    problem.SetTuneStage("linear");
    for (int step = 0; step < options_.max_linear_steps && !bounded; ++step) {
      if (budget_expired()) break;
      OF_TRACE_SPAN("lambda_step");
      OF_COUNTER_INC("tuner.lambda_steps");
      if (parallel_probes) {
        // Fit both directions concurrently, then replay the serial
        // resolution logic strictly in side order so the search takes the
        // same bracket the serial walk would.
        struct Probe {
          std::vector<double> trial;
          std::vector<int> weight_preds;
          double next_magnitude = 0.0;
          bool replayed = false;
          bool replay_failed = false;
          FairnessProblem::ParallelFitOutcome outcome;
        };
        Probe probes[2];
        for (int s = 0; s < 2; ++s) {
          probes[s].next_magnitude = sides[s].magnitude + options_.delta;
          probes[s].trial = trial;
          probes[s].trial[j] = base + sides[s].sign * probes[s].next_magnitude;
        }
        // On resume, checkpointed steps come from the log in side order
        // (the log holds whole pairs: MaybeWrite only runs between steps).
        // Live sides fit concurrently on the clones.
        CheckpointManager* cp = problem.checkpoint();
        std::vector<size_t> live;
        for (size_t s = 0; s < 2; ++s) {
          if (cp != nullptr && cp->HasPendingReplay()) {
            probes[s].replayed = true;
            probes[s].outcome =
                problem.ReplayFitOn(probes[s].trial, &probes[s].replay_failed);
          } else {
            probes[s].weight_preds =
                problem.PredictTrain(*sides[s].weight_model);
            live.push_back(s);
          }
        }
        auto live_fit = [&](size_t s) {
          probes[s].outcome = problem.FitWithLambdasOn(
              *probe_clones[s], probes[s].trial, &probes[s].weight_preds);
        };
        if (live.size() == 2) {
          ThreadPool::Global().ParallelFor(2, live_fit, 2);
        } else {
          for (size_t s : live) live_fit(s);
        }
        for (int s = 0; s < 2; ++s) {
          Side& side = sides[s];
          Probe& probe = probes[s];
          if (probe.replay_failed) {
            // Broken replay (diverged options / damaged blob): no fit
            // happened, so no TunePoint — stop with the typed cause.
            aborted = true;
            search_status = probe.outcome.status;
            continue;
          }
          const bool fit_ok = probe.outcome.model != nullptr;
          problem.AppendTunePoint(probe.trial, fit_ok, probe.outcome.seconds);
          if (cp != nullptr && !probe.replayed) {
            RunStageTimer checkpoint_timer(problem.profiler(),
                                           RunStage::kCheckpoint);
            std::vector<uint8_t> blob;
            if (fit_ok) {
              Result<std::vector<uint8_t>> serialized =
                  SerializeModelBinary(*probe.outcome.model);
              if (serialized.ok()) blob = std::move(*serialized);
            }
            cp->RecordFitBlob(probe.trial, fit_ok, probe.outcome.status,
                              probe.outcome.seconds, std::move(blob));
          }
          // Once this step aborted or resolved, the remaining side's fit is
          // already paid — record it, but keep the search state untouched.
          if (aborted || bounded) continue;
          if (!fit_ok) {
            aborted = true;
            search_status = probe.outcome.status;
            continue;
          }
          double fp = 0.0;
          std::unique_ptr<Classifier> kept = evaluate_and_consider(
              std::move(probe.outcome.model), probe.trial[j], &fp);
          if (resolved(fp)) {
            direction = side.sign;
            magnitude_lo = side.magnitude;
            magnitude_hi = probe.next_magnitude;
            theta_l = std::move(side.theta_l);
            weight_model = theta_l != nullptr ? theta_l.get() : theta0_ptr;
            bounded = true;
            continue;
          }
          side.magnitude = probe.next_magnitude;
          if (kept != nullptr) {
            side.theta_l = std::move(kept);
            side.weight_model = side.theta_l.get();
          }
        }
        if (cp != nullptr) {
          RunStageTimer checkpoint_timer(problem.profiler(),
                                         RunStage::kCheckpoint);
          cp->MaybeWrite();
        }
        if (aborted) break;
        continue;
      }
      for (Side& side : sides) {
        const double next_magnitude = side.magnitude + options_.delta;
        trial[j] = base + side.sign * next_magnitude;
        std::unique_ptr<Classifier> theta_u = bounding_fit(trial, side.weight_model);
        if (fit_failed(theta_u)) break;
        double fp = 0.0;
        std::unique_ptr<Classifier> kept;
        if (subsampled_bounding) {
          const std::vector<int> preds = problem.PredictVal(*theta_u);
          annotate(preds);
          fp = problem.val_evaluator().FairnessPart(j, preds);
          kept = std::move(theta_u);
        } else {
          kept = evaluate_and_consider(std::move(theta_u), trial[j], &fp);
        }
        if (resolved(fp)) {
          direction = side.sign;
          magnitude_lo = side.magnitude;
          magnitude_hi = next_magnitude;
          theta_l = std::move(side.theta_l);
          weight_model = theta_l != nullptr ? theta_l.get() : theta0_ptr;
          bounded = true;
          break;
        }
        side.magnitude = next_magnitude;
        if (kept != nullptr) {
          side.theta_l = std::move(kept);
          side.weight_model = side.theta_l.get();
        }
      }
      if (aborted) break;
    }
  }

  // Fills `best` with a usable model when the search ends without an in-band
  // candidate. The owned base-lambda model is reused when it answers the
  // request (no extra fit); otherwise one mandatory fallback fit runs — the
  // single fit exempt from the budget — unless the trainer itself is failing,
  // in which case the base model is the best we can do.
  auto use_theta0 = [&](BestCandidate* target) {
    // val_preds still holds theta0's predictions.
    target->model = std::move(theta0);
    target->lambda = base;
    target->val_accuracy = problem.ValAccuracy(val_preds);
    target->val_fairness_parts = problem.val_evaluator().FairnessParts(val_preds);
  };
  auto ensure_model = [&](double lambda_value) {
    if (best.model != nullptr) return;
    if (theta0 != nullptr && lambda_value == base) {
      use_theta0(&best);
      return;
    }
    if (!aborted) {
      trial[j] = lambda_value;
      problem.SetTuneStage("fallback");
      std::unique_ptr<Classifier> fallback =
          problem.FitWithLambdas(trial, weight_model);
      if (!fit_failed(fallback)) {
        std::vector<int> preds = problem.PredictVal(*fallback);
        annotate(preds);
        best.model = std::move(fallback);
        best.lambda = lambda_value;
        best.val_accuracy = problem.ValAccuracy(preds);
        best.val_fairness_parts = problem.val_evaluator().FairnessParts(preds);
        return;
      }
    }
    if (theta0 != nullptr) use_theta0(&best);
  };

  if (aborted || expired) {
    // Trainer failure or budget expiry during bracketing: return the best
    // in-band model seen, else a model at the starting lambda.
    const bool satisfied = best.model != nullptr;
    ensure_model(base);
    return finish(std::move(best), satisfied);
  }

  if (!bounded) {
    // No lambda within budget resolves the constraint: infeasible (NA(1)).
    ensure_model(base);
    return finish(std::move(best), /*satisfied=*/false);
  }

  // Stage 3 (lines 11-19): binary search down to tau. The smallest
  // satisfying magnitude has the least accuracy impact (Lemma 2, Eq. 16),
  // and BestCandidate keeps the satisfying model with the highest
  // validation accuracy seen anywhere in the search.
  problem.SetTuneStage("binary");
  while (magnitude_hi - magnitude_lo >= options_.tau) {
    if (budget_expired()) break;
    OF_TRACE_SPAN("lambda_step");
    OF_COUNTER_INC("tuner.lambda_steps");
    const double magnitude_mid = 0.5 * (magnitude_lo + magnitude_hi);
    trial[j] = base + direction * magnitude_mid;
    std::unique_ptr<Classifier> theta_m = problem.FitWithLambdas(trial, weight_model);
    if (fit_failed(theta_m)) break;
    double fp = 0.0;
    std::unique_ptr<Classifier> kept =
        evaluate_and_consider(std::move(theta_m), trial[j], &fp);
    if (resolved(fp)) {
      magnitude_hi = magnitude_mid;
    } else {
      magnitude_lo = magnitude_mid;
      if (prediction_dependent && kept != nullptr) {
        theta_l = std::move(kept);
        weight_model = theta_l.get();
      }
    }
  }

  const bool satisfied = best.model != nullptr;
  if (!satisfied) {
    // The band was crossed without landing inside it (discrete model jumps
    // can overshoot |FP| <= epsilon entirely). Report the resolved-side
    // endpoint as best effort.
    ensure_model(base + direction * magnitude_hi);
  }
  return finish(std::move(best), satisfied);
}

}  // namespace omnifair
