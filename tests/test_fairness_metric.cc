#include "core/fairness_metric.h"

#include <cmath>
#include <tuple>

#include <gtest/gtest.h>

#include "ml/metrics.h"
#include "tests/testing_fairness.h"
#include "util/random.h"

namespace omnifair {
namespace {

using testing_fairness::MakeBiasedDataset;

/// Direct (confusion-count) computation of each named metric on a group.
double DirectMetric(const std::string& name, const Dataset& d,
                    const std::vector<size_t>& group,
                    const std::vector<int>& predictions) {
  const ConfusionCounts counts = CountConfusion(d.labels(), predictions, group);
  if (name == "sp") return counts.PositivePredictionRate();
  if (name == "mr") return counts.Accuracy();
  if (name == "fpr") return counts.FalsePositiveRate();
  if (name == "fnr") return counts.FalseNegativeRate();
  if (name == "for") return counts.FalseOmissionRate();
  if (name == "fdr") return counts.FalseDiscoveryRate();
  ADD_FAILURE() << "unknown metric " << name;
  return 0.0;
}

/// THE core property of Definition 3: the coefficient identity
/// f(h,g) = sum_i c_i 1(h(x_i)=y_i) + c0 must reproduce the probabilistic
/// definition of every metric, for arbitrary data and predictions.
class CoefficientIdentityTest
    : public ::testing::TestWithParam<std::tuple<std::string, uint64_t>> {};

TEST_P(CoefficientIdentityTest, EvaluateMatchesDirectDefinition) {
  const auto& [name, seed] = GetParam();
  const Dataset d = MakeBiasedDataset(300, 0.6, 0.3, seed);
  Rng rng(seed * 977 + 3);
  std::vector<int> predictions(d.NumRows());
  for (int& p : predictions) p = rng.NextBernoulli(0.45) ? 1 : 0;

  const auto metric = MakeMetricByName(name);
  // Group = all members of "a", and also a scattered subset.
  std::vector<size_t> group_a;
  std::vector<size_t> scattered;
  for (size_t i = 0; i < d.NumRows(); ++i) {
    if (d.ColumnByName("grp").CategoryOf(i) == "a") group_a.push_back(i);
    if (i % 3 == 0) scattered.push_back(i);
  }
  for (const auto& group : {group_a, scattered}) {
    const double via_coefficients = metric->Evaluate(d, group, predictions);
    const double direct = DirectMetric(name, d, group, predictions);
    EXPECT_NEAR(via_coefficients, direct, 1e-10)
        << "metric " << name << " group size " << group.size();
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllMetricsBySeeds, CoefficientIdentityTest,
    ::testing::Combine(::testing::Values("sp", "mr", "fpr", "fnr", "for", "fdr"),
                       ::testing::Values(1, 2, 3, 4, 5)));

TEST(FairnessMetricTest, SpCoefficientsMatchTable2) {
  const Dataset d = MakeBiasedDataset(100, 0.5, 0.5, 42);
  std::vector<size_t> group;
  for (size_t i = 0; i < 50; ++i) group.push_back(i);
  const auto metric = MakeMetric(MetricKind::kStatisticalParity);
  const MetricCoefficients coef = metric->Coefficients(d, group, nullptr);
  size_t negatives = 0;
  for (size_t k = 0; k < group.size(); ++k) {
    if (d.Label(group[k]) == 1) {
      EXPECT_NEAR(coef.c[k], 1.0 / 50.0, 1e-12);
    } else {
      EXPECT_NEAR(coef.c[k], -1.0 / 50.0, 1e-12);
      ++negatives;
    }
  }
  EXPECT_NEAR(coef.c0, static_cast<double>(negatives) / 50.0, 1e-12);
}

TEST(FairnessMetricTest, MrCoefficientsUniform) {
  const Dataset d = MakeBiasedDataset(60, 0.5, 0.5, 43);
  std::vector<size_t> group = {0, 5, 10, 20};
  const auto metric = MakeMetric(MetricKind::kMisclassificationRate);
  const MetricCoefficients coef = metric->Coefficients(d, group, nullptr);
  for (double c : coef.c) EXPECT_NEAR(c, 0.25, 1e-12);
  EXPECT_NEAR(coef.c0, 0.0, 1e-12);
}

TEST(FairnessMetricTest, PredictionDependenceFlags) {
  EXPECT_FALSE(MakeMetricByName("sp")->DependsOnPredictions());
  EXPECT_FALSE(MakeMetricByName("mr")->DependsOnPredictions());
  EXPECT_FALSE(MakeMetricByName("fpr")->DependsOnPredictions());
  EXPECT_FALSE(MakeMetricByName("fnr")->DependsOnPredictions());
  EXPECT_TRUE(MakeMetricByName("for")->DependsOnPredictions());
  EXPECT_TRUE(MakeMetricByName("fdr")->DependsOnPredictions());
}

TEST(FairnessMetricTest, Names) {
  EXPECT_EQ(MakeMetricByName("sp")->Name(), "sp");
  EXPECT_EQ(MakeMetricByName("fdr")->Name(), "fdr");
}

TEST(FairnessMetricTest, AecMatchesCostDefinition) {
  const Dataset d = MakeBiasedDataset(200, 0.5, 0.4, 44);
  Rng rng(99);
  std::vector<int> predictions(d.NumRows());
  for (int& p : predictions) p = rng.NextBernoulli(0.5) ? 1 : 0;
  std::vector<size_t> group;
  for (size_t i = 0; i < d.NumRows(); i += 2) group.push_back(i);

  const double cost_fp = 2.0;
  const double cost_fn = 5.0;
  AverageErrorCostMetric metric(cost_fp, cost_fn);
  const double via_coefficients = metric.Evaluate(d, group, predictions);

  const ConfusionCounts counts = CountConfusion(d.labels(), predictions, group);
  const double direct =
      (cost_fp * static_cast<double>(counts.fp) +
       cost_fn * static_cast<double>(counts.fn)) /
      static_cast<double>(group.size());
  EXPECT_NEAR(via_coefficients, direct, 1e-10);
  EXPECT_FALSE(metric.DependsOnPredictions());
  EXPECT_EQ(metric.Name(), "aec");
}

TEST(FairnessMetricTest, LambdaMetricDelegates) {
  const Dataset d = MakeBiasedDataset(50, 0.5, 0.5, 45);
  // A custom metric: fraction correct, scaled by 2 (just to be custom).
  LambdaMetric metric(
      "double_acc",
      [](const Dataset&, const std::vector<size_t>& group,
         const std::vector<int>*) {
        MetricCoefficients coef;
        coef.c.assign(group.size(), 2.0 / static_cast<double>(group.size()));
        return coef;
      },
      /*depends_on_predictions=*/false);
  std::vector<size_t> group = {0, 1, 2, 3};
  std::vector<int> predictions(d.NumRows(), 1);
  const double value = metric.Evaluate(d, group, predictions);
  double correct = 0.0;
  for (size_t i : group) correct += (d.Label(i) == 1);
  EXPECT_NEAR(value, 2.0 * correct / 4.0, 1e-12);
  EXPECT_EQ(metric.Name(), "double_acc");
}

TEST(FairnessMetricTest, EmptyDenominatorsAreSafe) {
  // Group with only positive labels: FPR has no negatives.
  Dataset d;
  Column g = Column::Categorical("g", {"a"});
  Column x = Column::Numeric("x");
  for (int i = 0; i < 4; ++i) {
    g.AppendCode(0);
    x.AppendNumeric(i);
  }
  d.AddColumn(std::move(g));
  d.AddColumn(std::move(x));
  d.SetLabels({1, 1, 1, 1});
  const std::vector<size_t> group = {0, 1, 2, 3};
  const std::vector<int> predictions = {1, 0, 1, 0};
  EXPECT_DOUBLE_EQ(MakeMetricByName("fpr")->Evaluate(d, group, predictions), 0.0);
  // FOR: predicted-negative set exists but contains no y=0.
  EXPECT_DOUBLE_EQ(MakeMetricByName("for")->Evaluate(d, group, predictions), 1.0);
}

}  // namespace
}  // namespace omnifair
