#ifndef OMNIFAIR_BENCH_BENCH_COMMON_H_
#define OMNIFAIR_BENCH_BENCH_COMMON_H_

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "baselines/agarwal.h"
#include "baselines/baseline.h"
#include "core/omnifair.h"
#include "core/tune_report.h"
#include "data/datasets.h"
#include "data/split.h"
#include "linalg/vector_ops.h"
#include "ml/metrics.h"
#include "ml/trainer_registry.h"
#include "util/json_writer.h"
#include "util/logging.h"
#include "util/stopwatch.h"
#include "util/string_utils.h"
#include "util/telemetry.h"
#include "util/trace.h"

namespace omnifair {
namespace bench {

/// Environment override helpers so all benches share the same knobs:
///   OMNIFAIR_BENCH_ROWS  - dataset size (0 = per-bench default)
///   OMNIFAIR_BENCH_SEEDS - number of random splits averaged
/// Malformed values (e.g. "5k", "", "-3") are rejected with a warning naming
/// the variable and the rejected value; the fallback is used instead. The
/// silent-atol behavior this replaces would quietly run "5k" as 5 rows.
inline long EnvPositiveLong(const char* variable, long fallback) {
  const char* value = std::getenv(variable);
  if (value == nullptr) return fallback;
  errno = 0;
  char* end = nullptr;
  const long parsed = std::strtol(value, &end, 10);
  if (errno != 0 || end == value || *end != '\0' || parsed <= 0) {
    OF_LOG(Warning) << variable << "=\"" << value
                    << "\" is not a positive integer; using default "
                    << fallback;
    return fallback;
  }
  return parsed;
}

inline size_t EnvRows(size_t fallback) {
  return static_cast<size_t>(
      EnvPositiveLong("OMNIFAIR_BENCH_ROWS", static_cast<long>(fallback)));
}

inline int EnvSeeds(int fallback) {
  return static_cast<int>(EnvPositiveLong("OMNIFAIR_BENCH_SEEDS", fallback));
}

/// Per-dataset bench defaults: a fraction of the paper's sizes so the whole
/// suite regenerates in minutes; scale up via OMNIFAIR_BENCH_ROWS to match
/// Table 4 exactly.
inline size_t DefaultRows(const std::string& dataset) {
  if (dataset == "adult") return EnvRows(5000);
  if (dataset == "compas") return EnvRows(4000);
  if (dataset == "lsac") return EnvRows(4000);
  if (dataset == "bank") return EnvRows(4000);
  return EnvRows(4000);
}

/// The two majority groups per dataset used for single-constraint
/// experiments (the paper's "groups defined on the sensitive attribute").
inline GroupingFunction MainGroups(const std::string& dataset) {
  if (dataset == "adult") return GroupByAttributeValues("sex", {"Male", "Female"});
  if (dataset == "compas") {
    return GroupByAttributeValues("race", {"African-American", "Caucasian"});
  }
  if (dataset == "lsac") return GroupByAttributeValues("race", {"White", "Black"});
  if (dataset == "bank") {
    return GroupByAttributeValues("age_group", {"working_age", "young_or_senior"});
  }
  return GroupByAttribute("sex");
}

inline Dataset MakeBenchDataset(const std::string& dataset, uint64_t seed) {
  SyntheticOptions options;
  options.num_rows = DefaultRows(dataset);
  options.seed = seed;
  return MakeDatasetByName(dataset, options);
}

/// Unified per-run outcome for every method (OmniFair, the six baselines,
/// and the unconstrained reference).
struct MethodResult {
  bool supported = false;
  bool satisfied = false;
  double val_accuracy = 0.0;
  double test_accuracy = 0.0;
  double test_disparity = 0.0;
  double test_auc = 0.5;
  double seconds = 0.0;
  int models_trained = 0;
};

inline MethodResult AuditToResult(const Classifier& model,
                                  const FeatureEncoder& encoder,
                                  const Dataset& test, const FairnessSpec& spec) {
  MethodResult out;
  auto audit = Audit(model, encoder, test, {spec});
  if (audit.ok()) {
    out.test_accuracy = audit->accuracy;
    out.test_disparity = audit->max_disparity;
    out.test_auc = audit->roc_auc;
  }
  return out;
}

/// Runs one method on one split. `method` is one of: "unconstrained",
/// "omnifair", "kamiran", "calmon", "zafar", "celis", "agarwal", "thomas".
/// For "thomas" the trainer is ignored (it brings its own CMA-ES model).
inline MethodResult RunMethod(const std::string& method,
                              const TrainValTestSplit& split,
                              const std::string& trainer_name,
                              const FairnessSpec& spec, uint64_t seed) {
  MethodResult out;
  if (method == "unconstrained" || method == "omnifair") {
    auto trainer = MakeTrainer(trainer_name, seed);
    FairnessSpec effective = spec;
    if (method == "unconstrained") effective.epsilon = 10.0;  // never binds
    OmniFairOptions options;
    options.warm_start = false;
    OmniFair omnifair(options);
    auto fair = omnifair.Train(split.train, split.val, trainer.get(), {effective});
    if (!fair.ok()) return out;
    out = AuditToResult(*fair->model, fair->encoder, split.test, spec);
    out.supported = true;
    out.satisfied = fair->satisfied;
    out.val_accuracy = fair->val_accuracy;
    out.seconds = fair->train_seconds;
    out.models_trained = fair->models_trained;
    return out;
  }

  std::unique_ptr<FairnessBaseline> baseline;
  if (method == "agarwal") {
    // Fewer game iterations in the bench suite; quality is unaffected at
    // these dataset sizes and the method stays ~bench-scale.
    AgarwalReductions::Options options;
    options.iterations = 40;
    baseline = std::make_unique<AgarwalReductions>(options);
  } else {
    baseline = MakeBaseline(method);
  }
  std::unique_ptr<Trainer> trainer;
  if (method != "thomas") {
    trainer = MakeTrainer(trainer_name, seed);
    if (!baseline->SupportsTrainer(*trainer)) return out;  // NA(2)
  }
  if (!baseline->SupportsMetric(*spec.metric)) return out;  // NA(2)
  auto result = baseline->Train(split.train, split.val, trainer.get(), spec);
  if (!result.ok()) return out;
  out = AuditToResult(*result->model, result->encoder, split.test, spec);
  out.supported = true;
  out.satisfied = result->satisfied;
  out.val_accuracy = result->val_accuracy;
  out.seconds = result->train_seconds;
  out.models_trained = result->models_trained;
  return out;
}

/// Aggregates per-seed runs. Unsupported runs (NA(2)) are skipped by Add;
/// satisfied-run means are tracked separately so tables can follow the
/// paper's protocol: a method's cell is NA(1) only when *no* split
/// satisfied the constraint, otherwise it reports the mean over the
/// satisfying splits.
struct Aggregate {
  int runs = 0;
  int satisfied = 0;
  double test_accuracy = 0.0;
  double test_disparity = 0.0;
  double test_auc = 0.0;
  double seconds = 0.0;
  double models = 0.0;
  double sat_accuracy = 0.0;
  double sat_disparity = 0.0;
  double sat_auc = 0.0;

  void Add(const MethodResult& r) {
    if (!r.supported) return;
    ++runs;
    test_accuracy += r.test_accuracy;
    test_disparity += r.test_disparity;
    test_auc += r.test_auc;
    seconds += r.seconds;
    models += r.models_trained;
    if (r.satisfied) {
      ++satisfied;
      sat_accuracy += r.test_accuracy;
      sat_disparity += r.test_disparity;
      sat_auc += r.test_auc;
    }
  }
  double MeanAccuracy() const { return runs ? test_accuracy / runs : 0.0; }
  double MeanDisparity() const { return runs ? test_disparity / runs : 0.0; }
  double MeanAuc() const { return runs ? test_auc / runs : 0.0; }
  double MeanSeconds() const { return runs ? seconds / runs : 0.0; }
  double MeanModels() const { return runs ? models / runs : 0.0; }
  double SatisfiedAccuracy() const {
    return satisfied ? sat_accuracy / satisfied : 0.0;
  }
  double SatisfiedDisparity() const {
    return satisfied ? sat_disparity / satisfied : 0.0;
  }
  double SatisfiedAuc() const { return satisfied ? sat_auc / satisfied : 0.0; }
  bool AllSatisfied() const { return runs > 0 && satisfied == runs; }
  bool AnySatisfied() const { return satisfied > 0; }
};

inline void PrintHeader(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

/// Prints the process-wide recovery-event counters (DESIGN.md §8) so bench
/// output shows how often trainers diverged, metrics went non-finite, or
/// budgets expired during the run. "recovery events: none" is the healthy
/// baseline.
inline void PrintRecoveryEvents() {
  std::printf("recovery events: %s\n", RecoveryEventSummary().c_str());
}

// ---------------------------------------------------------------------------
// Machine-readable bench output (DESIGN.md §9).
//
// Every bench binary keeps its human-readable printf table and additionally
// writes one versioned JSON document to <outdir>/<bench>.json, where
// <outdir> is $OMNIFAIR_BENCH_OUT or "bench/out". Schema (validated by
// tools/check_bench_json.py):
//
//   {
//     "schema": "omnifair.bench", "schema_version": 1,
//     "bench": "<name>", "title": "...",
//     "config": {...},                       // knobs: rows, seeds, epsilon...
//     "results": [{"section": "...", "labels": {...}, "values": {...}}],
//     "tune_trajectories": [{"label": "...", "report": <TuneReport JSON>}],
//     "metrics": <MetricsSnapshot JSON>,     // counters/gauges/histograms
//     "recovery_events": {"divergence_backoff": 3, ...},  // non-zero only
//     "wall_seconds": 12.3
//   }
// ---------------------------------------------------------------------------

class BenchReporter {
 public:
  /// One result row: string labels (dataset, method...) + numeric values
  /// (accuracy, seconds...). Insertion order is preserved in the JSON.
  struct Row {
    std::string section;
    std::vector<std::pair<std::string, std::string>> labels;
    std::vector<std::pair<std::string, double>> values;

    Row& Label(std::string key, std::string value) {
      labels.emplace_back(std::move(key), std::move(value));
      return *this;
    }
    Row& Value(std::string key, double value) {
      values.emplace_back(std::move(key), value);
      return *this;
    }
  };

  BenchReporter(std::string bench_name, std::string title)
      : bench_name_(std::move(bench_name)), title_(std::move(title)) {}

  void Config(std::string key, std::string value) {
    config_strings_.emplace_back(std::move(key), std::move(value));
  }
  void Config(std::string key, double value) {
    config_numbers_.emplace_back(std::move(key), value);
  }
  void Config(std::string key, long long value) {
    Config(std::move(key), static_cast<double>(value));
  }
  void Config(std::string key, int value) {
    Config(std::move(key), static_cast<double>(value));
  }
  void Config(std::string key, size_t value) {
    Config(std::move(key), static_cast<double>(value));
  }

  /// Returned reference stays valid for the reporter's lifetime (deque).
  Row& AddRow(std::string section) {
    rows_.emplace_back();
    rows_.back().section = std::move(section);
    return rows_.back();
  }

  /// Convenience: one row per method table cell from an Aggregate.
  Row& AddAggregate(std::string section, const Aggregate& aggregate) {
    Row& row = AddRow(std::move(section));
    row.Value("runs", aggregate.runs)
        .Value("satisfied_runs", aggregate.satisfied)
        .Value("test_accuracy", aggregate.MeanAccuracy())
        .Value("test_disparity", aggregate.MeanDisparity())
        .Value("test_auc", aggregate.MeanAuc())
        .Value("seconds", aggregate.MeanSeconds())
        .Value("models_trained", aggregate.MeanModels());
    return row;
  }

  /// Attaches a full tuning trajectory (the paper's Figure 2 data). Keep it
  /// to a few representative runs per bench; every TunePoint is serialized.
  void AddTrajectory(std::string label, const TuneReport& report) {
    trajectories_.emplace_back(std::move(label), report);
  }

  const std::string& bench_name() const { return bench_name_; }
  const std::string& path() const { return path_; }

  /// Directory resolved from $OMNIFAIR_BENCH_OUT (default "bench/out").
  static std::string OutputDirectory() {
    const char* dir = std::getenv("OMNIFAIR_BENCH_OUT");
    return (dir != nullptr && *dir != '\0') ? dir : "bench/out";
  }

  /// Serializes the full document (schema above) to a string.
  std::string ToJson() const {
    std::ostringstream os;
    JsonWriter writer(os);
    writer.BeginObject();
    writer.KV("schema", "omnifair.bench");
    writer.KV("schema_version", 1);
    writer.KV("bench", bench_name_);
    writer.KV("title", title_);

    writer.Key("config");
    writer.BeginObject();
    for (const auto& [key, value] : config_strings_) writer.KV(key, value);
    for (const auto& [key, value] : config_numbers_) writer.KV(key, value);
    writer.EndObject();

    writer.Key("results");
    writer.BeginArray();
    for (const Row& row : rows_) {
      writer.BeginObject();
      writer.KV("section", row.section);
      writer.Key("labels");
      writer.BeginObject();
      for (const auto& [key, value] : row.labels) writer.KV(key, value);
      writer.EndObject();
      writer.Key("values");
      writer.BeginObject();
      for (const auto& [key, value] : row.values) writer.KV(key, value);
      writer.EndObject();
      writer.EndObject();
    }
    writer.EndArray();

    writer.Key("tune_trajectories");
    writer.BeginArray();
    for (const auto& [label, report] : trajectories_) {
      writer.BeginObject();
      writer.KV("label", label);
      writer.Key("report");
      report.WriteJson(writer);
      writer.EndObject();
    }
    writer.EndArray();

    writer.Key("metrics");
    MetricsRegistry::Global().Snapshot().WriteJson(writer);

    writer.Key("recovery_events");
    writer.BeginObject();
    for (int i = 0; i < static_cast<int>(RecoveryEvent::kCount); ++i) {
      const RecoveryEvent event = static_cast<RecoveryEvent>(i);
      const long long count = RecoveryEventCount(event);
      if (count > 0) writer.KV(RecoveryEventName(event), count);
    }
    writer.EndObject();

    writer.KV("wall_seconds", stopwatch_.ElapsedSeconds());
    writer.EndObject();
    return os.str();
  }

  /// Writes <outdir>/<bench>.json, creating the directory if needed.
  Status Write() {
    const std::filesystem::path dir(OutputDirectory());
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    if (ec) {
      return Status::Internal("cannot create bench output directory " +
                              dir.string() + ": " + ec.message());
    }
    path_ = (dir / (bench_name_ + ".json")).string();
    std::ofstream out(path_);
    if (!out) return IoError(path_, "open");
    out << ToJson() << "\n";
    out.flush();
    if (!out) return IoError(path_, "write");
    return Status::Ok();
  }

 private:
  const std::string bench_name_;
  const std::string title_;
  std::string path_;
  Stopwatch stopwatch_;
  std::vector<std::pair<std::string, std::string>> config_strings_;
  std::vector<std::pair<std::string, double>> config_numbers_;
  std::deque<Row> rows_;
  std::vector<std::pair<std::string, TuneReport>> trajectories_;
};

/// Standard bench epilogue: prints the recovery-event summary, writes the
/// JSON document, and — when $OMNIFAIR_TRACE_FILE is set and the telemetry
/// level is kFullTrace — dumps the collected spans as a Chrome trace.
/// Returns the process exit code (non-zero when the JSON write failed).
inline int FinishBench(BenchReporter& reporter) {
  PrintRecoveryEvents();
  const Status status = reporter.Write();
  if (!status.ok()) {
    std::fprintf(stderr, "bench json write failed: %s\n",
                 status.ToString().c_str());
    return 1;
  }
  std::printf("bench json: %s\n", reporter.path().c_str());

  const char* trace_path = std::getenv("OMNIFAIR_TRACE_FILE");
  if (trace_path != nullptr && *trace_path != '\0') {
    const Status trace_status =
        TraceCollector::Global().WriteChromeJson(trace_path);
    if (trace_status.ok()) {
      std::printf("trace (%zu spans): %s  [open in chrome://tracing]\n",
                  TraceCollector::Global().EventCount(), trace_path);
    } else {
      std::fprintf(stderr, "trace write failed: %s\n",
                   trace_status.ToString().c_str());
    }
  }
  return 0;
}

}  // namespace bench
}  // namespace omnifair

#endif  // OMNIFAIR_BENCH_BENCH_COMMON_H_
