#include "ml/metrics.h"

#include <cmath>
#include <gtest/gtest.h>

#include "util/random.h"

namespace omnifair {
namespace {

TEST(ConfusionTest, ClosedFormCounts) {
  //               y:  1  1  0  0  1  0
  //            h(x):  1  0  1  0  1  0
  const std::vector<int> y = {1, 1, 0, 0, 1, 0};
  const std::vector<int> h = {1, 0, 1, 0, 1, 0};
  const ConfusionCounts counts = CountConfusion(y, h);
  EXPECT_EQ(counts.tp, 2u);
  EXPECT_EQ(counts.fn, 1u);
  EXPECT_EQ(counts.fp, 1u);
  EXPECT_EQ(counts.tn, 2u);
  EXPECT_EQ(counts.Total(), 6u);
  EXPECT_NEAR(counts.Accuracy(), 4.0 / 6.0, 1e-12);
  EXPECT_NEAR(counts.FalsePositiveRate(), 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(counts.FalseNegativeRate(), 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(counts.FalseOmissionRate(), 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(counts.FalseDiscoveryRate(), 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(counts.PositivePredictionRate(), 0.5, 1e-12);
}

TEST(ConfusionTest, SubsetRestriction) {
  const std::vector<int> y = {1, 1, 0, 0};
  const std::vector<int> h = {1, 0, 1, 0};
  const ConfusionCounts counts = CountConfusion(y, h, {0, 3});
  EXPECT_EQ(counts.tp, 1u);
  EXPECT_EQ(counts.tn, 1u);
  EXPECT_EQ(counts.Total(), 2u);
}

TEST(ConfusionTest, UndefinedRatesAreZero) {
  ConfusionCounts counts;  // everything zero
  EXPECT_DOUBLE_EQ(counts.Accuracy(), 0.0);
  EXPECT_DOUBLE_EQ(counts.FalsePositiveRate(), 0.0);
  EXPECT_DOUBLE_EQ(counts.FalseDiscoveryRate(), 0.0);
}

TEST(AccuracyTest, Basic) {
  EXPECT_DOUBLE_EQ(Accuracy({1, 0, 1}, {1, 1, 1}), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(Accuracy({}, {}), 0.0);
}

TEST(WeightedAccuracyTest, MatchesEquation2) {
  // (1/N) sum w_i 1(h=y): N=3, correct at i=0 (w=2) and i=2 (w=0.5).
  const double wacc =
      WeightedAccuracy({1, 0, 1}, {1, 1, 1}, {2.0, 10.0, 0.5});
  EXPECT_NEAR(wacc, 2.5 / 3.0, 1e-12);
}

TEST(WeightedAccuracyTest, UnitWeightsEqualAccuracy) {
  const std::vector<int> y = {1, 0, 0, 1, 1};
  const std::vector<int> h = {1, 1, 0, 0, 1};
  EXPECT_NEAR(WeightedAccuracy(y, h, {1, 1, 1, 1, 1}), Accuracy(y, h), 1e-12);
}

TEST(RocAucTest, PerfectRanking) {
  EXPECT_DOUBLE_EQ(RocAuc({0, 0, 1, 1}, {0.1, 0.2, 0.8, 0.9}), 1.0);
}

TEST(RocAucTest, ReversedRanking) {
  EXPECT_DOUBLE_EQ(RocAuc({0, 0, 1, 1}, {0.9, 0.8, 0.2, 0.1}), 0.0);
}

TEST(RocAucTest, AllTiesGiveHalf) {
  EXPECT_DOUBLE_EQ(RocAuc({0, 1, 0, 1}, {0.5, 0.5, 0.5, 0.5}), 0.5);
}

TEST(RocAucTest, DegenerateLabels) {
  EXPECT_DOUBLE_EQ(RocAuc({1, 1}, {0.3, 0.7}), 0.5);
  EXPECT_DOUBLE_EQ(RocAuc({0, 0}, {0.3, 0.7}), 0.5);
}

/// Property sweep: rank-based AUC equals brute-force pair counting on
/// random score/label vectors.
class RocAucPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RocAucPropertyTest, MatchesBruteForcePairCount) {
  Rng rng(GetParam());
  const size_t n = 200;
  std::vector<int> labels(n);
  std::vector<double> scores(n);
  for (size_t i = 0; i < n; ++i) {
    labels[i] = rng.NextBernoulli(0.4) ? 1 : 0;
    // Quantize scores to force ties.
    scores[i] = std::round(rng.NextDouble() * 20.0) / 20.0;
  }
  double wins = 0.0;
  double pairs = 0.0;
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      if (labels[i] == 1 && labels[j] == 0) {
        pairs += 1.0;
        if (scores[i] > scores[j]) {
          wins += 1.0;
        } else if (scores[i] == scores[j]) {
          wins += 0.5;
        }
      }
    }
  }
  if (pairs == 0.0) GTEST_SKIP();
  EXPECT_NEAR(RocAuc(labels, scores), wins / pairs, 1e-10);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RocAucPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace omnifair
