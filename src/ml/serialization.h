#ifndef OMNIFAIR_ML_SERIALIZATION_H_
#define OMNIFAIR_ML_SERIALIZATION_H_

#include <istream>
#include <memory>
#include <ostream>
#include <string>

#include "ml/classifier.h"
#include "util/status.h"

namespace omnifair {

/// Saves a trained model in the library's line-oriented text format.
/// Supported families: logistic_regression, naive_bayes, decision_tree,
/// random_forest, gbdt, mlp. Returns kUnsupported for other classifiers
/// (e.g. the ExpGrad ensemble).
Status SerializeModel(const Classifier& model, std::ostream& os);
Status SaveModel(const Classifier& model, const std::string& path);

/// Loads a model written by SerializeModel/SaveModel.
Result<std::unique_ptr<Classifier>> DeserializeModel(std::istream& is);
Result<std::unique_ptr<Classifier>> LoadModel(const std::string& path);

}  // namespace omnifair

#endif  // OMNIFAIR_ML_SERIALIZATION_H_
