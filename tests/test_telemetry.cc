#include "util/telemetry.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "bench/bench_common.h"
#include "core/omnifair.h"
#include "core/tune_report.h"
#include "data/datasets.h"
#include "data/split.h"
#include "ml/trainer_registry.h"
#include "tests/testing_json.h"
#include "util/json_writer.h"
#include "util/logging.h"
#include "util/trace.h"

namespace omnifair {
namespace {

using ::omnifair::testing::JsonIsValid;

TEST(JsonCheckerTest, AcceptsAndRejects) {
  EXPECT_TRUE(JsonIsValid(R"({"a": [1, -2.5e3, "x\n", true, null], "b": {}})"));
  EXPECT_FALSE(JsonIsValid(R"({"a": 1,})"));
  EXPECT_FALSE(JsonIsValid(R"({"a" 1})"));
  EXPECT_FALSE(JsonIsValid("{\"a\": 1} trailing"));
}

// ---------------------------------------------------------------------------
// Metrics registry
// ---------------------------------------------------------------------------

TEST(TelemetryTest, CounterConcurrentIncrements) {
  Counter* counter =
      MetricsRegistry::Global().GetCounter("test.concurrent_counter");
  counter->Reset();
  constexpr int kThreads = 4;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([counter] {
      for (int i = 0; i < kPerThread; ++i) counter->Add(1);
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(counter->Value(), static_cast<long long>(kThreads) * kPerThread);
}

TEST(TelemetryTest, HistogramConcurrentRecords) {
  Histogram* histogram = MetricsRegistry::Global().GetHistogram(
      "test.concurrent_histogram", {1.0, 10.0, 100.0});
  histogram->Reset();
  constexpr int kThreads = 4;
  constexpr int kPerThread = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([histogram, t] {
      for (int i = 0; i < kPerThread; ++i) {
        histogram->Record(static_cast<double>(t + 1));  // 1..4
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  const long long total = static_cast<long long>(kThreads) * kPerThread;
  EXPECT_EQ(histogram->Count(), total);
  // sum = 5000 * (1+2+3+4)
  EXPECT_NEAR(histogram->Sum(), 5000.0 * 10.0, 1e-6);
  EXPECT_EQ(histogram->Min(), 1.0);
  EXPECT_EQ(histogram->Max(), 4.0);
  const std::vector<long long> buckets = histogram->BucketCounts();
  ASSERT_EQ(buckets.size(), 4u);  // <=1, <=10, <=100, overflow
  EXPECT_EQ(buckets[0], kPerThread);      // the 1.0 values
  EXPECT_EQ(buckets[1], 3 * kPerThread);  // 2, 3, 4
  EXPECT_EQ(buckets[2], 0);
  EXPECT_EQ(buckets[3], 0);
}

TEST(TelemetryTest, HistogramBucketBoundaries) {
  Histogram* histogram =
      MetricsRegistry::Global().GetHistogram("test.bucket_edges", {1.0, 2.0, 5.0});
  histogram->Reset();
  histogram->Record(0.5);
  histogram->Record(1.5);
  histogram->Record(10.0);  // overflow
  const std::vector<long long> buckets = histogram->BucketCounts();
  ASSERT_EQ(buckets.size(), 4u);
  EXPECT_EQ(buckets[0], 1);
  EXPECT_EQ(buckets[1], 1);
  EXPECT_EQ(buckets[2], 0);
  EXPECT_EQ(buckets[3], 1);
  EXPECT_EQ(histogram->Count(), 3);
}

TEST(TelemetryTest, GetHistogramConflictingBoundsKeepsOriginal) {
  Histogram* first = MetricsRegistry::Global().GetHistogram(
      "test.bounds_conflict", {1.0, 2.0, 3.0});
  // A second lookup with different bounds warns but must return the original
  // histogram, with the original bucketing, instead of silently ignoring the
  // mismatch and surprising the caller with foreign buckets.
  Histogram* second = MetricsRegistry::Global().GetHistogram(
      "test.bounds_conflict", {10.0, 20.0});
  EXPECT_EQ(first, second);
  EXPECT_EQ(second->bounds(), (std::vector<double>{1.0, 2.0, 3.0}));
  // Matching bounds stay silent and also return the original.
  Histogram* third = MetricsRegistry::Global().GetHistogram(
      "test.bounds_conflict", {1.0, 2.0, 3.0});
  EXPECT_EQ(first, third);
}

TEST(TelemetryTest, SnapshotJsonEmptyHistogramMinMaxAreZero) {
  Histogram* histogram =
      MetricsRegistry::Global().GetHistogram("test.empty_minmax", {1.0});
  histogram->Reset();
  // Count == 0 leaves the live min/max at +/-inf; the JSON must report 0/0,
  // not null (JsonWriter's rendering of non-finite doubles).
  const std::string json = MetricsRegistry::Global().Snapshot().ToJson();
  EXPECT_TRUE(JsonIsValid(json)) << json;
  const size_t at = json.find("\"test.empty_minmax\"");
  ASSERT_NE(at, std::string::npos);
  const std::string entry = json.substr(at, json.find('}', at) - at);
  EXPECT_NE(entry.find("\"min\":0"), std::string::npos) << entry;
  EXPECT_NE(entry.find("\"max\":0"), std::string::npos) << entry;
  EXPECT_EQ(entry.find("null"), std::string::npos) << entry;
}

TEST(TelemetryTest, RegistryPointersAreStableAcrossReset) {
  Counter* before = MetricsRegistry::Global().GetCounter("test.stable");
  before->Add(7);
  MetricsRegistry::Global().ResetAll();
  Counter* after = MetricsRegistry::Global().GetCounter("test.stable");
  EXPECT_EQ(before, after);
  EXPECT_EQ(after->Value(), 0);
}

TEST(TelemetryTest, SnapshotJsonRoundTrips) {
  MetricsRegistry::Global().GetCounter("test.snapshot_counter")->Add(3);
  MetricsRegistry::Global().GetGauge("test.snapshot_gauge")->Set(1.5);
  MetricsRegistry::Global()
      .GetHistogram("test.snapshot_hist", {1.0, 2.0})
      ->Record(1.2);
  const std::string json = MetricsRegistry::Global().Snapshot().ToJson();
  EXPECT_TRUE(JsonIsValid(json)) << json;
  EXPECT_NE(json.find("\"test.snapshot_counter\""), std::string::npos);
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// Levels
// ---------------------------------------------------------------------------

TEST(TelemetryTest, ScopedLevelOverridesAndNests) {
  const TelemetryLevel global = GetTelemetryLevel();
  EXPECT_EQ(EffectiveTelemetryLevel(), global);
  {
    ScopedTelemetryLevel off(TelemetryLevel::kOff);
    EXPECT_EQ(EffectiveTelemetryLevel(), TelemetryLevel::kOff);
    {
      ScopedTelemetryLevel trace(TelemetryLevel::kFullTrace);
      EXPECT_EQ(EffectiveTelemetryLevel(), TelemetryLevel::kFullTrace);
    }
    EXPECT_EQ(EffectiveTelemetryLevel(), TelemetryLevel::kOff);
  }
  EXPECT_EQ(EffectiveTelemetryLevel(), global);
}

TEST(TelemetryTest, ThreadLocalOverrideDoesNotLeakAcrossThreads) {
  ScopedTelemetryLevel off(TelemetryLevel::kOff);
  TelemetryLevel seen = TelemetryLevel::kOff;
  std::thread other([&seen] { seen = EffectiveTelemetryLevel(); });
  other.join();
  EXPECT_EQ(seen, GetTelemetryLevel());
}

TEST(TelemetryTest, CounterMacroDisabledAtOff) {
  Counter* counter = MetricsRegistry::Global().GetCounter("test.macro_gated");
  counter->Reset();
  {
    ScopedTelemetryLevel off(TelemetryLevel::kOff);
    OF_COUNTER_INC("test.macro_gated");
  }
  EXPECT_EQ(counter->Value(), 0);
  OF_COUNTER_INC("test.macro_gated");
  EXPECT_EQ(counter->Value(), 1);
}

// ---------------------------------------------------------------------------
// Trace spans
// ---------------------------------------------------------------------------

TEST(TraceTest, SpanNestingAndThreadBufferFlush) {
  const TelemetryLevel global = GetTelemetryLevel();
  SetTelemetryLevel(TelemetryLevel::kFullTrace);
  TraceCollector::Global().Clear();

  {
    OF_TRACE_SPAN("outer");
    OF_TRACE_SPAN("inner");
  }
  std::vector<std::thread> threads;
  for (int t = 0; t < 2; ++t) {
    threads.emplace_back([] { OF_TRACE_SPAN("worker_span"); });
  }
  for (std::thread& thread : threads) thread.join();
  SetTelemetryLevel(global);

  const std::vector<TraceEvent> events = TraceCollector::Global().Events();
  ASSERT_EQ(events.size(), 4u);

  int outer_depth = 0;
  int inner_depth = 0;
  std::vector<uint32_t> worker_threads;
  for (const TraceEvent& event : events) {
    const std::string name = event.name;
    if (name == "outer") outer_depth = event.depth;
    if (name == "inner") inner_depth = event.depth;
    if (name == "worker_span") worker_threads.push_back(event.thread_id);
  }
  EXPECT_EQ(outer_depth, 1);
  EXPECT_EQ(inner_depth, 2);
  // The two worker spans came from distinct (exited) threads whose buffers
  // were still readable after join.
  ASSERT_EQ(worker_threads.size(), 2u);
  EXPECT_NE(worker_threads[0], worker_threads[1]);

  TraceCollector::Global().Clear();
  EXPECT_EQ(TraceCollector::Global().EventCount(), 0u);
}

TEST(TraceTest, SpansInertBelowFullTrace) {
  TraceCollector::Global().Clear();
  {
    ScopedTelemetryLevel counters(TelemetryLevel::kCounters);
    OF_TRACE_SPAN("should_not_record");
  }
  EXPECT_EQ(TraceCollector::Global().EventCount(), 0u);
}

TEST(TraceTest, ChromeJsonRoundTrips) {
  const TelemetryLevel global = GetTelemetryLevel();
  SetTelemetryLevel(TelemetryLevel::kFullTrace);
  TraceCollector::Global().Clear();
  { OF_TRACE_SPAN("json_span"); }
  SetTelemetryLevel(global);

  const std::string json = TraceCollector::Global().ToChromeJson();
  EXPECT_TRUE(JsonIsValid(json)) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"json_span\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  TraceCollector::Global().Clear();
}

// ---------------------------------------------------------------------------
// TuneReport
// ---------------------------------------------------------------------------

struct TuneFixture {
  Dataset data;
  TrainValTestSplit split;
  FairnessSpec spec;

  TuneFixture() {
    SyntheticOptions options;
    options.num_rows = 2500;
    options.seed = 2;
    data = MakeCompasDataset(options);
    split = SplitDefault(data, 13);
    spec = MakeSpec(
        GroupByAttributeValues("race", {"African-American", "Caucasian"}), "sp",
        0.03);
  }
};

TEST(TuneReportTest, PopulatedAndConsistentWithModelsTrained) {
  TuneFixture fx;
  auto trainer = MakeTrainer("lr");
  OmniFair omnifair;
  auto fair = omnifair.Train(fx.split.train, fx.split.val, trainer.get(), {fx.spec});
  ASSERT_TRUE(fair.ok()) << fair.status();

  const TuneReport& report = fair->tune_report;
  ASSERT_FALSE(report.empty());
  EXPECT_EQ(report.algorithm, "lambda_tuner");
  ASSERT_EQ(report.epsilons.size(), 1u);
  EXPECT_NEAR(report.epsilons[0], 0.03, 1e-12);

  // The acceptance invariant: one TunePoint per trainer invocation.
  EXPECT_EQ(static_cast<int>(report.points.size()), fair->models_trained);
  EXPECT_EQ(report.models_trained, fair->models_trained);
  for (size_t i = 0; i < report.points.size(); ++i) {
    EXPECT_EQ(report.points[i].models_trained, static_cast<int>(i) + 1);
    EXPECT_TRUE(report.points[i].fit_ok);
    ASSERT_EQ(report.points[i].lambdas.size(), 1u);
    EXPECT_GE(report.points[i].seconds, 0.0);
  }
  // The first point is the unconstrained fit.
  EXPECT_EQ(report.points[0].stage, "initial");
  EXPECT_NEAR(report.points[0].lambdas[0], 0.0, 1e-12);
}

TEST(TuneReportTest, FairnessPartMonotoneInLambda) {
  TuneFixture fx;
  auto trainer = MakeTrainer("lr");
  OmniFair omnifair;
  auto fair = omnifair.Train(fx.split.train, fx.split.val, trainer.get(), {fx.spec});
  ASSERT_TRUE(fair.ok()) << fair.status();

  // Collect the evaluated (lambda, FP) samples and sort by lambda: Lemma 2
  // says FP is monotone in lambda for single-constraint SP. Real validation
  // sets are finite so allow a small tolerance on each step.
  std::vector<std::pair<double, double>> samples;
  for (const TunePoint& point : fair->tune_report.points) {
    if (!point.evaluated) continue;
    samples.emplace_back(point.lambdas[0], point.val_fairness_parts[0]);
  }
  ASSERT_GE(samples.size(), 3u);
  std::sort(samples.begin(), samples.end());

  constexpr double kTolerance = 0.02;
  bool non_increasing = true;
  bool non_decreasing = true;
  for (size_t i = 1; i < samples.size(); ++i) {
    if (samples[i].second > samples[i - 1].second + kTolerance) {
      non_increasing = false;
    }
    if (samples[i].second < samples[i - 1].second - kTolerance) {
      non_decreasing = false;
    }
  }
  EXPECT_TRUE(non_increasing || non_decreasing)
      << "FP not monotone in lambda across " << samples.size() << " samples";
}

TEST(TuneReportTest, EmptyWhenTelemetryOff) {
  TuneFixture fx;
  auto trainer = MakeTrainer("lr");
  Counter* fits = MetricsRegistry::Global().GetCounter("trainer.fits");
  const long long fits_before = fits->Value();

  OmniFairOptions options;
  options.telemetry.level = TelemetryLevel::kOff;
  OmniFair omnifair(options);
  auto fair = omnifair.Train(fx.split.train, fx.split.val, trainer.get(), {fx.spec});
  ASSERT_TRUE(fair.ok()) << fair.status();

  EXPECT_TRUE(fair->tune_report.empty());
  EXPECT_GT(fair->models_trained, 0);       // the search itself still ran
  EXPECT_EQ(fits->Value(), fits_before);    // but no counters moved
}

TEST(TuneReportTest, JsonRoundTrips) {
  TuneFixture fx;
  auto trainer = MakeTrainer("lr");
  OmniFair omnifair;
  auto fair = omnifair.Train(fx.split.train, fx.split.val, trainer.get(), {fx.spec});
  ASSERT_TRUE(fair.ok()) << fair.status();
  const std::string json = fair->tune_report.ToJson();
  EXPECT_TRUE(JsonIsValid(json)) << json;
  EXPECT_NE(json.find("\"algorithm\":\"lambda_tuner\""), std::string::npos);
  EXPECT_NE(json.find("\"points\""), std::string::npos);
}

TEST(TuneReportTest, GridSearchRecordsTrajectory) {
  TuneFixture fx;
  auto trainer = MakeTrainer("lr");
  auto problem = FairnessProblem::Create(fx.split.train, fx.split.val, {fx.spec},
                                         trainer.get());
  ASSERT_TRUE(problem.ok());

  TuneReport report;
  report.algorithm = "grid_search";
  (*problem)->StartTuneReport(&report);
  GridSearchOptions options;
  options.points_per_dim = 5;
  const GridSearchTuner grid(options);
  MultiTuneResult result = grid.Run(**problem);
  (*problem)->StartTuneReport(nullptr);

  ASSERT_FALSE(report.empty());
  EXPECT_EQ(static_cast<int>(report.points.size()), result.models_trained);
  // 1 base fit + 5 grid points.
  EXPECT_EQ(report.points.size(), 6u);
  EXPECT_EQ(report.points[0].stage, "initial");
  EXPECT_EQ(report.points.back().stage, "grid");
}

// ---------------------------------------------------------------------------
// Bench plumbing (bench_common.h)
// ---------------------------------------------------------------------------

TEST(BenchCommonTest, EnvRowsRejectsMalformedValues) {
  ::setenv("OMNIFAIR_BENCH_ROWS", "5k", 1);
  EXPECT_EQ(bench::EnvRows(1234), 1234u);
  ::setenv("OMNIFAIR_BENCH_ROWS", "-3", 1);
  EXPECT_EQ(bench::EnvRows(1234), 1234u);
  ::setenv("OMNIFAIR_BENCH_ROWS", "", 1);
  EXPECT_EQ(bench::EnvRows(1234), 1234u);
  ::setenv("OMNIFAIR_BENCH_ROWS", "250", 1);
  EXPECT_EQ(bench::EnvRows(1234), 250u);
  ::unsetenv("OMNIFAIR_BENCH_ROWS");
  EXPECT_EQ(bench::EnvRows(1234), 1234u);

  ::setenv("OMNIFAIR_BENCH_SEEDS", "2x", 1);
  EXPECT_EQ(bench::EnvSeeds(7), 7);
  ::setenv("OMNIFAIR_BENCH_SEEDS", "3", 1);
  EXPECT_EQ(bench::EnvSeeds(7), 3);
  ::unsetenv("OMNIFAIR_BENCH_SEEDS");
}

TEST(BenchCommonTest, ReporterWritesSchemaValidJson) {
  const std::string dir = ::testing::TempDir() + "omnifair_bench_out";
  ::setenv("OMNIFAIR_BENCH_OUT", dir.c_str(), 1);

  bench::BenchReporter reporter("unit_test_bench", "Unit test bench");
  reporter.Config("seeds", 2);
  reporter.Config("dataset", "compas");
  reporter.AddRow("section_a")
      .Label("method", "omnifair")
      .Value("accuracy", 0.91)
      .Value("seconds", 1.25);
  TuneReport trajectory;
  trajectory.algorithm = "lambda_tuner";
  trajectory.epsilons = {0.03};
  TunePoint point;
  point.lambdas = {0.1};
  point.stage = "binary";
  point.models_trained = 1;
  point.evaluated = true;
  point.val_accuracy = 0.9;
  point.val_fairness_parts = {0.01};
  trajectory.points.push_back(point);
  trajectory.models_trained = 1;
  reporter.AddTrajectory("demo", trajectory);

  const Status status = reporter.Write();
  ASSERT_TRUE(status.ok()) << status;
  std::ifstream in(reporter.path());
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string json = buffer.str();
  ::unsetenv("OMNIFAIR_BENCH_OUT");

  EXPECT_TRUE(JsonIsValid(json)) << json;
  EXPECT_NE(json.find("\"schema\":\"omnifair.bench\""), std::string::npos);
  EXPECT_NE(json.find("\"schema_version\":1"), std::string::npos);
  EXPECT_NE(json.find("\"bench\":\"unit_test_bench\""), std::string::npos);
  EXPECT_NE(json.find("\"tune_trajectories\""), std::string::npos);
  EXPECT_NE(json.find("\"recovery_events\""), std::string::npos);
  EXPECT_NE(json.find("\"wall_seconds\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// RecoveryEvent compatibility shim
// ---------------------------------------------------------------------------

TEST(TelemetryTest, RecoveryEventsBackedByRegistry) {
  ResetRecoveryEvents();
  CountRecoveryEvent(RecoveryEvent::kDivergenceBackoff);
  CountRecoveryEvent(RecoveryEvent::kDivergenceBackoff);
  EXPECT_EQ(RecoveryEventCount(RecoveryEvent::kDivergenceBackoff), 2);
  EXPECT_EQ(MetricsRegistry::Global()
                .GetCounter("recovery.divergence_backoff")
                ->Value(),
            2);
  // Unconditional: counted even at kOff (robustness guarantee, DESIGN.md §8).
  {
    ScopedTelemetryLevel off(TelemetryLevel::kOff);
    CountRecoveryEvent(RecoveryEvent::kDivergenceBackoff);
  }
  EXPECT_EQ(RecoveryEventCount(RecoveryEvent::kDivergenceBackoff), 3);
  EXPECT_EQ(RecoveryEventSummary(), "divergence_backoff=3");
  ResetRecoveryEvents();
  EXPECT_EQ(RecoveryEventSummary(), "none");
}

}  // namespace
}  // namespace omnifair
