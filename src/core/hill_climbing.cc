#include "core/hill_climbing.h"

#include <cmath>

#include "util/logging.h"
#include "util/telemetry.h"
#include "util/trace.h"

namespace omnifair {

HillClimber::HillClimber(HillClimbOptions options) : options_(options) {}

MultiTuneResult HillClimber::Run(FairnessProblem& problem) const {
  const size_t k = problem.NumConstraints();
  OF_CHECK_GE(k, 1u);
  OF_TRACE_SPAN("hill_climb");
  const int models_before = problem.models_trained();
  const int max_iterations = options_.max_iterations_factor * static_cast<int>(k);
  const LambdaTuner tuner(options_.tune);

  MultiTuneResult result;
  result.lambdas.assign(k, 0.0);

  // One checkpoint session spans the whole climb, including the inner
  // coordinate tunes (TuneCoordinate reuses the attached manager).
  Result<std::unique_ptr<CheckpointManager>> checkpoint =
      AttachCheckpoint(problem, options_.tune.checkpoint, "hill_climb");
  if (!checkpoint.ok()) {
    result.status = checkpoint.status();
    return result;
  }
  struct CheckpointGuard {
    FairnessProblem& problem;
    CheckpointManager* manager;
    ~CheckpointGuard() { FinishCheckpoint(problem, manager); }
  } checkpoint_guard{problem, checkpoint->get()};

  // Line 1-2: Lambda = 0, fit the unconstrained model.
  problem.SetTuneStage("initial");
  std::unique_ptr<Classifier> model =
      problem.FitWithLambdas(result.lambdas, /*weight_model=*/nullptr);
  if (model == nullptr) {
    // Trainer failed behind the exception firewall before any model existed.
    result.status = problem.last_fit_status();
    result.models_trained = problem.models_trained() - models_before;
    return result;
  }
  std::vector<int> val_preds = problem.PredictVal(*model);
  if (problem.RecordingTuneReport()) {
    problem.AnnotateLastTunePoint(problem.ValAccuracy(val_preds),
                                  problem.val_evaluator().FairnessParts(val_preds));
  }

  // With worker threads the k constraint metrics of an iteration evaluate
  // concurrently and once per prediction vector (MaxViolation / MostViolated
  // both derive from the same parts); each part lands in its own slot, so
  // the iteration sequence is identical to the serial path.
  const int num_threads = options_.tune.num_threads;

  int consecutive_failures = 0;
  for (int iteration = 0; iteration < max_iterations; ++iteration) {
    std::vector<double> parts;
    double max_violation;
    if (num_threads > 1) {
      parts = problem.val_evaluator().FairnessParts(val_preds, num_threads);
      max_violation = problem.val_evaluator().MaxViolationFromParts(parts);
    } else {
      max_violation = problem.val_evaluator().MaxViolation(val_preds);
    }
    if (max_violation <= 1e-12) {
      result.satisfied = true;
      break;
    }
    if (problem.Interrupted()) {
      result.status = problem.InterruptStatus();
      break;
    }
    ++result.iterations;
    OF_TRACE_SPAN("hill_climb_iteration");
    OF_COUNTER_INC("tuner.hill_climb_iterations");
    // Line 4: most violated constraint.
    const size_t j = num_threads > 1
                         ? problem.val_evaluator().MostViolatedFromParts(parts)
                         : problem.val_evaluator().MostViolated(val_preds);
    // Line 5: Algorithm 1 on coordinate j, other coordinates fixed.
    TuneResult coordinate =
        tuner.TuneCoordinate(problem, j, &result.lambdas, model.get());
    if (coordinate.model != nullptr) {
      model = std::move(coordinate.model);
      val_preds = problem.PredictVal(*model);
    }
    if (!coordinate.status.ok()) {
      // Budget expired or trainer failed mid-tune: stop climbing and report
      // the best model reached so far.
      result.status = coordinate.status;
      break;
    }
    if (coordinate.satisfied) {
      consecutive_failures = 0;
    } else if (++consecutive_failures >= 2) {
      // Two coordinate tunes in a row could not be satisfied even to their
      // minimum degree: the intersection of satisfactory regions is empty
      // along this path (retrying the same marginal is deterministic).
      break;
    }
  }

  if (!result.satisfied) {
    result.satisfied = problem.val_evaluator().MaxViolation(val_preds) <= 1e-12;
  }
  result.val_accuracy = problem.ValAccuracy(val_preds);
  result.val_fairness_parts = problem.val_evaluator().FairnessParts(val_preds);
  result.model = std::move(model);
  result.models_trained = problem.models_trained() - models_before;
  return result;
}

}  // namespace omnifair
