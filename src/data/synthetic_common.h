#ifndef OMNIFAIR_DATA_SYNTHETIC_COMMON_H_
#define OMNIFAIR_DATA_SYNTHETIC_COMMON_H_

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "util/random.h"

namespace omnifair {

/// Options shared by all synthetic dataset generators.
struct SyntheticOptions {
  /// Number of rows; 0 means the paper's dataset size (Table 4).
  size_t num_rows = 0;
  /// Seed for the generator; splits use their own seeds on top.
  uint64_t seed = 42;
};

namespace synthetic {

/// One demographic group of the sensitive attribute.
struct GroupSpec {
  std::string name;
  /// Relative population share (normalized internally).
  double proportion = 1.0;
  /// P(y = 1 | group): the group-dependent base rate that injects the bias
  /// every experiment in the paper measures.
  double positive_rate = 0.5;
};

/// A numeric feature sampled as
///   value = base_mean + label_shift * y + group_shift[g] + N(0, noise_sd),
/// clamped to [min_value, max_value] and optionally rounded to an integer.
/// label_shift makes the feature predictive of y; group_shift correlates it
/// with the sensitive attribute (redlining effect), so bias survives even if
/// the sensitive column is dropped from the feature matrix.
struct NumericFeatureSpec {
  std::string name;
  double base_mean = 0.0;
  double label_shift = 0.0;
  double noise_sd = 1.0;
  /// Per-group additive shift; empty means no group dependence.
  std::vector<double> group_shift;
  double min_value = -std::numeric_limits<double>::infinity();
  double max_value = std::numeric_limits<double>::infinity();
  bool round_to_int = false;
};

/// A categorical feature with label-conditional category distributions.
struct CategoricalFeatureSpec {
  std::string name;
  std::vector<std::string> categories;
  /// P(category | y = 0) and P(category | y = 1), unnormalized weights.
  std::vector<double> weights_y0;
  std::vector<double> weights_y1;
};

/// Full generative schema of a synthetic dataset.
struct Schema {
  std::string dataset_name;
  std::string sensitive_attribute;
  std::string label_name;
  std::vector<GroupSpec> groups;
  std::vector<NumericFeatureSpec> numeric_features;
  std::vector<CategoricalFeatureSpec> categorical_features;
  size_t default_num_rows = 10000;
};

/// Samples a dataset from the schema: group ~ proportions,
/// y ~ Bernoulli(positive_rate[group]), features per the specs above.
/// The sensitive attribute becomes a categorical column.
Dataset Generate(const Schema& schema, const SyntheticOptions& options);

}  // namespace synthetic
}  // namespace omnifair

#endif  // OMNIFAIR_DATA_SYNTHETIC_COMMON_H_
