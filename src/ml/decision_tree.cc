#include "ml/decision_tree.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/logging.h"
#include "util/telemetry.h"
#include "util/trace.h"

namespace omnifair {
namespace {

struct SplitCandidate {
  bool found = false;
  size_t feature = 0;
  double threshold = 0.0;
  double impurity_decrease = 0.0;
  /// Histogram mode only: split sends codes <= bin to the left child.
  int bin = -1;
};

double GiniImpurity(double w_pos, double w_total) {
  if (w_total <= 0.0) return 0.0;
  const double p = w_pos / w_total;
  return 2.0 * p * (1.0 - p);
}

class TreeBuilder {
 public:
  TreeBuilder(const Matrix& X, const std::vector<int>& y,
              const std::vector<double>& weights, const DecisionTreeOptions& options)
      : X_(X), y_(y), weights_(weights), options_(options), rng_(options.seed) {}

  std::vector<DecisionTreeModel::Node> Build() {
    std::vector<size_t> all(X_.rows());
    std::iota(all.begin(), all.end(), 0);
    BuildNode(std::move(all), /*depth=*/0);
    return std::move(nodes_);
  }

 private:
  int BuildNode(std::vector<size_t> samples, int depth) {
    double w_total = 0.0;
    double w_pos = 0.0;
    for (size_t i : samples) {
      w_total += weights_[i];
      if (y_[i] == 1) w_pos += weights_[i];
    }

    const int node_index = static_cast<int>(nodes_.size());
    nodes_.emplace_back();
    nodes_[node_index].probability = w_total > 0.0 ? w_pos / w_total : 0.5;

    const bool pure = w_pos <= 1e-12 || w_total - w_pos <= 1e-12;
    if (depth >= options_.max_depth || pure || w_total < options_.min_weight_split ||
        samples.size() < 2) {
      return node_index;
    }

    const SplitCandidate split = FindBestSplit(samples, w_pos, w_total);
    if (!split.found) return node_index;

    std::vector<size_t> left_samples;
    std::vector<size_t> right_samples;
    left_samples.reserve(samples.size());
    right_samples.reserve(samples.size());
    for (size_t i : samples) {
      if (X_(i, split.feature) <= split.threshold) {
        left_samples.push_back(i);
      } else {
        right_samples.push_back(i);
      }
    }
    if (left_samples.empty() || right_samples.empty()) return node_index;
    samples.clear();
    samples.shrink_to_fit();

    const int left = BuildNode(std::move(left_samples), depth + 1);
    const int right = BuildNode(std::move(right_samples), depth + 1);
    nodes_[node_index].is_leaf = false;
    nodes_[node_index].feature = static_cast<int>(split.feature);
    nodes_[node_index].threshold = split.threshold;
    nodes_[node_index].left = left;
    nodes_[node_index].right = right;
    return node_index;
  }

  SplitCandidate FindBestSplit(const std::vector<size_t>& samples, double w_pos,
                               double w_total) {
    const double parent_impurity = GiniImpurity(w_pos, w_total);
    SplitCandidate best;

    features_.resize(X_.cols());
    std::iota(features_.begin(), features_.end(), 0);
    size_t num_features = features_.size();
    if (options_.max_features > 0 && options_.max_features < num_features) {
      // Fisher-Yates prefix for a random feature subset.
      for (size_t i = 0; i < options_.max_features; ++i) {
        const size_t j = i + rng_.NextBounded(num_features - i);
        std::swap(features_[i], features_[j]);
      }
      num_features = options_.max_features;
    }

    order_.assign(samples.begin(), samples.end());
    for (size_t f_idx = 0; f_idx < num_features; ++f_idx) {
      const size_t feature = features_[f_idx];
      std::sort(order_.begin(), order_.end(), [this, feature](size_t a, size_t b) {
        return X_(a, feature) < X_(b, feature);
      });

      double left_total = 0.0;
      double left_pos = 0.0;
      for (size_t k = 0; k + 1 < order_.size(); ++k) {
        const size_t i = order_[k];
        left_total += weights_[i];
        if (y_[i] == 1) left_pos += weights_[i];
        const double value = X_(i, feature);
        const double next_value = X_(order_[k + 1], feature);
        if (next_value <= value) continue;  // no boundary between equal values

        const double right_total = w_total - left_total;
        const double right_pos = w_pos - left_pos;
        if (left_total < options_.min_weight_leaf ||
            right_total < options_.min_weight_leaf) {
          continue;
        }
        const double weighted_child_impurity =
            (left_total * GiniImpurity(left_pos, left_total) +
             right_total * GiniImpurity(right_pos, right_total)) /
            w_total;
        const double decrease = parent_impurity - weighted_child_impurity;
        if (decrease > best.impurity_decrease + 1e-12) {
          best.found = true;
          best.feature = feature;
          best.threshold = 0.5 * (value + next_value);
          best.impurity_decrease = decrease;
        }
      }
    }
    return best;
  }

  const Matrix& X_;
  const std::vector<int>& y_;
  const std::vector<double>& weights_;
  const DecisionTreeOptions& options_;
  Rng rng_;
  std::vector<DecisionTreeModel::Node> nodes_;
  /// Per-node scratch, hoisted so split search does not allocate per node.
  std::vector<size_t> features_;
  std::vector<size_t> order_;
};

/// Histogram-mode builder (DESIGN.md §11): split search scans per-feature
/// bin histograms instead of sorting, and each split rescans only the
/// smaller child (the larger child's histogram is parent minus sibling).
/// Stopping rules, impurity arithmetic, and tie-breaking mirror TreeBuilder;
/// only the candidate threshold set differs (bin boundaries of the full X
/// instead of midpoints of node-local values).
class HistTreeBuilder {
 public:
  HistTreeBuilder(const Matrix& X, const std::vector<int>& y,
                  const std::vector<double>& weights,
                  const DecisionTreeOptions& options,
                  std::shared_ptr<const BinnedMatrix> binned)
      : X_(X),
        y_(y),
        weights_(weights),
        options_(options),
        binned_(std::move(binned)),
        stride_(static_cast<size_t>(binned_->max_bins())),
        rng_(options.seed) {
    pos_weights_.resize(weights_.size());
    for (size_t i = 0; i < weights_.size(); ++i) {
      pos_weights_[i] = y_[i] == 1 ? weights_[i] : 0.0;
    }
  }

  std::vector<DecisionTreeModel::Node> Build() {
    std::vector<size_t> all(X_.rows());
    std::iota(all.begin(), all.end(), 0);
    NodeHistogram root;
    FillNodeHistogram(*binned_, all, weights_.data(), pos_weights_.data(),
                      options_.num_threads, &root);
    BuildNode(std::move(all), std::move(root), /*depth=*/0);
    return std::move(nodes_);
  }

 private:
  int BuildNode(std::vector<size_t> samples, NodeHistogram hist, int depth) {
    double w_total = 0.0;
    double w_pos = 0.0;
    for (size_t i : samples) {
      w_total += weights_[i];
      if (y_[i] == 1) w_pos += weights_[i];
    }

    const int node_index = static_cast<int>(nodes_.size());
    nodes_.emplace_back();
    nodes_[node_index].probability = w_total > 0.0 ? w_pos / w_total : 0.5;

    const bool pure = w_pos <= 1e-12 || w_total - w_pos <= 1e-12;
    if (depth >= options_.max_depth || pure || w_total < options_.min_weight_split ||
        samples.size() < 2) {
      return node_index;
    }

    const SplitCandidate split = FindBestSplit(hist, w_pos, w_total);
    if (!split.found) return node_index;

    const uint8_t* codes = binned_->Column(split.feature);
    std::vector<size_t> left_samples;
    std::vector<size_t> right_samples;
    left_samples.reserve(samples.size());
    right_samples.reserve(samples.size());
    for (size_t i : samples) {
      if (codes[i] <= split.bin) {
        left_samples.push_back(i);
      } else {
        right_samples.push_back(i);
      }
    }
    if (left_samples.empty() || right_samples.empty()) return node_index;
    samples.clear();
    samples.shrink_to_fit();

    // Scan only the smaller child; the larger one inherits parent - sibling.
    const bool left_is_smaller = left_samples.size() <= right_samples.size();
    NodeHistogram small_hist;
    FillNodeHistogram(*binned_, left_is_smaller ? left_samples : right_samples,
                      weights_.data(), pos_weights_.data(), options_.num_threads,
                      &small_hist);
    hist.SubtractSibling(small_hist);
    NodeHistogram left_hist = left_is_smaller ? std::move(small_hist) : std::move(hist);
    NodeHistogram right_hist =
        left_is_smaller ? std::move(hist) : std::move(small_hist);

    const int left = BuildNode(std::move(left_samples), std::move(left_hist), depth + 1);
    const int right =
        BuildNode(std::move(right_samples), std::move(right_hist), depth + 1);
    nodes_[node_index].is_leaf = false;
    nodes_[node_index].feature = static_cast<int>(split.feature);
    nodes_[node_index].threshold = split.threshold;
    nodes_[node_index].left = left;
    nodes_[node_index].right = right;
    return node_index;
  }

  SplitCandidate FindBestSplit(const NodeHistogram& hist, double w_pos,
                               double w_total) {
    const double parent_impurity = GiniImpurity(w_pos, w_total);
    SplitCandidate best;

    features_.resize(X_.cols());
    std::iota(features_.begin(), features_.end(), 0);
    size_t num_features = features_.size();
    if (options_.max_features > 0 && options_.max_features < num_features) {
      for (size_t i = 0; i < options_.max_features; ++i) {
        const size_t j = i + rng_.NextBounded(num_features - i);
        std::swap(features_[i], features_[j]);
      }
      num_features = options_.max_features;
    }

    for (size_t f_idx = 0; f_idx < num_features; ++f_idx) {
      const size_t feature = features_[f_idx];
      const int num_bins = binned_->NumBins(feature);
      const double* w = hist.first.data() + feature * stride_;
      const double* wp = hist.second.data() + feature * stride_;
      double left_total = 0.0;
      double left_pos = 0.0;
      for (int b = 0; b + 1 < num_bins; ++b) {
        left_total += w[b];
        left_pos += wp[b];
        const double right_total = w_total - left_total;
        const double right_pos = w_pos - left_pos;
        if (left_total < options_.min_weight_leaf ||
            right_total < options_.min_weight_leaf) {
          continue;
        }
        const double weighted_child_impurity =
            (left_total * GiniImpurity(left_pos, left_total) +
             right_total * GiniImpurity(right_pos, right_total)) /
            w_total;
        const double decrease = parent_impurity - weighted_child_impurity;
        if (decrease > best.impurity_decrease + 1e-12) {
          best.found = true;
          best.feature = feature;
          best.threshold = binned_->Boundary(feature, b);
          best.impurity_decrease = decrease;
          best.bin = b;
        }
      }
    }
    return best;
  }

  const Matrix& X_;
  const std::vector<int>& y_;
  const std::vector<double>& weights_;
  const DecisionTreeOptions& options_;
  std::shared_ptr<const BinnedMatrix> binned_;
  const size_t stride_;
  Rng rng_;
  std::vector<double> pos_weights_;
  std::vector<DecisionTreeModel::Node> nodes_;
  std::vector<size_t> features_;
};

}  // namespace

DecisionTreeModel::DecisionTreeModel(std::vector<Node> nodes)
    : nodes_(std::move(nodes)) {
  OF_CHECK(!nodes_.empty());
}

namespace {

/// Shared traversal over either feature-element width; comparisons widen the
/// stored element to double, so float32 rows route exactly like double rows
/// whose values were narrowed at encode time.
template <typename T>
int TraverseToLeaf(const std::vector<DecisionTreeModel::Node>& nodes,
                   const T* row) {
  int index = 0;
  while (!nodes[index].is_leaf) {
    const DecisionTreeModel::Node& node = nodes[index];
    index = static_cast<double>(row[node.feature]) <= node.threshold ? node.left
                                                                     : node.right;
  }
  return index;
}

}  // namespace

double DecisionTreeModel::PredictRow(const double* row) const {
  return nodes_[TraverseToLeaf(nodes_, row)].probability;
}

double DecisionTreeModel::PredictRow(const float* row) const {
  return nodes_[TraverseToLeaf(nodes_, row)].probability;
}

std::vector<double> DecisionTreeModel::PredictProba(const Matrix& X) const {
  std::vector<double> proba(X.rows());
  if (X.is_float32()) {
    for (size_t i = 0; i < X.rows(); ++i) proba[i] = PredictRow(X.RowF(i));
  } else {
    for (size_t i = 0; i < X.rows(); ++i) proba[i] = PredictRow(X.Row(i));
  }
  return proba;
}

void DecisionTreeModel::AccumulateProba(const Matrix& X, size_t row_begin,
                                        size_t row_end,
                                        std::vector<double>& proba) const {
  if (X.is_float32()) {
    for (size_t i = row_begin; i < row_end; ++i) proba[i] += PredictRow(X.RowF(i));
  } else {
    for (size_t i = row_begin; i < row_end; ++i) proba[i] += PredictRow(X.Row(i));
  }
}

int DecisionTreeModel::Depth() const {
  // Iterative depth computation over the flat array.
  std::vector<int> depth(nodes_.size(), 0);
  int max_depth = 0;
  for (size_t i = 0; i < nodes_.size(); ++i) {
    if (!nodes_[i].is_leaf) {
      depth[nodes_[i].left] = depth[i] + 1;
      depth[nodes_[i].right] = depth[i] + 1;
    }
    max_depth = std::max(max_depth, depth[i]);
  }
  return max_depth;
}

DecisionTreeTrainer::DecisionTreeTrainer(DecisionTreeOptions options)
    : options_(options), bin_cache_(std::make_shared<BinningCache>()) {}

std::unique_ptr<Trainer> DecisionTreeTrainer::Clone() const {
  auto clone = std::make_unique<DecisionTreeTrainer>(options_);
  clone->bin_cache_ = bin_cache_;
  clone->preset_binned_ = preset_binned_;
  return clone;
}

std::unique_ptr<Classifier> DecisionTreeTrainer::Fit(
    const Matrix& X, const std::vector<int>& y, const std::vector<double>& weights) {
  OF_CHECK_EQ(X.rows(), y.size());
  OF_CHECK_EQ(X.rows(), weights.size());
  OF_CHECK_GT(X.rows(), 0u);
  OF_TRACE_SPAN("fit/dt");
  OF_SCOPED_LATENCY_US("ml.fit_us.dt");
  if (options_.split_method == SplitMethod::kHistogram) {
    std::shared_ptr<const BinnedMatrix> binned = preset_binned_;
    if (binned == nullptr || !binned->Matches(X, options_.max_bins)) {
      binned = bin_cache_->GetOrBuild(X, options_.max_bins, options_.num_threads);
    }
    HistTreeBuilder builder(X, y, weights, options_, std::move(binned));
    return std::make_unique<DecisionTreeModel>(builder.Build());
  }
  TreeBuilder builder(X, y, weights, options_);
  return std::make_unique<DecisionTreeModel>(builder.Build());
}

}  // namespace omnifair
