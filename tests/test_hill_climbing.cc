#include "core/hill_climbing.h"

#include <cmath>

#include <gtest/gtest.h>

#include "core/grid_search.h"
#include "data/datasets.h"
#include "data/split.h"
#include "ml/logistic_regression.h"
#include "tests/testing_fairness.h"

namespace omnifair {
namespace {

using testing_fairness::MakeBiasedDataset;

std::unique_ptr<FairnessProblem> ThreeGroupProblem(Trainer* trainer,
                                                   double epsilon) {
  SyntheticOptions options;
  options.num_rows = 4000;
  options.seed = 3;
  const Dataset d = MakeCompasDataset(options);
  const TrainValTestSplit split = SplitDefault(d, 11);
  FairnessSpec spec = MakeSpec(
      GroupByAttributeValues("race", {"African-American", "Caucasian", "Hispanic"}),
      "sp", epsilon);
  auto problem = FairnessProblem::Create(split.train, split.val, {spec}, trainer);
  EXPECT_TRUE(problem.ok()) << problem.status();
  return std::move(*problem);
}

TEST(HillClimbingTest, ThreeGroupSpConverges) {
  LogisticRegressionTrainer trainer;
  auto problem = ThreeGroupProblem(&trainer, 0.05);
  EXPECT_EQ(problem->NumConstraints(), 3u);  // C(3,2)
  const HillClimber climber;
  MultiTuneResult result = climber.Run(*problem);
  ASSERT_NE(result.model, nullptr);
  EXPECT_TRUE(result.satisfied);
  for (double fp : result.val_fairness_parts) {
    EXPECT_LE(std::fabs(fp), 0.05 + 1e-9);
  }
}

TEST(HillClimbingTest, TwoMetricsOnSameGroups) {
  // Moderate base-rate gap: SP + FNR parity are simultaneously feasible
  // here (a large gap such as 0.7 vs 0.25 makes them mutually exclusive —
  // the Kleinberg et al. impossibility the paper's §6 discusses).
  const Dataset data = MakeBiasedDataset(3000, 0.55, 0.40, 5, /*feature_shift=*/1.5);
  std::vector<size_t> train_idx;
  std::vector<size_t> val_idx;
  for (size_t i = 0; i < 2000; ++i) train_idx.push_back(i);
  for (size_t i = 2000; i < 3000; ++i) val_idx.push_back(i);
  LogisticRegressionTrainer trainer;
  auto problem = FairnessProblem::Create(
      data.SelectRows(train_idx), data.SelectRows(val_idx),
      {MakeSpec(GroupByAttribute("grp"), "sp", 0.05),
       MakeSpec(GroupByAttribute("grp"), "fnr", 0.10)},
      &trainer);
  ASSERT_TRUE(problem.ok());
  const HillClimber climber;
  MultiTuneResult result = climber.Run(**problem);
  ASSERT_NE(result.model, nullptr);
  EXPECT_TRUE(result.satisfied);
  EXPECT_LE(std::fabs(result.val_fairness_parts[0]), 0.05 + 1e-9);
  EXPECT_LE(std::fabs(result.val_fairness_parts[1]), 0.10 + 1e-9);
}

TEST(HillClimbingTest, UnconstrainedCaseTerminatesImmediately) {
  const Dataset train = MakeBiasedDataset(500, 0.5, 0.5, 6);
  LogisticRegressionTrainer trainer;
  auto problem = FairnessProblem::Create(
      train, train,
      {MakeSpec(GroupByAttribute("grp"), "sp", 0.5),
       MakeSpec(GroupByAttribute("grp"), "mr", 0.5)},
      &trainer);
  ASSERT_TRUE(problem.ok());
  const HillClimber climber;
  MultiTuneResult result = climber.Run(**problem);
  EXPECT_TRUE(result.satisfied);
  EXPECT_EQ(result.iterations, 0);
  EXPECT_EQ(result.models_trained, 1);
  for (double lambda : result.lambdas) EXPECT_DOUBLE_EQ(lambda, 0.0);
}

TEST(HillClimbingTest, IterationCapRespected) {
  // Impossible pair of constraints at epsilon ~ 0 forces the cap.
  const Dataset train = MakeBiasedDataset(600, 0.9, 0.1, 7);
  LogisticRegressionTrainer trainer;
  auto problem = FairnessProblem::Create(
      train, train,
      {MakeSpec(GroupByAttribute("grp"), "sp", 0.0),
       MakeSpec(GroupByAttribute("grp"), "fnr", 0.0)},
      &trainer);
  ASSERT_TRUE(problem.ok());
  HillClimbOptions options;
  options.max_iterations_factor = 2;
  options.tune.max_doublings = 3;
  options.tune.tau = 0.05;
  const HillClimber climber(options);
  MultiTuneResult result = climber.Run(**problem);
  ASSERT_NE(result.model, nullptr);
  EXPECT_LE(result.iterations, 4);  // 2 * k = 4
}

TEST(GridSearchTest, FindsSatisfyingPointWhenExists) {
  // Mild separability keeps the lambda -> FP response smooth enough for a
  // 33-point grid to land inside the band (a coarse grid on steep data
  // misses it — exactly the NA(1) failure mode Table 5 shows for Celis).
  const Dataset data = MakeBiasedDataset(2000, 0.6, 0.4, 8, /*feature_shift=*/1.2);
  std::vector<size_t> train_idx;
  std::vector<size_t> val_idx;
  for (size_t i = 0; i < 1400; ++i) train_idx.push_back(i);
  for (size_t i = 1400; i < 2000; ++i) val_idx.push_back(i);
  LogisticRegressionTrainer trainer;
  auto problem = FairnessProblem::Create(
      data.SelectRows(train_idx), data.SelectRows(val_idx),
      {MakeSpec(GroupByAttribute("grp"), "sp", 0.05)}, &trainer);
  ASSERT_TRUE(problem.ok());
  GridSearchOptions options;
  options.points_per_dim = 33;
  const GridSearchTuner grid(options);
  MultiTuneResult result = grid.Run(**problem);
  EXPECT_TRUE(result.satisfied);
  EXPECT_LE(std::fabs(result.val_fairness_parts[0]), 0.05 + 1e-9);
  EXPECT_EQ(result.models_trained, 33 + 1);  // grid + base model
}

TEST(GridSearchTest, CollectsAllPoints) {
  const Dataset train = MakeBiasedDataset(500, 0.6, 0.35, 9);
  LogisticRegressionTrainer trainer;
  auto problem = FairnessProblem::Create(
      train, train, {MakeSpec(GroupByAttribute("grp"), "sp", 0.05)}, &trainer);
  ASSERT_TRUE(problem.ok());
  GridSearchOptions options;
  options.points_per_dim = 5;
  const GridSearchTuner grid(options);
  std::vector<GridPoint> points;
  (void)grid.RunCollecting(**problem, &points);
  ASSERT_EQ(points.size(), 5u);
  // Lambdas span [-max, max].
  EXPECT_DOUBLE_EQ(points.front().lambdas[0], -1.0);
  EXPECT_DOUBLE_EQ(points.back().lambdas[0], 1.0);
}

TEST(GridSearchTest, HillClimbingUsesFewerModelsThanGrid) {
  LogisticRegressionTrainer trainer_hc;
  auto problem_hc = ThreeGroupProblem(&trainer_hc, 0.05);
  const HillClimber climber;
  MultiTuneResult hc = climber.Run(*problem_hc);

  LogisticRegressionTrainer trainer_grid;
  auto problem_grid = ThreeGroupProblem(&trainer_grid, 0.05);
  GridSearchOptions options;
  options.points_per_dim = 7;  // 7^3 = 343 fits
  const GridSearchTuner grid(options);
  MultiTuneResult gs = grid.Run(*problem_grid);

  EXPECT_LT(hc.models_trained, gs.models_trained);
}

}  // namespace
}  // namespace omnifair
