#ifndef OMNIFAIR_BASELINES_CMAES_H_
#define OMNIFAIR_BASELINES_CMAES_H_

#include <cstdint>
#include <functional>
#include <vector>

namespace omnifair {

/// Options for the CMA-ES optimizer.
struct CmaesOptions {
  int max_iterations = 250;
  /// Initial step size.
  double sigma = 0.5;
  /// Population size; 0 means the standard 4 + floor(3 ln d).
  int population = 0;
  /// Stop when the best objective improves less than this over a window.
  double tolerance = 1e-10;
  uint64_t seed = 31;
};

/// Result of a CMA-ES run.
struct CmaesResult {
  std::vector<double> best_x;
  double best_value = 0.0;
  int iterations = 0;
  long long evaluations = 0;
};

/// Covariance Matrix Adaptation Evolution Strategy (minimization), the
/// derivative-free optimizer behind Thomas et al. [43]'s Seldonian
/// framework. Full rank-1 + rank-mu covariance adaptation with cumulative
/// step-size control; eigendecomposition by cyclic Jacobi (dimensions here
/// are small: one weight per encoded feature).
class Cmaes {
 public:
  using Objective = std::function<double(const std::vector<double>&)>;

  explicit Cmaes(CmaesOptions options = {});

  /// Minimizes `objective` starting from x0.
  CmaesResult Minimize(const Objective& objective, const std::vector<double>& x0);

 private:
  CmaesOptions options_;
};

}  // namespace omnifair

#endif  // OMNIFAIR_BASELINES_CMAES_H_
