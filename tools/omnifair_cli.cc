// omnifair_cli — train, audit, and deploy fairness-constrained models from
// the command line without writing any C++.
//
//   # Generate a synthetic benchmark dataset as CSV:
//   omnifair_cli synth --dataset compas --rows 8000 --out compas.csv
//
//   # Train under a declarative constraint and save the bundle:
//   omnifair_cli train --data compas.csv --label two_year_recid \
//       --sensitive race --metric sp --epsilon 0.03 --model lr \
//       --out fair_model.txt
//
//   # Profile a dataset's columns and group base rates:
//   omnifair_cli profile --data compas.csv --label two_year_recid \
//       --sensitive race
//
//   # Audit a saved bundle on fresh data:
//   omnifair_cli audit --data holdout.csv --label two_year_recid \
//       --sensitive race --metric sp --epsilon 0.03 \
//       --model-file fair_model.txt
//
// Metrics: sp, mr, fpr, fnr, for, fdr. Models: lr, dt, rf, xgb, nn, nb.

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "core/omnifair.h"
#include "data/csv.h"
#include "data/datasets.h"
#include "data/profile.h"
#include "data/split.h"
#include "ml/trainer_registry.h"
#include "util/string_utils.h"
#include "util/telemetry.h"

namespace omnifair {
namespace cli {
namespace {

struct Args {
  std::string command;
  std::map<std::string, std::string> flags;

  std::string Get(const std::string& key, const std::string& fallback = "") const {
    auto it = flags.find(key);
    return it != flags.end() ? it->second : fallback;
  }
  double GetDouble(const std::string& key, double fallback) const {
    auto it = flags.find(key);
    if (it == flags.end()) return fallback;
    double value = fallback;
    ParseDouble(it->second, &value);
    return value;
  }
  long GetLong(const std::string& key, long fallback) const {
    auto it = flags.find(key);
    return it != flags.end() ? std::atol(it->second.c_str()) : fallback;
  }
  bool Has(const std::string& key) const { return flags.count(key) > 0; }
};

int Usage() {
  std::fprintf(stderr,
               "usage: omnifair_cli <command> [--flag value ...]\n"
               "commands:\n"
               "  synth --dataset {adult|compas|lsac|bank} [--rows N] [--seed S]\n"
               "        --out data.csv\n"
               "  train --data data.csv --label COLUMN --sensitive COLUMN\n"
               "        [--metric sp] [--epsilon 0.05] [--model lr] [--seed S]\n"
               "        [--positive-label VALUE] [--out model.txt]\n"
               "        [--checkpoint ckpt.bin] [--checkpoint-interval SECONDS]\n"
               "        [--resume [ckpt.bin]]   (resume a killed tuning run)\n"
               "        [--profile-out profile.json]\n"
               "  explain  (train + per-stage run profile; same flags as train)\n"
               "  profile --data data.csv --label COLUMN [--sensitive COLUMN]\n"
               "  audit --data data.csv --label COLUMN --sensitive COLUMN\n"
               "        [--metric sp] [--epsilon 0.05] [--positive-label VALUE]\n"
               "        --model-file model.txt\n");
  return 2;
}

Result<Dataset> LoadCsvDataset(const Args& args) {
  CsvReadOptions options;
  options.label_column = args.Get("label", "label");
  options.positive_label_value = args.Get("positive-label");
  options.force_categorical = {args.Get("sensitive")};
  return ReadCsv(args.Get("data"), options);
}

int RunSynth(const Args& args) {
  const std::string name = args.Get("dataset");
  const std::string out = args.Get("out");
  if (name.empty() || out.empty()) return Usage();
  SyntheticOptions options;
  options.num_rows = static_cast<size_t>(args.GetLong("rows", 0));
  options.seed = static_cast<uint64_t>(args.GetLong("seed", 42));
  const Dataset dataset = MakeDatasetByName(name, options);
  const Status status = WriteCsv(dataset, out);
  if (!status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("wrote %zu rows x %zu columns to %s\n", dataset.NumRows(),
              dataset.NumColumns() + 1, out.c_str());
  return 0;
}

/// Writes the run profile JSON for --profile-out; shared by train/explain.
int WriteProfileOut(const FairModel& fair, const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "error: cannot open %s\n", path.c_str());
    return 1;
  }
  out << fair.run_profile.ToJson() << "\n";
  if (!out.flush()) {
    std::fprintf(stderr, "error: cannot write %s\n", path.c_str());
    return 1;
  }
  std::printf("wrote run profile   : %s\n", path.c_str());
  return 0;
}

/// `explain` is train plus a per-stage profile dump: same flags, same exit
/// codes, with the RunProfile table printed after the training summary.
int RunTrain(const Args& args, bool explain) {
  if (!args.Has("data") || !args.Has("sensitive")) return Usage();
  Result<Dataset> dataset = LoadCsvDataset(args);
  if (!dataset.ok()) {
    std::fprintf(stderr, "error: %s\n", dataset.status().ToString().c_str());
    return 1;
  }
  const uint64_t seed = static_cast<uint64_t>(args.GetLong("seed", 42));
  const TrainValTestSplit split = SplitDefault(*dataset, seed);

  FairnessSpec spec = MakeSpec(GroupByAttribute(args.Get("sensitive")),
                               args.Get("metric", "sp"),
                               args.GetDouble("epsilon", 0.05));
  auto trainer = MakeTrainer(args.Get("model", "lr"), seed);
  OmniFairOptions options;
  options.checkpoint.path = args.Get("checkpoint");
  options.checkpoint.interval_s = args.GetDouble("checkpoint-interval", 0.0);
  if (args.Has("resume")) {
    // Bare --resume reuses the --checkpoint file; --resume FILE overrides.
    const std::string resume = args.Get("resume");
    options.checkpoint.resume_from =
        resume == "1" ? options.checkpoint.path : resume;
    if (options.checkpoint.resume_from.empty()) {
      std::fprintf(stderr,
                   "error: --resume needs --checkpoint PATH or --resume FILE\n");
      return 2;
    }
  }
  OmniFair omnifair(options);
  auto fair = omnifair.Train(split.train, split.val, trainer.get(), {spec});
  if (!fair.ok()) {
    std::fprintf(stderr, "error: %s\n", fair.status().ToString().c_str());
    return 1;
  }

  std::printf("constraints induced : %zu\n", fair->lambdas.size());
  std::printf("satisfied (val)     : %s\n", fair->satisfied ? "yes" : "no");
  std::printf("validation accuracy : %.2f%%\n", 100.0 * fair->val_accuracy);
  std::printf("model fits          : %d (%.2fs)\n", fair->models_trained,
              fair->train_seconds);
  if (explain) std::printf("\n%s\n", fair->run_profile.ToText().c_str());

  auto audit = Audit(*fair->model, fair->encoder, split.test, {spec});
  if (audit.ok()) {
    std::printf("test accuracy       : %.2f%%\n", 100.0 * audit->accuracy);
    std::printf("test ROC AUC        : %.3f\n", audit->roc_auc);
    for (size_t j = 0; j < audit->constraint_labels.size(); ++j) {
      std::printf("test disparity      : %-36s %.4f\n",
                  audit->constraint_labels[j].c_str(),
                  std::abs(audit->fairness_parts[j]));
    }
  }

  const std::string out = args.Get("out");
  if (!out.empty()) {
    const Status status = SaveFairModel(*fair, out);
    if (!status.ok()) {
      std::fprintf(stderr, "error saving model: %s\n", status.ToString().c_str());
      return 1;
    }
    std::printf("saved model bundle  : %s\n", out.c_str());
  }
  const std::string profile_out = args.Get("profile-out");
  if (!profile_out.empty()) {
    const int status = WriteProfileOut(*fair, profile_out);
    if (status != 0) return status;
  }
  return fair->satisfied ? 0 : 3;  // 3 = trained but constraint infeasible
}

int RunProfile(const Args& args) {
  if (!args.Has("data")) return Usage();
  Result<Dataset> dataset = LoadCsvDataset(args);
  if (!dataset.ok()) {
    std::fprintf(stderr, "error: %s\n", dataset.status().ToString().c_str());
    return 1;
  }
  const DatasetProfile profile = ProfileDataset(*dataset, args.Get("sensitive"));
  std::printf("%s", profile.ToString().c_str());
  return 0;
}

int RunAudit(const Args& args) {
  if (!args.Has("data") || !args.Has("sensitive") || !args.Has("model-file")) {
    return Usage();
  }
  Result<Dataset> dataset = LoadCsvDataset(args);
  if (!dataset.ok()) {
    std::fprintf(stderr, "error: %s\n", dataset.status().ToString().c_str());
    return 1;
  }
  Result<FairModel> fair = LoadFairModel(args.Get("model-file"));
  if (!fair.ok()) {
    std::fprintf(stderr, "error: %s\n", fair.status().ToString().c_str());
    return 1;
  }
  const FairnessSpec spec = MakeSpec(GroupByAttribute(args.Get("sensitive")),
                                     args.Get("metric", "sp"),
                                     args.GetDouble("epsilon", 0.05));
  auto audit = Audit(*fair->model, fair->encoder, *dataset, {spec});
  if (!audit.ok()) {
    std::fprintf(stderr, "error: %s\n", audit.status().ToString().c_str());
    return 1;
  }
  std::printf("rows audited: %zu\n%s", dataset->NumRows(),
              audit->ToString().c_str());
  return audit->satisfied ? 0 : 3;
}

int Main(int argc, char** argv) {
  if (argc < 2) return Usage();
  Args args;
  args.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    std::string key = argv[i];
    if (key.rfind("--", 0) != 0) return Usage();
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      args.flags[key.substr(2)] = argv[++i];
    } else {
      // Valueless switch (e.g. a bare --resume): stored as "1".
      args.flags[key.substr(2)] = "1";
    }
  }
  if (args.command == "synth") return RunSynth(args);
  if (args.command == "profile") return RunProfile(args);
  if (args.command == "train") return RunTrain(args, /*explain=*/false);
  if (args.command == "explain") return RunTrain(args, /*explain=*/true);
  if (args.command == "audit") return RunAudit(args);
  return Usage();
}

}  // namespace
}  // namespace cli
}  // namespace omnifair

int main(int argc, char** argv) {
  // Honor OMNIFAIR_TELEMETRY / OMNIFAIR_METRICS_OUT like the benches do.
  omnifair::InitTelemetryFromEnv();
  return omnifair::cli::Main(argc, argv);
}
