#ifndef OMNIFAIR_BASELINES_THOMAS_H_
#define OMNIFAIR_BASELINES_THOMAS_H_

#include "baselines/baseline.h"

namespace omnifair {

/// Thomas et al. [43] (Science 2019) Seldonian-style baseline.
///
/// The framework designs new ML algorithms that accept behavioural
/// constraints directly; its released instantiation trains a linear
/// classifier with CMA-ES on a fairness-penalized objective. We reproduce
/// that: CMA-ES (see cmaes.h) minimizes
///     -train_accuracy + rho * max(0, |FP| - margin * epsilon)
/// over linear-model parameters, then verifies the constraint on the
/// validation split (the Seldonian safety test). As in the paper's Table 5,
/// the method brings its own model family — SupportsTrainer is false for
/// every standard trainer (NA(2)*), and benches run it as its own column.
class ThomasSeldonian : public FairnessBaseline {
 public:
  struct Options {
    double penalty = 20.0;
    /// Train-side tightening of epsilon so the validation test passes.
    double margin = 0.8;
    int cmaes_iterations = 120;
    uint64_t seed = 67;
  };

  explicit ThomasSeldonian(Options options);
  ThomasSeldonian() : ThomasSeldonian(Options()) {}

  std::string Name() const override { return "thomas"; }
  bool SupportsMetric(const FairnessMetric& metric) const override;
  bool SupportsTrainer(const Trainer& trainer) const override { return false; }
  /// `trainer` is ignored (may be null): the method trains its own linear
  /// model via CMA-ES.
  Result<BaselineResult> Train(const Dataset& train, const Dataset& val,
                               Trainer* trainer, const FairnessSpec& spec) override;

 private:
  Options options_;
};

}  // namespace omnifair

#endif  // OMNIFAIR_BASELINES_THOMAS_H_
