#include "linalg/vector_ops.h"

#include <cmath>

#include "util/logging.h"

namespace omnifair {

double Dot(const std::vector<double>& a, const std::vector<double>& b) {
  OF_CHECK_EQ(a.size(), b.size());
  const size_t n = a.size();
  const double* pa = a.data();
  const double* pb = b.data();
  // Four independent accumulators break the loop-carried add dependency so
  // the FP units pipeline; the sum order differs from a single accumulator
  // by O(eps) — callers treat Dot as an unordered reduction.
  double acc0 = 0.0;
  double acc1 = 0.0;
  double acc2 = 0.0;
  double acc3 = 0.0;
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    acc0 += pa[i] * pb[i];
    acc1 += pa[i + 1] * pb[i + 1];
    acc2 += pa[i + 2] * pb[i + 2];
    acc3 += pa[i + 3] * pb[i + 3];
  }
  double acc = (acc0 + acc1) + (acc2 + acc3);
  for (; i < n; ++i) acc += pa[i] * pb[i];
  return acc;
}

double Norm2(const std::vector<double>& v) { return std::sqrt(Dot(v, v)); }

void Axpy(double scale, const std::vector<double>& b, std::vector<double>* a) {
  OF_CHECK_EQ(a->size(), b.size());
  const size_t n = b.size();
  double* pa = a->data();
  const double* pb = b.data();
  // Elementwise, so unrolling only widens the window for the scheduler —
  // every a[i] gets exactly the same update as the plain loop.
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    pa[i] += scale * pb[i];
    pa[i + 1] += scale * pb[i + 1];
    pa[i + 2] += scale * pb[i + 2];
    pa[i + 3] += scale * pb[i + 3];
  }
  for (; i < n; ++i) pa[i] += scale * pb[i];
}

void Scale(double scale, std::vector<double>* v) {
  for (double& x : *v) x *= scale;
}

double Sum(const std::vector<double>& v) {
  double acc = 0.0;
  for (double x : v) acc += x;
  return acc;
}

double Mean(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  return Sum(v) / static_cast<double>(v.size());
}

double StdDev(const std::vector<double>& v) {
  if (v.size() < 2) return 0.0;
  const double mean = Mean(v);
  double acc = 0.0;
  for (double x : v) acc += (x - mean) * (x - mean);
  return std::sqrt(acc / static_cast<double>(v.size()));
}

double Sigmoid(double z) {
  if (z >= 0.0) {
    const double e = std::exp(-z);
    return 1.0 / (1.0 + e);
  }
  const double e = std::exp(z);
  return e / (1.0 + e);
}

double Log1pExp(double z) {
  if (z > 35.0) return z;
  if (z < -35.0) return std::exp(z);
  return std::log1p(std::exp(z));
}

}  // namespace omnifair
