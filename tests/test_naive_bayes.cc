#include "ml/naive_bayes.h"

#include <gtest/gtest.h>

#include "ml/trainer_registry.h"
#include "tests/testing_data.h"

namespace omnifair {
namespace {

using testing_data::Blobs;
using testing_data::MakeBlobs;
using testing_data::TrainAccuracy;

TEST(NaiveBayesTest, LearnsSeparableData) {
  const Blobs blobs = MakeBlobs(500, 2.0, 1);
  NaiveBayesTrainer trainer;
  const auto model = trainer.Fit(blobs.X, blobs.y, blobs.unit_weights);
  EXPECT_GE(TrainAccuracy(*model, blobs), 0.97);
}

TEST(NaiveBayesTest, Deterministic) {
  const Blobs blobs = MakeBlobs(300, 1.0, 2);
  NaiveBayesTrainer a;
  NaiveBayesTrainer b;
  EXPECT_EQ(a.Fit(blobs.X, blobs.y, blobs.unit_weights)->PredictProba(blobs.X),
            b.Fit(blobs.X, blobs.y, blobs.unit_weights)->PredictProba(blobs.X));
}

TEST(NaiveBayesTest, ProbabilitiesInRange) {
  const Blobs blobs = MakeBlobs(200, 0.5, 3);
  NaiveBayesTrainer trainer;
  for (double p : trainer.Fit(blobs.X, blobs.y, blobs.unit_weights)
                      ->PredictProba(blobs.X)) {
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
  }
}

TEST(NaiveBayesTest, WeightsShiftPrior) {
  const Blobs blobs = MakeBlobs(400, 0.5, 4);
  NaiveBayesTrainer trainer;
  const auto base = trainer.Fit(blobs.X, blobs.y, blobs.unit_weights);
  std::vector<double> boosted(blobs.y.size());
  for (size_t i = 0; i < blobs.y.size(); ++i) {
    boosted[i] = blobs.y[i] == 1 ? 10.0 : 1.0;
  }
  const auto heavy = trainer.Fit(blobs.X, blobs.y, boosted);
  double base_rate = 0.0;
  double heavy_rate = 0.0;
  for (int p : base->Predict(blobs.X)) base_rate += p;
  for (int p : heavy->Predict(blobs.X)) heavy_rate += p;
  EXPECT_GT(heavy_rate, base_rate);
}

TEST(NaiveBayesTest, ZeroWeightExamplesIgnored) {
  Blobs blobs = MakeBlobs(400, 2.5, 5);
  Blobs corrupted = blobs;
  std::vector<double> weights(blobs.y.size(), 1.0);
  for (size_t i = 0; i < blobs.y.size(); i += 2) {
    corrupted.y[i] = 1 - corrupted.y[i];
    weights[i] = 0.0;
  }
  NaiveBayesTrainer trainer;
  const auto model = trainer.Fit(corrupted.X, corrupted.y, weights);
  EXPECT_GE(TrainAccuracy(*model, blobs), 0.95);
}

TEST(NaiveBayesTest, SingleClassDataDoesNotCrash) {
  Blobs blobs = MakeBlobs(50, 1.0, 6);
  for (int& y : blobs.y) y = 1;
  NaiveBayesTrainer trainer;
  const auto model = trainer.Fit(blobs.X, blobs.y, blobs.unit_weights);
  for (int p : model->Predict(blobs.X)) EXPECT_EQ(p, 1);
}

TEST(NaiveBayesTest, AvailableFromRegistry) {
  auto trainer = MakeTrainer("nb");
  ASSERT_NE(trainer, nullptr);
  EXPECT_EQ(trainer->Name(), "naive_bayes");
  EXPECT_FALSE(trainer->SupportsWarmStart());
}

}  // namespace
}  // namespace omnifair
