#include "linalg/simd.h"

#include <cmath>
#include <cstdlib>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/omnifair.h"
#include "data/datasets.h"
#include "data/split.h"
#include "linalg/vector_ops.h"
#include "ml/trainer_registry.h"

namespace omnifair {
namespace {

/// Every vector backend compiled in AND supported by this CPU. Empty on a
/// scalar-only machine, in which case the parity tests pass vacuously (the
/// dispatch layer itself is still exercised by every other suite).
std::vector<simd::Backend> VectorBackends() {
  std::vector<simd::Backend> backends;
  for (simd::Backend b : {simd::Backend::kAvx2, simd::Backend::kNeon}) {
    if (simd::BackendAvailable(b)) backends.push_back(b);
  }
  return backends;
}

/// Deterministic non-trivial fill covering sign changes and magnitudes.
double Element(size_t i, double phase) {
  return (0.25 + static_cast<double>(i % 31)) *
         (i % 2 == 0 ? 1.0 : -1.0) * std::cos(phase + 0.1 * static_cast<double>(i));
}

/// The parity sweep: every size in [0, 257] (covers empty input, every
/// vector-width tail, and beyond one cache line) at several misalignments
/// (the kernels use unaligned loads; offsets make sure of it).
constexpr size_t kMaxN = 257;
constexpr size_t kOffsets[] = {0, 1, 3};

TEST(SimdParityTest, DotMatchesScalarToReassociationTolerance) {
  const simd::Kernels& ref = simd::ScalarKernels();
  for (simd::Backend backend : VectorBackends()) {
    const simd::Kernels& k = simd::KernelsFor(backend);
    for (size_t n = 0; n <= kMaxN; ++n) {
      for (size_t off : kOffsets) {
        std::vector<double> a(n + off), b(n + off);
        for (size_t i = 0; i < n + off; ++i) {
          a[i] = Element(i, 0.0);
          b[i] = Element(i, 1.0);
        }
        const double expected = ref.dot(a.data() + off, b.data() + off, n);
        const double got = k.dot(a.data() + off, b.data() + off, n);
        const double tol =
            1e-12 * std::max(1.0, std::fabs(expected)) * std::max<size_t>(n, 1);
        EXPECT_NEAR(got, expected, tol)
            << simd::BackendName(backend) << " n=" << n << " off=" << off;
      }
    }
  }
}

TEST(SimdParityTest, SumMatchesScalarToReassociationTolerance) {
  const simd::Kernels& ref = simd::ScalarKernels();
  for (simd::Backend backend : VectorBackends()) {
    const simd::Kernels& k = simd::KernelsFor(backend);
    for (size_t n = 0; n <= kMaxN; ++n) {
      for (size_t off : kOffsets) {
        std::vector<double> v(n + off);
        for (size_t i = 0; i < n + off; ++i) v[i] = Element(i, 2.0);
        const double expected = ref.sum(v.data() + off, n);
        const double got = k.sum(v.data() + off, n);
        const double tol =
            1e-12 * std::max(1.0, std::fabs(expected)) * std::max<size_t>(n, 1);
        EXPECT_NEAR(got, expected, tol)
            << simd::BackendName(backend) << " n=" << n << " off=" << off;
      }
    }
  }
}

TEST(SimdParityTest, AxpyMatchesScalarPerElement) {
  const simd::Kernels& ref = simd::ScalarKernels();
  for (simd::Backend backend : VectorBackends()) {
    const simd::Kernels& k = simd::KernelsFor(backend);
    for (size_t n = 0; n <= kMaxN; ++n) {
      for (size_t off : kOffsets) {
        std::vector<double> x(n + off), y0(n + off), y1;
        for (size_t i = 0; i < n + off; ++i) {
          x[i] = Element(i, 3.0);
          y0[i] = Element(i, 4.0);
        }
        y1 = y0;
        ref.axpy(0.37, x.data() + off, y0.data() + off, n);
        k.axpy(0.37, x.data() + off, y1.data() + off, n);
        for (size_t i = 0; i < n + off; ++i) {
          // Elementwise: only one FMA-vs-mul/add rounding of difference.
          EXPECT_NEAR(y1[i], y0[i], 1e-12 * std::max(1.0, std::fabs(y0[i])))
              << simd::BackendName(backend) << " n=" << n << " off=" << off
              << " i=" << i;
        }
      }
    }
  }
}

TEST(SimdParityTest, ScaleIsBitIdenticalToScalar) {
  const simd::Kernels& ref = simd::ScalarKernels();
  for (simd::Backend backend : VectorBackends()) {
    const simd::Kernels& k = simd::KernelsFor(backend);
    for (size_t n = 0; n <= kMaxN; ++n) {
      for (size_t off : kOffsets) {
        std::vector<double> v0(n + off), v1;
        for (size_t i = 0; i < n + off; ++i) v0[i] = Element(i, 5.0);
        v1 = v0;
        ref.scale(-1.75, v0.data() + off, n);
        k.scale(-1.75, v1.data() + off, n);
        // One multiply per element in both paths: identical rounding.
        for (size_t i = 0; i < n + off; ++i) {
          EXPECT_EQ(v1[i], v0[i])
              << simd::BackendName(backend) << " n=" << n << " off=" << off;
        }
      }
    }
  }
}

TEST(SimdParityTest, SigmoidMatchesScalarWithinPolynomialTolerance) {
  const simd::Kernels& ref = simd::ScalarKernels();
  for (simd::Backend backend : VectorBackends()) {
    const simd::Kernels& k = simd::KernelsFor(backend);
    for (size_t n = 0; n <= kMaxN; ++n) {
      for (size_t off : kOffsets) {
        std::vector<double> v0(n + off), v1;
        for (size_t i = 0; i < n + off; ++i) {
          // Spans deep saturation on both sides plus the near-linear middle.
          v0[i] = -40.0 + 80.0 * static_cast<double>(i % 101) / 100.0;
        }
        v1 = v0;
        ref.sigmoid_inplace(v0.data() + off, n);
        k.sigmoid_inplace(v1.data() + off, n);
        for (size_t i = off; i < n + off; ++i) {
          EXPECT_NEAR(v1[i], v0[i], 1e-12)
              << simd::BackendName(backend) << " n=" << n << " off=" << off;
          EXPECT_GE(v1[i], 0.0);
          EXPECT_LE(v1[i], 1.0);
        }
      }
    }
  }
}

TEST(SimdParityTest, SigmoidHandlesExtremeArguments) {
  for (simd::Backend backend : VectorBackends()) {
    const simd::Kernels& k = simd::KernelsFor(backend);
    std::vector<double> v = {-1e4, -710.0, -0.0, 0.0, 710.0, 1e4, 36.7, -36.7};
    k.sigmoid_inplace(v.data(), v.size());
    EXPECT_NEAR(v[0], 0.0, 1e-300);
    EXPECT_NEAR(v[1], 0.0, 1e-300);
    EXPECT_DOUBLE_EQ(v[2], 0.5);
    EXPECT_DOUBLE_EQ(v[3], 0.5);
    EXPECT_DOUBLE_EQ(v[4], 1.0);
    EXPECT_DOUBLE_EQ(v[5], 1.0);
    for (double p : v) {
      EXPECT_TRUE(std::isfinite(p));
      EXPECT_GE(p, 0.0);
      EXPECT_LE(p, 1.0);
    }
  }
}

TEST(SimdParityTest, DotSigmoidMatchesScalar) {
  const simd::Kernels& ref = simd::ScalarKernels();
  for (simd::Backend backend : VectorBackends()) {
    const simd::Kernels& k = simd::KernelsFor(backend);
    for (size_t n : {0u, 1u, 7u, 64u, 257u}) {
      std::vector<double> a(n), b(n);
      for (size_t i = 0; i < n; ++i) {
        a[i] = 0.01 * Element(i, 0.5);
        b[i] = 0.01 * Element(i, 1.5);
      }
      const double expected = ref.dot_sigmoid(a.data(), b.data(), n, -0.3);
      const double got = k.dot_sigmoid(a.data(), b.data(), n, -0.3);
      EXPECT_NEAR(got, expected, 1e-12) << simd::BackendName(backend) << " n=" << n;
    }
  }
}

TEST(SimdParityTest, SoftmaxRowsMatchesScalarAndNormalizes) {
  const simd::Kernels& ref = simd::ScalarKernels();
  for (simd::Backend backend : VectorBackends()) {
    const simd::Kernels& k = simd::KernelsFor(backend);
    for (size_t cols : {1u, 3u, 8u, 37u}) {
      const size_t rows = 5;
      std::vector<double> m0(rows * cols), m1;
      for (size_t i = 0; i < m0.size(); ++i) m0[i] = Element(i, 6.0);
      m1 = m0;
      ref.softmax_rows(m0.data(), rows, cols);
      k.softmax_rows(m1.data(), rows, cols);
      for (size_t i = 0; i < m0.size(); ++i) {
        EXPECT_NEAR(m1[i], m0[i], 1e-12)
            << simd::BackendName(backend) << " cols=" << cols << " i=" << i;
      }
      for (size_t r = 0; r < rows; ++r) {
        double total = 0.0;
        for (size_t c = 0; c < cols; ++c) total += m1[r * cols + c];
        EXPECT_NEAR(total, 1.0, 1e-12);
      }
    }
  }
}

TEST(SimdParityTest, Float32VariantsMatchScalar) {
  const simd::Kernels& ref = simd::ScalarKernels();
  for (simd::Backend backend : VectorBackends()) {
    const simd::Kernels& k = simd::KernelsFor(backend);
    for (size_t n = 0; n <= kMaxN; ++n) {
      for (size_t off : kOffsets) {
        std::vector<float> a(n + off);
        std::vector<double> b(n + off), y0(n + off), y1;
        for (size_t i = 0; i < n + off; ++i) {
          a[i] = static_cast<float>(Element(i, 7.0));
          b[i] = Element(i, 8.0);
          y0[i] = Element(i, 9.0);
        }
        y1 = y0;
        const double dot_ref = ref.dot_f32(a.data() + off, b.data() + off, n);
        const double dot_got = k.dot_f32(a.data() + off, b.data() + off, n);
        const double tol =
            1e-12 * std::max(1.0, std::fabs(dot_ref)) * std::max<size_t>(n, 1);
        EXPECT_NEAR(dot_got, dot_ref, tol)
            << simd::BackendName(backend) << " n=" << n << " off=" << off;
        ref.axpy_f32(-0.61, a.data() + off, y0.data() + off, n);
        k.axpy_f32(-0.61, a.data() + off, y1.data() + off, n);
        for (size_t i = 0; i < n + off; ++i) {
          EXPECT_NEAR(y1[i], y0[i], 1e-12 * std::max(1.0, std::fabs(y0[i])));
        }
        EXPECT_NEAR(k.dot_sigmoid_f32(a.data() + off, b.data() + off, n, 0.2),
                    ref.dot_sigmoid_f32(a.data() + off, b.data() + off, n, 0.2),
                    1e-12);
      }
    }
  }
}

TEST(SimdDispatchTest, ScalarBackendAlwaysAvailable) {
  EXPECT_TRUE(simd::BackendAvailable(simd::Backend::kScalar));
  EXPECT_EQ(std::string(simd::BackendName(simd::Backend::kScalar)), "scalar");
  const simd::Kernels& k = simd::KernelsFor(simd::Backend::kScalar);
  const double v[] = {1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(k.sum(v, 3), 6.0);
}

TEST(SimdDispatchTest, SetActiveBackendSwitchesTheTable) {
  const simd::Backend original = simd::ActiveBackend();
  simd::SetActiveBackend(simd::Backend::kScalar);
  EXPECT_EQ(simd::ActiveBackend(), simd::Backend::kScalar);
  EXPECT_EQ(&simd::Active(), &simd::ScalarKernels());
  simd::SetActiveBackend(original);
  EXPECT_EQ(simd::ActiveBackend(), original);
}

/// Public vector_ops entry points route through the active table.
TEST(SimdDispatchTest, VectorOpsRouteThroughDispatch) {
  const std::vector<double> a = {1.0, 2.0, 3.0, 4.0, 5.0};
  const std::vector<double> b = {2.0, 0.5, -1.0, 3.0, 0.25};
  EXPECT_DOUBLE_EQ(Dot(a, b), 1.0 * 2.0 + 2.0 * 0.5 + 3.0 * -1.0 + 4.0 * 3.0 +
                                  5.0 * 0.25);
  std::vector<double> v = {0.0, -800.0, 800.0};
  SigmoidInPlace(&v);
  EXPECT_DOUBLE_EQ(v[0], 0.5);
  EXPECT_NEAR(v[1], 0.0, 1e-300);
  EXPECT_DOUBLE_EQ(v[2], 1.0);
}

/// End-to-end determinism contract: the full declarative pipeline selects
/// the same λ and lands within 1e-9 accuracy whether the vector backend or
/// the forced-scalar escape hatch (OMNIFAIR_SIMD=off) is active. Run for
/// every available backend; vacuous on scalar-only machines.
TEST(SimdEndToEndTest, TrainOutcomeMatchesScalarBackend) {
  SyntheticOptions options;
  options.num_rows = 1500;
  options.seed = 11;
  Dataset data = MakeCompasDataset(options);
  TrainValTestSplit split = SplitDefault(data, 5);
  const FairnessSpec spec = MakeSpec(
      GroupByAttributeValues("race", {"African-American", "Caucasian"}), "sp",
      0.05);

  const simd::Backend original = simd::ActiveBackend();
  auto train_once = [&](simd::Backend backend) {
    simd::SetActiveBackend(backend);
    auto trainer = MakeTrainer("lr");
    OmniFair omnifair;
    auto fair = omnifair.Train(split.train, split.val, trainer.get(), {spec});
    EXPECT_TRUE(fair.ok()) << fair.status();
    return std::move(*fair);
  };

  auto scalar_run = train_once(simd::Backend::kScalar);
  for (simd::Backend backend : VectorBackends()) {
    auto simd_run = train_once(backend);
    ASSERT_EQ(simd_run.lambdas.size(), scalar_run.lambdas.size());
    for (size_t j = 0; j < scalar_run.lambdas.size(); ++j) {
      EXPECT_DOUBLE_EQ(simd_run.lambdas[j], scalar_run.lambdas[j])
          << simd::BackendName(backend);
    }
    EXPECT_NEAR(simd_run.val_accuracy, scalar_run.val_accuracy, 1e-9)
        << simd::BackendName(backend);
    ASSERT_EQ(simd_run.val_fairness_parts.size(),
              scalar_run.val_fairness_parts.size());
    for (size_t j = 0; j < scalar_run.val_fairness_parts.size(); ++j) {
      EXPECT_NEAR(simd_run.val_fairness_parts[j],
                  scalar_run.val_fairness_parts[j], 1e-9)
          << simd::BackendName(backend);
    }
    EXPECT_EQ(simd_run.satisfied, scalar_run.satisfied);
  }
  simd::SetActiveBackend(original);
}

/// Float32 feature storage trains end to end and lands near the double
/// pipeline: features lose one float rounding at encode time, the rest of
/// the arithmetic is unchanged.
TEST(SimdEndToEndTest, Float32StorageTrainsCloseToDouble) {
  SyntheticOptions options;
  options.num_rows = 1500;
  options.seed = 11;
  Dataset data = MakeCompasDataset(options);
  TrainValTestSplit split = SplitDefault(data, 5);
  const FairnessSpec spec = MakeSpec(
      GroupByAttributeValues("race", {"African-American", "Caucasian"}), "sp",
      0.05);

  auto train_with = [&](bool float32) {
    auto trainer = MakeTrainer("lr");
    OmniFairOptions opts;
    opts.encoder.float32_features = float32;
    OmniFair omnifair(opts);
    auto fair = omnifair.Train(split.train, split.val, trainer.get(), {spec});
    EXPECT_TRUE(fair.ok()) << fair.status();
    return std::move(*fair);
  };
  auto f64 = train_with(false);
  auto f32 = train_with(true);
  EXPECT_TRUE(f32.satisfied);
  EXPECT_NEAR(f32.val_accuracy, f64.val_accuracy, 0.02);
  EXPECT_NEAR(f32.val_fairness_parts[0], f64.val_fairness_parts[0], 0.02);
}

}  // namespace
}  // namespace omnifair
