#ifndef OMNIFAIR_BASELINES_CELIS_H_
#define OMNIFAIR_BASELINES_CELIS_H_

#include "baselines/baseline.h"

namespace omnifair {

/// Celis et al. [12] meta-algorithm (in-processing, LR only in practice).
///
/// The original reduces fair classification with linear-fractional
/// constraints (including FDR/FOR) to a family of cost-sensitive
/// classification problems indexed by Lagrange multipliers, solved over a
/// dense multiplier grid. We reproduce exactly that shape: a fine grid over
/// the multiplier, one cost-sensitive retraining per grid point (weights
/// from the same Lagrangian expansion OmniFair uses), keeping the most
/// accurate validating model. Characteristics preserved from the paper:
/// supports FDR (the only baseline that does), an order of magnitude slower
/// than OmniFair (dense grid vs. guided search, Figures 5/6), may fail at
/// tight epsilon because the grid resolution misses the feasible band
/// (NA(1) at epsilon = 0.03 in Table 5), and is tied to the LR family
/// (NA(2) otherwise).
class CelisMeta : public FairnessBaseline {
 public:
  struct Options {
    double max_multiplier = 1.0;
    int grid_points = 129;
  };

  explicit CelisMeta(Options options);
  CelisMeta() : CelisMeta(Options()) {}

  std::string Name() const override { return "celis"; }
  bool SupportsMetric(const FairnessMetric& metric) const override;
  bool SupportsTrainer(const Trainer& trainer) const override;
  Result<BaselineResult> Train(const Dataset& train, const Dataset& val,
                               Trainer* trainer, const FairnessSpec& spec) override;

 private:
  Options options_;
};

}  // namespace omnifair

#endif  // OMNIFAIR_BASELINES_CELIS_H_
