#include "linalg/vector_ops.h"

#include <cmath>

#include "util/logging.h"

namespace omnifair {

double Dot(const std::vector<double>& a, const std::vector<double>& b) {
  OF_CHECK_EQ(a.size(), b.size());
  double acc = 0.0;
  for (size_t i = 0; i < a.size(); ++i) acc += a[i] * b[i];
  return acc;
}

double Norm2(const std::vector<double>& v) { return std::sqrt(Dot(v, v)); }

void Axpy(double scale, const std::vector<double>& b, std::vector<double>* a) {
  OF_CHECK_EQ(a->size(), b.size());
  for (size_t i = 0; i < b.size(); ++i) (*a)[i] += scale * b[i];
}

void Scale(double scale, std::vector<double>* v) {
  for (double& x : *v) x *= scale;
}

double Sum(const std::vector<double>& v) {
  double acc = 0.0;
  for (double x : v) acc += x;
  return acc;
}

double Mean(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  return Sum(v) / static_cast<double>(v.size());
}

double StdDev(const std::vector<double>& v) {
  if (v.size() < 2) return 0.0;
  const double mean = Mean(v);
  double acc = 0.0;
  for (double x : v) acc += (x - mean) * (x - mean);
  return std::sqrt(acc / static_cast<double>(v.size()));
}

double Sigmoid(double z) {
  if (z >= 0.0) {
    const double e = std::exp(-z);
    return 1.0 / (1.0 + e);
  }
  const double e = std::exp(z);
  return e / (1.0 + e);
}

double Log1pExp(double z) {
  if (z > 35.0) return z;
  if (z < -35.0) return std::exp(z);
  return std::log1p(std::exp(z));
}

}  // namespace omnifair
