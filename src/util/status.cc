#include "util/status.h"

#include <cerrno>
#include <cstring>

namespace omnifair {

std::string StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kInfeasible:
      return "INFEASIBLE";
    case StatusCode::kUnsupported:
      return "UNSUPPORTED";
    case StatusCode::kInternal:
      return "INTERNAL";
    case StatusCode::kDeadlineExceeded:
      return "DEADLINE_EXCEEDED";
    case StatusCode::kDataLoss:
      return "DATA_LOSS";
    case StatusCode::kUnavailable:
      return "UNAVAILABLE";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  return StatusCodeToString(code_) + ": " + message_;
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

std::string ErrnoName(int err) {
  switch (err) {
    case 0: return "OK";
    case EACCES: return "EACCES";
    case EAGAIN: return "EAGAIN";
    case EBADF: return "EBADF";
    case EBUSY: return "EBUSY";
    case EEXIST: return "EEXIST";
    case EFBIG: return "EFBIG";
    case EINTR: return "EINTR";
    case EINVAL: return "EINVAL";
    case EIO: return "EIO";
    case EISDIR: return "EISDIR";
    case EMFILE: return "EMFILE";
    case ENAMETOOLONG: return "ENAMETOOLONG";
    case ENFILE: return "ENFILE";
    case ENOENT: return "ENOENT";
    case ENOMEM: return "ENOMEM";
    case ENOSPC: return "ENOSPC";
    case ENOTDIR: return "ENOTDIR";
    case EPERM: return "EPERM";
    case EROFS: return "EROFS";
    case ETIMEDOUT: return "ETIMEDOUT";
    case EXDEV: return "EXDEV";
    default: return "errno " + std::to_string(err);
  }
}

namespace {

StatusCode IoErrorCode(int err) {
  switch (err) {
    case 0:
      // A stream went bad without an errno (e.g. a failed ostream with no OS
      // detail); there is nothing actionable in the path, so report internal.
      return StatusCode::kInternal;
    case ENOENT:
    case ENOTDIR:
    case EISDIR:
    case EACCES:
    case EPERM:
    case ENAMETOOLONG:
    case EINVAL:
      return StatusCode::kInvalidArgument;
    case EINTR:
    case EAGAIN:
#if EWOULDBLOCK != EAGAIN
    case EWOULDBLOCK:
#endif
    case EBUSY:
    case ETIMEDOUT:
      return StatusCode::kUnavailable;
    default:
      return StatusCode::kDataLoss;
  }
}

}  // namespace

Status IoError(const std::string& path, const std::string& op, int err) {
  std::string message = op + " " + path + ": " + ErrnoName(err);
  if (err != 0) message += std::string(" (") + std::strerror(err) + ")";
  return Status(IoErrorCode(err), std::move(message));
}

Status IoError(const std::string& path, const std::string& op) {
  return IoError(path, op, errno);
}

}  // namespace omnifair
