#include "baselines/zafar.h"

#include <cmath>

#include "core/problem.h"
#include "linalg/vector_ops.h"
#include "ml/logistic_regression.h"
#include "util/logging.h"
#include "util/stopwatch.h"

namespace omnifair {
namespace {

/// Penalized objective: mean logistic loss + mu * cov(z, theta.x)^2 + L2,
/// where z is the centered group indicator (+1 group1, -1 group2, 0 outside).
double PenalizedLoss(const Matrix& X, const std::vector<int>& y,
                     const std::vector<double>& zc, double mu,
                     const std::vector<double>& theta, double l2) {
  const size_t n = X.rows();
  const size_t d = X.cols();
  double loss = 0.0;
  double cov = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double* row = X.Row(i);
    double margin = theta[d];
    for (size_t c = 0; c < d; ++c) margin += row[c] * theta[c];
    cov += zc[i] * margin;
    loss += Log1pExp(margin) - (y[i] == 1 ? margin : 0.0);
  }
  const double inv_n = 1.0 / static_cast<double>(n);
  loss *= inv_n;
  cov *= inv_n;
  loss += mu * cov * cov;
  for (size_t c = 0; c < d; ++c) loss += 0.5 * l2 * theta[c] * theta[c];
  return loss;
}

/// Gradient descent with backtracking line search on PenalizedLoss.
std::unique_ptr<Classifier> FitCovariancePenalized(const Matrix& X,
                                                   const std::vector<int>& y,
                                                   const std::vector<double>& z,
                                                   double mu, int max_iterations) {
  const size_t n = X.rows();
  const size_t d = X.cols();
  std::vector<double> theta(d + 1, 0.0);
  std::vector<double> grad(d + 1, 0.0);
  std::vector<double> candidate(d + 1, 0.0);
  const double l2 = 1e-4;

  const double z_mean = Mean(z);
  std::vector<double> zc(n);
  for (size_t i = 0; i < n; ++i) zc[i] = z[i] - z_mean;

  double step = 0.5;
  double loss = PenalizedLoss(X, y, zc, mu, theta, l2);
  for (int iter = 0; iter < max_iterations; ++iter) {
    std::fill(grad.begin(), grad.end(), 0.0);
    double cov = 0.0;
    for (size_t i = 0; i < n; ++i) {
      const double* row = X.Row(i);
      double margin = theta[d];
      for (size_t c = 0; c < d; ++c) margin += row[c] * theta[c];
      cov += zc[i] * margin;
      const double residual = Sigmoid(margin) - (y[i] == 1 ? 1.0 : 0.0);
      for (size_t c = 0; c < d; ++c) grad[c] += residual * row[c];
      grad[d] += residual;
    }
    const double inv_n = 1.0 / static_cast<double>(n);
    cov *= inv_n;
    // d/dtheta [mu * cov^2] = 2 mu cov * (1/n) sum zc_i * x_i; the common
    // 1/n factor is applied with the loss gradient below.
    const double cov_scale = 2.0 * mu * cov;
    for (size_t i = 0; i < n && mu > 0.0; ++i) {
      const double* row = X.Row(i);
      for (size_t c = 0; c < d; ++c) grad[c] += cov_scale * zc[i] * row[c];
      grad[d] += cov_scale * zc[i];
    }
    double max_abs = 0.0;
    for (size_t c = 0; c <= d; ++c) {
      grad[c] *= inv_n;
      if (c < d) grad[c] += l2 * theta[c];
      max_abs = std::max(max_abs, std::fabs(grad[c]));
    }
    if (max_abs < 1e-6) break;

    bool accepted = false;
    for (int attempt = 0; attempt < 30; ++attempt) {
      for (size_t c = 0; c <= d; ++c) candidate[c] = theta[c] - step * grad[c];
      const double candidate_loss = PenalizedLoss(X, y, zc, mu, candidate, l2);
      if (candidate_loss <= loss) {
        theta.swap(candidate);
        loss = candidate_loss;
        step = std::min(step * 1.25, 16.0);
        accepted = true;
        break;
      }
      step *= 0.5;
    }
    if (!accepted) break;
  }

  const double intercept = theta[d];
  theta.resize(d);
  return std::make_unique<LogisticRegressionModel>(std::move(theta), intercept);
}

}  // namespace

bool ZafarCovariance::SupportsMetric(const FairnessMetric& metric) const {
  // The covariance proxy targets decision-rate disparities: SP and MR.
  return metric.Name() == "sp" || metric.Name() == "mr";
}

bool ZafarCovariance::SupportsTrainer(const Trainer& trainer) const {
  return trainer.Name() == "logistic_regression";
}

Result<BaselineResult> ZafarCovariance::Train(const Dataset& train, const Dataset& val,
                                              Trainer* trainer,
                                              const FairnessSpec& spec) {
  if (!SupportsMetric(*spec.metric)) {
    return Status::Unsupported("Zafar does not support metric " + spec.metric->Name());
  }
  if (trainer != nullptr && !SupportsTrainer(*trainer)) {
    return Status::Unsupported(
        "Zafar only works for decision-boundary classifiers (LR)");
  }
  Stopwatch stopwatch;
  // The problem object provides encoding + evaluation; fitting is custom.
  LogisticRegressionTrainer lr_trainer;
  Result<std::unique_ptr<FairnessProblem>> problem =
      FairnessProblem::Create(train, val, {spec}, &lr_trainer);
  if (!problem.ok()) return problem.status();
  if ((*problem)->NumConstraints() != 1) {
    return Status::Unsupported("Zafar handles a single pairwise constraint");
  }

  // Group indicator z from the constraint's two groups on the train split.
  const ConstraintEvaluator& train_eval = (*problem)->train_evaluator();
  std::vector<double> z((*problem)->train().NumRows(), 0.0);
  for (size_t i : train_eval.Group1(0)) z[i] = 1.0;
  for (size_t i : train_eval.Group2(0)) z[i] -= 1.0;

  BaselineResult result;
  result.encoder = (*problem)->encoder();
  double best_accuracy = -1.0;
  int models_trained = 0;
  const double mus[] = {0.0,   1.0,   2.0,    5.0,    10.0,  20.0,  50.0,
                        100.0, 200.0, 400.0, 700.0, 1000.0, 2500.0, 6000.0};
  for (double mu : mus) {
    std::unique_ptr<Classifier> model =
        FitCovariancePenalized((*problem)->train_features(),
                               (*problem)->train().labels(), z, mu,
                               /*max_iterations=*/250);
    ++models_trained;
    const std::vector<int> val_preds = (*problem)->PredictVal(*model);
    const bool satisfied = (*problem)->val_evaluator().MaxViolation(val_preds) <= 1e-12;
    const double accuracy = (*problem)->ValAccuracy(val_preds);
    if (satisfied && accuracy > best_accuracy) {
      best_accuracy = accuracy;
      result.model = std::move(model);
      result.satisfied = true;
      result.val_accuracy = accuracy;
      result.val_fairness_parts = (*problem)->val_evaluator().FairnessParts(val_preds);
    } else if (result.model == nullptr) {
      result.model = std::move(model);
      result.val_accuracy = accuracy;
      result.val_fairness_parts = (*problem)->val_evaluator().FairnessParts(val_preds);
    }
  }
  result.models_trained = models_trained;
  result.train_seconds = stopwatch.ElapsedSeconds();
  return result;
}

}  // namespace omnifair
