#include "baselines/baseline.h"

#include "baselines/agarwal.h"
#include "baselines/calmon.h"
#include "baselines/celis.h"
#include "baselines/hardt.h"
#include "baselines/reweighing.h"
#include "baselines/thomas.h"
#include "baselines/zafar.h"
#include "util/logging.h"

namespace omnifair {

bool FairnessBaseline::SupportsTrainer(const Trainer& /*trainer*/) const {
  return true;
}

std::unique_ptr<FairnessBaseline> MakeBaseline(const std::string& name) {
  if (name == "kamiran") return std::make_unique<KamiranReweighing>();
  if (name == "calmon") return std::make_unique<CalmonPreprocessing>();
  if (name == "zafar") return std::make_unique<ZafarCovariance>();
  if (name == "celis") return std::make_unique<CelisMeta>();
  if (name == "hardt") return std::make_unique<HardtPostProcessing>();
  if (name == "agarwal") return std::make_unique<AgarwalReductions>();
  if (name == "thomas") return std::make_unique<ThomasSeldonian>();
  OF_CHECK(false) << "unknown baseline name: " << name;
  return nullptr;
}

std::vector<std::string> AllBaselineNames() {
  return {"kamiran", "calmon", "zafar", "celis", "agarwal", "thomas"};
}

}  // namespace omnifair
