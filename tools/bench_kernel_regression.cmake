# Kernel perf-regression smoke: runs bench_microbench's in-process
# scalar-vs-active kernel comparison (the "kernel_speedup" section),
# aggregates it with collect_bench.py, and diffs it against the committed
# baseline summary in bench/trajectory/. Per bench_diff.py's direction
# rules only the *_speedup ratio fields gate; absolute *_ns times are
# informational. The ratios are machine-relative (scalar and vector paths
# timed in the same process), so a baseline recorded on one box is a
# meaningful gate on another of the same ISA. A scalar-only machine emits
# no *_speedup fields at all, so the diff passes vacuously there instead of
# flagging a phantom regression.
# Invoked by the bench_kernel_regression ctest target (bench/CMakeLists.txt):
#   cmake -D BENCH_BINARY=... -D COLLECT=.../collect_bench.py
#         -D DIFF=.../bench_diff.py -D PYTHON=... -D OUT_DIR=...
#         -D BASELINE=.../kernel_speedup_baseline.json
#         -P bench_kernel_regression.cmake

foreach(required BENCH_BINARY COLLECT DIFF PYTHON OUT_DIR BASELINE)
  if(NOT DEFINED ${required})
    message(FATAL_ERROR
            "bench_kernel_regression.cmake: missing -D ${required}=...")
  endif()
endforeach()

if(NOT EXISTS ${BASELINE})
  message(FATAL_ERROR "baseline summary not found: ${BASELINE}")
endif()

file(REMOVE_RECURSE ${OUT_DIR})
file(MAKE_DIRECTORY ${OUT_DIR})

set(ENV{OMNIFAIR_BENCH_OUT} ${OUT_DIR})

# Keep the google-benchmark portion to one tiny case; the kernel_speedup
# section is emitted by the binary's epilogue regardless of the filter.
execute_process(COMMAND ${BENCH_BINARY} --benchmark_filter=BM_Dot/64
                        --benchmark_min_time=0.02
                RESULT_VARIABLE bench_result OUTPUT_QUIET)
if(NOT bench_result EQUAL 0)
  message(FATAL_ERROR "bench_microbench exited with status ${bench_result}")
endif()

set(summary ${OUT_DIR}/BENCH_SUMMARY.json)
execute_process(COMMAND ${PYTHON} ${COLLECT} ${OUT_DIR} -o ${summary}
                RESULT_VARIABLE collect_result)
if(NOT collect_result EQUAL 0)
  message(FATAL_ERROR "collect_bench failed with status ${collect_result}")
endif()

# 35% threshold: run-to-run ratio noise on a loaded machine stays well
# inside it, while losing vectorization entirely (ratio -> 1.0 from 2x+)
# still trips the gate.
execute_process(COMMAND ${PYTHON} ${DIFF} ${BASELINE} ${summary}
                        --sections kernel_speedup --threshold 0.35 --all
                RESULT_VARIABLE diff_result)
if(NOT diff_result EQUAL 0)
  message(FATAL_ERROR
          "kernel_speedup regressed against ${BASELINE} "
          "(bench_diff status ${diff_result})")
endif()
