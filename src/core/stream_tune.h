#ifndef OMNIFAIR_CORE_STREAM_TUNE_H_
#define OMNIFAIR_CORE_STREAM_TUNE_H_

#include <array>
#include <cstdint>
#include <vector>

#include "core/fairness_metric.h"
#include "data/chunked_dataset.h"
#include "ml/classifier.h"
#include "util/status.h"

namespace omnifair {

// ---------------------------------------------------------------------------
// Out-of-core Algorithm 1 (DESIGN.md §16).
//
// Tunes a single lambda for a logistic-regression model over a chunked
// dataset, streaming one block at a time: every trainer fit is weighted
// mini-batch SGD over the train blocks, every candidate is scored by a
// streamed pass over the validation blocks. Peak resident memory is one
// decoded block regardless of dataset size.
//
// Restricted to prediction-independent metrics (SP / MR / FPR / FNR): their
// Eq. 12 coefficients depend only on (group, label) and per-group label
// counts, so the per-row weight collapses to a 2-entry-per-group lookup
// table built in one counting pass — FOR / FDR (whose coefficients depend on
// h(x)) return kUnsupported.
// ---------------------------------------------------------------------------

/// Knobs of the streaming tuner: Algorithm 1 search parameters plus the
/// mini-batch SGD hyperparameters of the inner fits.
struct StreamTuneOptions {
  /// Prediction-independent metric (SP / MR / FPR / FNR).
  MetricKind metric = MetricKind::kStatisticalParity;
  /// The constrained group pair, as indices into the chunked file's
  /// group_names dictionary.
  size_t group1 = 0;
  size_t group2 = 1;
  /// Constraint threshold: |f(g1) - f(g2)| <= epsilon on validation.
  double epsilon = 0.05;

  // Algorithm 1 search (same meaning as TuneOptions).
  double tau = 1e-3;
  double initial_step = 1.0;
  int max_doublings = 24;

  /// Deterministic block-level split: block i is validation iff
  /// i % val_block_period == val_block_period - 1.
  size_t val_block_period = 5;

  // Inner weighted mini-batch SGD (same semantics as the LR trainer's
  // mini-batch path).
  size_t batch_size = 4096;
  int epochs = 3;
  double learning_rate = 1.0;
  double l2 = 1e-4;
  LrSchedule lr_schedule = LrSchedule::kConstant;
  uint64_t shuffle_seed = 17;
  int max_divergence_retries = 3;
};

/// Per-(group, label) Eq. 12 weight table:
///   w_i = max(0, 1 + n_train * lambda * s[group_i][label_i]).
/// s is +c(g1, y) for rows in group1, -c(g2, y) for rows in group2, 0
/// elsewhere, with c the metric's coefficient computed from the train-split
/// group/label counts (exactly the FairnessMetric::Coefficients formulas).
struct StreamCoefficientTable {
  std::vector<std::array<double, 2>> s;  ///< [group][label]
  uint64_t n_train = 0;
};

/// One counting pass over the train blocks; exposed so tests can check
/// weight parity against the in-memory WeightComputer.
Result<StreamCoefficientTable> BuildStreamCoefficientTable(
    const ChunkedDataset& data, const StreamTuneOptions& options);

/// Outcome of a streaming tune (mirrors TuneResult for the LR-on-disk case).
struct StreamTuneResult {
  /// Learned parameters: theta[0..nf-1] feature weights, theta[nf] bias.
  std::vector<double> theta;
  double lambda = 0.0;
  bool satisfied = false;
  double val_accuracy = 0.0;
  /// f(g1) - f(g2) on the validation blocks for the returned model.
  double val_fairness_gap = 0.0;
  int models_trained = 0;
};

/// Runs the out-of-core Algorithm 1. Deterministic for fixed options
/// (the SGD visits blocks in a seeded shuffled order and accumulates
/// serially, so results are bit-identical at any thread count).
Result<StreamTuneResult> StreamTuneLambda(const ChunkedDataset& data,
                                          const StreamTuneOptions& options);

}  // namespace omnifair

#endif  // OMNIFAIR_CORE_STREAM_TUNE_H_
