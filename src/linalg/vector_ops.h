#ifndef OMNIFAIR_LINALG_VECTOR_OPS_H_
#define OMNIFAIR_LINALG_VECTOR_OPS_H_

#include <cstddef>
#include <vector>

namespace omnifair {

/// Dot product; vectors must have equal length.
double Dot(const std::vector<double>& a, const std::vector<double>& b);

/// Euclidean (L2) norm.
double Norm2(const std::vector<double>& v);

/// In-place a += scale * b.
void Axpy(double scale, const std::vector<double>& b, std::vector<double>* a);

/// In-place v *= scale.
void Scale(double scale, std::vector<double>* v);

/// Sum of all elements.
double Sum(const std::vector<double>& v);

/// Arithmetic mean; 0 for an empty vector.
double Mean(const std::vector<double>& v);

/// Population standard deviation; 0 for fewer than 2 elements.
double StdDev(const std::vector<double>& v);

/// Numerically stable logistic sigmoid 1 / (1 + exp(-z)).
double Sigmoid(double z);

/// Batched in-place sigmoid over a whole margin vector. Routes through the
/// simd dispatch layer: vector backends use a polynomial exp accurate to a
/// few ulp, so results match per-element Sigmoid() to tolerance, not bitwise.
void SigmoidInPlace(double* v, size_t n);
void SigmoidInPlace(std::vector<double>* v);

/// Row-wise max-shifted softmax over a row-major rows x cols block.
void SoftmaxRows(double* m, size_t rows, size_t cols);

/// log(1 + exp(z)) without overflow.
double Log1pExp(double z);

}  // namespace omnifair

#endif  // OMNIFAIR_LINALG_VECTOR_OPS_H_
