#ifndef OMNIFAIR_LINALG_MATRIX_H_
#define OMNIFAIR_LINALG_MATRIX_H_

#include <cstddef>
#include <initializer_list>
#include <vector>

namespace omnifair {

/// Dense row-major matrix of doubles. This is the feature-matrix currency of
/// the library: datasets encode to a Matrix, ML trainers consume a Matrix.
/// Deliberately minimal — the ML algorithms in this repo only need row
/// access, matrix-vector products and element arithmetic.
class Matrix {
 public:
  Matrix() : rows_(0), cols_(0) {}
  Matrix(size_t rows, size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  /// Builds from nested initializer lists; all rows must agree in length.
  Matrix(std::initializer_list<std::initializer_list<double>> rows);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  bool empty() const { return rows_ == 0 || cols_ == 0; }

  double& operator()(size_t r, size_t c) { return data_[r * cols_ + c]; }
  double operator()(size_t r, size_t c) const { return data_[r * cols_ + c]; }

  /// Pointer to the start of row r (contiguous, cols() doubles).
  double* Row(size_t r) { return data_.data() + r * cols_; }
  const double* Row(size_t r) const { return data_.data() + r * cols_; }

  /// Copies row r into a vector.
  std::vector<double> RowVector(size_t r) const;

  /// Copies column c into a vector.
  std::vector<double> ColVector(size_t c) const;

  /// New matrix holding the given subset of rows, in order.
  Matrix SelectRows(const std::vector<size_t>& indices) const;

  /// Appends a row; the first appended row fixes cols() for empty matrices.
  void AppendRow(const std::vector<double>& row);

  /// y = this * x ; x.size() must equal cols().
  std::vector<double> MatVec(const std::vector<double>& x) const;

  /// y = this^T * x ; x.size() must equal rows().
  std::vector<double> TransposeMatVec(const std::vector<double>& x) const;

  const std::vector<double>& data() const { return data_; }
  std::vector<double>& data() { return data_; }

 private:
  size_t rows_;
  size_t cols_;
  std::vector<double> data_;
};

}  // namespace omnifair

#endif  // OMNIFAIR_LINALG_MATRIX_H_
