#ifndef OMNIFAIR_CORE_HILL_CLIMBING_H_
#define OMNIFAIR_CORE_HILL_CLIMBING_H_

#include <memory>
#include <vector>

#include "core/lambda_tuner.h"
#include "core/problem.h"

namespace omnifair {

/// Outcome of a multi-constraint tuning run (Algorithm 2 or grid search).
struct MultiTuneResult {
  /// Best model found; null only when the very first fit failed behind the
  /// exception firewall (`status` carries the cause).
  std::unique_ptr<Classifier> model;
  /// kOk when the search ran to completion; DEADLINE_EXCEEDED when the
  /// TrainBudget expired mid-search; INTERNAL when the trainer threw or
  /// returned null. On a non-OK status `model` is the best-effort result
  /// reached before the interruption.
  Status status;
  std::vector<double> lambdas;
  bool satisfied = false;
  double val_accuracy = 0.0;
  std::vector<double> val_fairness_parts;
  int models_trained = 0;
  /// Hill-climbing coordinate iterations performed (grid search leaves 0).
  int iterations = 0;
};

/// Options of the marginal hill-climbing algorithm.
struct HillClimbOptions {
  TuneOptions tune;
  /// Iteration cap is max_iterations_factor * k where k = #constraints
  /// (the paper uses 5k iterations).
  int max_iterations_factor = 5;
};

/// Algorithm 2: marginal hill climbing over Lambda. Starts at Lambda = 0;
/// while some constraint is violated on validation, picks the most violated
/// constraint (line 4) and invokes Algorithm 1 on that coordinate only,
/// satisfying it to the minimum degree (which empirically minimizes the
/// accuracy impact and the disruption of other constraints).
class HillClimber {
 public:
  explicit HillClimber(HillClimbOptions options = {});

  MultiTuneResult Run(FairnessProblem& problem) const;

 private:
  HillClimbOptions options_;
};

}  // namespace omnifair

#endif  // OMNIFAIR_CORE_HILL_CLIMBING_H_
