#include <cmath>
#include <string>

#include <gtest/gtest.h>

#include "data/datasets.h"

namespace omnifair {
namespace {

/// Parameterized over the four paper datasets (Table 4).
class SyntheticDatasetTest : public ::testing::TestWithParam<std::string> {
 protected:
  Dataset Make(size_t rows = 4000, uint64_t seed = 11) const {
    SyntheticOptions options;
    options.num_rows = rows;
    options.seed = seed;
    return MakeDatasetByName(GetParam(), options);
  }
};

TEST_P(SyntheticDatasetTest, RowCountHonored) {
  EXPECT_EQ(Make(1234).NumRows(), 1234u);
}

TEST_P(SyntheticDatasetTest, PaperDefaultSizes) {
  SyntheticOptions options;  // num_rows = 0 -> paper size
  options.seed = 1;
  const Dataset d = MakeDatasetByName(GetParam(), options);
  if (GetParam() == "adult") EXPECT_EQ(d.NumRows(), 48842u);
  if (GetParam() == "compas") EXPECT_EQ(d.NumRows(), 11001u);
  if (GetParam() == "lsac") EXPECT_EQ(d.NumRows(), 27477u);
  if (GetParam() == "bank") EXPECT_EQ(d.NumRows(), 30488u);
}

TEST_P(SyntheticDatasetTest, ValidatesAsBinaryClassification) {
  const Dataset d = Make();
  EXPECT_TRUE(d.Validate().ok());
  EXPECT_GE(d.NumColumns(), 8u);  // schema-rich like the originals
}

TEST_P(SyntheticDatasetTest, DeterministicGivenSeed) {
  const Dataset a = Make(500, 3);
  const Dataset b = Make(500, 3);
  EXPECT_EQ(a.labels(), b.labels());
  for (size_t c = 0; c < a.NumColumns(); ++c) {
    const Column& ca = a.ColumnAt(c);
    const Column& cb = b.ColumnAt(c);
    ASSERT_EQ(ca.type(), cb.type());
    if (ca.type() == ColumnType::kNumeric) {
      EXPECT_EQ(ca.numeric_values(), cb.numeric_values());
    } else {
      EXPECT_EQ(ca.codes(), cb.codes());
    }
  }
}

TEST_P(SyntheticDatasetTest, SeedChangesData) {
  const Dataset a = Make(500, 3);
  const Dataset b = Make(500, 4);
  EXPECT_NE(a.labels(), b.labels());
}

TEST_P(SyntheticDatasetTest, SensitiveAttributeIsFirstColumn) {
  const Dataset d = Make();
  EXPECT_EQ(d.ColumnAt(0).type(), ColumnType::kCategorical);
  EXPECT_GE(d.ColumnAt(0).categories().size(), 2u);
}

TEST_P(SyntheticDatasetTest, GroupBaseRatesDiffer) {
  // The core property: the data carries a group-dependent label bias large
  // enough for fairness experiments to be non-trivial.
  const Dataset d = Make(20000, 7);
  const Column& sensitive = d.ColumnAt(0);
  std::vector<double> positives(sensitive.categories().size(), 0.0);
  std::vector<double> totals(sensitive.categories().size(), 0.0);
  for (size_t i = 0; i < d.NumRows(); ++i) {
    totals[sensitive.Code(i)] += 1.0;
    positives[sensitive.Code(i)] += d.Label(i);
  }
  double max_rate = 0.0;
  double min_rate = 1.0;
  for (size_t g = 0; g < totals.size(); ++g) {
    if (totals[g] < 100.0) continue;  // skip tiny groups
    const double rate = positives[g] / totals[g];
    max_rate = std::max(max_rate, rate);
    min_rate = std::min(min_rate, rate);
  }
  EXPECT_GE(max_rate - min_rate, 0.10);
}

TEST_P(SyntheticDatasetTest, LabelBaseRateMatchesLiterature) {
  const Dataset d = Make(20000, 9);
  const double rate = d.PositiveRate();
  if (GetParam() == "adult") EXPECT_NEAR(rate, 0.24, 0.05);  // 76% negative
  if (GetParam() == "compas") EXPECT_NEAR(rate, 0.45, 0.06);
  if (GetParam() == "lsac") EXPECT_NEAR(rate, 0.93, 0.04);  // most pass
  if (GetParam() == "bank") EXPECT_NEAR(rate, 0.125, 0.05);
}

INSTANTIATE_TEST_SUITE_P(PaperDatasets, SyntheticDatasetTest,
                         ::testing::Values("adult", "compas", "lsac", "bank"));

TEST(SyntheticDatasetTest, CompasGroupProportions) {
  SyntheticOptions options;
  options.num_rows = 20000;
  options.seed = 21;
  const Dataset d = MakeCompasDataset(options);
  const Column& race = d.ColumnByName("race");
  double aa = 0.0;
  for (size_t i = 0; i < d.NumRows(); ++i) {
    aa += (race.CategoryOf(i) == "African-American");
  }
  EXPECT_NEAR(aa / d.NumRows(), 0.51, 0.02);
}

TEST(SyntheticDatasetTest, AdultSexProportions) {
  SyntheticOptions options;
  options.num_rows = 20000;
  options.seed = 22;
  const Dataset d = MakeAdultDataset(options);
  const Column& sex = d.ColumnByName("sex");
  double male = 0.0;
  for (size_t i = 0; i < d.NumRows(); ++i) male += (sex.CategoryOf(i) == "Male");
  EXPECT_NEAR(male / d.NumRows(), 0.67, 0.02);
}

}  // namespace
}  // namespace omnifair
