#include "ml/binning.h"

#include <algorithm>
#include <cstring>

#include "linalg/simd.h"
#include "util/logging.h"
#include "util/telemetry.h"
#include "util/thread_pool.h"
#include "util/trace.h"

namespace omnifair {
namespace {

/// splitmix64 finalizer — decorrelates the sampled doubles' bit patterns.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Cheap content fingerprint: shape and storage mode plus up to 64 words
/// sampled from the raw element payload at a fixed stride. Combined with the
/// storage-pointer check in Matches this makes accidental reuse against a
/// different matrix vanishingly unlikely while keeping validation O(1) in the
/// matrix size. Reading the untyped payload keeps this valid for both double
/// and float32 feature storage.
uint64_t FingerprintMatrix(const Matrix& X) {
  const unsigned char* bytes = static_cast<const unsigned char*>(X.RawData());
  const size_t nbytes = X.RawBytes();
  uint64_t h = Mix64(X.rows() * 0x100000001b3ULL ^ X.cols() ^
                     (static_cast<uint64_t>(X.storage()) << 32));
  if (nbytes < sizeof(uint64_t)) return h;
  const size_t words = nbytes / sizeof(uint64_t);
  const size_t samples = std::min<size_t>(64, words);
  const size_t stride = std::max<size_t>(1, words / samples);
  for (size_t w = 0; w < words; w += stride) {
    uint64_t bits;
    std::memcpy(&bits, bytes + w * sizeof(uint64_t), sizeof(bits));
    h = Mix64(h ^ bits);
  }
  uint64_t last;
  std::memcpy(&last, bytes + nbytes - sizeof(uint64_t), sizeof(last));
  return Mix64(h ^ last);
}

/// Builds one column's boundaries from its sorted values: at most
/// `max_bins` near-equal-count bins, cutting only between distinct values
/// (so every boundary is a realizable threshold). Pure integer/double
/// arithmetic over the sorted order — deterministic.
std::vector<double> ColumnBoundaries(std::vector<double>& sorted, int max_bins) {
  std::sort(sorted.begin(), sorted.end());
  const size_t n = sorted.size();
  std::vector<double> boundaries;

  // Distinct-value runs: cut positions are the starts of runs after the
  // first; fewer distinct values than bins means one bin per value.
  std::vector<size_t> run_end;  // exclusive end index of each run
  for (size_t i = 1; i <= n; ++i) {
    if (i == n || sorted[i] > sorted[i - 1]) run_end.push_back(i);
  }
  const size_t distinct = run_end.size();
  if (distinct <= 1) return boundaries;  // constant column: a single bin

  const size_t bins = static_cast<size_t>(max_bins);
  if (distinct <= bins) {
    boundaries.reserve(distinct - 1);
    for (size_t r = 0; r + 1 < distinct; ++r) {
      const size_t cut = run_end[r];  // first index of the next run
      boundaries.push_back(0.5 * (sorted[cut - 1] + sorted[cut]));
    }
    return boundaries;
  }

  // More distinct values than bins: place cut k at the first run boundary
  // whose cumulative count reaches rank k * n / bins. Skipping already-passed
  // ranks keeps boundaries strictly increasing when one fat run swallows
  // several quantiles.
  boundaries.reserve(bins - 1);
  size_t next_cut = 1;
  for (size_t r = 0; r + 1 < distinct && boundaries.size() + 1 < bins; ++r) {
    const size_t cumulative = run_end[r];
    const size_t target = next_cut * n / bins;
    if (cumulative < target) continue;
    const size_t cut = run_end[r];
    boundaries.push_back(0.5 * (sorted[cut - 1] + sorted[cut]));
    while (next_cut < bins && next_cut * n / bins <= cumulative) ++next_cut;
  }
  return boundaries;
}

}  // namespace

std::shared_ptr<const BinnedMatrix> BinnedMatrix::Build(const Matrix& X,
                                                        int max_bins,
                                                        int num_threads) {
  OF_CHECK_GT(X.rows(), 0u);
  OF_CHECK_GT(X.cols(), 0u);
  OF_TRACE_SPAN("binning/build");
  OF_SCOPED_LATENCY_US("tree.hist_build_us");

  max_bins = std::clamp(max_bins, 2, kMaxBins);
  auto binned = std::shared_ptr<BinnedMatrix>(new BinnedMatrix());
  binned->rows_ = X.rows();
  binned->cols_ = X.cols();
  binned->max_bins_ = max_bins;
  binned->source_data_ = X.RawData();
  binned->fingerprint_ = FingerprintMatrix(X);
  binned->boundaries_.resize(X.cols());
  binned->codes_.resize(X.rows() * X.cols());

  const size_t rows = X.rows();
  auto bin_column = [&](size_t f) {
    std::vector<double> sorted(rows);
    for (size_t i = 0; i < rows; ++i) sorted[i] = X(i, f);
    std::vector<double>& bounds = binned->boundaries_[f];
    bounds = ColumnBoundaries(sorted, max_bins);
    uint8_t* codes = binned->codes_.data() + f * rows;
    if (bounds.empty()) {
      std::memset(codes, 0, rows);
      return;
    }
    for (size_t i = 0; i < rows; ++i) {
      // First boundary >= value: code c <= b  <=>  value <= bounds[b].
      codes[i] = static_cast<uint8_t>(
          std::lower_bound(bounds.begin(), bounds.end(), X(i, f)) -
          bounds.begin());
    }
  };

  // Each column is owned by exactly one task, so parallel builds write
  // disjoint ranges and match the serial build bit for bit.
  if (num_threads > 1 && X.cols() > 1) {
    ThreadPool::Global().ParallelFor(X.cols(), bin_column, num_threads);
  } else {
    for (size_t f = 0; f < X.cols(); ++f) bin_column(f);
  }
  return binned;
}

bool BinnedMatrix::Matches(const Matrix& X, int max_bins) const {
  return rows_ == X.rows() && cols_ == X.cols() &&
         max_bins_ == std::clamp(max_bins, 2, kMaxBins) &&
         source_data_ == X.RawData() &&
         fingerprint_ == FingerprintMatrix(X);
}

void FillNodeHistogram(const BinnedMatrix& binned,
                       const std::vector<size_t>& samples,
                       const double* stat_a, const double* stat_b,
                       int num_threads, NodeHistogram* hist) {
  hist->Reset(binned);
  const size_t stride = static_cast<size_t>(binned.max_bins());
  const size_t n = samples.size();
  auto fill_feature = [&](size_t f) {
    const uint8_t* codes = binned.Column(f);
    double* a = hist->first.data() + f * stride;
    double* b = hist->second.data() + f * stride;
    const size_t nb = static_cast<size_t>(binned.NumBins(f));
    // Large nodes: accumulate into four interleaved stripes of private bin
    // arrays, then merge. Repeated bin codes in consecutive samples create a
    // load-store dependence chain in the naive loop; striping by sample index
    // gives the core four independent chains. Stripe membership and the
    // pairwise merge order are fixed functions of the sample index, so the
    // result is deterministic for any thread count. The size gate only
    // affects speed: small nodes keep the direct scan, and the stripes' extra
    // zeroing/merge is amortized only when samples dominate bins.
    if (n >= 512 && n >= 8 * nb) {
      thread_local std::vector<double> scratch;
      scratch.assign(8 * stride, 0.0);
      double* sa = scratch.data();                // stripes 0..3 of `a`
      double* sb = scratch.data() + 4 * stride;   // stripes 0..3 of `b`
      const size_t n4 = n - (n % 4);
      for (size_t k = 0; k < n4; k += 4) {
        const size_t i0 = samples[k + 0];
        const size_t i1 = samples[k + 1];
        const size_t i2 = samples[k + 2];
        const size_t i3 = samples[k + 3];
        sa[0 * stride + codes[i0]] += stat_a[i0];
        sb[0 * stride + codes[i0]] += stat_b[i0];
        sa[1 * stride + codes[i1]] += stat_a[i1];
        sb[1 * stride + codes[i1]] += stat_b[i1];
        sa[2 * stride + codes[i2]] += stat_a[i2];
        sb[2 * stride + codes[i2]] += stat_b[i2];
        sa[3 * stride + codes[i3]] += stat_a[i3];
        sb[3 * stride + codes[i3]] += stat_b[i3];
      }
      for (size_t k = n4; k < n; ++k) {
        const size_t i = samples[k];
        sa[(k % 4) * stride + codes[i]] += stat_a[i];
        sb[(k % 4) * stride + codes[i]] += stat_b[i];
      }
      for (size_t bin = 0; bin < nb; ++bin) {
        a[bin] = (sa[bin] + sa[stride + bin]) +
                 (sa[2 * stride + bin] + sa[3 * stride + bin]);
        b[bin] = (sb[bin] + sb[stride + bin]) +
                 (sb[2 * stride + bin] + sb[3 * stride + bin]);
      }
    } else {
      for (size_t i : samples) {
        a[codes[i]] += stat_a[i];
        b[codes[i]] += stat_b[i];
      }
    }
  };
  // Fan out across features only when the node is big enough for the task
  // overhead to amortize; the cutoff only affects speed, never the result.
  constexpr size_t kMinParallelWork = size_t{1} << 15;
  if (num_threads > 1 && binned.cols() > 1 &&
      samples.size() * binned.cols() >= kMinParallelWork) {
    ThreadPool::Global().ParallelFor(binned.cols(), fill_feature, num_threads);
  } else {
    for (size_t f = 0; f < binned.cols(); ++f) fill_feature(f);
  }
}

void NodeHistogram::SubtractSibling(const NodeHistogram& smaller) {
  const simd::Kernels& k = simd::Active();
  k.axpy(-1.0, smaller.first.data(), first.data(), first.size());
  k.axpy(-1.0, smaller.second.data(), second.data(), second.size());
}

std::shared_ptr<const BinnedMatrix> BinningCache::GetOrBuild(const Matrix& X,
                                                             int max_bins,
                                                             int num_threads) {
  std::lock_guard<std::mutex> lock(mu_);
  if (cached_ != nullptr && cached_->Matches(X, max_bins)) {
    OF_COUNTER_INC("tree.bins_reused");
    return cached_;
  }
  cached_ = BinnedMatrix::Build(X, max_bins, num_threads);
  return cached_;
}

}  // namespace omnifair
