#ifndef OMNIFAIR_DATA_DATASETS_H_
#define OMNIFAIR_DATA_DATASETS_H_

#include "data/dataset.h"
#include "data/synthetic_common.h"

namespace omnifair {

// Synthetic stand-ins for the four benchmark datasets of the paper (Table 4).
// Each generator matches the real dataset's schema, size, label base rates,
// group proportions and group-conditional disparity; see DESIGN.md §4 for the
// substitution rationale. All are deterministic given SyntheticOptions::seed.

/// Adult / Census Income (48842 x 18, sensitive: sex, task: income > 50k).
/// Baseline disparity: P(y=1|Male) ~ 0.30 vs P(y=1|Female) ~ 0.11.
Dataset MakeAdultDataset(const SyntheticOptions& options = {});

/// ProPublica COMPAS (11001 x 10, sensitive: race, task: 2-year recidivism).
/// Groups: African-American / Caucasian / Hispanic / Other.
Dataset MakeCompasDataset(const SyntheticOptions& options = {});

/// LSAC bar passage (27477 x 12, sensitive: race, task: pass the bar exam).
/// Highly imbalanced towards passing; small accuracy headroom as in paper.
Dataset MakeLsacDataset(const SyntheticOptions& options = {});

/// Bank marketing (30488 x 20, sensitive: age group, task: subscription).
Dataset MakeBankDataset(const SyntheticOptions& options = {});

/// Convenience: dataset by lowercase name {"adult","compas","lsac","bank"}.
/// Aborts on unknown names.
Dataset MakeDatasetByName(const std::string& name, const SyntheticOptions& options = {});

// Generative schemas behind the four datasets, exposed so out-of-core tools
// (GenerateSyntheticStream) can sample block-by-block without materializing
// the whole dataset. Make*Dataset(options) == Generate(Make*Schema(), options).
synthetic::Schema MakeAdultSchema();
synthetic::Schema MakeCompasSchema();
synthetic::Schema MakeLsacSchema();
synthetic::Schema MakeBankSchema();
/// Schema by lowercase name; aborts on unknown names.
synthetic::Schema MakeSchemaByName(const std::string& name);

}  // namespace omnifair

#endif  // OMNIFAIR_DATA_DATASETS_H_
