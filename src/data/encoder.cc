#include "data/encoder.h"

#include <cmath>

#include "linalg/vector_ops.h"
#include "util/logging.h"

namespace omnifair {
namespace {

bool IsDropped(const std::string& name, const EncoderOptions& options) {
  for (const std::string& dropped : options.drop_columns) {
    if (dropped == name) return true;
  }
  return false;
}

}  // namespace

void FeatureEncoder::Fit(const Dataset& dataset, const EncoderOptions& options) {
  options_ = options;
  plans_.clear();
  feature_names_.clear();
  for (const Column& col : dataset.columns()) {
    if (IsDropped(col.name(), options_)) continue;
    ColumnPlan plan;
    plan.name = col.name();
    plan.type = col.type();
    if (col.type() == ColumnType::kNumeric) {
      if (options_.standardize_numeric) {
        plan.mean = Mean(col.numeric_values());
        plan.stddev = StdDev(col.numeric_values());
        if (plan.stddev < 1e-12) plan.stddev = 1.0;
      }
      feature_names_.push_back(plan.name);
    } else {
      plan.num_categories = col.categories().size();
      if (options_.one_hot_categorical) {
        for (const std::string& cat : col.categories()) {
          feature_names_.push_back(plan.name + "=" + cat);
        }
      } else {
        feature_names_.push_back(plan.name);  // raw integer code
      }
    }
    plans_.push_back(std::move(plan));
  }
}

Matrix FeatureEncoder::Transform(const Dataset& dataset) const {
  const size_t n = dataset.NumRows();
  // Values are narrowed at encode time when float32 storage is requested, so
  // downstream trainers never pay a conversion pass.
  Matrix out = options_.float32_features
                   ? Matrix::Float32(n, feature_names_.size())
                   : Matrix(n, feature_names_.size());
  size_t offset = 0;
  for (const ColumnPlan& plan : plans_) {
    const Column& col = dataset.ColumnByName(plan.name);
    OF_CHECK(col.type() == plan.type) << "column type changed for " << plan.name;
    if (plan.type == ColumnType::kNumeric) {
      for (size_t r = 0; r < n; ++r) {
        double value = col.NumericValue(r);
        if (options_.standardize_numeric) value = (value - plan.mean) / plan.stddev;
        out.Set(r, offset, value);
      }
      offset += 1;
    } else if (options_.one_hot_categorical) {
      for (size_t r = 0; r < n; ++r) {
        const int code = col.Code(r);
        if (code >= 0 && static_cast<size_t>(code) < plan.num_categories) {
          out.Set(r, offset + static_cast<size_t>(code), 1.0);
        }
      }
      offset += plan.num_categories;
    } else {
      for (size_t r = 0; r < n; ++r) out.Set(r, offset, col.Code(r));
      offset += 1;
    }
  }
  OF_CHECK_EQ(offset, feature_names_.size());
  return out;
}

Matrix FeatureEncoder::FitTransform(const Dataset& dataset,
                                    const EncoderOptions& options) {
  Fit(dataset, options);
  return Transform(dataset);
}

void FeatureEncoder::SerializeTo(std::ostream& os) const {
  os.precision(17);
  os << "encoder 1\n";
  os << "options " << (options_.standardize_numeric ? 1 : 0) << " "
     << (options_.one_hot_categorical ? 1 : 0) << " "
     << options_.drop_columns.size() << "\n";
  for (const std::string& name : options_.drop_columns) os << name << "\n";
  os << "plans " << plans_.size() << "\n";
  for (const ColumnPlan& plan : plans_) {
    os << (plan.type == ColumnType::kNumeric ? "numeric" : "categorical") << " "
       << plan.mean << " " << plan.stddev << " " << plan.num_categories << " "
       << plan.name << "\n";
  }
  os << "features " << feature_names_.size() << "\n";
  for (const std::string& name : feature_names_) os << name << "\n";
}

Result<FeatureEncoder> FeatureEncoder::Deserialize(std::istream& is) {
  std::string tag;
  int version = 0;
  if (!(is >> tag >> version) || tag != "encoder" || version != 1) {
    return Status::InvalidArgument("bad encoder header");
  }
  FeatureEncoder encoder;
  int standardize = 0;
  int one_hot = 0;
  size_t num_drops = 0;
  if (!(is >> tag >> standardize >> one_hot >> num_drops) || tag != "options") {
    return Status::InvalidArgument("bad encoder options line");
  }
  encoder.options_.standardize_numeric = standardize != 0;
  encoder.options_.one_hot_categorical = one_hot != 0;
  std::string line;
  std::getline(is, line);  // consume end of options line
  for (size_t i = 0; i < num_drops; ++i) {
    if (!std::getline(is, line)) return Status::InvalidArgument("truncated drops");
    encoder.options_.drop_columns.push_back(line);
  }
  size_t num_plans = 0;
  if (!(is >> tag >> num_plans) || tag != "plans") {
    return Status::InvalidArgument("bad encoder plans header");
  }
  for (size_t i = 0; i < num_plans; ++i) {
    ColumnPlan plan;
    std::string type;
    if (!(is >> type >> plan.mean >> plan.stddev >> plan.num_categories)) {
      return Status::InvalidArgument("truncated encoder plan");
    }
    plan.type = type == "numeric" ? ColumnType::kNumeric : ColumnType::kCategorical;
    is >> std::ws;
    if (!std::getline(is, plan.name)) {
      return Status::InvalidArgument("truncated plan name");
    }
    encoder.plans_.push_back(std::move(plan));
  }
  size_t num_features = 0;
  if (!(is >> tag >> num_features) || tag != "features") {
    return Status::InvalidArgument("bad encoder features header");
  }
  std::getline(is, line);
  for (size_t i = 0; i < num_features; ++i) {
    if (!std::getline(is, line)) return Status::InvalidArgument("truncated features");
    encoder.feature_names_.push_back(line);
  }
  return encoder;
}

}  // namespace omnifair
