// Out-of-core ingest + mini-batch SGD benchmark (DESIGN.md §16). Two
// sections:
//
//   ingest_throughput - stream a synthetic adult CSV through
//                       StreamCsvToChunked (parallel block parse + float32
//                       encode + CRC-verified spill) vs. the seed path
//                       (single-threaded ReadCsv + FeatureEncoder
//                       FitTransform). The acceptance bar is >=3x at 1M rows
//                       (OMNIFAIR_BENCH_ROWS=1000000).
//   lambda_tune       - Algorithm 1 for SP on the same data: out-of-core
//                       StreamTuneLambda (weighted mini-batch SGD over
//                       spilled blocks) vs. the in-memory full-batch tuner.
//
// Both sections report peak RSS so the out-of-core memory claim is visible
// in the JSON trail.
//
// Knobs: OMNIFAIR_BENCH_ROWS (dataset size, default 200000).

#include "bench/bench_common.h"

#include <sys/resource.h>

#include <cstdio>
#include <filesystem>
#include <string>

#include "core/stream_tune.h"
#include "data/chunked_dataset.h"
#include "data/csv.h"
#include "data/encoder.h"
#include "data/stream_reader.h"

namespace omnifair {
namespace bench {
namespace {

double PeakRssMb() {
  struct rusage usage;
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0.0;
  return static_cast<double>(usage.ru_maxrss) / 1024.0;  // KiB on Linux
}

std::string ScratchPath(const std::string& name) {
  const std::filesystem::path dir(BenchReporter::OutputDirectory());
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  return (dir / name).string();
}

void Run(BenchReporter& reporter) {
  const size_t rows = EnvRows(200000);
  // ~16 blocks at any size, so the streamed lambda-tune always has both
  // train and validation blocks (block i%5==4 is validation).
  const size_t block_rows = std::max<size_t>(64, rows / 16);
  reporter.Config("rows", rows);
  reporter.Config("block_rows", block_rows);

  PrintHeader("ingest throughput (adult, " + std::to_string(rows) + " rows)");

  // One synthetic adult dataset written as CSV: the shared input of both
  // the seed path and the streaming path.
  const Dataset dataset = MakeBenchDataset("adult", /*seed=*/42);
  const std::string csv_path = ScratchPath("bench_ingest.adult.csv");
  const std::string ofcd_path = ScratchPath("bench_ingest.adult.ofcd");
  OF_CHECK(WriteCsv(dataset, csv_path).ok());
  const double csv_mb =
      static_cast<double>(std::filesystem::file_size(csv_path)) / (1024.0 * 1024.0);

  // Seed path: single-threaded line parse + in-memory float32 encode.
  Stopwatch baseline_watch;
  CsvReadOptions read_options;
  read_options.label_column = dataset.label_name();
  Result<Dataset> reread = ReadCsv(csv_path, read_options);
  OF_CHECK(reread.ok()) << reread.status();
  FeatureEncoder baseline_encoder;
  EncoderOptions encoder_options;
  encoder_options.float32_features = true;
  const Matrix baseline_features =
      baseline_encoder.FitTransform(*reread, encoder_options);
  const double baseline_seconds = baseline_watch.ElapsedSeconds();

  // Streaming path: chunked read, parallel block parse, direct-to-float32
  // encode, CRC-verified spill.
  StreamIngestOptions ingest_options;
  ingest_options.label_column = dataset.label_name();
  ingest_options.group_column = "sex";
  ingest_options.block_rows = block_rows;
  Stopwatch stream_watch;
  Result<IngestStats> ingest =
      StreamCsvToChunked(csv_path, ofcd_path, ingest_options);
  OF_CHECK(ingest.ok()) << ingest.status();
  const double stream_seconds = stream_watch.ElapsedSeconds();
  const double spill_bytes =
      static_cast<double>(std::filesystem::file_size(ofcd_path));

  const double speedup =
      stream_seconds > 0.0 ? baseline_seconds / stream_seconds : 0.0;
  std::printf("csv: %.1f MiB, features: %zu\n", csv_mb,
              static_cast<size_t>(ingest->num_features));
  std::printf("%-22s %10.3fs  %12.0f rows/s\n", "readcsv+encode (seed)",
              baseline_seconds, rows / std::max(baseline_seconds, 1e-9));
  std::printf(
      "%-22s %10.3fs  %12.0f rows/s  (%zu blocks, parse %.3fs, spill %.3fs)\n",
      "stream ingest", stream_seconds, rows / std::max(stream_seconds, 1e-9),
      static_cast<size_t>(ingest->blocks), ingest->parse_seconds,
      ingest->spill_seconds);
  std::printf("ingest speedup: %.2fx\n", speedup);

  reporter.AddRow("ingest_throughput")
      .Label("dataset", "adult")
      .Value("rows", static_cast<double>(rows))
      .Value("csv_mb", csv_mb)
      .Value("baseline_seconds", baseline_seconds)
      .Value("stream_seconds", stream_seconds)
      .Value("speedup", speedup)
      .Value("stream_rows_per_second", rows / std::max(stream_seconds, 1e-9))
      .Value("spill_bytes", spill_bytes)
      .Value("peak_rss_mb", PeakRssMb());
  (void)baseline_features;  // keep the baseline's encode work observable

  PrintHeader("lambda tune: full-batch (in-memory) vs mini-batch (streamed)");

  const FairnessSpec spec =
      MakeSpec(MainGroups("adult"), MetricKind::kStatisticalParity, 0.03);

  // Full-batch reference: the in-memory Algorithm 1 with the default LR
  // trainer on the paper's 60/20/20 split.
  const TrainValTestSplit split = SplitDefault(dataset, /*seed=*/42);
  Stopwatch full_watch;
  auto trainer = MakeTrainer("lr", /*seed=*/42);
  OmniFairOptions options;
  options.warm_start = false;
  OmniFair omnifair(options);
  Result<FairModel> full =
      omnifair.Train(split.train, split.val, trainer.get(), {spec});
  OF_CHECK(full.ok()) << full.status();
  const double full_seconds = full_watch.ElapsedSeconds();

  // Streamed mini-batch tune over the spilled chunked dataset.
  Result<ChunkedDataset> chunked = ChunkedDataset::Open(ofcd_path);
  OF_CHECK(chunked.ok()) << chunked.status();
  StreamTuneOptions tune;
  tune.metric = MetricKind::kStatisticalParity;
  tune.epsilon = 0.03;
  tune.batch_size = 4096;
  tune.epochs = 3;
  tune.lr_schedule = LrSchedule::kInvSqrt;
  Stopwatch mini_watch;
  Result<StreamTuneResult> mini = StreamTuneLambda(*chunked, tune);
  OF_CHECK(mini.ok()) << mini.status();
  const double mini_seconds = mini_watch.ElapsedSeconds();

  const double tune_speedup =
      mini_seconds > 0.0 ? full_seconds / mini_seconds : 0.0;
  std::printf("%-22s %10.3fs  acc %.4f  satisfied %s  (%d fits)\n",
              "full-batch (memory)", full_seconds, full->val_accuracy,
              full->satisfied ? "yes" : "no", full->models_trained);
  std::printf("%-22s %10.3fs  acc %.4f  satisfied %s  (%d fits)\n",
              "mini-batch (streamed)", mini_seconds, mini->val_accuracy,
              mini->satisfied ? "yes" : "no", mini->models_trained);
  std::printf("tune speedup: %.2fx, peak rss: %.1f MiB\n", tune_speedup,
              PeakRssMb());

  reporter.AddRow("lambda_tune")
      .Label("dataset", "adult")
      .Label("metric", "sp")
      .Value("rows", static_cast<double>(rows))
      .Value("full_batch_seconds", full_seconds)
      .Value("minibatch_seconds", mini_seconds)
      .Value("speedup", tune_speedup)
      .Value("full_batch_accuracy", full->val_accuracy)
      .Value("minibatch_accuracy", mini->val_accuracy)
      .Value("full_batch_satisfied", full->satisfied ? 1.0 : 0.0)
      .Value("minibatch_satisfied", mini->satisfied ? 1.0 : 0.0)
      .Value("minibatch_models", mini->models_trained)
      .Value("peak_rss_mb", PeakRssMb());

  // The scratch CSV can be large (100+ MiB at 1M rows); clean it up but keep
  // the chunked file, which later runs can reuse via omnifair_cli --stream.
  std::error_code ec;
  std::filesystem::remove(csv_path, ec);
}

}  // namespace
}  // namespace bench
}  // namespace omnifair

int main() {
  omnifair::InitTelemetryFromEnv();
  omnifair::bench::BenchReporter reporter(
      "ingest", "Out-of-core streaming ingest and mini-batch lambda tuning");
  omnifair::bench::Run(reporter);
  return omnifair::bench::FinishBench(reporter);
}
