#include "util/thread_pool.h"

#include <atomic>
#include <cstdlib>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "util/telemetry.h"

namespace omnifair {
namespace {

TEST(ThreadPool, GlobalIsASingletonWithAtLeastOneWorker) {
  ThreadPool& a = ThreadPool::Global();
  ThreadPool& b = ThreadPool::Global();
  EXPECT_EQ(&a, &b);
  EXPECT_GE(a.NumThreads(), 1);
}

TEST(ThreadPool, DefaultThreadCountHonorsEnvironmentOverride) {
  ASSERT_EQ(setenv("OMNIFAIR_THREADS", "3", /*overwrite=*/1), 0);
  EXPECT_EQ(ThreadPool::DefaultThreadCount(), 3);
  ASSERT_EQ(setenv("OMNIFAIR_THREADS", "not-a-number", 1), 0);
  EXPECT_GE(ThreadPool::DefaultThreadCount(), 1);  // falls back to hardware
  ASSERT_EQ(setenv("OMNIFAIR_THREADS", "-2", 1), 0);
  EXPECT_GE(ThreadPool::DefaultThreadCount(), 1);
  ASSERT_EQ(unsetenv("OMNIFAIR_THREADS"), 0);
  EXPECT_GE(ThreadPool::DefaultThreadCount(), 1);
}

TEST(ThreadPool, ExplicitSizeConstructorJoinsCleanly) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.NumThreads(), 4);
  // Destructor must drain and join without deadlock even with queued work.
  std::atomic<int> ran{0};
  for (int i = 0; i < 64; ++i) {
    pool.Submit([&ran]() { ran.fetch_add(1); });
  }
  // Pool goes out of scope here; all 64 tasks must have run by then.
}

TEST(ThreadPool, SubmitReturnsFutureWithResult) {
  ThreadPool pool(2);
  std::future<int> answer = pool.Submit([]() { return 41 + 1; });
  EXPECT_EQ(answer.get(), 42);

  std::vector<std::future<int>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.Submit([i]() { return i * i; }));
  }
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(futures[static_cast<size_t>(i)].get(), i * i);
  }
}

TEST(ThreadPool, SubmitPropagatesExceptionsThroughTheFuture) {
  ThreadPool pool(2);
  std::future<int> bad =
      pool.Submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(bad.get(), std::runtime_error);
  // The worker that ran the throwing task must still be alive.
  EXPECT_EQ(pool.Submit([]() { return 7; }).get(), 7);
}

TEST(ThreadPool, ParallelForRunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr size_t kN = 10000;
  std::vector<std::atomic<int>> hits(kN);
  for (auto& h : hits) h.store(0);
  pool.ParallelFor(kN, [&hits](size_t i) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, ParallelForExactlyOnceUnderRepeatedContention) {
  // Many short loops back to back stress the claim protocol and the
  // help-first join against worker wake-up races.
  ThreadPool pool(4);
  for (int round = 0; round < 200; ++round) {
    constexpr size_t kN = 37;
    std::atomic<size_t> sum{0};
    pool.ParallelFor(kN, [&sum](size_t i) { sum.fetch_add(i + 1); });
    ASSERT_EQ(sum.load(), kN * (kN + 1) / 2) << "round " << round;
  }
}

TEST(ThreadPool, ParallelForWithUnitParallelismRunsInlineOnCaller) {
  ThreadPool pool(4);
  const std::thread::id caller = std::this_thread::get_id();
  std::set<std::thread::id> seen;
  pool.ParallelFor(
      100, [&](size_t) { seen.insert(std::this_thread::get_id()); },
      /*max_parallelism=*/1);
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(*seen.begin(), caller);
}

TEST(ThreadPool, ParallelForZeroAndOneIterationDegenerateCases) {
  ThreadPool pool(2);
  int calls = 0;
  pool.ParallelFor(0, [&calls](size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  pool.ParallelFor(1, [&calls](size_t i) { calls += static_cast<int>(i) + 1; });
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPool, ParallelForRethrowsBodyExceptionAndStaysUsable) {
  ThreadPool pool(4);
  std::atomic<int> executed{0};
  EXPECT_THROW(
      pool.ParallelFor(1000,
                       [&executed](size_t i) {
                         executed.fetch_add(1);
                         if (i == 3) throw std::runtime_error("iteration 3");
                       }),
      std::runtime_error);
  // Unclaimed iterations are abandoned after the throw, so not all ran.
  EXPECT_LE(executed.load(), 1000);
  // The pool survives: a fresh loop still covers everything.
  std::atomic<int> after{0};
  pool.ParallelFor(100, [&after](size_t) { after.fetch_add(1); });
  EXPECT_EQ(after.load(), 100);
}

TEST(ThreadPool, NestedParallelForDoesNotDeadlock) {
  ThreadPool pool(2);
  std::atomic<int> inner_total{0};
  pool.ParallelFor(8, [&](size_t) {
    pool.ParallelFor(8, [&](size_t) { inner_total.fetch_add(1); });
  });
  EXPECT_EQ(inner_total.load(), 64);
}

TEST(ThreadPool, ParallelForFromInsideSubmittedTask) {
  // A pooled task driving a ParallelFor must not deadlock even when every
  // worker is busy (help-first join degrades to serial-in-caller).
  ThreadPool pool(2);
  std::vector<std::future<int>> futures;
  for (int t = 0; t < 4; ++t) {
    futures.push_back(pool.Submit([&pool]() {
      std::atomic<int> count{0};
      pool.ParallelFor(50, [&count](size_t) { count.fetch_add(1); });
      return count.load();
    }));
  }
  for (auto& f : futures) EXPECT_EQ(f.get(), 50);
}

TEST(ThreadPool, SubmitCountsTasksInTelemetry) {
  Counter* tasks = MetricsRegistry::Global().GetCounter("pool.tasks");
  const long long before = tasks->Value();
  ThreadPool pool(2);
  for (int i = 0; i < 10; ++i) pool.Submit([]() {}).wait();
  EXPECT_GE(tasks->Value(), before + 10);
}

TEST(ThreadPool, TasksInheritSubmitterTelemetryLevel) {
  ThreadPool pool(2);
  Counter* tasks = MetricsRegistry::Global().GetCounter("pool.tasks");
  const long long before = tasks->Value();
  {
    // With telemetry forced off at the submit site, the pool's own
    // instrumentation inside the task must not count.
    ScopedTelemetryLevel off(TelemetryLevel::kOff);
    pool.Submit([]() {}).wait();
  }
  EXPECT_EQ(tasks->Value(), before);
}

}  // namespace
}  // namespace omnifair
