# Smoke-tests the perf-regression toolchain end to end: runs one bench at
# tiny settings, aggregates it with collect_bench.py, checks that
# bench_diff.py passes a self-comparison and fails a synthetic 2x slowdown,
# and that collect_bench.py's error exits (empty dir, invalid JSON) hold.
# Invoked by the bench_diff_smoke ctest target (bench/CMakeLists.txt) as:
#   cmake -D BENCH_BINARY=... -D COLLECT=.../collect_bench.py
#         -D DIFF=.../bench_diff.py -D PYTHON=... -D OUT_DIR=...
#         -P bench_diff_smoke.cmake

foreach(required BENCH_BINARY COLLECT DIFF PYTHON OUT_DIR)
  if(NOT DEFINED ${required})
    message(FATAL_ERROR "bench_diff_smoke.cmake: missing -D ${required}=...")
  endif()
endforeach()

file(REMOVE_RECURSE ${OUT_DIR})
file(MAKE_DIRECTORY ${OUT_DIR})

set(ENV{OMNIFAIR_BENCH_ROWS} 400)
set(ENV{OMNIFAIR_BENCH_SEEDS} 1)
set(ENV{OMNIFAIR_BENCH_OUT} ${OUT_DIR})

execute_process(COMMAND ${BENCH_BINARY} RESULT_VARIABLE bench_result
                OUTPUT_QUIET)
if(NOT bench_result EQUAL 0)
  message(FATAL_ERROR "bench exited with status ${bench_result}")
endif()

set(summary ${OUT_DIR}/BENCH_SUMMARY.json)
execute_process(COMMAND ${PYTHON} ${COLLECT} ${OUT_DIR} -o ${summary}
                RESULT_VARIABLE collect_result)
if(NOT collect_result EQUAL 0)
  message(FATAL_ERROR "collect_bench failed with status ${collect_result}")
endif()

# A summary diffed against itself must be clean.
execute_process(COMMAND ${PYTHON} ${DIFF} ${summary} ${summary}
                RESULT_VARIABLE self_diff_result)
if(NOT self_diff_result EQUAL 0)
  message(FATAL_ERROR
          "bench_diff flagged a self-comparison (status ${self_diff_result})")
endif()

# Double every time-like mean; bench_diff must flag the slowdown.
set(slow ${OUT_DIR}/BENCH_SUMMARY_slow.json)
execute_process(
  COMMAND ${PYTHON} -c [[
import json, sys

TIME_TAGS = ("seconds", "_us", "_ms", "bytes", "overhead")
with open(sys.argv[1], encoding="utf-8") as handle:
    doc = json.load(handle)
doubled = 0
for bench in doc["benches"].values():
    for section in bench.get("sections", {}).values():
        for field, digest in section.get("fields", {}).items():
            if any(tag in field.lower() for tag in TIME_TAGS):
                digest["mean"] = 2.0 * digest["mean"] + 1.0
                doubled += 1
if doubled == 0:
    sys.exit("no time-like fields found to perturb")
with open(sys.argv[2], "w", encoding="utf-8") as handle:
    json.dump(doc, handle)
]] ${summary} ${slow}
  RESULT_VARIABLE perturb_result)
if(NOT perturb_result EQUAL 0)
  message(FATAL_ERROR "failed to synthesize the regressed summary")
endif()
execute_process(COMMAND ${PYTHON} ${DIFF} ${summary} ${slow}
                RESULT_VARIABLE regression_result OUTPUT_QUIET)
if(NOT regression_result EQUAL 1)
  message(FATAL_ERROR "bench_diff returned ${regression_result} on a 2x "
                      "slowdown, expected 1")
endif()

# collect_bench error exits: 2 on an empty directory, 1 when every input
# fails validation.
file(MAKE_DIRECTORY ${OUT_DIR}/empty)
execute_process(COMMAND ${PYTHON} ${COLLECT} ${OUT_DIR}/empty
                RESULT_VARIABLE empty_result ERROR_QUIET)
if(NOT empty_result EQUAL 2)
  message(FATAL_ERROR "collect_bench returned ${empty_result} on an empty "
                      "directory, expected 2")
endif()

file(MAKE_DIRECTORY ${OUT_DIR}/invalid)
file(WRITE ${OUT_DIR}/invalid/broken.json "{\"schema\": \"wrong\"}")
execute_process(COMMAND ${PYTHON} ${COLLECT} ${OUT_DIR}/invalid
                RESULT_VARIABLE invalid_result ERROR_QUIET)
if(NOT invalid_result EQUAL 1)
  message(FATAL_ERROR "collect_bench returned ${invalid_result} on invalid "
                      "input, expected 1")
endif()
