#include "core/problem.h"

#include <algorithm>
#include <cmath>

#include "core/checkpoint.h"
#include "core/run_profile.h"
#include "ml/metrics.h"
#include "ml/serialization.h"
#include "util/logging.h"
#include "util/random.h"
#include "util/telemetry.h"
#include "util/trace.h"

namespace omnifair {

Result<std::unique_ptr<FairnessProblem>> FairnessProblem::Create(
    const Dataset& train, const Dataset& val, std::vector<FairnessSpec> specs,
    Trainer* trainer, const EncoderOptions& encoder_options,
    RunProfiler* profiler) {
  if (trainer == nullptr) return Status::InvalidArgument("trainer is null");
  if (train.NumRows() == 0) return Status::InvalidArgument("empty training split");
  if (val.NumRows() == 0) return Status::InvalidArgument("empty validation split");
  Status train_status = train.Validate();
  if (!train_status.ok()) return train_status;
  Status val_status = val.Validate();
  if (!val_status.ok()) return val_status;

  auto problem = std::unique_ptr<FairnessProblem>(new FairnessProblem());
  // Two sequential stage scopes (never nested, preserving the additivity
  // contract): group induction + evaluator construction land in kSetup,
  // encoder fit + the two Transform calls in kEncode.
  {
    RunStageTimer setup_timer(profiler, RunStage::kSetup);
    Result<std::vector<ConstraintSpec>> constraints =
        InduceConstraints(specs, train);
    if (!constraints.ok()) return constraints.status();
    problem->train_ = std::make_unique<Dataset>(train);
    problem->val_ = std::make_unique<Dataset>(val);
    problem->trainer_ = trainer;
    problem->constraints_ = *constraints;
    problem->weight_computer_ =
        std::make_unique<WeightComputer>(*constraints, *problem->train_);
    problem->val_evaluator_ = std::make_unique<ConstraintEvaluator>(
        std::move(*constraints), *problem->val_);
  }
  {
    RunStageTimer encode_timer(profiler, RunStage::kEncode);
    problem->encoder_.Fit(*problem->train_, encoder_options);
    problem->X_train_ = problem->encoder_.Transform(*problem->train_);
    problem->X_val_ = problem->encoder_.Transform(*problem->val_);
  }
  return problem;
}

double FairnessProblem::Epsilon(size_t j) const {
  OF_CHECK_LT(j, constraints_.size());
  return constraints_[j].epsilon;
}

std::vector<double> FairnessProblem::Epsilons() const {
  std::vector<double> epsilons;
  epsilons.reserve(constraints_.size());
  for (const ConstraintSpec& constraint : constraints_) {
    epsilons.push_back(constraint.epsilon);
  }
  return epsilons;
}

void FairnessProblem::SetProfiler(RunProfiler* profiler) {
  profiler_.store(profiler, std::memory_order_relaxed);
  // Constraint evaluation funnels through the validation evaluator's
  // FairnessPart; the train-split evaluator only feeds weight derivation,
  // which is already charged to kWeightCompute.
  val_evaluator_->SetProfiler(profiler);
}

void FairnessProblem::StartTuneReport(TuneReport* report) {
  tune_report_ = report;
  tune_stage_ = "";
  if (report != nullptr) {
    report->epsilons = Epsilons();
    tune_stopwatch_.Restart();
  }
}

void FairnessProblem::RecordTunePoint(const std::vector<double>& lambdas,
                                      bool fit_ok) {
  AppendTunePoint(lambdas, fit_ok, TuneElapsedSeconds());
}

bool FairnessProblem::Interrupted() const {
  return BudgetExpired() || (checkpoint_ != nullptr && checkpoint_->crashed());
}

Status FairnessProblem::InterruptStatus() const {
  if (BudgetExpired()) return budget_->ToStatus();
  if (checkpoint_ != nullptr && checkpoint_->crashed()) {
    return checkpoint_->CrashStatus();
  }
  return Status::Ok();
}

FairnessProblem::ParallelFitOutcome FairnessProblem::ReplayFitOn(
    const std::vector<double>& lambdas, bool* replay_failed) {
  ParallelFitOutcome outcome;
  if (replay_failed != nullptr) *replay_failed = false;
  RunStageTimer stage_timer(profiler(), RunStage::kCheckpoint);
  Result<const FitRecord*> replay = checkpoint_->NextReplay(lambdas);
  if (!replay.ok()) {
    if (replay_failed != nullptr) *replay_failed = true;
    outcome.status = replay.status();
    outcome.seconds = TuneElapsedSeconds();
    return outcome;
  }
  const FitRecord& record = **replay;
  if (record.fit_ok) {
    Result<std::unique_ptr<Classifier>> model =
        DeserializeModelBinary(record.model_blob);
    if (!model.ok()) {
      // A damaged blob that survived the CRC is still data loss; do not
      // charge the budget for a fit the resumed run never received.
      OF_COUNTER_INC("checkpoint.corrupt_detected");
      if (replay_failed != nullptr) *replay_failed = true;
      outcome.status = model.status();
      outcome.seconds = TuneElapsedSeconds();
      return outcome;
    }
    outcome.model = std::move(*model);
  } else {
    outcome.status = Status(static_cast<StatusCode>(record.status_code),
                            record.status_message);
  }
  // Charge exactly like the original fit so model caps hold across resume.
  models_trained_.fetch_add(1, std::memory_order_relaxed);
  if (budget_ != nullptr) budget_->NoteModelTrained();
  outcome.seconds = record.seconds;
  return outcome;
}

std::unique_ptr<Classifier> FairnessProblem::ReplaySerialFit(
    const std::vector<double>& lambdas) {
  bool replay_failed = false;
  ParallelFitOutcome outcome = ReplayFitOn(lambdas, &replay_failed);
  if (!replay_failed) {
    AppendTunePoint(lambdas, outcome.model != nullptr, outcome.seconds);
  }
  fit_status_ = outcome.model != nullptr ? Status::Ok() : outcome.status;
  return std::move(outcome.model);
}

void FairnessProblem::FinishSerialFit(const std::vector<double>& lambdas,
                                      const Classifier* model) {
  RecordTunePoint(lambdas, model != nullptr);
  if (checkpoint_ != nullptr) {
    RunStageTimer stage_timer(profiler(), RunStage::kCheckpoint);
    checkpoint_->RecordFit(lambdas, model != nullptr, fit_status_,
                           TuneElapsedSeconds(), model);
    checkpoint_->MaybeWrite();
  }
}

void FairnessProblem::AppendTunePoint(const std::vector<double>& lambdas,
                                      bool fit_ok, double seconds) {
  if (tune_report_ == nullptr) return;
  TunePoint point;
  point.lambdas = lambdas;
  point.stage = tune_stage_;
  point.fit_ok = fit_ok;
  point.models_trained = static_cast<int>(tune_report_->points.size()) + 1;
  point.seconds = seconds;
  tune_report_->points.push_back(std::move(point));
}

void FairnessProblem::AnnotateLastTunePoint(
    double val_accuracy, std::vector<double> val_fairness_parts) {
  if (tune_report_ == nullptr || tune_report_->points.empty()) return;
  TunePoint& point = tune_report_->points.back();
  point.evaluated = true;
  point.val_accuracy = val_accuracy;
  point.val_fairness_parts = std::move(val_fairness_parts);
}

std::unique_ptr<Classifier> FairnessProblem::FirewalledFit(
    const Matrix& X, const std::vector<int>& y, std::vector<double> weights) {
  // Non-finite weights (a degenerate Lambda or a buggy weight model) would
  // poison every downstream loss; clamp them to 0 and keep going.
  size_t clamped = 0;
  for (double& w : weights) {
    if (!std::isfinite(w)) {
      w = 0.0;
      ++clamped;
    }
  }
  if (clamped > 0) {
    CountRecoveryEvent(RecoveryEvent::kNonFiniteWeight);
    OF_LOG(Warning) << "clamped " << clamped << " non-finite example weights to 0";
  }

  ++models_trained_;
  if (budget_ != nullptr) budget_->NoteModelTrained();
  OF_COUNTER_INC("trainer.fits");
  OF_TRACE_SPAN("trainer_fit");
  OF_SCOPED_LATENCY_US("trainer.fit_us");
  RunStageTimer stage_timer(profiler(), RunStage::kTrainerFit);

  std::unique_ptr<Classifier> model;
  Status caught;
  try {
    model = trainer_->Fit(X, y, weights);
  } catch (const std::exception& e) {
    caught = Status::Internal(std::string("trainer threw: ") + e.what());
  } catch (...) {
    caught = Status::Internal("trainer threw a non-std exception");
  }
  if (!caught.ok()) {
    CountRecoveryEvent(RecoveryEvent::kTrainerException);
    OF_COUNTER_INC("trainer.fit_failures");
    OF_LOG(Warning) << "exception firewall: " << caught.message();
    fit_status_ = std::move(caught);
    return nullptr;
  }
  if (model == nullptr) {
    OF_COUNTER_INC("trainer.fit_failures");
    fit_status_ = Status::Internal("trainer returned a null model");
    return nullptr;
  }
  fit_status_ = Status::Ok();
  return model;
}

FairnessProblem::ParallelFitOutcome FairnessProblem::FitWithLambdasOn(
    Trainer& trainer, const std::vector<double>& lambdas,
    const std::vector<int>* weight_predictions) {
  ParallelFitOutcome outcome;
  std::vector<double> weights;
  {
    RunStageTimer stage_timer(profiler(), RunStage::kWeightCompute);
    weights = weight_computer_->Compute(lambdas, weight_predictions);
  }
  size_t clamped = 0;
  for (double& w : weights) {
    if (!std::isfinite(w)) {
      w = 0.0;
      ++clamped;
    }
  }
  if (clamped > 0) {
    CountRecoveryEvent(RecoveryEvent::kNonFiniteWeight);
    OF_LOG(Warning) << "clamped " << clamped << " non-finite example weights to 0";
  }

  models_trained_.fetch_add(1, std::memory_order_relaxed);
  if (budget_ != nullptr) budget_->NoteModelTrained();
  OF_COUNTER_INC("trainer.fits");
  OF_TRACE_SPAN("trainer_fit");
  OF_SCOPED_LATENCY_US("trainer.fit_us");
  RunStageTimer stage_timer(profiler(), RunStage::kTrainerFit);

  try {
    outcome.model = trainer.Fit(X_train_, train_->labels(), weights);
  } catch (const std::exception& e) {
    outcome.status = Status::Internal(std::string("trainer threw: ") + e.what());
  } catch (...) {
    outcome.status = Status::Internal("trainer threw a non-std exception");
  }
  if (!outcome.status.ok()) {
    CountRecoveryEvent(RecoveryEvent::kTrainerException);
    OF_COUNTER_INC("trainer.fit_failures");
    OF_LOG(Warning) << "exception firewall: " << outcome.status.message();
    outcome.model = nullptr;
  } else if (outcome.model == nullptr) {
    OF_COUNTER_INC("trainer.fit_failures");
    outcome.status = Status::Internal("trainer returned a null model");
  }
  outcome.seconds = TuneElapsedSeconds();
  return outcome;
}

std::unique_ptr<Classifier> FairnessProblem::FitWithLambdas(
    const std::vector<double>& lambdas, const Classifier* weight_model) {
  if (checkpoint_ != nullptr && checkpoint_->HasPendingReplay()) {
    return ReplaySerialFit(lambdas);
  }
  std::vector<int> predictions;
  const std::vector<int>* predictions_ptr = nullptr;
  if (weight_model != nullptr && DependsOnPredictions()) {
    RunStageTimer predict_timer(profiler(), RunStage::kPredict);
    predictions = weight_model->Predict(X_train_);
    predictions_ptr = &predictions;
  }
  std::vector<double> weights;
  {
    RunStageTimer stage_timer(profiler(), RunStage::kWeightCompute);
    weights = weight_computer_->Compute(lambdas, predictions_ptr);
  }
  std::unique_ptr<Classifier> model =
      FirewalledFit(X_train_, train_->labels(), std::move(weights));
  FinishSerialFit(lambdas, model.get());
  return model;
}

std::unique_ptr<Classifier> FairnessProblem::FitWithLambdasSubsampled(
    const std::vector<double>& lambdas, const Classifier* weight_model,
    double fraction, uint64_t seed) {
  OF_CHECK_GT(fraction, 0.0);
  if (fraction >= 1.0) return FitWithLambdas(lambdas, weight_model);
  if (checkpoint_ != nullptr && checkpoint_->HasPendingReplay()) {
    return ReplaySerialFit(lambdas);
  }

  if (subsample_fraction_ != fraction || subsample_seed_ != seed ||
      subsample_rows_.empty()) {
    const size_t n = train_->NumRows();
    const size_t k = std::max<size_t>(
        1, static_cast<size_t>(fraction * static_cast<double>(n)));
    Rng rng(seed);
    const std::vector<size_t> perm = rng.Permutation(n);
    subsample_rows_.assign(perm.begin(), perm.begin() + k);
    subsample_features_ = X_train_.SelectRows(subsample_rows_);
    subsample_labels_.clear();
    subsample_labels_.reserve(k);
    for (size_t i : subsample_rows_) subsample_labels_.push_back(train_->Label(i));
    subsample_fraction_ = fraction;
    subsample_seed_ = seed;
  }

  std::vector<int> predictions;
  const std::vector<int>* predictions_ptr = nullptr;
  if (weight_model != nullptr && DependsOnPredictions()) {
    RunStageTimer predict_timer(profiler(), RunStage::kPredict);
    predictions = weight_model->Predict(X_train_);
    predictions_ptr = &predictions;
  }
  std::vector<double> full_weights;
  {
    RunStageTimer stage_timer(profiler(), RunStage::kWeightCompute);
    full_weights = weight_computer_->Compute(lambdas, predictions_ptr);
  }
  std::vector<double> weights;
  weights.reserve(subsample_rows_.size());
  for (size_t i : subsample_rows_) weights.push_back(full_weights[i]);
  std::unique_ptr<Classifier> model =
      FirewalledFit(subsample_features_, subsample_labels_, std::move(weights));
  FinishSerialFit(lambdas, model.get());
  return model;
}

std::unique_ptr<Classifier> FairnessProblem::FitWithWeights(
    const std::vector<double>& weights) {
  OF_CHECK_EQ(weights.size(), train_->NumRows());
  return FirewalledFit(X_train_, train_->labels(), weights);
}

std::vector<int> FairnessProblem::PredictTrain(const Classifier& model) const {
  RunStageTimer stage_timer(profiler(), RunStage::kPredict);
  return model.Predict(X_train_);
}

std::vector<int> FairnessProblem::PredictVal(const Classifier& model) const {
  RunStageTimer stage_timer(profiler(), RunStage::kPredict);
  return model.Predict(X_val_);
}

double FairnessProblem::ValAccuracy(const std::vector<int>& val_predictions) const {
  return Accuracy(val_->labels(), val_predictions);
}

}  // namespace omnifair
