#ifndef OMNIFAIR_CORE_FAIRNESS_METRIC_H_
#define OMNIFAIR_CORE_FAIRNESS_METRIC_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "data/dataset.h"

namespace omnifair {

/// The coefficients a declarative fairness metric returns (Definition 3):
///   f(h, g) = sum_i c[i] * 1(h(x_i) = y_i) + c0,
/// where c is aligned with the group's member-index list.
struct MetricCoefficients {
  std::vector<double> c;
  double c0 = 0.0;
};

/// A declarative fairness metric function f (§4.2). Implementations only
/// specify coefficients; everything else (weight derivation, evaluation,
/// tuning) is generic. For prediction-parameterized metrics (FOR, FDR) the
/// coefficients depend on h(x) and `predictions` must be supplied.
class FairnessMetric {
 public:
  virtual ~FairnessMetric() = default;

  virtual std::string Name() const = 0;

  /// Coefficients for the rows in `group` (indices into `dataset`).
  /// `predictions` covers ALL dataset rows; may be nullptr iff
  /// !DependsOnPredictions().
  virtual MetricCoefficients Coefficients(const Dataset& dataset,
                                          const std::vector<size_t>& group,
                                          const std::vector<int>* predictions) const = 0;

  /// True for metrics whose coefficients are parameterized by h(x)
  /// (FOR/FDR — the w_i(lambda, h_theta) rows of Table 3).
  virtual bool DependsOnPredictions() const { return false; }

  /// Evaluates f(h, g) via the Definition 3 identity using the coefficients.
  double Evaluate(const Dataset& dataset, const std::vector<size_t>& group,
                  const std::vector<int>& predictions) const;
};

/// Built-in group fairness metrics of §3.2. The returned coefficients follow
/// the paper's Table 2 / Appendix A derivations, adjusted where needed so
/// that Evaluate() returns the *true named rate* (e.g. FPR itself rather
/// than the sign-flipped 1-FPR the table lists); pairwise disparities
/// |f(g_i) - f(g_j)| are identical either way, and Algorithm 1 normalizes
/// the sign before tuning.
enum class MetricKind {
  kStatisticalParity,      ///< f = P(h=1)
  kMisclassificationRate,  ///< f = P(h=y) (accuracy parity)
  kFalsePositiveRate,      ///< f = P(h=1 | y=0)
  kFalseNegativeRate,      ///< f = P(h=0 | y=1)
  kFalseOmissionRate,      ///< f = P(y=1 | h=0), prediction-parameterized
  kFalseDiscoveryRate,     ///< f = P(y=0 | h=1), prediction-parameterized
};

/// Factory for the built-in metrics.
std::unique_ptr<FairnessMetric> MakeMetric(MetricKind kind);

/// Factory by short name: "sp", "mr", "fpr", "fnr", "for", "fdr".
std::unique_ptr<FairnessMetric> MakeMetricByName(const std::string& name);

/// The customized Average Error Cost metric of Example 4 / Appendix A:
///   f(h,g) = (C_fp * #FP + C_fn * #FN) / |g|.
/// Demonstrates constraint customization — no tuning code changes needed.
class AverageErrorCostMetric : public FairnessMetric {
 public:
  AverageErrorCostMetric(double cost_fp, double cost_fn)
      : cost_fp_(cost_fp), cost_fn_(cost_fn) {}

  std::string Name() const override { return "aec"; }
  MetricCoefficients Coefficients(const Dataset& dataset,
                                  const std::vector<size_t>& group,
                                  const std::vector<int>* predictions) const override;

 private:
  double cost_fp_;
  double cost_fn_;
};

/// Escape hatch for fully custom metrics: wraps a user callable that
/// produces coefficients (the programmatic equivalent of Figure 1's
/// fairness_metric code box).
class LambdaMetric : public FairnessMetric {
 public:
  using CoefficientFn = std::function<MetricCoefficients(
      const Dataset&, const std::vector<size_t>&, const std::vector<int>*)>;

  LambdaMetric(std::string name, CoefficientFn fn, bool depends_on_predictions)
      : name_(std::move(name)),
        fn_(std::move(fn)),
        depends_on_predictions_(depends_on_predictions) {}

  std::string Name() const override { return name_; }
  bool DependsOnPredictions() const override { return depends_on_predictions_; }
  MetricCoefficients Coefficients(const Dataset& dataset,
                                  const std::vector<size_t>& group,
                                  const std::vector<int>* predictions) const override {
    return fn_(dataset, group, predictions);
  }

 private:
  std::string name_;
  CoefficientFn fn_;
  bool depends_on_predictions_;
};

}  // namespace omnifair

#endif  // OMNIFAIR_CORE_FAIRNESS_METRIC_H_
