// Google-benchmark microbenchmarks for the kernels every experiment leans
// on: example-weight computation (Eq. 12), fairness-part evaluation, and
// one Fit per model family. These quantify the claim that OmniFair's
// per-lambda overhead is dominated by the black-box Fit itself — the
// declarative layer adds microseconds.

#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "core/problem.h"
#include "linalg/vector_ops.h"

namespace omnifair {
namespace bench {
namespace {

struct MicroFixture {
  Dataset data;
  TrainValTestSplit split;
  std::unique_ptr<Trainer> trainer;
  std::unique_ptr<FairnessProblem> problem;

  explicit MicroFixture(const std::string& trainer_name) {
    SyntheticOptions options;
    options.num_rows = 4000;
    options.seed = 7;
    data = MakeCompasDataset(options);
    split = SplitDefault(data, 3);
    trainer = MakeTrainer(trainer_name);
    auto created = FairnessProblem::Create(
        split.train, split.val,
        {MakeSpec(MainGroups("compas"), "sp", 0.03)}, trainer.get());
    problem = std::move(*created);
  }
};

void BM_Dot(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  std::vector<double> a(n);
  std::vector<double> b(n);
  for (size_t i = 0; i < n; ++i) {
    a[i] = 0.25 + static_cast<double>(i % 31);
    b[i] = 1.5 - static_cast<double>(i % 17);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(Dot(a, b));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_Dot)->Arg(64)->Arg(1024)->Arg(16384);

void BM_Axpy(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  std::vector<double> a(n, 0.0);
  std::vector<double> b(n);
  for (size_t i = 0; i < n; ++i) b[i] = 1.0 + static_cast<double>(i % 13);
  for (auto _ : state) {
    Axpy(1e-9, b, &a);
    benchmark::DoNotOptimize(a.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_Axpy)->Arg(64)->Arg(1024)->Arg(16384);

void BM_WeightComputation(benchmark::State& state) {
  MicroFixture fx("lr");
  for (auto _ : state) {
    benchmark::DoNotOptimize(fx.problem->weight_computer().Compute(0.05, nullptr));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(fx.split.train.NumRows()));
}
BENCHMARK(BM_WeightComputation);

void BM_FairnessPartEvaluation(benchmark::State& state) {
  MicroFixture fx("lr");
  auto model = fx.problem->FitWithLambdas({0.0}, nullptr);
  const std::vector<int> preds = fx.problem->PredictVal(*model);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fx.problem->val_evaluator().FairnessPart(0, preds));
  }
}
BENCHMARK(BM_FairnessPartEvaluation);

void BM_FitModel(benchmark::State& state, const std::string& name) {
  MicroFixture fx(name);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fx.problem->FitWithLambdas({0.05}, nullptr));
  }
}
BENCHMARK_CAPTURE(BM_FitModel, lr, std::string("lr"));
BENCHMARK_CAPTURE(BM_FitModel, dt, std::string("dt"));
BENCHMARK_CAPTURE(BM_FitModel, xgb, std::string("xgb"));
BENCHMARK_CAPTURE(BM_FitModel, nn, std::string("nn"));

void BM_AuditModel(benchmark::State& state) {
  MicroFixture fx("lr");
  auto model = fx.problem->FitWithLambdas({0.0}, nullptr);
  const FairnessSpec spec = MakeSpec(MainGroups("compas"), "sp", 0.03);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        Audit(*model, fx.problem->encoder(), fx.split.test, {spec}));
  }
}
BENCHMARK(BM_AuditModel);

/// Console output as usual, plus one BenchReporter row per benchmark so the
/// microbench participates in the machine-readable bench/out/ corpus.
class JsonCapturingReporter : public benchmark::ConsoleReporter {
 public:
  explicit JsonCapturingReporter(BenchReporter& out) : out_(out) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    benchmark::ConsoleReporter::ReportRuns(runs);
    for (const Run& run : runs) {
      if (run.error_occurred) continue;
      out_.AddRow("microbench")
          .Label("name", run.benchmark_name())
          .Label("time_unit", benchmark::GetTimeUnitString(run.time_unit))
          .Value("real_time", run.GetAdjustedRealTime())
          .Value("cpu_time", run.GetAdjustedCPUTime())
          .Value("iterations", static_cast<double>(run.iterations));
    }
  }

 private:
  BenchReporter& out_;
};

}  // namespace
}  // namespace bench
}  // namespace omnifair

int main(int argc, char** argv) {
  omnifair::InitTelemetryFromEnv();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  omnifair::bench::BenchReporter reporter(
      "microbench", "Microbenchmarks: weight computation, FP evaluation, fits");
  omnifair::bench::JsonCapturingReporter console(reporter);
  benchmark::RunSpecifiedBenchmarks(&console);
  benchmark::Shutdown();
  return omnifair::bench::FinishBench(reporter);
}
