// End-to-end integration tests: the full pipeline (synthetic data -> split
// -> declarative spec -> train -> audit -> serialize -> reload) across all
// four paper datasets and the main metric families. These are the "does
// the whole system hold together" checks, complementing the per-module
// unit suites.

#include <cmath>
#include <tuple>

#include <gtest/gtest.h>

#include "core/omnifair.h"
#include "data/csv.h"
#include "data/datasets.h"
#include "data/split.h"
#include "ml/serialization.h"
#include "ml/trainer_registry.h"

namespace omnifair {
namespace {

GroupingFunction MainGroups(const std::string& dataset) {
  if (dataset == "adult") return GroupByAttributeValues("sex", {"Male", "Female"});
  if (dataset == "compas") {
    return GroupByAttributeValues("race", {"African-American", "Caucasian"});
  }
  if (dataset == "lsac") return GroupByAttributeValues("race", {"White", "Black"});
  return GroupByAttributeValues("age_group", {"working_age", "young_or_senior"});
}

/// Every paper dataset x {SP, FNR}: train, satisfy on validation, audit.
class DatasetMetricIntegrationTest
    : public ::testing::TestWithParam<std::tuple<std::string, std::string>> {};

TEST_P(DatasetMetricIntegrationTest, EndToEndSatisfiesOnValidation) {
  const auto& [dataset_name, metric] = GetParam();
  SyntheticOptions options;
  options.num_rows = 3000;
  options.seed = 77;
  const Dataset dataset = MakeDatasetByName(dataset_name, options);
  const TrainValTestSplit split = SplitDefault(dataset, 101);
  // A budget every dataset/metric pair can meet.
  const double epsilon = 0.06;
  const FairnessSpec spec = MakeSpec(MainGroups(dataset_name), metric, epsilon);

  auto trainer = MakeTrainer("lr");
  OmniFair omnifair;
  auto fair = omnifair.Train(split.train, split.val, trainer.get(), {spec});
  ASSERT_TRUE(fair.ok()) << fair.status();
  EXPECT_TRUE(fair->satisfied) << dataset_name << "/" << metric;
  EXPECT_LE(std::fabs(fair->val_fairness_parts[0]), epsilon + 1e-9);

  auto audit = Audit(*fair->model, fair->encoder, split.test, {spec});
  ASSERT_TRUE(audit.ok());
  EXPECT_GT(audit->accuracy, 0.6);
  // Test disparity near the budget (generalization, not a guarantee).
  EXPECT_LT(audit->max_disparity, 0.25);
}

INSTANTIATE_TEST_SUITE_P(
    PaperGrid, DatasetMetricIntegrationTest,
    ::testing::Combine(::testing::Values("adult", "compas", "lsac", "bank"),
                       ::testing::Values("sp", "fnr")));

TEST(IntegrationTest, TrainSaveReloadPredictMatches) {
  SyntheticOptions options;
  options.num_rows = 2500;
  const Dataset dataset = MakeAdultDataset(options);
  const TrainValTestSplit split = SplitDefault(dataset, 55);
  const FairnessSpec spec = MakeSpec(MainGroups("adult"), "sp", 0.05);

  auto trainer = MakeTrainer("xgb");
  OmniFair omnifair;
  auto fair = omnifair.Train(split.train, split.val, trainer.get(), {spec});
  ASSERT_TRUE(fair.ok());

  const std::string path = ::testing::TempDir() + "/integration_bundle.txt";
  ASSERT_TRUE(SaveFairModel(*fair, path).ok());
  auto reloaded = LoadFairModel(path);
  ASSERT_TRUE(reloaded.ok()) << reloaded.status();
  EXPECT_EQ(reloaded->Predict(split.test), fair->Predict(split.test));
}

TEST(IntegrationTest, PipelineIsDeterministic) {
  SyntheticOptions options;
  options.num_rows = 2000;
  options.seed = 9;
  const Dataset dataset = MakeCompasDataset(options);
  const TrainValTestSplit split = SplitDefault(dataset, 71);
  const FairnessSpec spec = MakeSpec(MainGroups("compas"), "sp", 0.04);

  std::vector<double> lambdas[2];
  std::vector<int> predictions[2];
  for (int round = 0; round < 2; ++round) {
    auto trainer = MakeTrainer("lr");
    OmniFair omnifair;
    auto fair = omnifair.Train(split.train, split.val, trainer.get(), {spec});
    ASSERT_TRUE(fair.ok());
    lambdas[round] = fair->lambdas;
    predictions[round] = fair->Predict(split.test);
  }
  EXPECT_EQ(lambdas[0], lambdas[1]);
  EXPECT_EQ(predictions[0], predictions[1]);
}

TEST(IntegrationTest, EqualizedOddsHelperEndToEnd) {
  SyntheticOptions options;
  options.num_rows = 3000;
  const Dataset dataset = MakeCompasDataset(options);
  const TrainValTestSplit split = SplitDefault(dataset, 13);
  const std::vector<FairnessSpec> specs =
      EqualizedOddsSpecs(MainGroups("compas"), 0.06);

  auto trainer = MakeTrainer("lr");
  OmniFair omnifair;
  auto fair = omnifair.Train(split.train, split.val, trainer.get(), specs);
  ASSERT_TRUE(fair.ok());
  ASSERT_EQ(fair->lambdas.size(), 2u);
  EXPECT_TRUE(fair->satisfied);
}

TEST(IntegrationTest, CsvRoundTripThroughPipeline) {
  // Dataset -> CSV -> Dataset -> train: the CLI's path, in-process.
  SyntheticOptions options;
  options.num_rows = 1500;
  const Dataset original = MakeBankDataset(options);
  const std::string path = ::testing::TempDir() + "/integration_bank.csv";
  ASSERT_TRUE(WriteCsv(original, path).ok());

  CsvReadOptions csv_options;
  csv_options.label_column = "subscribed";
  csv_options.force_categorical = {"age_group"};
  auto reloaded = ReadCsv(path, csv_options);
  ASSERT_TRUE(reloaded.ok()) << reloaded.status();
  ASSERT_EQ(reloaded->NumRows(), original.NumRows());

  const TrainValTestSplit split = SplitDefault(*reloaded, 3);
  const FairnessSpec spec = MakeSpec(MainGroups("bank"), "sp", 0.06);
  auto trainer = MakeTrainer("lr");
  OmniFair omnifair;
  auto fair = omnifair.Train(split.train, split.val, trainer.get(), {spec});
  ASSERT_TRUE(fair.ok()) << fair.status();
  EXPECT_TRUE(fair->satisfied);
}

}  // namespace
}  // namespace omnifair
