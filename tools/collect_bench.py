#!/usr/bin/env python3
"""Aggregate omnifair.bench JSON documents into one BENCH_SUMMARY.json.

Usage:
    tools/collect_bench.py [BENCH_DIR] [-o OUTPUT]

BENCH_DIR defaults to bench/out (where the bench binaries write when
OMNIFAIR_BENCH_OUT is unset); OUTPUT defaults to BENCH_DIR/BENCH_SUMMARY.json.

Each input document is validated against the omnifair.bench schema with
check_bench_json.py before inclusion; invalid documents are reported and
skipped so a single corrupt file does not poison the summary. The summary
carries, per bench: title, config, wall_seconds, row/trajectory counts, a
per-section numeric-field mean/min/max digest, and any recovery events.
Exit status is 1 when any input failed validation, 2 when no inputs exist.
"""

import argparse
import json
import os
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import check_bench_json  # noqa: E402


def is_number(value):
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def digest_sections(results):
    """Per-section mean/min/max over every numeric value field."""
    sections = {}
    for row in results:
        stats = sections.setdefault(row["section"], {"rows": 0, "values": {}})
        stats["rows"] += 1
        for field, value in row.get("values", {}).items():
            if not is_number(value):
                continue
            agg = stats["values"].setdefault(
                field, {"sum": 0.0, "min": value, "max": value, "count": 0})
            agg["sum"] += value
            agg["min"] = min(agg["min"], value)
            agg["max"] = max(agg["max"], value)
            agg["count"] += 1
    out = {}
    for name, stats in sorted(sections.items()):
        fields = {}
        for field, agg in sorted(stats["values"].items()):
            fields[field] = {
                "mean": agg["sum"] / agg["count"],
                "min": agg["min"],
                "max": agg["max"],
            }
        out[name] = {"rows": stats["rows"], "fields": fields}
    return out


def summarize(path, doc):
    summary = {
        "file": os.path.basename(path),
        "title": doc.get("title", ""),
        "config": doc.get("config", {}),
        "wall_seconds": doc.get("wall_seconds"),
        "result_rows": len(doc.get("results", [])),
        "trajectories": len(doc.get("tune_trajectories", [])),
        "sections": digest_sections(doc.get("results", [])),
    }
    if doc.get("recovery_events"):
        summary["recovery_events"] = doc["recovery_events"]
    return summary


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="Aggregate bench/out/*.json into BENCH_SUMMARY.json")
    parser.add_argument("bench_dir", nargs="?", default="bench/out",
                        help="directory of omnifair.bench JSON files")
    parser.add_argument("-o", "--output", default=None,
                        help="summary path (default: BENCH_DIR/BENCH_SUMMARY.json)")
    args = parser.parse_args(argv)

    if not os.path.isdir(args.bench_dir):
        print(f"collect_bench: no such directory: {args.bench_dir}",
              file=sys.stderr)
        return 2
    output = args.output or os.path.join(args.bench_dir, "BENCH_SUMMARY.json")

    benches = {}
    failures = []
    names = sorted(n for n in os.listdir(args.bench_dir) if n.endswith(".json"))
    names = [n for n in names
             if os.path.join(args.bench_dir, n) != os.path.abspath(output)
             and n != os.path.basename(output)]
    for name in names:
        path = os.path.join(args.bench_dir, name)
        try:
            with open(path, encoding="utf-8") as handle:
                doc = json.load(handle)
        except (OSError, json.JSONDecodeError) as error:
            failures.append((name, [str(error)]))
            continue
        if not isinstance(doc, dict):
            failures.append((name, ["top level is not an object"]))
            continue
        errors = []
        check_bench_json.check_document(doc, errors)
        if errors:
            failures.append((name, errors))
            continue
        benches[doc["bench"]] = summarize(path, doc)

    for name, errors in failures:
        print(f"collect_bench: skipping {name}:", file=sys.stderr)
        for error in errors[:5]:
            print(f"  {error}", file=sys.stderr)

    if not benches and not failures:
        print(f"collect_bench: no bench JSON in {args.bench_dir}",
              file=sys.stderr)
        return 2

    summary = {
        "schema": "omnifair.bench_summary",
        "schema_version": 1,
        "bench_count": len(benches),
        "skipped": [name for name, _ in failures],
        "benches": {name: benches[name] for name in sorted(benches)},
    }
    with open(output, "w", encoding="utf-8") as handle:
        json.dump(summary, handle, indent=2, sort_keys=False)
        handle.write("\n")
    print(f"wrote {output}: {len(benches)} benches"
          + (f", {len(failures)} skipped" if failures else ""))
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
