#ifndef OMNIFAIR_CORE_PROBLEM_H_
#define OMNIFAIR_CORE_PROBLEM_H_

#include <atomic>
#include <memory>
#include <vector>

#include "core/evaluator.h"
#include "core/spec.h"
#include "core/tune_report.h"
#include "core/weights.h"
#include "data/dataset.h"
#include "data/encoder.h"
#include "ml/classifier.h"
#include "util/status.h"
#include "util/stopwatch.h"
#include "util/train_budget.h"

namespace omnifair {

class CheckpointManager;
class RunProfiler;

/// A constrained fairness optimization instance (Equation 9/18): one
/// training split, one validation split, one black-box trainer, and the
/// pairwise constraints induced by the user's fairness specifications.
///
/// This is the workhorse the tuners drive: FitWithLambdas solves the
/// weighted unconstrained problem (Equation 12/21) for a hyperparameter
/// vector Lambda, and the evaluators measure AP/FP on the validation split
/// (the paper's "Use of Validation Set for Generalizability").
class FairnessProblem {
 public:
  /// Builds the problem: encodes features (encoder fit on `train` only),
  /// induces constraints from the specs against `train`, and materializes
  /// group memberships on both splits. Fails with kInvalidArgument when a
  /// spec is malformed or produces fewer than two groups. A non-null
  /// `profiler` charges the feature-encoding work (encoder fit + the two
  /// Transform calls) to RunStage::kEncode and the rest of construction to
  /// RunStage::kSetup, so the explain stage table separates encode cost
  /// from group induction.
  static Result<std::unique_ptr<FairnessProblem>> Create(
      const Dataset& train, const Dataset& val, std::vector<FairnessSpec> specs,
      Trainer* trainer, const EncoderOptions& encoder_options = {},
      RunProfiler* profiler = nullptr);

  FairnessProblem(const FairnessProblem&) = delete;
  FairnessProblem& operator=(const FairnessProblem&) = delete;

  size_t NumConstraints() const { return weight_computer_->NumConstraints(); }
  double Epsilon(size_t j) const;
  /// True when any constraint metric is FOR/FDR-like (weights parameterized
  /// by theta) — selects Algorithm 1's linear-search branch.
  bool DependsOnPredictions() const { return weight_computer_->DependsOnPredictions(); }

  /// Solves Equation (21) for the given Lambda: derives training-example
  /// weights (using `weight_model`'s train-split predictions when metrics
  /// are prediction-parameterized) and fits the trainer. Each call counts
  /// towards models_trained(). All Fit variants run the user trainer behind
  /// an exception firewall (DESIGN.md §8): a trainer that throws or returns
  /// null yields nullptr here, with the cause in last_fit_status().
  std::unique_ptr<Classifier> FitWithLambdas(const std::vector<double>& lambdas,
                                             const Classifier* weight_model);

  /// Fits the trainer with explicit per-example weights on the training
  /// split (used by preprocessing baselines such as Kamiran reweighing that
  /// derive their own weights). Counts towards models_trained().
  std::unique_ptr<Classifier> FitWithWeights(const std::vector<double>& weights);

  /// Outcome of one thread-safe exploratory fit (see FitWithLambdasOn).
  struct ParallelFitOutcome {
    std::unique_ptr<Classifier> model;
    /// Why `model` is null; kOk on success.
    Status status;
    /// Tune-stopwatch reading when the fit completed (TunePoint::seconds).
    double seconds = 0.0;
  };

  /// Thread-safe variant of FitWithLambdas for parallel tuners: drives the
  /// supplied trainer clone instead of the problem's trainer, runs behind
  /// the same exception firewall, and charges models_trained() and the
  /// budget atomically — but never touches the TuneReport or
  /// last_fit_status() (workers report through the returned outcome; the
  /// reduction thread merges TunePoints via AppendTunePoint).
  /// `weight_predictions` are precomputed train-split predictions of the
  /// weight model; nullptr iff no metric is prediction-parameterized.
  ParallelFitOutcome FitWithLambdasOn(Trainer& trainer,
                                      const std::vector<double>& lambdas,
                                      const std::vector<int>* weight_predictions);

  /// Like FitWithLambdas but trains on a deterministic row subsample of the
  /// training split (fraction in (0, 1]; 1.0 falls through to the full
  /// fit). Weights are derived on the full split and then subset. This is
  /// the paper's future-work scalability lever: cheap fits to prune lambda
  /// values during the bounding stage of Algorithm 1.
  std::unique_ptr<Classifier> FitWithLambdasSubsampled(
      const std::vector<double>& lambdas, const Classifier* weight_model,
      double fraction, uint64_t seed);

  /// Hard predictions on the train/validation split's encoded features.
  std::vector<int> PredictTrain(const Classifier& model) const;
  std::vector<int> PredictVal(const Classifier& model) const;

  /// AP(theta) on the validation split.
  double ValAccuracy(const std::vector<int>& val_predictions) const;

  const ConstraintEvaluator& val_evaluator() const { return *val_evaluator_; }
  const ConstraintEvaluator& train_evaluator() const {
    return weight_computer_->train_evaluator();
  }
  const WeightComputer& weight_computer() const { return *weight_computer_; }
  const FeatureEncoder& encoder() const { return encoder_; }
  Trainer* trainer() { return trainer_; }

  const Dataset& train() const { return *train_; }
  const Dataset& val() const { return *val_; }
  const Matrix& train_features() const { return X_train_; }
  const Matrix& val_features() const { return X_val_; }

  /// Number of trainer invocations so far (the efficiency currency of the
  /// paper's Figures 5/6).
  int models_trained() const {
    return models_trained_.load(std::memory_order_relaxed);
  }

  /// Why the most recent Fit* call returned nullptr (kOk after a success).
  const Status& last_fit_status() const { return fit_status_; }

  /// Attaches a (caller-owned) budget; every Fit* call is charged to it and
  /// the tuners poll BudgetExpired() before exploratory fits.
  void set_budget(TrainBudget* budget) { budget_ = budget; }
  TrainBudget* budget() const { return budget_; }
  bool BudgetExpired() const { return budget_ != nullptr && budget_->Expired(); }

  /// --- crash-safe checkpointing (DESIGN.md §12) ---
  /// Attaches a (caller-owned) checkpoint session. While it has pending
  /// replay records, FitWithLambdas / FitWithLambdasSubsampled return the
  /// logged models instead of training; afterwards every serial fit is
  /// recorded and the snapshot rewritten per the manager's interval policy
  /// (parallel tuners record at their own index-ordered barriers). Attached
  /// by the tuners' top-level entry points via AttachCheckpoint; pass
  /// nullptr to detach.
  void SetCheckpoint(CheckpointManager* checkpoint) { checkpoint_ = checkpoint; }
  CheckpointManager* checkpoint() const { return checkpoint_; }

  /// Unified stop poll for the tuners: budget expiry or a (simulated)
  /// post-checkpoint crash. Either way the search stops with the best model
  /// reached so far and InterruptStatus() as the cause.
  bool Interrupted() const;
  Status InterruptStatus() const;

  /// Tune-clock origin for a resumed run: recorded TunePoint seconds
  /// continue the original run's timeline instead of restarting at zero.
  void SetTuneSecondsBase(double seconds) { tune_seconds_base_ = seconds; }
  /// Seconds on the tune clock (base + stopwatch); the `seconds` stamped on
  /// TunePoints and checkpoint records.
  double TuneElapsedSeconds() const {
    return tune_seconds_base_ + tune_stopwatch_.ElapsedSeconds();
  }

  /// Replay counterpart of FitWithLambdasOn: consumes the next checkpointed
  /// fit instead of training. Charges the budget and model count exactly
  /// like the original fit (so model caps hold across resume) and returns
  /// the recorded outcome with its original completion seconds. A broken
  /// replay — lambda mismatch (tuner options changed between runs) or a
  /// corrupt model blob — returns a typed error WITHOUT charging and sets
  /// `*replay_failed` so callers can tell it from a replayed trainer
  /// failure. Never touches the TuneReport; callers append.
  ParallelFitOutcome ReplayFitOn(const std::vector<double>& lambdas,
                                 bool* replay_failed = nullptr);

  /// --- tune-trajectory recording (DESIGN.md §9) ---
  /// Attaches a caller-owned TuneReport; from here on every FitWithLambdas /
  /// FitWithLambdasSubsampled appends one TunePoint (including failed fits,
  /// which still consume a trainer invocation), so within a recorded search
  /// points.size() tracks models_trained exactly. Pass nullptr to stop.
  void StartTuneReport(TuneReport* report);
  bool RecordingTuneReport() const { return tune_report_ != nullptr; }
  /// Stage label stamped on subsequently recorded points ("exponential",
  /// "binary", ...). Cheap pointer store; tuners set it before each fit.
  void SetTuneStage(const char* stage) { tune_stage_ = stage; }
  /// Fills the validation metrics of the most recently recorded point.
  /// Tuners call this right after evaluating a fitted model on validation.
  void AnnotateLastTunePoint(double val_accuracy,
                             std::vector<double> val_fairness_parts);
  /// Appends one TunePoint with an explicit completion time (no-op unless
  /// recording). Parallel tuners call this from the reduction thread, in
  /// grid-index order, with each worker's FitWithLambdasOn outcome.
  void AppendTunePoint(const std::vector<double>& lambdas, bool fit_ok,
                       double seconds);
  /// epsilon_j for every induced constraint (TuneReport header data).
  std::vector<double> Epsilons() const;

  /// --- run profiling (DESIGN.md §13) ---
  /// Attaches a (caller-owned) stage profiler: every fit path then charges
  /// weight computation, trainer fits, predictions, and checkpoint IO to
  /// their RunStage, and the validation evaluator charges constraint
  /// evaluation. OmniFair::Train attaches one when telemetry >= kCounters;
  /// pass nullptr to detach. Relaxed atomic so parallel tuner workers read
  /// it without locking.
  void SetProfiler(RunProfiler* profiler);
  RunProfiler* profiler() const {
    return profiler_.load(std::memory_order_relaxed);
  }

 private:
  FairnessProblem() = default;

  /// Runs trainer_->Fit behind the exception firewall with sanitized
  /// weights; updates counters, the budget, and fit_status_.
  std::unique_ptr<Classifier> FirewalledFit(const Matrix& X, const std::vector<int>& y,
                                            std::vector<double> weights);

  /// Appends a TunePoint for a fit just issued at `lambdas` (no-op unless
  /// recording).
  void RecordTunePoint(const std::vector<double>& lambdas, bool fit_ok);

  /// Shared tail of the serial Fit* paths: appends the TunePoint and logs
  /// the fit to the attached checkpoint (which may write a snapshot).
  void FinishSerialFit(const std::vector<double>& lambdas,
                       const Classifier* model);

  /// Serial replay wrapper: ReplayFitOn + TuneReport append + fit_status_.
  std::unique_ptr<Classifier> ReplaySerialFit(const std::vector<double>& lambdas);

  std::unique_ptr<Dataset> train_;  // owned copies with stable addresses
  std::unique_ptr<Dataset> val_;
  FeatureEncoder encoder_;
  Matrix X_train_;
  Matrix X_val_;
  std::unique_ptr<WeightComputer> weight_computer_;
  std::unique_ptr<ConstraintEvaluator> val_evaluator_;
  std::vector<ConstraintSpec> constraints_;
  Trainer* trainer_ = nullptr;
  std::atomic<int> models_trained_{0};
  Status fit_status_;
  TrainBudget* budget_ = nullptr;
  CheckpointManager* checkpoint_ = nullptr;  // caller-owned; null = disabled
  std::atomic<RunProfiler*> profiler_{nullptr};  // caller-owned; null = off
  TuneReport* tune_report_ = nullptr;  // caller-owned; null = not recording
  const char* tune_stage_ = "";
  Stopwatch tune_stopwatch_;
  double tune_seconds_base_ = 0.0;  // resumed runs continue the old clock

  // Cached subsample (rebuilt when fraction/seed change).
  double subsample_fraction_ = 0.0;
  uint64_t subsample_seed_ = 0;
  std::vector<size_t> subsample_rows_;
  Matrix subsample_features_;
  std::vector<int> subsample_labels_;
};

}  // namespace omnifair

#endif  // OMNIFAIR_CORE_PROBLEM_H_
