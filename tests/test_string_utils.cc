#include "util/string_utils.h"

#include <gtest/gtest.h>

namespace omnifair {
namespace {

TEST(SplitTest, Basic) {
  const std::vector<std::string> parts = Split("a,b,c", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
  EXPECT_EQ(parts[2], "c");
}

TEST(SplitTest, KeepsEmptyFields) {
  const std::vector<std::string> parts = Split("a,,c", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[1], "");
}

TEST(SplitTest, NoDelimiter) {
  const std::vector<std::string> parts = Split("abc", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "abc");
}

TEST(SplitTest, EmptyInput) {
  const std::vector<std::string> parts = Split("", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "");
}

TEST(SplitTest, TrailingDelimiter) {
  const std::vector<std::string> parts = Split("a,b,", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[2], "");
}

TEST(StripWhitespaceTest, Basic) {
  EXPECT_EQ(StripWhitespace("  hello  "), "hello");
  EXPECT_EQ(StripWhitespace("\thello\n"), "hello");
  EXPECT_EQ(StripWhitespace("hello"), "hello");
  EXPECT_EQ(StripWhitespace("   "), "");
  EXPECT_EQ(StripWhitespace(""), "");
}

TEST(JoinTest, Basic) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({"a"}, ","), "a");
  EXPECT_EQ(Join({}, ","), "");
}

TEST(ParseDoubleTest, ValidInputs) {
  double value = 0.0;
  EXPECT_TRUE(ParseDouble("3.25", &value));
  EXPECT_DOUBLE_EQ(value, 3.25);
  EXPECT_TRUE(ParseDouble("-1e3", &value));
  EXPECT_DOUBLE_EQ(value, -1000.0);
  EXPECT_TRUE(ParseDouble("  7 ", &value));
  EXPECT_DOUBLE_EQ(value, 7.0);
}

TEST(ParseDoubleTest, InvalidInputs) {
  double value = 0.0;
  EXPECT_FALSE(ParseDouble("", &value));
  EXPECT_FALSE(ParseDouble("abc", &value));
  EXPECT_FALSE(ParseDouble("1.5x", &value));
  EXPECT_FALSE(ParseDouble("--2", &value));
}

TEST(FormatDoubleTest, Decimals) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatDouble(-0.5, 1), "-0.5");
  EXPECT_EQ(FormatDouble(2.0, 0), "2");
}

TEST(FormatPercentTest, SignedOutput) {
  EXPECT_EQ(FormatPercent(-0.012), "-1.2%");
  EXPECT_EQ(FormatPercent(0.5, 0), "+50%");
  EXPECT_EQ(FormatPercent(0.0), "+0.0%");
}

}  // namespace
}  // namespace omnifair
