#ifndef OMNIFAIR_CORE_GROUPS_H_
#define OMNIFAIR_CORE_GROUPS_H_

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "util/status.h"

namespace omnifair {

/// The dictionary a grouping function returns (Definition 2 in the paper):
/// group id -> member row indices. std::map keeps iteration deterministic.
/// Groups may overlap; a valid grouping yields at least two groups.
using GroupMap = std::map<std::string, std::vector<size_t>>;

/// A declarative grouping function g: takes a dataset, partitions (or covers)
/// its rows into named demographic groups. Users may pass any callable —
/// this is the paper's "users can write any logic for forming groups".
using GroupingFunction = std::function<GroupMap(const Dataset&)>;

/// Groups by the distinct values of one categorical column (the classic
/// sensitive-attribute grouping, e.g. g(D) by "race").
GroupingFunction GroupByAttribute(const std::string& column_name);

/// Groups by a column but keeps only the listed categories (rows with other
/// values belong to no group). Used e.g. to compare African-American vs
/// Caucasian while ignoring smaller groups.
GroupingFunction GroupByAttributeValues(const std::string& column_name,
                                        const std::vector<std::string>& values);

/// Intersectional grouping (§4.3): the cross product of several categorical
/// columns, e.g. {"race", "sex"} -> "African-American|Female", ...
/// Empty intersections are omitted.
GroupingFunction GroupByIntersection(const std::vector<std::string>& column_names);

/// Fully custom grouping from named predicates; groups may overlap.
GroupingFunction GroupByPredicates(
    std::vector<std::pair<std::string, std::function<bool(const Dataset&, size_t)>>>
        predicates);

/// Validates that the group map covers at least two non-empty groups.
bool IsValidGrouping(const GroupMap& groups);

/// Invokes a user-supplied grouping callable behind the no-throw API
/// boundary (DESIGN.md §8): a thrown exception becomes Status::Internal (and
/// a grouping_exception recovery event) instead of escaping the library.
Result<GroupMap> EvaluateGrouping(const GroupingFunction& grouping,
                                  const Dataset& dataset);

}  // namespace omnifair

#endif  // OMNIFAIR_CORE_GROUPS_H_
