#include "data/csv.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>

#include "util/status.h"
#include "util/string_utils.h"

namespace omnifair {

bool SplitCsvRecord(std::string_view record, char delimiter,
                    std::vector<std::string>* fields) {
  fields->clear();
  std::string field;
  bool in_quotes = false;
  for (size_t i = 0; i < record.size(); ++i) {
    const char c = record[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < record.size() && record[i + 1] == '"') {
          field.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        field.push_back(c);
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == delimiter) {
      fields->push_back(std::move(field));
      field.clear();
    } else {
      field.push_back(c);
    }
  }
  if (in_quotes) return false;
  fields->push_back(std::move(field));
  return true;
}

namespace {

/// "path:line: (byte N)" error prefix; N is the line's starting offset, so
/// a reported failure deep inside a multi-GB file is directly seekable.
std::string CsvErrorAt(const std::string& path, size_t line_number,
                       size_t byte_offset) {
  std::ostringstream prefix;
  prefix << path << ":" << line_number << ": (byte " << byte_offset << ")";
  return prefix.str();
}

}  // namespace

Result<Dataset> ReadCsv(const std::string& path, const CsvReadOptions& options) {
  std::ifstream in(path);
  if (!in) return IoError(path, "open");

  std::string line;
  if (!std::getline(in, line)) {
    return Status::InvalidArgument("empty CSV file " + path);
  }
  std::vector<std::string> header;
  if (!SplitCsvRecord(line, options.delimiter, &header)) {
    return Status::InvalidArgument(CsvErrorAt(path, 1, 0) +
                                   " unterminated quoted field");
  }
  for (std::string& name : header) name = std::string(StripWhitespace(name));

  int label_index = -1;
  for (size_t i = 0; i < header.size(); ++i) {
    if (header[i] == options.label_column) label_index = static_cast<int>(i);
  }
  if (label_index < 0) {
    return Status::InvalidArgument("label column '" + options.label_column +
                                   "' not found in " + path);
  }

  // First pass: collect raw cells, remembering each kept row's source line
  // and starting byte offset so later parse failures can name (and seek to)
  // the offending row (blank lines are skipped, so row index and line number
  // diverge).
  std::vector<std::vector<std::string>> cells;  // per column
  cells.resize(header.size());
  std::vector<size_t> row_lines;
  std::vector<size_t> row_offsets;
  std::vector<std::string> fields;
  size_t line_number = 1;
  size_t next_offset = line.size() + 1;  // header line + its newline
  while (std::getline(in, line)) {
    ++line_number;
    const size_t record_line = line_number;
    const size_t line_offset = next_offset;
    // getline consumed the delimiter unless it stopped at EOF.
    next_offset += line.size() + (in.eof() ? 0 : 1);
    // A '\n' inside a double-quoted field belongs to the record (same rule
    // as the streaming CsvRecordScanner): keep appending source lines while
    // the accumulated quote count is odd.
    while (std::count(line.begin(), line.end(), '"') % 2 != 0) {
      std::string continuation;
      if (!std::getline(in, continuation)) break;
      ++line_number;
      next_offset += continuation.size() + (in.eof() ? 0 : 1);
      line += '\n';
      line += continuation;
    }
    const std::string_view stripped = StripWhitespace(line);
    if (stripped.empty()) continue;
    if (!SplitCsvRecord(stripped, options.delimiter, &fields)) {
      return Status::InvalidArgument(CsvErrorAt(path, record_line, line_offset) +
                                     " unterminated quoted field");
    }
    if (fields.size() != header.size()) {
      std::ostringstream msg;
      msg << CsvErrorAt(path, record_line, line_offset) << " expected "
          << header.size() << " fields, got " << fields.size();
      return Status::InvalidArgument(msg.str());
    }
    for (size_t i = 0; i < fields.size(); ++i) {
      cells[i].emplace_back(StripWhitespace(fields[i]));
    }
    row_lines.push_back(record_line);
    row_offsets.push_back(line_offset);
  }

  // Infer column types and build the dataset.
  Dataset dataset(path);
  dataset.set_label_name(options.label_column);
  std::vector<int> labels;
  for (size_t c = 0; c < header.size(); ++c) {
    if (static_cast<int>(c) == label_index) {
      labels.reserve(cells[c].size());
      for (size_t r = 0; r < cells[c].size(); ++r) {
        const std::string& cell = cells[c][r];
        if (!options.positive_label_value.empty()) {
          labels.push_back(cell == options.positive_label_value ? 1 : 0);
        } else {
          double value = 0.0;
          if (!ParseDouble(cell, &value) || (value != 0.0 && value != 1.0)) {
            std::ostringstream msg;
            msg << CsvErrorAt(path, row_lines[r], row_offsets[r])
                << " label cell '" << cell << "' is not 0/1";
            return Status::InvalidArgument(msg.str());
          }
          labels.push_back(static_cast<int>(value));
        }
      }
      continue;
    }
    bool forced_categorical = false;
    for (const std::string& name : options.force_categorical) {
      if (name == header[c]) forced_categorical = true;
    }
    bool forced_numeric = false;
    for (const std::string& name : options.force_numeric) {
      if (name == header[c]) forced_numeric = true;
    }
    if (forced_categorical && forced_numeric) {
      return Status::InvalidArgument("column '" + header[c] +
                                     "' listed in both force_categorical and "
                                     "force_numeric");
    }
    if (forced_numeric) {
      Column col = Column::Numeric(header[c]);
      for (size_t r = 0; r < cells[c].size(); ++r) {
        double value = 0.0;
        if (!ParseDouble(cells[c][r], &value) || !std::isfinite(value)) {
          std::ostringstream msg;
          msg << CsvErrorAt(path, row_lines[r], row_offsets[r]) << " cell '"
              << cells[c][r] << "' in numeric column '" << header[c]
              << "' is not a finite number";
          return Status::InvalidArgument(msg.str());
        }
        col.AppendNumeric(value);
      }
      dataset.AddColumn(std::move(col));
      continue;
    }
    bool numeric = !forced_categorical;
    if (numeric) {
      for (const std::string& cell : cells[c]) {
        double value = 0.0;
        // Non-finite parses ("nan", "inf") demote the column to categorical:
        // they would otherwise poison every downstream loss (DESIGN.md §8).
        if (!ParseDouble(cell, &value) || !std::isfinite(value)) {
          numeric = false;
          break;
        }
      }
    }
    if (numeric) {
      Column col = Column::Numeric(header[c]);
      for (const std::string& cell : cells[c]) {
        double value = 0.0;
        ParseDouble(cell, &value);
        col.AppendNumeric(value);
      }
      dataset.AddColumn(std::move(col));
    } else {
      Column col = Column::Categorical(header[c], {});
      for (const std::string& cell : cells[c]) col.AppendCategory(cell);
      dataset.AddColumn(std::move(col));
    }
  }
  dataset.SetLabels(std::move(labels));
  Status status = dataset.Validate();
  if (!status.ok()) return status;
  return dataset;
}

Status WriteCsv(const Dataset& dataset, const std::string& path) {
  std::ofstream out(path);
  if (!out) return IoError(path, "open");

  for (size_t c = 0; c < dataset.NumColumns(); ++c) {
    out << dataset.ColumnAt(c).name() << ",";
  }
  out << dataset.label_name() << "\n";

  for (size_t r = 0; r < dataset.NumRows(); ++r) {
    for (size_t c = 0; c < dataset.NumColumns(); ++c) {
      const Column& col = dataset.ColumnAt(c);
      if (col.type() == ColumnType::kNumeric) {
        out << col.NumericValue(r);
      } else {
        out << col.CategoryOf(r);
      }
      out << ",";
    }
    out << dataset.Label(r) << "\n";
  }
  if (!out) return IoError(path, "write");
  return Status::Ok();
}

}  // namespace omnifair
