#include "baselines/cmaes.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/logging.h"
#include "util/random.h"

namespace omnifair {
namespace {

/// Cyclic Jacobi eigendecomposition of a symmetric matrix C (row-major,
/// d x d). On return `eigenvalues` holds the (unsorted) eigenvalues and
/// `eigenvectors` the corresponding columns.
void JacobiEigen(std::vector<double> C, size_t d, std::vector<double>* eigenvalues,
                 std::vector<double>* eigenvectors) {
  std::vector<double>& V = *eigenvectors;
  V.assign(d * d, 0.0);
  for (size_t i = 0; i < d; ++i) V[i * d + i] = 1.0;

  for (int sweep = 0; sweep < 60; ++sweep) {
    double off = 0.0;
    for (size_t p = 0; p < d; ++p) {
      for (size_t q = p + 1; q < d; ++q) off += C[p * d + q] * C[p * d + q];
    }
    if (off < 1e-22) break;
    for (size_t p = 0; p < d; ++p) {
      for (size_t q = p + 1; q < d; ++q) {
        const double apq = C[p * d + q];
        if (std::fabs(apq) < 1e-18) continue;
        const double app = C[p * d + p];
        const double aqq = C[q * d + q];
        const double tau = (aqq - app) / (2.0 * apq);
        const double t = (tau >= 0.0 ? 1.0 : -1.0) /
                         (std::fabs(tau) + std::sqrt(1.0 + tau * tau));
        const double c = 1.0 / std::sqrt(1.0 + t * t);
        const double s = t * c;
        for (size_t i = 0; i < d; ++i) {
          const double cip = C[i * d + p];
          const double ciq = C[i * d + q];
          C[i * d + p] = c * cip - s * ciq;
          C[i * d + q] = s * cip + c * ciq;
        }
        for (size_t i = 0; i < d; ++i) {
          const double cpi = C[p * d + i];
          const double cqi = C[q * d + i];
          C[p * d + i] = c * cpi - s * cqi;
          C[q * d + i] = s * cpi + c * cqi;
        }
        for (size_t i = 0; i < d; ++i) {
          const double vip = V[i * d + p];
          const double viq = V[i * d + q];
          V[i * d + p] = c * vip - s * viq;
          V[i * d + q] = s * vip + c * viq;
        }
      }
    }
  }
  eigenvalues->resize(d);
  for (size_t i = 0; i < d; ++i) (*eigenvalues)[i] = C[i * d + i];
}

}  // namespace

Cmaes::Cmaes(CmaesOptions options) : options_(options) {}

CmaesResult Cmaes::Minimize(const Objective& objective,
                            const std::vector<double>& x0) {
  const size_t d = x0.size();
  OF_CHECK_GT(d, 0u);
  Rng rng(options_.seed);

  const int lambda = options_.population > 0
                         ? options_.population
                         : 4 + static_cast<int>(3.0 * std::log(static_cast<double>(d)));
  const int mu = lambda / 2;

  // Recombination weights.
  std::vector<double> weights(mu);
  for (int i = 0; i < mu; ++i) {
    weights[i] = std::log(static_cast<double>(mu) + 0.5) -
                 std::log(static_cast<double>(i) + 1.0);
  }
  const double weight_sum = std::accumulate(weights.begin(), weights.end(), 0.0);
  for (double& w : weights) w /= weight_sum;
  double mu_eff = 0.0;
  for (double w : weights) mu_eff += w * w;
  mu_eff = 1.0 / mu_eff;

  // Strategy parameters (Hansen's defaults).
  const double dn = static_cast<double>(d);
  const double cc = (4.0 + mu_eff / dn) / (dn + 4.0 + 2.0 * mu_eff / dn);
  const double cs = (mu_eff + 2.0) / (dn + mu_eff + 5.0);
  const double c1 = 2.0 / ((dn + 1.3) * (dn + 1.3) + mu_eff);
  const double cmu = std::min(
      1.0 - c1, 2.0 * (mu_eff - 2.0 + 1.0 / mu_eff) / ((dn + 2.0) * (dn + 2.0) + mu_eff));
  const double damps =
      1.0 + 2.0 * std::max(0.0, std::sqrt((mu_eff - 1.0) / (dn + 1.0)) - 1.0) + cs;
  const double chi_n = std::sqrt(dn) * (1.0 - 1.0 / (4.0 * dn) + 1.0 / (21.0 * dn * dn));

  std::vector<double> mean = x0;
  double sigma = options_.sigma;
  std::vector<double> C(d * d, 0.0);
  for (size_t i = 0; i < d; ++i) C[i * d + i] = 1.0;
  std::vector<double> ps(d, 0.0);
  std::vector<double> pc(d, 0.0);
  std::vector<double> eigenvalues(d, 1.0);
  std::vector<double> B(d * d, 0.0);
  for (size_t i = 0; i < d; ++i) B[i * d + i] = 1.0;

  CmaesResult result;
  result.best_x = x0;
  result.best_value = objective(x0);
  result.evaluations = 1;

  std::vector<std::vector<double>> zs(lambda, std::vector<double>(d));
  std::vector<std::vector<double>> ys(lambda, std::vector<double>(d));
  std::vector<std::vector<double>> xs(lambda, std::vector<double>(d));
  std::vector<double> values(lambda);
  std::vector<int> order(lambda);

  for (int iteration = 0; iteration < options_.max_iterations; ++iteration) {
    result.iterations = iteration + 1;
    // Sample offspring: x = mean + sigma * B * diag(sqrt(eig)) * z.
    for (int i = 0; i < lambda; ++i) {
      for (size_t j = 0; j < d; ++j) zs[i][j] = rng.NextGaussian();
      for (size_t r = 0; r < d; ++r) {
        double acc = 0.0;
        for (size_t cidx = 0; cidx < d; ++cidx) {
          acc += B[r * d + cidx] * std::sqrt(std::max(eigenvalues[cidx], 1e-20)) *
                 zs[i][cidx];
        }
        ys[i][r] = acc;
        xs[i][r] = mean[r] + sigma * acc;
      }
      values[i] = objective(xs[i]);
      ++result.evaluations;
      if (values[i] < result.best_value) {
        result.best_value = values[i];
        result.best_x = xs[i];
      }
    }
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(),
              [&values](int a, int b) { return values[a] < values[b]; });

    // Recombination.
    std::vector<double> y_w(d, 0.0);
    std::vector<double> old_mean = mean;
    for (int i = 0; i < mu; ++i) {
      for (size_t j = 0; j < d; ++j) y_w[j] += weights[i] * ys[order[i]][j];
    }
    for (size_t j = 0; j < d; ++j) mean[j] += sigma * y_w[j];

    // Step-size path: ps = (1-cs) ps + sqrt(cs(2-cs)mu_eff) * C^{-1/2} y_w,
    // where C^{-1/2} = B diag(1/sqrt(eig)) B^T.
    std::vector<double> c_inv_half_yw(d, 0.0);
    for (size_t r = 0; r < d; ++r) {
      // t = B^T y_w
      double t = 0.0;
      for (size_t j = 0; j < d; ++j) t += B[j * d + r] * y_w[j];
      c_inv_half_yw[r] = t / std::sqrt(std::max(eigenvalues[r], 1e-20));
    }
    std::vector<double> mapped(d, 0.0);
    for (size_t r = 0; r < d; ++r) {
      double acc = 0.0;
      for (size_t cidx = 0; cidx < d; ++cidx) acc += B[r * d + cidx] * c_inv_half_yw[cidx];
      mapped[r] = acc;
    }
    const double ps_coef = std::sqrt(cs * (2.0 - cs) * mu_eff);
    double ps_norm2 = 0.0;
    for (size_t j = 0; j < d; ++j) {
      ps[j] = (1.0 - cs) * ps[j] + ps_coef * mapped[j];
      ps_norm2 += ps[j] * ps[j];
    }
    const double ps_norm = std::sqrt(ps_norm2);

    // Covariance path with stall (hsig).
    const double hsig_threshold =
        (1.4 + 2.0 / (dn + 1.0)) * chi_n *
        std::sqrt(1.0 - std::pow(1.0 - cs, 2.0 * (iteration + 1)));
    const double hsig = ps_norm < hsig_threshold ? 1.0 : 0.0;
    const double pc_coef = std::sqrt(cc * (2.0 - cc) * mu_eff);
    for (size_t j = 0; j < d; ++j) {
      pc[j] = (1.0 - cc) * pc[j] + hsig * pc_coef * y_w[j];
    }

    // Covariance update: rank-1 + rank-mu.
    const double c1a = c1 * (1.0 - (1.0 - hsig) * cc * (2.0 - cc));
    for (size_t r = 0; r < d; ++r) {
      for (size_t cidx = 0; cidx < d; ++cidx) {
        double rank_mu = 0.0;
        for (int i = 0; i < mu; ++i) {
          rank_mu += weights[i] * ys[order[i]][r] * ys[order[i]][cidx];
        }
        C[r * d + cidx] = (1.0 - c1a - cmu) * C[r * d + cidx] +
                          c1 * pc[r] * pc[cidx] + cmu * rank_mu;
      }
    }

    // Step-size adaptation.
    sigma *= std::exp((cs / damps) * (ps_norm / chi_n - 1.0));
    sigma = std::clamp(sigma, 1e-12, 1e6);

    // Refresh the eigendecomposition.
    JacobiEigen(C, d, &eigenvalues, &B);
  }
  return result;
}

}  // namespace omnifair
