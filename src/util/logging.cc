#include "util/logging.h"

#include <atomic>

namespace omnifair {
namespace {

std::atomic<LogSeverity> g_min_severity{LogSeverity::kInfo};

const char* SeverityTag(LogSeverity severity) {
  switch (severity) {
    case LogSeverity::kDebug:
      return "D";
    case LogSeverity::kInfo:
      return "I";
    case LogSeverity::kWarning:
      return "W";
    case LogSeverity::kError:
      return "E";
    case LogSeverity::kFatal:
      return "F";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogSeverity min_severity) { g_min_severity = min_severity; }
LogSeverity GetLogLevel() { return g_min_severity; }

namespace internal_logging {

LogMessage::LogMessage(LogSeverity severity, const char* file, int line)
    : severity_(severity) {
  stream_ << "[" << SeverityTag(severity) << " " << file << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  if (severity_ >= g_min_severity || severity_ == LogSeverity::kFatal) {
    std::cerr << stream_.str() << std::endl;
  }
  if (severity_ == LogSeverity::kFatal) std::abort();
}

}  // namespace internal_logging
}  // namespace omnifair
