#ifndef OMNIFAIR_SERVE_SERVER_H_
#define OMNIFAIR_SERVE_SERVER_H_

#include <atomic>
#include <functional>
#include <future>
#include <memory>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "linalg/matrix.h"
#include "ml/bundle.h"
#include "util/status.h"

namespace omnifair {

// ---------------------------------------------------------------------------
// Bundle-backed batched inference (DESIGN.md §15).
//
// A BundleServer loads a ModelBundle once and answers batched predict/audit
// requests against it: each request carries a matrix of encoded rows plus an
// optional group id per row; the response carries per-row scores/labels and
// per-group positive rates so fairness can be monitored live. Batches run
// through the flat in-place model (which shards rows across the global
// thread pool), so a request's scores are bit-identical to the offline
// model at every thread count.
//
// Admission control is a bounded in-flight counter: Submit() rejects with
// kUnavailable (and bumps the `serve.rejected` counter) once
// `max_in_flight` requests are executing or queued, so overload sheds
// cleanly instead of building an unbounded queue.
//
// Telemetry (all behind OMNIFAIR_TELEMETRY >= counters, exported by the
// Prometheus/JSONL exporters):
//   serve.requests       counter   accepted requests
//   serve.rejected       counter   requests shed by admission control
//   serve.rows           counter   rows scored
//   serve.batch_rows     histogram batch size distribution
//   serve.request_us     histogram per-request handle latency (p50/p99)
//   serve.queue_depth    gauge     in-flight requests (updated on admit
//                                  and on completion, so it returns to 0
//                                  once the server drains)
// ---------------------------------------------------------------------------

struct ServerOptions {
  /// Chunk-parallelism for RF/GBDT predict inside one request (1 = serial).
  int num_threads = 1;
  /// Admission-control bound: Submit() sheds once this many requests are
  /// in flight (executing or waiting on the pool).
  int max_in_flight = 32;
  /// Test hook run inside Handle() while the request counts as in-flight
  /// (lets tests hold requests open deterministically). Not for production.
  std::function<void()> testing_handle_hook;
};

/// One batch of encoded rows to score. `group_ids` is empty (no group
/// stats) or one id per row; negative ids mean "unknown group" and are
/// excluded from the per-group stats but still scored.
struct PredictRequest {
  Matrix features;
  std::vector<int> group_ids;
  double threshold = 0.5;
};

/// Positive rate / mean score of one group within a response batch.
struct GroupStats {
  int group_id = 0;
  long long rows = 0;
  double positive_rate = 0.0;
  double mean_score = 0.0;
};

struct PredictResponse {
  std::vector<double> scores;  ///< P(y=1 | x) per row
  std::vector<int> labels;     ///< scores thresholded at request.threshold
  std::vector<GroupStats> groups;
  /// Max pairwise positive-rate gap across groups in this batch (0 when
  /// fewer than two groups) — the live statistical-parity signal.
  double max_gap = 0.0;
};

class BundleServer {
 public:
  BundleServer(std::shared_ptr<const ModelBundle> bundle,
               const ServerOptions& options = {});

  /// Blocks until every admitted request has completed. Submit()'s pool
  /// tasks reference the server, so destroying it mid-burst (e.g. dropping
  /// the returned futures) is safe: teardown waits for in-flight work to
  /// drain instead of racing it.
  ~BundleServer();

  /// Scores one batch synchronously (no admission control; used directly by
  /// closed-loop callers and by Submit's pool tasks). Validates the feature
  /// width against the bundle and `group_ids` length against the batch,
  /// failing with kInvalidArgument.
  Result<PredictResponse> Handle(const PredictRequest& request) const;

  /// Asynchronous entry: admits the request (or sheds with kUnavailable),
  /// then runs Handle on the global thread pool. The future resolves to
  /// Handle's result once the request completes.
  Result<std::future<Result<PredictResponse>>> Submit(PredictRequest request);

  const ModelBundle& bundle() const { return *bundle_; }
  int in_flight() const { return in_flight_.load(std::memory_order_relaxed); }

 private:
  std::shared_ptr<const ModelBundle> bundle_;
  std::unique_ptr<Classifier> model_;
  ServerOptions options_;
  std::atomic<int> in_flight_{0};
};

/// Builds a PredictRequest from raw rows: encodes `dataset` with the
/// bundle's encoder (single pass) and, when `group_column` is non-empty,
/// extracts that categorical column's codes as group ids (-1 for rows whose
/// category is unknown). Fails with kInvalidArgument when the column is
/// missing or not categorical.
Result<PredictRequest> MakeRequest(const ModelBundle& bundle,
                                   const Dataset& dataset,
                                   const std::string& group_column = "",
                                   double threshold = 0.5);

}  // namespace omnifair

#endif  // OMNIFAIR_SERVE_SERVER_H_
