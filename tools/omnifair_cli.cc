// omnifair_cli — train, audit, and deploy fairness-constrained models from
// the command line without writing any C++.
//
//   # Generate a synthetic benchmark dataset as CSV:
//   omnifair_cli synth --dataset compas --rows 8000 --out compas.csv
//
//   # Train under a declarative constraint and save the bundle:
//   omnifair_cli train --data compas.csv --label two_year_recid \
//       --sensitive race --metric sp --epsilon 0.03 --model lr \
//       --out fair_model.txt
//
//   # Profile a dataset's columns and group base rates:
//   omnifair_cli profile --data compas.csv --label two_year_recid \
//       --sensitive race
//
//   # Audit a saved bundle on fresh data:
//   omnifair_cli audit --data holdout.csv --label two_year_recid \
//       --sensitive race --metric sp --epsilon 0.03 \
//       --model-file fair_model.txt
//
// Metrics: sp, mr, fpr, fnr, for, fdr. Models: lr, dt, rf, xgb, nn, nb.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "core/omnifair.h"
#include "core/run_profile.h"
#include "core/stream_tune.h"
#include "data/chunked_dataset.h"
#include "data/csv.h"
#include "data/datasets.h"
#include "data/profile.h"
#include "data/split.h"
#include "data/stream_reader.h"
#include "data/synthetic_stream.h"
#include "ml/bundle.h"
#include "ml/trainer_registry.h"
#include "serve/server.h"
#include "util/stopwatch.h"
#include "util/string_utils.h"
#include "util/telemetry.h"

namespace omnifair {
namespace cli {
namespace {

struct Args {
  std::string command;
  std::map<std::string, std::string> flags;
  /// Bare (non `--flag`) operands after the command, in order — used by the
  /// `bundle pack <model> <bundle>` / `bundle inspect <bundle>` forms.
  std::vector<std::string> positional;

  std::string Get(const std::string& key, const std::string& fallback = "") const {
    auto it = flags.find(key);
    return it != flags.end() ? it->second : fallback;
  }
  double GetDouble(const std::string& key, double fallback) const {
    auto it = flags.find(key);
    if (it == flags.end()) return fallback;
    double value = fallback;
    ParseDouble(it->second, &value);
    return value;
  }
  long GetLong(const std::string& key, long fallback) const {
    auto it = flags.find(key);
    return it != flags.end() ? std::atol(it->second.c_str()) : fallback;
  }
  bool Has(const std::string& key) const { return flags.count(key) > 0; }
};

int Usage() {
  std::fprintf(stderr,
               "usage: omnifair_cli <command> [--flag value ...]\n"
               "commands:\n"
               "  synth --dataset {adult|compas|lsac|bank} [--rows N] [--seed S]\n"
               "        --out data.csv\n"
               "        [--stream [--block-rows N]]   (write a chunked .ofcd file\n"
               "        block-by-block: 10M+ rows without holding them in RAM)\n"
               "  train --data data.csv --label COLUMN --sensitive COLUMN\n"
               "        [--metric sp] [--epsilon 0.05] [--model lr] [--seed S]\n"
               "        [--batch-size N] [--epochs N] [--lr-schedule constant|invsqrt]\n"
               "        (mini-batch SGD for lr/nn; batch-size 0 = full batch)\n"
               "        [--stream]   (out-of-core: --data is a .ofcd chunked file,\n"
               "        or a CSV ingested to <data>.ofcd first; lr + sp/mr/fpr/fnr)\n"
               "        [--positive-label VALUE] [--out model.txt]\n"
               "        [--checkpoint ckpt.bin] [--checkpoint-interval SECONDS]\n"
               "        [--resume [ckpt.bin]]   (resume a killed tuning run)\n"
               "        [--profile-out profile.json]\n"
               "  explain  (train + per-stage run profile; same flags as train)\n"
               "  profile --data data.csv --label COLUMN [--sensitive COLUMN]\n"
               "  audit --data data.csv --label COLUMN --sensitive COLUMN\n"
               "        [--metric sp] [--epsilon 0.05] [--positive-label VALUE]\n"
               "        --model-file model.txt\n"
               "  bundle pack model.txt model.ofb\n"
               "        [--metric sp] [--sensitive COLUMN] [--epsilon 0.05]\n"
               "  bundle inspect model.ofb\n"
               "  predict --data data.csv --label COLUMN\n"
               "        (--bundle model.ofb | --model-file model.txt)\n"
               "        [--threshold 0.5] [--out scores.txt]\n"
               "  serve --bundle model.ofb --data data.csv --label COLUMN\n"
               "        [--group COLUMN] [--batch 256] [--repeat 1]\n"
               "        [--threads N] [--queue 32] [--threshold 0.5]\n");
  return 2;
}

Result<Dataset> LoadCsvDataset(const Args& args) {
  CsvReadOptions options;
  options.label_column = args.Get("label", "label");
  options.positive_label_value = args.Get("positive-label");
  // Only force a column categorical when one was actually named (predict /
  // serve runs have no --sensitive flag).
  const std::string sensitive = args.Get("sensitive");
  if (!sensitive.empty()) options.force_categorical = {sensitive};
  const std::string group = args.Get("group");
  if (!group.empty()) options.force_categorical.push_back(group);
  return ReadCsv(args.Get("data"), options);
}

int RunSynth(const Args& args) {
  const std::string name = args.Get("dataset");
  const std::string out = args.Get("out");
  if (name.empty() || out.empty()) return Usage();
  if (args.Has("stream")) {
    synthetic::StreamGenerateOptions options;
    options.num_rows = static_cast<size_t>(args.GetLong("rows", 0));
    options.seed = static_cast<uint64_t>(args.GetLong("seed", 42));
    const long block_rows = args.GetLong("block-rows", 0);
    if (block_rows > 0) options.block_rows = static_cast<size_t>(block_rows);
    auto stats = synthetic::GenerateSyntheticStream(MakeSchemaByName(name), out,
                                                    options);
    if (!stats.ok()) {
      std::fprintf(stderr, "error: %s\n", stats.status().ToString().c_str());
      return 1;
    }
    std::printf("wrote %llu rows x %llu features in %llu blocks to %s\n",
                static_cast<unsigned long long>(stats->rows),
                static_cast<unsigned long long>(stats->num_features),
                static_cast<unsigned long long>(stats->blocks), out.c_str());
    return 0;
  }
  SyntheticOptions options;
  options.num_rows = static_cast<size_t>(args.GetLong("rows", 0));
  options.seed = static_cast<uint64_t>(args.GetLong("seed", 42));
  const Dataset dataset = MakeDatasetByName(name, options);
  const Status status = WriteCsv(dataset, out);
  if (!status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("wrote %zu rows x %zu columns to %s\n", dataset.NumRows(),
              dataset.NumColumns() + 1, out.c_str());
  return 0;
}

/// Writes the run profile JSON for --profile-out; shared by train/explain.
int WriteProfileOut(const FairModel& fair, const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "error: cannot open %s\n", path.c_str());
    return 1;
  }
  out << fair.run_profile.ToJson() << "\n";
  if (!out.flush()) {
    std::fprintf(stderr, "error: cannot write %s\n", path.c_str());
    return 1;
  }
  std::printf("wrote run profile   : %s\n", path.c_str());
  return 0;
}

bool MetricKindByName(const std::string& name, MetricKind* out) {
  if (name == "sp") { *out = MetricKind::kStatisticalParity; return true; }
  if (name == "mr") { *out = MetricKind::kMisclassificationRate; return true; }
  if (name == "fpr") { *out = MetricKind::kFalsePositiveRate; return true; }
  if (name == "fnr") { *out = MetricKind::kFalseNegativeRate; return true; }
  return false;
}

/// Index of a --group1/--group2 name in the chunked file's dictionary;
/// falls back to `fallback` when the flag is absent.
int ResolveGroupIndex(const std::vector<std::string>& names,
                      const std::string& flag, size_t fallback) {
  if (flag.empty()) return static_cast<int>(fallback);
  for (size_t i = 0; i < names.size(); ++i) {
    if (names[i] == flag) return static_cast<int>(i);
  }
  return -1;
}

/// Out-of-core `train --stream`: --data is a chunked .ofcd file (or a CSV
/// ingested to <data>.ofcd first), tuned by the streaming Algorithm 1 — one
/// block resident at a time, LR + prediction-independent metrics only.
int RunStreamTrain(const Args& args, bool explain) {
  if (!args.Has("data")) return Usage();
  const std::string model = args.Get("model", "lr");
  if (model != "lr") {
    std::fprintf(stderr, "error: --stream supports --model lr only\n");
    return 2;
  }
  StreamTuneOptions tune;
  if (!MetricKindByName(args.Get("metric", "sp"), &tune.metric)) {
    std::fprintf(stderr,
                 "error: --stream supports prediction-independent metrics "
                 "only (sp|mr|fpr|fnr)\n");
    return 2;
  }

  const bool profiling =
      EffectiveTelemetryLevel() >= TelemetryLevel::kCounters;
  RunProfiler profiler;
  MetricsSnapshot metrics_before;
  long long cpu_start_ns = -1;
  if (profiling) {
    metrics_before = MetricsRegistry::Global().Snapshot();
    cpu_start_ns = ProcessCpuNowNs();
  }
  Stopwatch stopwatch;

  const std::string data = args.Get("data");
  std::string chunked_path = data;
  const bool is_chunked =
      data.size() >= 5 && data.compare(data.size() - 5, 5, ".ofcd") == 0;
  if (!is_chunked) {
    if (!args.Has("sensitive")) return Usage();
    chunked_path = data + ".ofcd";
    StreamIngestOptions ingest;
    ingest.label_column = args.Get("label", "label");
    ingest.positive_label_value = args.Get("positive-label");
    ingest.group_column = args.Get("sensitive");
    const long block_rows = args.GetLong("block-rows", 0);
    if (block_rows > 0) ingest.block_rows = static_cast<size_t>(block_rows);
    RunStageTimer timer(profiling ? &profiler : nullptr, RunStage::kIngest);
    auto stats = StreamCsvToChunked(data, chunked_path, ingest);
    if (!stats.ok()) {
      std::fprintf(stderr, "error: %s\n", stats.status().ToString().c_str());
      return 1;
    }
    std::printf("ingested            : %llu rows, %llu blocks -> %s\n",
                static_cast<unsigned long long>(stats->rows),
                static_cast<unsigned long long>(stats->blocks),
                chunked_path.c_str());
  }

  Result<ChunkedDataset> chunked = ChunkedDataset::Open(chunked_path);
  if (!chunked.ok()) {
    std::fprintf(stderr, "error: %s\n", chunked.status().ToString().c_str());
    return 1;
  }
  const std::vector<std::string>& group_names = chunked->meta().group_names;
  const int g1 = ResolveGroupIndex(group_names, args.Get("group1"), 0);
  const int g2 = ResolveGroupIndex(group_names, args.Get("group2"), 1);
  if (g1 < 0 || g2 < 0) {
    std::fprintf(stderr, "error: --group1/--group2 not in the group dictionary\n");
    return 2;
  }
  tune.group1 = static_cast<size_t>(g1);
  tune.group2 = static_cast<size_t>(g2);
  tune.epsilon = args.GetDouble("epsilon", 0.05);
  const long batch = args.GetLong("batch-size", 4096);
  if (batch > 0) tune.batch_size = static_cast<size_t>(batch);
  tune.epochs = static_cast<int>(args.GetLong("epochs", 3));
  tune.shuffle_seed = static_cast<uint64_t>(args.GetLong("seed", 42));
  if (args.Get("lr-schedule") == "invsqrt") {
    tune.lr_schedule = LrSchedule::kInvSqrt;
  }

  Result<StreamTuneResult> tuned = [&]() -> Result<StreamTuneResult> {
    RunStageTimer timer(profiling ? &profiler : nullptr,
                        RunStage::kTrainerFit);
    return StreamTuneLambda(*chunked, tune);
  }();
  if (!tuned.ok()) {
    std::fprintf(stderr, "error: %s\n", tuned.status().ToString().c_str());
    return 1;
  }

  std::printf("rows (out-of-core)  : %llu in %zu blocks\n",
              static_cast<unsigned long long>(chunked->total_rows()),
              chunked->num_blocks());
  std::printf("constraint          : %s(%s) - %s(%s), epsilon %.4f\n",
              args.Get("metric", "sp").c_str(),
              group_names[tune.group1].c_str(), args.Get("metric", "sp").c_str(),
              group_names[tune.group2].c_str(), tune.epsilon);
  std::printf("satisfied (val)     : %s\n", tuned->satisfied ? "yes" : "no");
  std::printf("validation accuracy : %.2f%%\n", 100.0 * tuned->val_accuracy);
  std::printf("validation gap      : %.4f\n",
              std::abs(tuned->val_fairness_gap));
  std::printf("lambda              : %.6f\n", tuned->lambda);
  std::printf("model fits          : %d (%.2fs)\n", tuned->models_trained,
              stopwatch.ElapsedSeconds());
  if (explain && profiling) {
    const double total_wall_us = stopwatch.ElapsedSeconds() * 1e6;
    const long long cpu_now_ns = ProcessCpuNowNs();
    const double total_cpu_us =
        (cpu_start_ns >= 0 && cpu_now_ns >= 0)
            ? static_cast<double>(cpu_now_ns - cpu_start_ns) / 1e3
            : 0.0;
    const RunProfile profile = BuildRunProfile(
        profiler, metrics_before, MetricsRegistry::Global().Snapshot(),
        "stream_tune", 1, total_wall_us, total_cpu_us);
    std::printf("\n%s\n", profile.ToText().c_str());
  }
  return tuned->satisfied ? 0 : 3;
}

/// `explain` is train plus a per-stage profile dump: same flags, same exit
/// codes, with the RunProfile table printed after the training summary.
int RunTrain(const Args& args, bool explain) {
  if (args.Has("stream")) return RunStreamTrain(args, explain);
  if (!args.Has("data") || !args.Has("sensitive")) return Usage();
  Result<Dataset> dataset = LoadCsvDataset(args);
  if (!dataset.ok()) {
    std::fprintf(stderr, "error: %s\n", dataset.status().ToString().c_str());
    return 1;
  }
  const uint64_t seed = static_cast<uint64_t>(args.GetLong("seed", 42));
  const TrainValTestSplit split = SplitDefault(*dataset, seed);

  FairnessSpec spec = MakeSpec(GroupByAttribute(args.Get("sensitive")),
                               args.Get("metric", "sp"),
                               args.GetDouble("epsilon", 0.05));
  TrainerOverrides overrides;
  overrides.batch_size = static_cast<size_t>(args.GetLong("batch-size", 0));
  overrides.epochs = static_cast<int>(args.GetLong("epochs", 0));
  if (args.Get("lr-schedule") == "invsqrt") {
    overrides.lr_schedule = LrSchedule::kInvSqrt;
  }
  auto trainer = MakeTrainer(args.Get("model", "lr"), seed, overrides);
  OmniFairOptions options;
  options.checkpoint.path = args.Get("checkpoint");
  options.checkpoint.interval_s = args.GetDouble("checkpoint-interval", 0.0);
  if (args.Has("resume")) {
    // Bare --resume reuses the --checkpoint file; --resume FILE overrides.
    const std::string resume = args.Get("resume");
    options.checkpoint.resume_from =
        resume == "1" ? options.checkpoint.path : resume;
    if (options.checkpoint.resume_from.empty()) {
      std::fprintf(stderr,
                   "error: --resume needs --checkpoint PATH or --resume FILE\n");
      return 2;
    }
  }
  OmniFair omnifair(options);
  auto fair = omnifair.Train(split.train, split.val, trainer.get(), {spec});
  if (!fair.ok()) {
    std::fprintf(stderr, "error: %s\n", fair.status().ToString().c_str());
    return 1;
  }

  std::printf("constraints induced : %zu\n", fair->lambdas.size());
  std::printf("satisfied (val)     : %s\n", fair->satisfied ? "yes" : "no");
  std::printf("validation accuracy : %.2f%%\n", 100.0 * fair->val_accuracy);
  std::printf("model fits          : %d (%.2fs)\n", fair->models_trained,
              fair->train_seconds);
  if (explain) std::printf("\n%s\n", fair->run_profile.ToText().c_str());

  auto audit = Audit(*fair->model, fair->encoder, split.test, {spec});
  if (audit.ok()) {
    std::printf("test accuracy       : %.2f%%\n", 100.0 * audit->accuracy);
    std::printf("test ROC AUC        : %.3f\n", audit->roc_auc);
    for (size_t j = 0; j < audit->constraint_labels.size(); ++j) {
      std::printf("test disparity      : %-36s %.4f\n",
                  audit->constraint_labels[j].c_str(),
                  std::abs(audit->fairness_parts[j]));
    }
  }

  const std::string out = args.Get("out");
  if (!out.empty()) {
    const Status status = SaveFairModel(*fair, out);
    if (!status.ok()) {
      std::fprintf(stderr, "error saving model: %s\n", status.ToString().c_str());
      return 1;
    }
    std::printf("saved model bundle  : %s\n", out.c_str());
  }
  const std::string profile_out = args.Get("profile-out");
  if (!profile_out.empty()) {
    const int status = WriteProfileOut(*fair, profile_out);
    if (status != 0) return status;
  }
  return fair->satisfied ? 0 : 3;  // 3 = trained but constraint infeasible
}

int RunProfile(const Args& args) {
  if (!args.Has("data")) return Usage();
  Result<Dataset> dataset = LoadCsvDataset(args);
  if (!dataset.ok()) {
    std::fprintf(stderr, "error: %s\n", dataset.status().ToString().c_str());
    return 1;
  }
  const DatasetProfile profile = ProfileDataset(*dataset, args.Get("sensitive"));
  std::printf("%s", profile.ToString().c_str());
  return 0;
}

int RunAudit(const Args& args) {
  if (!args.Has("data") || !args.Has("sensitive") || !args.Has("model-file")) {
    return Usage();
  }
  Result<Dataset> dataset = LoadCsvDataset(args);
  if (!dataset.ok()) {
    std::fprintf(stderr, "error: %s\n", dataset.status().ToString().c_str());
    return 1;
  }
  Result<FairModel> fair = LoadFairModel(args.Get("model-file"));
  if (!fair.ok()) {
    std::fprintf(stderr, "error: %s\n", fair.status().ToString().c_str());
    return 1;
  }
  const FairnessSpec spec = MakeSpec(GroupByAttribute(args.Get("sensitive")),
                                     args.Get("metric", "sp"),
                                     args.GetDouble("epsilon", 0.05));
  auto audit = Audit(*fair->model, fair->encoder, *dataset, {spec});
  if (!audit.ok()) {
    std::fprintf(stderr, "error: %s\n", audit.status().ToString().c_str());
    return 1;
  }
  std::printf("rows audited: %zu\n%s", dataset->NumRows(),
              audit->ToString().c_str());
  return audit->satisfied ? 0 : 3;
}

/// `bundle pack model.txt model.ofb` / `bundle inspect model.ofb`.
int RunBundle(const Args& args) {
  if (args.positional.empty()) return Usage();
  const std::string& sub = args.positional[0];
  if (sub == "pack") {
    if (args.positional.size() != 3) return Usage();
    Result<FairModel> fair = LoadFairModel(args.positional[1]);
    if (!fair.ok()) {
      std::fprintf(stderr, "error: %s\n", fair.status().ToString().c_str());
      return 1;
    }
    BundleMeta meta;
    meta.lambdas = fair->lambdas;
    meta.satisfied = fair->satisfied;
    meta.val_accuracy = fair->val_accuracy;
    meta.metric = args.Get("metric");
    meta.sensitive_attribute = args.Get("sensitive");
    meta.epsilon = args.GetDouble("epsilon", 0.0);
    const Status status =
        WriteBundle(*fair->model, fair->encoder, meta, args.positional[2]);
    if (!status.ok()) {
      std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
      return 1;
    }
    Result<BundleInspection> inspection = InspectBundle(args.positional[2]);
    if (!inspection.ok()) {
      std::fprintf(stderr, "error: %s\n",
                   inspection.status().ToString().c_str());
      return 1;
    }
    std::printf("packed %s -> %s (%llu bytes, %zu sections)\n",
                args.positional[1].c_str(), args.positional[2].c_str(),
                static_cast<unsigned long long>(inspection->file_size),
                inspection->sections.size());
    return 0;
  }
  if (sub == "inspect") {
    if (args.positional.size() != 2) return Usage();
    Result<BundleInspection> inspection = InspectBundle(args.positional[1]);
    if (!inspection.ok()) {
      std::fprintf(stderr, "error: %s\n",
                   inspection.status().ToString().c_str());
      return 1;
    }
    std::printf("%s", inspection->ToString().c_str());
    return inspection->crc_ok ? 0 : 1;
  }
  return Usage();
}

/// Single-encode batch scoring: parse the CSV once, encode once, predict.
/// (`audit` re-derives groups and constraint metrics; this path is for raw
/// deployment scoring and takes either artifact format.)
int RunPredict(const Args& args) {
  if (!args.Has("data") || (!args.Has("bundle") && !args.Has("model-file"))) {
    return Usage();
  }
  Result<Dataset> dataset = LoadCsvDataset(args);
  if (!dataset.ok()) {
    std::fprintf(stderr, "error: %s\n", dataset.status().ToString().c_str());
    return 1;
  }
  const double threshold = args.GetDouble("threshold", 0.5);
  std::vector<double> scores;
  if (args.Has("bundle")) {
    Result<std::shared_ptr<const ModelBundle>> bundle =
        ModelBundle::Open(args.Get("bundle"));
    if (!bundle.ok()) {
      std::fprintf(stderr, "error: %s\n", bundle.status().ToString().c_str());
      return 1;
    }
    const Matrix X = (*bundle)->encoder().Transform(*dataset);
    scores = (*bundle)->MakeModel()->PredictProba(X);
  } else {
    Result<FairModel> fair = LoadFairModel(args.Get("model-file"));
    if (!fair.ok()) {
      std::fprintf(stderr, "error: %s\n", fair.status().ToString().c_str());
      return 1;
    }
    const Matrix X = fair->encoder.Transform(*dataset);
    scores = fair->model->PredictProba(X);
  }
  size_t positives = 0;
  double score_sum = 0.0;
  for (const double s : scores) {
    if (s >= threshold) ++positives;
    score_sum += s;
  }
  const std::string out = args.Get("out");
  if (!out.empty()) {
    std::ofstream file(out);
    if (!file) {
      std::fprintf(stderr, "error: cannot open %s\n", out.c_str());
      return 1;
    }
    char line[32];
    for (const double s : scores) {
      std::snprintf(line, sizeof(line), "%.17g\n", s);
      file << line;
    }
    if (!file.flush()) {
      std::fprintf(stderr, "error: cannot write %s\n", out.c_str());
      return 1;
    }
    std::printf("wrote scores        : %s\n", out.c_str());
  }
  std::printf("rows scored         : %zu\n", scores.size());
  std::printf("positive rate       : %.4f\n",
              scores.empty() ? 0.0
                             : static_cast<double>(positives) /
                                   static_cast<double>(scores.size()));
  std::printf("mean score          : %.4f\n",
              scores.empty() ? 0.0
                             : score_sum / static_cast<double>(scores.size()));
  return 0;
}

/// Closed-loop serving: load the bundle once, encode the CSV once, then push
/// fixed-size batches through a BundleServer and report throughput/latency.
int RunServe(const Args& args) {
  if (!args.Has("bundle") || !args.Has("data")) return Usage();
  Result<Dataset> dataset = LoadCsvDataset(args);
  if (!dataset.ok()) {
    std::fprintf(stderr, "error: %s\n", dataset.status().ToString().c_str());
    return 1;
  }
  Result<std::shared_ptr<const ModelBundle>> bundle =
      ModelBundle::Open(args.Get("bundle"));
  if (!bundle.ok()) {
    std::fprintf(stderr, "error: %s\n", bundle.status().ToString().c_str());
    return 1;
  }
  ServerOptions options;
  options.num_threads = static_cast<int>(args.GetLong("threads", 1));
  options.max_in_flight = static_cast<int>(args.GetLong("queue", 32));
  BundleServer server(*bundle, options);

  Result<PredictRequest> full = MakeRequest(
      **bundle, *dataset, args.Get("group"), args.GetDouble("threshold", 0.5));
  if (!full.ok()) {
    std::fprintf(stderr, "error: %s\n", full.status().ToString().c_str());
    return 1;
  }
  const size_t n = full->features.rows();
  const size_t batch =
      std::max<size_t>(1, static_cast<size_t>(args.GetLong("batch", 256)));
  const long repeat = std::max(1L, args.GetLong("repeat", 1));

  // Pre-slice the encoded matrix into batch requests (encode cost stays out
  // of the serving loop).
  std::vector<PredictRequest> requests;
  for (size_t start = 0; start < n; start += batch) {
    const size_t end = std::min(n, start + batch);
    std::vector<size_t> rows(end - start);
    for (size_t i = start; i < end; ++i) rows[i - start] = i;
    PredictRequest request;
    request.threshold = full->threshold;
    request.features = full->features.SelectRows(rows);
    if (!full->group_ids.empty()) {
      request.group_ids.assign(full->group_ids.begin() + start,
                               full->group_ids.begin() + end);
    }
    requests.push_back(std::move(request));
  }

  std::vector<double> latencies_us;
  latencies_us.reserve(requests.size() * static_cast<size_t>(repeat));
  PredictResponse last;
  const auto wall_start = std::chrono::steady_clock::now();
  for (long r = 0; r < repeat; ++r) {
    for (const PredictRequest& request : requests) {
      const auto t0 = std::chrono::steady_clock::now();
      Result<PredictResponse> response = server.Handle(request);
      const auto t1 = std::chrono::steady_clock::now();
      if (!response.ok()) {
        std::fprintf(stderr, "error: %s\n",
                     response.status().ToString().c_str());
        return 1;
      }
      latencies_us.push_back(
          std::chrono::duration<double, std::micro>(t1 - t0).count());
      last = std::move(*response);
    }
  }
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();
  std::sort(latencies_us.begin(), latencies_us.end());
  auto quantile = [&](double q) {
    if (latencies_us.empty()) return 0.0;
    const size_t rank = std::min(
        latencies_us.size() - 1,
        static_cast<size_t>(q * static_cast<double>(latencies_us.size())));
    return latencies_us[rank];
  };
  const double total_rows = static_cast<double>(n) * static_cast<double>(repeat);
  const double qps =
      wall_s > 0.0 ? static_cast<double>(latencies_us.size()) / wall_s : 0.0;
  OF_GAUGE_SET("serve.qps", qps);

  std::printf("bundle              : %s (%s, %s)\n", args.Get("bundle").c_str(),
              (*bundle)->meta().family.c_str(),
              (*bundle)->mapped() ? "mmap" : "owned buffer");
  std::printf("rows served         : %.0f (%zu requests, batch %zu)\n",
              total_rows, latencies_us.size(), batch);
  std::printf("throughput          : %.0f rows/s, %.1f req/s\n",
              wall_s > 0.0 ? total_rows / wall_s : 0.0, qps);
  std::printf("latency p50/p99     : %.0f us / %.0f us\n", quantile(0.50),
              quantile(0.99));
  if (!last.groups.empty()) {
    for (const GroupStats& g : last.groups) {
      std::printf("group %-13d : %lld rows, positive rate %.4f\n", g.group_id,
                  g.rows, g.positive_rate);
    }
    std::printf("max group gap       : %.4f (last batch)\n", last.max_gap);
  }
  return 0;
}

int Main(int argc, char** argv) {
  if (argc < 2) return Usage();
  Args args;
  args.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    std::string key = argv[i];
    if (key.rfind("--", 0) != 0) {
      // Bare operand (subcommand or file path) — collected in order.
      args.positional.push_back(key);
      continue;
    }
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      args.flags[key.substr(2)] = argv[++i];
    } else {
      // Valueless switch (e.g. a bare --resume): stored as "1".
      args.flags[key.substr(2)] = "1";
    }
  }
  // `bundle` takes positional operands; every other command rejects them
  // (previously any bare token was a usage error — keep that contract).
  if (args.command != "bundle" && !args.positional.empty()) return Usage();
  if (args.command == "synth") return RunSynth(args);
  if (args.command == "profile") return RunProfile(args);
  if (args.command == "train") return RunTrain(args, /*explain=*/false);
  if (args.command == "explain") return RunTrain(args, /*explain=*/true);
  if (args.command == "audit") return RunAudit(args);
  if (args.command == "bundle") return RunBundle(args);
  if (args.command == "predict") return RunPredict(args);
  if (args.command == "serve") return RunServe(args);
  return Usage();
}

}  // namespace
}  // namespace cli
}  // namespace omnifair

int main(int argc, char** argv) {
  // Honor OMNIFAIR_TELEMETRY / OMNIFAIR_METRICS_OUT like the benches do.
  omnifair::InitTelemetryFromEnv();
  return omnifair::cli::Main(argc, argv);
}
