#!/usr/bin/env python3
"""Compare two BENCH_SUMMARY.json files and flag perf regressions.

Usage:
    tools/bench_diff.py BASELINE.json CANDIDATE.json [--threshold 0.15]
                        [--all] [--sections SEC1,SEC2]

Both inputs are omnifair.bench_summary documents from tools/collect_bench.py.
For every bench section present in both summaries, each numeric field's mean
is compared. A field regresses when it moves past the relative threshold in
its bad direction:

  - time/size-like fields (containing "seconds", "_us", "_ms", "bytes", or
    "overhead") regress when the candidate is HIGHER,
  - quality-like fields (containing "speedup", "accuracy", "auc", "hits",
    "reused", or "qps") regress when the candidate is LOWER,
  - everything else is informational only (printed with --all, never fatal).

Exit status: 0 when no field regresses (a self-diff is always clean),
1 on regression, 2 on unreadable/invalid input. CI gates on this via the
bench_diff_smoke ctest targets.
"""

import argparse
import json
import sys

SCHEMA_NAME = "omnifair.bench_summary"

HIGHER_IS_WORSE = ("seconds", "_us", "_ms", "bytes", "overhead")
LOWER_IS_WORSE = ("speedup", "accuracy", "auc", "hits", "reused", "qps")


def direction(field):
    """-1: lower is better, +1: higher is better, 0: informational."""
    lowered = field.lower()
    if any(tag in lowered for tag in HIGHER_IS_WORSE):
        return -1
    if any(tag in lowered for tag in LOWER_IS_WORSE):
        return +1
    return 0


def load_summary(path):
    try:
        with open(path, encoding="utf-8") as handle:
            doc = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        raise ValueError(f"{path}: {error}")
    if not isinstance(doc, dict) or doc.get("schema") != SCHEMA_NAME:
        raise ValueError(f"{path}: not an {SCHEMA_NAME} document")
    if not isinstance(doc.get("benches"), dict):
        raise ValueError(f"{path}: missing 'benches' object")
    return doc


def iter_fields(summary):
    """Yields (bench, section, field, mean) for every numeric digest field."""
    for bench_name, bench in sorted(summary["benches"].items()):
        sections = bench.get("sections", {})
        if not isinstance(sections, dict):
            continue
        for section_name, section in sorted(sections.items()):
            fields = section.get("fields", {})
            if not isinstance(fields, dict):
                continue
            for field_name, digest in sorted(fields.items()):
                mean = digest.get("mean") if isinstance(digest, dict) else None
                if isinstance(mean, (int, float)) and not isinstance(mean, bool):
                    yield bench_name, section_name, field_name, float(mean)


def relative_delta(baseline, candidate):
    if baseline == 0.0:
        return 0.0 if candidate == 0.0 else float("inf")
    return (candidate - baseline) / abs(baseline)


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="Flag per-section perf regressions between two "
                    "BENCH_SUMMARY.json files")
    parser.add_argument("baseline", help="baseline BENCH_SUMMARY.json")
    parser.add_argument("candidate", help="candidate BENCH_SUMMARY.json")
    parser.add_argument("--threshold", type=float, default=0.15,
                        help="relative regression threshold (default 0.15)")
    parser.add_argument("--sections", default="",
                        help="comma-separated section allowlist "
                             "(default: every shared section)")
    parser.add_argument("--all", action="store_true",
                        help="also print unchanged and informational fields")
    args = parser.parse_args(argv)
    if args.threshold <= 0:
        print("bench_diff: --threshold must be positive", file=sys.stderr)
        return 2

    try:
        baseline = load_summary(args.baseline)
        candidate = load_summary(args.candidate)
    except ValueError as error:
        print(f"bench_diff: {error}", file=sys.stderr)
        return 2

    wanted = {s for s in args.sections.split(",") if s}
    base_fields = {
        (b, s, f): mean for b, s, f, mean in iter_fields(baseline)}
    cand_fields = {
        (b, s, f): mean for b, s, f, mean in iter_fields(candidate)}
    shared = sorted(set(base_fields) & set(cand_fields))
    if wanted:
        shared = [key for key in shared if key[1] in wanted]
    if not shared:
        print("bench_diff: no shared numeric fields to compare",
              file=sys.stderr)
        return 2

    regressions = []
    improvements = 0
    for key in shared:
        bench, section, field = key
        base = base_fields[key]
        cand = cand_fields[key]
        delta = relative_delta(base, cand)
        sign = direction(field)
        label = f"{bench}/{section}/{field}"
        regressed = sign != 0 and abs(delta) > args.threshold and (
            (sign < 0 and delta > 0) or (sign > 0 and delta < 0))
        improved = sign != 0 and abs(delta) > args.threshold and not regressed
        if regressed:
            regressions.append(
                f"REGRESSION {label}: {base:.6g} -> {cand:.6g} "
                f"({100.0 * delta:+.1f}%, threshold {100.0 * args.threshold:.0f}%)")
        elif improved:
            improvements += 1
            if args.all:
                print(f"improved   {label}: {base:.6g} -> {cand:.6g} "
                      f"({100.0 * delta:+.1f}%)")
        elif args.all:
            tag = "info      " if sign == 0 else "ok        "
            print(f"{tag} {label}: {base:.6g} -> {cand:.6g} "
                  f"({100.0 * delta:+.1f}%)")

    for line in regressions:
        print(line)
    print(f"bench_diff: {len(shared)} fields compared, "
          f"{len(regressions)} regressions, {improvements} improvements "
          f"(threshold {100.0 * args.threshold:.0f}%)")
    return 1 if regressions else 0


if __name__ == "__main__":
    sys.exit(main())
