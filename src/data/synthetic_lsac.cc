#include "data/datasets.h"

namespace omnifair {

// Matches the LSAC National Longitudinal Bar Passage Study: pass rates are
// high for everyone (so unconstrained accuracy is high and fairness-induced
// accuracy drops are small, as in the paper's Table 5 LSAC column) but the
// gap between White and Black examinees is large (~0.95 vs ~0.78). LSAT and
// GPA carry the predictive signal and are race-correlated.
synthetic::Schema MakeLsacSchema() {
  synthetic::Schema schema;
  schema.dataset_name = "lsac";
  schema.sensitive_attribute = "race";
  schema.label_name = "pass_bar";
  schema.default_num_rows = 27477;
  schema.groups = {
      {"White", 0.84, 0.95},
      {"Black", 0.06, 0.78},
      {"Hispanic", 0.05, 0.85},
      {"Other", 0.05, 0.88},
  };

  schema.numeric_features.push_back({.name = "lsat",
                                     .base_mean = 33.0,
                                     .label_shift = 5.5,
                                     .noise_sd = 4.5,
                                     .group_shift = {1.0, -3.2, -1.5, -0.5},
                                     .min_value = 11.0,
                                     .max_value = 48.0,
                                     .round_to_int = false});
  schema.numeric_features.push_back({.name = "ugpa",
                                     .base_mean = 3.0,
                                     .label_shift = 0.35,
                                     .noise_sd = 0.35,
                                     .group_shift = {0.05, -0.22, -0.10, -0.02},
                                     .min_value = 1.5,
                                     .max_value = 4.0});
  schema.numeric_features.push_back({.name = "zfygpa",
                                     .base_mean = -0.3,
                                     .label_shift = 0.8,
                                     .noise_sd = 0.8,
                                     .group_shift = {0.05, -0.3, -0.15, -0.05},
                                     .min_value = -3.5,
                                     .max_value = 3.5});
  schema.numeric_features.push_back({.name = "decile1",
                                     .base_mean = 4.2,
                                     .label_shift = 2.0,
                                     .noise_sd = 2.6,
                                     .group_shift = {0.1, -0.8, -0.4, -0.1},
                                     .min_value = 1.0,
                                     .max_value = 10.0,
                                     .round_to_int = true});
  schema.numeric_features.push_back({.name = "decile3",
                                     .base_mean = 4.3,
                                     .label_shift = 2.0,
                                     .noise_sd = 2.7,
                                     .group_shift = {0.1, -0.8, -0.4, -0.1},
                                     .min_value = 1.0,
                                     .max_value = 10.0,
                                     .round_to_int = true});
  schema.numeric_features.push_back({.name = "fam_inc",
                                     .base_mean = 3.0,
                                     .label_shift = 0.35,
                                     .noise_sd = 1.0,
                                     .group_shift = {0.15, -0.55, -0.3, -0.05},
                                     .min_value = 1.0,
                                     .max_value = 5.0,
                                     .round_to_int = true});
  schema.numeric_features.push_back({.name = "age",
                                     .base_mean = 28.5,
                                     .label_shift = -0.6,
                                     .noise_sd = 5.5,
                                     .min_value = 20.0,
                                     .max_value = 65.0,
                                     .round_to_int = true});

  schema.categorical_features.push_back(
      {.name = "gender",
       .categories = {"Male", "Female"},
       .weights_y0 = {0.52, 0.48},
       .weights_y1 = {0.56, 0.44}});
  schema.categorical_features.push_back(
      {.name = "fulltime",
       .categories = {"Fulltime", "Parttime"},
       .weights_y0 = {0.82, 0.18},
       .weights_y1 = {0.90, 0.10}});
  schema.categorical_features.push_back(
      {.name = "cluster",
       .categories = {"Tier1", "Tier2", "Tier3", "Tier4"},
       .weights_y0 = {0.12, 0.30, 0.38, 0.20},
       .weights_y1 = {0.24, 0.36, 0.30, 0.10}});

  return schema;
}

Dataset MakeLsacDataset(const SyntheticOptions& options) {
  return synthetic::Generate(MakeLsacSchema(), options);
}

}  // namespace omnifair
