#include "baselines/thomas.h"

#include <cmath>

#include "baselines/cmaes.h"
#include "core/problem.h"
#include "ml/logistic_regression.h"
#include "ml/metrics.h"
#include "util/stopwatch.h"

namespace omnifair {

ThomasSeldonian::ThomasSeldonian(Options options) : options_(options) {}

bool ThomasSeldonian::SupportsMetric(const FairnessMetric& metric) const {
  // Any metric expressible through predictions works in the penalized
  // objective, including prediction-parameterized ones (evaluated exactly,
  // since CMA-ES never needs gradients).
  return true;
}

Result<BaselineResult> ThomasSeldonian::Train(const Dataset& train, const Dataset& val,
                                              Trainer* /*trainer*/,
                                              const FairnessSpec& spec) {
  Stopwatch stopwatch;
  // The problem object supplies encoding and constraint evaluation; the
  // trainer inside is only used as a placeholder and never invoked.
  LogisticRegressionTrainer placeholder;
  Result<std::unique_ptr<FairnessProblem>> problem =
      FairnessProblem::Create(train, val, {spec}, &placeholder);
  if (!problem.ok()) return problem.status();

  const Matrix& X = (*problem)->train_features();
  const std::vector<int>& y = (*problem)->train().labels();
  const size_t d = X.cols();
  const size_t n = X.rows();

  // Candidate objective: -accuracy + rho * sum_j max(0, |FP_j| - margin *
  // eps_j), measured on the training split with a safety margin on epsilon.
  std::vector<int> predictions(n);
  long long evaluations = 0;
  auto make_objective = [&](double margin) {
    return [&, margin](const std::vector<double>& theta) {
      for (size_t i = 0; i < n; ++i) {
        const double* row = X.Row(i);
        double z = theta[d];
        for (size_t c = 0; c < d; ++c) z += row[c] * theta[c];
        predictions[i] = z >= 0.0 ? 1 : 0;
      }
      ++evaluations;
      double value = -Accuracy(y, predictions);
      const std::vector<double> fps =
          (*problem)->train_evaluator().FairnessParts(predictions);
      for (size_t j = 0; j < fps.size(); ++j) {
        const double slack = std::fabs(fps[j]) - margin * (*problem)->Epsilon(j);
        if (slack > 0.0) value += options_.penalty * slack;
      }
      return value;
    };
  };

  BaselineResult result;
  result.encoder = (*problem)->encoder();
  // Seldonian loop: optimize with a train-side safety margin, then run the
  // safety test on held-out data; if it fails, retighten and retry (the
  // candidate-selection / safety-test split of the framework).
  double margin = options_.margin;
  for (int attempt = 0; attempt < 3; ++attempt) {
    CmaesOptions cmaes_options;
    cmaes_options.max_iterations = options_.cmaes_iterations;
    cmaes_options.seed = options_.seed + static_cast<uint64_t>(attempt);
    Cmaes cmaes(cmaes_options);
    const CmaesResult solution =
        cmaes.Minimize(make_objective(margin), std::vector<double>(d + 1, 0.0));
    std::vector<double> coefficients(solution.best_x.begin(),
                                     solution.best_x.end() - 1);
    const double intercept = solution.best_x.back();
    auto model = std::make_unique<LogisticRegressionModel>(std::move(coefficients),
                                                           intercept);
    const std::vector<int> val_preds = (*problem)->PredictVal(*model);
    const bool satisfied =
        (*problem)->val_evaluator().MaxViolation(val_preds) <= 1e-12;
    const double accuracy = (*problem)->ValAccuracy(val_preds);
    if (satisfied || result.model == nullptr) {
      result.model = std::move(model);
      result.satisfied = satisfied;
      result.val_accuracy = accuracy;
      result.val_fairness_parts = (*problem)->val_evaluator().FairnessParts(val_preds);
    }
    if (satisfied) break;
    margin *= 0.5;  // tighten the candidate-selection epsilon and retry
  }
  // One CMA-ES candidate evaluation ~ one "model" in spirit; report the
  // count so efficiency benches can contrast with retraining-based methods.
  result.models_trained = static_cast<int>(evaluations);
  result.train_seconds = stopwatch.ElapsedSeconds();
  return result;
}

}  // namespace omnifair
