#include "util/logging.h"

#include <atomic>
#include <mutex>

#include "util/telemetry.h"

namespace omnifair {
namespace {

std::atomic<LogSeverity> g_min_severity{LogSeverity::kInfo};

const char* SeverityTag(LogSeverity severity) {
  switch (severity) {
    case LogSeverity::kDebug:
      return "D";
    case LogSeverity::kInfo:
      return "I";
    case LogSeverity::kWarning:
      return "W";
    case LogSeverity::kError:
      return "E";
    case LogSeverity::kFatal:
      return "F";
  }
  return "?";
}

/// Registry counters backing the RecoveryEvent API, resolved once and cached
/// (registry pointers are stable for the process lifetime). Named
/// "recovery.<event>" so they show up alongside the rest of the telemetry in
/// metric snapshots and bench JSON.
Counter* RecoveryCounter(RecoveryEvent event) {
  static Counter* counters[static_cast<size_t>(RecoveryEvent::kCount)] = {};
  static std::once_flag once;
  std::call_once(once, [] {
    for (size_t i = 0; i < static_cast<size_t>(RecoveryEvent::kCount); ++i) {
      counters[i] = MetricsRegistry::Global().GetCounter(
          std::string("recovery.") +
          RecoveryEventName(static_cast<RecoveryEvent>(i)));
    }
  });
  return counters[static_cast<size_t>(event)];
}

}  // namespace

void SetLogLevel(LogSeverity min_severity) { g_min_severity = min_severity; }
LogSeverity GetLogLevel() { return g_min_severity; }

const char* RecoveryEventName(RecoveryEvent event) {
  switch (event) {
    case RecoveryEvent::kTrainerException:
      return "trainer_exception";
    case RecoveryEvent::kGroupingException:
      return "grouping_exception";
    case RecoveryEvent::kDivergenceBackoff:
      return "divergence_backoff";
    case RecoveryEvent::kNonFiniteMetric:
      return "non_finite_metric";
    case RecoveryEvent::kNonFiniteWeight:
      return "non_finite_weight";
    case RecoveryEvent::kBudgetExpired:
      return "budget_expired";
    case RecoveryEvent::kCount:
      break;
  }
  return "unknown";
}

void CountRecoveryEvent(RecoveryEvent event) {
  const size_t index = static_cast<size_t>(event);
  if (index >= static_cast<size_t>(RecoveryEvent::kCount)) return;
  RecoveryCounter(event)->Add(1);
}

long long RecoveryEventCount(RecoveryEvent event) {
  const size_t index = static_cast<size_t>(event);
  if (index >= static_cast<size_t>(RecoveryEvent::kCount)) return 0;
  return RecoveryCounter(event)->Value();
}

void ResetRecoveryEvents() {
  for (size_t i = 0; i < static_cast<size_t>(RecoveryEvent::kCount); ++i) {
    RecoveryCounter(static_cast<RecoveryEvent>(i))->Reset();
  }
}

std::string RecoveryEventSummary() {
  std::string summary;
  for (size_t i = 0; i < static_cast<size_t>(RecoveryEvent::kCount); ++i) {
    const long long count = RecoveryEventCount(static_cast<RecoveryEvent>(i));
    if (count == 0) continue;
    if (!summary.empty()) summary += " ";
    summary += RecoveryEventName(static_cast<RecoveryEvent>(i));
    summary += "=";
    summary += std::to_string(count);
  }
  return summary.empty() ? "none" : summary;
}

namespace internal_logging {

LogMessage::LogMessage(LogSeverity severity, const char* file, int line)
    : severity_(severity) {
  stream_ << "[" << SeverityTag(severity) << " " << file << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  if (severity_ >= g_min_severity || severity_ == LogSeverity::kFatal) {
    std::cerr << stream_.str() << std::endl;
  }
  if (severity_ == LogSeverity::kFatal) std::abort();
}

}  // namespace internal_logging
}  // namespace omnifair
