#include "util/status.h"

#include <sstream>

#include <gtest/gtest.h>

namespace omnifair {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOk);
  EXPECT_EQ(status.ToString(), "OK");
}

TEST(StatusTest, FactoryConstructors) {
  EXPECT_EQ(Status::InvalidArgument("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::Infeasible("x").code(), StatusCode::kInfeasible);
  EXPECT_EQ(Status::Unsupported("x").code(), StatusCode::kUnsupported);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(StatusTest, MessagePreserved) {
  Status status = Status::Infeasible("no lambda found");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.message(), "no lambda found");
  EXPECT_EQ(status.ToString(), "INFEASIBLE: no lambda found");
}

TEST(StatusTest, StreamOperator) {
  std::ostringstream os;
  os << Status::Unsupported("rf");
  EXPECT_EQ(os.str(), "UNSUPPORTED: rf");
}

TEST(StatusTest, CodeToString) {
  EXPECT_EQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_EQ(StatusCodeToString(StatusCode::kInvalidArgument), "INVALID_ARGUMENT");
  EXPECT_EQ(StatusCodeToString(StatusCode::kInfeasible), "INFEASIBLE");
  EXPECT_EQ(StatusCodeToString(StatusCode::kUnsupported), "UNSUPPORTED");
  EXPECT_EQ(StatusCodeToString(StatusCode::kInternal), "INTERNAL");
}

TEST(ResultTest, HoldsValue) {
  Result<int> result(42);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), 42);
  EXPECT_EQ(*result, 42);
}

TEST(ResultTest, HoldsStatus) {
  Result<int> result(Status::InvalidArgument("bad"));
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> result(std::make_unique<int>(5));
  ASSERT_TRUE(result.ok());
  std::unique_ptr<int> taken = std::move(result).value();
  EXPECT_EQ(*taken, 5);
}

TEST(ResultTest, ArrowOperator) {
  struct Payload {
    int x = 9;
  };
  Result<Payload> result(Payload{});
  EXPECT_EQ(result->x, 9);
}

TEST(ResultTest, MutableAccess) {
  Result<int> result(1);
  *result = 7;
  EXPECT_EQ(result.value(), 7);
}

}  // namespace
}  // namespace omnifair
