#ifndef OMNIFAIR_UTIL_JSON_WRITER_H_
#define OMNIFAIR_UTIL_JSON_WRITER_H_

#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace omnifair {

/// Minimal streaming JSON writer used by the telemetry exports (metrics
/// snapshots, Chrome trace files, TuneReport, bench documents). Produces
/// compact valid JSON: strings are escaped, non-finite doubles become null
/// (JSON has no NaN/Infinity), and commas are inserted automatically.
///
/// Usage:
///   JsonWriter w(os);
///   w.BeginObject();
///   w.Key("answer"); w.Int(42);
///   w.Key("parts"); w.BeginArray(); w.Double(0.5); w.EndArray();
///   w.EndObject();
///
/// Misuse (e.g. a value in an object without a preceding Key) is a
/// programmer error and trips an OF_CHECK in the implementation.
class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& os) : os_(os) {}

  JsonWriter(const JsonWriter&) = delete;
  JsonWriter& operator=(const JsonWriter&) = delete;

  void BeginObject();
  void EndObject();
  void BeginArray();
  void EndArray();

  /// Writes an object key; must be followed by exactly one value.
  void Key(std::string_view key);

  void String(std::string_view value);
  void Int(long long value);
  void UInt(unsigned long long value);
  void Double(double value);
  void Bool(bool value);
  void Null();

  /// Convenience: Key + value in one call.
  void KV(std::string_view key, std::string_view value) { Key(key); String(value); }
  void KV(std::string_view key, const char* value) { Key(key); String(value); }
  void KV(std::string_view key, long long value) { Key(key); Int(value); }
  void KV(std::string_view key, int value) { Key(key); Int(value); }
  void KV(std::string_view key, size_t value) { Key(key); UInt(value); }
  void KV(std::string_view key, double value) { Key(key); Double(value); }
  void KV(std::string_view key, bool value) { Key(key); Bool(value); }

 private:
  enum class Scope { kObject, kArray };

  void BeforeValue();
  void WriteEscaped(std::string_view text);

  std::ostream& os_;
  std::vector<Scope> scopes_;
  std::vector<bool> first_;   // parallel to scopes_: no comma needed yet
  bool key_pending_ = false;  // a Key was written; next value omits the comma
};

/// Escapes `text` as a double-quoted JSON string literal (with quotes).
std::string JsonEscape(std::string_view text);

}  // namespace omnifair

#endif  // OMNIFAIR_UTIL_JSON_WRITER_H_
