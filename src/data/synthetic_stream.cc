#include "data/synthetic_stream.h"

#include <memory>
#include <sstream>
#include <utility>
#include <vector>

#include "data/chunked_dataset.h"
#include "data/dataset.h"
#include "util/logging.h"
#include "util/random.h"
#include "util/telemetry.h"

namespace omnifair {
namespace synthetic {

Result<StreamGenerateStats> GenerateSyntheticStream(
    const Schema& schema, const std::string& out_path,
    const StreamGenerateOptions& options) {
  OF_CHECK_GE(schema.groups.size(), 2u) << schema.dataset_name;
  const size_t total = options.num_rows > 0 ? options.num_rows : schema.default_num_rows;
  const size_t block_rows = options.block_rows > 0 ? options.block_rows : 65536;
  if (total == 0) {
    return Status::InvalidArgument("GenerateSyntheticStream: zero rows for " +
                                   schema.dataset_name);
  }

  std::vector<std::string> group_names;
  for (const GroupSpec& g : schema.groups) group_names.push_back(g.name);

  // Per-block seeds come from one base stream, so the file depends only on
  // (seed, block_rows), never on how the caller interleaves other RNG use.
  Rng seed_stream(options.seed);

  FeatureEncoder encoder;
  EncoderOptions encoder_options = options.encoder;
  encoder_options.float32_features = true;  // chunked-format contract
  std::string encoder_text;
  std::unique_ptr<ChunkedDatasetWriter> writer;

  StreamGenerateStats stats;
  for (size_t start = 0; start < total; start += block_rows) {
    const size_t rows = std::min(block_rows, total - start);
    SyntheticOptions block_options;
    block_options.num_rows = rows;
    block_options.seed = seed_stream.NextUint64();
    Dataset block = Generate(schema, block_options);
    if (!writer) {
      encoder.Fit(block, encoder_options);
      std::ostringstream os;
      encoder.SerializeTo(os);
      encoder_text = os.str();
      // Packed layout: categorical columns spill as u16 codes, so a 10M-row
      // file stays ~4x smaller than the dense float32 equivalent.
      Result<ChunkedLayout> layout = ChunkedLayout::FromPlans(
          encoder.plans(), encoder_options.one_hot_categorical);
      if (!layout.ok()) return layout.status();
      Result<ChunkedDatasetWriter> created =
          ChunkedDatasetWriter::Create(out_path, std::move(*layout));
      if (!created.ok()) return created.status();
      writer = std::make_unique<ChunkedDatasetWriter>(std::move(*created));
    }
    DatasetBlock out;
    out.features = encoder.Transform(block);
    out.labels = block.labels();
    out.groups = block.ColumnByName(schema.sensitive_attribute).codes();
    Status status = writer->AppendBlock(out);
    if (!status.ok()) return status;
    stats.rows += rows;
    stats.blocks += 1;
    OF_COUNTER_ADD("ingest.rows", static_cast<int64_t>(rows));
  }

  Status status = writer->Finalize(schema.label_name, schema.sensitive_attribute,
                                   group_names, encoder_text);
  if (!status.ok()) return status;
  stats.num_features = encoder.NumFeatures();
  return stats;
}

}  // namespace synthetic
}  // namespace omnifair
