#include "baselines/agarwal.h"

#include <cmath>

#include "core/problem.h"
#include "util/logging.h"
#include "util/stopwatch.h"

namespace omnifair {

AgarwalReductions::AgarwalReductions(Options options) : options_(options) {}
namespace {

/// The randomized classifier ExpGrad returns: a uniform mixture over the
/// learner's best responses, realized by averaging probabilities.
class AverageEnsembleClassifier : public Classifier {
 public:
  explicit AverageEnsembleClassifier(std::vector<std::unique_ptr<Classifier>> members)
      : members_(std::move(members)) {
    OF_CHECK(!members_.empty());
  }

  std::vector<double> PredictProba(const Matrix& X) const override {
    std::vector<double> proba(X.rows(), 0.0);
    for (const auto& member : members_) {
      const std::vector<double> p = member->PredictProba(X);
      for (size_t i = 0; i < proba.size(); ++i) proba[i] += p[i];
    }
    const double inv = 1.0 / static_cast<double>(members_.size());
    for (double& p : proba) p *= inv;
    return proba;
  }

  std::string Name() const override { return "expgrad_ensemble"; }

 private:
  std::vector<std::unique_ptr<Classifier>> members_;
};

}  // namespace

bool AgarwalReductions::SupportsMetric(const FairnessMetric& metric) const {
  // The reductions framework needs constraints expressible as conditional
  // moments of (h, y) not conditioned on h: MR, SP, FPR, FNR (Table 1).
  const std::string name = metric.Name();
  return name == "sp" || name == "mr" || name == "fpr" || name == "fnr";
}

Result<BaselineResult> AgarwalReductions::Train(const Dataset& train,
                                                const Dataset& val, Trainer* trainer,
                                                const FairnessSpec& spec) {
  if (!SupportsMetric(*spec.metric)) {
    return Status::Unsupported("Agarwal reductions do not support metric " +
                               spec.metric->Name());
  }
  Stopwatch stopwatch;
  Result<std::unique_ptr<FairnessProblem>> problem =
      FairnessProblem::Create(train, val, {spec}, trainer);
  if (!problem.ok()) return problem.status();
  const size_t k = (*problem)->NumConstraints();

  // Multiplier weights over 2k one-sided constraints (+ a slack coordinate),
  // kept as unnormalized positives; the simplex is scaled to multiplier_bound.
  std::vector<double> raw(2 * k + 1, 1.0);
  std::vector<double> lambdas(k, 0.0);
  std::vector<std::unique_ptr<Classifier>> iterates;
  const Classifier* previous = nullptr;

  for (int t = 0; t < options_.iterations; ++t) {
    double mass = 0.0;
    for (double r : raw) mass += r;
    for (size_t j = 0; j < k; ++j) {
      const double lambda_plus = options_.multiplier_bound * raw[2 * j] / mass;
      const double lambda_minus = options_.multiplier_bound * raw[2 * j + 1] / mass;
      // Learner's objective: AP + sum_j (lambda_minus - lambda_plus) FP_j.
      lambdas[j] = lambda_minus - lambda_plus;
    }
    std::unique_ptr<Classifier> h = (*problem)->FitWithLambdas(lambdas, previous);
    // Drive the multiplier player with validation-split violations, the
    // same estimation set every other method tunes against.
    const std::vector<int> val_preds = (*problem)->PredictVal(*h);
    const std::vector<double> fps =
        (*problem)->val_evaluator().FairnessParts(val_preds);
    // Exponentiated-gradient ascent on the one-sided violations.
    const double eta =
        options_.learning_rate / std::sqrt(static_cast<double>(t + 1));
    for (size_t j = 0; j < k; ++j) {
      // Target a slightly tighter band during the game so the averaged
      // classifier lands inside the declared epsilon on validation.
      const double epsilon = 0.6 * (*problem)->Epsilon(j);
      raw[2 * j] *= std::exp(eta * (fps[j] - epsilon));
      raw[2 * j + 1] *= std::exp(eta * (-fps[j] - epsilon));
    }
    // Renormalize to avoid overflow; relative magnitudes are what matter.
    double norm = 0.0;
    for (double r : raw) norm += r;
    for (double& r : raw) r /= norm;

    iterates.push_back(std::move(h));
    previous = iterates.back().get();
  }

  // Drop the burn-in prefix: early iterates are near-unconstrained and
  // drag the mixture's disparity up.
  const size_t burn_in = iterates.size() / 5;
  std::vector<std::unique_ptr<Classifier>> mixture;
  for (size_t i = burn_in; i < iterates.size(); ++i) {
    mixture.push_back(std::move(iterates[i]));
  }

  BaselineResult result;
  result.encoder = (*problem)->encoder();
  result.model = std::make_unique<AverageEnsembleClassifier>(std::move(mixture));
  const std::vector<int> val_preds = (*problem)->PredictVal(*result.model);
  result.satisfied = (*problem)->val_evaluator().MaxViolation(val_preds) <= 1e-12;
  result.val_accuracy = (*problem)->ValAccuracy(val_preds);
  result.val_fairness_parts = (*problem)->val_evaluator().FairnessParts(val_preds);
  result.models_trained = (*problem)->models_trained();
  result.train_seconds = stopwatch.ElapsedSeconds();
  return result;
}

}  // namespace omnifair
