#ifndef OMNIFAIR_UTIL_THREAD_POOL_H_
#define OMNIFAIR_UTIL_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace omnifair {

/// Process-wide work-stealing task pool (DESIGN.md §10).
///
/// Each worker owns a deque: it pushes/pops its own back (LIFO, cache-warm)
/// and steals from other workers' fronts (FIFO, oldest-first). Tasks carry
/// the submitter's effective telemetry level so OF_* instrumentation inside
/// a task honours a ScopedTelemetryLevel active at the call site.
///
/// Blocking inside a pooled task on other pooled tasks deadlocks a fixed-size
/// pool, so ParallelFor never waits idly: the calling thread participates in
/// the loop and helper workers merely accelerate it. Nested ParallelFor from
/// inside a pool worker therefore degrades to serial-in-caller, not deadlock.
class ThreadPool {
 public:
  /// The shared pool. Created on first use with `DefaultThreadCount()`
  /// workers; lives until process exit.
  static ThreadPool& Global();

  /// OMNIFAIR_THREADS if set to a positive integer, otherwise
  /// std::thread::hardware_concurrency() (minimum 1).
  static int DefaultThreadCount();

  /// A pool with `num_threads` workers (minimum 1). Prefer Global().
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int NumThreads() const { return static_cast<int>(workers_.size()); }

  /// Schedules `fn` and returns a future for its result. Exceptions thrown
  /// by `fn` surface through the future.
  template <typename Fn, typename R = std::invoke_result_t<Fn>>
  std::future<R> Submit(Fn&& fn) {
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<Fn>(fn));
    std::future<R> result = task->get_future();
    Enqueue([task]() { (*task)(); });
    return result;
  }

  /// Runs body(i) for every i in [0, n) across the calling thread plus up to
  /// `max_parallelism - 1` pool workers (0 = use the whole pool). Iterations
  /// are claimed one at a time from a shared atomic index, so the set of
  /// executed indices is exactly [0, n) regardless of thread interleaving.
  ///
  /// If any invocation throws, remaining unclaimed iterations are abandoned
  /// and the first exception (by claim order observed) is rethrown on the
  /// calling thread after all in-flight iterations finish.
  ///
  /// With `max_parallelism == 1` (or n <= 1, or no free workers) the loop
  /// runs inline on the caller with no synchronization — the exact serial
  /// code path.
  void ParallelFor(size_t n, const std::function<void(size_t)>& body,
                   int max_parallelism = 0);

 private:
  struct Queue {
    std::mutex mu;
    std::deque<std::function<void()>> tasks;
  };

  void Enqueue(std::function<void()> task);
  void WorkerLoop(int worker_index);
  /// Pops from own back or steals from another queue's front; blocks until
  /// a task is available or shutdown. Returns false on shutdown.
  bool NextTask(int worker_index, std::function<void()>* task);
  /// Pops and runs one queued task on the calling thread, if any is pending.
  /// Used by ParallelFor's help-first join.
  bool TryRunOneTask();

  std::vector<std::unique_ptr<Queue>> queues_;
  std::vector<std::thread> workers_;
  std::atomic<size_t> round_robin_{0};

  std::mutex wake_mu_;
  std::condition_variable wake_cv_;
  size_t queued_ = 0;  // guarded by wake_mu_
  bool stop_ = false;  // guarded by wake_mu_
};

}  // namespace omnifair

#endif  // OMNIFAIR_UTIL_THREAD_POOL_H_
