#include "core/problem.h"

#include <gtest/gtest.h>

#include "ml/logistic_regression.h"
#include "tests/testing_fairness.h"

namespace omnifair {
namespace {

using testing_fairness::MakeBiasedDataset;

std::vector<FairnessSpec> SpSpec(double epsilon = 0.03) {
  return {MakeSpec(GroupByAttribute("grp"), "sp", epsilon)};
}

TEST(ProblemTest, CreateValidProblem) {
  const Dataset train = MakeBiasedDataset(600, 0.6, 0.3, 1);
  const Dataset val = MakeBiasedDataset(200, 0.6, 0.3, 2);
  LogisticRegressionTrainer trainer;
  auto problem = FairnessProblem::Create(train, val, SpSpec(), &trainer);
  ASSERT_TRUE(problem.ok()) << problem.status();
  EXPECT_EQ((*problem)->NumConstraints(), 1u);
  EXPECT_DOUBLE_EQ((*problem)->Epsilon(0), 0.03);
  EXPECT_FALSE((*problem)->DependsOnPredictions());
  EXPECT_EQ((*problem)->train_features().rows(), 600u);
  EXPECT_EQ((*problem)->val_features().rows(), 200u);
}

TEST(ProblemTest, NullTrainerRejected) {
  const Dataset train = MakeBiasedDataset(100, 0.6, 0.3, 3);
  auto problem = FairnessProblem::Create(train, train, SpSpec(), nullptr);
  EXPECT_FALSE(problem.ok());
}

TEST(ProblemTest, EmptySplitsRejected) {
  const Dataset train = MakeBiasedDataset(100, 0.6, 0.3, 4);
  const Dataset empty;
  LogisticRegressionTrainer trainer;
  EXPECT_FALSE(FairnessProblem::Create(empty, train, SpSpec(), &trainer).ok());
  EXPECT_FALSE(FairnessProblem::Create(train, empty, SpSpec(), &trainer).ok());
}

TEST(ProblemTest, FitCountsModels) {
  const Dataset train = MakeBiasedDataset(300, 0.6, 0.3, 5);
  LogisticRegressionTrainer trainer;
  auto problem = FairnessProblem::Create(train, train, SpSpec(), &trainer);
  ASSERT_TRUE(problem.ok());
  EXPECT_EQ((*problem)->models_trained(), 0);
  auto m1 = (*problem)->FitWithLambdas({0.0}, nullptr);
  auto m2 = (*problem)->FitWithWeights(std::vector<double>(300, 1.0));
  EXPECT_EQ((*problem)->models_trained(), 2);
  // Identical weights -> identical models.
  EXPECT_EQ(m1->Predict((*problem)->val_features()),
            m2->Predict((*problem)->val_features()));
}

TEST(ProblemTest, LambdaShiftsDisparity) {
  const Dataset train = MakeBiasedDataset(1500, 0.7, 0.25, 6);
  LogisticRegressionTrainer trainer;
  auto problem = FairnessProblem::Create(train, train, SpSpec(), &trainer);
  ASSERT_TRUE(problem.ok());

  auto base = (*problem)->FitWithLambdas({0.0}, nullptr);
  const double fp_base = (*problem)->val_evaluator().FairnessPart(
      0, (*problem)->PredictVal(*base));
  // Group "a" is the high-rate group; FP(theta_0) should be positive.
  EXPECT_GT(fp_base, 0.05);

  // A negative lambda pushes SP(a) down (Lemma 2: FP increasing in lambda).
  auto pushed = (*problem)->FitWithLambdas({-0.3}, nullptr);
  const double fp_pushed = (*problem)->val_evaluator().FairnessPart(
      0, (*problem)->PredictVal(*pushed));
  EXPECT_LT(fp_pushed, fp_base);
}

TEST(ProblemTest, PredictionDependentFlagForFdr) {
  const Dataset train = MakeBiasedDataset(200, 0.6, 0.3, 7);
  LogisticRegressionTrainer trainer;
  auto problem = FairnessProblem::Create(
      train, train, {MakeSpec(GroupByAttribute("grp"), "fdr", 0.05)}, &trainer);
  ASSERT_TRUE(problem.ok());
  EXPECT_TRUE((*problem)->DependsOnPredictions());
}

TEST(ProblemTest, SubsampledFitUsesFewerRows) {
  const Dataset train = MakeBiasedDataset(1000, 0.65, 0.35, 10);
  LogisticRegressionTrainer trainer;
  auto problem = FairnessProblem::Create(train, train, SpSpec(), &trainer);
  ASSERT_TRUE(problem.ok());
  // fraction = 1.0 falls through to the full fit: identical predictions.
  auto full = (*problem)->FitWithLambdas({0.05}, nullptr);
  auto same = (*problem)->FitWithLambdasSubsampled({0.05}, nullptr, 1.0, 3);
  EXPECT_EQ(full->Predict((*problem)->val_features()),
            same->Predict((*problem)->val_features()));

  // A 30% subsample still learns the (easy) concept.
  auto sub = (*problem)->FitWithLambdasSubsampled({0.05}, nullptr, 0.3, 3);
  const std::vector<int> preds = (*problem)->PredictVal(*sub);
  EXPECT_GT((*problem)->ValAccuracy(preds), 0.7);
  EXPECT_EQ((*problem)->models_trained(), 3);
}

TEST(ProblemTest, SubsampledFitDeterministicGivenSeed) {
  const Dataset train = MakeBiasedDataset(800, 0.65, 0.35, 11);
  LogisticRegressionTrainer trainer;
  auto problem = FairnessProblem::Create(train, train, SpSpec(), &trainer);
  ASSERT_TRUE(problem.ok());
  auto a = (*problem)->FitWithLambdasSubsampled({0.02}, nullptr, 0.5, 9);
  auto b = (*problem)->FitWithLambdasSubsampled({0.02}, nullptr, 0.5, 9);
  EXPECT_EQ(a->Predict((*problem)->val_features()),
            b->Predict((*problem)->val_features()));
}

TEST(ProblemTest, EncoderSharedBetweenSplits) {
  const Dataset train = MakeBiasedDataset(400, 0.6, 0.3, 8);
  const Dataset val = MakeBiasedDataset(100, 0.6, 0.3, 9);
  LogisticRegressionTrainer trainer;
  auto problem = FairnessProblem::Create(train, val, SpSpec(), &trainer);
  ASSERT_TRUE(problem.ok());
  EXPECT_EQ((*problem)->train_features().cols(), (*problem)->val_features().cols());
  EXPECT_EQ((*problem)->encoder().NumFeatures(),
            (*problem)->train_features().cols());
}

}  // namespace
}  // namespace omnifair
