#include "core/omnifair.h"

#include <algorithm>
#include <cmath>
#include <optional>

#include <fstream>
#include <sstream>

#include "data/split.h"
#include "ml/metrics.h"
#include "ml/serialization.h"
#include "util/logging.h"
#include "util/stopwatch.h"
#include "util/telemetry.h"
#include "util/trace.h"

namespace omnifair {

std::vector<int> FairModel::Predict(const Dataset& dataset) const {
  OF_CHECK(model != nullptr);
  return model->Predict(encoder.Transform(dataset));
}

std::vector<double> FairModel::PredictProba(const Dataset& dataset) const {
  OF_CHECK(model != nullptr);
  return model->PredictProba(encoder.Transform(dataset));
}

OmniFair::OmniFair(OmniFairOptions options) : options_(std::move(options)) {}

Result<FairModel> OmniFair::Train(const Dataset& train, const Dataset& val,
                                  Trainer* trainer,
                                  const std::vector<FairnessSpec>& specs) const {
  // An explicit per-call telemetry level overrides the process-global one
  // for the duration of this Train (DESIGN.md §9). kOff is the documented
  // zero-overhead path: no counters, no spans, no TuneReport.
  std::optional<ScopedTelemetryLevel> scoped_level;
  if (options_.telemetry.level.has_value()) {
    scoped_level.emplace(*options_.telemetry.level);
  }
  OF_TRACE_SPAN("omnifair_train");
  OF_COUNTER_INC("omnifair.train_calls");

  const bool checkpointing = !options_.checkpoint.path.empty() ||
                             !options_.checkpoint.resume_from.empty();
  if (checkpointing && options_.warm_start) {
    return Status::InvalidArgument(
        "checkpoint/resume is not supported with warm_start: warm starts "
        "carry optimizer state across fits that a resumed process lacks");
  }

  // Profiling rides on the counters level: stage timers, bracketed registry
  // snapshots for cache/pool attribution, and the process CPU clock. kOff
  // keeps the documented zero-overhead path (no clocks, no snapshots).
  const bool profiling =
      EffectiveTelemetryLevel() >= TelemetryLevel::kCounters;
  RunProfiler profiler;
  MetricsSnapshot metrics_before;
  long long cpu_start_ns = -1;
  if (profiling) {
    metrics_before = MetricsRegistry::Global().Snapshot();
    cpu_start_ns = ProcessCpuNowNs();
  }

  Stopwatch stopwatch;
  // Create charges itself to the kSetup/kEncode stages internally, so the
  // explain table separates feature-encoding cost from group induction.
  Result<std::unique_ptr<FairnessProblem>> problem = FairnessProblem::Create(
      train, val, specs, trainer, options_.encoder,
      profiling ? &profiler : nullptr);
  if (!problem.ok()) return problem.status();
  if (profiling) (*problem)->SetProfiler(&profiler);

  // The budget starts ticking here; every Fit* inside the tuners is charged
  // to it, and on expiry the search returns the best model reached so far.
  TrainBudget budget(options_.budget);
  (*problem)->set_budget(&budget);

  const bool warm = options_.warm_start && trainer->SupportsWarmStart();
  if (warm) {
    trainer->ResetWarmStart();
    trainer->SetWarmStart(true);
  }

  FairModel fair;
  const bool record_trajectory =
      EffectiveTelemetryLevel() >= TelemetryLevel::kCounters;
  if (record_trajectory) (*problem)->StartTuneReport(&fair.tune_report);

  // The top-level thread knob flows into the tuner options; the per-field
  // knob wins only when the top-level one is left at its serial default.
  HillClimbOptions hill_climb = options_.hill_climb;
  if (options_.num_threads > 1) hill_climb.tune.num_threads = options_.num_threads;
  if (checkpointing) hill_climb.tune.checkpoint = options_.checkpoint;

  if ((*problem)->NumConstraints() == 1) {
    fair.tune_report.algorithm = "lambda_tuner";
    const LambdaTuner tuner(hill_climb.tune);
    TuneResult tuned = tuner.TuneSingle(**problem);
    fair.model = std::move(tuned.model);
    fair.outcome = std::move(tuned.status);
    fair.lambdas = {tuned.lambda};
    fair.satisfied = tuned.satisfied;
    fair.val_accuracy = tuned.val_accuracy;
    fair.val_fairness_parts = std::move(tuned.val_fairness_parts);
    fair.models_trained = tuned.models_trained;
  } else {
    fair.tune_report.algorithm = "hill_climb";
    const HillClimber climber(hill_climb);
    MultiTuneResult tuned = climber.Run(**problem);
    fair.model = std::move(tuned.model);
    fair.outcome = std::move(tuned.status);
    fair.lambdas = std::move(tuned.lambdas);
    fair.satisfied = tuned.satisfied;
    fair.val_accuracy = tuned.val_accuracy;
    fair.val_fairness_parts = std::move(tuned.val_fairness_parts);
    fair.models_trained = tuned.models_trained;
  }
  (*problem)->StartTuneReport(nullptr);
  (*problem)->set_budget(nullptr);
  (*problem)->SetProfiler(nullptr);
  fair.tune_report.models_trained = fair.models_trained;

  if (profiling) {
    const double total_wall_us = stopwatch.ElapsedSeconds() * 1e6;
    const long long cpu_now_ns = ProcessCpuNowNs();
    const double total_cpu_us =
        (cpu_start_ns >= 0 && cpu_now_ns >= 0)
            ? static_cast<double>(cpu_now_ns - cpu_start_ns) / 1e3
            : 0.0;
    fair.run_profile = BuildRunProfile(
        profiler, metrics_before, MetricsRegistry::Global().Snapshot(),
        fair.tune_report.algorithm, hill_climb.tune.num_threads, total_wall_us,
        total_cpu_us);
  }

  if (warm) trainer->SetWarmStart(false);
  if (fair.model == nullptr) {
    // The trainer never produced a model; surface the firewall's status
    // rather than a FairModel that cannot predict.
    if (fair.outcome.ok()) return Status::Internal("trainer produced no model");
    return fair.outcome;
  }
  fair.encoder = (*problem)->encoder();
  fair.train_seconds = stopwatch.ElapsedSeconds();
  return fair;
}

Result<FairModel> OmniFair::TrainWithSplit(const Dataset& dataset, Trainer* trainer,
                                           const std::vector<FairnessSpec>& specs,
                                           uint64_t seed,
                                           AuditReport* test_report) const {
  const TrainValTestSplit split = SplitDefault(dataset, seed);
  Result<FairModel> fair = Train(split.train, split.val, trainer, specs);
  if (!fair.ok()) return fair;
  if (test_report != nullptr) {
    Result<AuditReport> audit =
        Audit(*fair->model, fair->encoder, split.test, specs);
    if (!audit.ok()) return audit.status();
    *test_report = std::move(*audit);
  }
  return fair;
}

Status SaveFairModel(const FairModel& fair, const std::string& path) {
  if (fair.model == nullptr) return Status::InvalidArgument("FairModel has no model");
  std::ofstream out(path);
  if (!out) return IoError(path, "open");
  out.precision(17);
  out << "omnifair_fairmodel 1\n";
  out << "lambdas";
  for (double lambda : fair.lambdas) out << " " << lambda;
  out << "\n";
  out << "satisfied " << (fair.satisfied ? 1 : 0) << " val_accuracy "
      << fair.val_accuracy << "\n";
  fair.encoder.SerializeTo(out);
  Status status = SerializeModel(*fair.model, out);
  if (!status.ok()) return status;
  out.flush();
  if (!out) return IoError(path, "write");
  return Status::Ok();
}

Result<FairModel> LoadFairModel(const std::string& path) {
  std::ifstream in(path);
  if (!in) return IoError(path, "open");
  std::string tag;
  int version = 0;
  if (!(in >> tag >> version) || tag != "omnifair_fairmodel" || version != 1) {
    return Status::InvalidArgument("not an omnifair fair-model file");
  }
  FairModel fair;
  if (!(in >> tag) || tag != "lambdas") {
    return Status::InvalidArgument("bad lambdas line");
  }
  std::string rest;
  std::getline(in, rest);
  {
    std::istringstream lambda_stream(rest);
    double lambda = 0.0;
    while (lambda_stream >> lambda) fair.lambdas.push_back(lambda);
    // The old parser silently dropped trailing junk; a lambdas line that is
    // not purely numbers means the file is damaged.
    lambda_stream.clear();
    std::string leftover;
    if (lambda_stream >> leftover) {
      return Status::InvalidArgument("malformed lambdas line: unexpected '" +
                                     leftover + "'");
    }
  }
  int satisfied = 0;
  if (!(in >> tag >> satisfied) || tag != "satisfied") {
    return Status::InvalidArgument("bad satisfied line");
  }
  if (!(in >> tag >> fair.val_accuracy) || tag != "val_accuracy") {
    return Status::InvalidArgument("bad val_accuracy field");
  }
  fair.satisfied = satisfied != 0;
  Result<FeatureEncoder> encoder = FeatureEncoder::Deserialize(in);
  if (!encoder.ok()) return encoder.status();
  fair.encoder = std::move(*encoder);
  Result<std::unique_ptr<Classifier>> model = DeserializeModel(in);
  if (!model.ok()) return model.status();
  fair.model = std::move(*model);
  return fair;
}

Result<AuditReport> Audit(const Classifier& model, const FeatureEncoder& encoder,
                          const Dataset& dataset,
                          const std::vector<FairnessSpec>& specs) {
  Result<std::vector<ConstraintSpec>> constraints = InduceConstraints(specs, dataset);
  if (!constraints.ok()) return constraints.status();

  const Matrix X = encoder.Transform(dataset);
  const std::vector<double> scores = model.PredictProba(X);
  std::vector<int> predictions(scores.size());
  for (size_t i = 0; i < scores.size(); ++i) predictions[i] = scores[i] >= 0.5 ? 1 : 0;

  AuditReport report;
  report.accuracy = Accuracy(dataset.labels(), predictions);
  report.roc_auc = RocAuc(dataset.labels(), scores);

  const ConstraintEvaluator evaluator(*constraints, dataset);
  report.fairness_parts = evaluator.FairnessParts(predictions);
  report.satisfied = true;
  for (size_t j = 0; j < evaluator.NumConstraints(); ++j) {
    const ConstraintSpec& constraint = evaluator.constraint(j);
    report.constraint_labels.push_back(constraint.metric->Name() + "(" +
                                       constraint.group1 + " vs " +
                                       constraint.group2 + ")");
    const double disparity = std::fabs(report.fairness_parts[j]);
    report.max_disparity = std::max(report.max_disparity, disparity);
    if (disparity > constraint.epsilon) report.satisfied = false;
  }

  // Per-(metric, group) dashboard rows: every spec's grouping evaluated
  // once, each non-empty group reported with its metric value and accuracy.
  for (const FairnessSpec& spec : specs) {
    Result<GroupMap> groups_result = EvaluateGrouping(spec.grouping, dataset);
    if (!groups_result.ok()) continue;  // firewalled; already logged
    const GroupMap& groups = *groups_result;
    for (const auto& [group_name, members] : groups) {
      if (members.empty()) continue;
      GroupAudit row;
      row.metric = spec.metric->Name();
      row.group = group_name;
      row.size = members.size();
      row.value = spec.metric->Evaluate(dataset, members, predictions);
      row.accuracy = CountConfusion(dataset.labels(), predictions, members).Accuracy();
      report.groups.push_back(std::move(row));
    }
  }
  return report;
}

std::string AuditReport::ToString() const {
  std::ostringstream os;
  char line[160];
  std::snprintf(line, sizeof(line),
                "overall: accuracy %.2f%%  ROC AUC %.3f  max disparity %.4f  %s\n",
                100.0 * accuracy, roc_auc, max_disparity,
                satisfied ? "(all constraints hold)" : "(CONSTRAINT VIOLATED)");
  os << line;
  os << "per-constraint disparities:\n";
  for (size_t j = 0; j < constraint_labels.size(); ++j) {
    std::snprintf(line, sizeof(line), "  %-44s %+0.4f\n",
                  constraint_labels[j].c_str(), fairness_parts[j]);
    os << line;
  }
  if (!groups.empty()) {
    os << "per-group breakdown:\n";
    std::snprintf(line, sizeof(line), "  %-8s %-24s %8s %10s %10s\n", "metric",
                  "group", "size", "value", "accuracy");
    os << line;
    for (const GroupAudit& row : groups) {
      std::snprintf(line, sizeof(line), "  %-8s %-24s %8zu %10.4f %9.2f%%\n",
                    row.metric.c_str(), row.group.c_str(), row.size, row.value,
                    100.0 * row.accuracy);
      os << line;
    }
  }
  return os.str();
}

}  // namespace omnifair
