#include "util/random.h"

#include <cmath>

namespace omnifair {
namespace {

// SplitMix64, used to expand the seed into the xoshiro state.
uint64_t SplitMix64(uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t s = seed;
  for (auto& word : state_) word = SplitMix64(s);
}

uint64_t Rng::NextUint64() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 high bits -> [0, 1).
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  if (bound == 0) return 0;
  // Lemire's multiply-shift; bias is negligible for our bounds (< 2^32).
  return static_cast<uint64_t>(
      (static_cast<__uint128_t>(NextUint64()) * bound) >> 64);
}

double Rng::NextUniform(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

double Rng::NextGaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1 = 0.0;
  do {
    u1 = NextDouble();
  } while (u1 <= 1e-300);
  const double u2 = NextDouble();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_gaussian_ = r * std::sin(theta);
  has_cached_gaussian_ = true;
  return r * std::cos(theta);
}

double Rng::NextGaussian(double mean, double stddev) {
  return mean + stddev * NextGaussian();
}

bool Rng::NextBernoulli(double p) { return NextDouble() < p; }

size_t Rng::NextCategorical(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) total += w;
  double target = NextDouble() * total;
  for (size_t i = 0; i < weights.size(); ++i) {
    target -= weights[i];
    if (target < 0.0) return i;
  }
  return weights.empty() ? 0 : weights.size() - 1;
}

std::vector<size_t> Rng::Permutation(size_t n) {
  std::vector<size_t> perm(n);
  for (size_t i = 0; i < n; ++i) perm[i] = i;
  for (size_t i = n; i > 1; --i) {
    const size_t j = NextBounded(i);
    std::swap(perm[i - 1], perm[j]);
  }
  return perm;
}

Rng Rng::Fork() { return Rng(NextUint64()); }

}  // namespace omnifair
