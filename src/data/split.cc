#include "data/split.h"

#include "util/logging.h"
#include "util/random.h"

namespace omnifair {

TrainValTestSplit SplitDataset(const Dataset& dataset, double train_fraction,
                               double val_fraction, uint64_t seed) {
  OF_CHECK_GT(train_fraction, 0.0);
  OF_CHECK_GE(val_fraction, 0.0);
  OF_CHECK_LE(train_fraction + val_fraction, 1.0);

  const size_t n = dataset.NumRows();
  Rng rng(seed);
  const std::vector<size_t> perm = rng.Permutation(n);

  const size_t n_train = static_cast<size_t>(train_fraction * static_cast<double>(n));
  const size_t n_val = static_cast<size_t>(val_fraction * static_cast<double>(n));

  TrainValTestSplit split;
  split.train_indices.assign(perm.begin(), perm.begin() + n_train);
  split.val_indices.assign(perm.begin() + n_train, perm.begin() + n_train + n_val);
  split.test_indices.assign(perm.begin() + n_train + n_val, perm.end());
  split.train = dataset.SelectRows(split.train_indices);
  split.val = dataset.SelectRows(split.val_indices);
  split.test = dataset.SelectRows(split.test_indices);
  return split;
}

TrainValTestSplit SplitDefault(const Dataset& dataset, uint64_t seed) {
  return SplitDataset(dataset, 0.6, 0.2, seed);
}

}  // namespace omnifair
