#include "core/tune_report.h"

#include <sstream>

#include "util/json_writer.h"

namespace omnifair {

void TuneReport::WriteJson(JsonWriter& writer) const {
  writer.BeginObject();
  writer.KV("algorithm", algorithm);
  writer.Key("epsilons");
  writer.BeginArray();
  for (double epsilon : epsilons) writer.Double(epsilon);
  writer.EndArray();
  writer.KV("models_trained", models_trained);
  writer.KV("wall_seconds", wall_seconds);
  writer.Key("points");
  writer.BeginArray();
  for (const TunePoint& point : points) {
    writer.BeginObject();
    writer.Key("lambdas");
    writer.BeginArray();
    for (double lambda : point.lambdas) writer.Double(lambda);
    writer.EndArray();
    writer.KV("stage", point.stage);
    writer.KV("fit_ok", point.fit_ok);
    writer.KV("models_trained", point.models_trained);
    writer.KV("seconds", point.seconds);
    writer.KV("evaluated", point.evaluated);
    if (point.evaluated) {
      writer.KV("val_accuracy", point.val_accuracy);
    } else {
      writer.Key("val_accuracy");
      writer.Null();
    }
    writer.Key("val_fairness_parts");
    writer.BeginArray();
    for (double part : point.val_fairness_parts) writer.Double(part);
    writer.EndArray();
    writer.EndObject();
  }
  writer.EndArray();
  writer.EndObject();
}

std::string TuneReport::ToJson() const {
  std::ostringstream os;
  JsonWriter writer(os);
  WriteJson(writer);
  return os.str();
}

}  // namespace omnifair
