#ifndef OMNIFAIR_CORE_EVALUATOR_H_
#define OMNIFAIR_CORE_EVALUATOR_H_

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "core/spec.h"
#include "data/dataset.h"
#include "ml/classifier.h"

namespace omnifair {

class RunProfiler;

/// Materializes a set of pairwise constraints on one dataset split and
/// evaluates the fairness parts FP_j(theta) = f(h, g1_j) - f(h, g2_j) and
/// accuracy AP(theta) for candidate models. Group memberships are resolved
/// once at construction; metric evaluation is per-prediction-vector.
class ConstraintEvaluator {
 public:
  /// `dataset` is the split this evaluator measures on (train or val or
  /// test); constraints' grouping functions are applied to it here.
  ConstraintEvaluator(std::vector<ConstraintSpec> constraints, const Dataset& dataset);

  size_t NumConstraints() const { return constraints_.size(); }
  const ConstraintSpec& constraint(size_t j) const { return constraints_[j]; }

  /// Whether group `group1`/`group2` of constraint j is empty on this split
  /// (possible for small validation splits; such constraints evaluate to 0).
  bool HasEmptyGroup(size_t j) const;

  /// FP_j = f(h, g1) - f(h, g2) under constraint j's metric.
  double FairnessPart(size_t j, const std::vector<int>& predictions) const;

  /// All fairness parts at once.
  std::vector<double> FairnessParts(const std::vector<int>& predictions) const;

  /// All fairness parts, evaluating constraints concurrently on the shared
  /// pool when num_threads > 1. Each part lands in its own slot, so the
  /// result is identical to the serial overload for any thread count.
  std::vector<double> FairnessParts(const std::vector<int>& predictions,
                                    int num_threads) const;

  /// max_j (|FP_j| - epsilon_j); <= 0 means all constraints satisfied.
  double MaxViolation(const std::vector<int>& predictions) const;

  /// Index of the most violated constraint (paper Algorithm 2 line 4);
  /// meaningful only when MaxViolation > 0.
  size_t MostViolated(const std::vector<int>& predictions) const;

  /// True when every |FP_j| <= epsilon_j.
  bool Satisfied(const std::vector<int>& predictions) const;

  /// The same derivations over parts already computed by FairnessParts, so
  /// parallel callers evaluate the metrics once per prediction vector.
  double MaxViolationFromParts(const std::vector<double>& parts) const;
  size_t MostViolatedFromParts(const std::vector<double>& parts) const;
  bool SatisfiedFromParts(const std::vector<double>& parts) const;

  /// Group member indices for constraint j on this split.
  const std::vector<size_t>& Group1(size_t j) const { return group1_members_[j]; }
  const std::vector<size_t>& Group2(size_t j) const { return group2_members_[j]; }

  const Dataset& dataset() const { return dataset_; }

  /// Attaches a (caller-owned) run profiler; FairnessPart — the leaf every
  /// parts/violation derivation funnels through — then charges its time to
  /// RunStage::kConstraintEval. Pass nullptr to detach. Relaxed atomic so
  /// parallel FairnessParts workers need no locking.
  void SetProfiler(RunProfiler* profiler) {
    profiler_.store(profiler, std::memory_order_relaxed);
  }

 private:
  /// λ- and prediction-independent metric coefficients, resolved once at
  /// construction for metrics with !DependsOnPredictions(). FairnessPart
  /// then evaluates f(h,g) = c0 + Σ c[k]·1(h=y) over the cached arrays —
  /// the same arithmetic as FairnessMetric::Evaluate without re-deriving
  /// the coefficients on every call. Immutable after construction, so
  /// concurrent FairnessPart calls need no locking.
  struct SideCoefficients {
    bool cached = false;
    MetricCoefficients group1;
    MetricCoefficients group2;
  };

  std::vector<ConstraintSpec> constraints_;
  const Dataset& dataset_;
  std::vector<std::vector<size_t>> group1_members_;
  std::vector<std::vector<size_t>> group2_members_;
  std::vector<SideCoefficients> cached_coefficients_;
  std::atomic<RunProfiler*> profiler_{nullptr};  // caller-owned; null = off
};

}  // namespace omnifair

#endif  // OMNIFAIR_CORE_EVALUATOR_H_
