#include "ml/random_forest.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"
#include "util/random.h"
#include "util/telemetry.h"
#include "util/thread_pool.h"
#include "util/trace.h"

namespace omnifair {

namespace {
// Rows per PredictProba task: large enough to amortize scheduling, small
// enough to load-balance across workers on bench-sized datasets.
constexpr size_t kPredictChunkRows = 256;
}  // namespace

RandomForestModel::RandomForestModel(std::vector<std::unique_ptr<Classifier>> trees,
                                     int num_threads)
    : trees_(std::move(trees)), num_threads_(std::max(1, num_threads)) {
  OF_CHECK(!trees_.empty());
}

std::vector<double> RandomForestModel::PredictProba(const Matrix& X) const {
  const size_t n = X.rows();
  std::vector<double> proba(n, 0.0);
  auto accumulate_rows = [&](size_t begin, size_t end) {
    for (const auto& tree : trees_) tree->AccumulateProba(X, begin, end, proba);
  };
  if (num_threads_ <= 1 || n < 2 * kPredictChunkRows) {
    accumulate_rows(0, n);
  } else {
    // Disjoint row chunks: no write overlap, and each row still sums its
    // trees in index order, so the result matches the serial path bit for
    // bit.
    const size_t chunks = (n + kPredictChunkRows - 1) / kPredictChunkRows;
    ThreadPool::Global().ParallelFor(
        chunks,
        [&](size_t c) {
          const size_t begin = c * kPredictChunkRows;
          accumulate_rows(begin, std::min(n, begin + kPredictChunkRows));
        },
        num_threads_);
  }
  const double inv = 1.0 / static_cast<double>(trees_.size());
  for (double& p : proba) p *= inv;
  return proba;
}

RandomForestTrainer::RandomForestTrainer(RandomForestOptions options)
    : options_(options), bin_cache_(std::make_shared<BinningCache>()) {}

std::unique_ptr<Trainer> RandomForestTrainer::Clone() const {
  auto clone = std::make_unique<RandomForestTrainer>(options_);
  clone->bin_cache_ = bin_cache_;
  return clone;
}

std::unique_ptr<Classifier> RandomForestTrainer::Fit(
    const Matrix& X, const std::vector<int>& y, const std::vector<double>& weights) {
  OF_CHECK_EQ(X.rows(), y.size());
  OF_CHECK_EQ(X.rows(), weights.size());
  OF_TRACE_SPAN("fit/rf");
  OF_SCOPED_LATENCY_US("ml.fit_us.rf");
  const size_t n = X.rows();

  size_t max_features = options_.max_features;
  if (max_features == 0) {
    max_features = static_cast<size_t>(
        std::max(1.0, std::round(std::sqrt(static_cast<double>(X.cols())))));
  }

  // Seed every tree up-front so the fitted forest does not depend on the
  // thread count or scheduling.
  Rng rng(options_.seed);
  std::vector<uint64_t> bootstrap_seeds(options_.num_trees);
  std::vector<uint64_t> feature_seeds(options_.num_trees);
  for (int t = 0; t < options_.num_trees; ++t) {
    bootstrap_seeds[t] = rng.NextUint64();
    feature_seeds[t] = rng.NextUint64();
  }

  // Histogram mode: bin X once per fit (memoized across fits and clones by
  // the shared cache) and hand the same BinnedMatrix to every tree, so the
  // parallel tree loop never touches the cache lock.
  std::shared_ptr<const BinnedMatrix> binned;
  if (options_.split_method == SplitMethod::kHistogram) {
    binned = bin_cache_->GetOrBuild(X, options_.max_bins, options_.num_threads);
  }

  std::vector<std::unique_ptr<Classifier>> trees(options_.num_trees);
  auto build_tree = [&](int t) {
    Rng tree_rng(bootstrap_seeds[t]);
    // Bootstrap counts via n draws with replacement.
    std::vector<uint32_t> counts(n, 0);
    for (size_t draw = 0; draw < n; ++draw) ++counts[tree_rng.NextBounded(n)];
    std::vector<double> boot_weights(n);
    for (size_t i = 0; i < n; ++i) {
      boot_weights[i] = weights[i] * static_cast<double>(counts[i]);
    }
    DecisionTreeOptions tree_options;
    tree_options.max_depth = options_.max_depth;
    tree_options.max_features = max_features;
    tree_options.min_weight_leaf = options_.min_weight_leaf;
    tree_options.min_weight_split = 2.0 * options_.min_weight_leaf;
    tree_options.seed = feature_seeds[t];
    tree_options.split_method = options_.split_method;
    tree_options.max_bins = options_.max_bins;
    // Trees already run in parallel; keep per-tree histogram fills serial.
    tree_options.num_threads = 1;
    DecisionTreeTrainer tree_trainer(tree_options);
    if (binned != nullptr) tree_trainer.SetBinnedMatrix(binned);
    trees[t] = tree_trainer.Fit(X, y, boot_weights);
  };

  const int num_threads = std::max(1, std::min(options_.num_threads,
                                               options_.num_trees));
  if (num_threads == 1) {
    for (int t = 0; t < options_.num_trees; ++t) build_tree(t);
  } else {
    ThreadPool::Global().ParallelFor(
        static_cast<size_t>(options_.num_trees),
        [&](size_t t) { build_tree(static_cast<int>(t)); }, num_threads);
  }
  return std::make_unique<RandomForestModel>(std::move(trees),
                                             options_.num_threads);
}

}  // namespace omnifair
