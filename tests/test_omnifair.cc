#include "core/omnifair.h"

#include <cmath>

#include <gtest/gtest.h>

#include "data/datasets.h"
#include "data/split.h"
#include "ml/trainer_registry.h"

namespace omnifair {
namespace {

struct Fixture {
  Dataset data;
  TrainValTestSplit split;
  FairnessSpec spec;

  explicit Fixture(double epsilon = 0.03, size_t rows = 4000) {
    SyntheticOptions options;
    options.num_rows = rows;
    options.seed = 2;
    data = MakeCompasDataset(options);
    split = SplitDefault(data, 13);
    spec = MakeSpec(GroupByAttributeValues("race", {"African-American", "Caucasian"}),
                    "sp", epsilon);
  }
};

TEST(OmniFairTest, EndToEndLogisticRegression) {
  Fixture fx;
  auto trainer = MakeTrainer("lr");
  OmniFair omnifair;
  auto fair = omnifair.Train(fx.split.train, fx.split.val, trainer.get(), {fx.spec});
  ASSERT_TRUE(fair.ok()) << fair.status();
  EXPECT_TRUE(fair->satisfied);
  EXPECT_LE(std::fabs(fair->val_fairness_parts[0]), 0.03 + 1e-9);
  EXPECT_GT(fair->val_accuracy, 0.65);
  EXPECT_GT(fair->models_trained, 1);
  EXPECT_GT(fair->train_seconds, 0.0);
}

/// Model-agnostic contract: the same declarative pipeline works for every
/// trainer family without modification (the paper's Table 5 columns).
class ModelAgnosticTest : public ::testing::TestWithParam<std::string> {};

TEST_P(ModelAgnosticTest, SatisfiesSpForEveryModelFamily) {
  Fixture fx(/*epsilon=*/0.05, /*rows=*/2500);
  auto trainer = MakeTrainer(GetParam());
  OmniFair omnifair;
  auto fair = omnifair.Train(fx.split.train, fx.split.val, trainer.get(), {fx.spec});
  ASSERT_TRUE(fair.ok()) << fair.status();
  EXPECT_TRUE(fair->satisfied) << GetParam();
  EXPECT_LE(std::fabs(fair->val_fairness_parts[0]), fx.spec.epsilon + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(AllModels, ModelAgnosticTest,
                         ::testing::Values("lr", "dt", "rf", "xgb", "nn"));

TEST(OmniFairTest, PredictOnRawDataset) {
  Fixture fx;
  auto trainer = MakeTrainer("lr");
  OmniFair omnifair;
  auto fair = omnifair.Train(fx.split.train, fx.split.val, trainer.get(), {fx.spec});
  ASSERT_TRUE(fair.ok());
  const std::vector<int> preds = fair->Predict(fx.split.test);
  EXPECT_EQ(preds.size(), fx.split.test.NumRows());
  const std::vector<double> proba = fair->PredictProba(fx.split.test);
  for (size_t i = 0; i < preds.size(); ++i) {
    EXPECT_EQ(preds[i], proba[i] >= 0.5 ? 1 : 0);
  }
}

TEST(OmniFairTest, AuditReportsConstraintLabels) {
  Fixture fx;
  auto trainer = MakeTrainer("lr");
  OmniFair omnifair;
  auto fair = omnifair.Train(fx.split.train, fx.split.val, trainer.get(), {fx.spec});
  ASSERT_TRUE(fair.ok());
  auto audit = Audit(*fair->model, fair->encoder, fx.split.test, {fx.spec});
  ASSERT_TRUE(audit.ok());
  ASSERT_EQ(audit->constraint_labels.size(), 1u);
  EXPECT_EQ(audit->constraint_labels[0], "sp(African-American vs Caucasian)");
  EXPECT_GT(audit->accuracy, 0.6);
  EXPECT_GT(audit->roc_auc, 0.6);
  EXPECT_NEAR(audit->max_disparity, std::fabs(audit->fairness_parts[0]), 1e-12);
}

TEST(OmniFairTest, AuditPerGroupBreakdown) {
  Fixture fx;
  auto trainer = MakeTrainer("lr");
  OmniFair omnifair;
  auto fair = omnifair.Train(fx.split.train, fx.split.val, trainer.get(), {fx.spec});
  ASSERT_TRUE(fair.ok());
  auto audit = Audit(*fair->model, fair->encoder, fx.split.test, {fx.spec});
  ASSERT_TRUE(audit.ok());
  ASSERT_EQ(audit->groups.size(), 2u);  // the two declared race groups
  size_t total = 0;
  for (const GroupAudit& row : audit->groups) {
    EXPECT_EQ(row.metric, "sp");
    EXPECT_GT(row.size, 0u);
    EXPECT_GE(row.value, 0.0);
    EXPECT_LE(row.value, 1.0);
    EXPECT_GT(row.accuracy, 0.5);
    total += row.size;
  }
  EXPECT_LE(total, fx.split.test.NumRows());
  // The signed FP equals the difference of the two group values.
  const double diff = audit->groups[0].value - audit->groups[1].value;
  EXPECT_NEAR(diff, audit->fairness_parts[0], 1e-12);
  // And the dashboard renders without crashing.
  const std::string text = audit->ToString();
  EXPECT_NE(text.find("per-group breakdown"), std::string::npos);
  EXPECT_NE(text.find("African-American"), std::string::npos);
}

TEST(OmniFairTest, TrainWithSplitProducesTestReport) {
  Fixture fx;
  auto trainer = MakeTrainer("lr");
  OmniFair omnifair;
  AuditReport report;
  auto fair = omnifair.TrainWithSplit(fx.data, trainer.get(), {fx.spec}, 17, &report);
  ASSERT_TRUE(fair.ok()) << fair.status();
  EXPECT_GT(report.accuracy, 0.6);
  // Test disparity should be near the validation target (generalization).
  EXPECT_LE(report.max_disparity, 0.12);
}

TEST(OmniFairTest, WarmStartOptionProducesSameQuality) {
  Fixture fx;
  auto trainer = MakeTrainer("lr");
  OmniFairOptions options;
  options.warm_start = true;
  OmniFair omnifair(options);
  auto fair = omnifair.Train(fx.split.train, fx.split.val, trainer.get(), {fx.spec});
  ASSERT_TRUE(fair.ok());
  EXPECT_TRUE(fair->satisfied);
}

TEST(OmniFairTest, InvalidSpecRejected) {
  Fixture fx;
  auto trainer = MakeTrainer("lr");
  OmniFair omnifair;
  FairnessSpec broken;  // no grouping, no metric
  auto fair = omnifair.Train(fx.split.train, fx.split.val, trainer.get(), {broken});
  EXPECT_FALSE(fair.ok());
  EXPECT_EQ(fair.status().code(), StatusCode::kInvalidArgument);
}

TEST(OmniFairTest, MultipleSpecsUseHillClimbing) {
  Fixture fx(/*epsilon=*/0.05);
  auto trainer = MakeTrainer("lr");
  const FairnessSpec fnr_spec = MakeSpec(
      GroupByAttributeValues("race", {"African-American", "Caucasian"}), "fnr", 0.06);
  OmniFair omnifair;
  auto fair = omnifair.Train(fx.split.train, fx.split.val, trainer.get(),
                             {fx.spec, fnr_spec});
  ASSERT_TRUE(fair.ok());
  ASSERT_EQ(fair->lambdas.size(), 2u);
  EXPECT_TRUE(fair->satisfied);
  EXPECT_LE(std::fabs(fair->val_fairness_parts[0]), 0.05 + 1e-9);
  EXPECT_LE(std::fabs(fair->val_fairness_parts[1]), 0.06 + 1e-9);
}

TEST(OmniFairTest, CustomAecMetricWorksEndToEnd) {
  Fixture fx;
  FairnessSpec aec_spec;
  aec_spec.grouping =
      GroupByAttributeValues("race", {"African-American", "Caucasian"});
  aec_spec.metric = std::make_shared<AverageErrorCostMetric>(1.0, 3.0);
  aec_spec.epsilon = 0.05;
  auto trainer = MakeTrainer("lr");
  OmniFair omnifair;
  auto fair = omnifair.Train(fx.split.train, fx.split.val, trainer.get(), {aec_spec});
  ASSERT_TRUE(fair.ok()) << fair.status();
  EXPECT_TRUE(fair->satisfied);
  EXPECT_LE(std::fabs(fair->val_fairness_parts[0]), 0.05 + 1e-9);
}

TEST(OmniFairTest, IntersectionalGroupingWorksEndToEnd) {
  Fixture fx;
  FairnessSpec spec = MakeSpec(GroupByIntersection({"race", "sex"}), "mr", 0.1);
  auto trainer = MakeTrainer("lr");
  OmniFair omnifair;
  auto fair = omnifair.Train(fx.split.train, fx.split.val, trainer.get(), {spec});
  ASSERT_TRUE(fair.ok()) << fair.status();
  ASSERT_GE(fair->lambdas.size(), 6u);  // C(m,2) for m >= 4 intersections
}

}  // namespace
}  // namespace omnifair
