#ifndef OMNIFAIR_CORE_CHECKPOINT_H_
#define OMNIFAIR_CORE_CHECKPOINT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "util/snapshot_io.h"
#include "util/status.h"
#include "util/stopwatch.h"

namespace omnifair {

class Classifier;
class FairnessProblem;

// ---------------------------------------------------------------------------
// Crash-safe checkpoint/resume for tuning runs (DESIGN.md §12).
//
// The checkpoint is a replay log: the ordered sequence of every trainer fit a
// tuning search issued, each with its Lambda vector, outcome, completion time
// and a bit-exact binary model blob. Because every built-in trainer is
// deterministic given (X, y, weights, seed) and the tuners' control flow is a
// pure function of past fit outcomes, re-running a tuner while FitWithLambdas
// returns the logged models instead of refitting reproduces the interrupted
// search exactly — the resumed run's final model and concatenated TuneReport
// are bit-identical to an uninterrupted run (all fields except wall-clock
// seconds, which no two runs share). One mechanism covers all three tuners.
//
// Not supported with warm-start trainers: warm starts carry optimizer state
// across fits, which a resumed process does not have.
// ---------------------------------------------------------------------------

/// Where and how often a tuning run persists its state.
struct CheckpointOptions {
  /// Snapshot file the run writes (durable: temp + fsync + atomic rename).
  /// Empty disables checkpointing.
  std::string path;
  /// Minimum seconds between snapshot writes; 0 writes at every record
  /// barrier (cheapest to test, dearest in IO).
  double interval_s = 0.0;
  /// Existing snapshot to resume from. The run replays its fits from this
  /// file, then continues live — and keeps checkpointing to `path`.
  std::string resume_from;
};

/// One logged trainer invocation.
struct FitRecord {
  std::vector<double> lambdas;
  bool fit_ok = false;
  /// Firewalled failure detail when !fit_ok (code + message round-trip so a
  /// replayed failure reproduces last_fit_status()).
  uint8_t status_code = 0;
  std::string status_message;
  /// TunePoint::seconds of the original fit (original run's tune clock).
  double seconds = 0.0;
  /// SerializeModelBinary bytes; empty when !fit_ok.
  std::vector<uint8_t> model_blob;
};

/// The replay log plus its durability policy. Owned by the tuner's top-level
/// Run/TuneSingle scope and attached to the FairnessProblem for the duration
/// (single-threaded use: all record/replay calls happen on the merge thread
/// at index-ordered barriers).
class CheckpointManager {
 public:
  /// Fresh session, or a resume when options.resume_from is set. Resume
  /// failures are typed: kDataLoss (truncated/bit-flipped file, counted in
  /// `checkpoint.corrupt_detected`), kInvalidArgument (not a checkpoint,
  /// newer version, or written by a different tuner `algorithm`).
  static Result<std::unique_ptr<CheckpointManager>> Create(
      const CheckpointOptions& options, const std::string& algorithm);

  // --- replay ---------------------------------------------------------------
  /// Only records loaded from resume_from replay; records appended by live
  /// fits sit past `replay_limit_` and are never handed back to the run
  /// that produced them.
  bool HasPendingReplay() const { return replay_next_ < replay_limit_; }
  size_t pending_replays() const { return replay_limit_ - replay_next_; }
  /// Consumes the next logged fit. `lambdas` must equal the record's lambdas
  /// bit-for-bit — a mismatch means the tuner options changed between runs
  /// and yields kInvalidArgument without consuming the record.
  Result<const FitRecord*> NextReplay(const std::vector<double>& lambdas);
  /// Tune-clock seconds already consumed by the loaded log (the last
  /// record's completion time); 0 for a fresh session. Feed it to
  /// TrainBudget::RestoreConsumed and FairnessProblem::SetTuneSecondsBase.
  double consumed_seconds() const { return consumed_seconds_; }

  // --- recording ------------------------------------------------------------
  /// Logs one live fit (serializes `model`; pass nullptr for a failed fit).
  void RecordFit(const std::vector<double>& lambdas, bool fit_ok,
                 const Status& fit_status, double seconds,
                 const Classifier* model);
  /// Same with a pre-serialized blob (parallel workers serialize off-thread).
  void RecordFitBlob(std::vector<double> lambdas, bool fit_ok,
                     const Status& fit_status, double seconds,
                     std::vector<uint8_t> model_blob);

  // --- durability -----------------------------------------------------------
  /// Writes a snapshot when forced, or when interval_s has elapsed since the
  /// last write. Failed writes degrade: the run continues, the failure lands
  /// in `checkpoint.write_failures` and last_write_status(). No-op once
  /// crashed() — a crashed process writes nothing more.
  void MaybeWrite(bool force = false);
  const Status& last_write_status() const { return last_write_status_; }

  /// True after the `checkpoint.crash_after_write` fault site fired: the
  /// simulated process death. Tuners observe it via
  /// FairnessProblem::Interrupted and stop like a budget expiry.
  bool crashed() const { return crashed_; }
  Status CrashStatus() const;

  const std::string& algorithm() const { return algorithm_; }
  size_t num_records() const { return records_.size(); }

 private:
  CheckpointManager(CheckpointOptions options, std::string algorithm);

  CheckpointOptions options_;
  std::string algorithm_;
  std::vector<FitRecord> records_;
  size_t replay_next_ = 0;
  size_t replay_limit_ = 0;
  double consumed_seconds_ = 0.0;
  Stopwatch since_write_;
  bool wrote_once_ = false;
  bool crashed_ = false;
  /// Set when a record could not be serialized (exotic model family):
  /// recording stops so the log stays a valid prefix of the run.
  bool recording_broken_ = false;
  Status last_write_status_;
};

/// Sets up checkpointing for one tuning run: creates the manager (or resumes
/// — restoring the attached TrainBudget's consumed seconds and the problem's
/// tune clock) and attaches it to `problem`. Returns a null manager when
/// `options` has neither path nor resume_from, or when the problem already
/// has one attached (a HillClimber-owned session spans its inner coordinate
/// tunes). Pair with FinishCheckpoint.
Result<std::unique_ptr<CheckpointManager>> AttachCheckpoint(
    FairnessProblem& problem, const CheckpointOptions& options,
    const std::string& algorithm);

/// Final forced snapshot write (so the file covers the whole run) and
/// detach. Safe with a null manager.
void FinishCheckpoint(FairnessProblem& problem,
                      CheckpointManager* checkpoint);

}  // namespace omnifair

#endif  // OMNIFAIR_CORE_CHECKPOINT_H_
