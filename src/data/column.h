#ifndef OMNIFAIR_DATA_COLUMN_H_
#define OMNIFAIR_DATA_COLUMN_H_

#include <string>
#include <vector>

namespace omnifair {

/// Physical type of a column.
enum class ColumnType {
  kNumeric,      ///< double values
  kCategorical,  ///< dictionary-encoded strings
};

/// A named, typed column of a tabular dataset.
///
/// Categorical columns are dictionary-encoded: values are stored as integer
/// codes into a per-column category list, like Arrow's dictionary arrays.
/// This keeps group-membership checks (the hot path of grouping functions)
/// integer comparisons.
class Column {
 public:
  /// Creates an empty numeric column.
  static Column Numeric(std::string name);
  /// Creates an empty categorical column with a fixed category dictionary.
  static Column Categorical(std::string name, std::vector<std::string> categories);

  const std::string& name() const { return name_; }
  ColumnType type() const { return type_; }
  size_t size() const {
    return type_ == ColumnType::kNumeric ? values_.size() : codes_.size();
  }

  // --- Numeric access -------------------------------------------------------
  double NumericValue(size_t row) const { return values_[row]; }
  void AppendNumeric(double value);
  const std::vector<double>& numeric_values() const { return values_; }

  // --- Categorical access ---------------------------------------------------
  int Code(size_t row) const { return codes_[row]; }
  const std::string& CategoryOf(size_t row) const { return categories_[codes_[row]]; }
  const std::vector<std::string>& categories() const { return categories_; }
  const std::vector<int>& codes() const { return codes_; }
  void AppendCode(int code);
  /// Appends by category name, registering a new category if needed.
  void AppendCategory(const std::string& category);
  /// Returns the code for a category name, or -1 if unknown.
  int CodeOf(const std::string& category) const;

  /// New column holding the given subset of rows, in order.
  Column SelectRows(const std::vector<size_t>& indices) const;

 private:
  Column(std::string name, ColumnType type)
      : name_(std::move(name)), type_(type) {}

  std::string name_;
  ColumnType type_;
  std::vector<double> values_;           // numeric payload
  std::vector<int> codes_;               // categorical payload
  std::vector<std::string> categories_;  // categorical dictionary
};

}  // namespace omnifair

#endif  // OMNIFAIR_DATA_COLUMN_H_
