#ifndef OMNIFAIR_UTIL_STOPWATCH_H_
#define OMNIFAIR_UTIL_STOPWATCH_H_

#include <chrono>

namespace omnifair {

/// Wall-clock stopwatch used by the efficiency experiments (Figures 5/6,
/// Tables 6/8).
class Stopwatch {
 public:
  Stopwatch() { Restart(); }

  void Restart() { start_ = std::chrono::steady_clock::now(); }

  /// Seconds elapsed since construction or the last Restart().
  double ElapsedSeconds() const {
    const auto now = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(now - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace omnifair

#endif  // OMNIFAIR_UTIL_STOPWATCH_H_
