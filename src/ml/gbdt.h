#ifndef OMNIFAIR_ML_GBDT_H_
#define OMNIFAIR_ML_GBDT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "ml/binning.h"
#include "ml/classifier.h"

namespace omnifair {

/// Hyperparameters for the gradient-boosted tree ensemble.
struct GbdtOptions {
  int num_rounds = 40;
  int max_depth = 4;
  double learning_rate = 0.25;
  /// L2 regularization on leaf values (XGBoost's lambda).
  double reg_lambda = 1.0;
  /// Minimum hessian sum per leaf (XGBoost's min_child_weight).
  double min_child_weight = 1.0;
  /// Minimum gain to accept a split (XGBoost's gamma).
  double min_split_gain = 0.0;
  /// Divergence recovery (DESIGN.md §8): a boosting round whose tree pushes
  /// any raw score non-finite is dropped and subsequent trees have their
  /// leaf values damped by another factor of 2, at most this many times
  /// before boosting stops with the ensemble built so far.
  int max_divergence_retries = 3;
  /// Split search strategy (DESIGN.md §11). kExact is the seed behavior and
  /// stays bit-identical to it; kHistogram pre-quantizes X once per fit (and
  /// once per tuning run via the shared BinningCache) and scans bin
  /// histograms per node.
  SplitMethod split_method = SplitMethod::kExact;
  /// Bins per feature in histogram mode (clamped to [2, 255]).
  int max_bins = 255;
  /// Worker threads for histogram builds and chunked prediction; 1 keeps
  /// the exact serial paths. Fitted trees and predictions are bit-identical
  /// for any value.
  int num_threads = 1;
};

/// A regression tree over (gradient, hessian) statistics: internal nodes
/// split on feature thresholds; leaves hold additive log-odds contributions.
struct GbdtTreeNode {
  bool is_leaf = true;
  int feature = -1;
  double threshold = 0.0;
  int left = -1;
  int right = -1;
  double value = 0.0;  // leaf weight (log-odds delta)
};

/// An XGBoost-style boosted ensemble for binary classification.
class GbdtModel : public Classifier {
 public:
  /// `num_threads` parallelizes PredictProba/PredictRaw over disjoint row
  /// chunks on the shared pool (mirroring RandomForestModel); 1 keeps
  /// prediction fully sequential. Either way each row sums its trees in
  /// index order, so results are identical for any thread count.
  GbdtModel(std::vector<std::vector<GbdtTreeNode>> trees, double base_score,
            double learning_rate, int num_threads = 1);

  std::vector<double> PredictProba(const Matrix& X) const override;
  /// Per-row traversal straight into the output buffer — no temporary.
  void AccumulateProba(const Matrix& X, size_t row_begin, size_t row_end,
                       std::vector<double>& proba) const override;
  std::string Name() const override { return "gbdt"; }

  size_t NumTrees() const { return trees_.size(); }
  const std::vector<std::vector<GbdtTreeNode>>& trees() const { return trees_; }
  double base_score() const { return base_score_; }
  double learning_rate() const { return learning_rate_; }
  /// Raw additive score (log-odds) per row.
  std::vector<double> PredictRaw(const Matrix& X) const;

 private:
  double PredictRawRow(const double* row) const;

  std::vector<std::vector<GbdtTreeNode>> trees_;
  double base_score_;
  double learning_rate_;
  int num_threads_ = 1;
};

/// Gradient-boosted decision trees with the second-order (Newton) logistic
/// objective of XGBoost [13]. Example weights scale each example's gradient
/// and hessian, matching xgboost's sample_weight semantics — this is the
/// "XGB" column of the paper's Table 5.
class GbdtTrainer : public Trainer {
 public:
  explicit GbdtTrainer(GbdtOptions options = {});

  std::unique_ptr<Classifier> Fit(const Matrix& X, const std::vector<int>& y,
                                  const std::vector<double>& weights) override;
  using Trainer::Fit;

  std::string Name() const override { return "gbdt"; }
  /// The clone shares this trainer's BinningCache, so parallel tuners that
  /// fit every grid point on its own clone still bin X exactly once.
  std::unique_ptr<Trainer> Clone() const override;

  /// Hands the trainer a pre-built binning for upcoming Fits. Ignored in
  /// exact mode or when it does not match the fitted X.
  void SetBinnedMatrix(std::shared_ptr<const BinnedMatrix> binned) {
    preset_binned_ = std::move(binned);
  }

 private:
  GbdtOptions options_;
  std::shared_ptr<BinningCache> bin_cache_;
  std::shared_ptr<const BinnedMatrix> preset_binned_;
};

}  // namespace omnifair

#endif  // OMNIFAIR_ML_GBDT_H_
