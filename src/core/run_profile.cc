#include "core/run_profile.h"

#include <algorithm>
#include <cstdio>
#include <ctime>
#include <sstream>

#include "util/json_writer.h"
#include "util/logging.h"

namespace omnifair {

const char* RunStageName(RunStage stage) {
  switch (stage) {
    case RunStage::kSetup:
      return "setup";
    case RunStage::kEncode:
      return "encode";
    case RunStage::kTrainerFit:
      return "trainer_fit";
    case RunStage::kWeightCompute:
      return "weight_compute";
    case RunStage::kPredict:
      return "predict";
    case RunStage::kConstraintEval:
      return "constraint_eval";
    case RunStage::kCheckpoint:
      return "checkpoint";
    case RunStage::kIngest:
      return "ingest";
  }
  return "unknown";
}

// ---------------------------------------------------------------------------
// RunProfiler / RunStageTimer
// ---------------------------------------------------------------------------

void RunProfiler::Record(RunStage stage, long long wall_ns, long long cpu_ns) {
  Cell& cell = cells_[static_cast<size_t>(stage)];
  cell.wall_ns.fetch_add(wall_ns, std::memory_order_relaxed);
  if (cpu_ns >= 0) cell.cpu_ns.fetch_add(cpu_ns, std::memory_order_relaxed);
  cell.calls.fetch_add(1, std::memory_order_relaxed);
}

long long RunProfiler::Calls(RunStage stage) const {
  return cells_[static_cast<size_t>(stage)].calls.load(std::memory_order_relaxed);
}

double RunProfiler::WallUs(RunStage stage) const {
  return static_cast<double>(cells_[static_cast<size_t>(stage)].wall_ns.load(
             std::memory_order_relaxed)) /
         1e3;
}

double RunProfiler::CpuUs(RunStage stage) const {
  return static_cast<double>(cells_[static_cast<size_t>(stage)].cpu_ns.load(
             std::memory_order_relaxed)) /
         1e3;
}

namespace {

/// Current thread's CPU clock in ns, -1 when the platform has none.
long long ThreadCpuNowNs() {
#if defined(CLOCK_THREAD_CPUTIME_ID)
  struct timespec ts;
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) != 0) return -1;
  return static_cast<long long>(ts.tv_sec) * 1000000000LL + ts.tv_nsec;
#else
  return -1;
#endif
}

}  // namespace

long long ProcessCpuNowNs() {
#if defined(CLOCK_PROCESS_CPUTIME_ID)
  struct timespec ts;
  if (clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts) != 0) return -1;
  return static_cast<long long>(ts.tv_sec) * 1000000000LL + ts.tv_nsec;
#else
  return -1;
#endif
}

RunStageTimer::RunStageTimer(RunProfiler* profiler, RunStage stage)
    : profiler_(profiler), stage_(stage) {
  if (profiler_ == nullptr) return;
  wall_start_ = std::chrono::steady_clock::now();
  cpu_start_ns_ = ThreadCpuNowNs();
}

RunStageTimer::~RunStageTimer() {
  if (profiler_ == nullptr) return;
  const long long wall_ns =
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - wall_start_)
          .count();
  long long cpu_ns = -1;
  if (cpu_start_ns_ >= 0) {
    const long long cpu_now = ThreadCpuNowNs();
    if (cpu_now >= 0) cpu_ns = cpu_now - cpu_start_ns_;
  }
  profiler_->Record(stage_, wall_ns, cpu_ns);
}

// ---------------------------------------------------------------------------
// BuildRunProfile
// ---------------------------------------------------------------------------

namespace {

long long CounterValue(const MetricsSnapshot& snapshot, const std::string& name) {
  for (const auto& [counter_name, value] : snapshot.counters) {
    if (counter_name == name) return value;
  }
  return 0;
}

long long CounterDelta(const MetricsSnapshot& before, const MetricsSnapshot& after,
                       const std::string& name) {
  return CounterValue(after, name) - CounterValue(before, name);
}

const MetricsSnapshot::HistogramSnapshot* FindHistogram(
    const MetricsSnapshot& snapshot, const std::string& name) {
  for (const auto& h : snapshot.histograms) {
    if (h.name == name) return &h;
  }
  return nullptr;
}

double HistogramSumDelta(const MetricsSnapshot& before, const MetricsSnapshot& after,
                         const std::string& name) {
  const auto* b = FindHistogram(before, name);
  const auto* a = FindHistogram(after, name);
  return (a != nullptr ? a->sum : 0.0) - (b != nullptr ? b->sum : 0.0);
}

}  // namespace

RunProfile BuildRunProfile(const RunProfiler& profiler,
                           const MetricsSnapshot& before,
                           const MetricsSnapshot& after,
                           const std::string& algorithm, int threads,
                           double total_wall_us, double total_cpu_us) {
  RunProfile profile;
  profile.algorithm = algorithm;
  profile.threads = std::max(threads, 1);
  profile.total_wall_us = total_wall_us;
  profile.total_cpu_us = std::max(total_cpu_us, 0.0);

  double attributed_wall_us = 0.0;
  for (int s = 0; s < kNumRunStages; ++s) {
    const RunStage stage = static_cast<RunStage>(s);
    RunProfile::Stage row;
    row.name = RunStageName(stage);
    row.calls = profiler.Calls(stage);
    row.wall_us = profiler.WallUs(stage);
    row.cpu_us = profiler.CpuUs(stage);
    attributed_wall_us += row.wall_us;
    profile.stages.push_back(std::move(row));
  }
  RunProfile::Stage other;
  other.name = "other";
  other.calls = 0;
  other.wall_us = std::max(total_wall_us - attributed_wall_us, 0.0);
  other.cpu_us = 0.0;
  profile.stages.push_back(std::move(other));

  profile.trainer_fits = CounterDelta(before, after, "trainer.fits");
  profile.trainer_fit_failures =
      CounterDelta(before, after, "trainer.fit_failures");
  profile.weight_cache_hits = CounterDelta(before, after, "weights.cache_hits");
  profile.weight_cache_misses =
      CounterDelta(before, after, "weights.cache_misses");
  profile.bins_reused = CounterDelta(before, after, "tree.bins_reused");
  profile.hist_build_us = HistogramSumDelta(before, after, "tree.hist_build_us");
  profile.pool_tasks = CounterDelta(before, after, "pool.tasks");
  profile.pool_busy_us = HistogramSumDelta(before, after, "pool.task_us");
  profile.checkpoint_writes = CounterDelta(before, after, "checkpoint.writes");
  profile.checkpoint_bytes = CounterDelta(before, after, "checkpoint.bytes");
  profile.ingest_rows = CounterDelta(before, after, "ingest.rows");
  profile.ingest_chunks = CounterDelta(before, after, "ingest.chunks");
  profile.ingest_parse_us = static_cast<double>(
      CounterDelta(before, after, "ingest.parse_us"));
  profile.ingest_spill_bytes =
      CounterDelta(before, after, "ingest.spill_bytes");
  profile.sgd_batches = CounterDelta(before, after, "sgd.batches");
  profile.sgd_epochs = CounterDelta(before, after, "sgd.epochs");
  return profile;
}

// ---------------------------------------------------------------------------
// RunProfile rendering
// ---------------------------------------------------------------------------

double RunProfile::WeightCacheHitRate() const {
  const long long consulted = weight_cache_hits + weight_cache_misses;
  if (consulted <= 0) return 0.0;
  return static_cast<double>(weight_cache_hits) /
         static_cast<double>(consulted);
}

double RunProfile::PoolUtilization() const {
  if (pool_tasks <= 0 || total_wall_us <= 0.0 || threads <= 0) return 0.0;
  const double utilization =
      pool_busy_us / (total_wall_us * static_cast<double>(threads));
  return std::min(std::max(utilization, 0.0), 1.0);
}

std::string RunProfile::ToText() const {
  std::ostringstream os;
  char line[200];
  if (empty()) return "run profile: empty (telemetry off)\n";
  std::snprintf(line, sizeof(line),
                "run profile: algorithm=%s threads=%d wall=%.1fms cpu=%.1fms\n",
                algorithm.empty() ? "?" : algorithm.c_str(), threads,
                total_wall_us / 1e3, total_cpu_us / 1e3);
  os << line;
  std::snprintf(line, sizeof(line), "  %-16s %8s %12s %7s %12s\n", "stage",
                "calls", "wall_ms", "wall%", "cpu_ms");
  os << line;
  for (const Stage& stage : stages) {
    const double pct =
        total_wall_us > 0.0 ? 100.0 * stage.wall_us / total_wall_us : 0.0;
    std::snprintf(line, sizeof(line), "  %-16s %8lld %12.2f %7.1f %12.2f\n",
                  stage.name.c_str(), stage.calls, stage.wall_us / 1e3, pct,
                  stage.cpu_us / 1e3);
    os << line;
  }
  std::snprintf(line, sizeof(line), "  %-16s %8s %12.2f %7.1f %12.2f\n",
                "total", "-", total_wall_us / 1e3, 100.0, total_cpu_us / 1e3);
  os << line;
  std::snprintf(line, sizeof(line), "  fits: %lld (%lld failed)\n",
                trainer_fits, trainer_fit_failures);
  os << line;
  if (weight_cache_hits + weight_cache_misses > 0) {
    std::snprintf(line, sizeof(line),
                  "  weight cache: %lld/%lld hits (%.1f%%)\n",
                  weight_cache_hits, weight_cache_hits + weight_cache_misses,
                  100.0 * WeightCacheHitRate());
    os << line;
  }
  if (bins_reused > 0 || hist_build_us > 0.0) {
    std::snprintf(line, sizeof(line),
                  "  binning: %lld bins reused, %.2fms building histograms\n",
                  bins_reused, hist_build_us / 1e3);
    os << line;
  }
  if (pool_tasks > 0) {
    std::snprintf(line, sizeof(line),
                  "  pool: %lld tasks, busy %.2fms, utilization %.1f%%\n",
                  pool_tasks, pool_busy_us / 1e3, 100.0 * PoolUtilization());
    os << line;
  }
  if (checkpoint_writes > 0) {
    std::snprintf(line, sizeof(line),
                  "  checkpoint: %lld snapshot writes, %lld bytes\n",
                  checkpoint_writes, checkpoint_bytes);
    os << line;
  }
  if (ingest_rows > 0) {
    std::snprintf(line, sizeof(line),
                  "  ingest: %lld rows in %lld chunks, parse %.2fms, "
                  "spilled %lld bytes\n",
                  ingest_rows, ingest_chunks, ingest_parse_us / 1e3,
                  ingest_spill_bytes);
    os << line;
  }
  if (sgd_batches > 0) {
    std::snprintf(line, sizeof(line), "  sgd: %lld batches over %lld epochs\n",
                  sgd_batches, sgd_epochs);
    os << line;
  }
  return os.str();
}

void RunProfile::WriteJson(JsonWriter& writer) const {
  writer.BeginObject();
  writer.KV("algorithm", algorithm);
  writer.KV("threads", threads);
  writer.KV("total_wall_us", total_wall_us);
  writer.KV("total_cpu_us", total_cpu_us);
  writer.Key("stages");
  writer.BeginArray();
  for (const Stage& stage : stages) {
    writer.BeginObject();
    writer.KV("name", stage.name);
    writer.KV("calls", stage.calls);
    writer.KV("wall_us", stage.wall_us);
    writer.KV("cpu_us", stage.cpu_us);
    writer.EndObject();
  }
  writer.EndArray();
  writer.Key("counters");
  writer.BeginObject();
  writer.KV("trainer_fits", trainer_fits);
  writer.KV("trainer_fit_failures", trainer_fit_failures);
  writer.KV("weight_cache_hits", weight_cache_hits);
  writer.KV("weight_cache_misses", weight_cache_misses);
  writer.KV("bins_reused", bins_reused);
  writer.KV("hist_build_us", hist_build_us);
  writer.KV("pool_tasks", pool_tasks);
  writer.KV("pool_busy_us", pool_busy_us);
  writer.KV("checkpoint_writes", checkpoint_writes);
  writer.KV("checkpoint_bytes", checkpoint_bytes);
  writer.KV("ingest_rows", ingest_rows);
  writer.KV("ingest_chunks", ingest_chunks);
  writer.KV("ingest_parse_us", ingest_parse_us);
  writer.KV("ingest_spill_bytes", ingest_spill_bytes);
  writer.KV("sgd_batches", sgd_batches);
  writer.KV("sgd_epochs", sgd_epochs);
  writer.EndObject();
  writer.KV("weight_cache_hit_rate", WeightCacheHitRate());
  writer.KV("pool_utilization", PoolUtilization());
  writer.EndObject();
}

std::string RunProfile::ToJson() const {
  std::ostringstream os;
  JsonWriter writer(os);
  WriteJson(writer);
  return os.str();
}

}  // namespace omnifair
