// Google-benchmark microbenchmarks for the kernels every experiment leans
// on: example-weight computation (Eq. 12), fairness-part evaluation, and
// one Fit per model family. These quantify the claim that OmniFair's
// per-lambda overhead is dominated by the black-box Fit itself — the
// declarative layer adds microseconds.

#include <benchmark/benchmark.h>

#include <chrono>

#include "bench/bench_common.h"
#include "core/problem.h"
#include "linalg/matrix.h"
#include "linalg/simd.h"
#include "linalg/vector_ops.h"
#include "ml/binning.h"

namespace omnifair {
namespace bench {
namespace {

struct MicroFixture {
  Dataset data;
  TrainValTestSplit split;
  std::unique_ptr<Trainer> trainer;
  std::unique_ptr<FairnessProblem> problem;

  explicit MicroFixture(const std::string& trainer_name) {
    SyntheticOptions options;
    options.num_rows = 4000;
    options.seed = 7;
    data = MakeCompasDataset(options);
    split = SplitDefault(data, 3);
    trainer = MakeTrainer(trainer_name);
    auto created = FairnessProblem::Create(
        split.train, split.val,
        {MakeSpec(MainGroups("compas"), "sp", 0.03)}, trainer.get());
    problem = std::move(*created);
  }
};

void BM_Dot(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  std::vector<double> a(n);
  std::vector<double> b(n);
  for (size_t i = 0; i < n; ++i) {
    a[i] = 0.25 + static_cast<double>(i % 31);
    b[i] = 1.5 - static_cast<double>(i % 17);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(Dot(a, b));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_Dot)->Arg(64)->Arg(1024)->Arg(16384);

void BM_Axpy(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  std::vector<double> a(n, 0.0);
  std::vector<double> b(n);
  for (size_t i = 0; i < n; ++i) b[i] = 1.0 + static_cast<double>(i % 13);
  for (auto _ : state) {
    Axpy(1e-9, b, &a);
    benchmark::DoNotOptimize(a.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_Axpy)->Arg(64)->Arg(1024)->Arg(16384);

// Float32-storage variants of the two arithmetic kernels: float feature
// data widened per lane against double coefficients (the mixed-precision
// path the float32 feature matrix uses).
void BM_DotF32(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  std::vector<float> a(n);
  std::vector<double> b(n);
  for (size_t i = 0; i < n; ++i) {
    a[i] = 0.25f + static_cast<float>(i % 31);
    b[i] = 1.5 - static_cast<double>(i % 17);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(simd::DotF32(a.data(), b.data(), n));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_DotF32)->Arg(64)->Arg(1024)->Arg(16384);

void BM_AxpyF32(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  std::vector<double> a(n, 0.0);
  std::vector<float> b(n);
  for (size_t i = 0; i < n; ++i) b[i] = 1.0f + static_cast<float>(i % 13);
  const simd::Kernels& kernels = simd::Active();
  for (auto _ : state) {
    kernels.axpy_f32(1e-9, b.data(), a.data(), n);
    benchmark::DoNotOptimize(a.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_AxpyF32)->Arg(64)->Arg(1024)->Arg(16384);

// Batched sigmoid over a margin buffer — the kernel behind blocked predict.
// Applying it in place repeatedly keeps every pass a full exp workload
// (values settle into (0, 1), still on the polynomial's main path).
void BM_Sigmoid(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  std::vector<double> v(n);
  for (size_t i = 0; i < n; ++i) {
    v[i] = -8.0 + 16.0 * static_cast<double>(i % 97) / 96.0;
  }
  for (auto _ : state) {
    SigmoidInPlace(v.data(), n);
    benchmark::DoNotOptimize(v.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_Sigmoid)->Arg(64)->Arg(1024)->Arg(16384);

// The LR/MLP inner product: one dense mat-vec into a reused buffer.
void BM_MatVec(benchmark::State& state) {
  const size_t rows = static_cast<size_t>(state.range(0));
  const size_t cols = static_cast<size_t>(state.range(1));
  Matrix m(rows, cols);
  for (size_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c < cols; ++c) {
      m(r, c) = static_cast<double>((r * 1315423911u + c * 2654435761u) % 1000) / 499.5 - 1.0;
    }
  }
  std::vector<double> x(cols);
  for (size_t c = 0; c < cols; ++c) x[c] = 0.5 - static_cast<double>(c % 7) / 7.0;
  std::vector<double> y(rows);
  for (auto _ : state) {
    m.MatVecInto(x.data(), y.data());
    benchmark::DoNotOptimize(y.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(rows * cols));
}
BENCHMARK(BM_MatVec)->Args({1024, 64})->Args({4096, 128});

void BM_MatVecF32(benchmark::State& state) {
  const size_t rows = static_cast<size_t>(state.range(0));
  const size_t cols = static_cast<size_t>(state.range(1));
  Matrix m = Matrix::Float32(rows, cols);
  for (size_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c < cols; ++c) {
      m.Set(r, c,
            static_cast<double>((r * 1315423911u + c * 2654435761u) % 1000) / 499.5 - 1.0);
    }
  }
  std::vector<double> x(cols);
  for (size_t c = 0; c < cols; ++c) x[c] = 0.5 - static_cast<double>(c % 7) / 7.0;
  std::vector<double> y(rows);
  for (auto _ : state) {
    m.MatVecInto(x, &y);
    benchmark::DoNotOptimize(y.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(rows * cols));
}
BENCHMARK(BM_MatVecF32)->Args({1024, 64})->Args({4096, 128});

// Per-node histogram accumulation (the tree-training hot loop): every row of
// a 16-feature binned matrix scattered into per-bin accumulators.
void BM_HistAccumulate(benchmark::State& state) {
  const size_t rows = static_cast<size_t>(state.range(0));
  const size_t cols = 16;
  Matrix X(rows, cols);
  for (size_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c < cols; ++c) {
      X(r, c) = static_cast<double>((r * 2654435761u + c * 40503u) % 977);
    }
  }
  auto binned = BinnedMatrix::Build(X, 64, 1);
  std::vector<size_t> samples(rows);
  for (size_t i = 0; i < rows; ++i) samples[i] = i;
  std::vector<double> grad(rows), hess(rows);
  for (size_t i = 0; i < rows; ++i) {
    grad[i] = -0.5 + static_cast<double>(i % 11) / 11.0;
    hess[i] = 0.1 + static_cast<double>(i % 5) / 5.0;
  }
  NodeHistogram hist;
  for (auto _ : state) {
    FillNodeHistogram(*binned, samples, grad.data(), hess.data(), 1, &hist);
    benchmark::DoNotOptimize(hist.first.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(rows * cols));
}
BENCHMARK(BM_HistAccumulate)->Arg(4096)->Arg(32768);

void BM_WeightComputation(benchmark::State& state) {
  MicroFixture fx("lr");
  for (auto _ : state) {
    benchmark::DoNotOptimize(fx.problem->weight_computer().Compute(0.05, nullptr));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(fx.split.train.NumRows()));
}
BENCHMARK(BM_WeightComputation);

void BM_FairnessPartEvaluation(benchmark::State& state) {
  MicroFixture fx("lr");
  auto model = fx.problem->FitWithLambdas({0.0}, nullptr);
  const std::vector<int> preds = fx.problem->PredictVal(*model);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fx.problem->val_evaluator().FairnessPart(0, preds));
  }
}
BENCHMARK(BM_FairnessPartEvaluation);

void BM_FitModel(benchmark::State& state, const std::string& name) {
  MicroFixture fx(name);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fx.problem->FitWithLambdas({0.05}, nullptr));
  }
}
BENCHMARK_CAPTURE(BM_FitModel, lr, std::string("lr"));
BENCHMARK_CAPTURE(BM_FitModel, dt, std::string("dt"));
BENCHMARK_CAPTURE(BM_FitModel, xgb, std::string("xgb"));
BENCHMARK_CAPTURE(BM_FitModel, nn, std::string("nn"));

void BM_AuditModel(benchmark::State& state) {
  MicroFixture fx("lr");
  auto model = fx.problem->FitWithLambdas({0.0}, nullptr);
  const FairnessSpec spec = MakeSpec(MainGroups("compas"), "sp", 0.03);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        Audit(*model, fx.problem->encoder(), fx.split.test, {spec}));
  }
}
BENCHMARK(BM_AuditModel);

/// Console output as usual, plus one BenchReporter row per benchmark so the
/// microbench participates in the machine-readable bench/out/ corpus.
class JsonCapturingReporter : public benchmark::ConsoleReporter {
 public:
  explicit JsonCapturingReporter(BenchReporter& out) : out_(out) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    benchmark::ConsoleReporter::ReportRuns(runs);
    for (const Run& run : runs) {
      if (run.error_occurred) continue;
      out_.AddRow("microbench")
          .Label("name", run.benchmark_name())
          .Label("time_unit", benchmark::GetTimeUnitString(run.time_unit))
          .Value("real_time", run.GetAdjustedRealTime())
          .Value("cpu_time", run.GetAdjustedCPUTime())
          .Value("iterations", static_cast<double>(run.iterations));
    }
  }

 private:
  BenchReporter& out_;
};

/// Median-free ns-per-call timer: doubles the repetition count until one
/// timed batch exceeds ~10 ms, which washes out clock granularity without
/// needing google-benchmark's machinery (both tables must run in the same
/// process for a machine-relative ratio).
template <typename Fn>
double TimePerCallNs(Fn&& fn) {
  using Clock = std::chrono::steady_clock;
  fn();  // warm up: fault pages in, resolve the dispatch table
  long reps = 1;
  for (;;) {
    const auto start = Clock::now();
    for (long r = 0; r < reps; ++r) fn();
    const double ns =
        std::chrono::duration<double, std::nano>(Clock::now() - start).count();
    if (ns >= 1e7 || reps >= (1L << 24)) return ns / static_cast<double>(reps);
    reps *= 4;
  }
}

/// One "kernel_speedup" row comparing the active backend against the scalar
/// table in-process. The *_speedup fields (which tools/bench_diff.py gates
/// on) are machine-relative ratios, so a committed snapshot from one box is
/// a meaningful baseline on another of the same ISA; they are emitted only
/// when a vector backend is active, so scalar-only machines diff vacuously
/// clean instead of flagging a phantom regression.
void ReportKernelSpeedups(BenchReporter& out) {
  const simd::Kernels& active = simd::Active();
  const simd::Kernels& scalar = simd::ScalarKernels();
  const bool vectorized = simd::ActiveBackend() != simd::Backend::kScalar;
  const size_t n = 4096;
  std::vector<double> a(n), b(n), acc(n, 0.0), v(n);
  std::vector<float> f(n);
  for (size_t i = 0; i < n; ++i) {
    a[i] = 0.25 + static_cast<double>(i % 31);
    b[i] = 1.5 - static_cast<double>(i % 17);
    v[i] = -6.0 + 12.0 * static_cast<double>(i % 97) / 96.0;
    f[i] = static_cast<float>(a[i]);
  }
  BenchReporter::Row& row = out.AddRow("kernel_speedup");
  row.Label("backend", simd::BackendName(simd::ActiveBackend()));
  row.Value("n", static_cast<double>(n));
  std::printf("\nkernel_speedup (n=%zu, backend=%s)\n", n,
              simd::BackendName(simd::ActiveBackend()));
  auto add = [&](const char* name, double scalar_ns, double simd_ns) {
    const double speedup = scalar_ns / simd_ns;
    row.Value(std::string(name) + "_scalar_ns", scalar_ns)
        .Value(std::string(name) + "_simd_ns", simd_ns);
    if (vectorized) row.Value(std::string(name) + "_speedup", speedup);
    std::printf("  %-10s scalar %9.1f ns   active %9.1f ns   speedup %5.2fx\n",
                name, scalar_ns, simd_ns, speedup);
  };
  add("dot",
      TimePerCallNs([&] { benchmark::DoNotOptimize(scalar.dot(a.data(), b.data(), n)); }),
      TimePerCallNs([&] { benchmark::DoNotOptimize(active.dot(a.data(), b.data(), n)); }));
  add("axpy",
      TimePerCallNs([&] {
        scalar.axpy(1e-9, b.data(), acc.data(), n);
        benchmark::ClobberMemory();
      }),
      TimePerCallNs([&] {
        active.axpy(1e-9, b.data(), acc.data(), n);
        benchmark::ClobberMemory();
      }));
  add("sum",
      TimePerCallNs([&] { benchmark::DoNotOptimize(scalar.sum(a.data(), n)); }),
      TimePerCallNs([&] { benchmark::DoNotOptimize(active.sum(a.data(), n)); }));
  add("sigmoid",
      TimePerCallNs([&] {
        scalar.sigmoid_inplace(v.data(), n);
        benchmark::ClobberMemory();
      }),
      TimePerCallNs([&] {
        active.sigmoid_inplace(v.data(), n);
        benchmark::ClobberMemory();
      }));
  add("dot_f32",
      TimePerCallNs([&] { benchmark::DoNotOptimize(scalar.dot_f32(f.data(), b.data(), n)); }),
      TimePerCallNs([&] { benchmark::DoNotOptimize(active.dot_f32(f.data(), b.data(), n)); }));
}

}  // namespace
}  // namespace bench
}  // namespace omnifair

int main(int argc, char** argv) {
  omnifair::InitTelemetryFromEnv();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  omnifair::bench::BenchReporter reporter(
      "microbench", "Microbenchmarks: weight computation, FP evaluation, fits");
  reporter.Config("simd_backend",
                  std::string(omnifair::simd::BackendName(
                      omnifair::simd::ActiveBackend())));
  omnifair::bench::JsonCapturingReporter console(reporter);
  benchmark::RunSpecifiedBenchmarks(&console);
  benchmark::Shutdown();
  omnifair::bench::ReportKernelSpeedups(reporter);
  return omnifair::bench::FinishBench(reporter);
}
