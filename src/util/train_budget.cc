#include "util/train_budget.h"

#include <sstream>

#include "util/fault_injector.h"
#include "util/logging.h"

namespace omnifair {

TrainBudget::TrainBudget(TrainBudgetOptions options) : options_(options) {}

double TrainBudget::ElapsedSeconds() const {
  return consumed_base_ + stopwatch_.ElapsedSeconds() +
         FaultInjector::ClockSkewSeconds();
}

bool TrainBudget::Expired() const {
  if (!limited()) return false;
  const bool deadline_hit =
      options_.deadline_seconds > 0.0 && ElapsedSeconds() >= options_.deadline_seconds;
  const bool cap_hit =
      options_.max_models > 0 && models_trained() >= options_.max_models;
  if ((deadline_hit || cap_hit) && !expiry_logged_.exchange(true)) {
    CountRecoveryEvent(RecoveryEvent::kBudgetExpired);
    OF_LOG(Warning) << "train budget expired ("
                    << (deadline_hit ? "deadline" : "model cap")
                    << "); returning best-effort model";
  }
  return deadline_hit || cap_hit;
}

Status TrainBudget::ToStatus() const {
  if (!Expired()) return Status::Ok();
  std::ostringstream message;
  message << "train budget expired after " << models_trained() << " models / "
          << ElapsedSeconds() << "s";
  if (options_.deadline_seconds > 0.0) {
    message << " (deadline " << options_.deadline_seconds << "s)";
  }
  if (options_.max_models > 0) message << " (cap " << options_.max_models << " models)";
  return Status::DeadlineExceeded(message.str());
}

}  // namespace omnifair
