#include "ml/serialization.h"

#include <fstream>

#include "ml/decision_tree.h"
#include "ml/gbdt.h"
#include "ml/logistic_regression.h"
#include "ml/mlp.h"
#include "ml/naive_bayes.h"
#include "ml/random_forest.h"

namespace omnifair {
namespace {

constexpr char kMagic[] = "omnifair_model";
constexpr int kVersion = 1;

void WriteVector(std::ostream& os, const std::vector<double>& values) {
  os << values.size();
  for (double v : values) os << " " << v;
  os << "\n";
}

bool ReadVector(std::istream& is, std::vector<double>* values) {
  size_t count = 0;
  if (!(is >> count)) return false;
  values->resize(count);
  for (double& v : *values) {
    if (!(is >> v)) return false;
  }
  return true;
}

// --- Decision-tree node arrays (shared by dt / rf) ---------------------------

void WriteTreeNodes(std::ostream& os, const std::vector<DecisionTreeModel::Node>& nodes) {
  os << nodes.size() << "\n";
  for (const auto& node : nodes) {
    if (node.is_leaf) {
      os << "leaf " << node.probability << "\n";
    } else {
      os << "split " << node.feature << " " << node.threshold << " " << node.left
         << " " << node.right << "\n";
    }
  }
}

bool ReadTreeNodes(std::istream& is, std::vector<DecisionTreeModel::Node>* nodes) {
  size_t count = 0;
  if (!(is >> count)) return false;
  nodes->resize(count);
  for (auto& node : *nodes) {
    std::string kind;
    if (!(is >> kind)) return false;
    if (kind == "leaf") {
      node.is_leaf = true;
      if (!(is >> node.probability)) return false;
    } else if (kind == "split") {
      node.is_leaf = false;
      if (!(is >> node.feature >> node.threshold >> node.left >> node.right)) {
        return false;
      }
    } else {
      return false;
    }
  }
  return true;
}

void WriteGbdtNodes(std::ostream& os, const std::vector<GbdtTreeNode>& nodes) {
  os << nodes.size() << "\n";
  for (const auto& node : nodes) {
    if (node.is_leaf) {
      os << "leaf " << node.value << "\n";
    } else {
      os << "split " << node.feature << " " << node.threshold << " " << node.left
         << " " << node.right << "\n";
    }
  }
}

bool ReadGbdtNodes(std::istream& is, std::vector<GbdtTreeNode>* nodes) {
  size_t count = 0;
  if (!(is >> count)) return false;
  nodes->resize(count);
  for (auto& node : *nodes) {
    std::string kind;
    if (!(is >> kind)) return false;
    if (kind == "leaf") {
      node.is_leaf = true;
      if (!(is >> node.value)) return false;
    } else if (kind == "split") {
      node.is_leaf = false;
      if (!(is >> node.feature >> node.threshold >> node.left >> node.right)) {
        return false;
      }
    } else {
      return false;
    }
  }
  return true;
}

// --- Per-family loaders -------------------------------------------------------

Result<std::unique_ptr<Classifier>> LoadLogisticRegression(std::istream& is) {
  std::vector<double> coefficients;
  double intercept = 0.0;
  if (!ReadVector(is, &coefficients) || !(is >> intercept)) {
    return Status::InvalidArgument("truncated logistic_regression payload");
  }
  return std::unique_ptr<Classifier>(
      std::make_unique<LogisticRegressionModel>(std::move(coefficients), intercept));
}

Result<std::unique_ptr<Classifier>> LoadNaiveBayes(std::istream& is) {
  double log_prior_ratio = 0.0;
  std::vector<double> mean0;
  std::vector<double> mean1;
  std::vector<double> var0;
  std::vector<double> var1;
  if (!(is >> log_prior_ratio) || !ReadVector(is, &mean0) || !ReadVector(is, &mean1) ||
      !ReadVector(is, &var0) || !ReadVector(is, &var1)) {
    return Status::InvalidArgument("truncated naive_bayes payload");
  }
  return std::unique_ptr<Classifier>(std::make_unique<NaiveBayesModel>(
      log_prior_ratio, std::move(mean0), std::move(mean1), std::move(var0),
      std::move(var1)));
}

Result<std::unique_ptr<Classifier>> LoadDecisionTree(std::istream& is) {
  std::vector<DecisionTreeModel::Node> nodes;
  if (!ReadTreeNodes(is, &nodes)) {
    return Status::InvalidArgument("truncated decision_tree payload");
  }
  return std::unique_ptr<Classifier>(
      std::make_unique<DecisionTreeModel>(std::move(nodes)));
}

Result<std::unique_ptr<Classifier>> LoadRandomForest(std::istream& is) {
  size_t num_trees = 0;
  if (!(is >> num_trees)) {
    return Status::InvalidArgument("truncated random_forest payload");
  }
  std::vector<std::unique_ptr<Classifier>> trees;
  trees.reserve(num_trees);
  for (size_t t = 0; t < num_trees; ++t) {
    std::vector<DecisionTreeModel::Node> nodes;
    if (!ReadTreeNodes(is, &nodes)) {
      return Status::InvalidArgument("truncated forest tree payload");
    }
    trees.push_back(std::make_unique<DecisionTreeModel>(std::move(nodes)));
  }
  return std::unique_ptr<Classifier>(
      std::make_unique<RandomForestModel>(std::move(trees)));
}

Result<std::unique_ptr<Classifier>> LoadGbdt(std::istream& is) {
  double base_score = 0.0;
  double learning_rate = 0.0;
  size_t num_trees = 0;
  if (!(is >> base_score >> learning_rate >> num_trees)) {
    return Status::InvalidArgument("truncated gbdt payload");
  }
  std::vector<std::vector<GbdtTreeNode>> trees(num_trees);
  for (auto& tree : trees) {
    if (!ReadGbdtNodes(is, &tree)) {
      return Status::InvalidArgument("truncated gbdt tree payload");
    }
  }
  return std::unique_ptr<Classifier>(
      std::make_unique<GbdtModel>(std::move(trees), base_score, learning_rate));
}

Result<std::unique_ptr<Classifier>> LoadMlp(std::istream& is) {
  size_t hidden = 0;
  size_t inputs = 0;
  if (!(is >> hidden >> inputs)) {
    return Status::InvalidArgument("truncated mlp payload");
  }
  Matrix W1(hidden, inputs);
  for (size_t r = 0; r < hidden; ++r) {
    for (size_t c = 0; c < inputs; ++c) {
      if (!(is >> W1(r, c))) return Status::InvalidArgument("truncated mlp W1");
    }
  }
  std::vector<double> b1;
  std::vector<double> w2;
  double b2 = 0.0;
  if (!ReadVector(is, &b1) || !ReadVector(is, &w2) || !(is >> b2)) {
    return Status::InvalidArgument("truncated mlp payload");
  }
  return std::unique_ptr<Classifier>(std::make_unique<MlpModel>(
      std::move(W1), std::move(b1), std::move(w2), b2));
}

}  // namespace

Status SerializeModel(const Classifier& model, std::ostream& os) {
  os.precision(17);
  os << kMagic << " " << model.Name() << " " << kVersion << "\n";
  if (const auto* lr = dynamic_cast<const LogisticRegressionModel*>(&model)) {
    WriteVector(os, lr->coefficients());
    os << lr->intercept() << "\n";
    return Status::Ok();
  }
  if (const auto* nb = dynamic_cast<const NaiveBayesModel*>(&model)) {
    os << nb->log_prior_ratio() << "\n";
    WriteVector(os, nb->mean0());
    WriteVector(os, nb->mean1());
    WriteVector(os, nb->var0());
    WriteVector(os, nb->var1());
    return Status::Ok();
  }
  if (const auto* dt = dynamic_cast<const DecisionTreeModel*>(&model)) {
    WriteTreeNodes(os, dt->nodes());
    return Status::Ok();
  }
  if (const auto* rf = dynamic_cast<const RandomForestModel*>(&model)) {
    os << rf->trees().size() << "\n";
    for (const auto& tree : rf->trees()) {
      const auto* tree_model = dynamic_cast<const DecisionTreeModel*>(tree.get());
      if (tree_model == nullptr) {
        return Status::Unsupported("forest contains a non-CART member");
      }
      WriteTreeNodes(os, tree_model->nodes());
    }
    return Status::Ok();
  }
  if (const auto* gbdt = dynamic_cast<const GbdtModel*>(&model)) {
    os << gbdt->base_score() << " " << gbdt->learning_rate() << " "
       << gbdt->trees().size() << "\n";
    for (const auto& tree : gbdt->trees()) WriteGbdtNodes(os, tree);
    return Status::Ok();
  }
  if (const auto* mlp = dynamic_cast<const MlpModel*>(&model)) {
    os << mlp->W1().rows() << " " << mlp->W1().cols() << "\n";
    for (size_t r = 0; r < mlp->W1().rows(); ++r) {
      for (size_t c = 0; c < mlp->W1().cols(); ++c) {
        os << mlp->W1()(r, c) << (c + 1 == mlp->W1().cols() ? "\n" : " ");
      }
    }
    WriteVector(os, mlp->b1());
    WriteVector(os, mlp->w2());
    os << mlp->b2() << "\n";
    return Status::Ok();
  }
  return Status::Unsupported("no serializer for model family " + model.Name());
}

Status SaveModel(const Classifier& model, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::InvalidArgument("cannot open " + path + " for write");
  Status status = SerializeModel(model, out);
  if (!status.ok()) return status;
  if (!out) return Status::Internal("write failed for " + path);
  return Status::Ok();
}

Result<std::unique_ptr<Classifier>> DeserializeModel(std::istream& is) {
  std::string magic;
  std::string family;
  int version = 0;
  if (!(is >> magic >> family >> version) || magic != kMagic) {
    return Status::InvalidArgument("not an omnifair model file");
  }
  if (version != kVersion) {
    return Status::InvalidArgument("unsupported model version " +
                                   std::to_string(version));
  }
  if (family == "logistic_regression") return LoadLogisticRegression(is);
  if (family == "naive_bayes") return LoadNaiveBayes(is);
  if (family == "decision_tree") return LoadDecisionTree(is);
  if (family == "random_forest") return LoadRandomForest(is);
  if (family == "gbdt") return LoadGbdt(is);
  if (family == "mlp") return LoadMlp(is);
  return Status::Unsupported("unknown model family " + family);
}

Result<std::unique_ptr<Classifier>> LoadModel(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::InvalidArgument("cannot open " + path);
  return DeserializeModel(in);
}

}  // namespace omnifair
