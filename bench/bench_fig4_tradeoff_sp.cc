// Reproduces Figure 4 (Adult; + appendix Figures 10/11 for COMPAS and
// LSAC): the accuracy-fairness trade-off under SP, varying epsilon, for LR
// and RF, plus ROC AUC for the label-imbalanced Adult dataset (Fig 4c).
// Expected shape: OmniFair covers the full bias axis (every epsilon
// reachable) with the best or near-best accuracy at each bias level;
// Zafar contributes (almost) a single point; Agarwal covers the axis but
// with lower accuracy/AUC at small epsilon.

#include "bench/bench_common.h"

namespace omnifair {
namespace bench {
namespace {

void RunDataset(BenchReporter& reporter, const std::string& dataset,
                const std::string& model) {
  const int seeds = EnvSeeds(2);
  const std::vector<double> epsilons = {0.01, 0.03, 0.05, 0.10, 0.15, 0.20};
  const std::vector<std::string> methods = {"omnifair", "kamiran", "calmon",
                                            "zafar", "agarwal"};

  std::printf("\n--- %s / %s --- (series: test bias -> test accuracy [AUC])\n",
              dataset.c_str(), model.c_str());
  std::printf("%-10s", "eps");
  for (const std::string& method : methods) std::printf(" %24s", method.c_str());
  std::printf("\n");

  for (double epsilon : epsilons) {
    std::printf("%-10.2f", epsilon);
    for (const std::string& method : methods) {
      Aggregate agg;
      for (int s = 0; s < seeds; ++s) {
        const Dataset data = MakeBenchDataset(dataset, 1300 + s);
        const TrainValTestSplit split = SplitDefault(data, 1400 + s);
        const FairnessSpec spec = MakeSpec(MainGroups(dataset), "sp", epsilon);
        const MethodResult result = RunMethod(method, split, model, spec, s);
        if (result.supported && result.satisfied) agg.Add(result);
      }
      if (agg.runs == 0) {
        std::printf(" %24s", "-");
      } else {
        char cell[64];
        std::snprintf(cell, sizeof(cell), "%.3f -> %.1f%% [%.2f]",
                      agg.MeanDisparity(), 100.0 * agg.MeanAccuracy(),
                      agg.MeanAuc());
        std::printf(" %24s", cell);
      }
      reporter.AddAggregate("tradeoff", agg)
          .Label("dataset", dataset)
          .Label("model", model)
          .Label("method", method)
          .Value("epsilon", epsilon);
    }
    std::printf("\n");
  }
}

void Run(BenchReporter& reporter) {
  reporter.Config("seeds", EnvSeeds(2));
  reporter.Config("metric", "sp");
  PrintHeader("Figure 4 (+10/11): SP accuracy-fairness trade-off varying epsilon");
  RunDataset(reporter, "adult", "lr");   // Fig 4(a) + 4(c) via the AUC column
  RunDataset(reporter, "adult", "rf");   // Fig 4(b)
  RunDataset(reporter, "compas", "lr");  // Fig 10
  RunDataset(reporter, "lsac", "lr");    // Fig 11
}

}  // namespace
}  // namespace bench
}  // namespace omnifair

int main() {
  omnifair::InitTelemetryFromEnv();
  omnifair::bench::BenchReporter reporter(
      "fig4_tradeoff_sp",
      "Figure 4 (+10/11): SP accuracy-fairness trade-off varying epsilon");
  omnifair::bench::Run(reporter);
  return omnifair::bench::FinishBench(reporter);
}
