#include "linalg/vector_ops.h"

#include <cmath>

#include <gtest/gtest.h>

namespace omnifair {
namespace {

TEST(VectorOpsTest, Dot) {
  EXPECT_DOUBLE_EQ(Dot({1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}), 32.0);
  EXPECT_DOUBLE_EQ(Dot({}, {}), 0.0);
}

TEST(VectorOpsTest, Norm2) {
  EXPECT_DOUBLE_EQ(Norm2({3.0, 4.0}), 5.0);
  EXPECT_DOUBLE_EQ(Norm2({}), 0.0);
}

TEST(VectorOpsTest, Axpy) {
  std::vector<double> a = {1.0, 2.0};
  Axpy(2.0, {3.0, -1.0}, &a);
  EXPECT_DOUBLE_EQ(a[0], 7.0);
  EXPECT_DOUBLE_EQ(a[1], 0.0);
}

TEST(VectorOpsTest, Scale) {
  std::vector<double> v = {1.0, -2.0};
  Scale(-3.0, &v);
  EXPECT_DOUBLE_EQ(v[0], -3.0);
  EXPECT_DOUBLE_EQ(v[1], 6.0);
}

TEST(VectorOpsTest, SumMeanStdDev) {
  const std::vector<double> v = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_DOUBLE_EQ(Sum(v), 40.0);
  EXPECT_DOUBLE_EQ(Mean(v), 5.0);
  EXPECT_DOUBLE_EQ(StdDev(v), 2.0);  // classic textbook example
}

TEST(VectorOpsTest, MeanAndStdDevDegenerate) {
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
  EXPECT_DOUBLE_EQ(StdDev({}), 0.0);
  EXPECT_DOUBLE_EQ(StdDev({5.0}), 0.0);
}

TEST(SigmoidTest, KnownValues) {
  EXPECT_DOUBLE_EQ(Sigmoid(0.0), 0.5);
  EXPECT_NEAR(Sigmoid(2.0), 1.0 / (1.0 + std::exp(-2.0)), 1e-15);
}

TEST(SigmoidTest, Saturation) {
  EXPECT_NEAR(Sigmoid(100.0), 1.0, 1e-12);
  EXPECT_NEAR(Sigmoid(-100.0), 0.0, 1e-12);
  EXPECT_NEAR(Sigmoid(1000.0), 1.0, 1e-12);  // no overflow
  EXPECT_NEAR(Sigmoid(-1000.0), 0.0, 1e-12);
}

/// Property sweep: sigmoid(-z) == 1 - sigmoid(z) and monotonicity.
class SigmoidPropertyTest : public ::testing::TestWithParam<double> {};

TEST_P(SigmoidPropertyTest, Symmetry) {
  const double z = GetParam();
  EXPECT_NEAR(Sigmoid(-z), 1.0 - Sigmoid(z), 1e-12);
}

TEST_P(SigmoidPropertyTest, Monotone) {
  const double z = GetParam();
  EXPECT_LE(Sigmoid(z), Sigmoid(z + 0.5));
}

TEST_P(SigmoidPropertyTest, Log1pExpMatchesDefinition) {
  const double z = GetParam();
  if (std::fabs(z) < 30.0) {
    EXPECT_NEAR(Log1pExp(z), std::log1p(std::exp(z)), 1e-9);
  } else {
    EXPECT_GE(Log1pExp(z), 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, SigmoidPropertyTest,
                         ::testing::Values(-50.0, -10.0, -2.0, -0.5, 0.0, 0.5, 2.0,
                                           10.0, 50.0));

}  // namespace
}  // namespace omnifair
