#ifndef OMNIFAIR_TESTS_TESTING_DATA_H_
#define OMNIFAIR_TESTS_TESTING_DATA_H_

#include <vector>

#include "linalg/matrix.h"
#include "ml/classifier.h"
#include "ml/metrics.h"
#include "util/random.h"

namespace omnifair {
namespace testing_data {

struct Blobs {
  Matrix X;
  std::vector<int> y;
  std::vector<double> unit_weights;
};

/// Two Gaussian blobs in 2D around (-sep, -sep) and (+sep, +sep).
inline Blobs MakeBlobs(size_t n, double separation, uint64_t seed) {
  Rng rng(seed);
  Blobs blobs;
  blobs.X = Matrix(n, 2);
  blobs.y.resize(n);
  for (size_t i = 0; i < n; ++i) {
    const int label = rng.NextBernoulli(0.5) ? 1 : 0;
    const double center = label == 1 ? separation : -separation;
    blobs.X(i, 0) = rng.NextGaussian(center, 1.0);
    blobs.X(i, 1) = rng.NextGaussian(center, 1.0);
    blobs.y[i] = label;
  }
  blobs.unit_weights.assign(n, 1.0);
  return blobs;
}

/// XOR-style data (not linearly separable): label = sign(x0) != sign(x1).
inline Blobs MakeXor(size_t n, uint64_t seed) {
  Rng rng(seed);
  Blobs blobs;
  blobs.X = Matrix(n, 2);
  blobs.y.resize(n);
  for (size_t i = 0; i < n; ++i) {
    const double x0 = rng.NextUniform(-1.0, 1.0);
    const double x1 = rng.NextUniform(-1.0, 1.0);
    blobs.X(i, 0) = x0;
    blobs.X(i, 1) = x1;
    blobs.y[i] = (x0 > 0.0) != (x1 > 0.0) ? 1 : 0;
  }
  blobs.unit_weights.assign(n, 1.0);
  return blobs;
}

inline double TrainAccuracy(const Classifier& model, const Blobs& blobs) {
  return Accuracy(blobs.y, model.Predict(blobs.X));
}

}  // namespace testing_data
}  // namespace omnifair

#endif  // OMNIFAIR_TESTS_TESTING_DATA_H_
