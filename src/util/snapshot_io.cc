#include "util/snapshot_io.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include "util/fault_injector.h"
#include "util/logging.h"

namespace omnifair {
namespace {

/// "OFSN" little-endian: the first four bytes of every snapshot file.
constexpr uint32_t kMagic = 0x4E53464Fu;
/// Header: magic, version, flags, section count (4 x u32).
constexpr size_t kHeaderBytes = 16;
/// CRC32 trailer.
constexpr size_t kTrailerBytes = 4;

/// Slice-by-8 CRC tables: table[0] is the classic Sarwate table; table[j]
/// advances a byte through j additional zero bytes, so eight bytes fold in
/// one step. Identical CRC values to the byte-at-a-time loop, ~6x faster on
/// multi-megabyte model bundles (the whole image is checksummed on load).
const uint32_t (*Crc32Tables())[256] {
  static const auto* tables = [] {
    auto* t = new uint32_t[8][256];
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      t[0][i] = c;
    }
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = t[0][i];
      for (int j = 1; j < 8; ++j) {
        c = t[0][c & 0xFFu] ^ (c >> 8);
        t[j][i] = c;
      }
    }
    return t;
  }();
  return tables;
}

}  // namespace

uint32_t Crc32(const uint8_t* data, size_t size, uint32_t crc) {
  const uint32_t(*t)[256] = Crc32Tables();
  crc = ~crc;
#if !defined(__BYTE_ORDER__) || __BYTE_ORDER__ == __ORDER_LITTLE_ENDIAN__
  while (size >= 8) {
    uint32_t lo;
    uint32_t hi;
    std::memcpy(&lo, data, 4);
    std::memcpy(&hi, data + 4, 4);
    lo ^= crc;  // little-endian fold; the wire format is LE throughout
    crc = t[7][lo & 0xFFu] ^ t[6][(lo >> 8) & 0xFFu] ^
          t[5][(lo >> 16) & 0xFFu] ^ t[4][lo >> 24] ^ t[3][hi & 0xFFu] ^
          t[2][(hi >> 8) & 0xFFu] ^ t[1][(hi >> 16) & 0xFFu] ^ t[0][hi >> 24];
    data += 8;
    size -= 8;
  }
#endif
  for (size_t i = 0; i < size; ++i) {
    crc = t[0][(crc ^ data[i]) & 0xFFu] ^ (crc >> 8);
  }
  return ~crc;
}

// --- BinaryWriter -----------------------------------------------------------

void BinaryWriter::U32(uint32_t value) {
  for (int shift = 0; shift < 32; shift += 8) {
    buffer_.push_back(static_cast<uint8_t>(value >> shift));
  }
}

void BinaryWriter::U64(uint64_t value) {
  for (int shift = 0; shift < 64; shift += 8) {
    buffer_.push_back(static_cast<uint8_t>(value >> shift));
  }
}

void BinaryWriter::F64(double value) {
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(value), "double must be 64-bit");
  std::memcpy(&bits, &value, sizeof(bits));
  U64(bits);
}

void BinaryWriter::String(const std::string& value) {
  U32(static_cast<uint32_t>(value.size()));
  RawBytes(reinterpret_cast<const uint8_t*>(value.data()), value.size());
}

void BinaryWriter::F64Vector(const std::vector<double>& values) {
  U64(values.size());
  for (double v : values) F64(v);
}

void BinaryWriter::Bytes(const std::vector<uint8_t>& bytes) {
  U64(bytes.size());
  RawBytes(bytes.data(), bytes.size());
}

void BinaryWriter::RawBytes(const uint8_t* data, size_t size) {
  buffer_.insert(buffer_.end(), data, data + size);
}

// --- BinaryReader -----------------------------------------------------------

bool BinaryReader::Fail(const std::string& what) {
  if (status_.ok()) {
    status_ = Status::DataLoss("truncated snapshot: " + what + " at byte " +
                               std::to_string(offset_) + " of " +
                               std::to_string(size_));
  }
  return false;
}

bool BinaryReader::Take(size_t count, const uint8_t** out) {
  if (!status_.ok()) return false;
  if (count > size_ - offset_) return false;
  *out = data_ + offset_;
  offset_ += count;
  return true;
}

bool BinaryReader::U8(uint8_t* value) {
  const uint8_t* p = nullptr;
  if (!Take(1, &p)) return Fail("u8");
  *value = *p;
  return true;
}

bool BinaryReader::U32(uint32_t* value) {
  const uint8_t* p = nullptr;
  if (!Take(4, &p)) return Fail("u32");
  *value = 0;
  for (int i = 0; i < 4; ++i) *value |= static_cast<uint32_t>(p[i]) << (8 * i);
  return true;
}

bool BinaryReader::U64(uint64_t* value) {
  const uint8_t* p = nullptr;
  if (!Take(8, &p)) return Fail("u64");
  *value = 0;
  for (int i = 0; i < 8; ++i) *value |= static_cast<uint64_t>(p[i]) << (8 * i);
  return true;
}

bool BinaryReader::I32(int32_t* value) {
  uint32_t bits = 0;
  if (!U32(&bits)) return false;
  *value = static_cast<int32_t>(bits);
  return true;
}

bool BinaryReader::I64(int64_t* value) {
  uint64_t bits = 0;
  if (!U64(&bits)) return false;
  *value = static_cast<int64_t>(bits);
  return true;
}

bool BinaryReader::F64(double* value) {
  uint64_t bits = 0;
  if (!U64(&bits)) return false;
  std::memcpy(value, &bits, sizeof(*value));
  return true;
}

bool BinaryReader::String(std::string* value) {
  uint32_t length = 0;
  if (!U32(&length)) return false;
  // A length prefix larger than the bytes left is corruption, not an
  // allocation request.
  if (length > remaining()) return Fail("string of " + std::to_string(length));
  const uint8_t* p = nullptr;
  if (!Take(length, &p)) return Fail("string bytes");
  value->assign(reinterpret_cast<const char*>(p), length);
  return true;
}

bool BinaryReader::F64Vector(std::vector<double>* values) {
  uint64_t count = 0;
  if (!U64(&count)) return false;
  if (count > remaining() / 8) return Fail("f64[" + std::to_string(count) + "]");
  values->resize(static_cast<size_t>(count));
  for (double& v : *values) {
    if (!F64(&v)) return false;
  }
  return true;
}

bool BinaryReader::Bytes(std::vector<uint8_t>* bytes) {
  uint64_t length = 0;
  if (!U64(&length)) return false;
  if (length > remaining()) return Fail("bytes of " + std::to_string(length));
  const uint8_t* p = nullptr;
  if (!Take(static_cast<size_t>(length), &p)) return Fail("byte payload");
  bytes->assign(p, p + length);
  return true;
}

// --- Snapshot container -----------------------------------------------------

const SnapshotSection* Snapshot::Find(const std::string& name) const {
  for (const SnapshotSection& section : sections) {
    if (section.name == name) return &section;
  }
  return nullptr;
}

Status RetryIo(const RetryOptions& options, const std::function<Status()>& op) {
  const int attempts = options.max_attempts > 0 ? options.max_attempts : 1;
  double backoff_ms = options.initial_backoff_ms;
  Status status;
  for (int attempt = 1; attempt <= attempts; ++attempt) {
    status = op();
    if (status.code() != StatusCode::kUnavailable) return status;
    if (attempt == attempts) break;
    OF_LOG(Warning) << "transient IO error (attempt " << attempt << "/"
                    << attempts << "): " << status.message() << "; backing off "
                    << backoff_ms << "ms";
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(backoff_ms));
    backoff_ms *= 2.0;
  }
  return status;
}

Status WriteFd(int fd, const std::string& path, const uint8_t* data,
               size_t size) {
  size_t written = 0;
  while (written < size) {
    if (FaultInjector::ShouldFail(fault_sites::kIoEnospc)) {
      return IoError(path, "write", ENOSPC);
    }
    size_t chunk = size - written;
    bool injected_short = false;
    if (FaultInjector::ShouldFail(fault_sites::kIoShortWrite)) {
      chunk = chunk / 2;
      injected_short = true;
      if (chunk == 0) return IoError(path, "write", EINTR);
    }
    const ssize_t n = ::write(fd, data + written, chunk);
    if (n < 0) {
      if (errno == EINTR) continue;
      return IoError(path, "write");
    }
    written += static_cast<size_t>(n);
    if (injected_short) return IoError(path, "write", EINTR);
  }
  return Status::Ok();
}

Status PreadFull(int fd, const std::string& path, uint64_t offset,
                 uint8_t* out, size_t size) {
  size_t done = 0;
  while (done < size) {
    size_t want = size - done;
    if (FaultInjector::ShouldFail(fault_sites::kIoShortRead) && want > 1) {
      want = want / 2;  // one truncated read; the loop must pick up the rest
    }
    const ssize_t n = ::pread(fd, out + done, want,
                              static_cast<off_t>(offset + done));
    if (n < 0) {
      if (errno == EINTR) continue;
      return IoError(path, "pread");
    }
    if (n == 0) {
      return Status::DataLoss("short read of " + path + ": wanted " +
                              std::to_string(size) + " bytes at offset " +
                              std::to_string(offset) + ", file ended after " +
                              std::to_string(done));
    }
    done += static_cast<size_t>(n);
  }
  return Status::Ok();
}

namespace {

std::vector<uint8_t> SerializeSnapshot(const Snapshot& snapshot) {
  BinaryWriter writer;
  writer.U32(kMagic);
  writer.U32(snapshot.version);
  writer.U32(snapshot.flags);
  writer.U32(static_cast<uint32_t>(snapshot.sections.size()));
  for (const SnapshotSection& section : snapshot.sections) {
    writer.String(section.name);
    writer.Bytes(section.payload);
  }
  std::vector<uint8_t> bytes = writer.TakeBuffer();
  const uint32_t crc = Crc32(bytes.data(), bytes.size());
  for (int shift = 0; shift < 32; shift += 8) {
    bytes.push_back(static_cast<uint8_t>(crc >> shift));
  }
  return bytes;
}

}  // namespace

Status WriteFileAtomic(const std::string& path, const uint8_t* data,
                       size_t size, const RetryOptions& retry) {
  const std::string temp_path = path + ".tmp";
  return RetryIo(retry, [&]() -> Status {
    const int fd = ::open(temp_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd < 0) return IoError(temp_path, "open");
    Status write_status = WriteFd(fd, temp_path, data, size);
    if (write_status.ok() && ::fsync(fd) != 0) {
      write_status = IoError(temp_path, "fsync");
    }
    if (::close(fd) != 0 && write_status.ok()) {
      write_status = IoError(temp_path, "close");
    }
    if (!write_status.ok()) {
      ::unlink(temp_path.c_str());
      return write_status;
    }
    if (::rename(temp_path.c_str(), path.c_str()) != 0) {
      Status rename_status = IoError(path, "rename");
      ::unlink(temp_path.c_str());
      return rename_status;
    }
    return Status::Ok();
  });
}

Status WriteSnapshotFile(const std::string& path, const Snapshot& snapshot,
                         const RetryOptions& retry) {
  const std::vector<uint8_t> bytes = SerializeSnapshot(snapshot);
  return WriteFileAtomic(path, bytes.data(), bytes.size(), retry);
}

Result<Snapshot> ReadSnapshotFile(const std::string& path, uint32_t max_version) {
  std::vector<uint8_t> bytes;
  {
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) return IoError(path, "open");
    // Size the buffer once from fstat and read in place: the 64 KiB
    // insert-append loop this replaces reallocated (and re-copied) the whole
    // buffer O(n/64KiB) times on multi-megabyte bundles.
    struct stat st {};
    if (::fstat(fd, &st) != 0) {
      const Status status = IoError(path, "fstat");
      ::close(fd);
      return status;
    }
    bytes.resize(st.st_size > 0 ? static_cast<size_t>(st.st_size) : 0);
    size_t filled = 0;
    for (;;) {
      if (filled == bytes.size()) {
        // At the expected size: probe for EOF, growing only if the file
        // gained bytes after the fstat (append race — rare but legal).
        uint8_t probe = 0;
        const ssize_t n = ::read(fd, &probe, 1);
        if (n < 0) {
          if (errno == EINTR) continue;
          const Status status = IoError(path, "read");
          ::close(fd);
          return status;
        }
        if (n == 0) break;
        bytes.push_back(probe);
        ++filled;
        continue;
      }
      const ssize_t n = ::read(fd, bytes.data() + filled, bytes.size() - filled);
      if (n < 0) {
        if (errno == EINTR) continue;
        const Status status = IoError(path, "read");
        ::close(fd);
        return status;
      }
      if (n == 0) {
        bytes.resize(filled);  // file shrank after the fstat
        break;
      }
      filled += static_cast<size_t>(n);
    }
    ::close(fd);
  }
  if (FaultInjector::ShouldFail(fault_sites::kIoCorruptRead) && !bytes.empty()) {
    bytes[bytes.size() * 2 / 3] ^= 0x40;  // simulated bit flip
  }

  if (bytes.size() < kHeaderBytes + kTrailerBytes) {
    return Status::DataLoss("snapshot " + path + " is " +
                            std::to_string(bytes.size()) +
                            " bytes; too short for header + CRC trailer");
  }
  const size_t body = bytes.size() - kTrailerBytes;
  uint32_t stored_crc = 0;
  for (int i = 0; i < 4; ++i) {
    stored_crc |= static_cast<uint32_t>(bytes[body + i]) << (8 * i);
  }
  const uint32_t actual_crc = Crc32(bytes.data(), body);

  BinaryReader reader(bytes.data(), body);
  uint32_t magic = 0;
  Snapshot snapshot;
  uint32_t section_count = 0;
  if (!reader.U32(&magic) || !reader.U32(&snapshot.version) ||
      !reader.U32(&snapshot.flags) || !reader.U32(&section_count)) {
    return reader.status();
  }
  if (magic != kMagic) {
    return Status::InvalidArgument("not an omnifair snapshot: " + path +
                                   " (bad magic)");
  }
  if (snapshot.version > max_version) {
    return Status::InvalidArgument(
        "snapshot " + path + " has version " +
        std::to_string(snapshot.version) + "; this build reads up to " +
        std::to_string(max_version));
  }
  if (actual_crc != stored_crc) {
    return Status::DataLoss("snapshot " + path +
                            " failed CRC32 validation (corrupt or truncated)");
  }
  snapshot.sections.reserve(section_count);
  for (uint32_t i = 0; i < section_count; ++i) {
    SnapshotSection section;
    if (!reader.String(&section.name) || !reader.Bytes(&section.payload)) {
      return reader.status();
    }
    snapshot.sections.push_back(std::move(section));
  }
  return snapshot;
}

}  // namespace omnifair
