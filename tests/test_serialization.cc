#include "ml/serialization.h"

#include <fstream>
#include <iterator>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "core/omnifair.h"
#include "data/datasets.h"
#include "data/split.h"
#include "ml/trainer_registry.h"
#include "tests/testing_data.h"

namespace omnifair {
namespace {

using testing_data::Blobs;
using testing_data::MakeBlobs;

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

/// Round-trip property for every serializable model family: a deserialized
/// model reproduces the original's probabilities exactly.
class ModelRoundTripTest : public ::testing::TestWithParam<std::string> {};

TEST_P(ModelRoundTripTest, PredictionsSurviveRoundTrip) {
  const Blobs blobs = MakeBlobs(300, 1.0, 7);
  auto trainer = MakeTrainer(GetParam());
  const auto model = trainer->Fit(blobs.X, blobs.y, blobs.unit_weights);

  std::stringstream buffer;
  ASSERT_TRUE(SerializeModel(*model, buffer).ok());
  auto loaded = DeserializeModel(buffer);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ((*loaded)->Name(), model->Name());

  const std::vector<double> original = model->PredictProba(blobs.X);
  const std::vector<double> restored = (*loaded)->PredictProba(blobs.X);
  ASSERT_EQ(original.size(), restored.size());
  for (size_t i = 0; i < original.size(); ++i) {
    EXPECT_NEAR(original[i], restored[i], 1e-12) << GetParam() << " row " << i;
  }
}

// The "_hist" variants train with histogram split search; the fitted trees
// serialize through the same text format (thresholds are real doubles), so
// the round-trip property must hold for them unchanged.
INSTANTIATE_TEST_SUITE_P(AllFamilies, ModelRoundTripTest,
                         ::testing::Values("lr", "dt", "rf", "xgb", "nn", "nb",
                                           "dt_hist", "rf_hist", "xgb_hist"));

TEST(SerializationTest, FileRoundTrip) {
  const Blobs blobs = MakeBlobs(100, 1.5, 8);
  auto trainer = MakeTrainer("lr");
  const auto model = trainer->Fit(blobs.X, blobs.y, blobs.unit_weights);
  const std::string path = TempPath("model.txt");
  ASSERT_TRUE(SaveModel(*model, path).ok());
  auto loaded = LoadModel(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ((*loaded)->Predict(blobs.X), model->Predict(blobs.X));
}

TEST(SerializationTest, RejectsGarbage) {
  std::stringstream buffer("definitely not a model");
  EXPECT_FALSE(DeserializeModel(buffer).ok());
}

TEST(SerializationTest, RejectsTruncatedPayload) {
  const Blobs blobs = MakeBlobs(50, 1.0, 9);
  auto trainer = MakeTrainer("xgb");
  const auto model = trainer->Fit(blobs.X, blobs.y, blobs.unit_weights);
  std::stringstream buffer;
  ASSERT_TRUE(SerializeModel(*model, buffer).ok());
  const std::string full = buffer.str();
  std::stringstream truncated(full.substr(0, full.size() / 2));
  EXPECT_FALSE(DeserializeModel(truncated).ok());
}

TEST(SerializationTest, MissingFileFails) {
  EXPECT_FALSE(LoadModel("/nonexistent/model.txt").ok());
}

TEST(SerializationTest, FairModelRoundTripWithEncoder) {
  SyntheticOptions options;
  options.num_rows = 2000;
  const Dataset dataset = MakeCompasDataset(options);
  const TrainValTestSplit split = SplitDefault(dataset, 5);
  const FairnessSpec spec = MakeSpec(
      GroupByAttributeValues("race", {"African-American", "Caucasian"}), "sp", 0.05);
  auto trainer = MakeTrainer("lr");
  OmniFair omnifair;
  auto fair = omnifair.Train(split.train, split.val, trainer.get(), {spec});
  ASSERT_TRUE(fair.ok());

  const std::string path = TempPath("fair_model.txt");
  ASSERT_TRUE(SaveFairModel(*fair, path).ok());
  auto loaded = LoadFairModel(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();

  EXPECT_EQ(loaded->lambdas, fair->lambdas);
  EXPECT_EQ(loaded->satisfied, fair->satisfied);
  EXPECT_NEAR(loaded->val_accuracy, fair->val_accuracy, 1e-12);
  // The loaded bundle can predict on raw (un-encoded) data directly.
  EXPECT_EQ(loaded->Predict(split.test), fair->Predict(split.test));
  // And audits identically.
  auto original_audit = Audit(*fair->model, fair->encoder, split.test, {spec});
  auto loaded_audit = Audit(*loaded->model, loaded->encoder, split.test, {spec});
  ASSERT_TRUE(original_audit.ok());
  ASSERT_TRUE(loaded_audit.ok());
  EXPECT_NEAR(original_audit->max_disparity, loaded_audit->max_disparity, 1e-12);
}

TEST(SerializationTest, FairModelWithoutModelRejected) {
  FairModel empty;
  EXPECT_FALSE(SaveFairModel(empty, TempPath("never.txt")).ok());
}

// --- Corrupted-fixture regressions ------------------------------------------
//
// Damaged files must fail with a typed status (kDataLoss for truncation,
// kInvalidArgument for malformed content) carrying byte context — and must
// never crash, loop, or allocate absurd amounts first.

TEST(SerializationTest, TreeWithBackwardChildrenRejected) {
  // Node 0's left child points at itself: Predict would loop forever.
  std::stringstream buffer(
      "omnifair_model decision_tree 1\n"
      "2\n"
      "split 0 0.5 0 1\n"
      "leaf 0.25\n");
  auto loaded = DeserializeModel(buffer);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(loaded.status().message().find("invalid children"),
            std::string::npos)
      << loaded.status();
}

TEST(SerializationTest, TreeWithOutOfRangeChildrenRejected) {
  // Children past the node array: Predict would index out of bounds.
  std::stringstream buffer(
      "omnifair_model decision_tree 1\n"
      "2\n"
      "split 0 0.5 1 7\n"
      "leaf 0.25\n");
  auto loaded = DeserializeModel(buffer);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
}

TEST(SerializationTest, AbsurdElementCountRejectedBeforeAllocating) {
  // A 10^15-coefficient claim is corruption, not a model; it must fail on
  // the count check, not inside a 8PB resize().
  std::stringstream buffer(
      "omnifair_model logistic_regression 1\n"
      "1000000000000000 0.5\n");
  auto loaded = DeserializeModel(buffer);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(loaded.status().message().find("claims"), std::string::npos)
      << loaded.status();
}

TEST(SerializationTest, TruncationIsTypedDataLossWithByteContext) {
  std::stringstream buffer(
      "omnifair_model logistic_regression 1\n"
      "3 0.25 -1.5");  // promises 3 coefficients, delivers 2 and no intercept
  auto loaded = DeserializeModel(buffer);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kDataLoss);
  EXPECT_NE(loaded.status().message().find("near byte"), std::string::npos)
      << loaded.status();
}

TEST(SerializationTest, FairModelMalformedLambdasLineRejected) {
  const Blobs blobs = MakeBlobs(80, 1.5, 10);
  auto trainer = MakeTrainer("lr");
  FairModel fair;
  fair.model = trainer->Fit(blobs.X, blobs.y, blobs.unit_weights);
  fair.lambdas = {0.125};
  const std::string path = TempPath("fair_model_damaged.txt");
  ASSERT_TRUE(SaveFairModel(fair, path).ok());

  // Splice junk into the lambdas line; the old parser silently dropped it.
  std::ifstream in(path);
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  in.close();
  const size_t pos = contents.find("lambdas 0.125");
  ASSERT_NE(pos, std::string::npos);
  contents.insert(pos + std::string("lambdas 0.125").size(), " garbage");
  {
    std::ofstream out(path, std::ios::trunc);
    out << contents;
  }
  auto loaded = LoadFairModel(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(loaded.status().message().find("lambdas"), std::string::npos)
      << loaded.status();
}

// --- Binary codec (the checkpoint layer's model format) ----------------------

class BinaryRoundTripTest : public ::testing::TestWithParam<std::string> {};

TEST_P(BinaryRoundTripTest, BytesAndPredictionsSurviveRoundTrip) {
  const Blobs blobs = MakeBlobs(300, 1.0, 7);
  auto trainer = MakeTrainer(GetParam());
  const auto model = trainer->Fit(blobs.X, blobs.y, blobs.unit_weights);

  Result<std::vector<uint8_t>> bytes = SerializeModelBinary(*model);
  ASSERT_TRUE(bytes.ok()) << bytes.status();
  auto loaded = DeserializeModelBinary(*bytes);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ((*loaded)->Name(), model->Name());

  // Raw IEEE-754 round-trip: probabilities are bit-identical, and the
  // re-serialized bytes equal the original (the checkpoint layer's
  // bit-identity guarantee rests on this).
  EXPECT_EQ((*loaded)->PredictProba(blobs.X), model->PredictProba(blobs.X));
  Result<std::vector<uint8_t>> again = SerializeModelBinary(**loaded);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(*again, *bytes);
}

INSTANTIATE_TEST_SUITE_P(AllFamilies, BinaryRoundTripTest,
                         ::testing::Values("lr", "dt", "rf", "xgb", "nn", "nb"));

TEST(SerializationTest, BinaryTruncationAtEveryPrefixIsTyped) {
  const Blobs blobs = MakeBlobs(60, 1.0, 11);
  auto trainer = MakeTrainer("xgb");
  const auto model = trainer->Fit(blobs.X, blobs.y, blobs.unit_weights);
  Result<std::vector<uint8_t>> bytes = SerializeModelBinary(*model);
  ASSERT_TRUE(bytes.ok());
  for (size_t cut = 0; cut < bytes->size(); cut += 7) {
    const std::vector<uint8_t> prefix(bytes->begin(),
                                      bytes->begin() + static_cast<long>(cut));
    auto loaded = DeserializeModelBinary(prefix);
    ASSERT_FALSE(loaded.ok()) << "cut at " << cut;
    EXPECT_EQ(loaded.status().code(), StatusCode::kDataLoss)
        << "cut at " << cut << ": " << loaded.status();
  }
}

TEST(SerializationTest, BinaryUnknownFamilyTagIsDataLoss) {
  const std::vector<uint8_t> bytes = {42};
  auto loaded = DeserializeModelBinary(bytes);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kDataLoss);
  EXPECT_NE(loaded.status().message().find("tag"), std::string::npos);
}

TEST(SerializationTest, BinaryTreeWithBackwardChildrenRejected) {
  // Build valid bytes for a 2-node tree, then corrupt the child index so the
  // structural validation (not the codec) has to catch it.
  BinaryWriter writer;
  writer.U8(3);  // decision_tree tag
  writer.U64(2);
  writer.U8(0);      // split node
  writer.I32(0);     // feature
  writer.F64(0.5);   // threshold
  writer.I32(0);     // left = self: would loop forever
  writer.I32(1);     // right
  writer.U8(1);      // leaf node
  writer.F64(0.25);  // probability
  auto loaded = DeserializeModelBinary(writer.buffer());
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace omnifair
