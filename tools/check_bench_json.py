#!/usr/bin/env python3
"""Validate omnifair.bench JSON documents (DESIGN.md §9).

Usage: check_bench_json.py FILE [FILE...]

Checks every file against schema_version 1:
  - required top-level keys with the right types,
  - each result row is {section, labels{str:str}, values{str:number}},
  - each tune trajectory report is a TuneReport whose points carry a
    cumulative models_trained (points[i].models_trained == i + 1),
  - the metrics snapshot has counters/gauges/histograms maps and every
    histogram's bucket counts sum to its count.

Exits non-zero (listing every problem found) when any file is invalid.
Standard library only, so it runs anywhere ctest does.
"""

import json
import sys

SCHEMA_NAME = "omnifair.bench"
SCHEMA_VERSION = 1

TOP_LEVEL = {
    "schema": str,
    "schema_version": int,
    "bench": str,
    "title": str,
    "config": dict,
    "results": list,
    "tune_trajectories": list,
    "metrics": dict,
    "recovery_events": dict,
    "wall_seconds": (int, float),
}

TUNE_POINT_FIELDS = {
    "lambdas": list,
    "stage": str,
    "fit_ok": bool,
    "models_trained": int,
    "seconds": (int, float),
    "evaluated": bool,
}

# Per-bench contracts: sections that must appear in "results", and numeric
# fields every row of that section must carry. Benches not listed here are
# only held to the generic schema.
PER_BENCH_SECTIONS = {
    "tree_build": {
        "tree_build": ["rows", "exact_seconds", "hist_seconds", "speedup"],
        "binning_amortization": ["rows", "cold_seconds", "warm_seconds",
                                 "bins_reused"],
        "grid_reuse": ["models_trained", "seconds", "bins_reused"],
    },
    "checkpoint": {
        "checkpoint_overhead": ["plain_seconds", "checkpoint_seconds",
                                "throttled_seconds", "overhead_fraction",
                                "throttled_overhead_fraction",
                                "resume_seconds", "checkpoint_bytes"],
    },
    "serving": {
        "bundle_load": ["fit_seconds", "text_load_seconds",
                        "bundle_load_seconds", "load_speedup",
                        "text_bytes", "bundle_bytes"],
        "serving_closed": ["batch_rows", "requests", "rows", "qps",
                           "p50_us", "p99_us"],
        "serving_open": ["max_in_flight", "offered", "completed",
                         "rejected", "rows", "achieved_qps"],
    },
    "ingest": {
        "ingest_throughput": ["rows", "baseline_seconds", "stream_seconds",
                              "speedup", "stream_rows_per_second",
                              "spill_bytes", "peak_rss_mb"],
        "lambda_tune": ["rows", "full_batch_seconds", "minibatch_seconds",
                        "speedup", "full_batch_accuracy",
                        "minibatch_accuracy", "peak_rss_mb"],
    },
    # The in-process scalar-vs-active kernel comparison is emitted once per
    # run regardless of --benchmark_filter; *_speedup fields are added only
    # when a vector backend is active, so they are not required here.
    "microbench": {
        "kernel_speedup": ["n",
                           "dot_scalar_ns", "dot_simd_ns",
                           "axpy_scalar_ns", "axpy_simd_ns",
                           "sum_scalar_ns", "sum_simd_ns",
                           "sigmoid_scalar_ns", "sigmoid_simd_ns",
                           "dot_f32_scalar_ns", "dot_f32_simd_ns"],
    },
}


def is_number(value):
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def check_string_map(mapping, value_check, where, errors):
    for key, value in mapping.items():
        if not isinstance(key, str):
            errors.append(f"{where}: non-string key {key!r}")
        if not value_check(value):
            errors.append(f"{where}[{key!r}]: bad value {value!r}")


def check_result_row(row, where, errors):
    if not isinstance(row, dict):
        errors.append(f"{where}: not an object")
        return
    if not isinstance(row.get("section"), str) or not row.get("section"):
        errors.append(f"{where}: missing/empty 'section'")
    labels = row.get("labels")
    values = row.get("values")
    if not isinstance(labels, dict):
        errors.append(f"{where}: 'labels' is not an object")
    else:
        check_string_map(labels, lambda v: isinstance(v, str),
                         f"{where}.labels", errors)
    if not isinstance(values, dict):
        errors.append(f"{where}: 'values' is not an object")
    else:
        check_string_map(values, is_number, f"{where}.values", errors)


def check_tune_report(report, where, errors):
    if not isinstance(report, dict):
        errors.append(f"{where}: report is not an object")
        return
    if not isinstance(report.get("algorithm"), str):
        errors.append(f"{where}: missing 'algorithm'")
    epsilons = report.get("epsilons")
    if not isinstance(epsilons, list) or not all(is_number(e) for e in epsilons):
        errors.append(f"{where}: 'epsilons' is not a number array")
    points = report.get("points")
    if not isinstance(points, list):
        errors.append(f"{where}: 'points' is not an array")
        return
    for i, point in enumerate(points):
        pwhere = f"{where}.points[{i}]"
        if not isinstance(point, dict):
            errors.append(f"{pwhere}: not an object")
            continue
        for field, expected in TUNE_POINT_FIELDS.items():
            if field not in point:
                errors.append(f"{pwhere}: missing '{field}'")
            elif not isinstance(point[field], expected) or (
                    expected is int and isinstance(point[field], bool)):
                errors.append(f"{pwhere}: '{field}' has wrong type")
        lambdas = point.get("lambdas")
        if isinstance(lambdas, list) and not all(is_number(l) for l in lambdas):
            errors.append(f"{pwhere}: non-numeric lambda")
        # The acceptance invariant: one point per trainer invocation, counted
        # cumulatively from 1.
        if point.get("models_trained") != i + 1:
            errors.append(
                f"{pwhere}: models_trained={point.get('models_trained')!r}, "
                f"expected {i + 1} (cumulative fit count)")
        if point.get("evaluated"):
            if not is_number(point.get("val_accuracy")):
                errors.append(f"{pwhere}: evaluated but no 'val_accuracy'")
            parts = point.get("val_fairness_parts")
            if not isinstance(parts, list) or not all(is_number(p) for p in parts):
                errors.append(f"{pwhere}: evaluated but bad 'val_fairness_parts'")
    declared = report.get("models_trained")
    if isinstance(declared, int) and points and declared != len(points):
        errors.append(
            f"{where}: models_trained={declared} but {len(points)} points")


def check_bench_sections(doc, errors):
    """Per-bench required sections/fields (PER_BENCH_SECTIONS)."""
    required = PER_BENCH_SECTIONS.get(doc.get("bench"))
    if required is None:
        return
    rows_by_section = {}
    for row in doc.get("results", []):
        if isinstance(row, dict):
            rows_by_section.setdefault(row.get("section"), []).append(row)
    for section, fields in required.items():
        rows = rows_by_section.get(section)
        if not rows:
            errors.append(f"results: missing required section '{section}'")
            continue
        for i, row in enumerate(rows):
            values = row.get("values")
            if not isinstance(values, dict):
                continue  # already reported by check_result_row
            for field in fields:
                if not is_number(values.get(field)):
                    errors.append(
                        f"results[{section}][{i}]: missing numeric '{field}'")


def check_metrics(metrics, where, errors):
    for key in ("counters", "gauges", "histograms"):
        if not isinstance(metrics.get(key), dict):
            errors.append(f"{where}: missing '{key}' object")
    counters = metrics.get("counters")
    if isinstance(counters, dict):
        check_string_map(
            counters, lambda v: isinstance(v, int) and not isinstance(v, bool),
            f"{where}.counters", errors)
    gauges = metrics.get("gauges")
    if isinstance(gauges, dict):
        check_string_map(gauges, is_number, f"{where}.gauges", errors)
    histograms = metrics.get("histograms")
    if not isinstance(histograms, dict):
        return
    for name, hist in histograms.items():
        hwhere = f"{where}.histograms[{name!r}]"
        if not isinstance(hist, dict):
            errors.append(f"{hwhere}: not an object")
            continue
        bounds = hist.get("bounds")
        buckets = hist.get("buckets")
        count = hist.get("count")
        if not isinstance(bounds, list) or not all(is_number(b) for b in bounds):
            errors.append(f"{hwhere}: bad 'bounds'")
            continue
        if not isinstance(buckets, list) or len(buckets) != len(bounds) + 1:
            errors.append(f"{hwhere}: expected {len(bounds) + 1} buckets")
            continue
        if isinstance(count, int) and sum(buckets) != count:
            errors.append(
                f"{hwhere}: bucket sum {sum(buckets)} != count {count}")


def check_document(doc, errors):
    for key, expected in TOP_LEVEL.items():
        if key not in doc:
            errors.append(f"missing top-level key '{key}'")
        elif not isinstance(doc[key], expected) or isinstance(doc[key], bool):
            errors.append(f"top-level '{key}' has wrong type")
    if errors:
        return
    if doc["schema"] != SCHEMA_NAME:
        errors.append(f"schema is {doc['schema']!r}, expected {SCHEMA_NAME!r}")
    if doc["schema_version"] != SCHEMA_VERSION:
        errors.append(f"unsupported schema_version {doc['schema_version']!r}")
    if not doc["bench"]:
        errors.append("'bench' is empty")
    check_string_map(doc["config"],
                     lambda v: isinstance(v, str) or is_number(v),
                     "config", errors)
    for i, row in enumerate(doc["results"]):
        check_result_row(row, f"results[{i}]", errors)
    check_bench_sections(doc, errors)
    for i, entry in enumerate(doc["tune_trajectories"]):
        where = f"tune_trajectories[{i}]"
        if not isinstance(entry, dict):
            errors.append(f"{where}: not an object")
            continue
        if not isinstance(entry.get("label"), str):
            errors.append(f"{where}: missing 'label'")
        check_tune_report(entry.get("report"), where, errors)
    check_metrics(doc["metrics"], "metrics", errors)
    check_string_map(
        doc["recovery_events"],
        lambda v: isinstance(v, int) and not isinstance(v, bool) and v > 0,
        "recovery_events", errors)
    if doc["wall_seconds"] < 0:
        errors.append(f"negative wall_seconds {doc['wall_seconds']}")


def check_file(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as exc:
        return [f"cannot parse: {exc}"]
    if not isinstance(doc, dict):
        return ["top level is not an object"]
    errors = []
    check_document(doc, errors)
    return errors


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    failed = False
    for path in argv[1:]:
        errors = check_file(path)
        if errors:
            failed = True
            print(f"INVALID {path}")
            for error in errors:
                print(f"  - {error}")
        else:
            print(f"ok      {path}")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
