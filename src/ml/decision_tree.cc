#include "ml/decision_tree.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/logging.h"
#include "util/telemetry.h"
#include "util/trace.h"

namespace omnifair {
namespace {

struct SplitCandidate {
  bool found = false;
  size_t feature = 0;
  double threshold = 0.0;
  double impurity_decrease = 0.0;
};

double GiniImpurity(double w_pos, double w_total) {
  if (w_total <= 0.0) return 0.0;
  const double p = w_pos / w_total;
  return 2.0 * p * (1.0 - p);
}

class TreeBuilder {
 public:
  TreeBuilder(const Matrix& X, const std::vector<int>& y,
              const std::vector<double>& weights, const DecisionTreeOptions& options)
      : X_(X), y_(y), weights_(weights), options_(options), rng_(options.seed) {}

  std::vector<DecisionTreeModel::Node> Build() {
    std::vector<size_t> all(X_.rows());
    std::iota(all.begin(), all.end(), 0);
    BuildNode(std::move(all), /*depth=*/0);
    return std::move(nodes_);
  }

 private:
  int BuildNode(std::vector<size_t> samples, int depth) {
    double w_total = 0.0;
    double w_pos = 0.0;
    for (size_t i : samples) {
      w_total += weights_[i];
      if (y_[i] == 1) w_pos += weights_[i];
    }

    const int node_index = static_cast<int>(nodes_.size());
    nodes_.emplace_back();
    nodes_[node_index].probability = w_total > 0.0 ? w_pos / w_total : 0.5;

    const bool pure = w_pos <= 1e-12 || w_total - w_pos <= 1e-12;
    if (depth >= options_.max_depth || pure || w_total < options_.min_weight_split ||
        samples.size() < 2) {
      return node_index;
    }

    const SplitCandidate split = FindBestSplit(samples, w_pos, w_total);
    if (!split.found) return node_index;

    std::vector<size_t> left_samples;
    std::vector<size_t> right_samples;
    left_samples.reserve(samples.size());
    right_samples.reserve(samples.size());
    for (size_t i : samples) {
      if (X_(i, split.feature) <= split.threshold) {
        left_samples.push_back(i);
      } else {
        right_samples.push_back(i);
      }
    }
    if (left_samples.empty() || right_samples.empty()) return node_index;
    samples.clear();
    samples.shrink_to_fit();

    const int left = BuildNode(std::move(left_samples), depth + 1);
    const int right = BuildNode(std::move(right_samples), depth + 1);
    nodes_[node_index].is_leaf = false;
    nodes_[node_index].feature = static_cast<int>(split.feature);
    nodes_[node_index].threshold = split.threshold;
    nodes_[node_index].left = left;
    nodes_[node_index].right = right;
    return node_index;
  }

  SplitCandidate FindBestSplit(const std::vector<size_t>& samples, double w_pos,
                               double w_total) {
    const double parent_impurity = GiniImpurity(w_pos, w_total);
    SplitCandidate best;

    std::vector<size_t> features(X_.cols());
    std::iota(features.begin(), features.end(), 0);
    size_t num_features = features.size();
    if (options_.max_features > 0 && options_.max_features < num_features) {
      // Fisher-Yates prefix for a random feature subset.
      for (size_t i = 0; i < options_.max_features; ++i) {
        const size_t j = i + rng_.NextBounded(num_features - i);
        std::swap(features[i], features[j]);
      }
      num_features = options_.max_features;
    }

    std::vector<size_t> order(samples);
    for (size_t f_idx = 0; f_idx < num_features; ++f_idx) {
      const size_t feature = features[f_idx];
      std::sort(order.begin(), order.end(), [this, feature](size_t a, size_t b) {
        return X_(a, feature) < X_(b, feature);
      });

      double left_total = 0.0;
      double left_pos = 0.0;
      for (size_t k = 0; k + 1 < order.size(); ++k) {
        const size_t i = order[k];
        left_total += weights_[i];
        if (y_[i] == 1) left_pos += weights_[i];
        const double value = X_(i, feature);
        const double next_value = X_(order[k + 1], feature);
        if (next_value <= value) continue;  // no boundary between equal values

        const double right_total = w_total - left_total;
        const double right_pos = w_pos - left_pos;
        if (left_total < options_.min_weight_leaf ||
            right_total < options_.min_weight_leaf) {
          continue;
        }
        const double weighted_child_impurity =
            (left_total * GiniImpurity(left_pos, left_total) +
             right_total * GiniImpurity(right_pos, right_total)) /
            w_total;
        const double decrease = parent_impurity - weighted_child_impurity;
        if (decrease > best.impurity_decrease + 1e-12) {
          best.found = true;
          best.feature = feature;
          best.threshold = 0.5 * (value + next_value);
          best.impurity_decrease = decrease;
        }
      }
    }
    return best;
  }

  const Matrix& X_;
  const std::vector<int>& y_;
  const std::vector<double>& weights_;
  const DecisionTreeOptions& options_;
  Rng rng_;
  std::vector<DecisionTreeModel::Node> nodes_;
};

}  // namespace

DecisionTreeModel::DecisionTreeModel(std::vector<Node> nodes)
    : nodes_(std::move(nodes)) {
  OF_CHECK(!nodes_.empty());
}

double DecisionTreeModel::PredictRow(const double* row) const {
  int index = 0;
  while (!nodes_[index].is_leaf) {
    const Node& node = nodes_[index];
    index = row[node.feature] <= node.threshold ? node.left : node.right;
  }
  return nodes_[index].probability;
}

std::vector<double> DecisionTreeModel::PredictProba(const Matrix& X) const {
  std::vector<double> proba(X.rows());
  for (size_t i = 0; i < X.rows(); ++i) proba[i] = PredictRow(X.Row(i));
  return proba;
}

void DecisionTreeModel::AccumulateProba(const Matrix& X, size_t row_begin,
                                        size_t row_end,
                                        std::vector<double>& proba) const {
  for (size_t i = row_begin; i < row_end; ++i) proba[i] += PredictRow(X.Row(i));
}

int DecisionTreeModel::Depth() const {
  // Iterative depth computation over the flat array.
  std::vector<int> depth(nodes_.size(), 0);
  int max_depth = 0;
  for (size_t i = 0; i < nodes_.size(); ++i) {
    if (!nodes_[i].is_leaf) {
      depth[nodes_[i].left] = depth[i] + 1;
      depth[nodes_[i].right] = depth[i] + 1;
    }
    max_depth = std::max(max_depth, depth[i]);
  }
  return max_depth;
}

DecisionTreeTrainer::DecisionTreeTrainer(DecisionTreeOptions options)
    : options_(options) {}

std::unique_ptr<Classifier> DecisionTreeTrainer::Fit(
    const Matrix& X, const std::vector<int>& y, const std::vector<double>& weights) {
  OF_CHECK_EQ(X.rows(), y.size());
  OF_CHECK_EQ(X.rows(), weights.size());
  OF_CHECK_GT(X.rows(), 0u);
  OF_TRACE_SPAN("fit/dt");
  OF_SCOPED_LATENCY_US("ml.fit_us.dt");
  TreeBuilder builder(X, y, weights, options_);
  return std::make_unique<DecisionTreeModel>(builder.Build());
}

}  // namespace omnifair
