#include <gtest/gtest.h>

#include "data/column.h"
#include "data/dataset.h"

namespace omnifair {
namespace {

TEST(ColumnTest, NumericAppendAndRead) {
  Column col = Column::Numeric("age");
  col.AppendNumeric(30.0);
  col.AppendNumeric(45.0);
  EXPECT_EQ(col.type(), ColumnType::kNumeric);
  EXPECT_EQ(col.size(), 2u);
  EXPECT_DOUBLE_EQ(col.NumericValue(1), 45.0);
}

TEST(ColumnTest, CategoricalByCode) {
  Column col = Column::Categorical("race", {"A", "B"});
  col.AppendCode(1);
  col.AppendCode(0);
  EXPECT_EQ(col.size(), 2u);
  EXPECT_EQ(col.CategoryOf(0), "B");
  EXPECT_EQ(col.Code(1), 0);
}

TEST(ColumnTest, AppendCategoryRegistersNew) {
  Column col = Column::Categorical("city", {});
  col.AppendCategory("NYC");
  col.AppendCategory("LA");
  col.AppendCategory("NYC");
  EXPECT_EQ(col.categories().size(), 2u);
  EXPECT_EQ(col.Code(0), col.Code(2));
  EXPECT_NE(col.Code(0), col.Code(1));
}

TEST(ColumnTest, CodeOfUnknownIsMinusOne) {
  Column col = Column::Categorical("x", {"a"});
  EXPECT_EQ(col.CodeOf("a"), 0);
  EXPECT_EQ(col.CodeOf("zzz"), -1);
}

TEST(ColumnTest, SelectRowsPreservesDictionary) {
  Column col = Column::Categorical("g", {"a", "b", "c"});
  col.AppendCode(2);
  col.AppendCode(0);
  col.AppendCode(1);
  Column sub = col.SelectRows({2, 0});
  EXPECT_EQ(sub.categories().size(), 3u);
  EXPECT_EQ(sub.CategoryOf(0), "b");
  EXPECT_EQ(sub.CategoryOf(1), "c");
}

TEST(DatasetTest, AddColumnsAndLabels) {
  Dataset d("toy");
  Column age = Column::Numeric("age");
  age.AppendNumeric(20.0);
  age.AppendNumeric(30.0);
  d.AddColumn(std::move(age));
  d.SetLabels({0, 1});
  EXPECT_EQ(d.NumRows(), 2u);
  EXPECT_EQ(d.NumColumns(), 1u);
  EXPECT_EQ(d.Label(1), 1);
  EXPECT_TRUE(d.Validate().ok());
}

TEST(DatasetTest, FindColumn) {
  Dataset d;
  d.AddColumn(Column::Numeric("a"));
  EXPECT_TRUE(d.HasColumn("a"));
  EXPECT_FALSE(d.HasColumn("b"));
  EXPECT_NE(d.FindColumn("a"), nullptr);
  EXPECT_EQ(d.FindColumn("b"), nullptr);
}

TEST(DatasetTest, PositiveRate) {
  Dataset d;
  Column x = Column::Numeric("x");
  for (int i = 0; i < 4; ++i) x.AppendNumeric(i);
  d.AddColumn(std::move(x));
  d.SetLabels({1, 0, 0, 1});
  EXPECT_DOUBLE_EQ(d.PositiveRate(), 0.5);
}

TEST(DatasetTest, SelectRows) {
  Dataset d("toy");
  Column x = Column::Numeric("x");
  Column g = Column::Categorical("g", {"m", "f"});
  for (int i = 0; i < 4; ++i) {
    x.AppendNumeric(i);
    g.AppendCode(i % 2);
  }
  d.AddColumn(std::move(x));
  d.AddColumn(std::move(g));
  d.SetLabels({0, 1, 0, 1});

  Dataset sub = d.SelectRows({3, 1});
  EXPECT_EQ(sub.NumRows(), 2u);
  EXPECT_EQ(sub.name(), "toy");
  EXPECT_DOUBLE_EQ(sub.ColumnByName("x").NumericValue(0), 3.0);
  EXPECT_EQ(sub.ColumnByName("g").CategoryOf(1), "f");
  EXPECT_EQ(sub.Label(0), 1);
}

TEST(DatasetTest, ValidateCatchesNonBinaryLabels) {
  Dataset d;
  Column x = Column::Numeric("x");
  x.AppendNumeric(1.0);
  d.AddColumn(std::move(x));
  d.SetLabels({2});
  EXPECT_FALSE(d.Validate().ok());
}

TEST(DatasetTest, SetLabelMutates) {
  Dataset d;
  Column x = Column::Numeric("x");
  x.AppendNumeric(1.0);
  d.AddColumn(std::move(x));
  d.SetLabels({0});
  d.SetLabel(0, 1);
  EXPECT_EQ(d.Label(0), 1);
}

}  // namespace
}  // namespace omnifair
