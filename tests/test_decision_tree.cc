#include "ml/decision_tree.h"

#include <gtest/gtest.h>

#include "tests/testing_data.h"

namespace omnifair {
namespace {

using testing_data::Blobs;
using testing_data::MakeBlobs;
using testing_data::MakeXor;
using testing_data::TrainAccuracy;

TEST(DecisionTreeTest, LearnsXor) {
  const Blobs xor_data = MakeXor(600, 1);
  DecisionTreeTrainer trainer;
  const auto model = trainer.Fit(xor_data.X, xor_data.y, xor_data.unit_weights);
  EXPECT_GE(TrainAccuracy(*model, xor_data), 0.95);
}

TEST(DecisionTreeTest, DepthZeroIsMajorityVote) {
  Blobs blobs = MakeBlobs(100, 2.0, 2);
  // Force 70/30 labels.
  for (size_t i = 0; i < blobs.y.size(); ++i) blobs.y[i] = i < 70 ? 1 : 0;
  DecisionTreeOptions options;
  options.max_depth = 0;
  DecisionTreeTrainer trainer(options);
  const auto model = trainer.Fit(blobs.X, blobs.y, blobs.unit_weights);
  const std::vector<int> preds = model->Predict(blobs.X);
  for (int p : preds) EXPECT_EQ(p, 1);
}

TEST(DecisionTreeTest, RespectsMaxDepth) {
  const Blobs xor_data = MakeXor(500, 3);
  DecisionTreeOptions options;
  options.max_depth = 3;
  DecisionTreeTrainer trainer(options);
  const auto model = trainer.Fit(xor_data.X, xor_data.y, xor_data.unit_weights);
  const auto* tree = dynamic_cast<const DecisionTreeModel*>(model.get());
  ASSERT_NE(tree, nullptr);
  EXPECT_LE(tree->Depth(), 3);
}

TEST(DecisionTreeTest, PureNodeStopsSplitting) {
  Blobs blobs = MakeBlobs(50, 2.0, 4);
  for (int& y : blobs.y) y = 1;  // all one class
  DecisionTreeTrainer trainer;
  const auto model = trainer.Fit(blobs.X, blobs.y, blobs.unit_weights);
  const auto* tree = dynamic_cast<const DecisionTreeModel*>(model.get());
  ASSERT_NE(tree, nullptr);
  EXPECT_EQ(tree->NumNodes(), 1u);
}

TEST(DecisionTreeTest, WeightsChangeLeafProbabilities) {
  // A single ambiguous region: weighting flips the majority.
  Matrix X(4, 1);
  X(0, 0) = X(1, 0) = X(2, 0) = X(3, 0) = 0.0;  // identical features
  const std::vector<int> y = {1, 1, 0, 0};
  DecisionTreeTrainer trainer;
  const auto balanced = trainer.Fit(X, y, {1.0, 1.0, 1.0, 1.0});
  EXPECT_NEAR(balanced->PredictProba(X)[0], 0.5, 1e-12);
  const auto skewed = trainer.Fit(X, y, {3.0, 3.0, 1.0, 1.0});
  EXPECT_NEAR(skewed->PredictProba(X)[0], 0.75, 1e-12);
  EXPECT_EQ(skewed->Predict(X)[0], 1);
}

TEST(DecisionTreeTest, ZeroWeightExamplesIgnored) {
  Blobs blobs = MakeBlobs(300, 2.5, 5);
  Blobs corrupted = blobs;
  std::vector<double> weights(blobs.y.size(), 1.0);
  for (size_t i = 0; i < blobs.y.size(); i += 3) {
    corrupted.y[i] = 1 - corrupted.y[i];
    weights[i] = 0.0;
  }
  DecisionTreeTrainer trainer;
  const auto model = trainer.Fit(corrupted.X, corrupted.y, weights);
  EXPECT_GE(TrainAccuracy(*model, blobs), 0.93);
}

TEST(DecisionTreeTest, DeterministicWithFullFeatures) {
  const Blobs xor_data = MakeXor(400, 6);
  DecisionTreeTrainer a;
  DecisionTreeTrainer b;
  const auto ma = a.Fit(xor_data.X, xor_data.y, xor_data.unit_weights);
  const auto mb = b.Fit(xor_data.X, xor_data.y, xor_data.unit_weights);
  EXPECT_EQ(ma->Predict(xor_data.X), mb->Predict(xor_data.X));
}

TEST(DecisionTreeTest, MinWeightLeafPreventsTinySplits) {
  const Blobs blobs = MakeBlobs(100, 0.3, 7);
  DecisionTreeOptions options;
  options.min_weight_leaf = 40.0;
  options.min_weight_split = 80.0;
  DecisionTreeTrainer trainer(options);
  const auto model = trainer.Fit(blobs.X, blobs.y, blobs.unit_weights);
  const auto* tree = dynamic_cast<const DecisionTreeModel*>(model.get());
  ASSERT_NE(tree, nullptr);
  // At most one split is possible under these weight floors.
  EXPECT_LE(tree->NumNodes(), 3u);
}

}  // namespace
}  // namespace omnifair
