#ifndef OMNIFAIR_UTIL_LOGGING_H_
#define OMNIFAIR_UTIL_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace omnifair {

/// Severity levels for the library logger. kFatal aborts after logging.
enum class LogSeverity { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kFatal = 4 };

/// Sets the global minimum severity that is actually emitted (default kInfo).
void SetLogLevel(LogSeverity min_severity);
LogSeverity GetLogLevel();

/// Recovery events counted by the robustness layer (exception firewall,
/// divergence backoff, degenerate-metric guards, budget expiry). Since the
/// telemetry layer landed these are thin wrappers over MetricsRegistry
/// counters named "recovery.<event>" (DESIGN.md §9) — the functions below are
/// kept so existing callers and tests keep working. Counting is unconditional
/// (not gated on the telemetry level): recovery visibility is a robustness
/// guarantee, not an observability opt-in.
enum class RecoveryEvent {
  kTrainerException = 0,  ///< user trainer threw across the no-throw boundary
  kGroupingException,     ///< user grouping callable threw
  kDivergenceBackoff,     ///< iterative trainer re-initialized after divergence
  kNonFiniteMetric,       ///< non-finite FP_j guarded to 0 (constraint skipped)
  kNonFiniteWeight,       ///< non-finite example weight clamped to 0
  kBudgetExpired,         ///< TrainBudget deadline or model cap reached
  kCount
};

/// Stable snake_case name of an event, e.g. "divergence_backoff".
const char* RecoveryEventName(RecoveryEvent event);
void CountRecoveryEvent(RecoveryEvent event);
long long RecoveryEventCount(RecoveryEvent event);
void ResetRecoveryEvents();
/// "none" or e.g. "divergence_backoff=3 trainer_exception=1".
std::string RecoveryEventSummary();

namespace internal_logging {

/// Stream-style log message; emits on destruction. Not for direct use — use
/// the OF_LOG / OF_CHECK macros below.
class LogMessage {
 public:
  LogMessage(LogSeverity severity, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostringstream& stream() { return stream_; }

 private:
  LogSeverity severity_;
  std::ostringstream stream_;
};

}  // namespace internal_logging
}  // namespace omnifair

#define OF_LOG(severity)                                                      \
  ::omnifair::internal_logging::LogMessage(                                   \
      ::omnifair::LogSeverity::k##severity, __FILE__, __LINE__)               \
      .stream()

/// Invariant check: logs and aborts when the condition fails. Used for
/// programmer errors (API misuse inside the library); recoverable conditions
/// return Status instead.
#define OF_CHECK(condition)                                                   \
  if (!(condition))                                                           \
  ::omnifair::internal_logging::LogMessage(::omnifair::LogSeverity::kFatal,   \
                                           __FILE__, __LINE__)                \
      .stream()                                                               \
      << "Check failed: " #condition " "

#define OF_CHECK_EQ(a, b) OF_CHECK((a) == (b)) << "(" << (a) << " vs " << (b) << ") "
#define OF_CHECK_GT(a, b) OF_CHECK((a) > (b)) << "(" << (a) << " vs " << (b) << ") "
#define OF_CHECK_GE(a, b) OF_CHECK((a) >= (b)) << "(" << (a) << " vs " << (b) << ") "
#define OF_CHECK_LT(a, b) OF_CHECK((a) < (b)) << "(" << (a) << " vs " << (b) << ") "
#define OF_CHECK_LE(a, b) OF_CHECK((a) <= (b)) << "(" << (a) << " vs " << (b) << ") "

#endif  // OMNIFAIR_UTIL_LOGGING_H_
