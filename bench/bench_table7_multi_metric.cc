// Reproduces Table 7: enforcing SP and FNR simultaneously on COMPAS (LR),
// sweeping epsilon. The paper finds epsilon = 0.01 and 0.02 infeasible
// (N/A), and from 0.03 upward both disparities drop by an order of
// magnitude with < 1% accuracy loss.

#include <cmath>

#include "bench/bench_common.h"

namespace omnifair {
namespace bench {
namespace {

void Run(BenchReporter& reporter) {
  const int seeds = EnvSeeds(3);
  reporter.Config("seeds", seeds);
  reporter.Config("dataset", "compas");
  reporter.Config("constraints", "sp+fnr");
  PrintHeader("Table 7: enforcing SP and FNR on COMPAS (LR)");

  // Baseline (unconstrained) row.
  double base_accuracy = 0.0;
  double base_sp = 0.0;
  double base_fnr = 0.0;
  const GroupingFunction groups = MainGroups("compas");
  for (int s = 0; s < seeds; ++s) {
    const Dataset data = MakeBenchDataset("compas", 500 + s);
    const TrainValTestSplit split = SplitDefault(data, 600 + s);
    auto trainer = MakeTrainer("lr");
    OmniFair omnifair;
    auto fair = omnifair.Train(split.train, split.val, trainer.get(),
                               {MakeSpec(groups, "sp", 10.0)});
    if (!fair.ok()) continue;
    auto audit = Audit(*fair->model, fair->encoder, split.test,
                       {MakeSpec(groups, "sp", 10.0), MakeSpec(groups, "fnr", 10.0)});
    base_accuracy += audit->accuracy;
    base_sp += std::fabs(audit->fairness_parts[0]);
    base_fnr += std::fabs(audit->fairness_parts[1]);
  }
  std::printf("%-9s %9s %8s %8s\n", "epsilon", "accuracy", "SP", "FNR");
  std::printf("%-9s %8.1f%% %8.3f %8.3f\n", "baseline", 100.0 * base_accuracy / seeds,
              base_sp / seeds, base_fnr / seeds);
  reporter.AddRow("multi_metric")
      .Label("row", "baseline")
      .Value("test_accuracy", base_accuracy / seeds)
      .Value("sp_disparity", base_sp / seeds)
      .Value("fnr_disparity", base_fnr / seeds);

  for (double epsilon : {0.01, 0.02, 0.03, 0.04, 0.05, 0.06}) {
    int feasible = 0;
    double accuracy = 0.0;
    double sp = 0.0;
    double fnr = 0.0;
    for (int s = 0; s < seeds; ++s) {
      const Dataset data = MakeBenchDataset("compas", 500 + s);
      const TrainValTestSplit split = SplitDefault(data, 600 + s);
      auto trainer = MakeTrainer("lr");
      OmniFair omnifair;
      const std::vector<FairnessSpec> specs = {MakeSpec(groups, "sp", epsilon),
                                               MakeSpec(groups, "fnr", epsilon)};
      auto fair = omnifair.Train(split.train, split.val, trainer.get(), specs);
      if (!fair.ok() || !fair->satisfied) continue;
      ++feasible;
      auto audit = Audit(*fair->model, fair->encoder, split.test, specs);
      accuracy += audit->accuracy;
      sp += std::fabs(audit->fairness_parts[0]);
      fnr += std::fabs(audit->fairness_parts[1]);
    }
    if (feasible == 0) {
      std::printf("%-9.2f %9s %8s %8s\n", epsilon, "N/A", "N/A", "N/A");
      reporter.AddRow("multi_metric")
          .Label("row", "constrained")
          .Value("epsilon", epsilon)
          .Value("feasible_splits", 0);
    } else {
      std::printf("%-9.2f %8.1f%% %8.3f %8.3f   (%d/%d splits feasible)\n", epsilon,
                  100.0 * accuracy / feasible, sp / feasible, fnr / feasible,
                  feasible, seeds);
      reporter.AddRow("multi_metric")
          .Label("row", "constrained")
          .Value("epsilon", epsilon)
          .Value("feasible_splits", feasible)
          .Value("test_accuracy", accuracy / feasible)
          .Value("sp_disparity", sp / feasible)
          .Value("fnr_disparity", fnr / feasible);
    }
  }
}

}  // namespace
}  // namespace bench
}  // namespace omnifair

int main() {
  omnifair::InitTelemetryFromEnv();
  omnifair::bench::BenchReporter reporter(
      "table7_multi_metric", "Table 7: enforcing SP and FNR on COMPAS (LR)");
  omnifair::bench::Run(reporter);
  return omnifair::bench::FinishBench(reporter);
}
