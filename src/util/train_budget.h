#ifndef OMNIFAIR_UTIL_TRAIN_BUDGET_H_
#define OMNIFAIR_UTIL_TRAIN_BUDGET_H_

#include <atomic>

#include "util/status.h"
#include "util/stopwatch.h"

namespace omnifair {

/// Limits on one tuning run. Zero or negative values mean "unlimited"; the
/// default budget never expires.
struct TrainBudgetOptions {
  /// Wall-clock deadline for the whole run, in seconds.
  double deadline_seconds = 0.0;
  /// Maximum trainer invocations across the run.
  int max_models = 0;
};

/// Tracks one tuning run against its budget. The tuners poll Expired() before
/// each optional exploratory fit and stop with the best model found so far
/// once the budget runs out; mandatory fallback fits (at most one per tuner
/// invocation) are exempt so a best-effort model can still be produced.
/// Wall-clock reads include the FaultInjector's virtual clock skew, which is
/// what makes deadline handling testable without sleeping.
class TrainBudget {
 public:
  explicit TrainBudget(TrainBudgetOptions options = {});

  /// Registers one trainer invocation against the model cap. Thread-safe:
  /// parallel grid workers charge the shared budget concurrently.
  void NoteModelTrained() {
    models_trained_.fetch_add(1, std::memory_order_relaxed);
  }

  bool limited() const {
    return options_.deadline_seconds > 0.0 || options_.max_models > 0;
  }
  /// Seconds since construction, including injected clock skew and any
  /// restored pre-crash time.
  double ElapsedSeconds() const;

  /// Credits `seconds` of wall-clock already spent by an interrupted run
  /// (checkpoint resume): the deadline continues from where the original run
  /// stopped instead of granting the resumed process a fresh allowance.
  /// Model-cap accounting needs no counterpart — replayed fits charge
  /// NoteModelTrained naturally.
  void RestoreConsumed(double seconds) {
    if (seconds > 0.0) consumed_base_ += seconds;
  }
  int models_trained() const {
    return models_trained_.load(std::memory_order_relaxed);
  }

  /// True once the deadline has passed or the model cap is reached. The
  /// first expiry is counted as a RecoveryEvent and logged.
  bool Expired() const;

  /// kOk while within budget; DEADLINE_EXCEEDED with the expiry reason once
  /// Expired().
  Status ToStatus() const;

 private:
  TrainBudgetOptions options_;
  Stopwatch stopwatch_;
  double consumed_base_ = 0.0;
  std::atomic<int> models_trained_{0};
  mutable std::atomic<bool> expiry_logged_{false};
};

}  // namespace omnifair

#endif  // OMNIFAIR_UTIL_TRAIN_BUDGET_H_
