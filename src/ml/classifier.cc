#include "ml/classifier.h"

namespace omnifair {

void Classifier::AccumulateProba(const Matrix& X, size_t row_begin,
                                 size_t row_end,
                                 std::vector<double>& proba) const {
  const std::vector<double> all = PredictProba(X);
  for (size_t i = row_begin; i < row_end; ++i) proba[i] += all[i];
}

std::vector<int> Classifier::Predict(const Matrix& X) const {
  const std::vector<double> proba = PredictProba(X);
  std::vector<int> labels(proba.size());
  for (size_t i = 0; i < proba.size(); ++i) labels[i] = proba[i] >= 0.5 ? 1 : 0;
  return labels;
}

std::unique_ptr<Classifier> Trainer::Fit(const Matrix& X, const std::vector<int>& y) {
  const std::vector<double> unit(y.size(), 1.0);
  return Fit(X, y, unit);
}

}  // namespace omnifair
