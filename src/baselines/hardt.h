#ifndef OMNIFAIR_BASELINES_HARDT_H_
#define OMNIFAIR_BASELINES_HARDT_H_

#include <memory>
#include <vector>

#include "baselines/baseline.h"

namespace omnifair {

/// Hardt, Price & Srebro (2016) style post-processing.
///
/// This family is NOT in the paper's Table 1 — we include it because it is
/// the third classic intervention stage (pre / in / post) and any credible
/// open-source fairness library ships one. A base model is trained
/// unconstrained; fairness comes from *group-specific decision thresholds*
/// chosen on the validation split to maximize accuracy subject to the
/// declared constraint. Model-agnostic and cheap (one fit + a threshold
/// grid), but requires the sensitive attribute at decision time — the
/// classic deployment objection to post-processing, which the wrapped
/// classifier makes explicit by reading the group's one-hot column from
/// the encoded features.
class HardtPostProcessing : public FairnessBaseline {
 public:
  struct Options {
    /// Thresholds examined per group (uniform grid over (0, 1)).
    int thresholds_per_group = 41;
  };

  explicit HardtPostProcessing(Options options);
  HardtPostProcessing() : HardtPostProcessing(Options()) {}

  std::string Name() const override { return "hardt"; }
  /// Any metric works: thresholds are evaluated exactly on validation.
  bool SupportsMetric(const FairnessMetric& metric) const override { return true; }
  Result<BaselineResult> Train(const Dataset& train, const Dataset& val,
                               Trainer* trainer, const FairnessSpec& spec) override;

 private:
  Options options_;
};

/// The wrapped decision rule: predict 1 iff base score >= threshold of the
/// row's group (group decided by the sensitive attribute's one-hot columns
/// in the encoded features; rows in neither group use the default 0.5).
class GroupThresholdClassifier : public Classifier {
 public:
  GroupThresholdClassifier(std::shared_ptr<Classifier> base, int group1_feature,
                           int group2_feature, double threshold1,
                           double threshold2);

  std::vector<double> PredictProba(const Matrix& X) const override;
  std::string Name() const override { return "group_threshold"; }

  double threshold1() const { return threshold1_; }
  double threshold2() const { return threshold2_; }

 private:
  std::shared_ptr<Classifier> base_;
  int group1_feature_;
  int group2_feature_;
  double threshold1_;
  double threshold2_;
};

}  // namespace omnifair

#endif  // OMNIFAIR_BASELINES_HARDT_H_
