#ifndef OMNIFAIR_CORE_OMNIFAIR_H_
#define OMNIFAIR_CORE_OMNIFAIR_H_

#include <memory>
#include <string>
#include <vector>

#include "core/grid_search.h"
#include "core/hill_climbing.h"
#include "core/lambda_tuner.h"
#include "core/problem.h"
#include "core/run_profile.h"
#include "core/spec.h"
#include "core/tune_report.h"
#include "data/dataset.h"
#include "data/encoder.h"
#include "ml/classifier.h"
#include "util/status.h"
#include "util/telemetry.h"
#include "util/train_budget.h"

namespace omnifair {

/// Top-level configuration of the OmniFair system.
struct OmniFairOptions {
  HillClimbOptions hill_climb;  ///< includes the Algorithm 1 TuneOptions
  EncoderOptions encoder;
  /// Enable the warm-start optimization (§7.2.1, Table 6) when the trainer
  /// supports it (LR, NN).
  bool warm_start = false;
  /// Optional resource cap on the tuning search (wall-clock deadline and/or
  /// max trainer invocations). Defaults to unlimited. On expiry Train still
  /// returns the best model found, with FairModel::outcome set to
  /// DEADLINE_EXCEEDED (DESIGN.md §8).
  TrainBudgetOptions budget;
  /// Worker threads for the tuning search (DESIGN.md §10). 1 (the default)
  /// keeps every code path exactly serial. Values > 1 are copied into the
  /// embedded TuneOptions (hill_climb.tune.num_threads), running the
  /// λ-search probe fits and the per-iteration constraint evaluation
  /// concurrently on the shared process pool; the selected model and λ are
  /// identical to a serial run. Setting hill_climb.tune.num_threads
  /// directly works too; this top-level knob only overrides when > 1.
  /// (The pool itself is sized by OMNIFAIR_THREADS / the hardware, this
  /// caps how much of it one Train call uses.)
  int num_threads = 1;
  /// Observability knob (DESIGN.md §9). Unset inherits the process-global
  /// level (default: counters + TuneReport, no spans). Set it to
  /// TelemetryLevel::kOff for an explicit zero-overhead Train — no counters,
  /// no spans, and an empty FairModel::tune_report — or to kFullTrace to
  /// capture chrome://tracing spans for this call only.
  TelemetryOptions telemetry;
  /// Crash-safe checkpoint/resume for the tuning search (DESIGN.md §12):
  /// set `checkpoint.path` to persist resumable state and
  /// `checkpoint.resume_from` to continue a killed run; the resumed run's
  /// final model is bit-identical to an uninterrupted one. Copied into the
  /// embedded TuneOptions. Not supported together with warm_start (warm
  /// starts carry optimizer state across fits that a resumed process lacks)
  /// — Train fails with kInvalidArgument on that combination.
  CheckpointOptions checkpoint;
};

/// A fairness-constrained model plus everything needed to use and audit it.
struct FairModel {
  std::unique_ptr<Classifier> model;
  /// Encoder fitted on the training split; use it to encode test data.
  FeatureEncoder encoder;
  /// Final hyperparameter vector Lambda (one entry per induced constraint).
  std::vector<double> lambdas;
  /// Whether every induced constraint held on the validation split. When
  /// false the model is best-effort (the paper's NA(1) condition).
  bool satisfied = false;
  /// How the tuning search ended: kOk when it ran to completion,
  /// DEADLINE_EXCEEDED when the TrainBudget expired mid-search, INTERNAL
  /// when the trainer failed partway (exception firewall) but an earlier
  /// model could still be returned. The model is always usable; `outcome`
  /// tells you whether the search was cut short.
  Status outcome;
  double val_accuracy = 0.0;
  /// FP_j on validation per constraint (signed).
  std::vector<double> val_fairness_parts;
  int models_trained = 0;
  double train_seconds = 0.0;
  /// Full tuning trajectory: one TunePoint per trainer invocation, with the
  /// validation accuracy / fairness parts the tuner saw at each Lambda (the
  /// paper's Figure 2 data, recorded for free on every Train call). Empty
  /// when telemetry is off (DESIGN.md §9).
  TuneReport tune_report;
  /// Where the run spent its time: per-stage wall/CPU totals (setup, trainer
  /// fits, weight computation, predictions, constraint evaluation,
  /// checkpointing), fit counts, cache hit rates, and pool utilization
  /// (DESIGN.md §13). Rendered by `omnifair_cli explain` / --profile-out.
  /// Empty when telemetry is off.
  RunProfile run_profile;

  /// Hard predictions for a raw (un-encoded) dataset.
  std::vector<int> Predict(const Dataset& dataset) const;
  /// P(y=1) scores for a raw dataset.
  std::vector<double> PredictProba(const Dataset& dataset) const;
};

/// Per-group entry in an audit: one row of the fairness dashboard.
struct GroupAudit {
  std::string metric;
  std::string group;
  size_t size = 0;
  /// f(h, g) for this metric and group.
  double value = 0.0;
  /// Plain accuracy within the group.
  double accuracy = 0.0;
};

/// Result of auditing a model against fairness specs on some dataset.
struct AuditReport {
  double accuracy = 0.0;
  double roc_auc = 0.5;
  /// Signed FP_j per induced constraint.
  std::vector<double> fairness_parts;
  /// Human-readable "metric(g1 vs g2)" labels aligned with fairness_parts.
  std::vector<std::string> constraint_labels;
  /// max_j |FP_j|.
  double max_disparity = 0.0;
  /// Whether every |FP_j| <= epsilon_j.
  bool satisfied = false;
  /// Per-(metric, group) breakdown: one entry per distinct group of each
  /// spec, with the group's metric value and accuracy.
  std::vector<GroupAudit> groups;

  /// Renders the report as a fixed-width text dashboard.
  std::string ToString() const;
};

/// The OmniFair system: give it data, a black-box trainer and declarative
/// fairness specifications; get back an accuracy-maximal model satisfying
/// the constraints on the validation split.
///
/// Single induced constraint -> Algorithm 1 (LambdaTuner); multiple induced
/// constraints -> Algorithm 2 (HillClimber). No modification of the trainer
/// is ever required (model-agnostic by construction).
class OmniFair {
 public:
  explicit OmniFair(OmniFairOptions options = {});

  /// Trains a fair model. Returns kInvalidArgument for malformed specs;
  /// infeasibility is reported via FairModel::satisfied = false (callers
  /// may still use the best-effort model). Never throws: exceptions from
  /// the trainer or the grouping callables are converted to Status at the
  /// API boundary (DESIGN.md §8). When the trainer fails before any model
  /// exists the call returns kInternal; when it fails later, or the
  /// configured TrainBudget expires, the best model reached is returned
  /// with FairModel::outcome annotating the interruption.
  Result<FairModel> Train(const Dataset& train, const Dataset& val, Trainer* trainer,
                          const std::vector<FairnessSpec>& specs) const;

  /// Convenience: splits `dataset` 60/20/20 itself, trains on train+val and
  /// also audits on the held-out test split (returned via `test_report`).
  Result<FairModel> TrainWithSplit(const Dataset& dataset, Trainer* trainer,
                                   const std::vector<FairnessSpec>& specs,
                                   uint64_t seed, AuditReport* test_report) const;

  const OmniFairOptions& options() const { return options_; }

 private:
  OmniFairOptions options_;
};

/// Audits `model` on `dataset` (raw, un-encoded) against the specs:
/// accuracy, ROC AUC and every induced pairwise disparity.
Result<AuditReport> Audit(const Classifier& model, const FeatureEncoder& encoder,
                          const Dataset& dataset,
                          const std::vector<FairnessSpec>& specs);

/// Persists a trained FairModel (classifier + encoder + tuned lambdas) to a
/// single text file so it can be deployed without retraining. Returns
/// kUnsupported for model families without a serializer (e.g. baselines'
/// ExpGrad ensembles).
Status SaveFairModel(const FairModel& fair, const std::string& path);

/// Loads a FairModel written by SaveFairModel. Specs are not persisted
/// (grouping functions are arbitrary callables); re-declare them when
/// auditing the loaded model.
Result<FairModel> LoadFairModel(const std::string& path);

}  // namespace omnifair

#endif  // OMNIFAIR_CORE_OMNIFAIR_H_
