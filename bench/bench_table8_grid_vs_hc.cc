// Reproduces Table 8: grid search vs. marginal hill climbing for the
// two-constraint COMPAS workload (SP + FNR), sweeping epsilon. Expected
// shape: whenever grid search finds a feasible Lambda, hill climbing also
// does (often at epsilons where the grid's resolution already fails), at
// roughly an order of magnitude less wall-clock time.

#include "bench/bench_common.h"

#include "core/grid_search.h"
#include "core/hill_climbing.h"
#include "core/problem.h"

namespace omnifair {
namespace bench {
namespace {

void Run(BenchReporter& reporter) {
  PrintHeader("Table 8: grid search vs hill climbing (COMPAS, SP + FNR, LR)");
  std::printf("%-8s %6s %6s %12s %10s %11s %10s\n", "epsilon", "Grid", "HC",
              "Grid time(s)", "HC time(s)", "Grid fits", "HC fits");
  reporter.Config("dataset", "compas");
  reporter.Config("constraints", "sp+fnr");

  const GroupingFunction groups = MainGroups("compas");
  const Dataset data = MakeBenchDataset("compas", 700);
  const TrainValTestSplit split = SplitDefault(data, 800);

  // Trajectories are attached for one representative epsilon so the JSON
  // stays small (the grid alone is 169 fits per epsilon).
  const double trajectory_epsilon = 0.03;

  for (double epsilon : {0.01, 0.02, 0.03, 0.04, 0.05, 0.06}) {
    const std::vector<FairnessSpec> specs = {MakeSpec(groups, "sp", epsilon),
                                             MakeSpec(groups, "fnr", epsilon)};
    const bool record = epsilon == trajectory_epsilon;

    auto grid_trainer = MakeTrainer("lr");
    auto grid_problem =
        FairnessProblem::Create(split.train, split.val, specs, grid_trainer.get());
    Stopwatch grid_watch;
    GridSearchOptions grid_options;
    grid_options.points_per_dim = 13;  // 169 fits for k = 2
    grid_options.max_lambda = 0.4;
    const GridSearchTuner grid(grid_options);
    TuneReport grid_report;
    grid_report.algorithm = "grid_search";
    if (record) (*grid_problem)->StartTuneReport(&grid_report);
    MultiTuneResult grid_result = grid.Run(**grid_problem);
    (*grid_problem)->StartTuneReport(nullptr);
    const double grid_seconds = grid_watch.ElapsedSeconds();

    auto hc_trainer = MakeTrainer("lr");
    auto hc_problem =
        FairnessProblem::Create(split.train, split.val, specs, hc_trainer.get());
    Stopwatch hc_watch;
    const HillClimber climber;
    TuneReport hc_report;
    hc_report.algorithm = "hill_climb";
    if (record) (*hc_problem)->StartTuneReport(&hc_report);
    MultiTuneResult hc_result = climber.Run(**hc_problem);
    (*hc_problem)->StartTuneReport(nullptr);
    const double hc_seconds = hc_watch.ElapsedSeconds();

    if (record) {
      grid_report.models_trained = grid_result.models_trained;
      grid_report.wall_seconds = grid_seconds;
      hc_report.models_trained = hc_result.models_trained;
      hc_report.wall_seconds = hc_seconds;
      if (!grid_report.empty()) reporter.AddTrajectory("grid eps=0.03", grid_report);
      if (!hc_report.empty()) reporter.AddTrajectory("hc eps=0.03", hc_report);
    }

    std::printf("%-8.2f %6s %6s %12.2f %10.2f %11d %10d\n", epsilon,
                grid_result.satisfied ? "Yes" : "No",
                hc_result.satisfied ? "Yes" : "No", grid_seconds, hc_seconds,
                grid_result.models_trained, hc_result.models_trained);
    reporter.AddRow("grid_vs_hc")
        .Label("method", "grid")
        .Value("epsilon", epsilon)
        .Value("satisfied", grid_result.satisfied ? 1.0 : 0.0)
        .Value("seconds", grid_seconds)
        .Value("models_trained", grid_result.models_trained)
        .Value("val_accuracy", grid_result.val_accuracy);
    reporter.AddRow("grid_vs_hc")
        .Label("method", "hill_climb")
        .Value("epsilon", epsilon)
        .Value("satisfied", hc_result.satisfied ? 1.0 : 0.0)
        .Value("seconds", hc_seconds)
        .Value("models_trained", hc_result.models_trained)
        .Value("val_accuracy", hc_result.val_accuracy);
  }
}

}  // namespace
}  // namespace bench
}  // namespace omnifair

int main() {
  omnifair::InitTelemetryFromEnv();
  omnifair::bench::BenchReporter reporter(
      "table8_grid_vs_hc",
      "Table 8: grid search vs hill climbing (COMPAS, SP + FNR, LR)");
  omnifair::bench::Run(reporter);
  return omnifair::bench::FinishBench(reporter);
}
