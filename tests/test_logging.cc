#include "util/logging.h"

#include "linalg/matrix.h"

#include <gtest/gtest.h>

namespace omnifair {
namespace {

TEST(LoggingTest, LogLevelRoundTrip) {
  const LogSeverity original = GetLogLevel();
  SetLogLevel(LogSeverity::kError);
  EXPECT_EQ(GetLogLevel(), LogSeverity::kError);
  SetLogLevel(LogSeverity::kDebug);
  EXPECT_EQ(GetLogLevel(), LogSeverity::kDebug);
  SetLogLevel(original);
}

TEST(LoggingTest, SuppressedMessagesDoNotCrash) {
  const LogSeverity original = GetLogLevel();
  SetLogLevel(LogSeverity::kError);
  OF_LOG(Info) << "this is filtered out";
  OF_LOG(Warning) << "so is this";
  SetLogLevel(original);
}

TEST(LoggingTest, PassingChecksAreSilent) {
  OF_CHECK(true) << "never evaluated";
  OF_CHECK_EQ(1, 1);
  OF_CHECK_LT(1, 2);
  OF_CHECK_GE(2.0, 2.0);
}

using LoggingDeathTest = ::testing::Test;

TEST(LoggingDeathTest, FailedCheckAborts) {
  EXPECT_DEATH({ OF_CHECK(false) << "boom"; }, "Check failed");
}

TEST(LoggingDeathTest, FailedCheckEqReportsValues) {
  EXPECT_DEATH({ OF_CHECK_EQ(3, 4) << "mismatch"; }, "3 vs 4");
}

TEST(LoggingDeathTest, MatrixDimensionMisuseAborts) {
  EXPECT_DEATH(
      {
        Matrix m(2, 2);
        (void)m.MatVec({1.0, 2.0, 3.0});  // wrong length
      },
      "Check failed");
}

}  // namespace
}  // namespace omnifair
