#include "linalg/matrix.h"

#include "util/logging.h"

namespace omnifair {

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows)
    : rows_(rows.size()), cols_(0) {
  for (const auto& row : rows) {
    if (cols_ == 0) cols_ = row.size();
    OF_CHECK_EQ(row.size(), cols_) << "ragged initializer rows";
    data_.insert(data_.end(), row.begin(), row.end());
  }
}

std::vector<double> Matrix::RowVector(size_t r) const {
  OF_CHECK_LT(r, rows_);
  return std::vector<double>(Row(r), Row(r) + cols_);
}

std::vector<double> Matrix::ColVector(size_t c) const {
  OF_CHECK_LT(c, cols_);
  std::vector<double> col(rows_);
  for (size_t r = 0; r < rows_; ++r) col[r] = (*this)(r, c);
  return col;
}

Matrix Matrix::SelectRows(const std::vector<size_t>& indices) const {
  Matrix out(indices.size(), cols_);
  for (size_t i = 0; i < indices.size(); ++i) {
    OF_CHECK_LT(indices[i], rows_);
    const double* src = Row(indices[i]);
    double* dst = out.Row(i);
    for (size_t c = 0; c < cols_; ++c) dst[c] = src[c];
  }
  return out;
}

void Matrix::AppendRow(const std::vector<double>& row) {
  if (rows_ == 0 && cols_ == 0) cols_ = row.size();
  OF_CHECK_EQ(row.size(), cols_) << "row width mismatch";
  data_.insert(data_.end(), row.begin(), row.end());
  ++rows_;
}

std::vector<double> Matrix::MatVec(const std::vector<double>& x) const {
  OF_CHECK_EQ(x.size(), cols_);
  std::vector<double> y(rows_, 0.0);
  for (size_t r = 0; r < rows_; ++r) {
    const double* row = Row(r);
    double acc = 0.0;
    for (size_t c = 0; c < cols_; ++c) acc += row[c] * x[c];
    y[r] = acc;
  }
  return y;
}

std::vector<double> Matrix::TransposeMatVec(const std::vector<double>& x) const {
  OF_CHECK_EQ(x.size(), rows_);
  std::vector<double> y(cols_, 0.0);
  for (size_t r = 0; r < rows_; ++r) {
    const double* row = Row(r);
    const double xr = x[r];
    for (size_t c = 0; c < cols_; ++c) y[c] += row[c] * xr;
  }
  return y;
}

}  // namespace omnifair
