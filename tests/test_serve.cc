// Concurrency suite for the bundle serving layer: batched Handle parity with
// the offline model, per-group fairness stats, bounded-queue admission
// control under a submit storm, and serving telemetry reaching the
// Prometheus exporter.

#include "serve/server.h"

#include <atomic>
#include <condition_variable>
#include <cstdio>
#include <future>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "ml/bundle.h"
#include "ml/trainer_registry.h"
#include "tests/testing_fairness.h"
#include "util/metrics_export.h"
#include "util/telemetry.h"

namespace omnifair {
namespace {

using testing_fairness::MakeBiasedDataset;

std::string TempPath(const std::string& name) {
  const std::string path = ::testing::TempDir() + "/" + name;
  std::remove(path.c_str());
  return path;
}

long long CounterValue(const std::string& name) {
  return MetricsRegistry::Global().GetCounter(name)->Value();
}

class ServeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SetTelemetryLevel(TelemetryLevel::kCounters);
    dataset_ = MakeBiasedDataset(600, 0.8, 0.2, /*seed=*/5);
    encoder_.Fit(dataset_);
    const Matrix X = encoder_.Transform(dataset_);
    std::vector<double> weights(dataset_.NumRows(), 1.0);
    model_ = MakeTrainer("xgb", 9)->Fit(X, dataset_.labels(), weights);
    ASSERT_NE(model_, nullptr);
    path_ = TempPath("serve.ofb");
    BundleMeta meta;
    meta.sensitive_attribute = "grp";
    ASSERT_TRUE(WriteBundle(*model_, encoder_, meta, path_).ok());
    auto bundle = ModelBundle::Open(path_);
    ASSERT_TRUE(bundle.ok()) << bundle.status().ToString();
    bundle_ = *bundle;
  }
  void TearDown() override { SetTelemetryLevel(TelemetryLevel::kOff); }

  Dataset dataset_;
  FeatureEncoder encoder_;
  std::unique_ptr<Classifier> model_;
  std::string path_;
  std::shared_ptr<const ModelBundle> bundle_;
};

TEST_F(ServeTest, HandleMatchesOfflineModelAtEveryThreadCount) {
  auto request = MakeRequest(*bundle_, dataset_, "grp");
  ASSERT_TRUE(request.ok()) << request.status().ToString();
  const std::vector<double> want =
      model_->PredictProba(encoder_.Transform(dataset_));
  for (int threads : {1, 4}) {
    ServerOptions options;
    options.num_threads = threads;
    BundleServer server(bundle_, options);
    auto response = server.Handle(*request);
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    ASSERT_EQ(response->scores.size(), want.size());
    for (size_t i = 0; i < want.size(); ++i) {
      EXPECT_EQ(response->scores[i], want[i]) << "row " << i;
      EXPECT_EQ(response->labels[i], want[i] >= 0.5 ? 1 : 0);
    }
  }
}

TEST_F(ServeTest, GroupStatsAggregateCorrectly) {
  auto request = MakeRequest(*bundle_, dataset_, "grp");
  ASSERT_TRUE(request.ok());
  BundleServer server(bundle_);
  auto response = server.Handle(*request);
  ASSERT_TRUE(response.ok());
  ASSERT_EQ(response->groups.size(), 2u);
  long long rows = 0;
  for (const GroupStats& g : response->groups) {
    // Recompute the group's positive rate from the per-row outputs.
    long long positives = 0;
    long long members = 0;
    for (size_t i = 0; i < request->group_ids.size(); ++i) {
      if (request->group_ids[i] != g.group_id) continue;
      ++members;
      positives += response->labels[i];
    }
    EXPECT_EQ(g.rows, members);
    EXPECT_DOUBLE_EQ(
        g.positive_rate,
        static_cast<double>(positives) / static_cast<double>(members));
    rows += g.rows;
  }
  EXPECT_EQ(rows, static_cast<long long>(dataset_.NumRows()));
  EXPECT_DOUBLE_EQ(response->max_gap,
                   response->groups[0].positive_rate >
                           response->groups[1].positive_rate
                       ? response->groups[0].positive_rate -
                             response->groups[1].positive_rate
                       : response->groups[1].positive_rate -
                             response->groups[0].positive_rate);
  // The biased dataset (0.8 vs 0.2 base rates) must show a visible gap.
  EXPECT_GT(response->max_gap, 0.1);
}

TEST_F(ServeTest, RejectsMalformedRequests) {
  BundleServer server(bundle_);
  PredictRequest narrow;
  narrow.features = Matrix(4, 2, 0.0);
  EXPECT_EQ(server.Handle(narrow).status().code(),
            StatusCode::kInvalidArgument);

  auto request = MakeRequest(*bundle_, dataset_, "grp");
  ASSERT_TRUE(request.ok());
  request->group_ids.pop_back();  // length mismatch
  EXPECT_EQ(server.Handle(*request).status().code(),
            StatusCode::kInvalidArgument);

  EXPECT_EQ(MakeRequest(*bundle_, dataset_, "no_such_column").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(MakeRequest(*bundle_, dataset_, "score").status().code(),
            StatusCode::kInvalidArgument);  // numeric column
}

TEST_F(ServeTest, AdmissionControlShedsDeterministically) {
  // Two requests may hold the server; a gate parks the first inside Handle
  // (the second may stay queued behind it on a single-worker pool — queued
  // requests count as in flight too) so the third submit must be shed with
  // kUnavailable.
  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  std::atomic<int> parked{0};
  ServerOptions options;
  options.max_in_flight = 2;
  options.testing_handle_hook = [&] {
    parked.fetch_add(1);
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return release; });
  };
  BundleServer server(bundle_, options);
  auto request = MakeRequest(*bundle_, dataset_, "");
  ASSERT_TRUE(request.ok());

  const long long rejected_before = CounterValue("serve.rejected");
  auto first = server.Submit(*request);
  auto second = server.Submit(*request);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  while (parked.load() < 1) std::this_thread::yield();

  auto third = server.Submit(*request);
  ASSERT_FALSE(third.ok());
  EXPECT_EQ(third.status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(CounterValue("serve.rejected"), rejected_before + 1);

  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  cv.notify_all();
  EXPECT_TRUE(first->get().ok());
  EXPECT_TRUE(second->get().ok());
  EXPECT_EQ(server.in_flight(), 0);
}

TEST_F(ServeTest, SubmitStormAccountsForEveryRequest) {
  ServerOptions options;
  options.max_in_flight = 4;
  BundleServer server(bundle_, options);
  auto request = MakeRequest(*bundle_, dataset_, "grp");
  ASSERT_TRUE(request.ok());

  const long long rejected_before = CounterValue("serve.rejected");
  constexpr int kOffered = 64;
  int completed = 0;
  int shed = 0;
  std::vector<std::future<Result<PredictResponse>>> pending;
  for (int i = 0; i < kOffered; ++i) {
    auto submitted = server.Submit(*request);
    if (submitted.ok()) {
      pending.push_back(std::move(*submitted));
    } else {
      EXPECT_EQ(submitted.status().code(), StatusCode::kUnavailable);
      ++shed;
    }
  }
  for (auto& f : pending) {
    auto response = f.get();
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    ++completed;
  }
  EXPECT_EQ(completed + shed, kOffered);
  EXPECT_EQ(CounterValue("serve.rejected"), rejected_before + shed);
  EXPECT_EQ(server.in_flight(), 0);
}

TEST_F(ServeTest, DestructorDrainsInFlightRequests) {
  auto request = MakeRequest(*bundle_, dataset_, "");
  ASSERT_TRUE(request.ok());
  const long long requests_before = CounterValue("serve.requests");
  int accepted = 0;
  {
    ServerOptions options;
    options.max_in_flight = 8;
    BundleServer server(bundle_, options);
    for (int i = 0; i < 8; ++i) {
      // Futures are dropped on purpose: destruction must still wait for
      // every admitted request instead of racing the pool tasks (a
      // use-after-free that ASan/TSan would flag).
      if (server.Submit(*request).ok()) ++accepted;
    }
  }
  EXPECT_GT(accepted, 0);
  // The drain happens-before destruction, so every accepted request has
  // finished Handle (and its counter bump) by now.
  EXPECT_EQ(CounterValue("serve.requests"), requests_before + accepted);
}

TEST_F(ServeTest, QueueDepthGaugeReturnsToZeroAfterDrain) {
  BundleServer server(bundle_);
  auto request = MakeRequest(*bundle_, dataset_, "");
  ASSERT_TRUE(request.ok());
  auto submitted = server.Submit(*request);
  ASSERT_TRUE(submitted.ok());
  ASSERT_TRUE(submitted->get().ok());
  // The future is fulfilled after the task's completion-side gauge update,
  // so with a single request the idle depth reads deterministically.
  EXPECT_EQ(MetricsRegistry::Global().GetGauge("serve.queue_depth")->Value(),
            0.0);
}

TEST_F(ServeTest, ServingTelemetryReachesTheExporters) {
  BundleServer server(bundle_);
  auto request = MakeRequest(*bundle_, dataset_, "");
  ASSERT_TRUE(request.ok());
  const long long requests_before = CounterValue("serve.requests");
  const long long rows_before = CounterValue("serve.rows");
  ASSERT_TRUE(server.Handle(*request).ok());
  EXPECT_EQ(CounterValue("serve.requests"), requests_before + 1);
  EXPECT_EQ(CounterValue("serve.rows"),
            rows_before + static_cast<long long>(dataset_.NumRows()));
  const std::string text =
      PrometheusText(MetricsRegistry::Global().Snapshot());
  EXPECT_NE(text.find("omnifair_serve_request_us"), std::string::npos);
  EXPECT_NE(text.find("omnifair_serve_requests"), std::string::npos);
}

}  // namespace
}  // namespace omnifair
