#include "util/random.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include <gtest/gtest.h>

namespace omnifair {
namespace {

TEST(RngTest, DeterministicGivenSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    equal += (a.NextUint64() == b.NextUint64());
  }
  EXPECT_LT(equal, 2);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, NextDoubleMeanNearHalf) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.NextDouble();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, NextBoundedInRange) {
  Rng rng(13);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
}

TEST(RngTest, NextBoundedZeroBound) {
  Rng rng(13);
  EXPECT_EQ(rng.NextBounded(0), 0u);
}

TEST(RngTest, NextBoundedCoversAllValues) {
  Rng rng(17);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.NextBounded(10));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(RngTest, NextUniformRange) {
  Rng rng(19);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.NextUniform(-3.0, 5.0);
    EXPECT_GE(x, -3.0);
    EXPECT_LT(x, 5.0);
  }
}

TEST(RngTest, GaussianMoments) {
  Rng rng(23);
  const int n = 200000;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.NextGaussian();
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.02);
}

TEST(RngTest, GaussianWithMeanAndStddev) {
  Rng rng(29);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.NextGaussian(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.05);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(31);
  const int n = 100000;
  int hits = 0;
  for (int i = 0; i < n; ++i) hits += rng.NextBernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, CategoricalRespectsWeights) {
  Rng rng(37);
  const std::vector<double> weights = {1.0, 3.0, 6.0};
  std::vector<int> counts(3, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.NextCategorical(weights)];
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.1, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.3, 0.01);
  EXPECT_NEAR(counts[2] / static_cast<double>(n), 0.6, 0.01);
}

TEST(RngTest, CategoricalZeroWeightNeverDrawn) {
  Rng rng(41);
  const std::vector<double> weights = {0.0, 1.0, 0.0};
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(rng.NextCategorical(weights), 1u);
  }
}

TEST(RngTest, PermutationIsValid) {
  Rng rng(43);
  const std::vector<size_t> perm = rng.Permutation(100);
  ASSERT_EQ(perm.size(), 100u);
  std::vector<size_t> sorted = perm;
  std::sort(sorted.begin(), sorted.end());
  for (size_t i = 0; i < 100; ++i) EXPECT_EQ(sorted[i], i);
}

TEST(RngTest, PermutationShuffles) {
  Rng rng(47);
  const std::vector<size_t> perm = rng.Permutation(100);
  size_t fixed_points = 0;
  for (size_t i = 0; i < perm.size(); ++i) fixed_points += (perm[i] == i);
  EXPECT_LT(fixed_points, 10u);
}

TEST(RngTest, PermutationEmpty) {
  Rng rng(53);
  EXPECT_TRUE(rng.Permutation(0).empty());
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng parent(59);
  Rng child = parent.Fork();
  // The child stream differs from the parent continuation.
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += (parent.NextUint64() == child.NextUint64());
  EXPECT_LT(equal, 2);
}

}  // namespace
}  // namespace omnifair
