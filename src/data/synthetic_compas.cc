#include "data/datasets.h"

namespace omnifair {

// Matches ProPublica's two-year recidivism cohort: African-American
// defendants are the majority group and carry a higher observed recidivism
// base rate; priors and juvenile counts are the strongest predictors and are
// themselves group-correlated (so an unconstrained model shows an SP
// disparity around 0.2 between African-American and Caucasian, as in the
// paper's Table 7 baseline row).
synthetic::Schema MakeCompasSchema() {
  synthetic::Schema schema;
  schema.dataset_name = "compas";
  schema.sensitive_attribute = "race";
  schema.label_name = "two_year_recid";
  schema.default_num_rows = 11001;
  schema.groups = {
      {"African-American", 0.51, 0.53},
      {"Caucasian", 0.34, 0.36},
      {"Hispanic", 0.08, 0.34},
      {"Other", 0.07, 0.33},
  };

  // Age: younger defendants re-offend more; African-American cohort skews
  // slightly younger in the ProPublica data.
  schema.numeric_features.push_back({.name = "age",
                                     .base_mean = 36.0,
                                     .label_shift = -5.0,
                                     .noise_sd = 10.0,
                                     .group_shift = {-2.0, 1.5, 0.0, 0.5},
                                     .min_value = 18.0,
                                     .max_value = 90.0,
                                     .round_to_int = true});
  schema.numeric_features.push_back({.name = "priors_count",
                                     .base_mean = 1.2,
                                     .label_shift = 3.2,
                                     .noise_sd = 2.6,
                                     .group_shift = {0.9, -0.4, -0.3, -0.3},
                                     .min_value = 0.0,
                                     .max_value = 38.0,
                                     .round_to_int = true});
  schema.numeric_features.push_back({.name = "juv_fel_count",
                                     .base_mean = 0.02,
                                     .label_shift = 0.25,
                                     .noise_sd = 0.45,
                                     .group_shift = {0.08, -0.04, -0.02, -0.02},
                                     .min_value = 0.0,
                                     .max_value = 10.0,
                                     .round_to_int = true});
  schema.numeric_features.push_back({.name = "juv_misd_count",
                                     .base_mean = 0.03,
                                     .label_shift = 0.3,
                                     .noise_sd = 0.5,
                                     .group_shift = {0.06, -0.03, -0.02, -0.01},
                                     .min_value = 0.0,
                                     .max_value = 12.0,
                                     .round_to_int = true});
  schema.numeric_features.push_back({.name = "juv_other_count",
                                     .base_mean = 0.06,
                                     .label_shift = 0.35,
                                     .noise_sd = 0.6,
                                     .group_shift = {0.05, -0.03, -0.01, -0.01},
                                     .min_value = 0.0,
                                     .max_value = 15.0,
                                     .round_to_int = true});
  // Days screened before arrest: weak noise feature.
  schema.numeric_features.push_back({.name = "days_b_screening_arrest",
                                     .base_mean = 2.0,
                                     .label_shift = 0.4,
                                     .noise_sd = 8.0,
                                     .min_value = -30.0,
                                     .max_value = 30.0,
                                     .round_to_int = true});

  schema.categorical_features.push_back(
      {.name = "sex",
       .categories = {"Male", "Female"},
       .weights_y0 = {0.76, 0.24},
       .weights_y1 = {0.85, 0.15}});
  schema.categorical_features.push_back(
      {.name = "c_charge_degree",
       .categories = {"F", "M"},
       .weights_y0 = {0.60, 0.40},
       .weights_y1 = {0.70, 0.30}});
  schema.categorical_features.push_back(
      {.name = "age_cat",
       .categories = {"Less than 25", "25 - 45", "Greater than 45"},
       .weights_y0 = {0.17, 0.55, 0.28},
       .weights_y1 = {0.30, 0.55, 0.15}});

  return schema;
}

Dataset MakeCompasDataset(const SyntheticOptions& options) {
  return synthetic::Generate(MakeCompasSchema(), options);
}

}  // namespace omnifair
