#include "core/weights.h"

#include <cmath>

#include <gtest/gtest.h>

#include "tests/testing_fairness.h"

namespace omnifair {
namespace {

using testing_fairness::MakeBiasedDataset;

struct WeightsFixture {
  Dataset d;
  std::vector<ConstraintSpec> constraints;
  GroupMap groups;
  size_t n;

  explicit WeightsFixture(const std::string& metric, uint64_t seed = 1,
                          double epsilon = 0.03)
      : d(MakeBiasedDataset(240, 0.65, 0.35, seed)) {
    const FairnessSpec spec = MakeSpec(GroupByAttribute("grp"), metric, epsilon);
    auto induced = InduceConstraints(spec, d);
    EXPECT_TRUE(induced.ok());
    constraints = *induced;
    groups = GroupByAttribute("grp")(d);
    n = d.NumRows();
  }
};

TEST(WeightsTest, LambdaZeroGivesUnitWeights) {
  WeightsFixture fx("sp");
  const WeightComputer computer(fx.constraints, fx.d);
  const std::vector<double> weights = computer.Compute(0.0, nullptr);
  for (double w : weights) EXPECT_DOUBLE_EQ(w, 1.0);
}

TEST(WeightsTest, SpWeightsMatchTable3) {
  // Table 3 row SP: w|y=0,g1 = 1 - lambda*N/|g1|, w|y=1,g1 = 1 + lambda*N/|g1|,
  //                 w|y=0,g2 = 1 + lambda*N/|g2|, w|y=1,g2 = 1 - lambda*N/|g2|.
  WeightsFixture fx("sp");
  const double lambda = 0.001;  // small so no clipping
  const WeightComputer computer(fx.constraints, fx.d);
  const std::vector<double> weights = computer.Compute(lambda, nullptr);
  const double n = static_cast<double>(fx.n);
  const double g1 = static_cast<double>(fx.groups.at("a").size());
  const double g2 = static_cast<double>(fx.groups.at("b").size());
  for (size_t i : fx.groups.at("a")) {
    const double expected =
        fx.d.Label(i) == 1 ? 1.0 + lambda * n / g1 : 1.0 - lambda * n / g1;
    EXPECT_NEAR(weights[i], expected, 1e-12);
  }
  for (size_t i : fx.groups.at("b")) {
    const double expected =
        fx.d.Label(i) == 1 ? 1.0 - lambda * n / g2 : 1.0 + lambda * n / g2;
    EXPECT_NEAR(weights[i], expected, 1e-12);
  }
}

TEST(WeightsTest, MrWeightsMatchTable3) {
  // Table 3 row MR (expressed as accuracy): w|g1 = 1 + lambda*N/|g1| for
  // both labels; w|g2 = 1 - lambda*N/|g2|.
  WeightsFixture fx("mr");
  const double lambda = 0.002;
  const WeightComputer computer(fx.constraints, fx.d);
  const std::vector<double> weights = computer.Compute(lambda, nullptr);
  const double n = static_cast<double>(fx.n);
  const double g1 = static_cast<double>(fx.groups.at("a").size());
  const double g2 = static_cast<double>(fx.groups.at("b").size());
  for (size_t i : fx.groups.at("a")) {
    EXPECT_NEAR(weights[i], 1.0 + lambda * n / g1, 1e-12);
  }
  for (size_t i : fx.groups.at("b")) {
    EXPECT_NEAR(weights[i], 1.0 - lambda * n / g2, 1e-12);
  }
}

TEST(WeightsTest, FnrWeightsTouchOnlyPositives) {
  // FNR coefficients live on y=1 rows only; y=0 rows keep weight 1.
  WeightsFixture fx("fnr");
  const double lambda = 0.001;
  const WeightComputer computer(fx.constraints, fx.d);
  const std::vector<double> weights = computer.Compute(lambda, nullptr);
  size_t positives_g1 = 0;
  for (size_t i : fx.groups.at("a")) positives_g1 += (fx.d.Label(i) == 1);
  const double n = static_cast<double>(fx.n);
  for (size_t i : fx.groups.at("a")) {
    if (fx.d.Label(i) == 0) {
      EXPECT_DOUBLE_EQ(weights[i], 1.0);
    } else {
      // Our FNR metric is the true rate (c_i = -1/|y=1|), so
      // w = 1 - lambda*N/|{y=1, g1}| on g1 positives.
      EXPECT_NEAR(weights[i],
                  1.0 - lambda * n / static_cast<double>(positives_g1), 1e-12);
    }
  }
}

TEST(WeightsTest, FdrWeightsUsePredictions) {
  WeightsFixture fx("fdr");
  const WeightComputer computer(fx.constraints, fx.d);
  EXPECT_TRUE(computer.DependsOnPredictions());

  std::vector<int> predictions(fx.n);
  for (size_t i = 0; i < fx.n; ++i) predictions[i] = static_cast<int>(i % 2);
  const double lambda = 0.0005;
  const std::vector<double> weights = computer.Compute(lambda, &predictions);
  size_t predicted_positive_g1 = 0;
  for (size_t i : fx.groups.at("a")) predicted_positive_g1 += (predictions[i] == 1);
  const double n = static_cast<double>(fx.n);
  for (size_t i : fx.groups.at("a")) {
    if (fx.d.Label(i) == 0) {
      EXPECT_DOUBLE_EQ(weights[i], 1.0);
    } else {
      EXPECT_NEAR(
          weights[i],
          1.0 - lambda * n / static_cast<double>(predicted_positive_g1), 1e-12);
    }
  }
}

TEST(WeightsTest, NegativeWeightsClippedToZero) {
  WeightsFixture fx("sp");
  const WeightComputer computer(fx.constraints, fx.d);
  const std::vector<double> weights = computer.Compute(100.0, nullptr);
  for (double w : weights) EXPECT_GE(w, 0.0);
  // Something must actually have been clipped at this extreme lambda.
  size_t zeros = 0;
  for (double w : weights) zeros += (w == 0.0);
  EXPECT_GT(zeros, 0u);
}

TEST(WeightsTest, MultiConstraintWeightsAreAdditive) {
  const Dataset d = MakeBiasedDataset(240, 0.65, 0.35, 7);
  const std::vector<FairnessSpec> specs = {
      MakeSpec(GroupByAttribute("grp"), "sp", 0.03),
      MakeSpec(GroupByAttribute("grp"), "mr", 0.03),
  };
  auto constraints = InduceConstraints(specs, d);
  ASSERT_TRUE(constraints.ok());
  const WeightComputer both(*constraints, d);
  const WeightComputer sp_only({(*constraints)[0]}, d);
  const WeightComputer mr_only({(*constraints)[1]}, d);

  const double l1 = 0.0012;
  const double l2 = 0.0008;
  const std::vector<double> w_both = both.Compute({l1, l2}, nullptr);
  const std::vector<double> w_sp = sp_only.Compute(l1, nullptr);
  const std::vector<double> w_mr = mr_only.Compute(l2, nullptr);
  for (size_t i = 0; i < d.NumRows(); ++i) {
    EXPECT_NEAR(w_both[i], w_sp[i] + w_mr[i] - 1.0, 1e-12);
  }
}

TEST(WeightsTest, OverlappingGroupsAccumulateBothTerms) {
  // Two overlapping predicate groups; a member of both gets both deltas.
  Dataset d;
  Column x = Column::Numeric("x");
  for (int i = 0; i < 8; ++i) x.AppendNumeric(i);
  d.AddColumn(std::move(x));
  d.SetLabels({1, 1, 1, 1, 0, 0, 0, 0});

  FairnessSpec spec;
  spec.grouping = GroupByPredicates(
      {{"low", [](const Dataset& ds, size_t i) {
          return ds.ColumnByName("x").NumericValue(i) < 6.0;
        }},
       {"high", [](const Dataset& ds, size_t i) {
          return ds.ColumnByName("x").NumericValue(i) >= 2.0;
        }}});
  spec.metric = MakeMetricByName("mr");
  spec.epsilon = 0.05;
  auto constraints = InduceConstraints(spec, d);
  ASSERT_TRUE(constraints.ok());

  const WeightComputer computer(*constraints, d);
  const double lambda = 0.01;
  const std::vector<double> weights = computer.Compute(lambda, nullptr);
  const double n = 8.0;
  // "high" is group1 (alphabetical), size 6; "low" is group2, size 6.
  // Row 0: only "low" -> 1 - lambda*N/6. Row 7: only "high" -> 1 + lambda*N/6.
  // Rows 2..5: both -> 1 + lambda*N/6 - lambda*N/6 = 1.
  EXPECT_NEAR(weights[0], 1.0 - lambda * n / 6.0, 1e-12);
  EXPECT_NEAR(weights[7], 1.0 + lambda * n / 6.0, 1e-12);
  EXPECT_NEAR(weights[3], 1.0, 1e-12);
}

}  // namespace
}  // namespace omnifair
