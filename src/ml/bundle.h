#ifndef OMNIFAIR_ML_BUNDLE_H_
#define OMNIFAIR_ML_BUNDLE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "data/encoder.h"
#include "ml/classifier.h"
#include "util/status.h"

namespace omnifair {

// ---------------------------------------------------------------------------
// Versioned binary model bundles (DESIGN.md §15).
//
// A bundle is the deployment artifact of a trained model: one file holding
// the classifier's parameters as mmap-friendly flat arrays, the fitted
// feature encoder (so raw rows can be encoded at serve time), and the
// fairness metadata (λ vector, satisfied flag, metric/sensitive-attribute
// labels). Wire layout:
//
//   [header 32B]  magic "OFBD" | version | flags | section count | file size
//   [section table]  per section: name, dtype, absolute offset, byte size
//   [payloads]    each starting on a 64-byte boundary, zero-padded between
//   [trailer 4B]  CRC-32 over every preceding byte
//
// Numeric payloads are raw little-endian arrays (f64 / i32 / u64) aligned
// for the simd kernels, so loading memory-maps the file and aliases the
// arrays in place — no parse, no copy. Tree ensembles are re-laid out
// breadth-first into struct-of-arrays node tables (`feature[]`,
// `threshold[]`, `left_child[]`, `leaf_value[]`; the right child is always
// `left_child + 1` by BFS construction) for cache-linear traversal.
//
// The reader validates magic/version/declared size before trusting anything,
// checks the CRC over the whole image, and bounds-checks the section table
// and every node table; malformed input yields typed kDataLoss /
// kInvalidArgument statuses naming the offending byte offset, never UB.
// ---------------------------------------------------------------------------

/// Bundle file magic: the bytes 'O','F','B','D' read as a little-endian u32.
inline constexpr uint32_t kBundleMagic = 0x4442464Fu;
/// Current (and maximum readable) bundle codec version.
inline constexpr uint32_t kBundleVersion = 1;
/// Payload alignment: one cache line, and enough for any simd vector width.
inline constexpr uint64_t kBundleAlign = 64;

/// Element type of a bundle section payload.
enum class BundleDtype : uint8_t {
  kBytes = 0,  ///< opaque bytes (meta blobs, the encoder spec)
  kF64 = 1,    ///< raw little-endian IEEE-754 doubles
  kI32 = 2,    ///< raw little-endian int32
  kU64 = 3,    ///< raw little-endian uint64
};

/// One section-table entry (as surfaced by `bundle inspect` and tests).
struct BundleSectionInfo {
  std::string name;
  BundleDtype dtype = BundleDtype::kBytes;
  uint64_t offset = 0;  ///< absolute file offset of the payload
  uint64_t size = 0;    ///< payload bytes
};

/// Model-level metadata carried alongside the weights so a bundle is
/// auditable on raw rows without the original training run.
struct BundleMeta {
  std::string family;  ///< Classifier::Name() of the packed model
  std::vector<double> lambdas;
  bool satisfied = false;
  double val_accuracy = 0.0;
  /// Optional fairness-declaration labels ("" / 0 when not provided).
  std::string metric;
  std::string sensitive_attribute;
  double epsilon = 0.0;
  /// Encoded feature dimensionality (written from encoder.NumFeatures();
  /// used to bound-check tree feature indices and weight shapes on load).
  uint64_t num_features = 0;
};

/// Serializes `model` + `encoder` + `meta` into a bundle at `path`
/// (temp file + fsync + atomic rename, so a published bundle is durable).
/// Supported families: logistic_regression,
/// naive_bayes, decision_tree, random_forest, gbdt, mlp; anything else
/// (e.g. baseline ensembles) fails with kUnsupported. An ensemble member
/// that is not a decision tree, or a tree with no nodes, fails with
/// kInvalidArgument.
Status WriteBundle(const Classifier& model, const FeatureEncoder& encoder,
                   const BundleMeta& meta, const std::string& path);

/// Header + section table + CRC status of a bundle file, without
/// constructing a model (the `bundle inspect` surface). Fails only when the
/// file cannot be read or is not a bundle at all; a CRC mismatch is
/// reported via `crc_ok = false` so inspect can still print the table.
struct BundleInspection {
  uint32_t version = 0;
  uint32_t flags = 0;
  uint64_t file_size = 0;
  uint32_t crc_stored = 0;
  uint32_t crc_computed = 0;
  bool crc_ok = false;
  std::vector<BundleSectionInfo> sections;

  /// Fixed-width text rendering (header, section table, CRC status).
  std::string ToString() const;
};
Result<BundleInspection> InspectBundle(const std::string& path);

/// A loaded, immutable bundle. Open() memory-maps the file and every
/// numeric array is aliased directly into the mapping (zero-copy); when mmap
/// is unavailable (or disabled via OpenOptions) the file is read into one
/// owned buffer instead and the arrays alias that. Either way the bundle is
/// fully validated up front — models created from it never re-check.
///
/// Lifetime: models returned by MakeModel() share ownership of the bundle,
/// so the mapping outlives every model using it. Thread-safe after Open
/// (everything is const).
class ModelBundle : public std::enable_shared_from_this<ModelBundle> {
 public:
  struct OpenOptions {
    /// Forces the owned-buffer fallback when false (used by tests to prove
    /// mmap/no-mmap parity; also what non-POSIX builds get).
    bool allow_mmap = true;
  };

  /// Loads + validates a bundle. Typed failures: kDataLoss for truncation /
  /// CRC mismatch / short sections, kInvalidArgument for foreign files,
  /// unknown versions or malformed tables, each naming a byte offset where
  /// applicable. The FaultInjector site `io.corrupt_read` flips one payload
  /// byte after the read to exercise the CRC guard.
  static Result<std::shared_ptr<const ModelBundle>> Open(
      const std::string& path, const OpenOptions& options);
  /// Open with default options (mmap allowed).
  static Result<std::shared_ptr<const ModelBundle>> Open(
      const std::string& path);

  ~ModelBundle();
  ModelBundle(const ModelBundle&) = delete;
  ModelBundle& operator=(const ModelBundle&) = delete;

  const BundleMeta& meta() const { return meta_; }
  const FeatureEncoder& encoder() const { return encoder_; }
  const std::vector<BundleSectionInfo>& sections() const { return sections_; }
  /// True when the arrays alias a live mmap (false: owned-buffer fallback).
  bool mapped() const { return mapped_; }
  uint64_t file_size() const { return size_; }

  /// A Classifier over the in-place arrays. Predictions are bit-identical
  /// to the original model's PredictProba for every family, every Matrix
  /// storage mode and every thread count. `num_threads` mirrors the
  /// RF/GBDT chunk-parallel predict knob (1 = fully sequential).
  std::unique_ptr<Classifier> MakeModel(int num_threads = 1) const;

 private:
  friend struct BundleParser;
  ModelBundle() = default;

  const uint8_t* base() const;

  BundleMeta meta_;
  FeatureEncoder encoder_;
  std::vector<BundleSectionInfo> sections_;
  bool mapped_ = false;
  uint64_t size_ = 0;
  void* map_addr_ = nullptr;          // mmap region (mapped_ == true)
  std::vector<uint8_t> owned_;        // fallback buffer (mapped_ == false)

  // Family tag + typed views into base() resolved once at Open.
  enum class Family { kLr, kNb, kDt, kRf, kGbdt, kMlp };
  Family family_ = Family::kLr;

  struct FlatTrees {
    uint64_t num_trees = 0;
    const uint64_t* tree_offsets = nullptr;  // num_trees + 1 entries
    const int32_t* feature = nullptr;        // -1 marks a leaf
    const double* threshold = nullptr;
    const int32_t* left_child = nullptr;     // right child = left_child + 1
    const double* leaf_value = nullptr;
    double base_score = 0.0;     // gbdt only
    double learning_rate = 1.0;  // gbdt only
  };
  FlatTrees trees_;

  struct FlatLinear {
    uint64_t dims = 0;
    const double* coef = nullptr;  // lr coefficients
    double intercept = 0.0;
  };
  FlatLinear lr_;

  struct FlatMlp {
    uint64_t hidden = 0;
    uint64_t dims = 0;
    const double* w1 = nullptr;  // hidden x dims, row-major
    const double* b1 = nullptr;  // hidden
    const double* w2 = nullptr;  // hidden
    double b2 = 0.0;
  };
  FlatMlp mlp_;

  struct FlatNb {
    uint64_t dims = 0;
    double log_prior_ratio = 0.0;
    const double* mean0 = nullptr;
    const double* mean1 = nullptr;
    const double* var0 = nullptr;
    const double* var1 = nullptr;
  };
  FlatNb nb_;

  friend class FlatTreeBase;
  friend class FlatTreeModel;
  friend class FlatForestModel;
  friend class FlatGbdtModel;
  friend class FlatLrModel;
  friend class FlatMlpModel;
  friend class FlatNbModel;
};

}  // namespace omnifair

#endif  // OMNIFAIR_ML_BUNDLE_H_
