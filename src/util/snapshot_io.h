#ifndef OMNIFAIR_UTIL_SNAPSHOT_IO_H_
#define OMNIFAIR_UTIL_SNAPSHOT_IO_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "util/status.h"

namespace omnifair {

// ---------------------------------------------------------------------------
// Durable binary snapshots (DESIGN.md §12).
//
// Two layers:
//   1. BinaryWriter / BinaryReader — a little-endian byte codec for
//      primitives, strings and double vectors. Doubles round-trip bit-exact
//      (raw IEEE-754 bits), which is what makes checkpoint resume
//      bit-identical. The reader is bounds-checked everywhere: any read past
//      the end fails with a typed kDataLoss status naming the byte offset,
//      never UB.
//   2. WriteSnapshotFile / ReadSnapshotFile — a versioned file container:
//      magic/version/flags header, length-prefixed named sections, CRC32
//      trailer over everything before it. Writes are crash-safe
//      (temp file → fsync → atomic rename) and wrapped in a bounded
//      retry-with-exponential-backoff for transient errnos; reads validate
//      magic, version and CRC before any section is parsed.
// ---------------------------------------------------------------------------

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) over `size` bytes,
/// seedable for incremental use: pass the previous return value as `crc`.
uint32_t Crc32(const uint8_t* data, size_t size, uint32_t crc = 0);

/// Appends primitives to a growable little-endian byte buffer.
class BinaryWriter {
 public:
  /// Pre-sizes the buffer for `bytes` more data; avoids growth copies when
  /// the payload size is known up front (e.g. multi-MB dataset blocks).
  void Reserve(size_t bytes) { buffer_.reserve(buffer_.size() + bytes); }
  void U8(uint8_t value) { buffer_.push_back(value); }
  void U32(uint32_t value);
  void U64(uint64_t value);
  void I32(int32_t value) { U32(static_cast<uint32_t>(value)); }
  void I64(int64_t value) { U64(static_cast<uint64_t>(value)); }
  /// Raw IEEE-754 bits; bit-exact round trip.
  void F64(double value);
  /// u32 byte length + UTF-8 bytes.
  void String(const std::string& value);
  /// u64 element count + raw doubles.
  void F64Vector(const std::vector<double>& values);
  /// u64 byte length + raw bytes.
  void Bytes(const std::vector<uint8_t>& bytes);
  void RawBytes(const uint8_t* data, size_t size);

  const std::vector<uint8_t>& buffer() const { return buffer_; }
  std::vector<uint8_t> TakeBuffer() { return std::move(buffer_); }
  size_t size() const { return buffer_.size(); }

 private:
  std::vector<uint8_t> buffer_;
};

/// Bounds-checked reader over a byte span. Every accessor returns false once
/// the span is exhausted or a length prefix is implausible, and status()
/// carries a kDataLoss diagnosis with the failing byte offset; after the
/// first failure all further reads fail fast.
class BinaryReader {
 public:
  BinaryReader(const uint8_t* data, size_t size) : data_(data), size_(size) {}
  explicit BinaryReader(const std::vector<uint8_t>& bytes)
      : BinaryReader(bytes.data(), bytes.size()) {}

  bool U8(uint8_t* value);
  bool U32(uint32_t* value);
  bool U64(uint64_t* value);
  bool I32(int32_t* value);
  bool I64(int64_t* value);
  bool F64(double* value);
  bool String(std::string* value);
  bool F64Vector(std::vector<double>* values);
  bool Bytes(std::vector<uint8_t>* bytes);

  size_t offset() const { return offset_; }
  size_t remaining() const { return size_ - offset_; }
  bool exhausted() const { return offset_ >= size_; }
  /// kOk until a read failed; then kDataLoss with the failing offset.
  const Status& status() const { return status_; }

 private:
  bool Take(size_t count, const uint8_t** out);
  bool Fail(const std::string& what);

  const uint8_t* data_;
  size_t size_;
  size_t offset_ = 0;
  Status status_;
};

/// One named, length-prefixed payload inside a snapshot file.
struct SnapshotSection {
  std::string name;
  std::vector<uint8_t> payload;
};

/// Parsed snapshot container.
struct Snapshot {
  uint32_t version = 0;
  uint32_t flags = 0;
  std::vector<SnapshotSection> sections;

  /// First section with `name`, or nullptr.
  const SnapshotSection* Find(const std::string& name) const;
};

/// Bounded retry with exponential backoff for transient IO. `op` is retried
/// while it returns kUnavailable, up to `max_attempts` total attempts with
/// initial_backoff_ms doubling between them; any other status (including OK)
/// is returned immediately.
struct RetryOptions {
  int max_attempts = 4;
  double initial_backoff_ms = 2.0;
};
Status RetryIo(const RetryOptions& options, const std::function<Status()>& op);

/// write(2) loop writing all `size` bytes to `fd`. The `io.enospc` fault site
/// forces ENOSPC (kDataLoss — permanent); `io.short_write` forces one short
/// write reported as EINTR (kUnavailable — transient, so callers wrapping the
/// write in RetryIo recover). Shared by the snapshot writer and the chunked
/// dataset spill path.
Status WriteFd(int fd, const std::string& path, const uint8_t* data,
               size_t size);

/// pread(2) loop reading exactly `size` bytes at `offset`. Retries EINTR and
/// short reads (the `io.short_read` fault site truncates one call to half the
/// requested bytes, which this loop must absorb); EOF before `size` bytes
/// yields kDataLoss naming the offset.
Status PreadFull(int fd, const std::string& path, uint64_t offset,
                 uint8_t* out, size_t size);

/// Writes `size` bytes durably and atomically to `path`: temp file in the
/// same directory, fsync, atomic rename — so a crash can never expose a
/// partially written or unsynced file at the final path. Transient write
/// errors are retried per `retry`; the `io.short_write` / `io.enospc`
/// fault sites apply.
Status WriteFileAtomic(const std::string& path, const uint8_t* data,
                       size_t size, const RetryOptions& retry = {});

/// Serializes `snapshot` (version/flags/sections + CRC32 trailer) and writes
/// it durably to `path`: temp file in the same directory, fsync, atomic
/// rename. Transient write errors are retried per `retry`. Fault sites:
/// `io.short_write` forces one simulated EINTR short write (exercises the
/// retry loop), `io.enospc` forces ENOSPC (typed kDataLoss after retries
/// are exhausted — ENOSPC is not transient).
Status WriteSnapshotFile(const std::string& path, const Snapshot& snapshot,
                         const RetryOptions& retry = {});

/// Reads and validates a snapshot written by WriteSnapshotFile. Truncated,
/// bit-flipped (CRC mismatch) or foreign files yield typed statuses
/// (kDataLoss / kInvalidArgument), never UB. `max_version` rejects files
/// written by a newer codec. The `io.corrupt_read` fault site flips one
/// payload byte after the read to exercise the CRC guard.
Result<Snapshot> ReadSnapshotFile(const std::string& path, uint32_t max_version);

}  // namespace omnifair

#endif  // OMNIFAIR_UTIL_SNAPSHOT_IO_H_
