#include "util/status.h"

namespace omnifair {

std::string StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kInfeasible:
      return "INFEASIBLE";
    case StatusCode::kUnsupported:
      return "UNSUPPORTED";
    case StatusCode::kInternal:
      return "INTERNAL";
    case StatusCode::kDeadlineExceeded:
      return "DEADLINE_EXCEEDED";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  return StatusCodeToString(code_) + ": " + message_;
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

}  // namespace omnifair
