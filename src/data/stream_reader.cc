#include "data/stream_reader.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

// The fused record splitter has an AVX2 backend behind the same arch define
// + function-multiversioning scheme as the linalg kernels (linalg/simd.cc):
// no global -mavx2, baseline code everywhere else, CPU checked at runtime.
#if defined(OMNIFAIR_SIMD_X86) && (defined(__GNUC__) || defined(__clang__))
#define OMNIFAIR_HAVE_SPLIT_AVX2 1
#include <immintrin.h>
#endif

#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstring>
#include <memory>
#include <mutex>
#include <sstream>
#include <unordered_map>
#include <utility>

#include "data/chunked_dataset.h"
#include "data/csv.h"
#include "data/dataset.h"
#include "util/status.h"
#include "util/string_utils.h"
#include "util/telemetry.h"
#include "util/thread_pool.h"

namespace omnifair {

// --- CsvRecordScanner -------------------------------------------------------

void CsvRecordScanner::Feed(std::string_view chunk, const RecordFn& on_record) {
  auto emit = [&](std::string_view record) {
    // CRLF: the '\r' may have arrived in a previous chunk (it sits at the
    // end of carry_), so trim it from the assembled record, not the chunk.
    if (!record.empty() && record.back() == '\r') record.remove_suffix(1);
    on_record(record, record_offset_);
  };
  // memchr-driven scan: hop between the only two bytes that matter for
  // boundary detection ('\n' and '"') instead of branching on every
  // character. Toggling on every quote also handles the "" escape (two
  // toggles net to no change), which is all boundary detection needs.
  size_t start = 0;
  size_t i = 0;
  while (i < chunk.size()) {
    if (in_quotes_) {
      const void* quote = std::memchr(chunk.data() + i, '"', chunk.size() - i);
      if (quote == nullptr) {
        i = chunk.size();
        break;
      }
      i = static_cast<size_t>(static_cast<const char*>(quote) - chunk.data()) + 1;
      in_quotes_ = false;
      continue;
    }
    const char* base = chunk.data() + i;
    const size_t remaining = chunk.size() - i;
    const char* newline =
        static_cast<const char*>(std::memchr(base, '\n', remaining));
    const size_t before_newline =
        newline != nullptr ? static_cast<size_t>(newline - base) : remaining;
    const char* quote =
        static_cast<const char*>(std::memchr(base, '"', before_newline));
    if (quote != nullptr) {
      in_quotes_ = true;
      i = static_cast<size_t>(quote - chunk.data()) + 1;
      continue;
    }
    if (newline == nullptr) {
      i = chunk.size();
      break;
    }
    const size_t nl = static_cast<size_t>(newline - chunk.data());
    const std::string_view rest = chunk.substr(start, nl - start);
    if (carry_.empty()) {
      emit(rest);
    } else {
      carry_.append(rest.data(), rest.size());
      emit(carry_);
      carry_.clear();
    }
    record_offset_ = consumed_ + nl + 1;
    start = nl + 1;
    i = nl + 1;
  }
  if (start < chunk.size()) {
    carry_.append(chunk.data() + start, chunk.size() - start);
  }
  consumed_ += chunk.size();
}

void CsvRecordScanner::Finish(const RecordFn& on_record) {
  if (!carry_.empty()) {
    std::string_view record = carry_;
    if (!record.empty() && record.back() == '\r') record.remove_suffix(1);
    on_record(record, record_offset_);
    carry_.clear();
  }
  record_offset_ = consumed_;
  in_quotes_ = false;
}

// --- Streaming ingest -------------------------------------------------------

namespace {

/// "path: record N (byte B):" — streaming errors are seekable, matching the
/// byte-offset contract of ReadCsv (data/csv.h).
std::string StreamErrorAt(const std::string& path, uint64_t record_number,
                          uint64_t byte_offset) {
  std::ostringstream prefix;
  prefix << path << ": record " << record_number << " (byte " << byte_offset
         << "):";
  return prefix.str();
}

/// Raw text of one pending block: records are copied out of the transient
/// read chunk into an arena so parsing can run after (and concurrently with
/// the read loop's reuse of) the chunk buffer.
struct RawBlock {
  std::string arena;
  std::vector<std::pair<size_t, size_t>> spans;  // (offset, length) in arena
  std::vector<uint64_t> offsets;                 // absolute byte offsets
  std::vector<uint64_t> numbers;                 // 1-based record numbers

  size_t rows() const { return spans.size(); }
  void Clear() {
    arena.clear();
    spans.clear();
    offsets.clear();
    numbers.clear();
  }
};

/// Transparent hasher so categorical dictionary lookups can take the raw
/// cell string_view without materializing a std::string per cell.
struct TransparentStringHash {
  using is_transparent = void;
  size_t operator()(std::string_view text) const noexcept {
    return std::hash<std::string_view>{}(text);
  }
};

/// Fitted per-column model driving block parsing.
struct ColumnModel {
  std::string name;
  bool categorical = false;
  std::vector<std::string> categories;  // without the unseen sentinel
  std::unordered_map<std::string, int, TransparentStringHash, std::equal_to<>>
      code_of;

  /// Code for `cell`, or the unseen sentinel (== categories.size()). Tiny
  /// dictionaries — the common case for sensitive attributes — beat the
  /// hash with a direct scan.
  int CodeOf(std::string_view cell) const {
    if (categories.size() <= 4) {
      for (size_t i = 0; i < categories.size(); ++i) {
        if (categories[i] == cell) return static_cast<int>(i);
      }
      return static_cast<int>(categories.size());
    }
    const auto it = code_of.find(cell);
    return it != code_of.end() ? it->second
                               : static_cast<int>(categories.size());
  }
};

/// Decimal-integer fast path for numeric cells. Exact for up to 15 digits
/// (well inside double's 2^53 integer range), so the result is bit-identical
/// to from_chars. Returns false for anything else; callers fall back to
/// ParseDouble.
bool ParseSmallInt(std::string_view cell, double* out) {
  size_t i = 0;
  bool negative = false;
  if (!cell.empty() && cell[0] == '-') {
    negative = true;
    i = 1;
  }
  if (i == cell.size() || cell.size() - i > 15) return false;
  uint64_t magnitude = 0;
  for (; i < cell.size(); ++i) {
    const unsigned digit = static_cast<unsigned>(cell[i]) - '0';
    if (digit > 9) return false;
    magnitude = magnitude * 10 + digit;
  }
  *out = negative ? -static_cast<double>(magnitude)
                  : static_cast<double>(magnitude);
  return true;
}

/// Precomputed per-CSV-column encode step mirroring the fitted encoder's
/// plans: where the column's values land in the packed block streams
/// (numeric floats, categorical u16 codes) and how they get there. Lets
/// blocks encode straight from raw cells — bit-identical after densify to
/// FeatureEncoder::Transform — with no intermediate Dataset or dense matrix.
struct ColumnEncode {
  bool in_features = false;  // false: dropped column (values still validated)
  size_t compact = 0;        // slot in the packed per-row float/code stream
  bool standardize = false;
  double mean = 0.0;
  double stddev = 1.0;
};

/// Outcome of the fused single-pass record split.
enum class SplitOutcome {
  kOk,        ///< exactly ncols quote-free cells filled
  kQuote,     ///< a '"' was seen: caller must use the full CSV splitter
  kBadCount,  ///< field count mismatch (may hide quotes past the overflow
              ///< point, so callers re-split with the full CSV splitter)
};

/// Scalar fused split: one quote scan, then one delimiter walk.
SplitOutcome SplitRecordScalar(std::string_view record, char delimiter,
                               size_t ncols, std::string_view* cells) {
  if (record.find('"') != std::string_view::npos) return SplitOutcome::kQuote;
  size_t pos = 0;
  for (size_t c = 0; c + 1 < ncols; ++c) {
    const size_t next = record.find(delimiter, pos);
    if (next == std::string_view::npos) return SplitOutcome::kBadCount;
    cells[c] = record.substr(pos, next - pos);
    pos = next + 1;
  }
  if (record.find(delimiter, pos) != std::string_view::npos) {
    return SplitOutcome::kBadCount;
  }
  cells[ncols - 1] = record.substr(pos);
  return SplitOutcome::kOk;
}

#if defined(OMNIFAIR_HAVE_SPLIT_AVX2)
/// AVX2 fused split: compares 32 record bytes at a time against both the
/// delimiter and '"', then peels delimiter positions off the movemask. One
/// pass replaces the per-field memchr calls of the scalar path — on short
/// CSV fields the call overhead dominates the scan, which is what makes
/// this worth vectorizing.
__attribute__((target("avx2"))) SplitOutcome SplitRecordAvx2(
    std::string_view record, char delimiter, size_t ncols,
    std::string_view* cells) {
  const char* data = record.data();
  const size_t size = record.size();
  const __m256i vdelim = _mm256_set1_epi8(delimiter);
  const __m256i vquote = _mm256_set1_epi8('"');
  size_t cell = 0;
  size_t start = 0;
  size_t i = 0;
  for (; i + 32 <= size; i += 32) {
    const __m256i bytes =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(data + i));
    if (_mm256_movemask_epi8(_mm256_cmpeq_epi8(bytes, vquote)) != 0) {
      return SplitOutcome::kQuote;
    }
    uint32_t mask = static_cast<uint32_t>(
        _mm256_movemask_epi8(_mm256_cmpeq_epi8(bytes, vdelim)));
    while (mask != 0) {
      const size_t pos = i + static_cast<size_t>(__builtin_ctz(mask));
      mask &= mask - 1;
      if (cell + 1 >= ncols) return SplitOutcome::kBadCount;
      cells[cell++] = std::string_view(data + start, pos - start);
      start = pos + 1;
    }
  }
  for (; i < size; ++i) {
    const char ch = data[i];
    if (ch == '"') return SplitOutcome::kQuote;
    if (ch == delimiter) {
      if (cell + 1 >= ncols) return SplitOutcome::kBadCount;
      cells[cell++] = std::string_view(data + start, i - start);
      start = i + 1;
    }
  }
  if (cell + 1 != ncols) return SplitOutcome::kBadCount;
  cells[cell] = std::string_view(data + start, size - start);
  return SplitOutcome::kOk;
}
#endif  // OMNIFAIR_HAVE_SPLIT_AVX2

using SplitRecordFn = SplitOutcome (*)(std::string_view, char, size_t,
                                       std::string_view*);

SplitRecordFn ChooseSplitRecordFn() {
#if defined(OMNIFAIR_HAVE_SPLIT_AVX2)
  if (__builtin_cpu_supports("avx2")) return SplitRecordAvx2;
#endif
  return SplitRecordScalar;
}

/// Splits a record into exactly `ncols` quote-free cell views pointing into
/// the record. Backend resolved once per process; both backends produce
/// identical cells and outcomes.
SplitOutcome SplitRecord(std::string_view record, char delimiter, size_t ncols,
                         std::string_view* cells) {
  static const SplitRecordFn split_fn = ChooseSplitRecordFn();
  return split_fn(record, delimiter, ncols, cells);
}

/// Zero-copy record scan over a fully-mapped file: identical boundary
/// semantics to CsvRecordScanner (quoted newlines, CRLF, missing trailing
/// newline) but the emitted views point into the mapping, so records are
/// never copied into a carry buffer. Returns false when the file ends inside
/// an open quote (malformed; the dangling tail is not emitted and
/// *dangling_offset is set to its absolute byte offset).
bool ScanMapped(std::string_view file,
                const CsvRecordScanner::RecordFn& on_record,
                size_t* dangling_offset) {
  auto emit = [&](size_t start, size_t end_pos) {
    std::string_view record = file.substr(start, end_pos - start);
    if (!record.empty() && record.back() == '\r') record.remove_suffix(1);
    on_record(record, start);
  };
  size_t start = 0;
  size_t i = 0;
  bool in_quotes = false;
  while (i < file.size()) {
    if (in_quotes) {
      const void* quote = std::memchr(file.data() + i, '"', file.size() - i);
      if (quote == nullptr) {
        *dangling_offset = start;
        return false;
      }
      i = static_cast<size_t>(static_cast<const char*>(quote) - file.data()) + 1;
      in_quotes = false;
      continue;
    }
    const char* base = file.data() + i;
    const size_t remaining = file.size() - i;
    const char* newline =
        static_cast<const char*>(std::memchr(base, '\n', remaining));
    const size_t before_newline =
        newline != nullptr ? static_cast<size_t>(newline - base) : remaining;
    const char* quote =
        static_cast<const char*>(std::memchr(base, '"', before_newline));
    if (quote != nullptr) {
      in_quotes = true;
      i = static_cast<size_t>(quote - file.data()) + 1;
      continue;
    }
    if (newline == nullptr) break;
    const size_t nl = static_cast<size_t>(newline - file.data());
    emit(start, nl);
    start = nl + 1;
    i = start;
  }
  if (start < file.size()) emit(start, file.size());
  return true;
}

/// Per-block parse output, row-indexed so parallel workers write disjoint
/// slots (bit-identical results at any thread count).
struct ParsedBlock {
  std::vector<std::vector<double>> numeric;  // [column][row]
  std::vector<std::vector<int>> codes;       // [column][row]
  std::vector<int> labels;
};

struct FirstError {
  std::mutex mu;
  bool set = false;
  uint64_t record_number = 0;
  Status status;

  /// Keeps the earliest record's error so the reported failure is
  /// deterministic regardless of worker interleaving.
  void Consider(uint64_t number, Status status_in) {
    std::lock_guard<std::mutex> lock(mu);
    if (!set || number < record_number) {
      set = true;
      record_number = number;
      status = std::move(status_in);
    }
  }
};

class StreamIngestor {
 public:
  StreamIngestor(const std::string& csv_path, const std::string& out_path,
                 const StreamIngestOptions& options)
      : csv_path_(csv_path), out_path_(out_path), options_(options) {
    options_.encoder.float32_features = true;  // chunked-format contract
    if (options_.block_rows == 0) options_.block_rows = 65536;
    if (options_.read_chunk_bytes == 0) options_.read_chunk_bytes = 1 << 20;
  }

  Result<IngestStats> Run() {
    const int fd = ::open(csv_path_.c_str(), O_RDONLY);
    if (fd < 0) return IoError(csv_path_, "open");
    Result<IngestStats> result = RunWithFd(fd);
    if (map_base_ != nullptr) {
      ::munmap(const_cast<char*>(map_base_), map_len_);
      map_base_ = nullptr;
    }
    ::close(fd);
    return result;
  }

 private:
  Result<IngestStats> RunWithFd(int fd) {
    struct stat st {};
    if (::fstat(fd, &st) != 0) return IoError(csv_path_, "fstat");
    Status status;
    auto on_record = [&](std::string_view record, uint64_t offset) {
      if (!status.ok()) return;
      status = OnRecord(record, offset);
    };
    bool unterminated = false;
    uint64_t dangling_offset = 0;  // offset of the record an EOF-open quote is in
    CsvRecordScanner scanner;
    // Zero-copy fast path: map the whole file and stream record views
    // straight out of the mapping — no read(2) copies, no per-record arena
    // append. The mapping is file-backed and sequential-advised, so the
    // kernel reclaims the pages behind the scan; the process's own
    // allocations stay bounded by one block either way.
    if (options_.use_mmap && st.st_size > 0) {
      void* mapped = ::mmap(nullptr, static_cast<size_t>(st.st_size),
                            PROT_READ, MAP_PRIVATE, fd, 0);
      if (mapped != MAP_FAILED) {
        map_base_ = static_cast<const char*>(mapped);
        map_len_ = static_cast<size_t>(st.st_size);
        ::madvise(mapped, map_len_, MADV_SEQUENTIAL);
        stats_.chunks = 1;
        stats_.bytes_read = map_len_;
        OF_COUNTER_INC("ingest.chunks");
        size_t dangling = 0;
        unterminated = !ScanMapped(std::string_view(map_base_, map_len_),
                                   on_record, &dangling);
        dangling_offset = dangling;
        if (!status.ok()) return status;
      }
    }
    if (map_base_ == nullptr) {
      // mmap unavailable (empty file, pipe, exotic filesystem): chunked
      // read(2) fallback with records carried across chunk boundaries.
      std::vector<char> chunk(options_.read_chunk_bytes);
      for (;;) {
        const ssize_t n = ::read(fd, chunk.data(), chunk.size());
        if (n < 0) {
          if (errno == EINTR) continue;
          return IoError(csv_path_, "read");
        }
        if (n == 0) break;
        stats_.chunks += 1;
        stats_.bytes_read += static_cast<uint64_t>(n);
        OF_COUNTER_INC("ingest.chunks");
        scanner.Feed(std::string_view(chunk.data(), static_cast<size_t>(n)),
                     on_record);
        if (!status.ok()) return status;
      }
      unterminated = scanner.in_quotes();
      dangling_offset = scanner.pending_offset();
    }
    if (unterminated) {
      // Blame the record the quote opened in (never emitted), not the last
      // complete record before it.
      const uint64_t dangling_number = saw_header_ ? record_number_ + 1 : 1;
      return Status::InvalidArgument(
          StreamErrorAt(csv_path_, dangling_number, dangling_offset) +
          " unterminated quoted field at end of file");
    }
    if (map_base_ == nullptr) scanner.Finish(on_record);
    if (!status.ok()) return status;
    if (!saw_header_) {
      return Status::InvalidArgument("empty CSV file " + csv_path_);
    }
    if (pending_.rows() > 0) {
      status = FlushBlock();
      if (!status.ok()) return status;
    }
    if (!writer_initialized_) {
      // Header-only file: fitting an encoder on zero rows is meaningless.
      return Status::InvalidArgument("CSV file " + csv_path_ +
                                     " has a header but no data rows");
    }
    status = writer_->Finalize(options_.label_column, options_.group_column,
                               group_names_, encoder_text_);
    if (!status.ok()) return status;
    stats_.num_features = encoder_.NumFeatures();
    stats_.parse_seconds = parse_seconds_;
    stats_.spill_seconds = spill_seconds_;
    return stats_;
  }

  Status OnRecord(std::string_view record, uint64_t offset) {
    if (!saw_header_) {
      saw_header_ = true;
      return ParseHeader(record);
    }
    ++record_number_;
    if (StripWhitespace(record).empty()) return Status::Ok();  // blank line
    if (map_base_ != nullptr) {
      // Zero-copy: the record view points into the file mapping, which
      // outlives the pending block — store the span, skip the copy.
      pending_.spans.emplace_back(
          static_cast<size_t>(record.data() - map_base_), record.size());
    } else {
      pending_.spans.emplace_back(pending_.arena.size(), record.size());
      pending_.arena.append(record.data(), record.size());
    }
    pending_.offsets.push_back(offset);
    pending_.numbers.push_back(record_number_);
    if (pending_.rows() >= options_.block_rows) return FlushBlock();
    return Status::Ok();
  }

  /// Raw text of pending record `r` — in the file mapping (zero-copy path)
  /// or the block arena (read fallback).
  std::string_view RecordAt(size_t r) const {
    const char* base = map_base_ != nullptr ? map_base_ : pending_.arena.data();
    return std::string_view(base + pending_.spans[r].first,
                            pending_.spans[r].second);
  }

  Status ParseHeader(std::string_view record) {
    std::vector<std::string> fields;
    if (!SplitCsvRecord(record, options_.delimiter, &fields)) {
      return Status::InvalidArgument(csv_path_ +
                                     ":1: (byte 0) unterminated quoted field");
    }
    for (std::string& name : fields) name = std::string(StripWhitespace(name));
    header_ = std::move(fields);
    label_index_ = -1;
    group_index_ = -1;
    for (size_t i = 0; i < header_.size(); ++i) {
      if (header_[i] == options_.label_column) label_index_ = static_cast<int>(i);
      if (header_[i] == options_.group_column) group_index_ = static_cast<int>(i);
    }
    if (label_index_ < 0) {
      return Status::InvalidArgument("label column '" + options_.label_column +
                                     "' not found in " + csv_path_);
    }
    if (options_.group_column.empty() || group_index_ < 0) {
      return Status::InvalidArgument("group column '" + options_.group_column +
                                     "' not found in " + csv_path_);
    }
    return Status::Ok();
  }

  /// First block: infer column types + categorical dictionaries from the
  /// buffered rows, then fit the encoder on the materialized block dataset.
  Status FitFromFirstBlock() {
    const size_t rows = pending_.rows();
    columns_.resize(header_.size());
    std::vector<std::string> fields;
    // Type inference needs a serial pass over the raw cells anyway (category
    // dictionaries are order-sensitive: first appearance wins), so the first
    // block pays one extra scan; every later block parses purely in parallel.
    std::vector<std::vector<std::string>> cells(header_.size());
    for (auto& cell_col : cells) cell_col.resize(rows);
    for (size_t r = 0; r < rows; ++r) {
      const std::string_view record = RecordAt(r);
      if (!SplitCsvRecord(StripWhitespace(record), options_.delimiter, &fields)) {
        return Status::InvalidArgument(
            StreamErrorAt(csv_path_, pending_.numbers[r], pending_.offsets[r]) +
            " unterminated quoted field");
      }
      if (fields.size() != header_.size()) {
        std::ostringstream msg;
        msg << StreamErrorAt(csv_path_, pending_.numbers[r], pending_.offsets[r])
            << " expected " << header_.size() << " fields, got " << fields.size();
        return Status::InvalidArgument(msg.str());
      }
      for (size_t c = 0; c < header_.size(); ++c) {
        cells[c][r] = std::string(StripWhitespace(fields[c]));
      }
    }
    for (size_t c = 0; c < header_.size(); ++c) {
      ColumnModel& model = columns_[c];
      model.name = header_[c];
      if (static_cast<int>(c) == label_index_) continue;
      bool forced = static_cast<int>(c) == group_index_;
      for (const std::string& name : options_.force_categorical) {
        if (name == header_[c]) forced = true;
      }
      bool numeric = !forced;
      if (numeric) {
        for (const std::string& cell : cells[c]) {
          double value = 0.0;
          if (!ParseDouble(cell, &value) || !std::isfinite(value)) {
            numeric = false;
            break;
          }
        }
      }
      model.categorical = !numeric;
      if (model.categorical) {
        for (const std::string& cell : cells[c]) {
          if (model.code_of.emplace(cell, static_cast<int>(model.categories.size()))
                  .second) {
            model.categories.push_back(cell);
          }
        }
      }
    }
    group_names_ = columns_[static_cast<size_t>(group_index_)].categories;
    return Status::Ok();
  }

  /// Parses the pending raw block into row-indexed buffers on the pool.
  Status ParsePending(ParsedBlock* out) {
    const size_t rows = pending_.rows();
    const size_t ncols = header_.size();
    out->numeric.assign(ncols, {});
    out->codes.assign(ncols, {});
    out->labels.assign(rows, 0);
    for (size_t c = 0; c < ncols; ++c) {
      if (static_cast<int>(c) == label_index_) continue;
      if (columns_[c].categorical) {
        out->codes[c].assign(rows, 0);
      } else {
        out->numeric[c].assign(rows, 0.0);
      }
    }
    FirstError first_error;
    auto parse_row = [&](size_t r) {
      thread_local std::vector<std::string> fields;
      const std::string_view record = RecordAt(r);
      if (!SplitCsvRecord(StripWhitespace(record), options_.delimiter, &fields)) {
        first_error.Consider(
            pending_.numbers[r],
            Status::InvalidArgument(StreamErrorAt(csv_path_, pending_.numbers[r],
                                                  pending_.offsets[r]) +
                                    " unterminated quoted field"));
        return;
      }
      if (fields.size() != header_.size()) {
        std::ostringstream msg;
        msg << StreamErrorAt(csv_path_, pending_.numbers[r], pending_.offsets[r])
            << " expected " << header_.size() << " fields, got " << fields.size();
        first_error.Consider(pending_.numbers[r],
                             Status::InvalidArgument(msg.str()));
        return;
      }
      for (size_t c = 0; c < header_.size(); ++c) {
        const std::string cell(StripWhitespace(fields[c]));
        if (static_cast<int>(c) == label_index_) {
          if (!options_.positive_label_value.empty()) {
            out->labels[r] = cell == options_.positive_label_value ? 1 : 0;
          } else {
            double value = 0.0;
            if (!ParseDouble(cell, &value) || (value != 0.0 && value != 1.0)) {
              std::ostringstream msg;
              msg << StreamErrorAt(csv_path_, pending_.numbers[r],
                                   pending_.offsets[r])
                  << " label cell '" << cell << "' is not 0/1";
              first_error.Consider(pending_.numbers[r],
                                   Status::InvalidArgument(msg.str()));
              return;
            }
            out->labels[r] = static_cast<int>(value);
          }
        } else if (columns_[c].categorical) {
          const auto it = columns_[c].code_of.find(cell);
          // Unseen category: the sentinel code (== dictionary size) one-hots
          // to all zeros through the Transform guard, matching how a fitted
          // encoder treats unseen validation categories.
          out->codes[c][r] = it != columns_[c].code_of.end()
                                 ? it->second
                                 : static_cast<int>(columns_[c].categories.size());
        } else {
          double value = 0.0;
          if (!ParseDouble(cell, &value) || !std::isfinite(value)) {
            std::ostringstream msg;
            msg << StreamErrorAt(csv_path_, pending_.numbers[r],
                                 pending_.offsets[r])
                << " cell '" << cell << "' in numeric column '" << header_[c]
                << "' is not a finite number";
            first_error.Consider(pending_.numbers[r],
                                 Status::InvalidArgument(msg.str()));
            return;
          }
          out->numeric[c][r] = value;
        }
      }
    };
    ThreadPool::Global().ParallelFor(rows, parse_row, options_.num_threads);
    if (first_error.set) return first_error.status;
    return Status::Ok();
  }

  /// Block-0 dataset used to fit the encoder. Block 0 defines the
  /// dictionaries, so every code is in range by construction and no unseen
  /// sentinel slot is needed.
  Dataset BuildFitDataset(const ParsedBlock& parsed) const {
    const size_t rows = pending_.rows();
    Dataset block(csv_path_);
    block.set_label_name(options_.label_column);
    for (size_t c = 0; c < header_.size(); ++c) {
      if (static_cast<int>(c) == label_index_) continue;
      const ColumnModel& model = columns_[c];
      if (model.categorical) {
        Column col = Column::Categorical(model.name, model.categories);
        for (size_t r = 0; r < rows; ++r) col.AppendCode(parsed.codes[c][r]);
        block.AddColumn(std::move(col));
      } else {
        Column col = Column::Numeric(model.name);
        for (size_t r = 0; r < rows; ++r) col.AppendNumeric(parsed.numeric[c][r]);
        block.AddColumn(std::move(col));
      }
    }
    block.SetLabels(parsed.labels);
    return block;
  }

  /// Maps each CSV column to its slot in the packed block streams by walking
  /// the encoder's plans in order (plan order is column order minus the label
  /// and dropped columns, matching the layout's segment order).
  void BuildEncodeTable() {
    encode_.assign(header_.size(), ColumnEncode{});
    std::unordered_map<std::string, ColumnEncode> by_name;
    size_t float_slot = 0;
    size_t code_slot = 0;
    for (const FeatureEncoder::ColumnPlan& plan : encoder_.plans()) {
      ColumnEncode encode;
      encode.in_features = true;
      encode.standardize = options_.encoder.standardize_numeric;
      encode.mean = plan.mean;
      encode.stddev = plan.stddev;
      encode.compact =
          plan.type == ColumnType::kNumeric ? float_slot++ : code_slot++;
      by_name.emplace(plan.name, encode);
    }
    for (size_t c = 0; c < header_.size(); ++c) {
      const auto it = by_name.find(header_[c]);
      if (it != by_name.end()) encode_[c] = it->second;
    }
  }

  /// Packs block 0's parsed buffers into the on-disk streams (bit-identical
  /// after densify to FeatureEncoder::Transform on the equivalent Dataset).
  void CompactFromParsed(const ParsedBlock& parsed, CompactBlock* out) const {
    const size_t rows = pending_.rows();
    const size_t floats_per_row = layout_.FloatsPerRow();
    const size_t codes_per_row = layout_.CodesPerRow();
    out->rows = static_cast<uint64_t>(rows);
    out->labels.resize(rows);
    for (size_t r = 0; r < rows; ++r) {
      out->labels[r] = static_cast<uint8_t>(parsed.labels[r]);
    }
    const std::vector<int>& group_codes =
        parsed.codes[static_cast<size_t>(group_index_)];
    out->groups.assign(group_codes.begin(), group_codes.end());
    out->floats.assign(rows * floats_per_row, 0.0f);
    out->codes.assign(rows * codes_per_row, 0);
    for (size_t c = 0; c < header_.size(); ++c) {
      const ColumnEncode& encode = encode_[c];
      if (!encode.in_features) continue;
      if (!columns_[c].categorical) {
        const std::vector<double>& values = parsed.numeric[c];
        for (size_t r = 0; r < rows; ++r) {
          double value = values[r];
          if (encode.standardize) value = (value - encode.mean) / encode.stddev;
          out->floats[r * floats_per_row + encode.compact] =
              static_cast<float>(value);
        }
      } else {
        const std::vector<int>& codes = parsed.codes[c];
        for (size_t r = 0; r < rows; ++r) {
          out->codes[r * codes_per_row + encode.compact] =
              static_cast<uint16_t>(codes[r]);
        }
      }
    }
  }

  /// Steady-state block parse: splits each record in place (no per-cell
  /// allocation on the quote-free fast path) and encodes cells straight into
  /// the packed block streams — numeric floats and categorical u16 codes,
  /// never a dense matrix. Rows land in preassigned slots, so output stays
  /// bit-identical at any thread count.
  Status FastParseBlock(CompactBlock* out) {
    const size_t rows = pending_.rows();
    const size_t ncols = header_.size();
    const size_t floats_per_row = layout_.FloatsPerRow();
    const size_t codes_per_row = layout_.CodesPerRow();
    out->rows = static_cast<uint64_t>(rows);
    out->labels.assign(rows, 0);
    out->groups.assign(rows, 0);
    out->floats.assign(rows * floats_per_row, 0.0f);
    out->codes.assign(rows * codes_per_row, 0);
    FirstError first_error;
    auto parse_row = [&](size_t r) {
      thread_local std::vector<std::string_view> cells;
      thread_local std::vector<std::string> fields;
      cells.resize(ncols);
      const std::string_view record = RecordAt(r);
      if (SplitRecord(record, options_.delimiter, ncols, cells.data()) !=
          SplitOutcome::kOk) {
        // Slow path: quotes are present, or the plain field count was off
        // (which quotes past the overflow point can also cause). The full
        // CSV splitter settles which — and produces the cells when the
        // record is actually valid.
        if (!SplitCsvRecord(StripWhitespace(record), options_.delimiter,
                            &fields)) {
          first_error.Consider(
              pending_.numbers[r],
              Status::InvalidArgument(StreamErrorAt(csv_path_,
                                                    pending_.numbers[r],
                                                    pending_.offsets[r]) +
                                      " unterminated quoted field"));
          return;
        }
        if (fields.size() != ncols) {
          std::ostringstream msg;
          msg << StreamErrorAt(csv_path_, pending_.numbers[r], pending_.offsets[r])
              << " expected " << ncols << " fields, got " << fields.size();
          first_error.Consider(pending_.numbers[r],
                               Status::InvalidArgument(msg.str()));
          return;
        }
        for (size_t c = 0; c < ncols; ++c) cells[c] = fields[c];
      }
      float* float_row = out->floats.data() + r * floats_per_row;
      uint16_t* code_row = out->codes.data() + r * codes_per_row;
      for (size_t c = 0; c < ncols; ++c) {
        const std::string_view cell = StripWhitespace(cells[c]);
        const ColumnEncode& encode = encode_[c];
        if (static_cast<int>(c) == label_index_) {
          if (!options_.positive_label_value.empty()) {
            out->labels[r] = cell == options_.positive_label_value ? 1 : 0;
          } else if (cell == "1") {
            out->labels[r] = 1;
          } else if (cell == "0") {
            out->labels[r] = 0;
          } else {
            double value = 0.0;
            if (!ParseDouble(cell, &value) || (value != 0.0 && value != 1.0)) {
              std::ostringstream msg;
              msg << StreamErrorAt(csv_path_, pending_.numbers[r],
                                   pending_.offsets[r])
                  << " label cell '" << cell << "' is not 0/1";
              first_error.Consider(pending_.numbers[r],
                                   Status::InvalidArgument(msg.str()));
              return;
            }
            out->labels[r] = static_cast<uint8_t>(value);
          }
        } else if (columns_[c].categorical) {
          if (!encode.in_features && static_cast<int>(c) != group_index_) {
            continue;  // dropped and not the group column: value is ignored
          }
          const int code = columns_[c].CodeOf(cell);
          if (static_cast<int>(c) == group_index_) out->groups[r] = code;
          // One-hot and raw-code columns both spill the bare code; the
          // unseen sentinel (== dictionary size) densifies to all zeros.
          if (encode.in_features) {
            code_row[encode.compact] = static_cast<uint16_t>(code);
          }
        } else {
          double value = 0.0;
          if (!ParseSmallInt(cell, &value) &&
              (!ParseDouble(cell, &value) || !std::isfinite(value))) {
            std::ostringstream msg;
            msg << StreamErrorAt(csv_path_, pending_.numbers[r],
                                 pending_.offsets[r])
                << " cell '" << cell << "' in numeric column '" << header_[c]
                << "' is not a finite number";
            first_error.Consider(pending_.numbers[r],
                                 Status::InvalidArgument(msg.str()));
            return;
          }
          if (!encode.in_features) continue;
          if (encode.standardize) value = (value - encode.mean) / encode.stddev;
          float_row[encode.compact] = static_cast<float>(value);
        }
      }
    };
    ThreadPool::Global().ParallelFor(rows, parse_row, options_.num_threads);
    if (first_error.set) return first_error.status;
    return Status::Ok();
  }

  Status FlushBlock() {
    const auto parse_start = std::chrono::steady_clock::now();
    CompactBlock out;
    if (!writer_initialized_) {
      // Block 0: infer types + dictionaries, fit the encoder on the block
      // dataset, then pack from the intermediate parse. Later blocks skip
      // all of this and parse straight into the packed streams.
      Status fit_status = FitFromFirstBlock();
      if (!fit_status.ok()) return fit_status;
      ParsedBlock parsed;
      Status parse_status = ParsePending(&parsed);
      if (!parse_status.ok()) return parse_status;
      encoder_.Fit(BuildFitDataset(parsed), options_.encoder);
      std::ostringstream encoder_os;
      encoder_.SerializeTo(encoder_os);
      encoder_text_ = encoder_os.str();
      Result<ChunkedLayout> layout = ChunkedLayout::FromPlans(
          encoder_.plans(), options_.encoder.one_hot_categorical);
      if (!layout.ok()) return layout.status();
      layout_ = std::move(*layout);
      BuildEncodeTable();
      Result<ChunkedDatasetWriter> writer =
          ChunkedDatasetWriter::Create(out_path_, layout_);
      if (!writer.ok()) return writer.status();
      writer_ = std::make_unique<ChunkedDatasetWriter>(std::move(*writer));
      writer_initialized_ = true;
      CompactFromParsed(parsed, &out);
    } else {
      Status parse_status = FastParseBlock(&out);
      if (!parse_status.ok()) return parse_status;
    }
    const auto parse_end = std::chrono::steady_clock::now();
    const double seconds =
        std::chrono::duration<double>(parse_end - parse_start).count();
    parse_seconds_ += seconds;
    OF_COUNTER_ADD("ingest.parse_us", static_cast<int64_t>(seconds * 1e6));
    OF_COUNTER_ADD("ingest.rows", static_cast<int64_t>(out.rows));
    stats_.rows += out.rows;
    stats_.blocks += 1;
    Status status = writer_->AppendBlock(out);
    const double spill_seconds = std::chrono::duration<double>(
                                     std::chrono::steady_clock::now() - parse_end)
                                     .count();
    spill_seconds_ += spill_seconds;
    OF_COUNTER_ADD("ingest.spill_us", static_cast<int64_t>(spill_seconds * 1e6));
    pending_.Clear();
    return status;
  }

  std::string csv_path_;
  std::string out_path_;
  StreamIngestOptions options_;

  const char* map_base_ = nullptr;  ///< whole-file mapping (zero-copy path)
  size_t map_len_ = 0;

  bool saw_header_ = false;
  std::vector<std::string> header_;
  int label_index_ = -1;
  int group_index_ = -1;
  uint64_t record_number_ = 1;  // header is record 1

  RawBlock pending_;
  std::vector<ColumnModel> columns_;
  std::vector<ColumnEncode> encode_;
  ChunkedLayout layout_;
  std::vector<std::string> group_names_;
  FeatureEncoder encoder_;
  std::string encoder_text_;
  bool writer_initialized_ = false;
  std::unique_ptr<ChunkedDatasetWriter> writer_;

  IngestStats stats_;
  double parse_seconds_ = 0.0;
  double spill_seconds_ = 0.0;
};

}  // namespace

Result<IngestStats> StreamCsvToChunked(const std::string& csv_path,
                                       const std::string& out_path,
                                       const StreamIngestOptions& options) {
  StreamIngestor ingestor(csv_path, out_path, options);
  return ingestor.Run();
}

}  // namespace omnifair
