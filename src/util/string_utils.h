#ifndef OMNIFAIR_UTIL_STRING_UTILS_H_
#define OMNIFAIR_UTIL_STRING_UTILS_H_

#include <string>
#include <string_view>
#include <vector>

namespace omnifair {

/// Splits on a single character; keeps empty fields ("a,,b" -> 3 fields).
std::vector<std::string> Split(std::string_view text, char delimiter);

/// Removes leading/trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view text);

/// Joins parts with the separator.
std::string Join(const std::vector<std::string>& parts, std::string_view separator);

/// Parses a double; returns false on malformed input (no exceptions).
bool ParseDouble(std::string_view text, double* out);

/// Formats a double with the given number of decimal places.
std::string FormatDouble(double value, int decimals);

/// Formats a fraction as a signed percentage string, e.g. -0.012 -> "-1.2%".
std::string FormatPercent(double fraction, int decimals = 1);

}  // namespace omnifair

#endif  // OMNIFAIR_UTIL_STRING_UTILS_H_
