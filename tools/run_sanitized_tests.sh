#!/usr/bin/env bash
# Builds the test suite under sanitizers and runs it, in a dedicated build
# tree so the regular build/ stays untouched.
#
# Modes (selected by the OMNIFAIR_SANITIZE environment variable):
#   default / unset        AddressSanitizer + UBSan over the full suite
#                          (build-sanitized/), which includes the chaos-
#                          labelled durability tests (fault-injected IO,
#                          crash/resume, corrupted/truncated model bundles
#                          walked byte-by-byte through the mmap loader, and
#                          the streaming-ingest spill path under injected
#                          ENOSPC/short-write/short-read faults).
#   OMNIFAIR_SANITIZE=thread
#                          ThreadSanitizer over the concurrency- and
#                          chaos-labelled tests only (build-tsan/): the
#                          thread pool, the parallel tuner determinism
#                          suite, telemetry, the metrics exporter (its
#                          background snapshot thread racing registry
#                          writers) and run-profiler tests, the serving
#                          layer (bounded admission queue racing pool
#                          workers against submitters), checkpoint/resume
#                          (whose parallel-grid resume exercises record
#                          barriers across workers), and the streaming
#                          ingest + tuner (test_stream_reader /
#                          test_stream_tune: pool-parallel block parsing
#                          and mini-batch SGD must be bit-identical at any
#                          thread count). TSan is incompatible with ASan,
#                          hence the separate tree and mode.
#
# Usage: [OMNIFAIR_SANITIZE=thread] tools/run_sanitized_tests.sh [extra ctest args...]
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
mode="${OMNIFAIR_SANITIZE:-address}"

# Force the vectorized kernel path so the SIMD-vs-scalar parity suite
# (test_simd) and everything routed through simd::Active() run the real
# AVX2/NEON code under the sanitizers, not the scalar fallback a stray
# OMNIFAIR_SIMD=off in the caller's environment would select.
export OMNIFAIR_SIMD=on

if [[ "${mode}" == "thread" ]]; then
  build_dir="${repo_root}/build-tsan"
  sanitizers="thread"
  ctest_args=(-L 'concurrency|chaos')
else
  build_dir="${repo_root}/build-sanitized"
  sanitizers="address;undefined"
  ctest_args=()
fi

cmake -B "${build_dir}" -S "${repo_root}" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DOMNIFAIR_SANITIZE="${sanitizers}" \
  -DOMNIFAIR_BUILD_BENCHMARKS=OFF \
  -DOMNIFAIR_BUILD_EXAMPLES=OFF
cmake --build "${build_dir}" -j "$(nproc)"

if [[ "${mode}" == "thread" ]]; then
  # second_deadlock_stack gives both lock orders on reported inversions.
  export TSAN_OPTIONS="halt_on_error=1:second_deadlock_stack=1"
else
  # halt_on_error makes UBSan findings fail the run instead of just logging.
  export UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1"
  export ASAN_OPTIONS="detect_leaks=1"
fi
ctest --test-dir "${build_dir}" --output-on-failure -j "$(nproc)" \
  "${ctest_args[@]}" "$@"
