#include "util/thread_pool.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <exception>

#include "util/telemetry.h"

namespace omnifair {

namespace {

// Which pool (if any) owns the current thread, and its queue index there.
// Lets Enqueue push to the worker's own queue and lets nested ParallelFor
// detect that the caller is already a pool worker.
thread_local ThreadPool* tls_pool = nullptr;
thread_local int tls_worker = -1;

// Shared between ParallelFor participants. Iterations are claimed one at a
// time from `next`; the first exception wins and flips `cancelled` so the
// remaining unclaimed iterations are abandoned.
struct ParallelForState {
  std::atomic<size_t> next{0};
  std::atomic<bool> cancelled{false};
  std::mutex mu;
  std::condition_variable cv;
  std::exception_ptr exception;  // guarded by mu
  int active = 0;                // helper tasks still outstanding, guarded by mu
};

void RunClaimLoop(ParallelForState& state,
                  const std::function<void(size_t)>& body, size_t n) {
  while (!state.cancelled.load(std::memory_order_relaxed)) {
    const size_t i = state.next.fetch_add(1, std::memory_order_relaxed);
    if (i >= n) break;
    try {
      body(i);
    } catch (...) {
      std::lock_guard<std::mutex> lock(state.mu);
      if (!state.exception) state.exception = std::current_exception();
      state.cancelled.store(true, std::memory_order_relaxed);
    }
  }
}

}  // namespace

int ThreadPool::DefaultThreadCount() {
  if (const char* env = std::getenv("OMNIFAIR_THREADS")) {
    char* end = nullptr;
    const long parsed = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && parsed > 0) {
      return static_cast<int>(std::min<long>(parsed, 1024));
    }
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

ThreadPool& ThreadPool::Global() {
  static ThreadPool pool(DefaultThreadCount());
  return pool;
}

ThreadPool::ThreadPool(int num_threads) {
  const int n = std::max(1, num_threads);
  queues_.reserve(n);
  for (int i = 0; i < n; ++i) queues_.push_back(std::make_unique<Queue>());
  workers_.reserve(n);
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(wake_mu_);
    stop_ = true;
  }
  wake_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Enqueue(std::function<void()> task) {
  // Capture the submitter's effective level so instrumentation inside the
  // task (including a ScopedTelemetryLevel override active at the call site)
  // behaves the same as it would inline.
  const TelemetryLevel level = EffectiveTelemetryLevel();
  auto wrapped = [level, task = std::move(task)]() {
    ScopedTelemetryLevel scoped(level);
    OF_COUNTER_INC("pool.tasks");
    OF_SCOPED_LATENCY_US("pool.task_us");
    task();
  };
  size_t index;
  if (tls_pool == this && tls_worker >= 0) {
    index = static_cast<size_t>(tls_worker);
  } else {
    index = round_robin_.fetch_add(1, std::memory_order_relaxed) % queues_.size();
  }
  {
    Queue& queue = *queues_[index];
    std::lock_guard<std::mutex> lock(queue.mu);
    queue.tasks.push_back(std::move(wrapped));
  }
  {
    std::lock_guard<std::mutex> lock(wake_mu_);
    ++queued_;
  }
  wake_cv_.notify_one();
}

void ThreadPool::WorkerLoop(int worker_index) {
  tls_pool = this;
  tls_worker = worker_index;
  std::function<void()> task;
  while (NextTask(worker_index, &task)) {
    task();
    task = nullptr;
  }
}

bool ThreadPool::NextTask(int worker_index, std::function<void()>* task) {
  const int n = static_cast<int>(queues_.size());
  for (;;) {
    bool found = false;
    {
      Queue& queue = *queues_[worker_index];
      std::lock_guard<std::mutex> lock(queue.mu);
      if (!queue.tasks.empty()) {
        *task = std::move(queue.tasks.back());
        queue.tasks.pop_back();
        found = true;
      }
    }
    if (!found) {
      for (int offset = 1; offset < n && !found; ++offset) {
        Queue& queue = *queues_[(worker_index + offset) % n];
        std::lock_guard<std::mutex> lock(queue.mu);
        if (!queue.tasks.empty()) {
          *task = std::move(queue.tasks.front());
          queue.tasks.pop_front();
          found = true;
        }
      }
      if (found) OF_COUNTER_INC("pool.steal");
    }
    if (found) {
      std::lock_guard<std::mutex> lock(wake_mu_);
      --queued_;
      return true;
    }
    std::unique_lock<std::mutex> lock(wake_mu_);
    if (queued_ == 0) {
      if (stop_) return false;
      wake_cv_.wait(lock, [this] { return queued_ > 0 || stop_; });
      if (queued_ == 0) return false;  // woken by stop with nothing to drain
    }
    // queued_ > 0: a push raced our scan; rescan the queues.
  }
}

bool ThreadPool::TryRunOneTask() {
  const size_t n = queues_.size();
  const size_t start =
      (tls_pool == this && tls_worker >= 0) ? static_cast<size_t>(tls_worker) : 0;
  std::function<void()> task;
  bool found = false;
  for (size_t offset = 0; offset < n && !found; ++offset) {
    Queue& queue = *queues_[(start + offset) % n];
    std::lock_guard<std::mutex> lock(queue.mu);
    if (!queue.tasks.empty()) {
      task = std::move(queue.tasks.front());
      queue.tasks.pop_front();
      found = true;
    }
  }
  if (!found) return false;
  {
    std::lock_guard<std::mutex> lock(wake_mu_);
    --queued_;
  }
  task();
  return true;
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& body,
                             int max_parallelism) {
  if (n == 0) return;
  const size_t limit = max_parallelism <= 0
                           ? static_cast<size_t>(NumThreads()) + 1
                           : static_cast<size_t>(max_parallelism);
  size_t helpers = 0;
  if (limit > 1 && n > 1) {
    helpers = std::min({static_cast<size_t>(NumThreads()), n - 1, limit - 1});
  }
  if (helpers == 0) {
    // Serial fast path: no shared state, no synchronization, exceptions
    // propagate directly.
    for (size_t i = 0; i < n; ++i) body(i);
    return;
  }
  auto state = std::make_shared<ParallelForState>();
  for (size_t h = 0; h < helpers; ++h) {
    {
      std::lock_guard<std::mutex> lock(state->mu);
      ++state->active;
    }
    // Each helper holds its own copy of `body`'s wrapper; the referenced
    // callable outlives it because the caller joins below before returning.
    Enqueue([state, body, n] {
      RunClaimLoop(*state, body, n);
      {
        std::lock_guard<std::mutex> lock(state->mu);
        --state->active;
      }
      state->cv.notify_all();
    });
  }
  RunClaimLoop(*state, body, n);
  // Help-first join: instead of blocking on queued-but-unstarted helpers
  // (which deadlocks when every worker is itself joining), run pending pool
  // tasks on this thread until our helpers have all finished.
  std::unique_lock<std::mutex> lock(state->mu);
  while (state->active > 0) {
    lock.unlock();
    const bool ran = TryRunOneTask();
    lock.lock();
    if (!ran && state->active > 0) {
      state->cv.wait_for(lock, std::chrono::milliseconds(1),
                         [&] { return state->active == 0; });
    }
  }
  if (state->exception) std::rethrow_exception(state->exception);
}

}  // namespace omnifair
