#include "data/dataset.h"

#include "util/logging.h"

namespace omnifair {

void Dataset::AddColumn(Column column) {
  if (!columns_.empty()) {
    OF_CHECK_EQ(column.size(), columns_.front().size())
        << "column " << column.name() << " length mismatch";
  }
  columns_.push_back(std::move(column));
}

const Column& Dataset::ColumnAt(size_t index) const {
  OF_CHECK_LT(index, columns_.size());
  return columns_[index];
}

Column* Dataset::MutableColumnAt(size_t index) {
  OF_CHECK_LT(index, columns_.size());
  return &columns_[index];
}

bool Dataset::HasColumn(const std::string& name) const {
  return FindColumn(name) != nullptr;
}

const Column* Dataset::FindColumn(const std::string& name) const {
  for (const Column& col : columns_) {
    if (col.name() == name) return &col;
  }
  return nullptr;
}

const Column& Dataset::ColumnByName(const std::string& name) const {
  const Column* col = FindColumn(name);
  OF_CHECK(col != nullptr) << "no column named " << name;
  return *col;
}

void Dataset::SetLabels(std::vector<int> labels) {
  if (!columns_.empty()) {
    OF_CHECK_EQ(labels.size(), columns_.front().size());
  }
  labels_ = std::move(labels);
}

void Dataset::SetLabel(size_t row, int label) {
  OF_CHECK_LT(row, labels_.size());
  OF_CHECK(label == 0 || label == 1);
  labels_[row] = label;
}

double Dataset::PositiveRate() const {
  if (labels_.empty()) return 0.0;
  size_t positives = 0;
  for (int y : labels_) positives += (y == 1);
  return static_cast<double>(positives) / static_cast<double>(labels_.size());
}

Dataset Dataset::SelectRows(const std::vector<size_t>& indices) const {
  Dataset out(name_);
  out.label_name_ = label_name_;
  for (const Column& col : columns_) out.columns_.push_back(col.SelectRows(indices));
  out.labels_.reserve(indices.size());
  for (size_t i : indices) {
    OF_CHECK_LT(i, labels_.size());
    out.labels_.push_back(labels_[i]);
  }
  return out;
}

Status Dataset::Validate() const {
  for (const Column& col : columns_) {
    if (col.size() != labels_.size()) {
      return Status::InvalidArgument("column " + col.name() +
                                     " length does not match labels");
    }
  }
  for (int y : labels_) {
    if (y != 0 && y != 1) {
      return Status::InvalidArgument("labels must be binary {0,1}");
    }
  }
  return Status::Ok();
}

}  // namespace omnifair
