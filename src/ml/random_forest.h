#ifndef OMNIFAIR_ML_RANDOM_FOREST_H_
#define OMNIFAIR_ML_RANDOM_FOREST_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "ml/classifier.h"
#include "ml/decision_tree.h"

namespace omnifair {

/// Hyperparameters for the random forest.
struct RandomForestOptions {
  int num_trees = 24;
  int max_depth = 9;
  /// Features per split; 0 means sqrt(num_features).
  size_t max_features = 0;
  double min_weight_leaf = 2.0;
  uint64_t seed = 17;
  /// Worker threads for tree building; 1 = sequential. Trees are seeded
  /// up-front, so the fitted forest is identical for any thread count
  /// (the paper's future-work note on parallel model training).
  int num_threads = 4;
  /// Split search strategy for every tree (DESIGN.md §11). kExact is the
  /// seed behavior; kHistogram bins X once per fit (and once per tuning run
  /// via the shared BinningCache) and every tree reuses the same
  /// BinnedMatrix.
  SplitMethod split_method = SplitMethod::kExact;
  /// Bins per feature in histogram mode (clamped to [2, 255]).
  int max_bins = 255;
};

/// Bagged ensemble of weighted CART trees; probability = mean leaf
/// probability across trees.
class RandomForestModel : public Classifier {
 public:
  /// `num_threads` parallelizes PredictProba over disjoint row chunks on the
  /// shared pool; 1 keeps prediction fully sequential. Either way every row's
  /// probability sums the trees in index order, so results are identical for
  /// any thread count.
  explicit RandomForestModel(std::vector<std::unique_ptr<Classifier>> trees,
                             int num_threads = 1);

  std::vector<double> PredictProba(const Matrix& X) const override;
  std::string Name() const override { return "random_forest"; }

  size_t NumTrees() const { return trees_.size(); }
  const std::vector<std::unique_ptr<Classifier>>& trees() const { return trees_; }

 private:
  std::vector<std::unique_ptr<Classifier>> trees_;
  int num_threads_ = 1;
};

/// Weighted random forest. Example weights are folded into the bootstrap:
/// each tree draws a Poisson-like bootstrap count per example and multiplies
/// it by the example's weight, matching scikit-learn's handling of
/// sample_weight under bagging.
class RandomForestTrainer : public Trainer {
 public:
  explicit RandomForestTrainer(RandomForestOptions options = {});

  std::unique_ptr<Classifier> Fit(const Matrix& X, const std::vector<int>& y,
                                  const std::vector<double>& weights) override;
  using Trainer::Fit;

  std::string Name() const override { return "random_forest"; }
  /// The clone shares this trainer's BinningCache, so parallel tuners that
  /// fit every grid point on its own clone still bin X exactly once.
  std::unique_ptr<Trainer> Clone() const override;

 private:
  RandomForestOptions options_;
  std::shared_ptr<BinningCache> bin_cache_;
};

}  // namespace omnifair

#endif  // OMNIFAIR_ML_RANDOM_FOREST_H_
