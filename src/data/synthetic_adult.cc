#include "data/datasets.h"

namespace omnifair {

// Matches the UCI Adult census-income task: ~24% positive overall (the paper
// notes 76% negative), sex is the sensitive attribute with
// P(>50k | Male) ~ 0.30 vs P(>50k | Female) ~ 0.11. Education, hours and
// capital gains carry most of the signal; several of them are sex-correlated
// so the disparity persists without the sensitive column.
synthetic::Schema MakeAdultSchema() {
  synthetic::Schema schema;
  schema.dataset_name = "adult";
  schema.sensitive_attribute = "sex";
  schema.label_name = "income_gt_50k";
  schema.default_num_rows = 48842;
  schema.groups = {
      {"Male", 0.67, 0.30},
      {"Female", 0.33, 0.11},
  };

  schema.numeric_features.push_back({.name = "age",
                                     .base_mean = 36.0,
                                     .label_shift = 7.5,
                                     .noise_sd = 12.0,
                                     .group_shift = {1.0, -1.0},
                                     .min_value = 17.0,
                                     .max_value = 90.0,
                                     .round_to_int = true});
  schema.numeric_features.push_back({.name = "education_num",
                                     .base_mean = 9.3,
                                     .label_shift = 2.4,
                                     .noise_sd = 2.4,
                                     .group_shift = {0.1, -0.1},
                                     .min_value = 1.0,
                                     .max_value = 16.0,
                                     .round_to_int = true});
  schema.numeric_features.push_back({.name = "hours_per_week",
                                     .base_mean = 38.0,
                                     .label_shift = 6.5,
                                     .noise_sd = 10.0,
                                     .group_shift = {2.0, -3.0},
                                     .min_value = 1.0,
                                     .max_value = 99.0,
                                     .round_to_int = true});
  schema.numeric_features.push_back({.name = "capital_gain",
                                     .base_mean = 150.0,
                                     .label_shift = 3500.0,
                                     .noise_sd = 3200.0,
                                     .min_value = 0.0,
                                     .max_value = 99999.0,
                                     .round_to_int = true});
  schema.numeric_features.push_back({.name = "capital_loss",
                                     .base_mean = 30.0,
                                     .label_shift = 140.0,
                                     .noise_sd = 280.0,
                                     .min_value = 0.0,
                                     .max_value = 4500.0,
                                     .round_to_int = true});
  schema.numeric_features.push_back({.name = "fnlwgt",
                                     .base_mean = 190000.0,
                                     .label_shift = 0.0,
                                     .noise_sd = 95000.0,
                                     .min_value = 12000.0,
                                     .max_value = 1500000.0,
                                     .round_to_int = true});

  schema.categorical_features.push_back(
      {.name = "workclass",
       .categories = {"Private", "Self-emp", "Government", "Other"},
       .weights_y0 = {0.73, 0.10, 0.13, 0.04},
       .weights_y1 = {0.64, 0.18, 0.16, 0.02}});
  schema.categorical_features.push_back(
      {.name = "education",
       .categories = {"HS-grad", "Some-college", "Bachelors", "Advanced", "Dropout"},
       .weights_y0 = {0.36, 0.25, 0.13, 0.05, 0.21},
       .weights_y1 = {0.22, 0.18, 0.30, 0.23, 0.07}});
  schema.categorical_features.push_back(
      {.name = "marital_status",
       .categories = {"Married", "Never-married", "Divorced", "Other"},
       .weights_y0 = {0.36, 0.39, 0.17, 0.08},
       .weights_y1 = {0.85, 0.06, 0.07, 0.02}});
  schema.categorical_features.push_back(
      {.name = "occupation",
       .categories = {"Professional", "Craft", "Sales", "Service", "Clerical", "Other"},
       .weights_y0 = {0.18, 0.15, 0.12, 0.18, 0.14, 0.23},
       .weights_y1 = {0.44, 0.12, 0.13, 0.04, 0.08, 0.19}});
  schema.categorical_features.push_back(
      {.name = "relationship",
       .categories = {"Husband", "Wife", "Not-in-family", "Own-child", "Other"},
       .weights_y0 = {0.33, 0.04, 0.29, 0.20, 0.14},
       .weights_y1 = {0.72, 0.11, 0.11, 0.01, 0.05}});
  schema.categorical_features.push_back(
      {.name = "race",
       .categories = {"White", "Black", "Asian-Pac", "Other"},
       .weights_y0 = {0.84, 0.11, 0.03, 0.02},
       .weights_y1 = {0.90, 0.05, 0.04, 0.01}});
  schema.categorical_features.push_back(
      {.name = "native_country",
       .categories = {"United-States", "Mexico", "Other"},
       .weights_y0 = {0.89, 0.03, 0.08},
       .weights_y1 = {0.93, 0.01, 0.06}});

  return schema;
}

Dataset MakeAdultDataset(const SyntheticOptions& options) {
  return synthetic::Generate(MakeAdultSchema(), options);
}

}  // namespace omnifair
