#include "ml/classifier.h"

namespace omnifair {

std::vector<int> Classifier::Predict(const Matrix& X) const {
  const std::vector<double> proba = PredictProba(X);
  std::vector<int> labels(proba.size());
  for (size_t i = 0; i < proba.size(); ++i) labels[i] = proba[i] >= 0.5 ? 1 : 0;
  return labels;
}

std::unique_ptr<Classifier> Trainer::Fit(const Matrix& X, const std::vector<int>& y) {
  const std::vector<double> unit(y.size(), 1.0);
  return Fit(X, y, unit);
}

}  // namespace omnifair
