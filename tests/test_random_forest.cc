#include "ml/random_forest.h"

#include <gtest/gtest.h>

#include "tests/testing_data.h"

namespace omnifair {
namespace {

using testing_data::Blobs;
using testing_data::MakeBlobs;
using testing_data::MakeXor;
using testing_data::TrainAccuracy;

TEST(RandomForestTest, LearnsXor) {
  const Blobs xor_data = MakeXor(600, 1);
  RandomForestTrainer trainer;
  const auto model = trainer.Fit(xor_data.X, xor_data.y, xor_data.unit_weights);
  EXPECT_GE(TrainAccuracy(*model, xor_data), 0.93);
}

TEST(RandomForestTest, NumTreesHonored) {
  const Blobs blobs = MakeBlobs(200, 1.0, 2);
  RandomForestOptions options;
  options.num_trees = 7;
  RandomForestTrainer trainer(options);
  const auto model = trainer.Fit(blobs.X, blobs.y, blobs.unit_weights);
  const auto* forest = dynamic_cast<const RandomForestModel*>(model.get());
  ASSERT_NE(forest, nullptr);
  EXPECT_EQ(forest->NumTrees(), 7u);
}

TEST(RandomForestTest, DeterministicGivenSeed) {
  const Blobs blobs = MakeBlobs(300, 1.0, 3);
  RandomForestOptions options;
  options.seed = 99;
  RandomForestTrainer a(options);
  RandomForestTrainer b(options);
  const auto ma = a.Fit(blobs.X, blobs.y, blobs.unit_weights);
  const auto mb = b.Fit(blobs.X, blobs.y, blobs.unit_weights);
  EXPECT_EQ(ma->Predict(blobs.X), mb->Predict(blobs.X));
}

TEST(RandomForestTest, SeedChangesForest) {
  const Blobs blobs = MakeBlobs(300, 0.5, 4);
  RandomForestOptions options_a;
  options_a.seed = 1;
  RandomForestOptions options_b;
  options_b.seed = 2;
  RandomForestTrainer a(options_a);
  RandomForestTrainer b(options_b);
  const auto pa = a.Fit(blobs.X, blobs.y, blobs.unit_weights)->PredictProba(blobs.X);
  const auto pb = b.Fit(blobs.X, blobs.y, blobs.unit_weights)->PredictProba(blobs.X);
  EXPECT_NE(pa, pb);
}

TEST(RandomForestTest, ProbabilitiesAreAverages) {
  const Blobs blobs = MakeBlobs(200, 2.0, 5);
  RandomForestTrainer trainer;
  const auto model = trainer.Fit(blobs.X, blobs.y, blobs.unit_weights);
  for (double p : model->PredictProba(blobs.X)) {
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
  }
}

TEST(RandomForestTest, ThreadCountDoesNotChangeForest) {
  const Blobs blobs = MakeBlobs(400, 0.8, 7);
  RandomForestOptions sequential;
  sequential.num_threads = 1;
  sequential.seed = 5;
  RandomForestOptions parallel;
  parallel.num_threads = 4;
  parallel.seed = 5;
  RandomForestTrainer a(sequential);
  RandomForestTrainer b(parallel);
  const auto pa = a.Fit(blobs.X, blobs.y, blobs.unit_weights)->PredictProba(blobs.X);
  const auto pb = b.Fit(blobs.X, blobs.y, blobs.unit_weights)->PredictProba(blobs.X);
  EXPECT_EQ(pa, pb);
}

TEST(RandomForestHistogramTest, LearnsXor) {
  const Blobs xor_data = MakeXor(600, 1);
  RandomForestOptions options;
  options.split_method = SplitMethod::kHistogram;
  RandomForestTrainer trainer(options);
  const auto model = trainer.Fit(xor_data.X, xor_data.y, xor_data.unit_weights);
  EXPECT_GE(TrainAccuracy(*model, xor_data), 0.93);
}

TEST(RandomForestHistogramTest, ThreadCountDoesNotChangeForest) {
  // Determinism contract (DESIGN.md §11): every tree shares one BinnedMatrix
  // and is seeded up-front, so the fitted forest is identical at any thread
  // count — both for tree building and the shared binning build.
  const Blobs blobs = MakeBlobs(2000, 0.8, 13);
  RandomForestOptions serial;
  serial.split_method = SplitMethod::kHistogram;
  serial.max_bins = 64;
  serial.num_trees = 12;
  serial.seed = 5;
  serial.num_threads = 1;
  RandomForestOptions parallel = serial;
  parallel.num_threads = 4;
  RandomForestTrainer a(serial);
  RandomForestTrainer b(parallel);
  const auto pa = a.Fit(blobs.X, blobs.y, blobs.unit_weights)->PredictProba(blobs.X);
  const auto pb = b.Fit(blobs.X, blobs.y, blobs.unit_weights)->PredictProba(blobs.X);
  EXPECT_EQ(pa, pb);
}

TEST(RandomForestHistogramTest, CloseToExactAccuracy) {
  const Blobs blobs = MakeBlobs(1500, 1.0, 14);
  RandomForestOptions exact;
  exact.seed = 3;
  RandomForestOptions hist = exact;
  hist.split_method = SplitMethod::kHistogram;
  RandomForestTrainer exact_trainer(exact);
  RandomForestTrainer hist_trainer(hist);
  const double exact_acc = TrainAccuracy(
      *exact_trainer.Fit(blobs.X, blobs.y, blobs.unit_weights), blobs);
  const double hist_acc = TrainAccuracy(
      *hist_trainer.Fit(blobs.X, blobs.y, blobs.unit_weights), blobs);
  EXPECT_NEAR(hist_acc, exact_acc, 0.02);
}

TEST(RandomForestTest, WeightsShiftPredictions) {
  const Blobs blobs = MakeBlobs(400, 0.5, 6);
  RandomForestTrainer trainer;
  const auto base = trainer.Fit(blobs.X, blobs.y, blobs.unit_weights);
  std::vector<double> boosted(blobs.y.size());
  for (size_t i = 0; i < blobs.y.size(); ++i) {
    boosted[i] = blobs.y[i] == 1 ? 8.0 : 1.0;
  }
  const auto heavy = trainer.Fit(blobs.X, blobs.y, boosted);
  double base_rate = 0.0;
  double heavy_rate = 0.0;
  for (int p : base->Predict(blobs.X)) base_rate += p;
  for (int p : heavy->Predict(blobs.X)) heavy_rate += p;
  EXPECT_GT(heavy_rate, base_rate);
}

}  // namespace
}  // namespace omnifair
