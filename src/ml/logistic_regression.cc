#include "ml/logistic_regression.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "linalg/simd.h"
#include "linalg/vector_ops.h"
#include "util/fault_injector.h"
#include "util/logging.h"
#include "util/random.h"
#include "util/telemetry.h"
#include "util/trace.h"

namespace omnifair {
namespace {

/// Weighted negative log-likelihood + L2, with theta = [w..., b]. `margins`
/// is caller-owned scratch of size n — the full-batch z = X w computed in one
/// MatVecInto (simd kernels, float32-aware, no per-call allocation).
double Loss(const Matrix& X, const std::vector<int>& y,
            const std::vector<double>& weights, const std::vector<double>& theta,
            double l2, std::vector<double>* margins) {
  const size_t n = X.rows();
  const size_t d = X.cols();
  margins->resize(n);
  X.MatVecInto(theta.data(), margins->data());
  const double bias = theta[d];
  double loss = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double z = (*margins)[i] + bias;
    // -log p(y_i | x_i) = log(1+exp(z)) - y*z.
    loss += weights[i] * (Log1pExp(z) - (y[i] == 1 ? z : 0.0));
  }
  loss /= static_cast<double>(n);
  for (size_t c = 0; c < d; ++c) loss += 0.5 * l2 * theta[c] * theta[c];
  return loss;
}

/// Gradient of Loss w.r.t. theta; returns infinity norm. `margins` is the
/// same caller-owned scratch as Loss's: it holds z, then sigmoid(z), then the
/// weighted residuals that feed the X^T product.
double Gradient(const Matrix& X, const std::vector<int>& y,
                const std::vector<double>& weights, const std::vector<double>& theta,
                double l2, std::vector<double>* grad, std::vector<double>* margins) {
  const size_t n = X.rows();
  const size_t d = X.cols();
  margins->resize(n);
  X.MatVecInto(theta.data(), margins->data());
  double* residual = margins->data();
  const double bias = theta[d];
  for (size_t i = 0; i < n; ++i) residual[i] += bias;
  SigmoidInPlace(residual, n);
  for (size_t i = 0; i < n; ++i) {
    residual[i] = weights[i] * (residual[i] - (y[i] == 1 ? 1.0 : 0.0));
  }
  X.TransposeMatVecInto(residual, grad->data());
  (*grad)[d] = 0.0;
  for (size_t i = 0; i < n; ++i) (*grad)[d] += residual[i];
  const double inv_n = 1.0 / static_cast<double>(n);
  double max_abs = 0.0;
  for (size_t c = 0; c <= d; ++c) {
    (*grad)[c] *= inv_n;
    if (c < d) (*grad)[c] += l2 * theta[c];
    max_abs = std::max(max_abs, std::fabs((*grad)[c]));
  }
  return max_abs;
}

/// Weighted logistic loss and gradient over rows [begin, end) only,
/// accumulated row by row on the simd kernels (float32 rows widen per lane).
/// Writes the unnormalized gradient sum into `grad` and returns the
/// unnormalized weighted loss sum. Serial by design: mini-batch updates must
/// be bit-reproducible at any thread count.
double BatchLossGradient(const Matrix& X, const std::vector<int>& y,
                         const std::vector<double>& weights,
                         const std::vector<double>& theta, size_t begin,
                         size_t end, std::vector<double>* grad) {
  const size_t d = X.cols();
  const bool f32 = X.is_float32();
  const simd::Kernels& kernels = simd::Active();
  std::fill(grad->begin(), grad->end(), 0.0);
  double* g = grad->data();
  const double bias = theta[d];
  double loss = 0.0;
  for (size_t i = begin; i < end; ++i) {
    const double* row = f32 ? nullptr : X.Row(i);
    const float* rowf = f32 ? X.RowF(i) : nullptr;
    const double z = bias + (f32 ? kernels.dot_f32(rowf, theta.data(), d)
                                 : kernels.dot(theta.data(), row, d));
    const double target = y[i] == 1 ? 1.0 : 0.0;
    loss += weights[i] * (Log1pExp(z) - target * z);
    const double residual = weights[i] * (Sigmoid(z) - target);
    if (residual != 0.0) {
      if (f32) {
        kernels.axpy_f32(residual, rowf, g, d);
      } else {
        kernels.axpy(residual, row, g, d);
      }
      g[d] += residual;
    }
  }
  return loss;
}

}  // namespace

LogisticRegressionModel::LogisticRegressionModel(std::vector<double> coefficients,
                                                 double intercept)
    : coefficients_(std::move(coefficients)), intercept_(intercept) {}

std::vector<double> LogisticRegressionModel::PredictProba(const Matrix& X) const {
  OF_CHECK_EQ(X.cols(), coefficients_.size());
  // Fused batch predict: the margins land straight in the output buffer (one
  // simd matvec over either storage mode), then one batched sigmoid pass.
  std::vector<double> proba(X.rows());
  X.MatVecInto(coefficients_.data(), proba.data());
  for (double& p : proba) p += intercept_;
  SigmoidInPlace(&proba);
  return proba;
}

LogisticRegressionTrainer::LogisticRegressionTrainer(LogisticRegressionOptions options)
    : options_(options) {}

std::unique_ptr<Classifier> LogisticRegressionTrainer::Fit(
    const Matrix& X, const std::vector<int>& y, const std::vector<double>& weights) {
  OF_CHECK_EQ(X.rows(), y.size());
  OF_CHECK_EQ(X.rows(), weights.size());
  if (options_.batch_size > 0) return FitMiniBatch(X, y, weights);
  OF_TRACE_SPAN("fit/lr");
  OF_SCOPED_LATENCY_US("ml.fit_us.lr");
  const size_t d = X.cols();

  std::vector<double> theta(d + 1, 0.0);
  if (warm_start_ && warm_theta_.size() == d + 1) theta = warm_theta_;

  std::vector<double> grad(d + 1, 0.0);
  std::vector<double> candidate(d + 1, 0.0);
  std::vector<double> margins(X.rows(), 0.0);  // shared z/residual scratch
  double step = options_.learning_rate;
  double loss = Loss(X, y, weights, theta, options_.l2, &margins);
  if (!std::isfinite(loss) && warm_start_) {
    // A pathological warm start (e.g. from a diverged previous fit) can put
    // the initial loss out of range; restart from zero instead.
    std::fill(theta.begin(), theta.end(), 0.0);
    loss = Loss(X, y, weights, theta, options_.l2, &margins);
  }
  if (!std::isfinite(loss)) {
    // Even theta = 0 overflows: the data/weights themselves are degenerate.
    OF_LOG(Warning) << "logistic regression: non-finite loss at theta=0; "
                       "returning the zero-coefficient model";
    return std::make_unique<LogisticRegressionModel>(std::vector<double>(d, 0.0), 0.0);
  }

  // Divergence recovery (DESIGN.md §8): `checkpoint` is the last theta whose
  // loss was finite; on a non-finite loss/gradient we roll back to it with a
  // halved learning rate, up to max_divergence_retries times.
  std::vector<double> checkpoint = theta;
  double checkpoint_loss = loss;
  int retries = 0;

  for (int iter = 0; iter < options_.max_iterations; ++iter) {
    ++total_iterations_;
    const double grad_norm =
        Gradient(X, y, weights, theta, options_.l2, &grad, &margins);
    const bool diverged = !std::isfinite(loss) || !std::isfinite(grad_norm) ||
                          FaultInjector::ShouldFail(fault_sites::kLrDescend);
    if (diverged) {
      if (retries >= options_.max_divergence_retries) {
        OF_LOG(Warning) << "logistic regression: divergence persisted after "
                        << retries << " retries; returning last checkpoint";
        theta = checkpoint;
        break;
      }
      ++retries;
      CountRecoveryEvent(RecoveryEvent::kDivergenceBackoff);
      OF_LOG(Warning) << "logistic regression: non-finite loss/gradient at "
                         "iteration "
                      << iter << "; backing off (retry " << retries << ")";
      theta = checkpoint;
      loss = checkpoint_loss;
      step = options_.learning_rate * std::pow(0.5, retries);
      continue;
    }
    if (grad_norm < options_.tolerance) break;

    // Backtracking line search on the full-batch loss.
    bool accepted = false;
    for (int attempt = 0; attempt < 30; ++attempt) {
      for (size_t c = 0; c <= d; ++c) candidate[c] = theta[c] - step * grad[c];
      const double candidate_loss =
          Loss(X, y, weights, candidate, options_.l2, &margins);
      if (candidate_loss <= loss) {
        theta.swap(candidate);
        loss = candidate_loss;
        accepted = true;
        // Gently expand the step after success to speed convergence.
        step = std::min(step * 1.25, 64.0);
        break;
      }
      step *= 0.5;
    }
    if (!accepted) break;  // step underflow: converged to numeric precision
    if (std::isfinite(loss)) {
      checkpoint = theta;
      checkpoint_loss = loss;
    }
  }

  if (warm_start_) warm_theta_ = theta;
  const double intercept = theta[d];
  theta.resize(d);
  return std::make_unique<LogisticRegressionModel>(std::move(theta), intercept);
}

std::unique_ptr<Classifier> LogisticRegressionTrainer::FitMiniBatch(
    const Matrix& X, const std::vector<int>& y, const std::vector<double>& weights) {
  OF_TRACE_SPAN("fit/lr_sgd");
  OF_SCOPED_LATENCY_US("ml.fit_us.lr");
  const size_t n = X.rows();
  const size_t d = X.cols();
  const size_t batch = std::min(options_.batch_size, n);
  const size_t num_batches = batch > 0 ? (n + batch - 1) / batch : 0;

  std::vector<double> theta(d + 1, 0.0);
  const bool warm_usable =
      warm_start_ && warm_theta_.size() == d + 1 &&
      std::all_of(warm_theta_.begin(), warm_theta_.end(),
                  [](double value) { return std::isfinite(value); });
  if (warm_usable) theta = warm_theta_;
  if (n == 0 || num_batches == 0) {
    return std::make_unique<LogisticRegressionModel>(std::vector<double>(d, 0.0), 0.0);
  }

  std::vector<double> grad(d + 1, 0.0);
  Rng shuffle_rng(options_.shuffle_seed);

  // Same recovery contract as the full-batch loop (DESIGN.md §8): the
  // checkpoint is the last end-of-epoch theta whose running loss (which,
  // through the L2 term, also covers theta itself) was finite; a non-finite
  // epoch rolls back to it with a halved learning rate.
  std::vector<double> checkpoint = theta;
  double learning_rate = options_.learning_rate;
  int retries = 0;
  double previous_loss = std::numeric_limits<double>::infinity();
  long long global_batch = 0;  // drives the kInvSqrt decay across epochs

  for (int epoch = 1; epoch <= options_.epochs; ++epoch) {
    // Deterministic per-epoch batch order: one sequential draw per epoch from
    // a single seeded stream, independent of thread count.
    const std::vector<size_t> order = shuffle_rng.Permutation(num_batches);
    double epoch_loss = 0.0;
    for (size_t b : order) {
      const size_t begin = b * batch;
      const size_t end = std::min(n, begin + batch);
      epoch_loss += BatchLossGradient(X, y, weights, theta, begin, end, &grad);
      ++global_batch;
      ++total_iterations_;
      double step = learning_rate;
      if (options_.lr_schedule == LrSchedule::kInvSqrt) {
        step /= std::sqrt(static_cast<double>(global_batch));
      }
      const double inv_rows = 1.0 / static_cast<double>(end - begin);
      for (size_t c = 0; c < d; ++c) {
        theta[c] -= step * (grad[c] * inv_rows + options_.l2 * theta[c]);
      }
      theta[d] -= step * grad[d] * inv_rows;
    }
    OF_COUNTER_ADD("sgd.batches", static_cast<long long>(order.size()));
    OF_COUNTER_INC("sgd.epochs");
    epoch_loss /= static_cast<double>(n);
    for (size_t c = 0; c < d; ++c) {
      epoch_loss += 0.5 * options_.l2 * theta[c] * theta[c];
    }

    const bool diverged = !std::isfinite(epoch_loss) ||
                          FaultInjector::ShouldFail(fault_sites::kLrDescend);
    if (diverged) {
      if (retries >= options_.max_divergence_retries) {
        OF_LOG(Warning) << "logistic regression (sgd): divergence persisted "
                           "after "
                        << retries << " retries; returning last checkpoint";
        theta = checkpoint;
        break;
      }
      ++retries;
      CountRecoveryEvent(RecoveryEvent::kDivergenceBackoff);
      OF_LOG(Warning) << "logistic regression (sgd): non-finite epoch loss at "
                         "epoch "
                      << epoch << "; backing off (retry " << retries << ")";
      theta = checkpoint;
      learning_rate *= 0.5;
      previous_loss = std::numeric_limits<double>::infinity();
      continue;
    }
    checkpoint = theta;
    if (std::fabs(previous_loss - epoch_loss) <
        options_.tolerance * std::max(1.0, std::fabs(previous_loss))) {
      break;
    }
    previous_loss = epoch_loss;
  }

  // The loop can only exit with non-finite theta if every epoch diverged and
  // retries ran out before a finite checkpoint existed; guard regardless.
  if (!std::all_of(theta.begin(), theta.end(),
                   [](double value) { return std::isfinite(value); })) {
    theta = checkpoint;
  }
  if (warm_start_) warm_theta_ = theta;
  const double intercept = theta[d];
  theta.resize(d);
  return std::make_unique<LogisticRegressionModel>(std::move(theta), intercept);
}

}  // namespace omnifair
