#include "util/metrics_export.h"

#include <atomic>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "tests/testing_json.h"
#include "util/telemetry.h"

namespace omnifair {
namespace {

using ::omnifair::testing::JsonIsValid;

// ---------------------------------------------------------------------------
// HistogramSnapshot::Quantile
// ---------------------------------------------------------------------------

MetricsSnapshot::HistogramSnapshot MakeHist(std::vector<double> bounds,
                                            std::vector<long long> buckets,
                                            double min, double max) {
  MetricsSnapshot::HistogramSnapshot h;
  h.name = "test";
  h.bounds = std::move(bounds);
  h.buckets = std::move(buckets);
  for (long long b : h.buckets) h.count += b;
  h.min = min;
  h.max = max;
  return h;
}

TEST(QuantileTest, EmptyHistogramIsZero) {
  const auto h = MakeHist({1.0, 2.0}, {0, 0, 0}, 0.0, 0.0);
  EXPECT_EQ(h.Quantile(0.5), 0.0);
  EXPECT_EQ(h.Quantile(0.0), 0.0);
  EXPECT_EQ(h.Quantile(1.0), 0.0);
}

TEST(QuantileTest, ExtremesReturnMinAndMax) {
  const auto h = MakeHist({10.0, 100.0}, {3, 4, 2}, 2.0, 250.0);
  EXPECT_EQ(h.Quantile(0.0), 2.0);
  EXPECT_EQ(h.Quantile(-1.0), 2.0);
  EXPECT_EQ(h.Quantile(1.0), 250.0);
  EXPECT_EQ(h.Quantile(2.0), 250.0);
}

TEST(QuantileTest, InterpolatesWithinBucket) {
  // All 10 observations in (1, 2]: the median interpolates to the bucket
  // midpoint region and every estimate stays inside the bucket.
  const auto h = MakeHist({1.0, 2.0, 3.0}, {0, 10, 0, 0}, 1.2, 1.9);
  const double p50 = h.Quantile(0.5);
  EXPECT_GE(p50, 1.2);
  EXPECT_LE(p50, 1.9);
}

TEST(QuantileTest, SingleBucketMassClampsToDataRange) {
  // Mass in the first bucket whose nominal range [min, bound] is wider than
  // the actual data range: estimates must clamp to [min, max].
  const auto h = MakeHist({10.0}, {4, 0}, 4.0, 6.0);
  for (double q : {0.1, 0.5, 0.9, 0.99}) {
    const double value = h.Quantile(q);
    EXPECT_GE(value, 4.0) << "q=" << q;
    EXPECT_LE(value, 6.0) << "q=" << q;
  }
}

TEST(QuantileTest, AllMassInOverflowBucket) {
  // Overflow interpolates between the last bound and max, clamped to data.
  const auto h = MakeHist({1.0}, {0, 8}, 5.0, 9.0);
  for (double q : {0.25, 0.5, 0.75}) {
    const double value = h.Quantile(q);
    EXPECT_GE(value, 5.0) << "q=" << q;
    EXPECT_LE(value, 9.0) << "q=" << q;
  }
  EXPECT_EQ(h.Quantile(1.0), 9.0);
}

TEST(QuantileTest, MonotoneInQ) {
  const auto h = MakeHist({1.0, 10.0, 100.0, 1000.0}, {5, 20, 10, 3, 1}, 0.5,
                          1500.0);
  double previous = h.Quantile(0.0);
  for (double q = 0.05; q <= 1.0; q += 0.05) {
    const double value = h.Quantile(q);
    EXPECT_GE(value, previous) << "q=" << q;
    previous = value;
  }
}

// ---------------------------------------------------------------------------
// Prometheus exposition
// ---------------------------------------------------------------------------

TEST(PrometheusTest, SanitizesMetricNames) {
  EXPECT_EQ(PrometheusMetricName("tree.hist_build_us"),
            "omnifair_tree_hist_build_us");
  EXPECT_EQ(PrometheusMetricName("weights.cache-hits"),
            "omnifair_weights_cache_hits");
  EXPECT_EQ(PrometheusMetricName("plain"), "omnifair_plain");
  // A custom (empty) prefix must still yield a valid name for a metric that
  // starts with a digit.
  EXPECT_EQ(PrometheusMetricName("2fast", ""), "_2fast");
}

TEST(PrometheusTest, ExposesCountersGaugesAndHistograms) {
  MetricsRegistry::Global().GetCounter("prom.test_counter")->Add(5);
  MetricsRegistry::Global().GetGauge("prom.test_gauge")->Set(2.5);
  Histogram* histogram =
      MetricsRegistry::Global().GetHistogram("prom.test_hist", {1.0, 10.0});
  histogram->Reset();
  histogram->Record(0.5);
  histogram->Record(5.0);
  histogram->Record(99.0);  // overflow

  const std::string text =
      PrometheusText(MetricsRegistry::Global().Snapshot());
  EXPECT_NE(text.find("# TYPE omnifair_prom_test_counter counter"),
            std::string::npos);
  EXPECT_NE(text.find("omnifair_prom_test_counter 5"), std::string::npos);
  EXPECT_NE(text.find("# TYPE omnifair_prom_test_gauge gauge"),
            std::string::npos);
  EXPECT_NE(text.find("omnifair_prom_test_gauge 2.5"), std::string::npos);
  // Histogram buckets are cumulative and end in the +Inf bucket == count.
  EXPECT_NE(text.find("omnifair_prom_test_hist_bucket{le=\"1\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("omnifair_prom_test_hist_bucket{le=\"10\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("omnifair_prom_test_hist_bucket{le=\"+Inf\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("omnifair_prom_test_hist_count 3"), std::string::npos);
  EXPECT_NE(text.find("omnifair_prom_test_hist_sum"), std::string::npos);
  EXPECT_NE(text.find("omnifair_prom_test_hist_quantile{quantile=\"0.5\"}"),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// MetricsExporter
// ---------------------------------------------------------------------------

std::string TempJsonlPath(const std::string& stem) {
  return ::testing::TempDir() + stem + ".jsonl";
}

std::vector<std::string> ReadLines(const std::string& path) {
  std::ifstream in(path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

TEST(MetricsExporterTest, StartRequiresAPath) {
  MetricsExporter exporter(MetricsExporterOptions{});
  const Status status = exporter.Start();
  EXPECT_FALSE(status.ok());
  EXPECT_FALSE(exporter.running());
}

TEST(MetricsExporterTest, DoubleStartFails) {
  MetricsExporterOptions options;
  options.path = TempJsonlPath("exporter_double_start");
  std::remove(options.path.c_str());
  MetricsExporter exporter(options);
  ASSERT_TRUE(exporter.Start().ok());
  EXPECT_FALSE(exporter.Start().ok());
  exporter.Stop();
  EXPECT_FALSE(exporter.running());
  std::remove(options.path.c_str());
}

TEST(MetricsExporterTest, WritesValidJsonlWithFinalLine) {
  MetricsExporterOptions options;
  options.path = TempJsonlPath("exporter_roundtrip");
  options.interval_ms = 10;
  std::remove(options.path.c_str());

  MetricsRegistry::Global().GetCounter("export.test_counter")->Reset();
  MetricsExporter exporter(options);
  ASSERT_TRUE(exporter.Start().ok());
  EXPECT_TRUE(exporter.running());
  // Record while the exporter snapshots concurrently (the TSan-relevant
  // interleaving: registry writers vs the exporter's snapshot reader).
  std::atomic<bool> stop{false};
  std::thread writer([&stop] {
    Histogram* histogram = MetricsRegistry::Global().GetHistogram(
        "export.test_hist", {1.0, 10.0, 100.0});
    while (!stop.load(std::memory_order_relaxed)) {
      OF_COUNTER_INC("export.test_counter");
      histogram->Record(3.0);
      std::this_thread::yield();
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  stop.store(true, std::memory_order_relaxed);
  writer.join();
  exporter.Stop();
  EXPECT_FALSE(exporter.running());
  EXPECT_GE(exporter.snapshots_written(), 2);

  const std::vector<std::string> lines = ReadLines(options.path);
  ASSERT_EQ(static_cast<long long>(lines.size()), exporter.snapshots_written());
  for (size_t i = 0; i < lines.size(); ++i) {
    EXPECT_TRUE(JsonIsValid(lines[i])) << lines[i];
    EXPECT_NE(lines[i].find("\"schema\":\"omnifair.metrics\""),
              std::string::npos);
    std::ostringstream seq;
    seq << "\"seq\":" << i + 1 << ",";
    EXPECT_NE(lines[i].find(seq.str()), std::string::npos) << lines[i];
    const bool last = i + 1 == lines.size();
    EXPECT_NE(lines[i].find(last ? "\"final\":true" : "\"final\":false"),
              std::string::npos);
  }
  // The totals reach the file: the final cumulative snapshot names both
  // metrics the writer thread touched.
  EXPECT_NE(lines.back().find("\"export.test_counter\""), std::string::npos);
  EXPECT_NE(lines.back().find("\"export.test_hist\""), std::string::npos);
  std::remove(options.path.c_str());
}

TEST(MetricsExporterTest, StopIsIdempotentAndRestartAppends) {
  MetricsExporterOptions options;
  options.path = TempJsonlPath("exporter_restart");
  options.interval_ms = 10;
  std::remove(options.path.c_str());

  MetricsExporter first(options);
  ASSERT_TRUE(first.Start().ok());
  first.Stop();
  first.Stop();  // no-op
  const size_t after_first = ReadLines(options.path).size();
  EXPECT_GE(after_first, 1u);  // at least the final line

  // A fresh exporter on the same path appends a new run whose seq restarts
  // at 1 (the append-mode contract check_metrics_jsonl.py validates).
  MetricsExporter second(options);
  ASSERT_TRUE(second.Start().ok());
  second.Stop();
  const std::vector<std::string> lines = ReadLines(options.path);
  EXPECT_GT(lines.size(), after_first);
  EXPECT_NE(lines[after_first].find("\"seq\":1,"), std::string::npos);
  std::remove(options.path.c_str());
}

}  // namespace
}  // namespace omnifair
