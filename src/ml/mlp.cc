#include "ml/mlp.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "linalg/simd.h"
#include "linalg/vector_ops.h"
#include "util/fault_injector.h"
#include "util/logging.h"
#include "util/random.h"
#include "util/telemetry.h"
#include "util/trace.h"

namespace omnifair {
namespace {

// Flat parameter layout: [W1 (h*d), b1 (h), w2 (h), b2 (1)].
size_t ParamCount(size_t d, size_t h) { return h * d + h + h + 1; }

struct Views {
  double* W1;
  double* b1;
  double* w2;
  double* b2;
};

Views MakeViews(std::vector<double>& params, size_t d, size_t h) {
  Views v;
  v.W1 = params.data();
  v.b1 = params.data() + h * d;
  v.w2 = params.data() + h * d + h;
  v.b2 = params.data() + h * d + h + h;
  return v;
}

/// Forward/backward over rows [begin, end) at parameters `v`, accumulating
/// unnormalized gradient sums into `g`; returns the unnormalized weighted
/// loss sum. `hidden` / `relu_active` are caller-owned scratch of size h.
/// Shared verbatim by the full-batch loop (called with the whole row range)
/// and the mini-batch loop, so both see identical per-row arithmetic.
double AccumulateLossGrad(const Matrix& X, const std::vector<int>& y,
                          const std::vector<double>& weights, const Views& v,
                          const Views& g, size_t begin, size_t end, size_t d,
                          size_t h, std::vector<double>& hidden,
                          std::vector<double>& relu_active) {
  const bool f32 = X.is_float32();
  const simd::Kernels& kernels = simd::Active();
  double loss = 0.0;
  for (size_t i = begin; i < end; ++i) {
    // Forward/backward dots and the gradient rank-1 update run on the simd
    // kernels; float32 feature rows widen per lane against the double
    // parameters, so accumulators stay double in either storage mode.
    const double* row = f32 ? nullptr : X.Row(i);
    const float* rowf = f32 ? X.RowF(i) : nullptr;
    double z2 = *v.b2;
    for (size_t j = 0; j < h; ++j) {
      const double* wj = v.W1 + j * d;
      const double z = v.b1[j] + (f32 ? kernels.dot_f32(rowf, wj, d)
                                      : kernels.dot(wj, row, d));
      relu_active[j] = z > 0.0 ? 1.0 : 0.0;
      hidden[j] = z > 0.0 ? z : 0.0;
      z2 += v.w2[j] * hidden[j];
    }
    const double target = y[i] == 1 ? 1.0 : 0.0;
    loss += weights[i] * (Log1pExp(z2) - target * z2);
    const double delta2 = weights[i] * (Sigmoid(z2) - target);
    *g.b2 += delta2;
    for (size_t j = 0; j < h; ++j) {
      g.w2[j] += delta2 * hidden[j];
      const double delta1 = delta2 * v.w2[j] * relu_active[j];
      if (delta1 == 0.0) continue;
      g.b1[j] += delta1;
      double* gw = g.W1 + j * d;
      if (f32) {
        kernels.axpy_f32(delta1, rowf, gw, d);
      } else {
        kernels.axpy(delta1, row, gw, d);
      }
    }
  }
  return loss;
}

}  // namespace

MlpModel::MlpModel(Matrix W1, std::vector<double> b1, std::vector<double> w2, double b2)
    : W1_(std::move(W1)), b1_(std::move(b1)), w2_(std::move(w2)), b2_(b2) {}

std::vector<double> MlpModel::PredictProba(const Matrix& X) const {
  OF_CHECK_EQ(X.cols(), W1_.cols());
  const size_t n = X.rows();
  const size_t h = W1_.rows();
  const bool f32 = X.is_float32();
  std::vector<double> proba(n);
  std::vector<double> hidden(h);  // one reused scratch row of activations
  const simd::Kernels& kernels = simd::Active();
  // Row-blocked batch predict: margins for a block of rows accumulate in the
  // output buffer, then one batched sigmoid pass per block while the block is
  // still cache-hot. 256 rows of margins is 2 KB — comfortably L1.
  constexpr size_t kBlockRows = 256;
  for (size_t start = 0; start < n; start += kBlockRows) {
    const size_t end = std::min(n, start + kBlockRows);
    for (size_t i = start; i < end; ++i) {
      if (f32) {
        W1_.MatVecInto(X.RowF(i), hidden.data());
      } else {
        W1_.MatVecInto(X.Row(i), hidden.data());
      }
      for (size_t j = 0; j < h; ++j) {
        const double z = hidden[j] + b1_[j];
        hidden[j] = z > 0.0 ? z : 0.0;  // ReLU
      }
      proba[i] = b2_ + kernels.dot(w2_.data(), hidden.data(), h);
    }
    kernels.sigmoid_inplace(proba.data() + start, end - start);
  }
  return proba;
}

MlpTrainer::MlpTrainer(MlpOptions options) : options_(options) {}

std::unique_ptr<Classifier> MlpTrainer::Fit(const Matrix& X, const std::vector<int>& y,
                                            const std::vector<double>& weights) {
  OF_CHECK_EQ(X.rows(), y.size());
  OF_CHECK_EQ(X.rows(), weights.size());
  OF_TRACE_SPAN("fit/nn");
  OF_SCOPED_LATENCY_US("ml.fit_us.nn");
  const size_t n = X.rows();
  const size_t d = X.cols();
  const size_t h = static_cast<size_t>(options_.hidden_units);
  const size_t p = ParamCount(d, h);

  std::vector<double> params(p);
  const bool warm_usable =
      warm_start_ && warm_params_.size() == p &&
      std::all_of(warm_params_.begin(), warm_params_.end(),
                  [](double value) { return std::isfinite(value); });
  if (warm_usable) {
    params = warm_params_;
  } else {
    Rng rng(options_.seed);
    const double scale = std::sqrt(2.0 / static_cast<double>(d));
    for (size_t k = 0; k < h * d; ++k) params[k] = rng.NextGaussian(0.0, scale);
    for (size_t k = h * d; k < p; ++k) params[k] = 0.0;
    const double out_scale = std::sqrt(2.0 / static_cast<double>(h));
    Views v = MakeViews(params, d, h);
    for (size_t j = 0; j < h; ++j) v.w2[j] = rng.NextGaussian(0.0, out_scale);
  }

  if (options_.batch_size > 0) {
    return FitMiniBatch(X, y, weights, std::move(params));
  }

  std::vector<double> grad(p, 0.0);
  std::vector<double> m(p, 0.0);
  std::vector<double> vv(p, 0.0);
  std::vector<double> hidden(h);
  std::vector<double> relu_active(h);
  const double beta1 = 0.9;
  const double beta2 = 0.999;
  const double adam_eps = 1e-8;
  double previous_loss = std::numeric_limits<double>::infinity();

  // Divergence recovery (DESIGN.md §8): `checkpoint` is the last parameter
  // vector whose epoch loss was finite; a non-finite loss rolls back to it
  // with reset Adam moments and a halved learning rate.
  std::vector<double> checkpoint = params;
  double learning_rate = options_.learning_rate;
  int retries = 0;

  for (int epoch = 1; epoch <= options_.max_epochs; ++epoch) {
    Views v = MakeViews(params, d, h);
    std::fill(grad.begin(), grad.end(), 0.0);
    Views g = MakeViews(grad, d, h);
    const double loss_sum = AccumulateLossGrad(X, y, weights, v, g, 0, n, d, h,
                                               hidden, relu_active);
    const double inv_n = 1.0 / static_cast<double>(n);
    double loss = loss_sum;
    loss *= inv_n;

    const bool diverged =
        !std::isfinite(loss) || FaultInjector::ShouldFail(fault_sites::kMlpEpoch);
    if (diverged) {
      if (retries >= options_.max_divergence_retries) {
        OF_LOG(Warning) << "mlp: divergence persisted after " << retries
                        << " retries; returning last checkpoint";
        params = checkpoint;
        break;
      }
      ++retries;
      CountRecoveryEvent(RecoveryEvent::kDivergenceBackoff);
      OF_LOG(Warning) << "mlp: non-finite loss at epoch " << epoch
                      << "; backing off (retry " << retries << ")";
      params = checkpoint;
      std::fill(m.begin(), m.end(), 0.0);
      std::fill(vv.begin(), vv.end(), 0.0);
      learning_rate *= 0.5;
      previous_loss = std::numeric_limits<double>::infinity();
      continue;
    }
    checkpoint = params;

    for (size_t k = 0; k < p; ++k) {
      grad[k] = grad[k] * inv_n + options_.l2 * params[k];
    }

    // Adam update.
    const double bc1 = 1.0 - std::pow(beta1, epoch);
    const double bc2 = 1.0 - std::pow(beta2, epoch);
    for (size_t k = 0; k < p; ++k) {
      m[k] = beta1 * m[k] + (1.0 - beta1) * grad[k];
      vv[k] = beta2 * vv[k] + (1.0 - beta2) * grad[k] * grad[k];
      params[k] -= learning_rate * (m[k] / bc1) /
                   (std::sqrt(vv[k] / bc2) + adam_eps);
    }

    if (std::fabs(previous_loss - loss) <
        options_.tolerance * std::max(1.0, std::fabs(previous_loss))) {
      break;
    }
    previous_loss = loss;
  }

  // The final Adam update runs after the epoch's loss check, so it can still
  // push a parameter out of range; fall back to the checkpoint then.
  if (!std::all_of(params.begin(), params.end(),
                   [](double value) { return std::isfinite(value); })) {
    CountRecoveryEvent(RecoveryEvent::kDivergenceBackoff);
    OF_LOG(Warning) << "mlp: non-finite parameters after training; "
                       "returning last checkpoint";
    params = checkpoint;
  }

  if (warm_start_) warm_params_ = params;

  Views v = MakeViews(params, d, h);
  Matrix W1(h, d);
  for (size_t j = 0; j < h; ++j) {
    for (size_t c = 0; c < d; ++c) W1(j, c) = v.W1[j * d + c];
  }
  std::vector<double> b1(v.b1, v.b1 + h);
  std::vector<double> w2(v.w2, v.w2 + h);
  return std::make_unique<MlpModel>(std::move(W1), std::move(b1), std::move(w2), *v.b2);
}

std::unique_ptr<Classifier> MlpTrainer::FitMiniBatch(
    const Matrix& X, const std::vector<int>& y, const std::vector<double>& weights,
    std::vector<double> params) {
  const size_t n = X.rows();
  const size_t d = X.cols();
  const size_t h = static_cast<size_t>(options_.hidden_units);
  const size_t p = ParamCount(d, h);
  const size_t batch = std::min(options_.batch_size, n);
  const size_t num_batches = batch > 0 ? (n + batch - 1) / batch : 0;
  if (num_batches == 0) {
    // Degenerate empty input: return the untrained initialization.
    Views v = MakeViews(params, d, h);
    Matrix W1(h, d);
    for (size_t j = 0; j < h; ++j) {
      for (size_t c = 0; c < d; ++c) W1(j, c) = v.W1[j * d + c];
    }
    return std::make_unique<MlpModel>(std::move(W1),
                                      std::vector<double>(v.b1, v.b1 + h),
                                      std::vector<double>(v.w2, v.w2 + h), *v.b2);
  }

  std::vector<double> grad(p, 0.0);
  std::vector<double> m(p, 0.0);
  std::vector<double> vv(p, 0.0);
  std::vector<double> hidden(h);
  std::vector<double> relu_active(h);
  const double beta1 = 0.9;
  const double beta2 = 0.999;
  const double adam_eps = 1e-8;
  // Independent shuffle stream forked off the init seed: batch order is a
  // function of (seed, epoch) alone, never of thread count.
  Rng shuffle_rng = Rng(options_.seed).Fork();

  // Same recovery contract as the full-batch loop (DESIGN.md §8), at epoch
  // granularity: rollback to the last finite-loss parameters, reset the Adam
  // moments, halve the learning rate.
  std::vector<double> checkpoint = params;
  double learning_rate = options_.learning_rate;
  int retries = 0;
  double previous_loss = std::numeric_limits<double>::infinity();
  long long t = 0;  // global batch counter: Adam bias correction + kInvSqrt

  for (int epoch = 1; epoch <= options_.epochs; ++epoch) {
    Views v = MakeViews(params, d, h);
    Views g = MakeViews(grad, d, h);
    const std::vector<size_t> order = shuffle_rng.Permutation(num_batches);
    double epoch_loss = 0.0;
    for (size_t b : order) {
      const size_t begin = b * batch;
      const size_t end = std::min(n, begin + batch);
      std::fill(grad.begin(), grad.end(), 0.0);
      epoch_loss += AccumulateLossGrad(X, y, weights, v, g, begin, end, d, h,
                                       hidden, relu_active);
      ++t;
      const double inv_rows = 1.0 / static_cast<double>(end - begin);
      for (size_t k = 0; k < p; ++k) {
        grad[k] = grad[k] * inv_rows + options_.l2 * params[k];
      }
      double step = learning_rate;
      if (options_.lr_schedule == LrSchedule::kInvSqrt) {
        step /= std::sqrt(static_cast<double>(t));
      }
      const double bc1 = 1.0 - std::pow(beta1, static_cast<double>(t));
      const double bc2 = 1.0 - std::pow(beta2, static_cast<double>(t));
      for (size_t k = 0; k < p; ++k) {
        m[k] = beta1 * m[k] + (1.0 - beta1) * grad[k];
        vv[k] = beta2 * vv[k] + (1.0 - beta2) * grad[k] * grad[k];
        params[k] -= step * (m[k] / bc1) / (std::sqrt(vv[k] / bc2) + adam_eps);
      }
    }
    OF_COUNTER_ADD("sgd.batches", static_cast<long long>(order.size()));
    OF_COUNTER_INC("sgd.epochs");
    epoch_loss /= static_cast<double>(n);

    const bool diverged = !std::isfinite(epoch_loss) ||
                          FaultInjector::ShouldFail(fault_sites::kMlpEpoch);
    if (diverged) {
      if (retries >= options_.max_divergence_retries) {
        OF_LOG(Warning) << "mlp (sgd): divergence persisted after " << retries
                        << " retries; returning last checkpoint";
        params = checkpoint;
        break;
      }
      ++retries;
      CountRecoveryEvent(RecoveryEvent::kDivergenceBackoff);
      OF_LOG(Warning) << "mlp (sgd): non-finite epoch loss at epoch " << epoch
                      << "; backing off (retry " << retries << ")";
      params = checkpoint;
      std::fill(m.begin(), m.end(), 0.0);
      std::fill(vv.begin(), vv.end(), 0.0);
      learning_rate *= 0.5;
      previous_loss = std::numeric_limits<double>::infinity();
      continue;
    }
    checkpoint = params;
    if (std::fabs(previous_loss - epoch_loss) <
        options_.tolerance * std::max(1.0, std::fabs(previous_loss))) {
      break;
    }
    previous_loss = epoch_loss;
  }

  // The last batch of a finite epoch can still push a parameter out of range;
  // fall back to the checkpoint then, exactly like the full-batch path.
  if (!std::all_of(params.begin(), params.end(),
                   [](double value) { return std::isfinite(value); })) {
    CountRecoveryEvent(RecoveryEvent::kDivergenceBackoff);
    OF_LOG(Warning) << "mlp (sgd): non-finite parameters after training; "
                       "returning last checkpoint";
    params = checkpoint;
  }

  if (warm_start_) warm_params_ = params;

  Views v = MakeViews(params, d, h);
  Matrix W1(h, d);
  for (size_t j = 0; j < h; ++j) {
    for (size_t c = 0; c < d; ++c) W1(j, c) = v.W1[j * d + c];
  }
  std::vector<double> b1(v.b1, v.b1 + h);
  std::vector<double> w2(v.w2, v.w2 + h);
  return std::make_unique<MlpModel>(std::move(W1), std::move(b1), std::move(w2), *v.b2);
}

}  // namespace omnifair
