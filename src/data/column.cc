#include "data/column.h"

#include "util/logging.h"

namespace omnifair {

Column Column::Numeric(std::string name) {
  return Column(std::move(name), ColumnType::kNumeric);
}

Column Column::Categorical(std::string name, std::vector<std::string> categories) {
  Column col(std::move(name), ColumnType::kCategorical);
  col.categories_ = std::move(categories);
  return col;
}

void Column::AppendNumeric(double value) {
  OF_CHECK(type_ == ColumnType::kNumeric) << "AppendNumeric on " << name_;
  values_.push_back(value);
}

void Column::AppendCode(int code) {
  OF_CHECK(type_ == ColumnType::kCategorical) << "AppendCode on " << name_;
  OF_CHECK_GE(code, 0);
  OF_CHECK_LT(static_cast<size_t>(code), categories_.size());
  codes_.push_back(code);
}

void Column::AppendCategory(const std::string& category) {
  OF_CHECK(type_ == ColumnType::kCategorical) << "AppendCategory on " << name_;
  int code = CodeOf(category);
  if (code < 0) {
    code = static_cast<int>(categories_.size());
    categories_.push_back(category);
  }
  codes_.push_back(code);
}

int Column::CodeOf(const std::string& category) const {
  for (size_t i = 0; i < categories_.size(); ++i) {
    if (categories_[i] == category) return static_cast<int>(i);
  }
  return -1;
}

Column Column::SelectRows(const std::vector<size_t>& indices) const {
  Column out(name_, type_);
  out.categories_ = categories_;
  if (type_ == ColumnType::kNumeric) {
    out.values_.reserve(indices.size());
    for (size_t i : indices) {
      OF_CHECK_LT(i, values_.size());
      out.values_.push_back(values_[i]);
    }
  } else {
    out.codes_.reserve(indices.size());
    for (size_t i : indices) {
      OF_CHECK_LT(i, codes_.size());
      out.codes_.push_back(codes_[i]);
    }
  }
  return out;
}

}  // namespace omnifair
