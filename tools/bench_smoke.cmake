# Smoke-runs one bench binary at tiny settings and validates the JSON it
# writes against the omnifair.bench schema. Invoked by the bench_json_smoke
# ctest target (bench/CMakeLists.txt) as:
#   cmake -D BENCH_BINARY=... -D CHECKER=.../check_bench_json.py
#         -D PYTHON=... -D OUT_DIR=... -P bench_smoke.cmake

foreach(required BENCH_BINARY CHECKER PYTHON OUT_DIR)
  if(NOT DEFINED ${required})
    message(FATAL_ERROR "bench_smoke.cmake: missing -D ${required}=...")
  endif()
endforeach()

set(ENV{OMNIFAIR_BENCH_ROWS} 400)
set(ENV{OMNIFAIR_BENCH_SEEDS} 1)
set(ENV{OMNIFAIR_BENCH_OUT} ${OUT_DIR})

execute_process(COMMAND ${BENCH_BINARY} RESULT_VARIABLE bench_result
                OUTPUT_QUIET)
if(NOT bench_result EQUAL 0)
  message(FATAL_ERROR "bench exited with status ${bench_result}")
endif()

file(GLOB json_files ${OUT_DIR}/*.json)
if(NOT json_files)
  message(FATAL_ERROR "bench wrote no JSON files into ${OUT_DIR}")
endif()

execute_process(COMMAND ${PYTHON} ${CHECKER} ${json_files}
                RESULT_VARIABLE check_result)
if(NOT check_result EQUAL 0)
  message(FATAL_ERROR "bench JSON failed schema validation")
endif()
