#ifndef OMNIFAIR_BENCH_BENCH_COMMON_H_
#define OMNIFAIR_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "baselines/agarwal.h"
#include "baselines/baseline.h"
#include "core/omnifair.h"
#include "data/datasets.h"
#include "data/split.h"
#include "linalg/vector_ops.h"
#include "ml/metrics.h"
#include "ml/trainer_registry.h"
#include "util/logging.h"
#include "util/stopwatch.h"
#include "util/string_utils.h"

namespace omnifair {
namespace bench {

/// Environment override helpers so all benches share the same knobs:
///   OMNIFAIR_BENCH_ROWS  - dataset size (0 = per-bench default)
///   OMNIFAIR_BENCH_SEEDS - number of random splits averaged
inline size_t EnvRows(size_t fallback) {
  const char* value = std::getenv("OMNIFAIR_BENCH_ROWS");
  if (value == nullptr) return fallback;
  const long parsed = std::atol(value);
  return parsed > 0 ? static_cast<size_t>(parsed) : fallback;
}

inline int EnvSeeds(int fallback) {
  const char* value = std::getenv("OMNIFAIR_BENCH_SEEDS");
  if (value == nullptr) return fallback;
  const int parsed = std::atoi(value);
  return parsed > 0 ? parsed : fallback;
}

/// Per-dataset bench defaults: a fraction of the paper's sizes so the whole
/// suite regenerates in minutes; scale up via OMNIFAIR_BENCH_ROWS to match
/// Table 4 exactly.
inline size_t DefaultRows(const std::string& dataset) {
  if (dataset == "adult") return EnvRows(5000);
  if (dataset == "compas") return EnvRows(4000);
  if (dataset == "lsac") return EnvRows(4000);
  if (dataset == "bank") return EnvRows(4000);
  return EnvRows(4000);
}

/// The two majority groups per dataset used for single-constraint
/// experiments (the paper's "groups defined on the sensitive attribute").
inline GroupingFunction MainGroups(const std::string& dataset) {
  if (dataset == "adult") return GroupByAttributeValues("sex", {"Male", "Female"});
  if (dataset == "compas") {
    return GroupByAttributeValues("race", {"African-American", "Caucasian"});
  }
  if (dataset == "lsac") return GroupByAttributeValues("race", {"White", "Black"});
  if (dataset == "bank") {
    return GroupByAttributeValues("age_group", {"working_age", "young_or_senior"});
  }
  return GroupByAttribute("sex");
}

inline Dataset MakeBenchDataset(const std::string& dataset, uint64_t seed) {
  SyntheticOptions options;
  options.num_rows = DefaultRows(dataset);
  options.seed = seed;
  return MakeDatasetByName(dataset, options);
}

/// Unified per-run outcome for every method (OmniFair, the six baselines,
/// and the unconstrained reference).
struct MethodResult {
  bool supported = false;
  bool satisfied = false;
  double val_accuracy = 0.0;
  double test_accuracy = 0.0;
  double test_disparity = 0.0;
  double test_auc = 0.5;
  double seconds = 0.0;
  int models_trained = 0;
};

inline MethodResult AuditToResult(const Classifier& model,
                                  const FeatureEncoder& encoder,
                                  const Dataset& test, const FairnessSpec& spec) {
  MethodResult out;
  auto audit = Audit(model, encoder, test, {spec});
  if (audit.ok()) {
    out.test_accuracy = audit->accuracy;
    out.test_disparity = audit->max_disparity;
    out.test_auc = audit->roc_auc;
  }
  return out;
}

/// Runs one method on one split. `method` is one of: "unconstrained",
/// "omnifair", "kamiran", "calmon", "zafar", "celis", "agarwal", "thomas".
/// For "thomas" the trainer is ignored (it brings its own CMA-ES model).
inline MethodResult RunMethod(const std::string& method,
                              const TrainValTestSplit& split,
                              const std::string& trainer_name,
                              const FairnessSpec& spec, uint64_t seed) {
  MethodResult out;
  if (method == "unconstrained" || method == "omnifair") {
    auto trainer = MakeTrainer(trainer_name, seed);
    FairnessSpec effective = spec;
    if (method == "unconstrained") effective.epsilon = 10.0;  // never binds
    OmniFairOptions options;
    options.warm_start = false;
    OmniFair omnifair(options);
    auto fair = omnifair.Train(split.train, split.val, trainer.get(), {effective});
    if (!fair.ok()) return out;
    out = AuditToResult(*fair->model, fair->encoder, split.test, spec);
    out.supported = true;
    out.satisfied = fair->satisfied;
    out.val_accuracy = fair->val_accuracy;
    out.seconds = fair->train_seconds;
    out.models_trained = fair->models_trained;
    return out;
  }

  std::unique_ptr<FairnessBaseline> baseline;
  if (method == "agarwal") {
    // Fewer game iterations in the bench suite; quality is unaffected at
    // these dataset sizes and the method stays ~bench-scale.
    AgarwalReductions::Options options;
    options.iterations = 40;
    baseline = std::make_unique<AgarwalReductions>(options);
  } else {
    baseline = MakeBaseline(method);
  }
  std::unique_ptr<Trainer> trainer;
  if (method != "thomas") {
    trainer = MakeTrainer(trainer_name, seed);
    if (!baseline->SupportsTrainer(*trainer)) return out;  // NA(2)
  }
  if (!baseline->SupportsMetric(*spec.metric)) return out;  // NA(2)
  auto result = baseline->Train(split.train, split.val, trainer.get(), spec);
  if (!result.ok()) return out;
  out = AuditToResult(*result->model, result->encoder, split.test, spec);
  out.supported = true;
  out.satisfied = result->satisfied;
  out.val_accuracy = result->val_accuracy;
  out.seconds = result->train_seconds;
  out.models_trained = result->models_trained;
  return out;
}

/// Aggregates per-seed runs. Unsupported runs (NA(2)) are skipped by Add;
/// satisfied-run means are tracked separately so tables can follow the
/// paper's protocol: a method's cell is NA(1) only when *no* split
/// satisfied the constraint, otherwise it reports the mean over the
/// satisfying splits.
struct Aggregate {
  int runs = 0;
  int satisfied = 0;
  double test_accuracy = 0.0;
  double test_disparity = 0.0;
  double test_auc = 0.0;
  double seconds = 0.0;
  double models = 0.0;
  double sat_accuracy = 0.0;
  double sat_disparity = 0.0;
  double sat_auc = 0.0;

  void Add(const MethodResult& r) {
    if (!r.supported) return;
    ++runs;
    test_accuracy += r.test_accuracy;
    test_disparity += r.test_disparity;
    test_auc += r.test_auc;
    seconds += r.seconds;
    models += r.models_trained;
    if (r.satisfied) {
      ++satisfied;
      sat_accuracy += r.test_accuracy;
      sat_disparity += r.test_disparity;
      sat_auc += r.test_auc;
    }
  }
  double MeanAccuracy() const { return runs ? test_accuracy / runs : 0.0; }
  double MeanDisparity() const { return runs ? test_disparity / runs : 0.0; }
  double MeanAuc() const { return runs ? test_auc / runs : 0.0; }
  double MeanSeconds() const { return runs ? seconds / runs : 0.0; }
  double MeanModels() const { return runs ? models / runs : 0.0; }
  double SatisfiedAccuracy() const {
    return satisfied ? sat_accuracy / satisfied : 0.0;
  }
  double SatisfiedDisparity() const {
    return satisfied ? sat_disparity / satisfied : 0.0;
  }
  double SatisfiedAuc() const { return satisfied ? sat_auc / satisfied : 0.0; }
  bool AllSatisfied() const { return runs > 0 && satisfied == runs; }
  bool AnySatisfied() const { return satisfied > 0; }
};

inline void PrintHeader(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

/// Prints the process-wide recovery-event counters (DESIGN.md §8) so bench
/// output shows how often trainers diverged, metrics went non-finite, or
/// budgets expired during the run. "recovery events: none" is the healthy
/// baseline.
inline void PrintRecoveryEvents() {
  std::printf("recovery events: %s\n", RecoveryEventSummary().c_str());
}

}  // namespace bench
}  // namespace omnifair

#endif  // OMNIFAIR_BENCH_BENCH_COMMON_H_
