#include "data/stream_reader.h"

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "data/chunked_dataset.h"
#include "data/csv.h"
#include "data/datasets.h"
#include "data/encoder.h"
#include "data/synthetic_stream.h"
#include "util/fault_injector.h"

namespace omnifair {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

void WriteFile(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary);
  out << content;
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

struct ScannedRecord {
  std::string text;
  uint64_t offset;
};

/// Feeds `content` to a scanner in chunks of `chunk_size` bytes.
std::vector<ScannedRecord> ScanInChunks(const std::string& content,
                                        size_t chunk_size) {
  CsvRecordScanner scanner;
  std::vector<ScannedRecord> records;
  auto on_record = [&](std::string_view record, uint64_t offset) {
    records.push_back({std::string(record), offset});
  };
  for (size_t i = 0; i < content.size(); i += chunk_size) {
    scanner.Feed(content.substr(i, chunk_size), on_record);
  }
  scanner.Finish(on_record);
  return records;
}

// ---------------------------------------------------------------------------
// CsvRecordScanner: chunk-boundary behavior
// ---------------------------------------------------------------------------

TEST(CsvRecordScannerTest, QuotedNewlineSpanningChunkBoundary) {
  // The quoted field contains a '\n' and the chunk boundary lands inside the
  // quote, so the scanner must NOT split the record there.
  const std::string content = "a,b\n1,\"x\ny\"\n2,z\n";
  for (size_t chunk_size = 1; chunk_size <= content.size(); ++chunk_size) {
    const auto records = ScanInChunks(content, chunk_size);
    ASSERT_EQ(records.size(), 3u) << "chunk size " << chunk_size;
    EXPECT_EQ(records[0].text, "a,b");
    EXPECT_EQ(records[1].text, "1,\"x\ny\"");
    EXPECT_EQ(records[2].text, "2,z");
  }
}

TEST(CsvRecordScannerTest, CrlfStraddlingChunks) {
  // '\r' at the end of one chunk, '\n' at the start of the next: the '\r'
  // sits in the carry buffer and must still be trimmed from the record.
  const std::string content = "a,b\r\n1,2\r\n";
  for (size_t chunk_size = 1; chunk_size <= content.size(); ++chunk_size) {
    const auto records = ScanInChunks(content, chunk_size);
    ASSERT_EQ(records.size(), 2u) << "chunk size " << chunk_size;
    EXPECT_EQ(records[0].text, "a,b");
    EXPECT_EQ(records[1].text, "1,2");
  }
}

TEST(CsvRecordScannerTest, FinalRecordWithoutTrailingNewline) {
  const std::string content = "a,b\n1,2";  // no terminator on the last row
  const auto records = ScanInChunks(content, 3);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[1].text, "1,2");
  EXPECT_EQ(records[1].offset, 4u);
}

TEST(CsvRecordScannerTest, ReportsAbsoluteByteOffsets) {
  const std::string content = "head\nfirst\nsecond\n";
  const auto records = ScanInChunks(content, 4);
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[0].offset, 0u);
  EXPECT_EQ(records[1].offset, 5u);
  EXPECT_EQ(records[2].offset, 11u);
}

TEST(CsvRecordScannerTest, UnterminatedQuoteVisibleAtEof) {
  CsvRecordScanner scanner;
  std::vector<ScannedRecord> records;
  auto on_record = [&](std::string_view record, uint64_t offset) {
    records.push_back({std::string(record), offset});
  };
  scanner.Feed("a\n\"open", on_record);
  EXPECT_TRUE(scanner.in_quotes());
  EXPECT_EQ(records.size(), 1u);
}

// ---------------------------------------------------------------------------
// StreamCsvToChunked
// ---------------------------------------------------------------------------

StreamIngestOptions BasicIngestOptions() {
  StreamIngestOptions options;
  options.label_column = "label";
  options.group_column = "grp";
  return options;
}

std::string BasicCsv() {
  return
      "age,grp,score,label\n"
      "25,a,1.5,1\n"
      "40,b,2.5,0\n"
      "31,a,0.5,1\n"
      "52,b,3.5,0\n"
      "47,a,2.0,1\n"
      "29,b,1.0,0\n";
}

TEST(StreamIngestTest, SingleBlockMatchesInMemoryEncoding) {
  const std::string csv = TempPath("ingest_parity.csv");
  const std::string out = TempPath("ingest_parity.ofcd");
  WriteFile(csv, BasicCsv());

  StreamIngestOptions options = BasicIngestOptions();
  options.block_rows = 100;  // everything in one block
  Result<IngestStats> stats = StreamCsvToChunked(csv, out, options);
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_EQ(stats->rows, 6u);
  EXPECT_EQ(stats->blocks, 1u);

  // In-memory reference: same CSV through ReadCsv + FeatureEncoder.
  CsvReadOptions read_options;
  read_options.label_column = "label";
  read_options.force_categorical = {"grp"};
  Result<Dataset> dataset = ReadCsv(csv, read_options);
  ASSERT_TRUE(dataset.ok());
  FeatureEncoder encoder;
  EncoderOptions encoder_options;
  encoder_options.float32_features = true;
  const Matrix expected = encoder.FitTransform(*dataset, encoder_options);

  Result<ChunkedDataset> chunked = ChunkedDataset::Open(out);
  ASSERT_TRUE(chunked.ok()) << chunked.status();
  EXPECT_EQ(chunked->total_rows(), 6u);
  EXPECT_EQ(chunked->meta().num_features, expected.cols());
  EXPECT_EQ(chunked->meta().label_name, "label");
  EXPECT_EQ(chunked->meta().group_column, "grp");
  ASSERT_EQ(chunked->meta().group_names.size(), 2u);
  EXPECT_EQ(chunked->meta().group_names[0], "a");
  EXPECT_EQ(chunked->meta().group_names[1], "b");

  Result<DatasetBlock> block = chunked->MaterializeBlock(0);
  ASSERT_TRUE(block.ok()) << block.status();
  ASSERT_EQ(block->features.rows(), 6u);
  for (size_t r = 0; r < 6; ++r) {
    for (size_t c = 0; c < expected.cols(); ++c) {
      EXPECT_EQ(block->features.RowF(r)[c], expected.RowF(r)[c])
          << "row " << r << " col " << c;
    }
    EXPECT_EQ(block->labels[r], dataset->Label(r));
    EXPECT_EQ(block->groups[r], dataset->ColumnByName("grp").Code(r));
  }

  // The stored encoder round-trips.
  Result<FeatureEncoder> loaded = chunked->LoadEncoder();
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->NumFeatures(), expected.cols());
}

TEST(StreamIngestTest, TinyReadChunksAndBlocksStillParse) {
  // Chunk boundaries land mid-record, mid-quote, and mid-CRLF; blocks of two
  // rows exercise the multi-block path.
  const std::string csv = TempPath("ingest_tiny.csv");
  const std::string out = TempPath("ingest_tiny.ofcd");
  WriteFile(csv,
            "age,grp,note,label\r\n"
            "25,a,\"line\nbreak\",1\r\n"
            "40,b,plain,0\r\n"
            "31,a,\"with,comma\",1\r\n"
            "52,b,last,0");  // no trailing newline

  StreamIngestOptions options = BasicIngestOptions();
  options.block_rows = 2;
  options.use_mmap = false;  // force the chunked-read path the test targets
  options.read_chunk_bytes = 5;
  Result<IngestStats> stats = StreamCsvToChunked(csv, out, options);
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_EQ(stats->rows, 4u);
  EXPECT_EQ(stats->blocks, 2u);
  EXPECT_GT(stats->chunks, 5u);

  Result<ChunkedDataset> chunked = ChunkedDataset::Open(out);
  ASSERT_TRUE(chunked.ok()) << chunked.status();
  EXPECT_EQ(chunked->total_rows(), 4u);
  ASSERT_EQ(chunked->num_blocks(), 2u);
  Result<DatasetBlock> first = chunked->MaterializeBlock(0);
  Result<DatasetBlock> second = chunked->MaterializeBlock(1);
  ASSERT_TRUE(first.ok()) << first.status();
  ASSERT_TRUE(second.ok()) << second.status();
  EXPECT_EQ(first->labels, (std::vector<int>{1, 0}));
  EXPECT_EQ(second->labels, (std::vector<int>{1, 0}));
  EXPECT_EQ(first->groups, (std::vector<int>{0, 1}));
}

TEST(StreamIngestTest, ParallelParseIsByteIdenticalToSerial) {
  const std::string csv = TempPath("ingest_det.csv");
  WriteFile(csv, BasicCsv());

  const std::string serial_out = TempPath("ingest_det_serial.ofcd");
  const std::string parallel_out = TempPath("ingest_det_parallel.ofcd");
  StreamIngestOptions options = BasicIngestOptions();
  options.block_rows = 2;
  options.num_threads = 1;
  ASSERT_TRUE(StreamCsvToChunked(csv, serial_out, options).ok());
  options.num_threads = 0;  // full pool width
  ASSERT_TRUE(StreamCsvToChunked(csv, parallel_out, options).ok());
  EXPECT_EQ(ReadFile(serial_out), ReadFile(parallel_out));
}

TEST(StreamIngestTest, MmapAndChunkedReadProduceIdenticalFiles) {
  // The zero-copy mapped scan and the chunked read(2) fallback must agree
  // byte-for-byte, including on quoted newlines and a missing trailing
  // newline.
  const std::string csv = TempPath("ingest_mmap.csv");
  WriteFile(csv,
            "age,grp,note,label\r\n"
            "25,a,\"line\nbreak\",1\r\n"
            "40,b,plain,0\r\n"
            "31,a,\"with,comma\",1\r\n"
            "52,b,last,0");  // no trailing newline

  const std::string mmap_out = TempPath("ingest_mmap_on.ofcd");
  const std::string read_out = TempPath("ingest_mmap_off.ofcd");
  StreamIngestOptions options = BasicIngestOptions();
  options.block_rows = 2;
  ASSERT_TRUE(StreamCsvToChunked(csv, mmap_out, options).ok());
  options.use_mmap = false;
  options.read_chunk_bytes = 7;  // force many chunk boundaries
  ASSERT_TRUE(StreamCsvToChunked(csv, read_out, options).ok());
  EXPECT_EQ(ReadFile(mmap_out), ReadFile(read_out));
}

TEST(StreamIngestTest, ErrorsCarryRecordNumberAndByteOffset) {
  // "age" is inferred numeric from block 0 (rows 2-3); "oops" arrives in a
  // later block and must fail with the record number + absolute byte offset.
  const std::string csv = TempPath("ingest_err.csv");
  const std::string out = TempPath("ingest_err.ofcd");
  const std::string content =
      "age,grp,label\n"
      "25,a,1\n"
      "30,b,0\n"
      "oops,a,1\n";
  WriteFile(csv, content);

  StreamIngestOptions options = BasicIngestOptions();
  options.block_rows = 2;
  Result<IngestStats> stats = StreamCsvToChunked(csv, out, options);
  ASSERT_FALSE(stats.ok());
  const std::string message = stats.status().message();
  // Header is record 1, so the bad row is record 4, at the offset of "oops".
  const size_t expected_offset = content.find("oops");
  EXPECT_NE(message.find("record 4"), std::string::npos) << message;
  EXPECT_NE(message.find("(byte " + std::to_string(expected_offset) + ")"),
            std::string::npos)
      << message;
}

TEST(StreamIngestTest, UnterminatedQuoteBlamesTheDanglingRecord) {
  // A quote left open at EOF must point at the record it opened in (which
  // is never emitted), not at the last complete record — on the mmap scan
  // and the chunked-read fallback alike.
  const std::string csv = TempPath("ingest_dangling.csv");
  const std::string content =
      "age,grp,label\n"
      "25,a,1\n"
      "\"open,b,0";  // record 3, quote never closed
  WriteFile(csv, content);
  const size_t expected_offset = content.find("\"open");

  StreamIngestOptions options = BasicIngestOptions();
  for (const bool use_mmap : {true, false}) {
    options.use_mmap = use_mmap;
    Result<IngestStats> stats =
        StreamCsvToChunked(csv, TempPath("ingest_dangling.ofcd"), options);
    ASSERT_FALSE(stats.ok());
    const std::string message = stats.status().message();
    EXPECT_NE(message.find("record 3"), std::string::npos)
        << "use_mmap=" << use_mmap << ": " << message;
    EXPECT_NE(message.find("(byte " + std::to_string(expected_offset) + ")"),
              std::string::npos)
        << "use_mmap=" << use_mmap << ": " << message;
    EXPECT_NE(message.find("unterminated quoted field"), std::string::npos)
        << message;
  }
}

TEST(StreamIngestTest, UnseenCategoryInLaterBlockEncodesAllZero) {
  // "c" first appears in the second block, after the encoder was fitted on
  // block 0: its one-hot block must be all zeros (the unseen-category
  // convention), and its group code must be outside the dictionary.
  const std::string csv = TempPath("ingest_unseen.csv");
  const std::string out = TempPath("ingest_unseen.ofcd");
  WriteFile(csv,
            "grp,label\n"
            "a,1\n"
            "b,0\n"
            "c,1\n"
            "a,0\n");
  StreamIngestOptions options = BasicIngestOptions();
  options.block_rows = 2;
  Result<IngestStats> stats = StreamCsvToChunked(csv, out, options);
  ASSERT_TRUE(stats.ok()) << stats.status();

  Result<ChunkedDataset> chunked = ChunkedDataset::Open(out);
  ASSERT_TRUE(chunked.ok());
  EXPECT_EQ(chunked->meta().group_names.size(), 2u);  // only a, b fitted
  Result<DatasetBlock> block = chunked->MaterializeBlock(1);
  ASSERT_TRUE(block.ok());
  // Row 0 of block 1 is the "c" row: every one-hot feature is zero.
  for (size_t c = 0; c < block->features.cols(); ++c) {
    EXPECT_EQ(block->features.RowF(0)[c], 0.0f);
  }
  EXPECT_GE(block->groups[0], 2);  // sentinel code outside the dictionary
  // Row 1 ("a") encodes normally.
  EXPECT_EQ(block->groups[1], 0);
}

TEST(StreamIngestTest, MissingGroupColumnFails) {
  const std::string csv = TempPath("ingest_nogroup.csv");
  WriteFile(csv, "age,label\n25,1\n");
  StreamIngestOptions options = BasicIngestOptions();
  Result<IngestStats> stats =
      StreamCsvToChunked(csv, TempPath("ingest_nogroup.ofcd"), options);
  ASSERT_FALSE(stats.ok());
  EXPECT_NE(stats.status().message().find("grp"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Chunked-file integrity + fault injection (chaos label)
// ---------------------------------------------------------------------------

class StreamIngestFaultTest : public ::testing::Test {
 protected:
  void SetUp() override { FaultInjector::Reset(); }
  void TearDown() override { FaultInjector::Reset(); }
};

TEST_F(StreamIngestFaultTest, EnospcOnSpillFailsCleanly) {
  const std::string csv = TempPath("ingest_enospc.csv");
  const std::string out = TempPath("ingest_enospc.ofcd");
  WriteFile(csv, BasicCsv());
  FaultInjector::Arm(fault_sites::kIoEnospc, 1, /*repeat=*/true);
  StreamIngestOptions options = BasicIngestOptions();
  Result<IngestStats> stats = StreamCsvToChunked(csv, out, options);
  FaultInjector::Reset();
  ASSERT_FALSE(stats.ok());
  // The unfinalized temp file never becomes the final path.
  std::ifstream final_file(out);
  EXPECT_FALSE(final_file.good());
}

TEST_F(StreamIngestFaultTest, ShortWriteOnSpillFailsCleanly) {
  // WriteFd surfaces an injected short write as an IO error (same contract
  // as the checkpoint/bundle writers): the ingest fails and the temp file
  // never reaches the final path.
  const std::string csv = TempPath("ingest_shortwrite.csv");
  const std::string out = TempPath("ingest_shortwrite.ofcd");
  WriteFile(csv, BasicCsv());
  FaultInjector::Arm(fault_sites::kIoShortWrite);
  StreamIngestOptions options = BasicIngestOptions();
  Result<IngestStats> stats = StreamCsvToChunked(csv, out, options);
  EXPECT_GT(FaultInjector::CallCount(fault_sites::kIoShortWrite), 0);
  FaultInjector::Reset();
  ASSERT_FALSE(stats.ok());
  std::ifstream final_file(out);
  EXPECT_FALSE(final_file.good());
}

TEST_F(StreamIngestFaultTest, ShortReadOnOpenIsAbsorbed) {
  const std::string csv = TempPath("ingest_shortread.csv");
  const std::string out = TempPath("ingest_shortread.ofcd");
  WriteFile(csv, BasicCsv());
  ASSERT_TRUE(StreamCsvToChunked(csv, out, BasicIngestOptions()).ok());
  FaultInjector::Arm(fault_sites::kIoShortRead, 1, /*repeat=*/true);
  Result<ChunkedDataset> chunked = ChunkedDataset::Open(out);
  FaultInjector::Reset();
  ASSERT_TRUE(chunked.ok()) << chunked.status();
  EXPECT_EQ(chunked->total_rows(), 6u);
}

TEST_F(StreamIngestFaultTest, CorruptedBlockFailsCrcOnMaterialize) {
  const std::string csv = TempPath("ingest_corrupt.csv");
  const std::string out = TempPath("ingest_corrupt.ofcd");
  WriteFile(csv, BasicCsv());
  ASSERT_TRUE(StreamCsvToChunked(csv, out, BasicIngestOptions()).ok());

  // Flip one byte inside the first block's payload (just past the header).
  std::string bytes = ReadFile(out);
  ASSERT_GT(bytes.size(), 32u);
  bytes[20] ^= 0x01;
  WriteFile(out, bytes);

  Result<ChunkedDataset> chunked = ChunkedDataset::Open(out);
  ASSERT_TRUE(chunked.ok()) << chunked.status();  // footer still intact
  Result<DatasetBlock> block = chunked->MaterializeBlock(0);
  ASSERT_FALSE(block.ok());
  EXPECT_EQ(block.status().code(), StatusCode::kDataLoss);
}

TEST_F(StreamIngestFaultTest, TruncatedFileFailsOpen) {
  const std::string csv = TempPath("ingest_trunc.csv");
  const std::string out = TempPath("ingest_trunc.ofcd");
  WriteFile(csv, BasicCsv());
  ASSERT_TRUE(StreamCsvToChunked(csv, out, BasicIngestOptions()).ok());
  std::string bytes = ReadFile(out);
  WriteFile(out, bytes.substr(0, bytes.size() / 2));
  EXPECT_FALSE(ChunkedDataset::Open(out).ok());
}

// ---------------------------------------------------------------------------
// GenerateSyntheticStream
// ---------------------------------------------------------------------------

TEST(SyntheticStreamTest, WritesChunkedDatasetBlockByBlock) {
  const std::string out = TempPath("synth_stream.ofcd");
  synthetic::StreamGenerateOptions options;
  options.num_rows = 5000;
  options.block_rows = 1024;
  options.seed = 7;
  Result<synthetic::StreamGenerateStats> stats =
      synthetic::GenerateSyntheticStream(MakeAdultSchema(), out, options);
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_EQ(stats->rows, 5000u);
  EXPECT_EQ(stats->blocks, 5u);  // ceil(5000 / 1024)

  Result<ChunkedDataset> chunked = ChunkedDataset::Open(out);
  ASSERT_TRUE(chunked.ok()) << chunked.status();
  EXPECT_EQ(chunked->total_rows(), 5000u);
  EXPECT_EQ(chunked->meta().group_column, "sex");
  ASSERT_EQ(chunked->meta().group_names.size(), 2u);
  EXPECT_EQ(chunked->meta().group_names[0], "Male");
  // Every block materializes and has in-dictionary group codes + 0/1 labels.
  uint64_t rows = 0;
  for (size_t b = 0; b < chunked->num_blocks(); ++b) {
    Result<DatasetBlock> block = chunked->MaterializeBlock(b);
    ASSERT_TRUE(block.ok()) << block.status();
    rows += block->labels.size();
    for (size_t i = 0; i < block->labels.size(); ++i) {
      EXPECT_TRUE(block->labels[i] == 0 || block->labels[i] == 1);
      EXPECT_GE(block->groups[i], 0);
      EXPECT_LT(block->groups[i], 2);
    }
  }
  EXPECT_EQ(rows, 5000u);
}

TEST(SyntheticStreamTest, DeterministicForFixedSeedAndBlockRows) {
  const std::string out_a = TempPath("synth_det_a.ofcd");
  const std::string out_b = TempPath("synth_det_b.ofcd");
  synthetic::StreamGenerateOptions options;
  options.num_rows = 3000;
  options.block_rows = 512;
  options.seed = 11;
  ASSERT_TRUE(
      synthetic::GenerateSyntheticStream(MakeCompasSchema(), out_a, options).ok());
  ASSERT_TRUE(
      synthetic::GenerateSyntheticStream(MakeCompasSchema(), out_b, options).ok());
  EXPECT_EQ(ReadFile(out_a), ReadFile(out_b));
}

}  // namespace
}  // namespace omnifair
