#include "ml/serialization.h"

#include <fstream>

#include "ml/decision_tree.h"
#include "ml/gbdt.h"
#include "ml/logistic_regression.h"
#include "ml/mlp.h"
#include "ml/naive_bayes.h"
#include "ml/random_forest.h"

namespace omnifair {
namespace {

constexpr char kMagic[] = "omnifair_model";
constexpr int kVersion = 1;

/// Upper bound on any element count read from a model file. Far beyond any
/// model this library trains; a larger prefix is corruption, not a model,
/// and must fail before the resize() allocates.
constexpr size_t kMaxCount = size_t{1} << 26;

/// Byte-position context for error messages, e.g. " near byte 132". The
/// stream's failbit is cleared to make tellg usable; callers are bailing out
/// anyway.
std::string AtByte(std::istream& is) {
  is.clear();
  const auto pos = is.tellg();
  if (pos < 0) return "";
  return " near byte " + std::to_string(static_cast<long long>(pos));
}

/// Typed parse failure: truncation (EOF) is data loss, anything else is
/// malformed content.
Status TextError(std::istream& is, const std::string& what) {
  if (is.eof()) {
    return Status::DataLoss("truncated " + what + AtByte(is));
  }
  return Status::InvalidArgument("malformed " + what + AtByte(is));
}

void WriteVector(std::ostream& os, const std::vector<double>& values) {
  os << values.size();
  for (double v : values) os << " " << v;
  os << "\n";
}

Status ReadVector(std::istream& is, const std::string& what,
                  std::vector<double>* values) {
  size_t count = 0;
  if (!(is >> count)) return TextError(is, what + " length");
  if (count > kMaxCount) {
    return Status::InvalidArgument(what + " claims " + std::to_string(count) +
                                   " elements (limit " +
                                   std::to_string(kMaxCount) + ")" + AtByte(is));
  }
  values->resize(count);
  for (double& v : *values) {
    if (!(is >> v)) return TextError(is, what + " values");
  }
  return Status::Ok();
}

// --- Tree-structure validation ----------------------------------------------
//
// Both tree builders append child nodes after their parent, so in any file
// this library wrote every split satisfies left > i && right > i. Enforcing
// that on load (plus range and feature checks) guarantees Predict terminates
// and never indexes out of bounds, whatever bytes were in the file.

Status ValidateDtNodes(const std::vector<DecisionTreeModel::Node>& nodes) {
  const int n = static_cast<int>(nodes.size());
  for (int i = 0; i < n; ++i) {
    const auto& node = nodes[i];
    if (node.is_leaf) continue;
    if (node.feature < 0 || node.left <= i || node.right <= i ||
        node.left >= n || node.right >= n) {
      return Status::InvalidArgument(
          "tree node " + std::to_string(i) + " has invalid children/feature (" +
          std::to_string(node.left) + ", " + std::to_string(node.right) +
          ", feature " + std::to_string(node.feature) + ") in a " +
          std::to_string(n) + "-node tree");
    }
  }
  return Status::Ok();
}

Status ValidateGbdtNodes(const std::vector<GbdtTreeNode>& nodes) {
  const int n = static_cast<int>(nodes.size());
  for (int i = 0; i < n; ++i) {
    const auto& node = nodes[i];
    if (node.is_leaf) continue;
    if (node.feature < 0 || node.left <= i || node.right <= i ||
        node.left >= n || node.right >= n) {
      return Status::InvalidArgument(
          "gbdt node " + std::to_string(i) + " has invalid children/feature (" +
          std::to_string(node.left) + ", " + std::to_string(node.right) +
          ", feature " + std::to_string(node.feature) + ") in a " +
          std::to_string(n) + "-node tree");
    }
  }
  return Status::Ok();
}

// --- Decision-tree node arrays (shared by dt / rf) ---------------------------

void WriteTreeNodes(std::ostream& os, const std::vector<DecisionTreeModel::Node>& nodes) {
  os << nodes.size() << "\n";
  for (const auto& node : nodes) {
    if (node.is_leaf) {
      os << "leaf " << node.probability << "\n";
    } else {
      os << "split " << node.feature << " " << node.threshold << " " << node.left
         << " " << node.right << "\n";
    }
  }
}

Status ReadTreeNodes(std::istream& is, const std::string& what,
                     std::vector<DecisionTreeModel::Node>* nodes) {
  size_t count = 0;
  if (!(is >> count)) return TextError(is, what + " node count");
  if (count > kMaxCount) {
    return Status::InvalidArgument(what + " claims " + std::to_string(count) +
                                   " nodes (limit " + std::to_string(kMaxCount) +
                                   ")" + AtByte(is));
  }
  nodes->resize(count);
  for (auto& node : *nodes) {
    std::string kind;
    if (!(is >> kind)) return TextError(is, what + " node kind");
    if (kind == "leaf") {
      node.is_leaf = true;
      if (!(is >> node.probability)) return TextError(is, what + " leaf");
    } else if (kind == "split") {
      node.is_leaf = false;
      if (!(is >> node.feature >> node.threshold >> node.left >> node.right)) {
        return TextError(is, what + " split");
      }
    } else {
      return Status::InvalidArgument("unknown node kind '" + kind + "' in " +
                                     what + AtByte(is));
    }
  }
  return ValidateDtNodes(*nodes);
}

void WriteGbdtNodes(std::ostream& os, const std::vector<GbdtTreeNode>& nodes) {
  os << nodes.size() << "\n";
  for (const auto& node : nodes) {
    if (node.is_leaf) {
      os << "leaf " << node.value << "\n";
    } else {
      os << "split " << node.feature << " " << node.threshold << " " << node.left
         << " " << node.right << "\n";
    }
  }
}

Status ReadGbdtNodes(std::istream& is, const std::string& what,
                     std::vector<GbdtTreeNode>* nodes) {
  size_t count = 0;
  if (!(is >> count)) return TextError(is, what + " node count");
  if (count > kMaxCount) {
    return Status::InvalidArgument(what + " claims " + std::to_string(count) +
                                   " nodes (limit " + std::to_string(kMaxCount) +
                                   ")" + AtByte(is));
  }
  nodes->resize(count);
  for (auto& node : *nodes) {
    std::string kind;
    if (!(is >> kind)) return TextError(is, what + " node kind");
    if (kind == "leaf") {
      node.is_leaf = true;
      if (!(is >> node.value)) return TextError(is, what + " leaf");
    } else if (kind == "split") {
      node.is_leaf = false;
      if (!(is >> node.feature >> node.threshold >> node.left >> node.right)) {
        return TextError(is, what + " split");
      }
    } else {
      return Status::InvalidArgument("unknown node kind '" + kind + "' in " +
                                     what + AtByte(is));
    }
  }
  return ValidateGbdtNodes(*nodes);
}

// --- Per-family loaders -------------------------------------------------------

Result<std::unique_ptr<Classifier>> LoadLogisticRegression(std::istream& is) {
  std::vector<double> coefficients;
  double intercept = 0.0;
  Status status = ReadVector(is, "logistic_regression coefficients", &coefficients);
  if (!status.ok()) return status;
  if (!(is >> intercept)) {
    return TextError(is, "logistic_regression intercept");
  }
  return std::unique_ptr<Classifier>(
      std::make_unique<LogisticRegressionModel>(std::move(coefficients), intercept));
}

Result<std::unique_ptr<Classifier>> LoadNaiveBayes(std::istream& is) {
  double log_prior_ratio = 0.0;
  std::vector<double> mean0;
  std::vector<double> mean1;
  std::vector<double> var0;
  std::vector<double> var1;
  if (!(is >> log_prior_ratio)) return TextError(is, "naive_bayes prior");
  Status status = ReadVector(is, "naive_bayes mean0", &mean0);
  if (status.ok()) status = ReadVector(is, "naive_bayes mean1", &mean1);
  if (status.ok()) status = ReadVector(is, "naive_bayes var0", &var0);
  if (status.ok()) status = ReadVector(is, "naive_bayes var1", &var1);
  if (!status.ok()) return status;
  return std::unique_ptr<Classifier>(std::make_unique<NaiveBayesModel>(
      log_prior_ratio, std::move(mean0), std::move(mean1), std::move(var0),
      std::move(var1)));
}

Result<std::unique_ptr<Classifier>> LoadDecisionTree(std::istream& is) {
  std::vector<DecisionTreeModel::Node> nodes;
  Status status = ReadTreeNodes(is, "decision_tree", &nodes);
  if (!status.ok()) return status;
  return std::unique_ptr<Classifier>(
      std::make_unique<DecisionTreeModel>(std::move(nodes)));
}

Result<std::unique_ptr<Classifier>> LoadRandomForest(std::istream& is) {
  size_t num_trees = 0;
  if (!(is >> num_trees)) return TextError(is, "random_forest tree count");
  if (num_trees > kMaxCount) {
    return Status::InvalidArgument("random_forest claims " +
                                   std::to_string(num_trees) + " trees" +
                                   AtByte(is));
  }
  std::vector<std::unique_ptr<Classifier>> trees;
  trees.reserve(num_trees);
  for (size_t t = 0; t < num_trees; ++t) {
    std::vector<DecisionTreeModel::Node> nodes;
    Status status =
        ReadTreeNodes(is, "forest tree " + std::to_string(t), &nodes);
    if (!status.ok()) return status;
    trees.push_back(std::make_unique<DecisionTreeModel>(std::move(nodes)));
  }
  return std::unique_ptr<Classifier>(
      std::make_unique<RandomForestModel>(std::move(trees)));
}

Result<std::unique_ptr<Classifier>> LoadGbdt(std::istream& is) {
  double base_score = 0.0;
  double learning_rate = 0.0;
  size_t num_trees = 0;
  if (!(is >> base_score >> learning_rate >> num_trees)) {
    return TextError(is, "gbdt header");
  }
  if (num_trees > kMaxCount) {
    return Status::InvalidArgument("gbdt claims " + std::to_string(num_trees) +
                                   " trees" + AtByte(is));
  }
  std::vector<std::vector<GbdtTreeNode>> trees(num_trees);
  for (size_t t = 0; t < num_trees; ++t) {
    Status status =
        ReadGbdtNodes(is, "gbdt tree " + std::to_string(t), &trees[t]);
    if (!status.ok()) return status;
  }
  return std::unique_ptr<Classifier>(
      std::make_unique<GbdtModel>(std::move(trees), base_score, learning_rate));
}

Result<std::unique_ptr<Classifier>> LoadMlp(std::istream& is) {
  size_t hidden = 0;
  size_t inputs = 0;
  if (!(is >> hidden >> inputs)) return TextError(is, "mlp dimensions");
  if (hidden > kMaxCount || inputs > kMaxCount ||
      (inputs != 0 && hidden > kMaxCount / inputs)) {
    return Status::InvalidArgument("mlp claims a " + std::to_string(hidden) +
                                   "x" + std::to_string(inputs) +
                                   " hidden layer" + AtByte(is));
  }
  Matrix W1(hidden, inputs);
  for (size_t r = 0; r < hidden; ++r) {
    for (size_t c = 0; c < inputs; ++c) {
      if (!(is >> W1(r, c))) return TextError(is, "mlp W1");
    }
  }
  std::vector<double> b1;
  std::vector<double> w2;
  double b2 = 0.0;
  Status status = ReadVector(is, "mlp b1", &b1);
  if (status.ok()) status = ReadVector(is, "mlp w2", &w2);
  if (!status.ok()) return status;
  if (!(is >> b2)) return TextError(is, "mlp b2");
  return std::unique_ptr<Classifier>(std::make_unique<MlpModel>(
      std::move(W1), std::move(b1), std::move(w2), b2));
}

}  // namespace

Status SerializeModel(const Classifier& model, std::ostream& os) {
  os.precision(17);
  os << kMagic << " " << model.Name() << " " << kVersion << "\n";
  if (const auto* lr = dynamic_cast<const LogisticRegressionModel*>(&model)) {
    WriteVector(os, lr->coefficients());
    os << lr->intercept() << "\n";
    return Status::Ok();
  }
  if (const auto* nb = dynamic_cast<const NaiveBayesModel*>(&model)) {
    os << nb->log_prior_ratio() << "\n";
    WriteVector(os, nb->mean0());
    WriteVector(os, nb->mean1());
    WriteVector(os, nb->var0());
    WriteVector(os, nb->var1());
    return Status::Ok();
  }
  if (const auto* dt = dynamic_cast<const DecisionTreeModel*>(&model)) {
    WriteTreeNodes(os, dt->nodes());
    return Status::Ok();
  }
  if (const auto* rf = dynamic_cast<const RandomForestModel*>(&model)) {
    os << rf->trees().size() << "\n";
    for (const auto& tree : rf->trees()) {
      const auto* tree_model = dynamic_cast<const DecisionTreeModel*>(tree.get());
      if (tree_model == nullptr) {
        return Status::Unsupported("forest contains a non-CART member");
      }
      WriteTreeNodes(os, tree_model->nodes());
    }
    return Status::Ok();
  }
  if (const auto* gbdt = dynamic_cast<const GbdtModel*>(&model)) {
    os << gbdt->base_score() << " " << gbdt->learning_rate() << " "
       << gbdt->trees().size() << "\n";
    for (const auto& tree : gbdt->trees()) WriteGbdtNodes(os, tree);
    return Status::Ok();
  }
  if (const auto* mlp = dynamic_cast<const MlpModel*>(&model)) {
    os << mlp->W1().rows() << " " << mlp->W1().cols() << "\n";
    for (size_t r = 0; r < mlp->W1().rows(); ++r) {
      for (size_t c = 0; c < mlp->W1().cols(); ++c) {
        os << mlp->W1()(r, c) << (c + 1 == mlp->W1().cols() ? "\n" : " ");
      }
    }
    WriteVector(os, mlp->b1());
    WriteVector(os, mlp->w2());
    os << mlp->b2() << "\n";
    return Status::Ok();
  }
  return Status::Unsupported("no serializer for model family " + model.Name());
}

Status SaveModel(const Classifier& model, const std::string& path) {
  std::ofstream out(path);
  if (!out) return IoError(path, "open");
  Status status = SerializeModel(model, out);
  if (!status.ok()) return status;
  out.flush();
  if (!out) return IoError(path, "write");
  return Status::Ok();
}

Result<std::unique_ptr<Classifier>> DeserializeModel(std::istream& is) {
  std::string magic;
  std::string family;
  int version = 0;
  if (!(is >> magic >> family >> version) || magic != kMagic) {
    return Status::InvalidArgument("not an omnifair model file");
  }
  if (version != kVersion) {
    return Status::InvalidArgument("unsupported model version " +
                                   std::to_string(version));
  }
  if (family == "logistic_regression") return LoadLogisticRegression(is);
  if (family == "naive_bayes") return LoadNaiveBayes(is);
  if (family == "decision_tree") return LoadDecisionTree(is);
  if (family == "random_forest") return LoadRandomForest(is);
  if (family == "gbdt") return LoadGbdt(is);
  if (family == "mlp") return LoadMlp(is);
  return Status::Unsupported("unknown model family " + family);
}

Result<std::unique_ptr<Classifier>> LoadModel(const std::string& path) {
  std::ifstream in(path);
  if (!in) return IoError(path, "open");
  return DeserializeModel(in);
}

// --- Binary codec ------------------------------------------------------------

namespace {

enum BinaryFamilyTag : uint8_t {
  kTagLr = 1,
  kTagNb = 2,
  kTagDt = 3,
  kTagRf = 4,
  kTagGbdt = 5,
  kTagMlp = 6,
};

void WriteDtNodesBinary(BinaryWriter& writer,
                        const std::vector<DecisionTreeModel::Node>& nodes) {
  writer.U64(nodes.size());
  for (const auto& node : nodes) {
    writer.U8(node.is_leaf ? 1 : 0);
    if (node.is_leaf) {
      writer.F64(node.probability);
    } else {
      writer.I32(node.feature);
      writer.F64(node.threshold);
      writer.I32(node.left);
      writer.I32(node.right);
    }
  }
}

Status ReadDtNodesBinary(BinaryReader& reader,
                         std::vector<DecisionTreeModel::Node>* nodes) {
  uint64_t count = 0;
  if (!reader.U64(&count)) return reader.status();
  // Each node is at least 9 bytes; a bigger count cannot fit what remains.
  if (count > reader.remaining()) {
    return Status::DataLoss("tree node count " + std::to_string(count) +
                            " exceeds payload at byte " +
                            std::to_string(reader.offset()));
  }
  nodes->resize(static_cast<size_t>(count));
  for (auto& node : *nodes) {
    uint8_t is_leaf = 0;
    if (!reader.U8(&is_leaf)) return reader.status();
    node.is_leaf = is_leaf != 0;
    if (node.is_leaf) {
      if (!reader.F64(&node.probability)) return reader.status();
    } else {
      int32_t feature = 0;
      int32_t left = 0;
      int32_t right = 0;
      if (!reader.I32(&feature) || !reader.F64(&node.threshold) ||
          !reader.I32(&left) || !reader.I32(&right)) {
        return reader.status();
      }
      node.feature = feature;
      node.left = left;
      node.right = right;
    }
  }
  return ValidateDtNodes(*nodes);
}

void WriteGbdtNodesBinary(BinaryWriter& writer,
                          const std::vector<GbdtTreeNode>& nodes) {
  writer.U64(nodes.size());
  for (const auto& node : nodes) {
    writer.U8(node.is_leaf ? 1 : 0);
    if (node.is_leaf) {
      writer.F64(node.value);
    } else {
      writer.I32(node.feature);
      writer.F64(node.threshold);
      writer.I32(node.left);
      writer.I32(node.right);
    }
  }
}

Status ReadGbdtNodesBinary(BinaryReader& reader,
                           std::vector<GbdtTreeNode>* nodes) {
  uint64_t count = 0;
  if (!reader.U64(&count)) return reader.status();
  if (count > reader.remaining()) {
    return Status::DataLoss("gbdt node count " + std::to_string(count) +
                            " exceeds payload at byte " +
                            std::to_string(reader.offset()));
  }
  nodes->resize(static_cast<size_t>(count));
  for (auto& node : *nodes) {
    uint8_t is_leaf = 0;
    if (!reader.U8(&is_leaf)) return reader.status();
    node.is_leaf = is_leaf != 0;
    if (node.is_leaf) {
      if (!reader.F64(&node.value)) return reader.status();
    } else {
      int32_t feature = 0;
      int32_t left = 0;
      int32_t right = 0;
      if (!reader.I32(&feature) || !reader.F64(&node.threshold) ||
          !reader.I32(&left) || !reader.I32(&right)) {
        return reader.status();
      }
      node.feature = feature;
      node.left = left;
      node.right = right;
    }
  }
  return ValidateGbdtNodes(*nodes);
}

}  // namespace

Status SerializeModelBinary(const Classifier& model, BinaryWriter& writer) {
  if (const auto* lr = dynamic_cast<const LogisticRegressionModel*>(&model)) {
    writer.U8(kTagLr);
    writer.F64Vector(lr->coefficients());
    writer.F64(lr->intercept());
    return Status::Ok();
  }
  if (const auto* nb = dynamic_cast<const NaiveBayesModel*>(&model)) {
    writer.U8(kTagNb);
    writer.F64(nb->log_prior_ratio());
    writer.F64Vector(nb->mean0());
    writer.F64Vector(nb->mean1());
    writer.F64Vector(nb->var0());
    writer.F64Vector(nb->var1());
    return Status::Ok();
  }
  if (const auto* dt = dynamic_cast<const DecisionTreeModel*>(&model)) {
    writer.U8(kTagDt);
    WriteDtNodesBinary(writer, dt->nodes());
    return Status::Ok();
  }
  if (const auto* rf = dynamic_cast<const RandomForestModel*>(&model)) {
    writer.U8(kTagRf);
    writer.U64(rf->trees().size());
    for (const auto& tree : rf->trees()) {
      const auto* tree_model = dynamic_cast<const DecisionTreeModel*>(tree.get());
      if (tree_model == nullptr) {
        return Status::Unsupported("forest contains a non-CART member");
      }
      WriteDtNodesBinary(writer, tree_model->nodes());
    }
    return Status::Ok();
  }
  if (const auto* gbdt = dynamic_cast<const GbdtModel*>(&model)) {
    writer.U8(kTagGbdt);
    writer.F64(gbdt->base_score());
    writer.F64(gbdt->learning_rate());
    writer.U64(gbdt->trees().size());
    for (const auto& tree : gbdt->trees()) WriteGbdtNodesBinary(writer, tree);
    return Status::Ok();
  }
  if (const auto* mlp = dynamic_cast<const MlpModel*>(&model)) {
    writer.U8(kTagMlp);
    writer.U64(mlp->W1().rows());
    writer.U64(mlp->W1().cols());
    for (size_t r = 0; r < mlp->W1().rows(); ++r) {
      for (size_t c = 0; c < mlp->W1().cols(); ++c) {
        writer.F64(mlp->W1()(r, c));
      }
    }
    writer.F64Vector(mlp->b1());
    writer.F64Vector(mlp->w2());
    writer.F64(mlp->b2());
    return Status::Ok();
  }
  return Status::Unsupported("no binary serializer for model family " +
                             model.Name());
}

Result<std::unique_ptr<Classifier>> DeserializeModelBinary(BinaryReader& reader) {
  uint8_t tag = 0;
  if (!reader.U8(&tag)) return reader.status();
  switch (tag) {
    case kTagLr: {
      std::vector<double> coefficients;
      double intercept = 0.0;
      if (!reader.F64Vector(&coefficients) || !reader.F64(&intercept)) {
        return reader.status();
      }
      return std::unique_ptr<Classifier>(std::make_unique<LogisticRegressionModel>(
          std::move(coefficients), intercept));
    }
    case kTagNb: {
      double log_prior_ratio = 0.0;
      std::vector<double> mean0;
      std::vector<double> mean1;
      std::vector<double> var0;
      std::vector<double> var1;
      if (!reader.F64(&log_prior_ratio) || !reader.F64Vector(&mean0) ||
          !reader.F64Vector(&mean1) || !reader.F64Vector(&var0) ||
          !reader.F64Vector(&var1)) {
        return reader.status();
      }
      return std::unique_ptr<Classifier>(std::make_unique<NaiveBayesModel>(
          log_prior_ratio, std::move(mean0), std::move(mean1), std::move(var0),
          std::move(var1)));
    }
    case kTagDt: {
      std::vector<DecisionTreeModel::Node> nodes;
      Status status = ReadDtNodesBinary(reader, &nodes);
      if (!status.ok()) return status;
      return std::unique_ptr<Classifier>(
          std::make_unique<DecisionTreeModel>(std::move(nodes)));
    }
    case kTagRf: {
      uint64_t num_trees = 0;
      if (!reader.U64(&num_trees)) return reader.status();
      if (num_trees > reader.remaining()) {
        return Status::DataLoss("forest tree count " +
                                std::to_string(num_trees) +
                                " exceeds payload at byte " +
                                std::to_string(reader.offset()));
      }
      std::vector<std::unique_ptr<Classifier>> trees;
      trees.reserve(static_cast<size_t>(num_trees));
      for (uint64_t t = 0; t < num_trees; ++t) {
        std::vector<DecisionTreeModel::Node> nodes;
        Status status = ReadDtNodesBinary(reader, &nodes);
        if (!status.ok()) return status;
        trees.push_back(std::make_unique<DecisionTreeModel>(std::move(nodes)));
      }
      return std::unique_ptr<Classifier>(
          std::make_unique<RandomForestModel>(std::move(trees)));
    }
    case kTagGbdt: {
      double base_score = 0.0;
      double learning_rate = 0.0;
      uint64_t num_trees = 0;
      if (!reader.F64(&base_score) || !reader.F64(&learning_rate) ||
          !reader.U64(&num_trees)) {
        return reader.status();
      }
      if (num_trees > reader.remaining()) {
        return Status::DataLoss("gbdt tree count " + std::to_string(num_trees) +
                                " exceeds payload at byte " +
                                std::to_string(reader.offset()));
      }
      std::vector<std::vector<GbdtTreeNode>> trees(
          static_cast<size_t>(num_trees));
      for (auto& tree : trees) {
        Status status = ReadGbdtNodesBinary(reader, &tree);
        if (!status.ok()) return status;
      }
      return std::unique_ptr<Classifier>(std::make_unique<GbdtModel>(
          std::move(trees), base_score, learning_rate));
    }
    case kTagMlp: {
      uint64_t hidden = 0;
      uint64_t inputs = 0;
      if (!reader.U64(&hidden) || !reader.U64(&inputs)) return reader.status();
      if (hidden * 8 > reader.remaining() || inputs * 8 > reader.remaining() ||
          (inputs != 0 && hidden > reader.remaining() / 8 / inputs)) {
        return Status::DataLoss("mlp claims a " + std::to_string(hidden) + "x" +
                                std::to_string(inputs) +
                                " hidden layer exceeding payload at byte " +
                                std::to_string(reader.offset()));
      }
      Matrix W1(static_cast<size_t>(hidden), static_cast<size_t>(inputs));
      for (size_t r = 0; r < W1.rows(); ++r) {
        for (size_t c = 0; c < W1.cols(); ++c) {
          if (!reader.F64(&W1(r, c))) return reader.status();
        }
      }
      std::vector<double> b1;
      std::vector<double> w2;
      double b2 = 0.0;
      if (!reader.F64Vector(&b1) || !reader.F64Vector(&w2) || !reader.F64(&b2)) {
        return reader.status();
      }
      return std::unique_ptr<Classifier>(std::make_unique<MlpModel>(
          std::move(W1), std::move(b1), std::move(w2), b2));
    }
    default:
      return Status::DataLoss("unknown binary model family tag " +
                              std::to_string(tag) + " at byte " +
                              std::to_string(reader.offset()));
  }
}

Result<std::vector<uint8_t>> SerializeModelBinary(const Classifier& model) {
  BinaryWriter writer;
  Status status = SerializeModelBinary(model, writer);
  if (!status.ok()) return status;
  return writer.TakeBuffer();
}

Result<std::unique_ptr<Classifier>> DeserializeModelBinary(
    const std::vector<uint8_t>& bytes) {
  BinaryReader reader(bytes);
  return DeserializeModelBinary(reader);
}

}  // namespace omnifair
