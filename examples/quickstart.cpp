// Quickstart: train a fairness-constrained classifier in ~20 lines.
//
// The OmniFair workflow is always the same three declarative pieces
// (Figure 1 of the paper):
//   1. a grouping function g     - who are the demographic groups?
//   2. a fairness metric f       - what should be equal across them?
//   3. a disparity allowance eps - how equal is equal enough?
// plus any black-box ML trainer. No training-algorithm changes, ever.

#include <cstdio>

#include "core/omnifair.h"
#include "data/datasets.h"
#include "data/split.h"
#include "ml/trainer_registry.h"

int main() {
  using namespace omnifair;

  // A synthetic stand-in for the ProPublica COMPAS dataset (11001 rows,
  // race-correlated two-year recidivism labels).
  SyntheticOptions data_options;
  data_options.num_rows = 6000;  // keep the demo fast
  const Dataset dataset = MakeCompasDataset(data_options);
  const TrainValTestSplit split = SplitDefault(dataset, /*seed=*/42);

  // The declarative fairness specification (g, f, eps): statistical parity
  // between African-American and Caucasian defendants within 0.03.
  const FairnessSpec spec = MakeSpec(
      GroupByAttributeValues("race", {"African-American", "Caucasian"}),
      "sp", /*epsilon=*/0.03);

  // Any trainer works: "lr", "dt", "rf", "xgb", "nn".
  auto trainer = MakeTrainer("lr");

  OmniFair omnifair;
  auto fair = omnifair.Train(split.train, split.val, trainer.get(), {spec});
  if (!fair.ok()) {
    std::printf("training failed: %s\n", fair.status().ToString().c_str());
    return 1;
  }

  std::printf("constraint satisfied on validation: %s\n",
              fair->satisfied ? "yes" : "no");
  std::printf("validation accuracy: %.1f%%\n", 100.0 * fair->val_accuracy);
  std::printf("tuned lambda: %.4f (%d model fits, %.2fs)\n", fair->lambdas[0],
              fair->models_trained, fair->train_seconds);

  // Audit the model on the held-out test split.
  auto audit = Audit(*fair->model, fair->encoder, split.test, {spec});
  std::printf("test accuracy: %.1f%%, test SP disparity: %.3f (eps = %.2f)\n",
              100.0 * audit->accuracy, audit->max_disparity, spec.epsilon);
  return 0;
}
