#ifndef OMNIFAIR_BASELINES_ZAFAR_H_
#define OMNIFAIR_BASELINES_ZAFAR_H_

#include "baselines/baseline.h"

namespace omnifair {

/// Zafar et al. [47] (in-processing, decision-boundary classifiers only).
///
/// Fairness is encoded as a bound on the covariance between group
/// membership and the signed distance to the decision boundary. We solve
/// the penalized form: weighted logistic loss + mu * cov(z, theta.x)^2 by
/// gradient descent on our own logistic model, sweeping the multiplier mu
/// and keeping the most accurate validating model. As in the paper, the
/// method (a) only works for logistic regression (NA(2) for RF/XGB/NN) and
/// (b) its knob does not track epsilon directly, so the best model often
/// coincides across epsilon values (one point in Figure 4a).
class ZafarCovariance : public FairnessBaseline {
 public:
  std::string Name() const override { return "zafar"; }
  bool SupportsMetric(const FairnessMetric& metric) const override;
  bool SupportsTrainer(const Trainer& trainer) const override;
  Result<BaselineResult> Train(const Dataset& train, const Dataset& val,
                               Trainer* trainer, const FairnessSpec& spec) override;
};

}  // namespace omnifair

#endif  // OMNIFAIR_BASELINES_ZAFAR_H_
