#include "core/grid_search.h"

#include <cmath>

#include "util/logging.h"
#include "util/telemetry.h"
#include "util/trace.h"

namespace omnifair {

GridSearchTuner::GridSearchTuner(GridSearchOptions options) : options_(options) {}

MultiTuneResult GridSearchTuner::Run(FairnessProblem& problem) const {
  return RunCollecting(problem, /*points=*/nullptr);
}

MultiTuneResult GridSearchTuner::RunCollecting(FairnessProblem& problem,
                                               std::vector<GridPoint>* points) const {
  const size_t k = problem.NumConstraints();
  OF_CHECK_GE(k, 1u);
  OF_CHECK_GE(options_.points_per_dim, 2);
  OF_TRACE_SPAN("grid_search");
  const int models_before = problem.models_trained();

  // Trajectory annotation shared by the base fit and every grid point.
  auto annotate = [&problem](const std::vector<int>& preds) {
    if (!problem.RecordingTuneReport()) return;
    problem.AnnotateLastTunePoint(problem.ValAccuracy(preds),
                                  problem.val_evaluator().FairnessParts(preds));
  };

  // The weight model for prediction-parameterized metrics: the
  // unconstrained fit.
  std::vector<double> lambdas(k, 0.0);
  problem.SetTuneStage("initial");
  std::unique_ptr<Classifier> base_model = problem.FitWithLambdas(lambdas, nullptr);

  MultiTuneResult result;
  result.lambdas.assign(k, 0.0);
  if (base_model == nullptr) {
    // Trainer failed behind the exception firewall before any model existed.
    result.status = problem.last_fit_status();
    result.models_trained = problem.models_trained() - models_before;
    return result;
  }
  if (problem.RecordingTuneReport()) annotate(problem.PredictVal(*base_model));

  const double lo = -options_.max_lambda;
  const double step =
      2.0 * options_.max_lambda / static_cast<double>(options_.points_per_dim - 1);
  const long long total = static_cast<long long>(
      std::pow(static_cast<double>(options_.points_per_dim), static_cast<double>(k)));

  double best_accuracy = -1.0;
  problem.SetTuneStage("grid");
  for (long long index = 0; index < total; ++index) {
    if (problem.BudgetExpired()) {
      result.status = problem.budget()->ToStatus();
      break;
    }
    OF_TRACE_SPAN("grid_point");
    OF_COUNTER_INC("tuner.grid_points");
    long long rest = index;
    for (size_t dim = 0; dim < k; ++dim) {
      lambdas[dim] = lo + step * static_cast<double>(rest % options_.points_per_dim);
      rest /= options_.points_per_dim;
    }
    std::unique_ptr<Classifier> model =
        problem.FitWithLambdas(lambdas, base_model.get());
    if (model == nullptr) {
      // Trainer failed mid-grid: keep the best point found so far.
      result.status = problem.last_fit_status();
      break;
    }
    const std::vector<int> val_preds = problem.PredictVal(*model);
    annotate(val_preds);
    const bool satisfied = problem.val_evaluator().MaxViolation(val_preds) <= 1e-12;
    const double accuracy = problem.ValAccuracy(val_preds);
    if (points != nullptr) {
      GridPoint point;
      point.lambdas = lambdas;
      point.val_accuracy = accuracy;
      point.val_fairness_parts = problem.val_evaluator().FairnessParts(val_preds);
      point.satisfied = satisfied;
      points->push_back(std::move(point));
    }
    if (satisfied && accuracy > best_accuracy) {
      best_accuracy = accuracy;
      result.model = std::move(model);
      result.lambdas = lambdas;
      result.satisfied = true;
      result.val_accuracy = accuracy;
      result.val_fairness_parts = problem.val_evaluator().FairnessParts(val_preds);
    }
  }

  if (result.model == nullptr) {
    // No satisfying grid point: return the unconstrained model, unsatisfied.
    const std::vector<int> val_preds = problem.PredictVal(*base_model);
    result.val_accuracy = problem.ValAccuracy(val_preds);
    result.val_fairness_parts = problem.val_evaluator().FairnessParts(val_preds);
    result.model = std::move(base_model);
    result.lambdas.assign(k, 0.0);
    result.satisfied = false;
  }
  result.models_trained = problem.models_trained() - models_before;
  return result;
}

}  // namespace omnifair
