#ifndef OMNIFAIR_ML_NAIVE_BAYES_H_
#define OMNIFAIR_ML_NAIVE_BAYES_H_

#include <memory>
#include <string>
#include <vector>

#include "ml/classifier.h"

namespace omnifair {

/// Hyperparameters for Gaussian naive Bayes.
struct NaiveBayesOptions {
  /// Variance floor as a fraction of the largest per-feature variance
  /// (scikit-learn's var_smoothing).
  double variance_smoothing = 1e-9;
};

/// A fitted Gaussian naive Bayes model: class priors + per-class
/// per-feature means and variances.
class NaiveBayesModel : public Classifier {
 public:
  NaiveBayesModel(double log_prior_ratio, std::vector<double> mean0,
                  std::vector<double> mean1, std::vector<double> var0,
                  std::vector<double> var1);

  std::vector<double> PredictProba(const Matrix& X) const override;
  std::string Name() const override { return "naive_bayes"; }

  double log_prior_ratio() const { return log_prior_ratio_; }
  const std::vector<double>& mean0() const { return mean0_; }
  const std::vector<double>& mean1() const { return mean1_; }
  const std::vector<double>& var0() const { return var0_; }
  const std::vector<double>& var1() const { return var1_; }

 private:
  double log_prior_ratio_;  // log P(y=1) - log P(y=0)
  std::vector<double> mean0_;
  std::vector<double> mean1_;
  std::vector<double> var0_;
  std::vector<double> var1_;
};

/// Weighted Gaussian naive Bayes. A deliberately different model family
/// from everything else in the registry: no loss function, no iterative
/// optimization — just weighted sufficient statistics. Exercises the
/// paper's model-agnostic claim at its purest, since the only lever
/// OmniFair has here really is the example weights.
class NaiveBayesTrainer : public Trainer {
 public:
  explicit NaiveBayesTrainer(NaiveBayesOptions options = {});

  std::unique_ptr<Classifier> Fit(const Matrix& X, const std::vector<int>& y,
                                  const std::vector<double>& weights) override;
  using Trainer::Fit;

  std::string Name() const override { return "naive_bayes"; }
  std::unique_ptr<Trainer> Clone() const override {
    return std::make_unique<NaiveBayesTrainer>(options_);
  }

 private:
  NaiveBayesOptions options_;
};

}  // namespace omnifair

#endif  // OMNIFAIR_ML_NAIVE_BAYES_H_
