#ifndef OMNIFAIR_DATA_PROFILE_H_
#define OMNIFAIR_DATA_PROFILE_H_

#include <string>
#include <vector>

#include "data/dataset.h"

namespace omnifair {

/// Summary statistics of one column.
struct ColumnProfile {
  std::string name;
  ColumnType type = ColumnType::kNumeric;
  // Numeric columns:
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double stddev = 0.0;
  /// Pearson correlation of the column with the label.
  double label_correlation = 0.0;
  // Categorical columns:
  size_t num_categories = 0;
  std::string most_common;
  double most_common_fraction = 0.0;
};

/// Per-group slice of a sensitive attribute: size and label base rate. The
/// spread of base rates across groups is the data-level bias every fairness
/// experiment starts from.
struct GroupProfile {
  std::string group;
  size_t size = 0;
  double fraction = 0.0;
  double positive_rate = 0.0;
};

/// Full dataset profile.
struct DatasetProfile {
  std::string name;
  size_t rows = 0;
  double positive_rate = 0.0;
  std::vector<ColumnProfile> columns;
  /// Present when a sensitive attribute was requested.
  std::vector<GroupProfile> groups;
  /// max - min positive rate across the profiled groups.
  double base_rate_gap = 0.0;

  /// Fixed-width text rendering.
  std::string ToString() const;
};

/// Profiles a dataset; `sensitive_attribute` may be empty (no group slice)
/// or name a categorical column. A missing or non-categorical name simply
/// omits the group slice (no error), so CLI input is safe to pass through.
DatasetProfile ProfileDataset(const Dataset& dataset,
                              const std::string& sensitive_attribute = "");

}  // namespace omnifair

#endif  // OMNIFAIR_DATA_PROFILE_H_
