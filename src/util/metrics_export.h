#ifndef OMNIFAIR_UTIL_METRICS_EXPORT_H_
#define OMNIFAIR_UTIL_METRICS_EXPORT_H_

#include <condition_variable>
#include <cstdio>
#include <mutex>
#include <string>
#include <thread>

#include "util/status.h"
#include "util/telemetry.h"

namespace omnifair {

// ---------------------------------------------------------------------------
// Prometheus text exposition (DESIGN.md §13)
// ---------------------------------------------------------------------------

/// Sanitizes a registry metric name into the Prometheus charset: dots and
/// other non-[a-zA-Z0-9_:] characters become '_', and a leading digit gets a
/// '_' prefix. "trainer.fit_us" -> "omnifair_trainer_fit_us" when `prefix`
/// is "omnifair_" (the PrometheusText default).
std::string PrometheusMetricName(const std::string& name,
                                 const std::string& prefix = "omnifair_");

/// Renders a snapshot in the Prometheus text exposition format
/// (text/plain; version=0.0.4): counters and gauges as single samples,
/// histograms as cumulative `_bucket{le="..."}` series plus `_sum`/`_count`
/// and p50/p90/p99 `{quantile="..."}` gauges estimated by
/// HistogramSnapshot::Quantile. Suitable for a node_exporter textfile
/// collector or a scrape handler.
std::string PrometheusText(const MetricsSnapshot& snapshot);

// ---------------------------------------------------------------------------
// JSONL metrics exporter
// ---------------------------------------------------------------------------

struct MetricsExporterOptions {
  /// Output file; one JSON object per line, appended. Empty disables Start().
  std::string path;
  /// Snapshot period. Values < 10 are clamped up (a sub-10ms exporter is a
  /// busy loop, not telemetry).
  int interval_ms = 1000;
};

/// Background thread that periodically snapshots the global MetricsRegistry
/// and appends one JSONL line per tick to `options.path`. Each line carries
/// the cumulative snapshot, the delta since the previous line (counter
/// increments and histogram count/sum increments), and p50/p90/p99 estimates
/// for every non-empty histogram. Stop() (or destruction) takes a final
/// snapshot, marks it `"final": true`, and flushes — a clean shutdown never
/// loses the tail of a run. Lines are written with a single fwrite and
/// fflush, so concurrent exporters to the same file interleave whole lines.
///
/// Thread-safety: Start/Stop may be called from any thread; recording into
/// the registry while the exporter runs is the intended use (snapshots are
/// taken under the registry mutex). Validated by tools/check_metrics_jsonl.py.
class MetricsExporter {
 public:
  explicit MetricsExporter(MetricsExporterOptions options);
  ~MetricsExporter();

  MetricsExporter(const MetricsExporter&) = delete;
  MetricsExporter& operator=(const MetricsExporter&) = delete;

  /// Opens the output file (append) and spawns the export thread. Returns
  /// InvalidArgument on an empty path or if already started, and an IO error
  /// if the file cannot be opened.
  Status Start();

  /// Writes the final snapshot line, flushes, and joins the thread.
  /// Idempotent; a no-op when Start() never succeeded.
  void Stop();

  bool running() const;
  /// Lines written so far (including the final one after Stop()).
  long long snapshots_written() const;
  const MetricsExporterOptions& options() const { return options_; }

 private:
  void Loop();
  void WriteSnapshotLine(bool final_line);

  MetricsExporterOptions options_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::thread thread_;
  std::FILE* file_ = nullptr;      // guarded by mu_ for open/close; the
                                   // export thread is the only writer
  bool running_ = false;           // guarded by mu_
  bool stop_requested_ = false;    // guarded by mu_
  long long snapshots_written_ = 0;  // guarded by mu_
  long long seq_ = 0;
  std::chrono::steady_clock::time_point start_time_;
  MetricsSnapshot previous_;  // last exported snapshot, for deltas
};

/// Starts a process-global exporter configured from the environment:
/// OMNIFAIR_METRICS_OUT names the JSONL file, OMNIFAIR_METRICS_INTERVAL_MS
/// the period (default 1000). Idempotent — the first call wins; later calls
/// return the same exporter. Returns nullptr when OMNIFAIR_METRICS_OUT is
/// unset or Start() fails (a warning is logged). The exporter is stopped and
/// flushed via std::atexit, so normal process exit always writes the final
/// snapshot. InitTelemetryFromEnv() calls this, so every bench and the CLI
/// get the exporter for free.
MetricsExporter* StartGlobalMetricsExporterFromEnv();

/// Stops (final flush) the global exporter if one is running. Safe to call
/// multiple times; mainly for tests that want the file complete before exit.
void StopGlobalMetricsExporter();

}  // namespace omnifair

#endif  // OMNIFAIR_UTIL_METRICS_EXPORT_H_
