// Thread-scaling study for the shared pool (DESIGN.md §10): the parallel
// grid search (COMPAS, SP + FNR, k = 2) and the random forest at 1/2/4/hw
// worker threads. Every parallel configuration is checked bit-identical to
// the serial run before its timing is reported — speedup that changes the
// answer would not count. Also measures the coefficient-cached weight
// computation (cold build vs warm axpy) and the pool's per-task overhead
// with telemetry on vs off.
//
// Extra knob: OMNIFAIR_BENCH_GRID_POINTS - grid resolution per dimension
// (default 15, i.e. 225 fits per thread count).

#include "bench/bench_common.h"

#include <algorithm>
#include <set>

#include "core/grid_search.h"
#include "core/problem.h"
#include "core/weights.h"
#include "ml/random_forest.h"
#include "util/thread_pool.h"

namespace omnifair {
namespace bench {
namespace {

struct GridRun {
  MultiTuneResult result;
  std::vector<GridPoint> points;
  TuneReport report;
  double seconds = 0.0;
};

GridRun RunGridAt(const TrainValTestSplit& split,
                  const std::vector<FairnessSpec>& specs, int points_per_dim,
                  int num_threads) {
  auto trainer = MakeTrainer("lr");
  auto problem =
      FairnessProblem::Create(split.train, split.val, specs, trainer.get());
  OF_CHECK(problem.ok());
  GridSearchOptions options;
  options.points_per_dim = points_per_dim;
  options.max_lambda = 0.4;
  options.num_threads = num_threads;
  const GridSearchTuner tuner(options);
  GridRun run;
  run.report.algorithm = "grid_search";
  (*problem)->StartTuneReport(&run.report);
  Stopwatch watch;
  run.result = tuner.RunCollecting(**problem, &run.points);
  run.seconds = watch.ElapsedSeconds();
  (*problem)->StartTuneReport(nullptr);
  run.report.models_trained = run.result.models_trained;
  run.report.wall_seconds = run.seconds;
  return run;
}

bool SameGridOutcome(const GridRun& a, const GridRun& b) {
  if (a.result.lambdas != b.result.lambdas) return false;
  if (a.result.satisfied != b.result.satisfied) return false;
  if (a.result.val_accuracy != b.result.val_accuracy) return false;
  if (a.points.size() != b.points.size()) return false;
  for (size_t i = 0; i < a.points.size(); ++i) {
    if (a.points[i].lambdas != b.points[i].lambdas) return false;
    if (a.points[i].val_accuracy != b.points[i].val_accuracy) return false;
    if (a.points[i].val_fairness_parts != b.points[i].val_fairness_parts) {
      return false;
    }
    if (a.points[i].satisfied != b.points[i].satisfied) return false;
  }
  return true;
}

std::vector<int> ThreadCounts() {
  std::set<int> unique = {1, 2, 4, ThreadPool::DefaultThreadCount()};
  return {unique.begin(), unique.end()};
}

void RunGridScaling(BenchReporter& reporter, const TrainValTestSplit& split) {
  const int points_per_dim = static_cast<int>(
      EnvPositiveLong("OMNIFAIR_BENCH_GRID_POINTS", 15));
  reporter.Config("points_per_dim", points_per_dim);
  const GroupingFunction groups = MainGroups("compas");
  const std::vector<FairnessSpec> specs = {MakeSpec(groups, "sp", 0.03),
                                           MakeSpec(groups, "fnr", 0.03)};

  PrintHeader("Grid search scaling (COMPAS, SP + FNR, LR)");
  std::printf("%8s %10s %9s %7s %10s %10s\n", "threads", "seconds", "speedup",
              "fits", "identical", "satisfied");

  GridRun serial;
  for (int threads : ThreadCounts()) {
    GridRun run = RunGridAt(split, specs, points_per_dim, threads);
    const bool is_serial = threads == 1;
    if (is_serial) {
      reporter.AddTrajectory("grid threads=1", run.report);
    }
    const bool identical = is_serial || SameGridOutcome(serial, run);
    const double speedup =
        run.seconds > 0.0 && !is_serial ? serial.seconds / run.seconds : 1.0;
    std::printf("%8d %10.2f %9.2f %7d %10s %10s\n", threads, run.seconds,
                speedup, run.result.models_trained, identical ? "yes" : "NO",
                run.result.satisfied ? "yes" : "no");
    reporter.AddRow("grid_scaling")
        .Value("threads", threads)
        .Value("seconds", run.seconds)
        .Value("speedup", speedup)
        .Value("models_trained", run.result.models_trained)
        .Value("identical_to_serial", identical ? 1.0 : 0.0)
        .Value("satisfied", run.result.satisfied ? 1.0 : 0.0)
        .Value("val_accuracy", run.result.val_accuracy);
    if (is_serial) serial = std::move(run);
  }
}

void RunForestScaling(BenchReporter& reporter, const TrainValTestSplit& split) {
  PrintHeader("Random forest scaling (COMPAS, 48 trees)");
  std::printf("%8s %10s %12s %9s %10s\n", "threads", "fit(s)", "predict(s)",
              "speedup", "identical");

  // One shared encoding so every thread count trains on identical features.
  auto trainer_for_encoder = MakeTrainer("lr");
  auto problem = FairnessProblem::Create(
      split.train, split.val,
      {MakeSpec(MainGroups("compas"), "sp", 0.03)}, trainer_for_encoder.get());
  OF_CHECK(problem.ok());
  const Matrix& X = (*problem)->train_features();
  const std::vector<int>& y = (*problem)->train().labels();

  double serial_fit_seconds = 0.0;
  std::vector<double> serial_proba;
  for (int threads : ThreadCounts()) {
    RandomForestOptions options;
    options.num_trees = 48;
    options.seed = 9;
    options.num_threads = threads;
    RandomForestTrainer trainer(options);
    Stopwatch fit_watch;
    const auto model = trainer.Fit(X, y);
    const double fit_seconds = fit_watch.ElapsedSeconds();
    Stopwatch predict_watch;
    const std::vector<double> proba = model->PredictProba(X);
    const double predict_seconds = predict_watch.ElapsedSeconds();

    const bool is_serial = threads == 1;
    if (is_serial) {
      serial_fit_seconds = fit_seconds;
      serial_proba = proba;
    }
    const bool identical = proba == serial_proba;
    const double speedup =
        fit_seconds > 0.0 && !is_serial ? serial_fit_seconds / fit_seconds : 1.0;
    std::printf("%8d %10.3f %12.3f %9.2f %10s\n", threads, fit_seconds,
                predict_seconds, speedup, identical ? "yes" : "NO");
    reporter.AddRow("forest_scaling")
        .Value("threads", threads)
        .Value("fit_seconds", fit_seconds)
        .Value("predict_seconds", predict_seconds)
        .Value("speedup", speedup)
        .Value("identical_to_serial", identical ? 1.0 : 0.0);
  }
}

void RunWeightCacheTiming(BenchReporter& reporter, const TrainValTestSplit& split) {
  PrintHeader("Coefficient-cached weight computation");
  auto constraints = InduceConstraints(
      {MakeSpec(MainGroups("compas"), "sp", 0.03),
       MakeSpec(MainGroups("compas"), "fnr", 0.03)},
      split.train);
  OF_CHECK(constraints.ok());
  const WeightComputer computer(*constraints, split.train);

  // First call builds the (row, coefficient) terms; the rest are pure axpy
  // over the cached arrays. Both timings land in the weights.compute_us
  // histogram of the metrics snapshot as well.
  Stopwatch cold_watch;
  (void)computer.Compute({0.1, -0.1}, nullptr);
  const double cold_us = cold_watch.ElapsedSeconds() * 1e6;

  const int warm_calls = 2000;
  Stopwatch warm_watch;
  for (int i = 0; i < warm_calls; ++i) {
    const double lambda = 0.4 * (i % 17) / 17.0 - 0.2;
    (void)computer.Compute({lambda, -lambda}, nullptr);
  }
  const double warm_us = warm_watch.ElapsedSeconds() * 1e6 / warm_calls;

  std::printf("cold build: %.1f us   warm compute: %.2f us   (n = %zu rows)\n",
              cold_us, warm_us, split.train.NumRows());
  reporter.AddRow("weight_cache")
      .Value("cold_us", cold_us)
      .Value("warm_us", warm_us)
      .Value("rows", static_cast<double>(split.train.NumRows()));
}

void RunPoolOverhead(BenchReporter& reporter) {
  PrintHeader("Pool per-task overhead, telemetry on vs off");
  ThreadPool& pool = ThreadPool::Global();
  const size_t iterations = 200000;
  std::atomic<size_t> sink{0};
  const auto body = [&sink](size_t i) {
    sink.fetch_add(i, std::memory_order_relaxed);
  };

  Stopwatch on_watch;
  pool.ParallelFor(iterations, body);
  const double on_ns = on_watch.ElapsedSeconds() * 1e9 / iterations;

  double off_ns = 0.0;
  {
    ScopedTelemetryLevel off(TelemetryLevel::kOff);
    Stopwatch off_watch;
    pool.ParallelFor(iterations, body);
    off_ns = off_watch.ElapsedSeconds() * 1e9 / iterations;
  }
  std::printf("telemetry on: %.1f ns/iter   off: %.1f ns/iter\n", on_ns, off_ns);
  reporter.AddRow("pool_overhead")
      .Value("telemetry_on_ns_per_iter", on_ns)
      .Value("telemetry_off_ns_per_iter", off_ns)
      .Value("pool_threads", static_cast<double>(pool.NumThreads()));
}

void Run(BenchReporter& reporter) {
  reporter.Config("dataset", "compas");
  reporter.Config("constraints", "sp+fnr");
  reporter.Config("rows", DefaultRows("compas"));
  reporter.Config("hardware_threads", ThreadPool::DefaultThreadCount());

  const Dataset data = MakeBenchDataset("compas", 700);
  const TrainValTestSplit split = SplitDefault(data, 800);

  RunGridScaling(reporter, split);
  RunForestScaling(reporter, split);
  RunWeightCacheTiming(reporter, split);
  RunPoolOverhead(reporter);
}

}  // namespace
}  // namespace bench
}  // namespace omnifair

int main() {
  omnifair::InitTelemetryFromEnv();
  omnifair::bench::BenchReporter reporter(
      "thread_scaling",
      "Shared-pool thread scaling: grid search, random forest, weight cache");
  omnifair::bench::Run(reporter);
  return omnifair::bench::FinishBench(reporter);
}
