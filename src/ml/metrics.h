#ifndef OMNIFAIR_ML_METRICS_H_
#define OMNIFAIR_ML_METRICS_H_

#include <cstddef>
#include <vector>

namespace omnifair {

/// Binary confusion counts.
struct ConfusionCounts {
  size_t tp = 0;
  size_t fp = 0;
  size_t tn = 0;
  size_t fn = 0;

  size_t Total() const { return tp + fp + tn + fn; }
  double Accuracy() const;
  /// FP / (FP + TN); 0 when undefined.
  double FalsePositiveRate() const;
  /// FN / (FN + TP); 0 when undefined.
  double FalseNegativeRate() const;
  /// FN / (FN + TN): P(y=1 | h=0); 0 when undefined.
  double FalseOmissionRate() const;
  /// FP / (FP + TP): P(y=0 | h=1); 0 when undefined.
  double FalseDiscoveryRate() const;
  /// (TP + FP) / total: P(h=1).
  double PositivePredictionRate() const;
};

/// Counts over (labels, predictions), optionally restricted to `subset`
/// (row indices). Predictions and labels must be 0/1.
ConfusionCounts CountConfusion(const std::vector<int>& labels,
                               const std::vector<int>& predictions);
ConfusionCounts CountConfusion(const std::vector<int>& labels,
                               const std::vector<int>& predictions,
                               const std::vector<size_t>& subset);

/// Unweighted accuracy = mean(1(h(x_i) = y_i)) — AP(theta) in the paper.
double Accuracy(const std::vector<int>& labels, const std::vector<int>& predictions);

/// Weighted accuracy = (1/N) * sum w_i * 1(h(x_i) = y_i) — the objective of
/// Equation (2)/(12) in the paper.
double WeightedAccuracy(const std::vector<int>& labels,
                        const std::vector<int>& predictions,
                        const std::vector<double>& weights);

/// ROC AUC from scores (higher = more positive). Handles ties by the
/// standard rank/trapezoid formulation; returns 0.5 for degenerate label
/// sets. Used by the paper's Figure 4(c).
double RocAuc(const std::vector<int>& labels, const std::vector<double>& scores);

}  // namespace omnifair

#endif  // OMNIFAIR_ML_METRICS_H_
