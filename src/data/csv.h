#ifndef OMNIFAIR_DATA_CSV_H_
#define OMNIFAIR_DATA_CSV_H_

#include <string>
#include <vector>

#include "data/dataset.h"
#include "util/status.h"

namespace omnifair {

/// Options controlling CSV parsing into a Dataset.
struct CsvReadOptions {
  char delimiter = ',';
  /// Name of the label column (required; parsed as 0/1 or a positive-class
  /// string given below).
  std::string label_column = "label";
  /// If non-empty, label cells equal to this string map to 1, all else to 0.
  std::string positive_label_value;
  /// Columns to parse as categorical even if all cells look numeric.
  std::vector<std::string> force_categorical;
  /// Columns that MUST be numeric: a cell that does not parse as a finite
  /// double fails the read with kInvalidArgument naming the offending row,
  /// instead of silently demoting the column to categorical.
  std::vector<std::string> force_numeric;
};

/// Splits one CSV record into fields, honoring double-quoted fields with ""
/// as the escaped-quote sequence. Returns false on an unterminated quote.
/// Shared by ReadCsv and the streaming block parser (data/stream_reader.h).
bool SplitCsvRecord(std::string_view record, char delimiter,
                    std::vector<std::string>* fields);

/// Reads a CSV file with a header row into a Dataset. Column types are
/// inferred: a column is numeric iff every cell parses as a finite double
/// (and it is not listed in force_categorical). Fields may be quoted with
/// double quotes ("" escapes a literal quote inside); malformed rows —
/// ragged field counts, unterminated quotes, bad labels, non-numeric cells
/// in force_numeric columns — fail with kInvalidArgument carrying the
/// path:line of the offending row plus its starting byte offset, so failures
/// inside multi-GB files are seekable.
Result<Dataset> ReadCsv(const std::string& path, const CsvReadOptions& options);

/// Writes a Dataset (attributes + label column) as CSV with a header row.
Status WriteCsv(const Dataset& dataset, const std::string& path);

}  // namespace omnifair

#endif  // OMNIFAIR_DATA_CSV_H_
