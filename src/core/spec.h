#ifndef OMNIFAIR_CORE_SPEC_H_
#define OMNIFAIR_CORE_SPEC_H_

#include <memory>
#include <string>
#include <vector>

#include "core/fairness_metric.h"
#include "core/groups.h"
#include "util/status.h"

namespace omnifair {

/// The user-facing declarative triplet (g, f, epsilon) of Definition 1.
struct FairnessSpec {
  GroupingFunction grouping;
  std::shared_ptr<FairnessMetric> metric;
  /// Maximum allowed |f(h,g_i) - f(h,g_j)| between any two groups.
  double epsilon = 0.05;
};

/// Convenience constructors for common specs.
FairnessSpec MakeSpec(GroupingFunction grouping, MetricKind kind, double epsilon);
FairnessSpec MakeSpec(GroupingFunction grouping, const std::string& metric_name,
                      double epsilon);

/// Composite notions from the paper's §3.2, expressed as spec pairs:
/// equalized odds [27] = FPR parity + FNR parity.
std::vector<FairnessSpec> EqualizedOddsSpecs(GroupingFunction grouping,
                                             double epsilon);
/// Predictive parity [16] = FOR parity + FDR parity.
std::vector<FairnessSpec> PredictiveParitySpecs(GroupingFunction grouping,
                                                double epsilon);

/// One induced pairwise constraint |f(h,g1) - f(h,g2)| <= epsilon
/// (Definition 1: a spec over m groups induces C(m,2) constraints). The
/// constraint stores the grouping function plus the two group names so it
/// can be re-materialized on any dataset split (train vs validation).
struct ConstraintSpec {
  GroupingFunction grouping;
  std::shared_ptr<FairnessMetric> metric;
  std::string group1;
  std::string group2;
  double epsilon = 0.05;
};

/// Materializes the pairwise constraints a spec induces. Group names come
/// from evaluating the grouping function on `reference` (typically the full
/// dataset before splitting, or the training split). Returns
/// kInvalidArgument when the grouping yields fewer than two non-empty
/// groups.
Result<std::vector<ConstraintSpec>> InduceConstraints(const FairnessSpec& spec,
                                                      const Dataset& reference);

/// Induces constraints for several specs, concatenated in order.
Result<std::vector<ConstraintSpec>> InduceConstraints(
    const std::vector<FairnessSpec>& specs, const Dataset& reference);

}  // namespace omnifair

#endif  // OMNIFAIR_CORE_SPEC_H_
