#ifndef OMNIFAIR_LINALG_MATRIX_H_
#define OMNIFAIR_LINALG_MATRIX_H_

#include <cstddef>
#include <initializer_list>
#include <vector>

namespace omnifair {

/// Dense row-major matrix. This is the feature-matrix currency of the
/// library: datasets encode to a Matrix, ML trainers consume a Matrix.
/// Deliberately minimal — the ML algorithms in this repo only need row
/// access, matrix-vector products and element arithmetic.
///
/// Storage is double by default; a float32 mode (EncoderOptions::
/// float32_features) halves the feature-matrix footprint and memory
/// bandwidth. Model parameters, gradients and accumulators stay double
/// everywhere — float32 only narrows the stored feature values, so each
/// element loses at most one float rounding at encode time. Typed row access
/// is mode-checked: Row()/data() require double storage, RowF() requires
/// float32; operator()(r, c) const, Set(), and the product kernels work in
/// either mode.
class Matrix {
 public:
  enum class Storage { kFloat64 = 0, kFloat32 = 1 };

  Matrix() : rows_(0), cols_(0) {}
  Matrix(size_t rows, size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(CheckedSize(rows, cols), fill) {}

  /// A zero-filled float32-storage matrix of the given shape.
  static Matrix Float32(size_t rows, size_t cols);

  /// Builds from nested initializer lists; all rows must agree in length.
  Matrix(std::initializer_list<std::initializer_list<double>> rows);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  bool empty() const { return rows_ == 0 || cols_ == 0; }
  Storage storage() const { return storage_; }
  bool is_float32() const { return storage_ == Storage::kFloat32; }

  double& operator()(size_t r, size_t c) {
    if (storage_ != Storage::kFloat64) DieWrongStorage("operator()");
    return data_[r * cols_ + c];
  }
  double operator()(size_t r, size_t c) const {
    const size_t i = r * cols_ + c;
    return storage_ == Storage::kFloat32 ? static_cast<double>(fdata_[i])
                                         : data_[i];
  }
  /// Storage-agnostic element write (narrows to float in float32 mode).
  void Set(size_t r, size_t c, double value) {
    const size_t i = r * cols_ + c;
    if (storage_ == Storage::kFloat32) {
      fdata_[i] = static_cast<float>(value);
    } else {
      data_[i] = value;
    }
  }

  /// Pointer to the start of row r (contiguous, cols() elements). Row()
  /// requires double storage, RowF() float32 storage.
  double* Row(size_t r) {
    if (storage_ != Storage::kFloat64) DieWrongStorage("Row");
    return data_.data() + r * cols_;
  }
  const double* Row(size_t r) const {
    if (storage_ != Storage::kFloat64) DieWrongStorage("Row");
    return data_.data() + r * cols_;
  }
  float* RowF(size_t r) {
    if (storage_ != Storage::kFloat32) DieWrongStorage("RowF");
    return fdata_.data() + r * cols_;
  }
  const float* RowF(size_t r) const {
    if (storage_ != Storage::kFloat32) DieWrongStorage("RowF");
    return fdata_.data() + r * cols_;
  }

  /// Copies row r into a double vector (either storage mode).
  std::vector<double> RowVector(size_t r) const;

  /// Copies column c into a double vector (either storage mode).
  std::vector<double> ColVector(size_t c) const;

  /// New matrix holding the given subset of rows, in order. Preserves the
  /// storage mode of the source.
  Matrix SelectRows(const std::vector<size_t>& indices) const;

  /// Appends a row; the first appended row fixes cols() for empty matrices.
  /// In float32 mode the values are narrowed on append.
  void AppendRow(const std::vector<double>& row);

  /// y = this * x ; x.size() must equal cols().
  std::vector<double> MatVec(const std::vector<double>& x) const;

  /// y = this^T * x ; x.size() must equal rows().
  std::vector<double> TransposeMatVec(const std::vector<double>& x) const;

  /// In-place products for hot loops (no per-call allocation). The vector
  /// forms resize the output; the raw-pointer forms require y to hold
  /// rows() (MatVecInto) or cols() (TransposeMatVecInto) doubles.
  void MatVecInto(const std::vector<double>& x, std::vector<double>* y) const;
  void MatVecInto(const double* x, double* y) const;
  /// Mixed-precision form: float32 input vector against this (double) matrix,
  /// used by MLP when the feature rows are float32.
  void MatVecInto(const float* x, double* y) const;
  void TransposeMatVecInto(const std::vector<double>& x,
                           std::vector<double>* y) const;
  void TransposeMatVecInto(const double* x, double* y) const;

  /// Storage conversions (copying). ToFloat32 narrows each element once;
  /// ToFloat64 widens exactly.
  Matrix ToFloat32() const;
  Matrix ToFloat64() const;

  /// Raw double payload; requires double storage (use RawData for a
  /// storage-agnostic view).
  const std::vector<double>& data() const {
    if (storage_ != Storage::kFloat64) DieWrongStorage("data");
    return data_;
  }
  std::vector<double>& data() {
    if (storage_ != Storage::kFloat64) DieWrongStorage("data");
    return data_;
  }

  /// Untyped view of the element payload (for fingerprinting / identity
  /// checks); valid in either storage mode.
  const void* RawData() const;
  size_t RawBytes() const;

 private:
  /// rows * cols with an overflow check — a shape whose element count does
  /// not fit size_t fails loudly instead of wrapping (same treatment as the
  /// grid-size overflow guard in core/grid_search.cc).
  static size_t CheckedSize(size_t rows, size_t cols);
  [[noreturn]] void DieWrongStorage(const char* op) const;

  size_t rows_;
  size_t cols_;
  Storage storage_ = Storage::kFloat64;
  std::vector<double> data_;
  std::vector<float> fdata_;
};

}  // namespace omnifair

#endif  // OMNIFAIR_LINALG_MATRIX_H_
