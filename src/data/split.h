#ifndef OMNIFAIR_DATA_SPLIT_H_
#define OMNIFAIR_DATA_SPLIT_H_

#include <cstdint>
#include <vector>

#include "data/dataset.h"

namespace omnifair {

/// A train/validation/test partition of a dataset. The paper's protocol is a
/// random 60/20/20 split, repeated over 10 seeds with averaged results.
struct TrainValTestSplit {
  Dataset train;
  Dataset val;
  Dataset test;
  /// Original row indices of each partition (for debugging / reproducing).
  std::vector<size_t> train_indices;
  std::vector<size_t> val_indices;
  std::vector<size_t> test_indices;
};

/// Randomly partitions `dataset` into train/val/test with the given
/// fractions (test gets the remainder). Deterministic given the seed.
TrainValTestSplit SplitDataset(const Dataset& dataset, double train_fraction,
                               double val_fraction, uint64_t seed);

/// The paper's default protocol: 60% train / 20% validation / 20% test.
TrainValTestSplit SplitDefault(const Dataset& dataset, uint64_t seed);

}  // namespace omnifair

#endif  // OMNIFAIR_DATA_SPLIT_H_
