#include "core/fairness_metric.h"

#include "util/logging.h"

namespace omnifair {
namespace {

size_t CountLabel(const Dataset& dataset, const std::vector<size_t>& group, int label) {
  size_t count = 0;
  for (size_t i : group) count += (dataset.Label(i) == label);
  return count;
}

size_t CountPrediction(const std::vector<int>& predictions,
                       const std::vector<size_t>& group, int value) {
  size_t count = 0;
  for (size_t i : group) count += (predictions[i] == value);
  return count;
}

/// Statistical parity, f = P(h=1) (Example 3, Equation 8):
/// c_i = +1/|g| when y=1, -1/|g| when y=0, c0 = |{y=0}|/|g|.
class StatisticalParityMetric : public FairnessMetric {
 public:
  std::string Name() const override { return "sp"; }
  MetricCoefficients Coefficients(const Dataset& dataset,
                                  const std::vector<size_t>& group,
                                  const std::vector<int>*) const override {
    MetricCoefficients out;
    // Empty-group convention (DESIGN.md §8): the metric contributes 0, so
    // the constraint is skipped instead of dividing by zero.
    if (group.empty()) return out;
    const double size = static_cast<double>(group.size());
    out.c.resize(group.size());
    for (size_t k = 0; k < group.size(); ++k) {
      out.c[k] = dataset.Label(group[k]) == 1 ? 1.0 / size : -1.0 / size;
    }
    out.c0 = static_cast<double>(CountLabel(dataset, group, 0)) / size;
    return out;
  }
};

/// Misclassification rate parity expressed as accuracy (Appendix A, Eq. 25):
/// f = P(h=y), c_i = 1/|g|, c0 = 0. Equal accuracy <=> equal MR.
class MisclassificationRateMetric : public FairnessMetric {
 public:
  std::string Name() const override { return "mr"; }
  MetricCoefficients Coefficients(const Dataset&, const std::vector<size_t>& group,
                                  const std::vector<int>*) const override {
    MetricCoefficients out;
    if (group.empty()) return out;  // empty-group convention: contributes 0
    const double size = static_cast<double>(group.size());
    out.c.assign(group.size(), 1.0 / size);
    out.c0 = 0.0;
    return out;
  }
};

/// FPR = P(h=1 | y=0) = 1 - (1/|y=0|) * sum_{y_i=0} 1(h=y):
/// c_i = -1/|{y=0}| for y_i=0, 0 otherwise, c0 = 1.
/// (Table 2 lists the sign-flipped TNR variant; disparities coincide.)
class FalsePositiveRateMetric : public FairnessMetric {
 public:
  std::string Name() const override { return "fpr"; }
  MetricCoefficients Coefficients(const Dataset& dataset,
                                  const std::vector<size_t>& group,
                                  const std::vector<int>*) const override {
    MetricCoefficients out;
    const size_t negatives = CountLabel(dataset, group, 0);
    out.c.resize(group.size(), 0.0);
    if (negatives == 0) return out;  // FPR undefined; metric contributes 0
    const double coef = -1.0 / static_cast<double>(negatives);
    for (size_t k = 0; k < group.size(); ++k) {
      if (dataset.Label(group[k]) == 0) out.c[k] = coef;
    }
    out.c0 = 1.0;
    return out;
  }
};

/// FNR = P(h=0 | y=1): c_i = -1/|{y=1}| for y_i=1, 0 otherwise, c0 = 1.
class FalseNegativeRateMetric : public FairnessMetric {
 public:
  std::string Name() const override { return "fnr"; }
  MetricCoefficients Coefficients(const Dataset& dataset,
                                  const std::vector<size_t>& group,
                                  const std::vector<int>*) const override {
    MetricCoefficients out;
    const size_t positives = CountLabel(dataset, group, 1);
    out.c.resize(group.size(), 0.0);
    if (positives == 0) return out;
    const double coef = -1.0 / static_cast<double>(positives);
    for (size_t k = 0; k < group.size(); ++k) {
      if (dataset.Label(group[k]) == 1) out.c[k] = coef;
    }
    out.c0 = 1.0;
    return out;
  }
};

/// FOR = P(y=1 | h=0) (Appendix A, Eq. 26): prediction-parameterized.
/// c_i = -1/|{h=0}| for y_i=0, 0 otherwise, c0 = 1. Only rows with h=0 and
/// y=0 score 1(h=y)=1 among y_i=0 rows, so the identity recovers
/// 1 - TN/|{h=0}| = FOR.
class FalseOmissionRateMetric : public FairnessMetric {
 public:
  std::string Name() const override { return "for"; }
  bool DependsOnPredictions() const override { return true; }
  MetricCoefficients Coefficients(const Dataset& dataset,
                                  const std::vector<size_t>& group,
                                  const std::vector<int>* predictions) const override {
    OF_CHECK(predictions != nullptr) << "FOR requires predictions";
    MetricCoefficients out;
    const size_t predicted_negative = CountPrediction(*predictions, group, 0);
    out.c.resize(group.size(), 0.0);
    if (predicted_negative == 0) return out;
    const double coef = -1.0 / static_cast<double>(predicted_negative);
    for (size_t k = 0; k < group.size(); ++k) {
      if (dataset.Label(group[k]) == 0) out.c[k] = coef;
    }
    out.c0 = 1.0;
    return out;
  }
};

/// FDR = P(y=0 | h=1): prediction-parameterized.
/// c_i = -1/|{h=1}| for y_i=1, 0 otherwise, c0 = 1.
class FalseDiscoveryRateMetric : public FairnessMetric {
 public:
  std::string Name() const override { return "fdr"; }
  bool DependsOnPredictions() const override { return true; }
  MetricCoefficients Coefficients(const Dataset& dataset,
                                  const std::vector<size_t>& group,
                                  const std::vector<int>* predictions) const override {
    OF_CHECK(predictions != nullptr) << "FDR requires predictions";
    MetricCoefficients out;
    const size_t predicted_positive = CountPrediction(*predictions, group, 1);
    out.c.resize(group.size(), 0.0);
    if (predicted_positive == 0) return out;
    const double coef = -1.0 / static_cast<double>(predicted_positive);
    for (size_t k = 0; k < group.size(); ++k) {
      if (dataset.Label(group[k]) == 1) out.c[k] = coef;
    }
    out.c0 = 1.0;
    return out;
  }
};

}  // namespace

double FairnessMetric::Evaluate(const Dataset& dataset,
                                const std::vector<size_t>& group,
                                const std::vector<int>& predictions) const {
  const MetricCoefficients coef = Coefficients(dataset, group, &predictions);
  OF_CHECK_EQ(coef.c.size(), group.size());
  double value = coef.c0;
  for (size_t k = 0; k < group.size(); ++k) {
    const size_t i = group[k];
    if (predictions[i] == dataset.Label(i)) value += coef.c[k];
  }
  return value;
}

std::unique_ptr<FairnessMetric> MakeMetric(MetricKind kind) {
  switch (kind) {
    case MetricKind::kStatisticalParity:
      return std::make_unique<StatisticalParityMetric>();
    case MetricKind::kMisclassificationRate:
      return std::make_unique<MisclassificationRateMetric>();
    case MetricKind::kFalsePositiveRate:
      return std::make_unique<FalsePositiveRateMetric>();
    case MetricKind::kFalseNegativeRate:
      return std::make_unique<FalseNegativeRateMetric>();
    case MetricKind::kFalseOmissionRate:
      return std::make_unique<FalseOmissionRateMetric>();
    case MetricKind::kFalseDiscoveryRate:
      return std::make_unique<FalseDiscoveryRateMetric>();
  }
  OF_CHECK(false) << "unknown metric kind";
  return nullptr;
}

std::unique_ptr<FairnessMetric> MakeMetricByName(const std::string& name) {
  if (name == "sp") return MakeMetric(MetricKind::kStatisticalParity);
  if (name == "mr") return MakeMetric(MetricKind::kMisclassificationRate);
  if (name == "fpr") return MakeMetric(MetricKind::kFalsePositiveRate);
  if (name == "fnr") return MakeMetric(MetricKind::kFalseNegativeRate);
  if (name == "for") return MakeMetric(MetricKind::kFalseOmissionRate);
  if (name == "fdr") return MakeMetric(MetricKind::kFalseDiscoveryRate);
  OF_CHECK(false) << "unknown metric name: " << name;
  return nullptr;
}

MetricCoefficients AverageErrorCostMetric::Coefficients(
    const Dataset& dataset, const std::vector<size_t>& group,
    const std::vector<int>*) const {
  // f = (C_fp * sum_{y=0}(1 - 1_i) + C_fn * sum_{y=1}(1 - 1_i)) / |g|
  //   => c_i = -C_fp/|g| (y=0), -C_fn/|g| (y=1),
  //      c0 = (C_fp*|{y=0}| + C_fn*|{y=1}|) / |g|.
  MetricCoefficients out;
  if (group.empty()) return out;  // empty-group convention: contributes 0
  const double size = static_cast<double>(group.size());
  out.c.resize(group.size());
  size_t negatives = 0;
  for (size_t k = 0; k < group.size(); ++k) {
    if (dataset.Label(group[k]) == 0) {
      out.c[k] = -cost_fp_ / size;
      ++negatives;
    } else {
      out.c[k] = -cost_fn_ / size;
    }
  }
  const double positives = size - static_cast<double>(negatives);
  out.c0 = (cost_fp_ * static_cast<double>(negatives) + cost_fn_ * positives) / size;
  return out;
}

}  // namespace omnifair
