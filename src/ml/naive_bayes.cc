#include "ml/naive_bayes.h"

#include <algorithm>
#include <cmath>

#include "linalg/vector_ops.h"
#include "util/logging.h"
#include "util/telemetry.h"
#include "util/trace.h"

namespace omnifair {

NaiveBayesModel::NaiveBayesModel(double log_prior_ratio, std::vector<double> mean0,
                                 std::vector<double> mean1, std::vector<double> var0,
                                 std::vector<double> var1)
    : log_prior_ratio_(log_prior_ratio),
      mean0_(std::move(mean0)),
      mean1_(std::move(mean1)),
      var0_(std::move(var0)),
      var1_(std::move(var1)) {}

std::vector<double> NaiveBayesModel::PredictProba(const Matrix& X) const {
  OF_CHECK_EQ(X.cols(), mean0_.size());
  std::vector<double> proba(X.rows());
  for (size_t i = 0; i < X.rows(); ++i) {
    // log P(y=1|x) - log P(y=0|x) under the independence assumption.
    // Element access via operator() keeps this path storage-agnostic
    // (double or float32 features); the per-element log/exp dominate.
    double log_odds = log_prior_ratio_;
    for (size_t c = 0; c < mean0_.size(); ++c) {
      const double x = X(i, c);
      const double d1 = x - mean1_[c];
      const double d0 = x - mean0_[c];
      log_odds += -0.5 * std::log(var1_[c]) - 0.5 * d1 * d1 / var1_[c];
      log_odds -= -0.5 * std::log(var0_[c]) - 0.5 * d0 * d0 / var0_[c];
    }
    proba[i] = Sigmoid(log_odds);
  }
  return proba;
}

NaiveBayesTrainer::NaiveBayesTrainer(NaiveBayesOptions options) : options_(options) {}

std::unique_ptr<Classifier> NaiveBayesTrainer::Fit(const Matrix& X,
                                                   const std::vector<int>& y,
                                                   const std::vector<double>& weights) {
  OF_CHECK_EQ(X.rows(), y.size());
  OF_CHECK_EQ(X.rows(), weights.size());
  OF_TRACE_SPAN("fit/nb");
  OF_SCOPED_LATENCY_US("ml.fit_us.nb");
  const size_t n = X.rows();
  const size_t d = X.cols();

  double w0 = 0.0;
  double w1 = 0.0;
  std::vector<double> mean0(d, 0.0);
  std::vector<double> mean1(d, 0.0);
  for (size_t i = 0; i < n; ++i) {
    std::vector<double>& mean = y[i] == 1 ? mean1 : mean0;
    (y[i] == 1 ? w1 : w0) += weights[i];
    for (size_t c = 0; c < d; ++c) mean[c] += weights[i] * X(i, c);
  }
  // Degenerate weighted classes: fall back to an uninformative prior.
  const double tiny = 1e-12;
  for (size_t c = 0; c < d; ++c) {
    mean0[c] = w0 > tiny ? mean0[c] / w0 : 0.0;
    mean1[c] = w1 > tiny ? mean1[c] / w1 : 0.0;
  }

  std::vector<double> var0(d, 0.0);
  std::vector<double> var1(d, 0.0);
  for (size_t i = 0; i < n; ++i) {
    std::vector<double>& mean = y[i] == 1 ? mean1 : mean0;
    std::vector<double>& var = y[i] == 1 ? var1 : var0;
    for (size_t c = 0; c < d; ++c) {
      const double diff = X(i, c) - mean[c];
      var[c] += weights[i] * diff * diff;
    }
  }
  double max_variance = 0.0;
  for (size_t c = 0; c < d; ++c) {
    var0[c] = w0 > tiny ? var0[c] / w0 : 1.0;
    var1[c] = w1 > tiny ? var1[c] / w1 : 1.0;
    max_variance = std::max({max_variance, var0[c], var1[c]});
  }
  const double floor =
      std::max(options_.variance_smoothing * std::max(max_variance, 1.0), 1e-12);
  for (size_t c = 0; c < d; ++c) {
    var0[c] = std::max(var0[c], floor);
    var1[c] = std::max(var1[c], floor);
  }

  const double prior1 = std::clamp(w1 / std::max(w0 + w1, tiny), 1e-9, 1.0 - 1e-9);
  const double log_prior_ratio = std::log(prior1 / (1.0 - prior1));
  return std::make_unique<NaiveBayesModel>(log_prior_ratio, std::move(mean0),
                                           std::move(mean1), std::move(var0),
                                           std::move(var1));
}

}  // namespace omnifair
