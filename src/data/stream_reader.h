#ifndef OMNIFAIR_DATA_STREAM_READER_H_
#define OMNIFAIR_DATA_STREAM_READER_H_

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "data/encoder.h"
#include "util/status.h"

namespace omnifair {

// ---------------------------------------------------------------------------
// Out-of-core CSV ingest (DESIGN.md §16).
//
// StreamCsvToChunked reads a CSV of any size in fixed-size byte chunks,
// parses complete records block-by-block on the shared thread pool, encodes
// each block straight into the float32 feature layout, and spills the encoded
// blocks to an on-disk chunked dataset (data/chunked_dataset.h). Peak
// resident memory is one block of raw text plus one encoded block —
// independent of file size — so a 10M-row file never holds raw text and
// encoded features in RAM at once.
//
// Streaming-encode compromise: the feature encoder (standardization
// statistics, one-hot dictionaries) is fitted on the FIRST block only.
// Categories first seen in later blocks encode as all-zero one-hot rows —
// the same treatment FeatureEncoder::Transform gives unseen validation
// categories. Make the first block representative (the default 65536 rows
// is far above what the statistics need).
// ---------------------------------------------------------------------------

/// Incremental CSV record-boundary scanner. Feed() accepts byte chunks in
/// arrival order and emits complete records; a '\n' inside a double-quoted
/// field does NOT terminate the record even when the quote opened in an
/// earlier chunk, CRLF line endings are handled even when the '\r' and '\n'
/// land in different chunks, and Finish() flushes a final record that lacks
/// a trailing newline. Emitted records exclude the terminator and come with
/// the absolute byte offset of their first character.
class CsvRecordScanner {
 public:
  using RecordFn = std::function<void(std::string_view record, uint64_t offset)>;

  /// Scans `chunk` (the next bytes of the file). `on_record` runs once per
  /// completed record; the string_view is only valid during the call.
  void Feed(std::string_view chunk, const RecordFn& on_record);

  /// Emits the trailing unterminated record, if any, and resets the scanner.
  void Finish(const RecordFn& on_record);

  /// True when the scanner is mid-quote (diagnostic: an unterminated quote
  /// at EOF means the file is malformed).
  bool in_quotes() const { return in_quotes_; }

  /// Absolute byte offset of the pending (not yet emitted) record — the
  /// record to blame when in_quotes() is still true at EOF.
  uint64_t pending_offset() const { return record_offset_; }

 private:
  std::string carry_;        // partial record spanning chunk boundaries
  bool in_quotes_ = false;
  uint64_t record_offset_ = 0;  // absolute offset of the pending record
  uint64_t consumed_ = 0;       // absolute offset of the next incoming byte
};

/// Options for the streaming ingest.
struct StreamIngestOptions {
  char delimiter = ',';
  /// Name of the label column (parsed as 0/1, or equality with
  /// positive_label_value when set).
  std::string label_column = "label";
  std::string positive_label_value;
  /// Sensitive-attribute column whose codes are stored per row in the
  /// chunked file (required; always treated as categorical).
  std::string group_column;
  /// Columns forced categorical even if the first block looks numeric.
  std::vector<std::string> force_categorical;
  /// Rows per encoded block (and per parse task batch).
  size_t block_rows = 65536;
  /// Map the whole input file and parse record views straight out of the
  /// mapping (zero-copy). When off — or when mmap fails, e.g. the input is
  /// a pipe — the ingest falls back to chunked read(2) with records carried
  /// across chunk boundaries. Mainly a test/diagnostic knob.
  bool use_mmap = true;
  /// Bytes per read(2) chunk on the fallback path.
  size_t read_chunk_bytes = 1 << 20;
  /// Parse parallelism within a block; 0 = the global pool's width. Output
  /// is bit-identical at any setting (rows land in preassigned slots).
  int num_threads = 0;
  /// Encoder settings. float32_features is forced on: the chunked format
  /// stores float32 features by contract.
  EncoderOptions encoder;
};

/// What the ingest did (also mirrored on the ingest.* telemetry counters).
struct IngestStats {
  uint64_t rows = 0;
  uint64_t blocks = 0;
  uint64_t chunks = 0;        ///< read(2) chunks consumed
  uint64_t bytes_read = 0;
  uint64_t num_features = 0;
  double parse_seconds = 0.0; ///< wall time in parse+encode (excludes IO)
  double spill_seconds = 0.0; ///< wall time serializing + writing blocks
};

/// Streams `csv_path` into a chunked dataset at `out_path`. Parse errors
/// carry the path, 1-based record number and absolute byte offset of the
/// offending row.
Result<IngestStats> StreamCsvToChunked(const std::string& csv_path,
                                       const std::string& out_path,
                                       const StreamIngestOptions& options);

}  // namespace omnifair

#endif  // OMNIFAIR_DATA_STREAM_READER_H_
