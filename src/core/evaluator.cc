#include "core/evaluator.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/run_profile.h"
#include "util/fault_injector.h"
#include "util/logging.h"
#include "util/telemetry.h"
#include "util/thread_pool.h"

namespace omnifair {

namespace {

/// The Definition 3 identity over precomputed coefficients — term-for-term
/// the same summation as FairnessMetric::Evaluate, so cached and uncached
/// paths produce bit-identical values.
double EvaluateWithCoefficients(const MetricCoefficients& coef,
                                const std::vector<size_t>& group,
                                const std::vector<int>& predictions,
                                const Dataset& dataset) {
  double value = coef.c0;
  for (size_t k = 0; k < group.size(); ++k) {
    const size_t i = group[k];
    if (predictions[i] == dataset.Label(i)) value += coef.c[k];
  }
  return value;
}

}  // namespace

ConstraintEvaluator::ConstraintEvaluator(std::vector<ConstraintSpec> constraints,
                                         const Dataset& dataset)
    : constraints_(std::move(constraints)), dataset_(dataset) {
  group1_members_.resize(constraints_.size());
  group2_members_.resize(constraints_.size());
  // Cache group maps per distinct grouping function application: grouping
  // functions are opaque callables, so we conservatively evaluate each
  // constraint's grouping once. Constraints induced from the same spec share
  // the same target (shared_ptr metric) but we cannot compare std::function
  // identities; evaluating the grouping per constraint keeps this simple and
  // is cheap relative to model training. A grouping that throws on this
  // split leaves both groups empty, which downgrades the constraint to the
  // documented empty-group convention (FP_j = 0) instead of crashing.
  for (size_t j = 0; j < constraints_.size(); ++j) {
    Result<GroupMap> groups = EvaluateGrouping(constraints_[j].grouping, dataset_);
    if (!groups.ok()) continue;
    auto g1 = groups->find(constraints_[j].group1);
    auto g2 = groups->find(constraints_[j].group2);
    if (g1 != groups->end()) group1_members_[j] = g1->second;
    if (g2 != groups->end()) group2_members_[j] = g2->second;
  }
  // Pre-resolve coefficients for prediction-independent metrics: they never
  // change for this split, so FairnessPart can skip the per-call derivation.
  // A metric that throws or returns misaligned coefficients simply stays
  // uncached and keeps the legacy per-call path (including its failure mode).
  cached_coefficients_.resize(constraints_.size());
  for (size_t j = 0; j < constraints_.size(); ++j) {
    if (constraints_[j].metric->DependsOnPredictions() || HasEmptyGroup(j)) {
      continue;
    }
    try {
      MetricCoefficients c1 =
          constraints_[j].metric->Coefficients(dataset_, group1_members_[j], nullptr);
      MetricCoefficients c2 =
          constraints_[j].metric->Coefficients(dataset_, group2_members_[j], nullptr);
      if (c1.c.size() != group1_members_[j].size() ||
          c2.c.size() != group2_members_[j].size()) {
        continue;
      }
      cached_coefficients_[j].group1 = std::move(c1);
      cached_coefficients_[j].group2 = std::move(c2);
      cached_coefficients_[j].cached = true;
    } catch (...) {
      // Leave uncached; the evaluation path will surface the failure.
    }
  }
}

bool ConstraintEvaluator::HasEmptyGroup(size_t j) const {
  OF_CHECK_LT(j, constraints_.size());
  return group1_members_[j].empty() || group2_members_[j].empty();
}

double ConstraintEvaluator::FairnessPart(size_t j,
                                         const std::vector<int>& predictions) const {
  OF_CHECK_LT(j, constraints_.size());
  OF_CHECK_EQ(predictions.size(), dataset_.NumRows());
  OF_COUNTER_INC("evaluator.fairness_part_evals");
  RunStageTimer stage_timer(profiler_.load(std::memory_order_relaxed),
                            RunStage::kConstraintEval);
  if (HasEmptyGroup(j)) return 0.0;
  const FairnessMetric& metric = *constraints_[j].metric;
  double raw;
  if (cached_coefficients_[j].cached) {
    raw = EvaluateWithCoefficients(cached_coefficients_[j].group1,
                                   group1_members_[j], predictions, dataset_) -
          EvaluateWithCoefficients(cached_coefficients_[j].group2,
                                   group2_members_[j], predictions, dataset_);
  } else {
    raw = metric.Evaluate(dataset_, group1_members_[j], predictions) -
          metric.Evaluate(dataset_, group2_members_[j], predictions);
  }
  const double part =
      FaultInjector::CorruptDouble(fault_sites::kFairnessPart, raw);
  if (!std::isfinite(part)) {
    // Degenerate slice (e.g. a zero-denominator rate): never leak NaN into
    // the tuner — treat the constraint as trivially satisfied this round.
    CountRecoveryEvent(RecoveryEvent::kNonFiniteMetric);
    OF_LOG(Warning) << "non-finite fairness part for constraint " << j << " ("
                    << constraints_[j].metric->Name() << " " << constraints_[j].group1
                    << " vs " << constraints_[j].group2 << "); treating as 0";
    return 0.0;
  }
  return part;
}

std::vector<double> ConstraintEvaluator::FairnessParts(
    const std::vector<int>& predictions) const {
  std::vector<double> parts(constraints_.size());
  for (size_t j = 0; j < constraints_.size(); ++j) {
    parts[j] = FairnessPart(j, predictions);
  }
  return parts;
}

std::vector<double> ConstraintEvaluator::FairnessParts(
    const std::vector<int>& predictions, int num_threads) const {
  if (num_threads <= 1 || constraints_.size() < 2) {
    return FairnessParts(predictions);
  }
  std::vector<double> parts(constraints_.size());
  ThreadPool::Global().ParallelFor(
      constraints_.size(),
      [&](size_t j) { parts[j] = FairnessPart(j, predictions); }, num_threads);
  return parts;
}

double ConstraintEvaluator::MaxViolation(const std::vector<int>& predictions) const {
  double max_violation = -std::numeric_limits<double>::infinity();
  for (size_t j = 0; j < constraints_.size(); ++j) {
    const double violation =
        std::fabs(FairnessPart(j, predictions)) - constraints_[j].epsilon;
    max_violation = std::max(max_violation, violation);
  }
  return max_violation;
}

size_t ConstraintEvaluator::MostViolated(const std::vector<int>& predictions) const {
  size_t best = 0;
  double best_violation = -std::numeric_limits<double>::infinity();
  for (size_t j = 0; j < constraints_.size(); ++j) {
    const double violation =
        std::fabs(FairnessPart(j, predictions)) - constraints_[j].epsilon;
    if (violation > best_violation) {
      best_violation = violation;
      best = j;
    }
  }
  return best;
}

bool ConstraintEvaluator::Satisfied(const std::vector<int>& predictions) const {
  return MaxViolation(predictions) <= 1e-12;
}

double ConstraintEvaluator::MaxViolationFromParts(
    const std::vector<double>& parts) const {
  OF_CHECK_EQ(parts.size(), constraints_.size());
  double max_violation = -std::numeric_limits<double>::infinity();
  for (size_t j = 0; j < constraints_.size(); ++j) {
    max_violation =
        std::max(max_violation, std::fabs(parts[j]) - constraints_[j].epsilon);
  }
  return max_violation;
}

size_t ConstraintEvaluator::MostViolatedFromParts(
    const std::vector<double>& parts) const {
  OF_CHECK_EQ(parts.size(), constraints_.size());
  size_t best = 0;
  double best_violation = -std::numeric_limits<double>::infinity();
  for (size_t j = 0; j < constraints_.size(); ++j) {
    const double violation = std::fabs(parts[j]) - constraints_[j].epsilon;
    if (violation > best_violation) {
      best_violation = violation;
      best = j;
    }
  }
  return best;
}

bool ConstraintEvaluator::SatisfiedFromParts(
    const std::vector<double>& parts) const {
  return MaxViolationFromParts(parts) <= 1e-12;
}

}  // namespace omnifair
