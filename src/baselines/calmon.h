#ifndef OMNIFAIR_BASELINES_CALMON_H_
#define OMNIFAIR_BASELINES_CALMON_H_

#include "baselines/baseline.h"

namespace omnifair {

/// Calmon et al. [11] optimized preprocessing (simplified reproduction).
///
/// The original solves a convex program that perturbs the joint
/// (features, label) distribution to remove label-group dependence under a
/// distortion budget, with dataset-specific distortion parameters the
/// authors released only for Adult and COMPAS. We reproduce the behavioural
/// contract: a probabilistic *label repair* that moves each group's positive
/// rate toward the global rate by a repair degree d (deterministic given the
/// seed), sweeping d and picking the most accurate validating setting.
/// Matching the paper's Table 5, datasets other than adult/compas lack the
/// required distortion parameters and report infeasible (NA(1)).
class CalmonPreprocessing : public FairnessBaseline {
 public:
  std::string Name() const override { return "calmon"; }
  bool SupportsMetric(const FairnessMetric& metric) const override;
  Result<BaselineResult> Train(const Dataset& train, const Dataset& val,
                               Trainer* trainer, const FairnessSpec& spec) override;
};

}  // namespace omnifair

#endif  // OMNIFAIR_BASELINES_CALMON_H_
